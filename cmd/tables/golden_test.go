package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the golden file instead of comparing against it. Use
// after an intentional output change:
//
//	go test ./cmd/tables -run TestGoldenOutput -update
var update = flag.Bool("update", false, "rewrite tables_output.txt with the current output")

// TestGoldenOutput regenerates every figure, table, and comparison in
// the same order as a flagless `go run ./cmd/tables` and byte-compares
// the result against the committed golden file tables_output.txt. The
// whole evaluation is deterministic (fixed default seed, simulated time
// only), so any byte of drift is a real behaviour change — either a bug
// or something that belongs in a commit together with `-update`.
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full table regeneration takes ~40s; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full table regeneration is too slow under the race detector")
	}
	got := captureStdout(t, func() {
		figure1()
		figure2()
		figure3()
		figure4()
		table1()
		table2()
		table3()
		table4()
		comparison1()
		comparison2()
		comparison3()
		comparison4()
	})
	golden := filepath.Join("..", "..", "tables_output.txt")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("rewriting golden: %v", err)
		}
		t.Logf("wrote %d bytes to %s", len(got), golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w []byte
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("output diverges from %s at line %d:\n got: %q\nwant: %q\n(re-run with -update if the change is intentional)",
				golden, i+1, g, w)
		}
	}
	t.Fatalf("output differs from %s (%d vs %d bytes) with no differing line — line ending drift?",
		golden, len(got), len(want))
}

// captureStdout runs f with os.Stdout redirected into a pipe and
// returns everything written. A reader goroutine drains concurrently so
// output larger than the pipe buffer cannot deadlock the writer.
func captureStdout(t *testing.T, f func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()

	done := make(chan struct{})
	var buf bytes.Buffer
	var readErr error
	go func() {
		_, readErr = io.Copy(&buf, r)
		close(done)
	}()
	f()
	os.Stdout = orig
	if err := w.Close(); err != nil {
		t.Fatalf("closing pipe: %v", err)
	}
	<-done
	if readErr != nil {
		t.Fatalf("draining pipe: %v", readErr)
	}
	return buf.Bytes()
}
