// Command tables regenerates, in human-readable form, every table and
// figure of the paper's evaluation (Tables 1–4, Figures 1–4) plus the
// in-text comparisons C1–C4 (see DESIGN.md §4 for the index). For each
// table row it prints the measured simulated parallel time across machine
// sizes together with the paper's claimed Θ-bound, so the growth shape
// can be read off directly.
//
// Usage:
//
//	go run ./cmd/tables             # everything
//	go run ./cmd/tables -table 2    # just Table 2
//	go run ./cmd/tables -figure 2   # just Figure 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"dyncg/internal/api"
	"dyncg/internal/core"
	"dyncg/internal/curve"
	"dyncg/internal/dsseq"
	"dyncg/internal/fault"
	"dyncg/internal/geom"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pgeom"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
	"dyncg/internal/pram"
	"dyncg/internal/ratfun"
	"dyncg/internal/trace"
)

var (
	tableFlag  = flag.Int("table", 0, "print only this table (1-4)")
	figureFlag = flag.Int("figure", 0, "print only this figure (1-4)")
	compFlag   = flag.Int("comparison", 0, "print only this comparison (1-4)")
	seed       = flag.Int64("seed", 1988, "workload RNG seed")
	jsonOut    = flag.Bool("json", false, "write BENCH_tables.json (one record per table cell, with claimed-bound ratios)")
	traceDir   = flag.String("trace-dir", "", "write a Chrome trace per table row (at the largest n) into this directory")
	parallel   = flag.Int("parallel", 0, "re-run every table cell with a worker pool of this size and record the serial-vs-parallel wall-clock speedup; simulated times must match exactly (0 = off)")
	faultsFlag = flag.String("faults", "", "transient fault spec applied to every table cell, e.g. transient=0.02,retries=3; answers are unchanged, measured times grow (fail= is rejected here — permanent failures need the recovery harness, use cmd/dyncg)")
	faultSeed  = flag.Int64("fault-seed", 1, "fault schedule RNG seed")
	cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProf    = flag.String("memprofile", "", "write a heap allocation profile to this file at exit (go tool pprof)")
)

// faultSpec is the parsed -faults value; each table machine gets its own
// plan from it (same seed, so every cell sees the same deterministic
// schedule relative to its own round stream). Figures and the C1–C4
// comparisons build machines outside machineOf/machineFor and stay
// fault-free.
var faultSpec fault.Spec

func maybeInject(m *machine.M) *machine.M {
	if !faultSpec.Zero() {
		p := fault.NewPlan(faultSpec, *faultSeed)
		p.Bind(m.Size())
		m.SetInjector(p)
	}
	return m
}

// parOpts is applied by the machine constructors below; printTable sets it
// for the parallel timing pass and clears it for the canonical serial pass.
var parOpts []machine.Option

func main() {
	flag.Parse()
	spec, err := fault.ParseSpec(*faultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	if spec.Fail > 0 {
		fmt.Fprintln(os.Stderr, "tables: -faults fail= needs the remap-and-rerun recovery harness; use cmd/dyncg for permanent PE failures")
		os.Exit(1)
	}
	if !spec.Zero() && *parallel > 0 {
		fmt.Fprintln(os.Stderr, "tables: -faults and -parallel cannot be combined (the parallel pass must reproduce the serial simulated time exactly)")
		os.Exit(1)
	}
	faultSpec = spec
	if !faultSpec.Zero() {
		fmt.Printf("fault injection on every table cell: %s (seed %d)\n", faultSpec, *faultSeed)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
			}
		}()
	}
	all := *tableFlag == 0 && *figureFlag == 0 && *compFlag == 0
	if all || *figureFlag == 1 {
		figure1()
	}
	if all || *figureFlag == 2 {
		figure2()
	}
	if all || *figureFlag == 3 {
		figure3()
	}
	if all || *figureFlag == 4 {
		figure4()
	}
	if all || *tableFlag == 1 {
		table1()
	}
	if all || *tableFlag == 2 {
		table2()
	}
	if all || *tableFlag == 3 {
		table3()
	}
	if all || *tableFlag == 4 {
		table4()
	}
	if all || *compFlag == 1 {
		comparison1()
	}
	if all || *compFlag == 2 {
		comparison2()
	}
	if all || *compFlag == 3 {
		comparison3()
	}
	if all || *compFlag == 4 {
		comparison4()
	}
	if *jsonOut {
		writeBenchJSON()
	}
}

// benchRecord is one (row, topology, n) measurement of BENCH_tables.json.
// The shape is the shared wire schema api.BenchRecord, pinned by the
// golden-file tests in internal/api alongside the server's v1 envelopes.
type benchRecord = api.BenchRecord

var benchRecords []benchRecord

func writeBenchJSON() {
	const path = "BENCH_tables.json"
	b, err := json.MarshalIndent(benchRecords, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d records written to %s\n", len(benchRecords), path)
}

// Tracing hook for -trace-dir: printTable arms the hook before a run it
// wants traced; the first machine the row builds (via machineOf or
// machineFor) gets the tracer.
var (
	armLabel  string
	armTracer *trace.Tracer
	armM      *machine.M
)

func maybeTrace(m *machine.M) *machine.M {
	if armLabel != "" && armTracer == nil {
		armTracer = trace.Attach(m, armLabel)
		armM = m
	}
	return m
}

func finishTrace(table, id, topo string) {
	armLabel = ""
	if armTracer == nil {
		return
	}
	root := armTracer.Finish()
	m := armM
	armTracer, armM = nil, nil
	path := filepath.Join(*traceDir, fmt.Sprintf("%s_%s_%s.json", table, id, topo))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	if err := trace.WriteChrome(f, root, m); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func header(s string) { fmt.Printf("\n================ %s ================\n", s) }

// row is one table row: a problem plus, per topology, a runner returning
// the simulated time on a machine sized for n, and the claimed Θ-bound
// both as display text and as an evaluator (for BENCH_tables.json ratios).
type row struct {
	name  string
	id    string
	claim string
	bound func(n int, topo string) float64
	run   func(n int, topo string) (int64, error)
}

// bnd pairs a mesh bound with a hypercube bound.
func bnd(mesh, cube func(n int) float64) func(n int, topo string) float64 {
	return func(n int, topo string) float64 {
		if topo == "mesh" {
			return mesh(n)
		}
		return cube(n)
	}
}

func sqrtN(n int) float64 { return math.Sqrt(float64(n)) }
func logN(n int) float64  { return math.Log2(float64(n)) }
func log2N(n int) float64 { l := math.Log2(float64(n)); return l * l }

// lamHalf evaluates the mesh bound λ^{1/2}(n−off, s).
func lamHalf(off, s int) func(n int) float64 {
	return func(n int) float64 { return math.Sqrt(float64(dsseq.LambdaBound(n-off, s))) }
}

func printTable(table string, sizes []int, rows []row) {
	fmt.Printf("%-24s %-10s", "problem", "machine")
	for _, n := range sizes {
		fmt.Printf(" %12s", fmt.Sprintf("n=%d", n))
	}
	fmt.Printf("  %s\n", "claimed bound")
	for _, rw := range rows {
		for _, topo := range []string{"mesh", "hypercube"} {
			fmt.Printf("%-24s %-10s", rw.name, topo)
			for _, n := range sizes {
				wantTrace := *traceDir != "" && n == sizes[len(sizes)-1]
				if wantTrace {
					armLabel = fmt.Sprintf("%s/%s/%s", table, rw.id, topo)
				}
				start := time.Now()
				t, err := rw.run(n, topo)
				wallSerial := time.Since(start)
				if wantTrace {
					finishTrace(table, rw.id, topo)
				}
				if err != nil {
					fmt.Printf(" %12s", "err")
					continue
				}
				rec := benchRecord{
					Table: table, ID: rw.id, Problem: rw.name,
					Topology: topo, N: n, SimTime: t,
					Claim: rw.claim,
				}
				if *parallel > 0 {
					// Timed re-run on the worker pool. Workloads are
					// pre-generated per cell, so the re-run sees identical
					// inputs; the simulated time must reproduce exactly.
					parOpts = []machine.Option{machine.WithParallel(*parallel)}
					ps := time.Now()
					t2, err2 := rw.run(n, topo)
					wallPar := time.Since(ps)
					parOpts = nil
					if err2 != nil {
						fmt.Fprintf(os.Stderr, "tables: %s/%s/%s n=%d parallel re-run failed: %v\n",
							table, rw.id, topo, n, err2)
						os.Exit(1)
					}
					if t2 != t {
						fmt.Fprintf(os.Stderr, "tables: %s/%s/%s n=%d parallel sim time %d != serial %d\n",
							table, rw.id, topo, n, t2, t)
						os.Exit(1)
					}
					rec.Workers = *parallel
					rec.WallSerialNs = wallSerial.Nanoseconds()
					rec.WallParNs = wallPar.Nanoseconds()
					if wallPar > 0 {
						rec.Speedup = wallSerial.Seconds() / wallPar.Seconds()
					}
				}
				fmt.Printf(" %12d", t)
				if *jsonOut {
					b := rw.bound(n, topo)
					rec.Bound = b
					rec.Ratio = float64(t) / b
					benchRecords = append(benchRecords, rec)
				}
			}
			fmt.Printf("  %s\n", rw.claim)
		}
	}
}

func meshM(n int) *machine.M {
	return machine.New(mesh.MustNew(dsseq.NextPow4(n), mesh.Proximity), parOpts...)
}
func cubeM(n int) *machine.M {
	return machine.New(hypercube.MustNew(dsseq.NextPow2(n)), parOpts...)
}
func machineOf(n int, topo string) *machine.M {
	if topo == "mesh" {
		return maybeInject(maybeTrace(meshM(n)))
	}
	return maybeInject(maybeTrace(cubeM(n)))
}
func machineFor(n, s int, topo string) *machine.M {
	if topo == "mesh" {
		return maybeInject(maybeTrace(core.MeshFor(n, s, parOpts...)))
	}
	return maybeInject(maybeTrace(core.CubeFor(n, s, parOpts...)))
}

// ---------------------------------------------------------------- figures

func figure1() {
	header("Figure 1: a mesh computer of size 16 (proximity order)")
	m := mesh.MustNew(16, mesh.Proximity)
	fmt.Print(m.Render())
	fmt.Printf("communication diameter: %d = 2(√n − 1)\n", m.Diameter())
}

func figure2() {
	header("Figure 2: indexing schemes for a mesh of size 16")
	for _, ix := range []mesh.Indexing{mesh.RowMajor, mesh.ShuffledRowMajor, mesh.Snake, mesh.Proximity} {
		fmt.Printf("--- %s ---\n%s", ix, mesh.MustNew(16, ix).Render())
	}
}

func figure3() {
	header("Figure 3: hypercubes of size 2, 4, 8 (Gray-code labels)")
	for _, n := range []int{2, 4, 8} {
		c := hypercube.MustNew(n)
		fmt.Printf("size %d: label(node): ", n)
		for j := 0; j < n; j++ {
			fmt.Printf("%d(%0*b) ", j, c.Dim(), c.Node(j))
		}
		fmt.Println()
	}
}

func figure4() {
	header("Figure 4: pieces of min{f, g, h}")
	cs := []curve.Curve{
		curve.NewPoly(poly.New(6, -0.5)), // f: eventually smallest
		curve.NewPoly(poly.New(0, 1)),    // g: smallest near 0
		curve.NewPoly(poly.New(2)),       // h: smallest in between
	}
	env := pieces.EnvelopeOfCurves(cs, pieces.Min)
	names := []string{"f", "g", "h"}
	for _, p := range env {
		hi := "∞"
		if !math.IsInf(p.Hi, 1) {
			hi = fmt.Sprintf("%.3g", p.Hi)
		}
		fmt.Printf("  (%s(t), [%.3g, %s])\n", names[p.ID], p.Lo, hi)
	}
}

// ---------------------------------------------------------------- Table 1

func table1() {
	header("Table 1: data movement operations (measured simulated time)")
	r := rand.New(rand.NewSource(*seed))
	sizes := []int{64, 256, 1024, 4096}
	// Pre-generate one workload per machine size (machineOf yields exactly
	// n PEs for these power-of-4 sizes on both topologies), so a cell can
	// be re-run — serial then parallel — without perturbing the shared RNG
	// stream. Scatter copies the values, so reuse across rows is safe.
	valsOf := map[int][]int{}
	for _, n := range sizes {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(1 << 20)
		}
		valsOf[n] = vals
	}
	mkVals := func(n int) []int { return valsOf[n] }
	rows := []row{
		{"semigroup", "semigroup", "Θ(√n) / Θ(log n)", bnd(sqrtN, logN), func(n int, topo string) (int64, error) {
			m := machineOf(n, topo)
			regs := machine.Scatter(m.Size(), mkVals(m.Size()))
			machine.Semigroup(m, regs, machine.WholeMachine(m.Size()), func(a, b int) int {
				if a < b {
					return a
				}
				return b
			})
			return m.Stats().Time(), nil
		}},
		{"broadcast", "broadcast", "Θ(√n) / Θ(log n)", bnd(sqrtN, logN), func(n int, topo string) (int64, error) {
			m := machineOf(n, topo)
			regs := make([]machine.Reg[int], m.Size())
			regs[m.Size()/3] = machine.Some(1)
			machine.Spread(m, regs, machine.WholeMachine(m.Size()))
			return m.Stats().Time(), nil
		}},
		{"parallel prefix", "prefix", "Θ(√n) / Θ(log n)", bnd(sqrtN, logN), func(n int, topo string) (int64, error) {
			m := machineOf(n, topo)
			regs := machine.Scatter(m.Size(), mkVals(m.Size()))
			machine.Scan(m, regs, machine.WholeMachine(m.Size()), machine.Forward,
				func(a, b int) int { return a + b })
			return m.Stats().Time(), nil
		}},
		{"merging", "merge", "Θ(√n) / Θ(log n)", bnd(sqrtN, logN), func(n int, topo string) (int64, error) {
			m := machineOf(n, topo)
			regs := machine.Scatter(m.Size(), mkVals(m.Size()))
			machine.SortBlocks(m, regs, m.Size()/2, func(a, b int) bool { return a < b })
			m.Reset()
			machine.MergeBlocks(m, regs, m.Size(), func(a, b int) bool { return a < b })
			return m.Stats().Time(), nil
		}},
		{"sorting", "sort", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(n, topo)
			regs := machine.Scatter(m.Size(), mkVals(m.Size()))
			machine.Sort(m, regs, func(a, b int) bool { return a < b })
			return m.Stats().Time(), nil
		}},
		{"grouping", "group", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(n, topo)
			regs := machine.Scatter(m.Size(), mkVals(m.Size()))
			machine.Sort(m, regs, func(a, b int) bool { return a < b })
			machine.Scan(m, regs, machine.BlockSegments(m.Size(), 16), machine.Forward,
				func(a, b int) int { return a })
			machine.Sort(m, regs, func(a, b int) bool { return a < b })
			return m.Stats().Time(), nil
		}},
	}
	printTable("table1", sizes, rows)
}

// ---------------------------------------------------------------- Table 2

func table2() {
	header("Table 2: transient behaviour problems (measured simulated time)")
	r := rand.New(rand.NewSource(*seed))
	sizes := []int{16, 64, 256}
	k := 2
	sys2 := map[int]*motion.System{}
	sys3 := map[int]*motion.System{}
	conv := map[int]*motion.System{}
	for _, n := range sizes {
		sys2[n] = motion.Random(r, n, k, 2, 8)
		sys3[n] = motion.Random(r, n, k, 3, 8)
		conv[n] = motion.Converging(r, n)
	}
	rows := []row{
		{"closest-point sequence", "closest-seq", "Θ(λ^½(n−1,2k)) / Θ(log² n)", bnd(lamHalf(1, 2*k), log2N), func(n int, topo string) (int64, error) {
			m := machineFor(n, 2*k, topo)
			_, err := core.ClosestPointSequence(m, sys2[n], 0)
			return m.Stats().Time(), err
		}},
		{"collision times", "collisions", "Θ(n^½) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(8*n, topo)
			_, err := core.CollisionTimes(m, conv[n], 0)
			return m.Stats().Time(), err
		}},
		{"hull-vertex intervals", "hull-member", "Θ(λ^½(n,4k)) / Θ(log² n)", bnd(lamHalf(0, 4*k), log2N), func(n int, topo string) (int64, error) {
			m := machineFor(n, 4*k+2, topo)
			_, err := core.HullVertexIntervals(m, sys2[n], 0)
			return m.Stats().Time(), err
		}},
		{"containment intervals", "containment", "Θ(λ^½(n,k)) / Θ(log² n)", bnd(lamHalf(0, k), log2N), func(n int, topo string) (int64, error) {
			m := machineFor(n, k+2, topo)
			_, err := core.ContainmentIntervals(m, sys3[n], []float64{12, 12, 12})
			return m.Stats().Time(), err
		}},
		{"cube edgelength fn", "cube-edge", "Θ(λ^½(n,k)) / Θ(log² n)", bnd(lamHalf(0, k), log2N), func(n int, topo string) (int64, error) {
			m := machineFor(n, k+2, topo)
			_, err := core.SmallestHypercubeEdge(m, sys3[n])
			return m.Stats().Time(), err
		}},
		{"smallest-ever cube", "smallest-cube", "Θ(λ^½(n,k)) / Θ(log² n)", bnd(lamHalf(0, k), log2N), func(n int, topo string) (int64, error) {
			m := machineFor(n, k+2, topo)
			_, _, err := core.SmallestEverHypercube(m, sys3[n])
			return m.Stats().Time(), err
		}},
	}
	printTable("table2", sizes, rows)
}

// ---------------------------------------------------------------- Table 3

func table3() {
	header("Table 3: steady-state problems (measured simulated time)")
	r := rand.New(rand.NewSource(*seed))
	sizes := []int{64, 256, 1024}
	sys := map[int]*motion.System{}
	div := map[int]*motion.System{}
	for _, n := range sizes {
		sys[n] = motion.Random(r, n, 1, 2, 8)
		div[n] = motion.Diverging(r, n)
	}
	rows := []row{
		{"nearest neighbour", "steady-nn", "Θ(√n) / Θ(log n)", bnd(sqrtN, logN), func(n int, topo string) (int64, error) {
			m := machineOf(n, topo)
			_, err := core.SteadyNearestNeighbor(m, sys[n], 0, false)
			return m.Stats().Time(), err
		}},
		{"closest pair", "steady-cp", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(4*n, topo)
			_, _, err := core.SteadyClosestPair(m, sys[n])
			return m.Stats().Time(), err
		}},
		{"ordered hull(S)", "steady-hull", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(8*n, topo)
			_, err := core.SteadyHull(m, sys[n])
			return m.Stats().Time(), err
		}},
		{"farthest pair", "steady-farthest", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(8*n, topo)
			_, _, _, err := core.SteadyFarthestPair(m, div[n])
			return m.Stats().Time(), err
		}},
		{"min-area rectangle", "steady-rect", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(8*n, topo)
			_, err := core.SteadyMinAreaRect(m, div[n])
			return m.Stats().Time(), err
		}},
	}
	printTable("table3", sizes, rows)
}

// ---------------------------------------------------------------- Table 4

func table4() {
	header("Table 4: static algorithms (measured simulated time)")
	r := rand.New(rand.NewSource(*seed))
	sizes := []int{64, 256, 1024}
	ptsOf := map[int][]geom.Point[ratfun.F64]{}
	hullOf := map[int][]geom.Point[ratfun.F64]{}
	for _, n := range sizes {
		pts := make([]geom.Point[ratfun.F64], n)
		for i := range pts {
			pts[i] = geom.Point[ratfun.F64]{
				X: ratfun.F64(r.NormFloat64() * 20), Y: ratfun.F64(r.NormFloat64() * 20), ID: i,
			}
		}
		ptsOf[n] = pts
		hullOf[n] = geom.Hull(pts)
	}
	rows := []row{
		{"closest pair", "static-cp", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(4*n, topo)
			pgeom.ClosestPair(m, ptsOf[n])
			return m.Stats().Time(), nil
		}},
		{"convex hull", "static-hull", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(8*n, topo)
			_, err := pgeom.HullStatic(m, ptsOf[n])
			return m.Stats().Time(), err
		}},
		{"antipodal vertices", "antipodal", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(8*n, topo)
			pgeom.AntipodalPairs(m, hullOf[n])
			return m.Stats().Time(), nil
		}},
		{"min enclosing rect", "static-rect", "Θ(√n) / Θ(log² n)", bnd(sqrtN, log2N), func(n int, topo string) (int64, error) {
			m := machineOf(8*n, topo)
			pgeom.MinAreaRect(m, hullOf[n])
			return m.Stats().Time(), nil
		}},
	}
	printTable("table4", sizes, rows)
}

// ----------------------------------------------------------- comparisons

func comparison1() {
	header("C1: λ(n, s) growth (Theorem 2.3)")
	fmt.Printf("%8s %10s %10s %12s %14s\n", "n", "λ(n,1)=n", "λ(n,2)", "pieces(s=1)", "pieces(s=2)")
	for _, n := range []int{4, 8, 16, 24} {
		lines := dsseq.SortedLines(n)
		cs1 := make([]curve.Curve, n)
		for i, p := range lines {
			cs1[i] = curve.NewPoly(p)
		}
		parabolas := dsseq.ExtremalParabolas(n)
		cs2 := make([]curve.Curve, n)
		for i, p := range parabolas {
			cs2[i] = curve.NewPoly(p)
		}
		e1 := pieces.EnvelopeOfCurves(cs1, pieces.Min)
		e2 := pieces.EnvelopeOfCurves(cs2, pieces.Min)
		fmt.Printf("%8d %10d %10d %12d %14d\n",
			n, dsseq.Lambda(n, 1), dsseq.Lambda(n, 2), len(e1), len(e2))
	}
	fmt.Printf("α(n) ≤ %d for every machine-representable n (Hart–Sharir)\n",
		dsseq.InverseAckermann(1<<62))
}

func comparison2() {
	header("C2: Theorem 3.2 envelope vs direct CREW-PRAM simulation (§1, §6)")
	r := rand.New(rand.NewSource(*seed))
	fmt.Printf("%8s %-10s %14s %14s %8s\n", "n", "machine", "thm 3.2", "PRAM-sim", "ratio")
	for _, n := range []int{64, 256, 1024} {
		cs := make([]curve.Curve, n)
		for i := range cs {
			cs[i] = curve.NewPoly(poly.New(r.NormFloat64()*5, r.NormFloat64(), 0.2+r.Float64()))
		}
		for _, topo := range []string{"mesh", "hypercube"} {
			var m1, m2 *machine.M
			if topo == "mesh" {
				m1 = machine.New(mesh.MustNew(penvelope.MeshPEs(n, 2), mesh.Proximity))
				m2 = machine.New(mesh.MustNew(penvelope.MeshPEs(n, 2), mesh.Proximity))
			} else {
				m1 = machine.New(hypercube.MustNew(penvelope.CubePEs(n, 2)))
				m2 = machine.New(hypercube.MustNew(penvelope.CubePEs(n, 2)))
			}
			if _, err := penvelope.EnvelopeOfCurves(m1, cs, pieces.Min); err != nil {
				fmt.Println("error:", err)
				continue
			}
			pram.Envelope(m2, cs, pieces.Min)
			t1, t2 := m1.Stats().Time(), m2.Stats().Time()
			fmt.Printf("%8d %-10s %14d %14d %8.2f\n", n, topo, t1, t2, float64(t2)/float64(t1))
		}
	}
	fmt.Println("claim: mesh ratio grows like Θ(log n); hypercube like Θ(log n)")
}

func comparison3() {
	header("C3: direct steady-state nearest neighbour vs transient tail (§5 intro)")
	r := rand.New(rand.NewSource(*seed))
	fmt.Printf("%8s %14s %14s %8s\n", "n", "direct", "via Thm 4.1", "ratio")
	for _, n := range []int{64, 256, 1024} {
		sys := motion.Random(r, n, 1, 2, 8)
		m1 := core.MeshOf(n)
		if _, err := core.SteadyNearestNeighbor(m1, sys, 0, false); err != nil {
			fmt.Println("error:", err)
			continue
		}
		m2 := core.MeshFor(n, 2)
		if _, err := core.SteadyNearestViaTransient(m2, sys, 0); err != nil {
			fmt.Println("error:", err)
			continue
		}
		t1, t2 := m1.Stats().Time(), m2.Stats().Time()
		fmt.Printf("%8d %14d %14d %8.1f\n", n, t1, t2, float64(t2)/float64(t1))
	}
	fmt.Println("claim: the direct Θ(√n) algorithm beats the Θ(λ^½(n,2k))-time sequence")
}

func comparison4() {
	header("C4: §6 extension — closest-pair sequences on λ(n(n−1)/2, 2k) PEs")
	r := rand.New(rand.NewSource(*seed))
	fmt.Printf("%8s %10s %12s %12s %10s\n", "n", "pairs", "mesh", "hypercube", "events")
	for _, n := range []int{8, 16, 32} {
		sys := motion.Random(r, n, 1, 2, 8)
		mm := core.MeshFor(core.PairSequencePEs(n, 1), 2)
		seq, err := core.ClosestPairSequence(mm, sys)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		hc := core.CubeFor(core.PairSequencePEs(n, 1), 2)
		if _, err := core.ClosestPairSequence(hc, sys); err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%8d %10d %12d %12d %10d\n",
			n, n*(n-1)/2, mm.Stats().Time(), hc.Stats().Time(), len(seq))
	}
	fmt.Println("claim: Θ(λ^½(n(n−1)/2, 2k)) mesh / Θ(log² n) hypercube")
}
