//go:build race

package main

// raceEnabled reports whether the race detector instruments this test
// binary; the golden test skips itself there (≈10× slowdown on a run
// that is single-goroutine and already covered by the plain pass).
const raceEnabled = true
