// Command loadgen drives a running dyncgd daemon with a synthetic
// request mix and reports achieved throughput, a latency histogram,
// and the response-source split (computed / coalesced / cache, from
// the X-Dyncg-Source header) — the measurement half of the serving
// saturation experiments in EXPERIMENTS.md and the CI throughput
// smoke job.
//
//	loadgen -addr http://127.0.0.1:8080 -duration 10s -concurrency 16 -dup 0.5
//
// The workload has two knobs that matter for the front door:
//
//   - -dup is the duplicate ratio: the fraction of one-shot requests
//     drawn from a small hot set of byte-identical cacheable requests
//     (size -hot). These are the requests coalescing merges and the
//     response cache absorbs; the rest are freshly generated unique
//     systems that always miss.
//   - -session-mix diverts a fraction of operations to stateful
//     sessions (one per worker: created lazily, then alternating
//     update and query), which bypass the cache entirely.
//
// By default workers run closed-loop (each sends the next request as
// soon as the previous returns); -rate switches to an open loop that
// admits requests from a token bucket at the given req/s with -burst
// capacity. -json emits the summary as one JSON object for scripts.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"dyncg/internal/api"
	"dyncg/internal/motion"
)

var (
	addr       = flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	duration   = flag.Duration("duration", 10*time.Second, "how long to drive load")
	conc       = flag.Int("concurrency", 8, "worker goroutines")
	rate       = flag.Float64("rate", 0, "open-loop request rate in req/s across all workers (0 = closed loop)")
	burst      = flag.Int("burst", 1, "open-loop token-bucket burst capacity")
	dup        = flag.Float64("dup", 0.5, "fraction of one-shot requests drawn from the hot set (byte-identical, cacheable)")
	hotSet     = flag.Int("hot", 4, "distinct requests in the hot set")
	hotN       = flag.Int("hot-n", 24, "points per hot-set system")
	uniqN      = flag.Int("n", 8, "points per unique (cache-missing) system")
	sessionMix = flag.Float64("session-mix", 0, "fraction of operations that drive a stateful session instead of a one-shot request")
	seed       = flag.Int64("seed", 1, "workload RNG seed")
	algo       = flag.String("algorithm", "steady-hull", "one-shot endpoint to drive")
	jsonOut    = flag.Bool("json", false, "print the summary as JSON")
)

// latBuckets are latency histogram upper bounds in microseconds.
var latBuckets = []int64{100, 250, 500, 1000, 2500, 5000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000}

// tally is one worker's private counters, merged after the run.
type tally struct {
	sent     int64
	errors   int64
	bySource map[string]int64
	byStatus map[int]int64
	buckets  []int64 // len(latBuckets)+1
	sumUs    int64
}

func newTally() *tally {
	return &tally{
		bySource: make(map[string]int64),
		byStatus: make(map[int]int64),
		buckets:  make([]int64, len(latBuckets)+1),
	}
}

func (t *tally) observe(status int, source string, d time.Duration) {
	t.sent++
	t.byStatus[status]++
	if source == "" {
		source = "none"
	}
	t.bySource[source]++
	us := d.Microseconds()
	t.sumUs += us
	i := sort.Search(len(latBuckets), func(i int) bool { return us <= latBuckets[i] })
	t.buckets[i]++
}

// Summary is the -json output schema.
type Summary struct {
	Duration   float64          `json:"duration_s"`
	Sent       int64            `json:"sent"`
	Errors     int64            `json:"errors"`
	ReqS       float64          `json:"req_s"`
	BySource   map[string]int64 `json:"by_source"`
	ByStatus   map[string]int64 `json:"by_status"`
	MeanUs     float64          `json:"mean_us"`
	P50Us      int64            `json:"p50_us"`
	P90Us      int64            `json:"p90_us"`
	P99Us      int64            `json:"p99_us"`
	Duplicates float64          `json:"dup"`
	Workers    int              `json:"workers"`
}

func wireSystem(sys *motion.System) [][][]float64 {
	out := make([][][]float64, len(sys.Points))
	for i, p := range sys.Points {
		coords := make([][]float64, len(p.Coord))
		for j, c := range p.Coord {
			coords[j] = append([]float64(nil), c...)
		}
		out[i] = coords
	}
	return out
}

func marshalRequest(sys *motion.System) []byte {
	body, err := json.Marshal(api.Request{V: api.Version, System: wireSystem(sys)})
	if err != nil {
		panic(err)
	}
	return body
}

// worker owns one RNG, one optional session, and one tally.
type worker struct {
	id      int
	rnd     *rand.Rand
	client  *http.Client
	base    string
	hot     [][]byte
	tokens  <-chan struct{}
	tal     *tally
	sessID  string
	sessOps int
}

func (w *worker) post(path string, body []byte) (int, string, error) {
	req, err := http.NewRequest(http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Dyncg-Source"), nil
}

func (w *worker) get(path string) (int, string, error) {
	resp, err := w.client.Get(w.base + path)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Dyncg-Source"), nil
}

// sessionStep drives one stateful operation: create on first use, then
// alternate update and query.
func (w *worker) sessionStep() (int, string, error) {
	if w.sessID == "" {
		sys := motion.Random(rand.New(rand.NewSource(w.rnd.Int63())), 6, 1, 2, 10)
		body, err := json.Marshal(api.SessionCreateRequest{
			V: api.Version, Algorithm: "closest-point-sequence",
			System: wireSystem(sys), Origin: 0,
		})
		if err != nil {
			return 0, "", err
		}
		req, err := http.NewRequest(http.MethodPost, w.base+"/v1/sessions", bytes.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client.Do(req)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK {
			var created api.SessionCreateResponse
			if err := json.Unmarshal(data, &created); err == nil {
				w.sessID = created.Session.ID
			}
		}
		return resp.StatusCode, resp.Header.Get("X-Dyncg-Source"), nil
	}
	w.sessOps++
	if w.sessOps%2 == 1 {
		delta := fmt.Sprintf(`{"v":1,"deltas":[{"op":"retarget","id":1,"point":[[%d,1],[%d]]}]}`,
			w.rnd.Intn(20), w.rnd.Intn(20))
		return w.post("/v1/sessions/"+w.sessID+"/update", []byte(delta))
	}
	return w.get("/v1/sessions/" + w.sessID + "/query")
}

func (w *worker) run(deadline time.Time) {
	for time.Now().Before(deadline) {
		if w.tokens != nil {
			select {
			case <-w.tokens:
			case <-time.After(time.Until(deadline)):
				return
			}
		}
		var body []byte
		start := time.Now()
		var status int
		var source string
		var err error
		switch {
		case w.rnd.Float64() < *sessionMix:
			status, source, err = w.sessionStep()
		case w.rnd.Float64() < *dup:
			body = w.hot[w.rnd.Intn(len(w.hot))]
			status, source, err = w.post("/v1/"+*algo, body)
		default:
			sys := motion.Diverging(rand.New(rand.NewSource(w.rnd.Int63())), *uniqN)
			body = marshalRequest(sys)
			status, source, err = w.post("/v1/"+*algo, body)
		}
		if err != nil {
			w.tal.errors++
			continue
		}
		w.tal.observe(status, source, time.Since(start))
	}
	if w.sessID != "" {
		req, err := http.NewRequest(http.MethodDelete, w.base+"/v1/sessions/"+w.sessID, nil)
		if err == nil {
			if resp, err := w.client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
}

// percentile returns the upper bound of the bucket holding the p-th
// percentile observation (the final bucket reports the largest bound).
func percentile(buckets []int64, total int64, p float64) int64 {
	if total == 0 {
		return 0
	}
	want := int64(float64(total) * p)
	if want < 1 {
		want = 1
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= want {
			if i < len(latBuckets) {
				return latBuckets[i]
			}
			break
		}
	}
	return latBuckets[len(latBuckets)-1]
}

func main() {
	flag.Parse()
	if *conc < 1 {
		*conc = 1
	}
	if *hotSet < 1 {
		*hotSet = 1
	}

	// The hot set is deterministic in -seed: every loadgen run (and every
	// worker) agrees on its bytes, so duplicates are byte-identical.
	hotRnd := rand.New(rand.NewSource(*seed))
	hot := make([][]byte, *hotSet)
	for i := range hot {
		hot[i] = marshalRequest(motion.Diverging(rand.New(rand.NewSource(hotRnd.Int63())), *hotN))
	}

	var tokens chan struct{}
	var stopFill chan struct{}
	if *rate > 0 {
		if *burst < 1 {
			*burst = 1
		}
		tokens = make(chan struct{}, *burst)
		stopFill = make(chan struct{})
		interval := time.Duration(float64(time.Second) / *rate)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // bucket full; token dropped
					}
				case <-stopFill:
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	workers := make([]*worker, *conc)
	var wg sync.WaitGroup
	for i := range workers {
		workers[i] = &worker{
			id:     i,
			rnd:    rand.New(rand.NewSource(*seed + int64(i) + 1)),
			client: &http.Client{Timeout: 60 * time.Second},
			base:   *addr,
			hot:    hot,
			tokens: tokens,
			tal:    newTally(),
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(deadline)
		}(workers[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if stopFill != nil {
		close(stopFill)
	}

	total := newTally()
	for _, w := range workers {
		total.sent += w.tal.sent
		total.errors += w.tal.errors
		total.sumUs += w.tal.sumUs
		for k, v := range w.tal.bySource {
			total.bySource[k] += v
		}
		for k, v := range w.tal.byStatus {
			total.byStatus[k] += v
		}
		for i, v := range w.tal.buckets {
			total.buckets[i] += v
		}
	}

	sum := Summary{
		Duration:   elapsed.Seconds(),
		Sent:       total.sent,
		Errors:     total.errors,
		ReqS:       float64(total.sent) / elapsed.Seconds(),
		BySource:   total.bySource,
		ByStatus:   make(map[string]int64, len(total.byStatus)),
		P50Us:      percentile(total.buckets, total.sent, 0.50),
		P90Us:      percentile(total.buckets, total.sent, 0.90),
		P99Us:      percentile(total.buckets, total.sent, 0.99),
		Duplicates: *dup,
		Workers:    *conc,
	}
	if total.sent > 0 {
		sum.MeanUs = float64(total.sumUs) / float64(total.sent)
	}
	for k, v := range total.byStatus {
		sum.ByStatus[fmt.Sprintf("%d", k)] = v
	}

	if *jsonOut {
		data, err := json.Marshal(sum)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		fmt.Printf("loadgen: %d requests in %.1fs = %.0f req/s (%d errors)\n",
			sum.Sent, sum.Duration, sum.ReqS, sum.Errors)
		fmt.Printf("  sources: %v\n", sum.BySource)
		fmt.Printf("  status:  %v\n", sum.ByStatus)
		fmt.Printf("  latency: mean %.0fus p50 %dus p90 %dus p99 %dus\n",
			sum.MeanUs, sum.P50Us, sum.P90Us, sum.P99Us)
	}
	if total.sent == 0 || total.errors > total.sent/10 {
		fmt.Fprintln(os.Stderr, "loadgen: too many transport errors (is the daemon up?)")
		os.Exit(1)
	}
}
