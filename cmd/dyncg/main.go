// Command dyncg runs any of the paper's algorithms on a generated
// workload and reports the answer together with the simulated parallel
// running time on the chosen machine.
//
// Examples:
//
//	go run ./cmd/dyncg -algo closest -n 32 -k 2
//	go run ./cmd/dyncg -algo collisions -workload converging -n 24 -topo mesh
//	go run ./cmd/dyncg -algo hullmember -n 12 -origin 3
//	go run ./cmd/dyncg -algo containment -d 3 -dims 12,12,12
//	go run ./cmd/dyncg -algo steady-hull -workload diverging -n 64
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dyncg/internal/core"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/trace"
)

var (
	algo      = flag.String("algo", "closest", "algorithm: closest|farthest|collisions|hullmember|containment|cube-edge|smallest-cube|steady-nn|steady-cp|steady-hull|steady-farthest|steady-rect")
	n         = flag.Int("n", 16, "number of moving points")
	k         = flag.Int("k", 1, "motion degree bound")
	d         = flag.Int("d", 2, "dimension (planar algorithms need 2)")
	topo      = flag.String("topo", "hypercube", "machine topology: mesh|hypercube")
	workload  = flag.String("workload", "random", "workload: random|converging|diverging|circle")
	origin    = flag.Int("origin", 0, "query point index")
	dims      = flag.String("dims", "10,10", "hyper-rectangle side lengths (containment)")
	seed      = flag.Int64("seed", 1, "RNG seed")
	traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file for the run")
	costTree  = flag.Bool("costtree", false, "print the per-span cost-attribution tree after the run")
	costDepth = flag.Int("costdepth", 0, "cost tree depth limit (0 = unlimited)")
	parallel  = flag.Int("parallel", 0, "worker-pool size for per-PE loops (0 = serial, -1 = GOMAXPROCS); results are identical either way")
)

// machineOpts translates -parallel into machine options.
func machineOpts() []machine.Option {
	if *parallel == 0 {
		return nil
	}
	return []machine.Option{machine.WithParallel(*parallel)}
}

func main() {
	flag.Parse()
	r := rand.New(rand.NewSource(*seed))
	var sys *motion.System
	switch *workload {
	case "random":
		sys = motion.Random(r, *n, *k, *d, 10)
	case "converging":
		sys = motion.Converging(r, *n)
	case "diverging":
		sys = motion.Diverging(r, *n)
	case "circle":
		sys = motion.OnCircle(*n, 10)
	default:
		fatal("unknown workload %q", *workload)
	}
	fmt.Printf("workload: %s, n=%d, k=%d, d=%d, machine=%s\n",
		*workload, sys.N(), sys.K, sys.D, *topo)

	// attach installs a tracer on whichever machine the algorithm picks,
	// when any trace output was requested.
	var tr *trace.Tracer
	attach := func(m *machine.M) *machine.M {
		if *traceOut != "" || *costTree {
			tr = trace.Attach(m, *algo)
		}
		return m
	}
	mkFor := func(s int) *machine.M {
		if *topo == "mesh" {
			return attach(core.MeshFor(sys.N(), s, machineOpts()...))
		}
		return attach(core.CubeFor(sys.N(), s, machineOpts()...))
	}
	mkOf := func(sz int) *machine.M {
		if *topo == "mesh" {
			return attach(core.MeshOf(sz, machineOpts()...))
		}
		return attach(core.CubeOf(sz, machineOpts()...))
	}

	var m *machine.M
	switch *algo {
	case "closest", "farthest":
		m = mkFor(2 * maxi(sys.K, 1))
		var seq []core.NeighborEvent
		var err error
		if *algo == "closest" {
			seq, err = core.ClosestPointSequence(m, sys, *origin)
		} else {
			seq, err = core.FarthestPointSequence(m, sys, *origin)
		}
		check(err)
		fmt.Printf("%s-point sequence for P%d:\n", *algo, *origin)
		for _, ev := range seq {
			fmt.Printf("  P%-3d on %s\n", ev.Point, ivString(ev.Lo, ev.Hi))
		}
	case "collisions":
		m = mkOf(8 * sys.N())
		cs, err := core.CollisionTimes(m, sys, *origin)
		check(err)
		fmt.Printf("%d collisions involving P%d:\n", len(cs), *origin)
		for _, c := range cs {
			fmt.Printf("  t=%.4f with P%d\n", c.T, c.B)
		}
	case "hullmember":
		m = mkFor(4*maxi(sys.K, 1) + 2)
		ivs, err := core.HullVertexIntervals(m, sys, *origin)
		check(err)
		fmt.Printf("P%d is a hull vertex during:\n", *origin)
		for _, iv := range ivs {
			fmt.Printf("  %s\n", ivString(iv.Lo, iv.Hi))
		}
	case "containment":
		box := parseDims(*dims)
		m = mkFor(sys.K + 2)
		ivs, err := core.ContainmentIntervals(m, sys, box)
		check(err)
		fmt.Printf("system fits in %v during:\n", box)
		for _, iv := range ivs {
			fmt.Printf("  %s\n", ivString(iv.Lo, iv.Hi))
		}
	case "cube-edge":
		m = mkFor(sys.K + 2)
		dfn, err := core.SmallestHypercubeEdge(m, sys)
		check(err)
		fmt.Printf("D(t) has %d pieces:\n", len(dfn))
		for _, p := range dfn {
			fmt.Printf("  %s on %s\n", p.F, ivString(p.Lo, p.Hi))
		}
	case "smallest-cube":
		m = mkFor(sys.K + 2)
		dmin, tmin, err := core.SmallestEverHypercube(m, sys)
		check(err)
		fmt.Printf("smallest-ever bounding hypercube: edge %.4f at t=%.4f\n", dmin, tmin)
	case "steady-nn":
		m = mkOf(sys.N())
		nn, err := core.SteadyNearestNeighbor(m, sys, *origin, false)
		check(err)
		fmt.Printf("steady-state nearest neighbour of P%d: P%d\n", *origin, nn)
	case "steady-cp":
		m = mkOf(4 * sys.N())
		a, b, err := core.SteadyClosestPair(m, sys)
		check(err)
		fmt.Printf("steady-state closest pair: P%d, P%d\n", a, b)
	case "steady-hull":
		m = mkOf(8 * sys.N())
		hull, err := core.SteadyHull(m, sys)
		check(err)
		fmt.Printf("steady-state hull (%d vertices, CCW): %v\n", len(hull), hull)
	case "steady-farthest":
		m = mkOf(8 * sys.N())
		a, b, d2, err := core.SteadyFarthestPair(m, sys)
		check(err)
		fmt.Printf("steady-state farthest pair: P%d, P%d with d²(t) = %v\n", a, b, d2)
	case "steady-rect":
		m = mkOf(8 * sys.N())
		rect, err := core.SteadyMinAreaRect(m, sys)
		check(err)
		fmt.Printf("steady-state min-area rectangle: base on hull edge %d, area(t) = %v\n",
			rect.Edge, rect.Area)
	default:
		fatal("unknown algorithm %q", *algo)
	}
	fmt.Printf("\nsimulated parallel time on %s: %v\n", m.Topology().Name(), m.Stats())

	if tr != nil {
		root := tr.Finish()
		if *costTree {
			fmt.Println()
			trace.WriteCostTree(os.Stdout, root, *costDepth)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			check(err)
			check(trace.WriteChrome(f, root, m))
			check(f.Close())
			fmt.Printf("\nchrome trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
		}
	}
}

func ivString(lo, hi float64) string {
	h := "∞"
	if !math.IsInf(hi, 1) {
		h = fmt.Sprintf("%.4f", hi)
	}
	return fmt.Sprintf("[%.4f, %s]", lo, h)
}

func parseDims(s string) []float64 {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		check(err)
		out[i] = v
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dyncg: "+format+"\n", args...)
	os.Exit(1)
}
