// Command dyncg runs any of the paper's algorithms on a generated
// workload and reports the answer together with the simulated parallel
// running time on the chosen machine.
//
// Every run goes through the fault-injection harness (internal/fault):
// with no -faults spec it degenerates to a single clean attempt, and
// with one it injects seeded transient link faults (charged retries)
// and permanent PE failures (remap onto the largest healthy submachine
// and re-run). Answers are bit-identical either way; only the charged
// simulated time grows.
//
// Examples:
//
//	go run ./cmd/dyncg -algo closest -n 32 -k 2
//	go run ./cmd/dyncg -algo collisions -workload converging -n 24 -topo mesh
//	go run ./cmd/dyncg -algo hullmember -n 12 -origin 3
//	go run ./cmd/dyncg -algo containment -d 3 -dims 12,12,12
//	go run ./cmd/dyncg -algo steady-hull -workload diverging -n 64
//	go run ./cmd/dyncg -algo closest -faults transient=0.05,fail=1 -fault-seed 7
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dyncg"
	"dyncg/internal/core"
	"dyncg/internal/fault"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
	"dyncg/internal/trace"
)

var (
	algo      = flag.String("algo", "closest", "algorithm: closest|farthest|collisions|hullmember|containment|cube-edge|smallest-cube|steady-nn|steady-cp|steady-hull|steady-farthest|steady-rect")
	n         = flag.Int("n", 16, "number of moving points; the columnar core scales past machines of 1<<20 PEs (see README, Scale)")
	k         = flag.Int("k", 1, "motion degree bound")
	d         = flag.Int("d", 2, "dimension (planar algorithms need 2)")
	topoName  = flag.String("topo", "hypercube", "machine topology: mesh|hypercube|ccc|shuffle")
	workload  = flag.String("workload", "random", "workload: random|converging|diverging|circle")
	origin    = flag.Int("origin", 0, "query point index")
	dims      = flag.String("dims", "10,10", "hyper-rectangle side lengths (containment)")
	seed      = flag.Int64("seed", 1, "RNG seed")
	traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file for the run")
	costTree  = flag.Bool("costtree", false, "print the per-span cost-attribution tree after the run")
	costDepth = flag.Int("costdepth", 0, "cost tree depth limit (0 = unlimited)")
	parallel  = flag.Int("parallel", 0, "worker-pool size for per-PE loops (0 = serial, -1 = GOMAXPROCS); results are identical either way")
	faults    = flag.String("faults", "", "fault spec, e.g. transient=0.05,retries=3,fail=1,gap=50 (empty = no faults)")
	faultSeed = flag.Int64("fault-seed", 1, "fault schedule RNG seed (same seed = same schedule)")
	cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProf   = flag.String("memprofile", "", "write a heap allocation profile to this file at exit (go tool pprof)")
)

// machineOpts translates -parallel into machine options.
func machineOpts() []machine.Option {
	if *parallel == 0 {
		return nil
	}
	return []machine.Option{machine.WithParallel(*parallel)}
}

// topoOf returns a network of the requested family with at least pes
// PEs (the Θ(n)-PE algorithms: Theorem 4.2 and all of §5), through the
// facade's topology registry.
func topoOf(pes int) machine.Topology {
	topo, err := dyncg.ParseTopology(*topoName)
	check(err)
	net, err := dyncg.NewNetwork(topo, pes)
	check(err)
	return net
}

// topoFor sizes the machine by the envelope bound λ(n, s) (the Θ(λ(n,s))-PE
// transient algorithms of §4), matching core.MeshFor/CubeFor.
func topoFor(points, s int) machine.Topology {
	if *topoName == "mesh" {
		return topoOf(penvelope.MeshPEs(points, s))
	}
	return topoOf(penvelope.CubePEs(points, s))
}

func main() {
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			check(err)
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			check(pprof.WriteHeapProfile(f))
		}()
	}
	r := rand.New(rand.NewSource(*seed))
	var sys *motion.System
	switch *workload {
	case "random":
		sys = motion.Random(r, *n, *k, *d, 10)
	case "converging":
		sys = motion.Converging(r, *n)
	case "diverging":
		sys = motion.Diverging(r, *n)
	case "circle":
		sys = motion.OnCircle(*n, 10)
	default:
		fatal("unknown workload %q", *workload)
	}
	fmt.Printf("workload: %s, n=%d, k=%d, d=%d, machine=%s\n",
		*workload, sys.N(), sys.K, sys.D, *topoName)

	spec, err := fault.ParseSpec(*faults)
	check(err)
	var plan *fault.Plan
	if !spec.Zero() {
		plan = fault.NewPlan(spec, *faultSeed)
	}

	// Each case picks the machine the algorithm needs and splits the old
	// inline run into a body (the re-run unit of the recovery protocol:
	// results land in captured variables, and bodies that would index out
	// of a too-small degraded machine return an error instead) and a
	// report printed once the harness succeeds.
	var topo machine.Topology
	var body func(*machine.M) error
	var report func()
	switch *algo {
	case "closest", "farthest":
		topo = topoFor(sys.N(), 2*maxi(sys.K, 1))
		var seq []core.NeighborEvent
		body = func(m *machine.M) error {
			var err error
			if *algo == "closest" {
				seq, err = core.ClosestPointSequence(m, sys, *origin)
			} else {
				seq, err = core.FarthestPointSequence(m, sys, *origin)
			}
			return err
		}
		report = func() {
			fmt.Printf("%s-point sequence for P%d:\n", *algo, *origin)
			for _, ev := range seq {
				fmt.Printf("  P%-3d on %s\n", ev.Point, ivString(ev.Lo, ev.Hi))
			}
		}
	case "collisions":
		topo = topoOf(8 * sys.N())
		var cs []core.Collision
		body = func(m *machine.M) error {
			var err error
			cs, err = core.CollisionTimes(m, sys, *origin)
			return err
		}
		report = func() {
			fmt.Printf("%d collisions involving P%d:\n", len(cs), *origin)
			for _, c := range cs {
				fmt.Printf("  t=%.4f with P%d\n", c.T, c.B)
			}
		}
	case "hullmember":
		topo = topoFor(sys.N(), 4*maxi(sys.K, 1)+2)
		var ivs []core.Interval
		body = func(m *machine.M) error {
			var err error
			ivs, err = core.HullVertexIntervals(m, sys, *origin)
			return err
		}
		report = func() {
			fmt.Printf("P%d is a hull vertex during:\n", *origin)
			for _, iv := range ivs {
				fmt.Printf("  %s\n", ivString(iv.Lo, iv.Hi))
			}
		}
	case "containment":
		box := parseDims(*dims)
		topo = topoFor(sys.N(), sys.K+2)
		var ivs []core.Interval
		body = func(m *machine.M) error {
			var err error
			ivs, err = core.ContainmentIntervals(m, sys, box)
			return err
		}
		report = func() {
			fmt.Printf("system fits in %v during:\n", box)
			for _, iv := range ivs {
				fmt.Printf("  %s\n", ivString(iv.Lo, iv.Hi))
			}
		}
	case "cube-edge":
		topo = topoFor(sys.N(), sys.K+2)
		var dfn pieces.Piecewise
		body = func(m *machine.M) error {
			var err error
			dfn, err = core.SmallestHypercubeEdge(m, sys)
			return err
		}
		report = func() {
			fmt.Printf("D(t) has %d pieces:\n", len(dfn))
			for _, p := range dfn {
				fmt.Printf("  %s on %s\n", p.F, ivString(p.Lo, p.Hi))
			}
		}
	case "smallest-cube":
		topo = topoFor(sys.N(), sys.K+2)
		var dmin, tmin float64
		body = func(m *machine.M) error {
			var err error
			dmin, tmin, err = core.SmallestEverHypercube(m, sys)
			return err
		}
		report = func() {
			fmt.Printf("smallest-ever bounding hypercube: edge %.4f at t=%.4f\n", dmin, tmin)
		}
	case "steady-nn":
		topo = topoOf(sys.N())
		var nn int
		body = func(m *machine.M) error {
			if m.Size() < sys.N() {
				return fmt.Errorf("steady-nn: %d points on %d PEs", sys.N(), m.Size())
			}
			var err error
			nn, err = core.SteadyNearestNeighbor(m, sys, *origin, false)
			return err
		}
		report = func() {
			fmt.Printf("steady-state nearest neighbour of P%d: P%d\n", *origin, nn)
		}
	case "steady-cp":
		topo = topoOf(4 * sys.N())
		var a, b int
		body = func(m *machine.M) error {
			if m.Size() < sys.N() {
				return fmt.Errorf("steady-cp: %d points on %d PEs", sys.N(), m.Size())
			}
			var err error
			a, b, err = core.SteadyClosestPair(m, sys)
			return err
		}
		report = func() { fmt.Printf("steady-state closest pair: P%d, P%d\n", a, b) }
	case "steady-hull":
		topo = topoOf(8 * sys.N())
		var hull []int
		body = func(m *machine.M) error {
			if m.Size() < sys.N() {
				return fmt.Errorf("steady-hull: %d points on %d PEs", sys.N(), m.Size())
			}
			var err error
			hull, err = core.SteadyHull(m, sys)
			return err
		}
		report = func() {
			fmt.Printf("steady-state hull (%d vertices, CCW): %v\n", len(hull), hull)
		}
	case "steady-farthest":
		topo = topoOf(8 * sys.N())
		var a, b int
		var d2 poly.Poly
		body = func(m *machine.M) error {
			// The antipodal stage groups hull edges with query directions
			// on one machine, so demand headroom beyond the point count.
			if m.Size() < 4*sys.N() {
				return fmt.Errorf("steady-farthest: %d points need %d PEs, machine has %d",
					sys.N(), 4*sys.N(), m.Size())
			}
			var err error
			a, b, d2, err = core.SteadyFarthestPair(m, sys)
			return err
		}
		report = func() {
			fmt.Printf("steady-state farthest pair: P%d, P%d with d²(t) = %v\n", a, b, d2)
		}
	case "steady-rect":
		topo = topoOf(8 * sys.N())
		var rect core.SteadyRect
		body = func(m *machine.M) error {
			if m.Size() < 4*sys.N() {
				return fmt.Errorf("steady-rect: %d points need %d PEs, machine has %d",
					sys.N(), 4*sys.N(), m.Size())
			}
			var err error
			rect, err = core.SteadyMinAreaRect(m, sys)
			return err
		}
		report = func() {
			fmt.Printf("steady-state min-area rectangle: base on hull edge %d, area(t) = %v\n",
				rect.Edge, rect.Area)
		}
	default:
		fatal("unknown algorithm %q", *algo)
	}

	// Attach a fresh tracer to every attempt's machine; -costtree and
	// -trace report the final attempt (the one that produced the answer
	// and carries the recovery charge), as aborted attempts die mid-span.
	var tr *trace.Tracer
	opts := []fault.RunOption{fault.WithMachineOptions(machineOpts()...)}
	if *traceOut != "" || *costTree {
		opts = append(opts, fault.WithAttach(func(m *machine.M, attempt int) {
			tr = trace.Attach(m, *algo)
		}))
	}
	res, err := fault.Run(topo, plan, body, opts...)
	check(err)
	report()
	fmt.Printf("\nsimulated parallel time on %s: %v\n", res.Topo.Name(), res.Stats)
	if plan != nil {
		fmt.Printf("fault report: %s\n", res)
	}

	if tr != nil {
		root := tr.Finish()
		if *costTree {
			fmt.Println()
			trace.WriteCostTree(os.Stdout, root, *costDepth)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			check(err)
			check(trace.WriteChrome(f, root, res.M))
			check(f.Close())
			fmt.Printf("\nchrome trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
		}
	}
}

func ivString(lo, hi float64) string {
	h := "∞"
	if !math.IsInf(hi, 1) {
		h = fmt.Sprintf("%.4f", hi)
	}
	return fmt.Sprintf("[%.4f, %s]", lo, h)
}

func parseDims(s string) []float64 {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		check(err)
		out[i] = v
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dyncg: "+format+"\n", args...)
	os.Exit(1)
}
