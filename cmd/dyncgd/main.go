// Command dyncgd is the batch-serving daemon: a long-running HTTP server
// exposing every algorithm of the dyncg facade as POST /v1/<algorithm>
// with the versioned JSON schema of internal/api, backed by a pool of
// pre-warmed simulated machines (internal/server).
//
//	dyncgd -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/closest-point-sequence -d '{
//	  "v": 1,
//	  "system": [[[0,1],[0]], [[10,-1],[1]]],
//	  "origin": 0,
//	  "options": {"topology": "hypercube"}
//	}'
//
// Stateful scenario sessions pin a warm machine across requests and
// apply trajectory deltas with incremental recompute:
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{...}'         # create
//	curl -s -X POST localhost:8080/v1/sessions/{id}/update -d ...  # batch deltas
//	curl -s localhost:8080/v1/sessions/{id}/query                  # maintained answer
//	curl -s -X DELETE localhost:8080/v1/sessions/{id}              # release machine
//
// -max-sessions caps concurrently live sessions; -session-ttl evicts
// idle ones (their machines return to the warm pool).
//
// Operational endpoints: GET /healthz (200 while serving, 503 while
// draining) and GET /metrics (Prometheus text format: per-algorithm
// request counts and latency histograms, pool hit/miss/eviction
// counters, queue depth, session gauges and update latency). On
// SIGINT/SIGTERM the daemon drains: health flips to 503, new requests
// are rejected, and in-flight requests get -drain-timeout to finish.
//
// With -log-dir the daemon records every served /v1/* request and
// response into an append-only hash-chained computation log
// (internal/replaylog), rotated by -log-max-bytes and sealed with a
// Merkle anchor per segment. The companion subcommand
//
//	dyncgd replay -log-dir DIR [-from N] [-to N] [-ignore-pool]
//
// verifies the chain (any flipped byte is reported with the index of
// the first bad record) and re-executes the log against a fresh
// in-process server, diffing every response byte-for-byte; it exits
// non-zero on tampering or on the first divergent record.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dyncg/internal/fleet"
	"dyncg/internal/replaylog"
	"dyncg/internal/server"
)

var (
	addr         = flag.String("addr", ":8080", "listen address")
	poolCap      = flag.Int("pool-cap", 32, "max idle machines retained across size classes (negative disables pooling)")
	poolMaxPEs   = flag.Int("pool-max-pes", 0, "max total PEs across idle pooled machines, the memory bound at large n (0 = 2^22, negative = unbounded)")
	maxInflight  = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	maxQueue     = flag.Int("queue", 0, "max requests waiting for an execution slot (0 = 4x max-inflight)")
	deadline     = flag.Duration("deadline", 30*time.Second, "default per-request deadline, queueing included")
	workers      = flag.Int("workers", 0, "default worker-pool size for requests that do not set options.workers (0 = serial)")
	drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	maxSessions  = flag.Int("max-sessions", 0, "max concurrently live scenario sessions (0 = 64, negative = unbounded)")
	sessionTTL   = flag.Duration("session-ttl", 0, "evict sessions idle longer than this (0 = 15m, negative disables eviction)")
	logFormat    = flag.String("log", "json", "request log format: json|text")
	logDir       = flag.String("log-dir", "", "record every /v1/* request into a hash-chained replay log under this directory (empty disables)")
	logMaxBytes  = flag.Int64("log-max-bytes", replaylog.DefaultMaxSegment, "replay-log segment rotation threshold in bytes")
	shards       = flag.Int("shards", 1, "number of in-process server shards; requests route by machine class, sessions by ID (consistent hash)")
	rcacheBytes  = flag.Int64("rcache-bytes", server.DefaultCacheBytes, "response cache budget in bytes, per shard (0 disables)")
	coalesce     = flag.Bool("coalesce", true, "merge identical in-flight requests into one computation")
	fleetSpec    = flag.String("fleet", "", "run as a fleet front door over these workers: comma-separated id=url pairs (m0=http://127.0.0.1:9101,...)")
	fleetConfig  = flag.String("fleet-config", "", "run as a fleet front door over the members in this JSON file ({\"members\":[{\"id\":...,\"url\":...},...]})")
	memberID     = flag.String("member-id", "", "this worker's fleet member ID: stamped on responses, salted into session IDs")
	fleetIDs     = flag.String("fleet-ids", "", "comma-separated IDs of every fleet member (workers mint session IDs that hash home to -member-id on this roster)")
	probeEvery   = flag.Duration("probe-interval", time.Second, "front-door health-probe period (fleet mode)")
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		os.Exit(runReplay(os.Args[2:]))
	}
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "dyncgd: unknown -log format %q (want json|text)\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	var rlog *replaylog.Log
	if *logDir != "" {
		var err error
		rlog, err = replaylog.Open(*logDir, replaylog.WithMaxSegment(*logMaxBytes))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dyncgd: %v\n", err)
			os.Exit(1)
		}
		seq, head := rlog.Head()
		log.Info("replay log open", "dir", *logDir, "next_seq", seq, "head", head)
	}

	if *fleetSpec != "" || *fleetConfig != "" {
		os.Exit(runFrontDoor(log, rlog))
	}

	cfg := server.Config{
		MemberID:       *memberID,
		FleetIDs:       splitIDs(*fleetIDs),
		PoolCap:        *poolCap,
		PoolMaxPEs:     *poolMaxPEs,
		MaxInFlight:    *maxInflight,
		MaxQueue:       *maxQueue,
		Deadline:       *deadline,
		DefaultWorkers: *workers,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
		Logger:         log,
		ReplayLog:      rlog,
		CacheBytes:     *rcacheBytes,
		Coalesce:       *coalesce,
	}

	// A Server and a Router expose the same serving surface; -shards 1
	// skips the routing layer entirely.
	var srv interface {
		Handler() http.Handler
		SetDraining(bool)
		InFlight() int
	}
	if *shards > 1 {
		srv = server.NewRouter(*shards, cfg)
	} else {
		srv = server.New(cfg)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("dyncgd listening", "addr", *addr, "pool_cap", *poolCap,
		"shards", *shards, "rcache_bytes", *rcacheBytes, "coalesce", *coalesce)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Error("listen failed", "err", err)
		os.Exit(1)
	case got := <-sig:
		log.Info("draining", "signal", got.String(), "in_flight", srv.InFlight())
	}

	// Graceful drain: reject new work, give in-flight requests the grace
	// period, then force-close whatever is left.
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("forced shutdown after drain timeout", "err", err)
		hs.Close()
		os.Exit(1)
	}
	if rlog != nil {
		// Seal the open segment after the drain so the log ends on an
		// anchor; a restart resumes the chain from it.
		if err := rlog.Close(); err != nil {
			log.Warn("replay log close failed", "err", err)
			os.Exit(1)
		}
	}
	log.Info("stopped")
}

// splitIDs parses a comma-separated ID roster, dropping empties.
func splitIDs(s string) []string {
	if s == "" {
		return nil
	}
	var ids []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// parseFleet resolves the fleet roster from -fleet (id=url pairs) or
// -fleet-config (JSON file).
func parseFleet() ([]fleet.Member, error) {
	if *fleetSpec != "" && *fleetConfig != "" {
		return nil, errors.New("use -fleet or -fleet-config, not both")
	}
	if *fleetConfig != "" {
		data, err := os.ReadFile(*fleetConfig)
		if err != nil {
			return nil, err
		}
		var doc struct {
			Members []fleet.Member `json:"members"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", *fleetConfig, err)
		}
		return doc.Members, nil
	}
	var members []fleet.Member
	for _, pair := range strings.Split(*fleetSpec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-fleet entry %q is not id=url", pair)
		}
		members = append(members, fleet.Member{ID: id, URL: url})
	}
	return members, nil
}

// runFrontDoor serves fleet mode: the consistent-hash front door over
// the worker roster, with the response cache, coalescer, and replay
// log held here — fleet-wide — instead of per worker.
func runFrontDoor(log *slog.Logger, rlog *replaylog.Log) int {
	members, err := parseFleet()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncgd: %v\n", err)
		return 2
	}
	fd, err := fleet.New(fleet.Config{
		Members:        members,
		DefaultWorkers: *workers,
		Deadline:       *deadline,
		ProbeInterval:  *probeEvery,
		CacheBytes:     *rcacheBytes,
		Coalesce:       *coalesce,
		Logger:         log,
		ReplayLog:      rlog,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncgd: %v\n", err)
		return 2
	}
	fd.Start()
	hs := &http.Server{Addr: *addr, Handler: fd.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("dyncgd front door listening", "addr", *addr,
		"members", len(members), "rcache_bytes", *rcacheBytes, "coalesce", *coalesce)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Error("listen failed", "err", err)
		return 1
	case got := <-sig:
		log.Info("shutting down", "signal", got.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("forced shutdown after drain timeout", "err", err)
		hs.Close()
		return 1
	}
	fd.Close()
	if rlog != nil {
		if err := rlog.Close(); err != nil {
			log.Warn("replay log close failed", "err", err)
			return 1
		}
	}
	log.Info("stopped")
	return 0
}

// runReplay is the `dyncgd replay` subcommand: verify the chain and
// re-execute the log against a fresh in-process server.
func runReplay(args []string) int {
	fs := flag.NewFlagSet("dyncgd replay", flag.ExitOnError)
	var (
		dir        = fs.String("log-dir", "", "replay log directory (required)")
		from       = fs.Uint64("from", 0, "first record Seq to replay")
		to         = fs.Uint64("to", 0, "last record Seq to replay (0 = end of log)")
		poolCap    = fs.Int("pool-cap", 32, "pool capacity of the replay server (match the recording daemon)")
		workers    = fs.Int("workers", 0, "default worker-pool size of the replay server (match the recording daemon)")
		ignorePool = fs.Bool("ignore-pool", false, "mask pool checkout info before diffing (for traces recorded under concurrent traffic)")
		cacheBytes = fs.Int64("rcache-bytes", server.DefaultCacheBytes, "response cache budget of the replay server (match the recording daemon: a cached repeat only re-derives identical bytes if replay caches too)")
		coalesce   = fs.Bool("coalesce", true, "enable coalescing on the replay server (match the recording daemon)")
		verifyOnly = fs.Bool("verify-only", false, "verify the hash chain and exit without re-executing")
	)
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "dyncgd replay: -log-dir is required")
		return 2
	}

	recs, err := replaylog.ReadDir(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncgd replay: chain verification failed: %v\n", err)
		return 1
	}
	fmt.Printf("verified %d records (chain intact)\n", len(recs))
	if *verifyOnly {
		return 0
	}

	srv := server.New(server.Config{
		PoolCap:        *poolCap,
		DefaultWorkers: *workers,
		CacheBytes:     *cacheBytes,
		Coalesce:       *coalesce,
	})
	end := *to
	if end == 0 {
		end = ^uint64(0)
	}
	opts := []replaylog.ReplayOption{replaylog.WithRange(*from, end)}
	if *ignorePool {
		opts = append(opts, replaylog.WithIgnorePool())
	}
	rep, err := replaylog.Replay(srv.Handler(), recs, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncgd replay: %v\n", err)
		return 1
	}
	fmt.Printf("replayed %d requests (%d skipped as admission artifacts, %d anchors)\n",
		rep.Replayed, rep.Skipped, rep.Anchors)
	if rep.Diverged != nil {
		fmt.Fprintf(os.Stderr, "dyncgd replay: divergence at %s\n", rep.Diverged)
		return 1
	}
	fmt.Println("all responses byte-identical")
	return 0
}
