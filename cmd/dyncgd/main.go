// Command dyncgd is the batch-serving daemon: a long-running HTTP server
// exposing every algorithm of the dyncg facade as POST /v1/<algorithm>
// with the versioned JSON schema of internal/api, backed by a pool of
// pre-warmed simulated machines (internal/server).
//
//	dyncgd -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/closest-point-sequence -d '{
//	  "v": 1,
//	  "system": [[[0,1],[0]], [[10,-1],[1]]],
//	  "origin": 0,
//	  "options": {"topology": "hypercube"}
//	}'
//
// Stateful scenario sessions pin a warm machine across requests and
// apply trajectory deltas with incremental recompute:
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{...}'         # create
//	curl -s -X POST localhost:8080/v1/sessions/{id}/update -d ...  # batch deltas
//	curl -s localhost:8080/v1/sessions/{id}/query                  # maintained answer
//	curl -s -X DELETE localhost:8080/v1/sessions/{id}              # release machine
//
// -max-sessions caps concurrently live sessions; -session-ttl evicts
// idle ones (their machines return to the warm pool).
//
// Operational endpoints: GET /healthz (200 while serving, 503 while
// draining) and GET /metrics (Prometheus text format: per-algorithm
// request counts and latency histograms, pool hit/miss/eviction
// counters, queue depth, session gauges and update latency). On
// SIGINT/SIGTERM the daemon drains: health flips to 503, new requests
// are rejected, and in-flight requests get -drain-timeout to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dyncg/internal/server"
)

var (
	addr         = flag.String("addr", ":8080", "listen address")
	poolCap      = flag.Int("pool-cap", 32, "max idle machines retained across size classes (negative disables pooling)")
	maxInflight  = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	maxQueue     = flag.Int("queue", 0, "max requests waiting for an execution slot (0 = 4x max-inflight)")
	deadline     = flag.Duration("deadline", 30*time.Second, "default per-request deadline, queueing included")
	workers      = flag.Int("workers", 0, "default worker-pool size for requests that do not set options.workers (0 = serial)")
	drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	maxSessions  = flag.Int("max-sessions", 0, "max concurrently live scenario sessions (0 = 64, negative = unbounded)")
	sessionTTL   = flag.Duration("session-ttl", 0, "evict sessions idle longer than this (0 = 15m, negative disables eviction)")
	logFormat    = flag.String("log", "json", "request log format: json|text")
)

func main() {
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "dyncgd: unknown -log format %q (want json|text)\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	srv := server.New(server.Config{
		PoolCap:        *poolCap,
		MaxInFlight:    *maxInflight,
		MaxQueue:       *maxQueue,
		Deadline:       *deadline,
		DefaultWorkers: *workers,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
		Logger:         log,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("dyncgd listening", "addr", *addr, "pool_cap", *poolCap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Error("listen failed", "err", err)
		os.Exit(1)
	case got := <-sig:
		log.Info("draining", "signal", got.String(), "in_flight", srv.InFlight())
	}

	// Graceful drain: reject new work, give in-flight requests the grace
	// period, then force-close whatever is left.
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("forced shutdown after drain timeout", "err", err)
		hs.Close()
		os.Exit(1)
	}
	log.Info("stopped")
}
