// Command benchgate converts `go test -bench -benchmem` output into the
// committed BENCH_perf.json baseline and gates changes against it — the
// regression half of the continuous benchmark harness driven by
// scripts/bench.sh.
//
// Modes (both read benchmark output on stdin):
//
//	benchgate -out BENCH_perf.json     # parse and (re)write the baseline
//	benchgate -check BENCH_perf.json   # compare against the baseline
//
// Gate tolerances. The three measurements regress in very different ways,
// so each has its own gate, loosest where the noise is largest:
//
//   - allocs/op is deterministic for a fixed iteration count (the suite
//     pins -benchtime 100x), so the gate is tight: FAIL when
//     new > old·1.25 + 2. The +2 absorbs once-per-run warmup amortised
//     over the fixed iterations; the factor flags any real reintroduction
//     of per-call allocation.
//
//   - B/op is nearly deterministic but rounding and map growth wobble it:
//     FAIL when new > old·1.5 + 512.
//
//   - ns/op is host- and load-dependent — shared CI runners routinely
//     swing ±3× — so the gate only catches catastrophic regressions:
//     FAIL when new > old·6. Trend tracking for real wall-clock work
//     belongs on a quiet machine with the committed baseline refreshed
//     deliberately (scripts/bench.sh with no flag).
//
//   - req/s (the saturation throughput rows reported by
//     BenchmarkServerThroughput via b.ReportMetric) is higher-is-better
//     and as host-dependent as ns/op, so its gate mirrors the
//     catastrophic one in the opposite direction: FAIL when
//     new < old/6.
//
// A benchmark present in the baseline but missing from stdin fails the
// gate (a silently dropped benchmark would hide any regression); new
// benchmarks not yet in the baseline are reported and pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. AllocsOp and BytesOp are −1
// when the benchmark did not report memory statistics; ReqS is 0 when
// the benchmark did not report a throughput metric.
type Result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	ReqS     float64 `json:"req_s,omitempty"`
}

// Baseline is the committed BENCH_perf.json schema.
type Baseline struct {
	Note       string   `json:"note"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	outPath := flag.String("out", "", "write parsed results as a baseline JSON file")
	checkPath := flag.String("check", "", "compare parsed results against this baseline JSON file")
	benchtime := flag.String("benchtime", "100x", "benchtime the suite was run with (recorded in the baseline)")
	flag.Parse()
	if (*outPath == "") == (*checkPath == "") {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -out or -check is required")
		os.Exit(2)
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *outPath != "" {
		b := Baseline{
			Note:       "Pinned perf baseline for BenchmarkPerf*/; regenerate with scripts/bench.sh, gate with scripts/bench.sh -check.",
			Benchtime:  *benchtime,
			Benchmarks: results,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), *outPath)
		return
	}

	data, err := os.ReadFile(*checkPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *checkPath, err)
		os.Exit(2)
	}
	if gate(base, results) {
		fmt.Println("benchgate: OK")
		return
	}
	os.Exit(1)
}

// parse extracts Benchmark lines from `go test -bench` output. The
// trailing -N GOMAXPROCS suffix is stripped so baselines compare across
// machines with different core counts.
func parse(f io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Name: name, BytesOp: -1, AllocsOp: -1}
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BytesOp = v
			case "allocs/op":
				r.AllocsOp = v
			case "req/s":
				r.ReqS = v
			}
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// gate compares current results against the baseline, printing one line
// per problem; it returns true when everything passes.
func gate(base Baseline, cur []Result) bool {
	curBy := map[string]Result{}
	for _, r := range cur {
		curBy[r.Name] = r
	}
	baseNames := map[string]bool{}
	ok := true
	for _, old := range base.Benchmarks {
		baseNames[old.Name] = true
		now, found := curBy[old.Name]
		if !found {
			fmt.Printf("FAIL %s: present in baseline but not in this run\n", old.Name)
			ok = false
			continue
		}
		if old.AllocsOp >= 0 && now.AllocsOp > old.AllocsOp*1.25+2 {
			fmt.Printf("FAIL %s: allocs/op %.1f exceeds baseline %.1f (gate: old*1.25+2)\n",
				old.Name, now.AllocsOp, old.AllocsOp)
			ok = false
		}
		if old.BytesOp >= 0 && now.BytesOp > old.BytesOp*1.5+512 {
			fmt.Printf("FAIL %s: B/op %.0f exceeds baseline %.0f (gate: old*1.5+512)\n",
				old.Name, now.BytesOp, old.BytesOp)
			ok = false
		}
		if old.NsOp > 0 && now.NsOp > old.NsOp*6 {
			fmt.Printf("FAIL %s: ns/op %.0f exceeds baseline %.0f by >6x (catastrophic gate)\n",
				old.Name, now.NsOp, old.NsOp)
			ok = false
		}
		if old.ReqS > 0 && now.ReqS < old.ReqS/6 {
			fmt.Printf("FAIL %s: req/s %.0f fell below baseline %.0f by >6x (catastrophic gate, higher is better)\n",
				old.Name, now.ReqS, old.ReqS)
			ok = false
		}
	}
	for _, r := range cur {
		if !baseNames[r.Name] {
			fmt.Printf("note: %s not in baseline (new benchmark; refresh with scripts/bench.sh)\n", r.Name)
		}
	}
	return ok
}
