package main

import (
	"strings"
	"testing"
)

func res(name string, ns, b, allocs float64) Result {
	return Result{Name: name, NsOp: ns, BytesOp: b, AllocsOp: allocs}
}

func TestParseBenchOutput(t *testing.T) {
	in := strings.NewReader(`goos: linux
goarch: amd64
pkg: dyncg
BenchmarkPerf/scan/mesh/n=256-8         	     100	     12345 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerfLargeN/scan/hypercube/n=1048576-16 	      20	 232739023 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-4	100	99 ns/op
BenchmarkServerThroughput/shards=2/dup=50-8 	   12000	     83000 ns/op	     12048 req/s
PASS
`)
	got, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	// Sorted by name; the -N GOMAXPROCS suffix must be stripped so
	// baselines compare across machines with different core counts.
	if got[0].Name != "BenchmarkNoMem" || got[0].NsOp != 99 {
		t.Errorf("got[0] = %+v", got[0])
	}
	if got[0].AllocsOp != -1 || got[0].BytesOp != -1 {
		t.Errorf("benchmark without -benchmem should record -1 sentinels, got %+v", got[0])
	}
	if got[1].Name != "BenchmarkPerf/scan/mesh/n=256" {
		t.Errorf("got[1].Name = %q", got[1].Name)
	}
	if got[2].Name != "BenchmarkPerfLargeN/scan/hypercube/n=1048576" || got[2].NsOp != 232739023 {
		t.Errorf("got[2] = %+v", got[2])
	}
	if got[3].Name != "BenchmarkServerThroughput/shards=2/dup=50" || got[3].ReqS != 12048 {
		t.Errorf("got[3] = %+v (want req/s metric parsed)", got[3])
	}
	if got[0].ReqS != 0 || got[1].ReqS != 0 {
		t.Errorf("rows without a throughput metric should record ReqS 0: %+v, %+v", got[0], got[1])
	}
}

func TestGateNewRowPasses(t *testing.T) {
	// A benchmark missing from the committed baseline must pass the gate:
	// adding a row (e.g. a new large-n size) cannot break CI before the
	// row is pinned by the next scripts/bench.sh refresh.
	base := Baseline{Benchmarks: []Result{res("BenchmarkPerf/old", 100, 0, 0)}}
	cur := []Result{
		res("BenchmarkPerf/old", 100, 0, 0),
		res("BenchmarkPerfLargeN/brand-new/n=1048576", 1e9, 4096, 200),
	}
	if !gate(base, cur) {
		t.Error("gate failed on a new, not-yet-pinned benchmark row")
	}
}

func TestGateMissingRowFails(t *testing.T) {
	base := Baseline{Benchmarks: []Result{
		res("BenchmarkPerf/kept", 100, 0, 0),
		res("BenchmarkPerf/dropped", 100, 0, 0),
	}}
	cur := []Result{res("BenchmarkPerf/kept", 100, 0, 0)}
	if gate(base, cur) {
		t.Error("gate passed despite a baseline benchmark missing from the run")
	}
}

func TestGateTolerances(t *testing.T) {
	cases := []struct {
		name string
		old  Result
		now  Result
		ok   bool
	}{
		{"allocs-within", res("b", 100, 100, 10), res("b", 100, 100, 14), true},
		{"allocs-over", res("b", 100, 100, 10), res("b", 100, 100, 15), false},
		{"allocs-zero-slack", res("b", 100, 0, 0), res("b", 100, 0, 2), true},
		{"allocs-zero-over", res("b", 100, 0, 0), res("b", 100, 0, 3), false},
		{"bytes-within", res("b", 100, 1000, 0), res("b", 100, 2012, 0), true},
		{"bytes-over", res("b", 100, 1000, 0), res("b", 100, 2013, 0), false},
		{"ns-noise-ok", res("b", 100, 0, 0), res("b", 600, 0, 0), true},
		{"ns-catastrophic", res("b", 100, 0, 0), res("b", 601, 0, 0), false},
		{"no-benchmem-skips-mem-gates", res("b", 100, -1, -1), res("b", 100, 1e9, 1e9), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := Baseline{Benchmarks: []Result{tc.old}}
			if got := gate(base, []Result{tc.now}); got != tc.ok {
				t.Errorf("gate(old=%+v, now=%+v) = %v, want %v", tc.old, tc.now, got, tc.ok)
			}
		})
	}
}

// TestGateThroughputDirection: req/s is higher-is-better — the gate
// must fire on collapses, not on gains, and skip rows without the
// metric.
func TestGateThroughputDirection(t *testing.T) {
	reqs := func(name string, ns, rs float64) Result {
		return Result{Name: name, NsOp: ns, BytesOp: -1, AllocsOp: -1, ReqS: rs}
	}
	cases := []struct {
		name string
		old  Result
		now  Result
		ok   bool
	}{
		{"reqs-noise-ok", reqs("t", 100, 6000), reqs("t", 100, 1001), true},
		{"reqs-collapse", reqs("t", 100, 6000), reqs("t", 100, 999), false},
		{"reqs-gain-ok", reqs("t", 100, 6000), reqs("t", 100, 60000), true},
		{"reqs-absent-in-baseline", reqs("t", 100, 0), reqs("t", 100, 1), true},
		{"reqs-lost-metric", reqs("t", 100, 6000), reqs("t", 100, 0), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := Baseline{Benchmarks: []Result{tc.old}}
			if got := gate(base, []Result{tc.now}); got != tc.ok {
				t.Errorf("gate(old=%+v, now=%+v) = %v, want %v", tc.old, tc.now, got, tc.ok)
			}
		})
	}
}
