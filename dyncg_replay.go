package dyncg

// The deterministic-replay facade over internal/replaylog: a dyncgd
// daemon started with -log-dir records every /v1/* request and response
// into an append-only hash-chained computation log, and this entry
// point re-derives every answer the log holds against a fresh
// in-process server, diffing each response byte-for-byte. See the
// `dyncgd replay` subcommand for the CLI form.

import (
	"dyncg/internal/replaylog"
	"dyncg/internal/server"
)

// ReplayReport summarises one replay run (see replaylog.Report).
type ReplayReport = replaylog.Report

// ReplayDivergence pinpoints the first replayed response that differed
// from the recorded one.
type ReplayDivergence = replaylog.Divergence

// ReplayOption configures Replay.
type ReplayOption = replaylog.ReplayOption

// ReplayRange replays only records with from ≤ Seq ≤ to (to < from
// means no upper bound).
func ReplayRange(from, to uint64) ReplayOption { return replaylog.WithRange(from, to) }

// ReplayIgnorePool masks pool checkout info before diffing — for traces
// recorded under concurrent traffic, where pool hits interleave
// nondeterministically.
func ReplayIgnorePool() ReplayOption { return replaylog.WithIgnorePool() }

// ReplayTamperError is the verification failure type: the index of the
// first bad record and why it failed.
type ReplayTamperError = replaylog.TamperError

// Replay verifies the hash-chained computation log under dir (refusing
// a tampered log with a *ReplayTamperError) and re-executes every
// recorded request, in log order, against a fresh server configured
// like a default daemon — response cache and coalescing enabled — and
// diffs each response byte-for-byte against the recorded one. The cache
// must match the recording daemon's: a repeat request recorded as a
// cache hit carries the first computation's pool info, which only a
// caching replay server re-derives (the `dyncgd replay` subcommand
// exposes the knobs). Session IDs — the one intentionally random byte
// sequence in a response — are mapped between recording and replay;
// everything else must match exactly, or the report carries the first
// divergence.
func Replay(dir string, opts ...ReplayOption) (*ReplayReport, error) {
	recs, err := replaylog.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{CacheBytes: server.DefaultCacheBytes, Coalesce: true})
	return replaylog.Replay(srv.Handler(), recs, opts...)
}

// VerifyReplayLog verifies the computation log under dir end to end and
// returns the number of records that verified before any failure; a
// tampered log yields a *ReplayTamperError locating the first bad
// record.
func VerifyReplayLog(dir string) (int, error) {
	return replaylog.VerifyChain(dir)
}
