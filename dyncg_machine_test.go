package dyncg_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dyncg"
)

// TestParseTopology covers the name → Topology mapping used by the CLIs
// and the server's JSON schema.
func TestParseTopology(t *testing.T) {
	for _, name := range []string{"mesh", "hypercube", "ccc", "shuffle"} {
		topo, err := dyncg.ParseTopology(name)
		if err != nil || string(topo) != name {
			t.Fatalf("ParseTopology(%q) = %v, %v", name, topo, err)
		}
	}
	if _, err := dyncg.ParseTopology("torus"); err == nil {
		t.Fatal("ParseTopology accepted an unknown family")
	}
}

// TestNewMachineAllTopologies constructs every bundled family through
// the options constructor and checks the size matches TopologySize.
func TestNewMachineAllTopologies(t *testing.T) {
	for _, topo := range []dyncg.Topology{dyncg.Mesh, dyncg.Hypercube, dyncg.CCC, dyncg.Shuffle} {
		m, err := dyncg.NewMachine(topo, 30)
		if err != nil {
			t.Fatalf("NewMachine(%s, 30): %v", topo, err)
		}
		want, err := dyncg.TopologySize(topo, 30)
		if err != nil {
			t.Fatalf("TopologySize(%s, 30): %v", topo, err)
		}
		if m.Size() != want {
			t.Fatalf("%s: Size() = %d, TopologySize = %d", topo, m.Size(), want)
		}
	}
	if _, err := dyncg.NewMachine(dyncg.Topology("torus"), 8); err == nil {
		t.Fatal("NewMachine accepted an unknown family")
	}
	// The largest bundled CCC has 8·2⁸ PEs; asking past it is a typed
	// too-few-PEs failure, not a string to match.
	if _, err := dyncg.NewMachine(dyncg.CCC, 1<<20); !errors.Is(err, dyncg.ErrTooFewPEs) {
		t.Fatalf("oversized CCC: err = %v, want ErrTooFewPEs", err)
	}
}

// TestDeprecatedWrappersMatchNewMachine pins the compatibility contract:
// the old one-shot constructors are thin wrappers over NewMachine and
// produce machines with identical topology and behaviour.
func TestDeprecatedWrappersMatchNewMachine(t *testing.T) {
	sys := dyncg.RandomSystem(rand.New(rand.NewSource(5)), 10, 1, 2, 8)
	pes := dyncg.EnvelopePEs(sys.N(), 2*sys.K)

	oldCube := dyncg.NewCubeMachine(pes)
	newCube, err := dyncg.NewMachine(dyncg.Hypercube, pes)
	if err != nil {
		t.Fatal(err)
	}
	if oldCube.Size() != newCube.Size() {
		t.Fatalf("cube sizes differ: %d vs %d", oldCube.Size(), newCube.Size())
	}
	oldSeq, err1 := dyncg.ClosestPointSequence(oldCube, sys, 0)
	newSeq, err2 := dyncg.ClosestPointSequence(newCube, sys, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(oldSeq, newSeq) || oldCube.Stats() != newCube.Stats() {
		t.Fatal("wrapper and NewMachine runs diverge")
	}

	oldMesh := dyncg.NewMeshMachine(sys.N())
	newMesh, err := dyncg.NewMachine(dyncg.Mesh, sys.N())
	if err != nil {
		t.Fatal(err)
	}
	if oldMesh.Size() != newMesh.Size() {
		t.Fatalf("mesh sizes differ: %d vs %d", oldMesh.Size(), newMesh.Size())
	}
}

// TestWithTracer checks the construction-time tracer option: the tracer
// is retrievable, and its finished root accounts for every simulated
// step.
func TestWithTracer(t *testing.T) {
	sys := dyncg.RandomSystem(rand.New(rand.NewSource(6)), 8, 1, 2, 8)
	m, err := dyncg.NewMachine(dyncg.Hypercube, 8*sys.N(), dyncg.WithTracer("test"))
	if err != nil {
		t.Fatal(err)
	}
	tr := dyncg.MachineTracer(m)
	if tr == nil {
		t.Fatal("MachineTracer = nil after WithTracer")
	}
	if _, err := dyncg.SteadyHull(m, sys); err != nil {
		t.Fatal(err)
	}
	root := tr.Finish()
	if root == nil || root.Delta().Time() != m.Stats().Time() {
		t.Fatalf("trace root does not cover the run: %v vs %d", root, m.Stats().Time())
	}

	bare, err := dyncg.NewMachine(dyncg.Hypercube, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dyncg.MachineTracer(bare) != nil {
		t.Fatal("MachineTracer non-nil without WithTracer")
	}
}

// TestWithParallel checks the worker-pool backend produces bit-identical
// answers and simulated costs.
func TestWithParallel(t *testing.T) {
	sys := dyncg.RandomSystem(rand.New(rand.NewSource(7)), 12, 1, 2, 8)
	pes := dyncg.EnvelopePEs(sys.N(), 2*sys.K)

	serial, err := dyncg.NewMachine(dyncg.Hypercube, pes)
	if err != nil {
		t.Fatal(err)
	}
	par, err := dyncg.NewMachine(dyncg.Hypercube, pes, dyncg.WithParallel(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err1 := dyncg.ClosestPointSequence(serial, sys, 0)
	got, err2 := dyncg.ClosestPointSequence(par, sys, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(want, got) || serial.Stats() != par.Stats() {
		t.Fatal("parallel backend diverges from serial")
	}
}

// TestWithFaultPlan checks the construction-time fault option: transient
// faults charge retry rounds while leaving the answer bit-identical;
// permanent-failure specs and malformed specs are rejected up front.
func TestWithFaultPlan(t *testing.T) {
	sys := dyncg.RandomSystem(rand.New(rand.NewSource(8)), 8, 1, 2, 8)
	pes := dyncg.EnvelopePEs(sys.N(), 2*sys.K)

	clean, err := dyncg.NewMachine(dyncg.Hypercube, pes)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := dyncg.NewMachine(dyncg.Hypercube, pes,
		dyncg.WithFaultPlan("transient=0.2,retries=4", 99))
	if err != nil {
		t.Fatal(err)
	}
	want, err1 := dyncg.ClosestPointSequence(clean, sys, 0)
	got, err2 := dyncg.ClosestPointSequence(faulty, sys, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("transient faults changed the answer")
	}
	if faulty.Stats().Time() <= clean.Stats().Time() {
		t.Fatalf("transient faults charged no retries: faulty %d, clean %d",
			faulty.Stats().Time(), clean.Stats().Time())
	}

	if _, err := dyncg.NewMachine(dyncg.Hypercube, pes,
		dyncg.WithFaultPlan("fail=2,gap=100", 1)); err == nil {
		t.Fatal("permanent-failure spec accepted by a direct machine")
	}
	if _, err := dyncg.NewMachine(dyncg.Hypercube, pes,
		dyncg.WithFaultPlan("bogus=1", 1)); err == nil {
		t.Fatal("malformed fault spec accepted")
	}
}

// TestTypedErrors checks the errors.Is contract the redesigned facade
// documents: too-small machines and bad inputs fail with the exported
// sentinels, no string matching needed.
func TestTypedErrors(t *testing.T) {
	sys := dyncg.RandomSystem(rand.New(rand.NewSource(9)), 16, 1, 2, 8)

	tiny, err := dyncg.NewMachine(dyncg.Hypercube, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyncg.ClosestPointSequence(tiny, sys, 0); !errors.Is(err, dyncg.ErrTooFewPEs) {
		t.Fatalf("tiny machine: err = %v, want ErrTooFewPEs", err)
	}

	big, err := dyncg.NewMachine(dyncg.Hypercube, dyncg.EnvelopePEs(sys.N(), 2*sys.K))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyncg.ClosestPointSequence(big, sys, 99); !errors.Is(err, dyncg.ErrBadSystem) {
		t.Fatalf("bad origin: err = %v, want ErrBadSystem", err)
	}
	if _, err := dyncg.NewSystem(nil); !errors.Is(err, dyncg.ErrBadSystem) {
		t.Fatalf("empty system: err = %v, want ErrBadSystem", err)
	}
}
