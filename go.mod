module dyncg

go 1.22
