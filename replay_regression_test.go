// Replay-driven regression battery for the hash-chained computation log
// (internal/replaylog): record a mixed trace — every one-shot /v1/*
// endpoint, a stateful session with batch updates, a fault-injected
// request, and the request-rejection paths — through a recording server,
// then replay it against a fresh server and demand byte-identical
// responses, on mesh and hypercube machines, serial and with a worker
// pool. The tamper subtests flip a single byte mid-log and demand
// VerifyChain reports the exact record.
//
// TestReplaySeedCorpus replays the committed traces under
// testdata/replay/ — captured smoke-test sessions that pin the serving
// surface end to end: any change to response bytes, result values, or
// simulated-cost accounting shows up as a divergence here.
package dyncg_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dyncg"
	"dyncg/internal/api"
	"dyncg/internal/motion"
	"dyncg/internal/replaylog"
	"dyncg/internal/server"
)

func wireSys(sys *motion.System) [][][]float64 {
	out := make([][][]float64, len(sys.Points))
	for i, p := range sys.Points {
		coords := make([][]float64, len(p.Coord))
		for j, c := range p.Coord {
			coords[j] = append([]float64(nil), c...)
		}
		out[i] = coords
	}
	return out
}

// send drives one request through the recording handler.
func send(t *testing.T, h http.Handler, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var r *httptest.ResponseRecorder
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	r = httptest.NewRecorder()
	h.ServeHTTP(r, req)
	return r.Code, r.Body.Bytes()
}

func postJSON(t *testing.T, h http.Handler, path string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	return send(t, h, http.MethodPost, path, body)
}

// oneShotRequests is one valid request per one-shot serving endpoint.
func oneShotRequests(tp string, workers int) map[string]api.Request {
	planar := motion.Random(rand.New(rand.NewSource(11)), 8, 1, 2, 10)
	colliding := motion.Converging(rand.New(rand.NewSource(12)), 8)
	diverging := motion.Diverging(rand.New(rand.NewSource(13)), 8)
	small := motion.Random(rand.New(rand.NewSource(14)), 6, 1, 2, 10)
	opts := api.Options{Topology: tp, Workers: workers}
	req := func(sys *motion.System, mod func(*api.Request)) api.Request {
		r := api.Request{V: api.Version, System: wireSys(sys), Options: opts}
		if mod != nil {
			mod(&r)
		}
		return r
	}
	return map[string]api.Request{
		"closest-point-sequence":  req(planar, func(r *api.Request) { r.Origin = 1 }),
		"farthest-point-sequence": req(planar, func(r *api.Request) { r.Origin = 2 }),
		"collision-times":         req(colliding, nil),
		"hull-vertex-intervals":   req(planar, func(r *api.Request) { r.Origin = 0 }),
		"containment-intervals":   req(planar, func(r *api.Request) { r.Dims = []float64{40, 40} }),
		"smallest-hypercube-edge": req(planar, nil),
		"smallest-ever-hypercube": req(planar, nil),
		"steady-nearest-neighbor": req(planar, func(r *api.Request) { r.Origin = 3 }),
		"steady-closest-pair":     req(planar, nil),
		"steady-hull":             req(diverging, nil),
		"steady-farthest-pair":    req(diverging, nil),
		"steady-min-area-rect":    req(diverging, nil),
		"closest-pair-sequence":   req(small, nil),
		"farthest-pair-sequence":  req(small, nil),
	}
}

// recordMixedTrace drives the full mixed trace through h. Sequential on
// purpose: arrival order is the log's replay order.
func recordMixedTrace(t *testing.T, h http.Handler, tp string, workers int) {
	t.Helper()
	for name, req := range oneShotRequests(tp, workers) {
		st, body := postJSON(t, h, "/v1/"+name, req)
		if st != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", name, st, body)
		}
	}

	// A fault-injected run: seeded schedule, recovery harness, pool
	// bypassed. Replay re-derives the same schedule from the seed.
	faulted := api.Request{
		V:      api.Version,
		System: wireSys(motion.Random(rand.New(rand.NewSource(15)), 8, 1, 2, 10)),
		Options: api.Options{
			Topology: tp, Workers: workers,
			Faults: "transient=0.05,retries=8", FaultSeed: 42,
		},
	}
	if st, body := postJSON(t, h, "/v1/steady-hull", faulted); st != http.StatusOK {
		t.Fatalf("faulted steady-hull: status %d, body %s", st, body)
	}

	// The rejection paths are part of the recorded surface too.
	if st, _ := send(t, h, http.MethodPost, "/v1/no-such-algorithm", []byte(`{"v":1}`)); st != http.StatusNotFound {
		t.Fatalf("unknown algorithm: status %d", st)
	}
	if st, _ := send(t, h, http.MethodPost, "/v1/steady-hull", []byte(`{"v":1,`)); st != http.StatusBadRequest {
		t.Fatalf("invalid body: status %d", st)
	}

	// A stateful session: create, batch updates, plain and verified
	// query, delete. The session ID is minted randomly per recording —
	// the one byte sequence replay must map rather than match.
	sys := motion.Random(rand.New(rand.NewSource(16)), 6, 1, 2, 10)
	create := api.SessionCreateRequest{
		V: api.Version, Algorithm: "closest-point-sequence",
		System: wireSys(sys), Origin: 0,
		Options: api.SessionOptions{Topology: tp, Workers: workers},
	}
	st, body := postJSON(t, h, "/v1/sessions", create)
	if st != http.StatusOK {
		t.Fatalf("session create: status %d, body %s", st, body)
	}
	var created api.SessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("decoding session create: %v (%s)", err, body)
	}
	sid := created.Session.ID

	updates := []api.SessionUpdateRequest{
		{V: api.Version, Deltas: []api.SessionDelta{
			{Op: "insert", Point: [][]float64{{3, 1}, {4, -1}}},
			{Op: "insert", Point: [][]float64{{-2, 2}, {5, 0}}},
		}},
		{V: api.Version, Deltas: []api.SessionDelta{
			{Op: "retarget", ID: 1, Point: [][]float64{{8, -2}, {1, 1}}},
			{Op: "delete", ID: 2},
		}},
	}
	for i, up := range updates {
		if st, body := postJSON(t, h, "/v1/sessions/"+sid+"/update", up); st != http.StatusOK {
			t.Fatalf("session update %d: status %d, body %s", i, st, body)
		}
	}
	if st, body := send(t, h, http.MethodGet, "/v1/sessions/"+sid+"/query", nil); st != http.StatusOK {
		t.Fatalf("session query: status %d, body %s", st, body)
	}
	if st, body := send(t, h, http.MethodGet, "/v1/sessions/"+sid+"/query?verify=1", nil); st != http.StatusOK {
		t.Fatalf("session verify query: status %d, body %s", st, body)
	}
	if st, body := send(t, h, http.MethodDelete, "/v1/sessions/"+sid, nil); st != http.StatusOK {
		t.Fatalf("session delete: status %d, body %s", st, body)
	}
	// Addressing the deleted session records a 404 — replayed verbatim.
	if st, _ := send(t, h, http.MethodGet, "/v1/sessions/"+sid+"/query", nil); st != http.StatusNotFound {
		t.Fatalf("query after delete: status %d", st)
	}
}

// TestReplayRegression is the battery: record, verify, replay, compare.
func TestReplayRegression(t *testing.T) {
	for _, tp := range []string{"mesh", "hypercube"} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tp, workers), func(t *testing.T) {
				dir := t.TempDir()
				// A tiny rotation threshold forces multi-segment logs, so
				// replay and verification cross anchor boundaries.
				rlog, err := replaylog.Open(dir, replaylog.WithMaxSegment(8<<10))
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				rec := server.New(server.Config{ReplayLog: rlog})
				recordMixedTrace(t, rec.Handler(), tp, workers)
				if err := rlog.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				segs, err := replaylog.Segments(dir)
				if err != nil || len(segs) < 2 {
					t.Fatalf("want a rotated multi-segment log, got %d segments (%v)", len(segs), err)
				}

				n, err := dyncg.VerifyReplayLog(dir)
				if err != nil {
					t.Fatalf("VerifyReplayLog: %v", err)
				}
				if n == 0 {
					t.Fatal("VerifyReplayLog verified no records")
				}

				rep, err := dyncg.Replay(dir)
				if err != nil {
					t.Fatalf("Replay: %v", err)
				}
				if rep.Diverged != nil {
					t.Fatalf("replay diverged: %s", rep.Diverged)
				}
				// 14 endpoints + faulted + 2 rejections + create +
				// 2 updates + 2 queries + delete + post-delete 404.
				if want := 24; rep.Replayed != want {
					t.Fatalf("replayed %d requests, want %d (report %+v)", rep.Replayed, want, rep)
				}
			})
		}
	}
}

// TestReplayRegressionCached is the battery under the daemon's default
// front door: record through a server with the response cache and
// coalescing enabled — including a duplicate round served from the
// cache and a concurrent identical burst that exercises coalescing —
// then verify the chain and replay. Cache-served and coalesced records
// carry the original computation's exact bytes, so a caching replay
// server re-derives every one of them byte-identically.
func TestReplayRegressionCached(t *testing.T) {
	dir := t.TempDir()
	rlog, err := replaylog.Open(dir, replaylog.WithMaxSegment(8<<10))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := server.New(server.Config{
		ReplayLog:  rlog,
		CacheBytes: server.DefaultCacheBytes,
		Coalesce:   true,
	})
	h := rec.Handler()
	recordMixedTrace(t, h, "hypercube", 1)

	// Duplicate round: every one-shot request again, byte-identical.
	// Each repeat must be absorbed by the response cache.
	reqs := oneShotRequests("hypercube", 1)
	for name, req := range reqs {
		if st, body := postJSON(t, h, "/v1/"+name, req); st != http.StatusOK {
			t.Fatalf("repeat %s: status %d, body %s", name, st, body)
		}
	}
	if hits := rec.RCacheStats().Hits; hits < int64(len(reqs)) {
		t.Fatalf("rcache hits = %d after the duplicate round, want ≥ %d", hits, len(reqs))
	}

	// Concurrent identical burst on a fresh system: the leader computes,
	// the rest coalesce onto it or hit the cache it fills — either way
	// every record carries the leader's bytes.
	const burst = 8
	burstReq := api.Request{
		V:      api.Version,
		System: wireSys(motion.Diverging(rand.New(rand.NewSource(99)), 8)),
	}
	burstBody, err := json.Marshal(burstReq)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = send(t, h, http.MethodPost, "/v1/steady-hull", burstBody)
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, code)
		}
	}

	if err := rlog.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := dyncg.VerifyReplayLog(dir); err != nil {
		t.Fatalf("VerifyReplayLog: %v", err)
	}
	rep, err := dyncg.Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Diverged != nil {
		t.Fatalf("cached recording diverged on replay: %s", rep.Diverged)
	}
	// 24 mixed-trace requests + 14 duplicates + the 8-way burst.
	if want := 24 + len(reqs) + burst; rep.Replayed != want {
		t.Fatalf("replayed %d requests, want %d (report %+v)", rep.Replayed, want, rep)
	}
}

// TestReplayTamperDetection flips one byte mid-log and demands the
// verifier name the exact record, and the replay facade refuse the log.
func TestReplayTamperDetection(t *testing.T) {
	dir := t.TempDir()
	rlog, err := replaylog.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := server.New(server.Config{ReplayLog: rlog})
	for name, req := range oneShotRequests("hypercube", 1) {
		if st, body := postJSON(t, rec.Handler(), "/v1/"+name, req); st != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", name, st, body)
		}
	}
	if err := rlog.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := dyncg.VerifyReplayLog(dir); err != nil {
		t.Fatalf("pristine log failed verification: %v", err)
	}

	segs, err := replaylog.Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("Segments: %v (%d)", err, len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	const target = 7 // a record in the middle of the log
	mid := len(lines[target]) / 2
	tampered := append([]byte(nil), data...)
	off := 0
	for i := 0; i < target; i++ {
		off += len(lines[i])
	}
	tampered[off+mid] ^= 0x01
	if err := os.WriteFile(segs[0], tampered, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	n, err := dyncg.VerifyReplayLog(dir)
	if err == nil {
		t.Fatal("VerifyReplayLog passed a tampered log")
	}
	var te *dyncg.ReplayTamperError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T, want *ReplayTamperError: %v", err, err)
	}
	if te.Seq != target {
		t.Fatalf("TamperError.Seq = %d, want %d", te.Seq, target)
	}
	if n != target {
		t.Fatalf("verified %d records before the tamper, want %d", n, target)
	}
	if _, err := dyncg.Replay(dir); err == nil {
		t.Fatal("Replay accepted a tampered log")
	}
}

// TestReplaySeedCorpus replays every committed trace under
// testdata/replay/ — the captured smoke-test sessions that pin the
// serving surface's exact response bytes across commits.
func TestReplaySeedCorpus(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "replay", "*"))
	if err != nil {
		t.Fatal(err)
	}
	var traces []string
	for _, d := range dirs {
		fi, err := os.Stat(d)
		if err != nil || !fi.IsDir() {
			continue
		}
		// Only directories holding replaylog segments are traces;
		// testdata/replay also hosts the columnar golden captures.
		segs, err := filepath.Glob(filepath.Join(d, "replay-*.log"))
		if err != nil || len(segs) == 0 {
			continue
		}
		traces = append(traces, d)
	}
	if len(traces) == 0 {
		t.Fatal("no seed traces under testdata/replay — regenerate with scripts/server_smoke.sh")
	}
	for _, dir := range traces {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			if _, err := dyncg.VerifyReplayLog(dir); err != nil {
				t.Fatalf("VerifyReplayLog: %v", err)
			}
			rep, err := dyncg.Replay(dir)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if rep.Diverged != nil {
				t.Fatalf("replay diverged from the committed trace: %s", rep.Diverged)
			}
			if rep.Replayed == 0 {
				t.Fatal("seed trace replayed no requests")
			}
		})
	}
}
