//go:build !race

package dyncg_test

// raceEnabled reports whether this test binary was built with the race
// detector. Race instrumentation multiplies the wall clock of the
// 2^20-PE sweeps by an order of magnitude, so the large-n smoke runs
// only in uninstrumented builds; the same columnar code paths get their
// race coverage from the differential battery at smaller n.
const raceEnabled = false
