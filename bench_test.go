// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results).
//
// The quantity under study is the *simulated parallel time* of each
// algorithm (machine.Stats.Time), reported as the custom metrics
// "simsteps" (and "pieces"/"ratio" where relevant); wall-clock ns/op
// measures the simulator itself, not the 1988 hardware. Run:
//
//	go test -bench=. -benchmem
//	go run ./cmd/tables            # human-readable table reproduction
package dyncg_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dyncg"
	"dyncg/internal/ccc"
	"dyncg/internal/core"
	"dyncg/internal/curve"
	"dyncg/internal/dsseq"
	"dyncg/internal/geom"
	"dyncg/internal/hypercube"
	"dyncg/internal/lockstep"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pgeom"
	"dyncg/internal/pieces"
	"dyncg/internal/pram"
	"dyncg/internal/ratfun"
	"dyncg/internal/shuffle"
)

func topologies(n int) map[string]func() *machine.M {
	return map[string]func() *machine.M{
		"mesh": func() *machine.M {
			return machine.New(mesh.MustNew(dsseq.NextPow4(n), mesh.Proximity))
		},
		"hypercube": func() *machine.M {
			return machine.New(hypercube.MustNew(dsseq.NextPow2(n)))
		},
	}
}

func reportSim(b *testing.B, m *machine.M) {
	b.ReportMetric(float64(m.Stats().Time()), "simsteps")
	b.ReportMetric(float64(m.Stats().CommSteps), "commsteps")
}

// --- Table 1: data movement operations -------------------------------------

func BenchmarkTable1(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{256, 1024, 4096} {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(1 << 20)
		}
		for topoName, mk := range topologies(n) {
			ops := map[string]func(m *machine.M){
				"semigroup": func(m *machine.M) {
					regs := machine.Scatter(n, vals)
					machine.Semigroup(m, regs, machine.WholeMachine(n), func(a, b int) int {
						if a < b {
							return a
						}
						return b
					})
				},
				"broadcast": func(m *machine.M) {
					regs := make([]machine.Reg[int], n)
					regs[n/3] = machine.Some(42)
					machine.Spread(m, regs, machine.WholeMachine(n))
				},
				"prefix": func(m *machine.M) {
					regs := machine.Scatter(n, vals)
					machine.Scan(m, regs, machine.WholeMachine(n), machine.Forward,
						func(a, b int) int { return a + b })
				},
				"merge": func(m *machine.M) {
					regs := machine.Scatter(n, vals)
					machine.SortBlocks(m, regs, n/2, func(a, b int) bool { return a < b })
					m.Reset()
					machine.MergeBlocks(m, regs, n, func(a, b int) bool { return a < b })
				},
				"sort": func(m *machine.M) {
					regs := machine.Scatter(n, vals)
					machine.Sort(m, regs, func(a, b int) bool { return a < b })
				},
				"grouping": func(m *machine.M) {
					// Sort-based concurrent read: sort, segment scan, sort back.
					regs := machine.Scatter(n, vals)
					machine.Sort(m, regs, func(a, b int) bool { return a < b })
					machine.Scan(m, regs, machine.BlockSegments(n, 16), machine.Forward,
						func(a, b int) int { return a })
					machine.Sort(m, regs, func(a, b int) bool { return a < b })
				},
			}
			for opName, op := range ops {
				b.Run(fmt.Sprintf("%s/%s/n=%d", opName, topoName, n), func(b *testing.B) {
					var last *machine.M
					for i := 0; i < b.N; i++ {
						m := mk()
						op(m)
						last = m
					}
					reportSim(b, last)
				})
			}
		}
	}
}

// --- Worker-pool backend: serial vs parallel wall-clock ---------------------

// BenchmarkParallelSort runs the largest Table-1 sort on the serial
// backend and on worker pools of 2, 4, and 8 goroutines. The simulated
// time is identical by construction (see the differential tests); the
// benchmark measures the host wall-clock effect of the sharded per-PE
// loops. Speedup is bounded by GOMAXPROCS — on a single-core host the
// parallel rows measure pure pool overhead.
func BenchmarkParallelSort(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	n := 65536
	vals := make([]int, n)
	for i := range vals {
		vals[i] = r.Intn(1 << 20)
	}
	topo := hypercube.MustNew(n)
	for _, workers := range []int{1, 2, 4, 8} {
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
			var last *machine.M
			for i := 0; i < b.N; i++ {
				var m *machine.M
				if workers > 1 {
					m = machine.New(topo, machine.WithParallel(workers))
				} else {
					m = machine.New(topo)
				}
				regs := machine.Scatter(n, vals)
				machine.Sort(m, regs, func(a, b int) bool { return a < b })
				last = m
			}
			reportSim(b, last)
		})
	}
}

// --- §3: envelope construction (Theorem 3.2) and C2 (PRAM comparison) ------

func BenchmarkEnvelope(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{64, 256, 1024} {
		cs := make([]curve.Curve, n)
		for i := range cs {
			cs[i] = curve.NewPoly(dyncg.Polynomial(r.NormFloat64()*5, r.NormFloat64(), 0.2+r.Float64()))
		}
		for _, tc := range []struct {
			name string
			mk   func() *machine.M
		}{
			{"mesh", func() *machine.M {
				return machine.New(mesh.MustNew(penvelope.MeshPEs(n, 2), mesh.Proximity))
			}},
			{"hypercube", func() *machine.M {
				return machine.New(hypercube.MustNew(penvelope.CubePEs(n, 2)))
			}},
		} {
			b.Run(fmt.Sprintf("theorem32/%s/n=%d", tc.name, n), func(b *testing.B) {
				var last *machine.M
				for i := 0; i < b.N; i++ {
					m := tc.mk()
					env, err := penvelope.EnvelopeOfCurves(m, cs, pieces.Min)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(len(env)), "pieces")
					last = m
				}
				reportSim(b, last)
			})
			b.Run(fmt.Sprintf("C2-pram-simulated/%s/n=%d", tc.name, n), func(b *testing.B) {
				var last *machine.M
				for i := 0; i < b.N; i++ {
					m := tc.mk()
					pram.Envelope(m, cs, pieces.Min)
					last = m
				}
				reportSim(b, last)
			})
		}
		b.Run(fmt.Sprintf("serial-baseline/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pieces.EnvelopeOfCurves(cs, pieces.Min)
			}
		})
	}
}

// --- Table 2: transient-behaviour problems ----------------------------------

func BenchmarkTable2(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{32, 128} {
		k := 2
		sys := motion.Random(r, n, k, 2, 8)
		sys3 := motion.Random(r, n, k, 3, 8)
		rows := []struct {
			name string
			s    int // envelope intersection bound for PE sizing
			run  func(m *machine.M) error
		}{
			{"closest-seq", 2 * k, func(m *machine.M) error {
				_, err := core.ClosestPointSequence(m, sys, 0)
				return err
			}},
			{"collisions", 1, func(m *machine.M) error {
				_, err := core.CollisionTimes(m, motion.Converging(r, n), 0)
				return err
			}},
			{"hull-membership", 4*k + 2, func(m *machine.M) error {
				_, err := core.HullVertexIntervals(m, sys, 0)
				return err
			}},
			{"containment", k + 2, func(m *machine.M) error {
				_, err := core.ContainmentIntervals(m, sys3, []float64{12, 12, 12})
				return err
			}},
			{"cube-edge-fn", k + 2, func(m *machine.M) error {
				_, err := core.SmallestHypercubeEdge(m, sys3)
				return err
			}},
			{"smallest-ever", k + 2, func(m *machine.M) error {
				_, _, err := core.SmallestEverHypercube(m, sys3)
				return err
			}},
		}
		for _, row := range rows {
			for _, tc := range []struct {
				name string
				mk   func(s int) *machine.M
			}{
				{"mesh", func(s int) *machine.M { return core.MeshFor(n, s) }},
				{"hypercube", func(s int) *machine.M { return core.CubeFor(n, s) }},
			} {
				b.Run(fmt.Sprintf("%s/%s/n=%d", row.name, tc.name, n), func(b *testing.B) {
					var last *machine.M
					for i := 0; i < b.N; i++ {
						m := tc.mk(row.s)
						if err := row.run(m); err != nil {
							b.Fatal(err)
						}
						last = m
					}
					reportSim(b, last)
				})
			}
		}
	}
}

// --- Table 3: steady-state problems -----------------------------------------

func BenchmarkTable3(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{64, 256} {
		sys := motion.Random(r, n, 1, 2, 8)
		div := motion.Diverging(r, n)
		rows := []struct {
			name string
			size int
			run  func(m *machine.M) error
		}{
			{"nearest-neighbor", n, func(m *machine.M) error {
				_, err := core.SteadyNearestNeighbor(m, sys, 0, false)
				return err
			}},
			{"closest-pair", 4 * n, func(m *machine.M) error {
				_, _, err := core.SteadyClosestPair(m, sys)
				return err
			}},
			{"hull", 8 * n, func(m *machine.M) error {
				_, err := core.SteadyHull(m, sys)
				return err
			}},
			{"farthest-pair", 8 * n, func(m *machine.M) error {
				_, _, _, err := core.SteadyFarthestPair(m, div)
				return err
			}},
			{"min-area-rect", 8 * n, func(m *machine.M) error {
				_, err := core.SteadyMinAreaRect(m, div)
				return err
			}},
		}
		for _, row := range rows {
			for _, tc := range []struct {
				name string
				mk   func(sz int) *machine.M
			}{
				{"mesh", func(sz int) *machine.M { return core.MeshOf(sz) }},
				{"hypercube", func(sz int) *machine.M { return core.CubeOf(sz) }},
			} {
				b.Run(fmt.Sprintf("%s/%s/n=%d", row.name, tc.name, n), func(b *testing.B) {
					var last *machine.M
					for i := 0; i < b.N; i++ {
						m := tc.mk(row.size)
						if err := row.run(m); err != nil {
							b.Fatal(err)
						}
						last = m
					}
					reportSim(b, last)
				})
			}
		}
	}
}

// --- Table 4: static algorithms ----------------------------------------------

func BenchmarkTable4(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{64, 256, 1024} {
		pts := make([]geom.Point[ratfun.F64], n)
		for i := range pts {
			pts[i] = geom.Point[ratfun.F64]{
				X: ratfun.F64(r.NormFloat64() * 20), Y: ratfun.F64(r.NormFloat64() * 20), ID: i,
			}
		}
		hull := geom.Hull(pts)
		rows := []struct {
			name string
			run  func(m *machine.M) error
		}{
			{"closest-pair", func(m *machine.M) error {
				pgeom.ClosestPair(m, pts)
				return nil
			}},
			{"convex-hull", func(m *machine.M) error {
				_, err := pgeom.HullStatic(m, pts)
				return err
			}},
			{"antipodal", func(m *machine.M) error {
				pgeom.AntipodalPairs(m, hull)
				return nil
			}},
			{"min-rect", func(m *machine.M) error {
				pgeom.MinAreaRect(m, hull)
				return nil
			}},
		}
		for _, row := range rows {
			for topoName, mk := range topologies(8 * n) {
				b.Run(fmt.Sprintf("%s/%s/n=%d", row.name, topoName, n), func(b *testing.B) {
					var last *machine.M
					for i := 0; i < b.N; i++ {
						m := mk()
						if err := row.run(m); err != nil {
							b.Fatal(err)
						}
						last = m
					}
					reportSim(b, last)
				})
			}
		}
	}
}

// --- C1: λ(n, s) growth (Theorem 2.3) ----------------------------------------

func BenchmarkC1LambdaGrowth(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("extremal-parabolas/n=%d", n), func(b *testing.B) {
			ps := dsseq.ExtremalParabolas(n)
			cs := make([]curve.Curve, n)
			for i, p := range ps {
				cs[i] = curve.NewPoly(p)
			}
			var got int
			for i := 0; i < b.N; i++ {
				env := pieces.EnvelopeOfCurves(cs, pieces.Min)
				got = len(env)
			}
			b.ReportMetric(float64(got), "pieces")
			b.ReportMetric(float64(dsseq.Lambda(n, 2)), "lambda")
		})
	}
}

// --- C3: steady-state shortcut vs transient tail ------------------------------

func BenchmarkC3SteadyShortcut(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	for _, n := range []int{64, 256} {
		sys := motion.Random(r, n, 1, 2, 8)
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			var last *machine.M
			for i := 0; i < b.N; i++ {
				m := core.MeshOf(n)
				if _, err := core.SteadyNearestNeighbor(m, sys, 0, false); err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportSim(b, last)
		})
		b.Run(fmt.Sprintf("via-transient/n=%d", n), func(b *testing.B) {
			var last *machine.M
			for i := 0; i < b.N; i++ {
				m := core.MeshFor(n, 2)
				if _, err := core.SteadyNearestViaTransient(m, sys, 0); err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportSim(b, last)
		})
	}
}

// --- Ablations (DESIGN.md §6) -------------------------------------------------

// BenchmarkAblationIndexing: mesh indexing scheme vs sort cost (ablation 1).
func BenchmarkAblationIndexing(b *testing.B) {
	n := 4096
	vals := make([]int, n)
	for i := range vals {
		vals[i] = (i * 2654435761) % 1000003
	}
	for _, ix := range []mesh.Indexing{mesh.RowMajor, mesh.ShuffledRowMajor, mesh.Snake, mesh.Proximity} {
		b.Run(ix.String(), func(b *testing.B) {
			var last *machine.M
			for i := 0; i < b.N; i++ {
				m := machine.New(mesh.MustNew(n, ix))
				regs := machine.Scatter(n, vals)
				machine.Sort(m, regs, func(a, b int) bool { return a < b })
				last = m
			}
			reportSim(b, last)
		})
	}
}

// BenchmarkAblationRecursionGrain: parallel Theorem 3.2 vs the serial
// divide-and-conquer baseline (ablation 2): simulated steps vs real work.
func BenchmarkAblationRecursionGrain(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	n := 256
	cs := make([]curve.Curve, n)
	for i := range cs {
		cs[i] = curve.NewPoly(dyncg.Polynomial(r.NormFloat64()*5, r.NormFloat64(), 1))
	}
	b.Run("parallel-thm32", func(b *testing.B) {
		var last *machine.M
		for i := 0; i < b.N; i++ {
			m := machine.New(hypercube.MustNew(penvelope.CubePEs(n, 2)))
			if _, err := penvelope.EnvelopeOfCurves(m, cs, pieces.Min); err != nil {
				b.Fatal(err)
			}
			last = m
		}
		reportSim(b, last)
	})
	b.Run("serial-dnc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pieces.EnvelopeOfCurves(cs, pieces.Min)
		}
	})
}

// BenchmarkAblationAllocationMargin: smallest machine size at which the
// one-piece-per-PE envelope construction fits (ablation 4): reports the
// measured margin over λ(n, s).
func BenchmarkAblationAllocationMargin(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	n := 128
	cs := make([]curve.Curve, n)
	for i := range cs {
		cs[i] = curve.NewPoly(dyncg.Polynomial(r.NormFloat64()*5, r.NormFloat64(), 0.3+r.Float64()))
	}
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		smallest := 0
		for i := 0; i < b.N; i++ {
			size := dsseq.NextPow2(dsseq.Lambda(n, 2))
			for {
				m := machine.New(hypercube.MustNew(size))
				if _, err := penvelope.EnvelopeOfCurves(m, cs, pieces.Min); err == nil {
					break
				}
				size *= 2
			}
			smallest = size
		}
		b.ReportMetric(float64(smallest), "minPEs")
		b.ReportMetric(float64(dsseq.Lambda(n, 2)), "lambda")
	})
}

// --- Figures -------------------------------------------------------------------

// BenchmarkFigure2 renders the four indexing schemes of Figure 2.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ix := range []mesh.Indexing{mesh.RowMajor, mesh.ShuffledRowMajor, mesh.Snake, mesh.Proximity} {
			mesh.MustNew(16, ix).Render()
		}
	}
}

// BenchmarkFigure4 reconstructs the min-function example of Figure 4.
func BenchmarkFigure4(b *testing.B) {
	cs := []curve.Curve{
		curve.NewPoly(dyncg.Polynomial(6, -0.5)),
		curve.NewPoly(dyncg.Polynomial(0, 1)),
		curve.NewPoly(dyncg.Polynomial(2)),
	}
	var env pieces.Piecewise
	for i := 0; i < b.N; i++ {
		env = pieces.EnvelopeOfCurves(cs, pieces.Min)
	}
	b.ReportMetric(float64(len(env)), "pieces")
}

// --- §6 extension: pair sequences --------------------------------------------

func BenchmarkSection6PairSequence(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{8, 16, 32} {
		sys := motion.Random(r, n, 1, 2, 6)
		for _, tc := range []struct {
			name string
			mk   func() *machine.M
		}{
			{"mesh", func() *machine.M { return core.MeshFor(core.PairSequencePEs(n, 1), 2) }},
			{"hypercube", func() *machine.M { return core.CubeFor(core.PairSequencePEs(n, 1), 2) }},
		} {
			b.Run(fmt.Sprintf("closest-pairs/%s/n=%d", tc.name, n), func(b *testing.B) {
				var last *machine.M
				for i := 0; i < b.N; i++ {
					m := tc.mk()
					if _, err := core.ClosestPairSequence(m, sys); err != nil {
						b.Fatal(err)
					}
					last = m
				}
				reportSim(b, last)
			})
		}
	}
}

// --- Lock-step goroutine runtime fidelity -------------------------------------

// BenchmarkLockstepShearsort measures the goroutine-per-PE 2-D mesh sort
// (wall-clock: real concurrent PEs) against the vector simulator's
// bitonic sort (simulated steps) on the same data.
func BenchmarkLockstepShearsort(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	for _, side := range []int{4, 8} {
		n := side * side
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(10000)
		}
		b.Run(fmt.Sprintf("goroutines/side=%d", side), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lockstep.ShearSort(side, append([]int{}, vals...)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("simulator/side=%d", side), func(b *testing.B) {
			var last *machine.M
			for i := 0; i < b.N; i++ {
				m := machine.New(mesh.MustNew(n, mesh.Proximity))
				regs := machine.Scatter(n, vals)
				machine.Sort(m, regs, func(a, b int) bool { return a < b })
				last = m
			}
			reportSim(b, last)
		})
	}
}

// --- Cross-topology: mesh vs hypercube vs cube-connected cycles ----------------

// BenchmarkCrossTopology runs the Theorem 3.2 envelope on all three
// machine.Topology implementations, including the intro's suggested
// cube-connected cycles, at equal PE counts.
func BenchmarkCrossTopology(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	n := 16 // functions; machines of 2048 PEs
	cs := make([]curve.Curve, n)
	for i := range cs {
		cs[i] = curve.NewPoly(dyncg.Polynomial(r.NormFloat64()*4, r.NormFloat64(), 0.3+r.Float64()))
	}
	for _, tc := range []struct {
		name string
		topo machine.Topology
	}{
		{"mesh", mesh.MustNew(4096, mesh.Proximity)},
		{"hypercube", hypercube.MustNew(2048)},
		{"ccc", ccc.MustNew(8)},
		{"shuffle-exchange", shuffle.MustNew(11)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var last *machine.M
			for i := 0; i < b.N; i++ {
				m := machine.New(tc.topo)
				if _, err := penvelope.EnvelopeOfCurves(m, cs, pieces.Min); err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportSim(b, last)
		})
	}
}
