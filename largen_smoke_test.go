// TestLargeNSmoke drives the columnar simulator core end to end at the
// scale the struct-of-arrays refactor targets: a machine of 2^20 PEs —
// beyond the old practical ceiling — running one hull algorithm and one
// envelope construction to completion under a wall-clock budget. The
// point is not the geometry (the workload is modest) but the primitive
// layer: every whole-machine scan, merge, sort and compaction in these
// runs sweeps all 2^20 PEs through the flat columnar round bodies, so a
// superlinear regression in the core shows up as a budget breach here
// long before it would trip the (noise-tolerant) ns/op bench gate.
//
// CI runs this as its own step (large-n smoke); -short skips it.
package dyncg_test

import (
	"math/rand"
	"testing"
	"time"

	"dyncg"
	"dyncg/internal/curve"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
)

const largeNPEs = 1 << 20

// largeNBudget bounds one run's wall clock. Generous against shared-CI
// noise: locally each run is an order of magnitude faster.
const largeNBudget = 4 * time.Minute

func TestLargeNSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n smoke skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation makes the 2^20-PE sweeps wall-clock prohibitive; the columnar battery covers these paths under -race at smaller n")
	}
	t.Run("steady-hull", func(t *testing.T) {
		m := machine.New(hypercube.MustNew(largeNPEs))
		sys := motion.Random(rand.New(rand.NewSource(1988)), 48, 1, 2, 10)
		start := time.Now()
		hull, err := dyncg.SteadyHull(m, sys)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if len(hull) < 3 {
			t.Fatalf("steady hull of 48 random points has %d vertices", len(hull))
		}
		t.Logf("steady-hull on %d PEs: %v (%d hull vertices, %d rounds)",
			largeNPEs, elapsed, len(hull), m.Stats().Rounds)
		if elapsed > largeNBudget {
			t.Errorf("steady-hull took %v, budget %v", elapsed, largeNBudget)
		}
	})
	t.Run("envelope", func(t *testing.T) {
		m := machine.New(hypercube.MustNew(largeNPEs))
		// Enough curves that the recursion works through several merge
		// levels, each sweeping the full 2^20-PE register file.
		r := rand.New(rand.NewSource(1988))
		cs := make([]curve.Curve, 64)
		for i := range cs {
			cs[i] = curve.NewPoly(dyncg.Polynomial(r.Float64()*20-10, r.Float64()*2-1))
		}
		start := time.Now()
		env, err := penvelope.EnvelopeOfCurves(m, cs, pieces.Min)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if len(env) == 0 {
			t.Fatal("empty envelope")
		}
		t.Logf("envelope of %d curves on %d PEs: %v (%d pieces, %d rounds)",
			len(cs), largeNPEs, elapsed, len(env), m.Stats().Rounds)
		if elapsed > largeNBudget {
			t.Errorf("envelope took %v, budget %v", elapsed, largeNBudget)
		}
	})
}
