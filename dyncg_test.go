package dyncg_test

import (
	"math"
	"math/rand"
	"testing"

	"dyncg"
)

// TestQuickstartScenario exercises the documented quick-start flow end
// to end through the public facade.
func TestQuickstartScenario(t *testing.T) {
	sys, err := dyncg.NewSystem([]dyncg.Point{
		dyncg.NewPoint(dyncg.Polynomial(0), dyncg.Polynomial(0)),
		dyncg.NewPoint(dyncg.Polynomial(1, 2), dyncg.Polynomial(0)),
		dyncg.NewPoint(dyncg.Polynomial(0), dyncg.Polynomial(20, -1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dyncg.NewCubeMachine(dyncg.EnvelopePEs(sys.N(), 2*sys.K))
	seq, err := dyncg.ClosestPointSequence(m, sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	// P1 at distance (1+2t); P2 at distance (20−t): P1 closest until
	// 1+2t = 20−t, i.e. t = 19/3.
	if len(seq) != 2 || seq[0].Point != 1 || seq[1].Point != 2 {
		t.Fatalf("sequence = %v", seq)
	}
	if math.Abs(seq[0].Hi-19.0/3) > 1e-9 {
		t.Fatalf("crossover = %v, want 19/3", seq[0].Hi)
	}
	if m.Stats().Time() <= 0 {
		t.Fatal("no simulated time recorded")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	sys := dyncg.RandomSystem(r, 12, 2, 2, 6)

	m := dyncg.NewMeshMachine(dyncg.EnvelopePEs(sys.N(), 2*sys.K))
	if _, err := dyncg.FarthestPointSequence(m, sys, 3); err != nil {
		t.Fatal(err)
	}

	m = dyncg.NewCubeMachine(8 * sys.N())
	if _, err := dyncg.CollisionTimes(m, sys, 0); err != nil {
		t.Fatal(err)
	}

	m = dyncg.NewCubeMachine(dyncg.EnvelopePEs(sys.N(), 4*sys.K+2))
	ivs, err := dyncg.HullVertexIntervals(m, sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Lo < ivs[i-1].Hi {
			t.Fatalf("intervals out of order: %v", ivs)
		}
	}

	m = dyncg.NewCubeMachine(dyncg.EnvelopePEs(sys.N(), sys.K+2))
	if _, err := dyncg.ContainmentIntervals(m, sys, []float64{15, 15}); err != nil {
		t.Fatal(err)
	}
	m = dyncg.NewCubeMachine(dyncg.EnvelopePEs(sys.N(), sys.K+2))
	dfn, err := dyncg.SmallestHypercubeEdge(m, sys)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := dfn.Eval(1); !ok || v < 0 {
		t.Fatalf("D(1) = %v, %v", v, ok)
	}
	m = dyncg.NewCubeMachine(dyncg.EnvelopePEs(sys.N(), sys.K+2))
	dmin, tmin, err := dyncg.SmallestEverHypercube(m, sys)
	if err != nil || dmin < 0 || tmin < 0 {
		t.Fatalf("smallest ever: %v %v %v", dmin, tmin, err)
	}

	// Steady-state battery.
	m = dyncg.NewMeshMachine(sys.N())
	if _, err := dyncg.SteadyNearestNeighbor(m, sys, 0, false); err != nil {
		t.Fatal(err)
	}
	m = dyncg.NewCubeMachine(4 * sys.N())
	if _, _, err := dyncg.SteadyClosestPair(m, sys); err != nil {
		t.Fatal(err)
	}
	m = dyncg.NewCubeMachine(8 * sys.N())
	hull, err := dyncg.SteadyHull(m, sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(hull) < 3 {
		t.Fatalf("steady hull too small: %v", hull)
	}
	m = dyncg.NewCubeMachine(8 * sys.N())
	a, b, d2, err := dyncg.SteadyFarthestPair(m, sys)
	if err != nil || a == b || d2.Degree() < 0 {
		t.Fatalf("farthest pair: %v %v %v %v", a, b, d2, err)
	}
	m = dyncg.NewCubeMachine(8 * sys.N())
	rect, err := dyncg.SteadyMinAreaRect(m, sys)
	if err != nil || rect.Area.Sign() <= 0 {
		t.Fatalf("rect: %+v %v", rect, err)
	}
}

func TestLambdaFacade(t *testing.T) {
	if dyncg.Lambda(10, 1) != 10 || dyncg.Lambda(10, 2) != 19 {
		t.Fatal("Lambda closed forms broken")
	}
	if dyncg.EnvelopePEs(10, 2) < 19 {
		t.Fatal("EnvelopePEs below λ")
	}
}
