//go:build race

package dyncg_test

const raceEnabled = true
