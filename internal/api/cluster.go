package api

// The v1 cluster-introspection envelope (GET /v1/cluster): the
// debugging entry point for "why did this request land there". It
// reports the serving topology — one member for a plain server, the
// in-process shards of a sharded server, or the worker processes of a
// fleet — with per-member health and load, and resolves an optional
// ?key= probe (a canonical request hash or a session ID) to the member
// the consistent-hash ring routes it to.

// ClusterMember describes one routing target: a fleet member, an
// in-process shard, or the server itself.
type ClusterMember struct {
	ID string `json:"id"`
	// URL is the member's base URL (fleet mode only).
	URL string `json:"url,omitempty"`
	// Healthy reports whether the front door currently routes to the
	// member (probe or forwarding failures mark it down); for local
	// members it is the inverse of draining.
	Healthy bool `json:"healthy"`
	// Inflight and QueueDepth are the member's admission-window state;
	// IdlePEs its pooled warm capacity; Sessions its live session
	// count. All zero when the member is unreachable.
	Inflight   int `json:"inflight"`
	QueueDepth int `json:"queue_depth"`
	IdlePEs    int `json:"idle_pes"`
	Sessions   int `json:"sessions"`
}

// ClusterProbe resolves one routing key to its owning member.
type ClusterProbe struct {
	// Key is the probed routing key, verbatim: a canonical request hash
	// (internal/canon) for one-shots, a session ID for sessions.
	Key string `json:"key"`
	// Member is the ring owner of Key — where a request carrying this
	// key routes while that member is healthy.
	Member string `json:"member"`
}

// ClusterResponse is the v1 envelope of GET /v1/cluster.
type ClusterResponse struct {
	V int `json:"v"`
	// Mode is the serving topology: "single" (one process, no routing),
	// "sharded" (in-process shards), or "fleet" (worker processes
	// behind a front door).
	Mode    string          `json:"mode"`
	Members []ClusterMember `json:"members"`
	Probe   *ClusterProbe   `json:"probe,omitempty"`
}
