// Package api is the versioned JSON schema of the project's serving and
// benchmark surfaces: the v1 request/response envelope of the batch
// daemon (internal/server, cmd/dyncgd) and the BENCH_tables.json record
// written by cmd/tables -json. It is the single source of truth for
// every wire shape — the server, the tables harness, and the golden-file
// tests all import these types, so a field rename or type change shows
// up as a golden diff instead of a silent protocol break.
//
// Conventions:
//
//   - Every envelope carries the schema version ("v": 1). Servers reject
//     other versions; additive evolution (new optional fields) keeps v=1.
//   - Moving points travel as coefficient arrays: a system is
//     point → coordinate → ascending polynomial coefficients, matching
//     dyncg.Polynomial(c0, c1, …).
//   - Time values that may be +Inf (the open end of the last interval of
//     a sequence) use the Time type, which marshals +Inf as the JSON
//     string "inf" (JSON has no infinity literal).
package api

import (
	"fmt"
	"math"
	"strconv"

	"dyncg/internal/machine"
)

// Version is the schema version of every envelope in this package.
const Version = 1

// Time is a time value that may be ±Inf. It marshals as a plain JSON
// number, or as the strings "inf"/"-inf" for the infinities.
type Time float64

// MarshalJSON implements json.Marshaler.
func (t Time) MarshalJSON() ([]byte, error) {
	switch {
	case math.IsInf(float64(t), 1):
		return []byte(`"inf"`), nil
	case math.IsInf(float64(t), -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(float64(t)):
		return nil, fmt.Errorf("api: NaN time value")
	}
	return strconv.AppendFloat(nil, float64(t), 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Time) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"inf"`:
		*t = Time(math.Inf(1))
		return nil
	case `"-inf"`:
		*t = Time(math.Inf(-1))
		return nil
	}
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("api: bad time value %s", b)
	}
	*t = Time(f)
	return nil
}

// Stats is the wire form of machine.Stats — the simulated parallel
// running time of the computation that produced a response.
type Stats struct {
	Time       int64 `json:"time"`
	CommSteps  int64 `json:"comm_steps"`
	LocalSteps int64 `json:"local_steps"`
	Rounds     int64 `json:"rounds"`
	Messages   int64 `json:"messages"`
}

// FromStats converts simulator counters to their wire form.
func FromStats(s machine.Stats) Stats {
	return Stats{
		Time:       s.Time(),
		CommSteps:  s.CommSteps,
		LocalSteps: s.LocalSteps,
		Rounds:     s.Rounds,
		Messages:   s.Messages,
	}
}

// Options are the per-request machine and execution options.
type Options struct {
	// Topology selects the machine family: mesh|hypercube|ccc|shuffle.
	// Empty means hypercube.
	Topology string `json:"topology,omitempty"`
	// PEs raises the minimum machine size above the algorithm's own
	// prescription (the machine is never sized below what the theorem
	// needs). 0 means the algorithm default.
	PEs int `json:"pes,omitempty"`
	// Workers enables the parallel execution backend with this worker
	// pool size (-1 = GOMAXPROCS). Results are bit-identical either way.
	Workers int `json:"workers,omitempty"`
	// Faults is a fault-injection spec (e.g. "transient=0.05,fail=1");
	// empty means a fault-free run. Requests with faults run under the
	// recovery harness and bypass the warm machine pool.
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the fault schedule (same seed = same schedule).
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Trace attaches a tracer and returns the cost-attribution tree.
	Trace bool `json:"trace,omitempty"`
	// CostDepth limits the returned cost tree depth (0 = unlimited).
	CostDepth int `json:"cost_depth,omitempty"`
	// DeadlineMs caps the request's time in the server, queueing
	// included (0 = the server's default deadline).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// Request is the v1 request envelope of POST /v1/<algorithm>.
type Request struct {
	V int `json:"v"`
	// System is the system of moving points:
	// point → coordinate → ascending polynomial coefficients.
	System [][][]float64 `json:"system"`
	// Origin is the query point index (algorithms with an origin).
	Origin int `json:"origin,omitempty"`
	// Farthest flips steady-nearest-neighbor to its farthest variant.
	Farthest bool `json:"farthest,omitempty"`
	// Dims are the hyper-rectangle side lengths (containment-intervals).
	Dims    []float64 `json:"dims,omitempty"`
	Options Options   `json:"options,omitempty"`
}

// MachineInfo describes the machine that served a request.
type MachineInfo struct {
	Topology string `json:"topology"`
	PEs      int    `json:"pes"`
	Workers  int    `json:"workers,omitempty"`
}

// PoolInfo reports how the machine was obtained.
type PoolInfo struct {
	// Hit is true when a pre-warmed machine of the right size class was
	// checked out of the pool.
	Hit bool `json:"hit"`
	// Bypassed is true when the request could not use the pool at all
	// (fault-injected runs construct machines inside the recovery
	// harness).
	Bypassed bool `json:"bypassed,omitempty"`
}

// FaultReport is the fault tally of a fault-injected run.
type FaultReport struct {
	Attempts    int   `json:"attempts"`
	Transients  int64 `json:"transients"`
	RetryRounds int64 `json:"retry_rounds"`
	Failed      []int `json:"failed,omitempty"`
}

// Response is the v1 response envelope. Result holds the
// algorithm-specific payload (the element types below).
type Response struct {
	V         int          `json:"v"`
	Algorithm string       `json:"algorithm"`
	Machine   MachineInfo  `json:"machine"`
	Stats     Stats        `json:"stats"`
	Pool      PoolInfo     `json:"pool"`
	Fault     *FaultReport `json:"fault,omitempty"`
	CostTree  string       `json:"cost_tree,omitempty"`
	Result    any          `json:"result"`
}

// --- result payloads -----------------------------------------------------

// NeighborEvent is one element of a closest/farthest-point sequence.
type NeighborEvent struct {
	Point int  `json:"point"`
	Lo    Time `json:"lo"`
	Hi    Time `json:"hi"`
}

// Collision is one collision event.
type Collision struct {
	T float64 `json:"t"`
	A int     `json:"a"`
	B int     `json:"b"`
}

// Interval is a closed time interval; Hi may be "inf".
type Interval struct {
	Lo Time `json:"lo"`
	Hi Time `json:"hi"`
}

// Piece is one piece of a piecewise function of time: the function F
// (rendered by its String form) restricted to [Lo, Hi], generated by
// input curve ID.
type Piece struct {
	F  string `json:"f"`
	ID int    `json:"id"`
	Lo Time   `json:"lo"`
	Hi Time   `json:"hi"`
}

// PairEvent is one element of a closest/farthest-pair sequence.
type PairEvent struct {
	A  int  `json:"a"`
	B  int  `json:"b"`
	Lo Time `json:"lo"`
	Hi Time `json:"hi"`
}

// Neighbor is a steady-state nearest/farthest neighbour.
type Neighbor struct {
	Point int `json:"point"`
}

// Pair is a steady-state closest pair.
type Pair struct {
	A int `json:"a"`
	B int `json:"b"`
}

// FarthestPair is a steady-state farthest pair with the squared-distance
// polynomial realising the diameter (ascending coefficients).
type FarthestPair struct {
	A     int       `json:"a"`
	B     int       `json:"b"`
	Dist2 []float64 `json:"dist2"`
}

// Hull is a steady-state hull: vertex indices in counterclockwise order.
type Hull struct {
	Vertices []int `json:"vertices"`
}

// Rect is a steady-state minimal-area enclosing rectangle: the hull edge
// its base lies on and the area as a rational function of time (rendered
// by its String form).
type Rect struct {
	Edge int    `json:"edge"`
	Area string `json:"area"`
}

// MinCube is the smallest-ever enclosing hypercube: its edge length and
// a time attaining it.
type MinCube struct {
	D float64 `json:"d"`
	T float64 `json:"t"`
}

// --- cmd/tables -json ----------------------------------------------------

// BenchRecord is one (table, row, topology, n) measurement of
// BENCH_tables.json: the simulated time next to the paper's claimed
// Θ-bound evaluated at n, and their ratio (flat ratios across n confirm
// the growth shape).
type BenchRecord struct {
	Table    string  `json:"table"`
	ID       string  `json:"id"`
	Problem  string  `json:"problem"`
	Topology string  `json:"topology"`
	N        int     `json:"n"`
	SimTime  int64   `json:"sim_time"`
	Claim    string  `json:"claim"`
	Bound    float64 `json:"bound"`
	Ratio    float64 `json:"ratio"`

	// Populated when -parallel is set: host wall-clock of the serial and
	// worker-pool passes of the same cell (identical simulated work).
	Workers      int     `json:"workers,omitempty"`
	WallSerialNs int64   `json:"wall_serial_ns,omitempty"`
	WallParNs    int64   `json:"wall_parallel_ns,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
}
