package api

import (
	"encoding/json"
	"testing"
)

// TestGoldenReplayRecord pins the v1 computation-log wire format — the
// hash-chained record envelope of internal/replaylog, one computation
// record and one segment-sealing anchor. The chain fields (prev, hash)
// cover every byte of the line, so any change to this schema invalidates
// existing logs: it must come with a version bump, not a silent edit.
func TestGoldenReplayRecord(t *testing.T) {
	golden(t, "v1_replaylog.json", map[string]any{
		"record": ReplayRecord{
			V:      Version,
			Seq:    41,
			Time:   "2026-02-03T04:05:06.789Z",
			Method: "POST",
			Path:   "/v1/closest-point-sequence?",
			Status: 200,
			Meta: ReplayMeta{
				Topology:  "hypercube",
				PEs:       256,
				Workers:   2,
				FaultSeed: 7,
				Session:   "",
				Member:    "m1",
			},
			Request:  json.RawMessage(`{"v":1,"system":[[[0],[0]],[[1,2],[0]]],"origin":0}`),
			Response: json.RawMessage(`{"v":1,"algorithm":"closest-point-sequence","result":[]}`),
			Prev:     "2c26b46b68ffc68ff99b453c1d30413413422d706483bfa0f98a5e886266e7ae",
			Hash:     "fcde2b2edba56bf408601fb721fe9b5c338d10ee429ea04fae5511b68fbf8fb9",
		},
		"record_binary_request": ReplayRecord{
			V:          Version,
			Seq:        42,
			Time:       "2026-02-03T04:05:07.001Z",
			Method:     "POST",
			Path:       "/v1/steady-hull",
			Status:     400,
			Meta:       ReplayMeta{},
			RequestBin: []byte(`{"v":1,`),
			Response:   json.RawMessage(`{"v":1,"code":"bad_request","message":"server: decoding request: unexpected end of JSON input"}`),
			Prev:       "fcde2b2edba56bf408601fb721fe9b5c338d10ee429ea04fae5511b68fbf8fb9",
			Hash:       "2e7d2c03a9507ae265ecf5b5356885a53393a2029d241394997265a1a25aefc6",
		},
		"session_record": ReplayRecord{
			V:      Version,
			Seq:    43,
			Time:   "2026-02-03T04:05:08.500Z",
			Method: "GET",
			Path:   "/v1/sessions/s-1-0a1b2c3d/query?verify=1",
			Status: 200,
			Meta: ReplayMeta{
				Topology: "mesh",
				PEs:      16,
				Session:  "s-1-0a1b2c3d",
			},
			Response: json.RawMessage(`{"v":1,"session":{"id":"s-1-0a1b2c3d"},"verified":true}`),
			Prev:     "2e7d2c03a9507ae265ecf5b5356885a53393a2029d241394997265a1a25aefc6",
			Hash:     "18ac3e7343f016890c510e93f935261169d9e3f565436429830faf0934f4f8e4",
		},
		"anchor": ReplayRecord{
			V:      Version,
			Seq:    44,
			Time:   "2026-02-03T04:05:09.000Z",
			Meta:   ReplayMeta{},
			Anchor: true,
			Count:  44,
			Root:   "3f79bb7b435b05321651daefd374cdc681dc06faa65e374e38337b88ca046dea",
			Prev:   "18ac3e7343f016890c510e93f935261169d9e3f565436429830faf0934f4f8e4",
			Hash:   "252f10c83610ebca1a059c0bae8255eba2f95be4d1d7bcfa89d7248a82d9f111",
		},
	})
}
