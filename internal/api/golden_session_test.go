package api

import (
	"math"
	"testing"
)

// TestGoldenSession pins the v1 session wire schema — every envelope of
// the stateful /v1/sessions surface in one file, next to the one-shot
// schema pins.
func TestGoldenSession(t *testing.T) {
	verified := true
	golden(t, "v1_session.json", map[string]any{
		"create_request": SessionCreateRequest{
			V:         Version,
			Algorithm: "closest-point-sequence",
			System: [][][]float64{
				{{0}, {0}},
				{{1, 2}, {0}},
				{{0}, {20, -1}},
			},
			Origin: 0,
			Options: SessionOptions{
				Topology:   "hypercube",
				Workers:    2,
				Capacity:   16,
				MaxDegree:  2,
				DeadlineMs: 2000,
			},
		},
		"create_response": SessionCreateResponse{
			V: Version,
			Session: SessionInfo{
				ID:        "s-1-0a1b2c3d",
				Algorithm: "closest-point-sequence",
				Machine:   MachineInfo{Topology: "hypercube", PEs: 256, Workers: 2},
				Capacity:  16,
				MaxDegree: 2,
				Origin:    0,
				Points:    []int{0, 1, 2},
			},
			Pool:  PoolInfo{Hit: true},
			Stats: Stats{Time: 321, CommSteps: 120, LocalSteps: 201, Rounds: 60, Messages: 1800},
			Result: []NeighborEvent{
				{Point: 1, Lo: 0, Hi: Time(19.0 / 3)},
				{Point: 2, Lo: Time(19.0 / 3), Hi: Time(math.Inf(1))},
			},
		},
		"update_request": SessionUpdateRequest{
			V: Version,
			Deltas: []SessionDelta{
				{Op: "insert", Point: [][]float64{{5, 1}, {-3}}},
				{Op: "retarget", ID: 1, Point: [][]float64{{1}, {2, 2}}},
				{Op: "delete", ID: 2},
			},
		},
		"update_response": SessionUpdateResponse{
			V: Version,
			Session: SessionInfo{
				ID:        "s-1-0a1b2c3d",
				Algorithm: "closest-point-sequence",
				Machine:   MachineInfo{Topology: "hypercube", PEs: 256, Workers: 2},
				Capacity:  16,
				MaxDegree: 2,
				Origin:    0,
				Points:    []int{0, 1, 3},
				Updates:   1,
			},
			Inserted:    []int{3},
			DirtyLeaves: 3,
			MergedNodes: 9,
			Stats:       Stats{Time: 41, CommSteps: 18, LocalSteps: 23, Rounds: 9, Messages: 210},
			Result: []NeighborEvent{
				{Point: 3, Lo: 0, Hi: Time(math.Inf(1))},
			},
		},
		"query_response": SessionQueryResponse{
			V: Version,
			Session: SessionInfo{
				ID:        "s-1-0a1b2c3d",
				Algorithm: "closest-point-sequence",
				Machine:   MachineInfo{Topology: "hypercube", PEs: 256, Workers: 2},
				Capacity:  16,
				MaxDegree: 2,
				Origin:    0,
				Points:    []int{0, 1, 3},
				Updates:   1,
			},
			Result: []NeighborEvent{
				{Point: 3, Lo: 0, Hi: Time(math.Inf(1))},
			},
			Verified: &verified,
		},
		"delete_response": SessionDeleteResponse{
			V:       Version,
			ID:      "s-1-0a1b2c3d",
			Updates: 1,
		},
	})
}
