package api

// Session wire schema (v1): the envelopes of the stateful scenario
// endpoints. A session pins a warm machine and keeps one algorithm's
// intermediate envelope state resident across requests:
//
//	POST   /v1/sessions              SessionCreateRequest → SessionCreateResponse
//	POST   /v1/sessions/{id}/update  SessionUpdateRequest → SessionUpdateResponse
//	GET    /v1/sessions/{id}/query   → SessionQueryResponse
//	DELETE /v1/sessions/{id}         → SessionDeleteResponse
//
// Result payloads reuse the one-shot result element types (NeighborEvent,
// PairEvent, Piece, Interval, MinCube) — a session's maintained answer is
// the same shape as the corresponding one-shot algorithm's.

// SessionOptions are the machine and lifecycle options of a session
// create request.
type SessionOptions struct {
	// Topology selects the machine family: mesh|hypercube. Empty means
	// hypercube. (Session algorithms are the envelope-backed subset, so
	// only the two topologies with λ-allocation prescriptions apply.)
	Topology string `json:"topology,omitempty"`
	// PEs raises the minimum machine size above the session's own
	// prescription. 0 means the prescription for (algorithm, capacity,
	// max_degree).
	PEs int `json:"pes,omitempty"`
	// Workers enables the parallel execution backend for the session's
	// machine (-1 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Capacity is the maximum live population over the session lifetime;
	// the pinned machine is sized for it once. 0 = max(2·n, 8).
	Capacity int `json:"capacity,omitempty"`
	// MaxDegree bounds the motion degree of every trajectory ever sent
	// to the session. 0 = the initial system's observed degree.
	MaxDegree int `json:"max_degree,omitempty"`
	// DeadlineMs caps each session request's time in the server (0 = the
	// server default).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// SessionCreateRequest is the envelope of POST /v1/sessions.
type SessionCreateRequest struct {
	V         int    `json:"v"`
	Algorithm string `json:"algorithm"`
	// System is the initial system of moving points:
	// point → coordinate → ascending polynomial coefficients.
	System [][][]float64 `json:"system"`
	// Origin is the query point index (point-sequence algorithms).
	Origin int `json:"origin,omitempty"`
	// Dims are the hyper-rectangle side lengths (containment-intervals).
	Dims    []float64      `json:"dims,omitempty"`
	Options SessionOptions `json:"options,omitempty"`
}

// SessionInfo describes a live session; returned by every session
// endpoint.
type SessionInfo struct {
	ID        string      `json:"id"`
	Algorithm string      `json:"algorithm"`
	Machine   MachineInfo `json:"machine"`
	Capacity  int         `json:"capacity"`
	MaxDegree int         `json:"max_degree"`
	// Origin is the stable ID of the query point; -1 when the algorithm
	// has none.
	Origin int `json:"origin"`
	// Points are the live stable point IDs, ascending. Initial points get
	// 0..n-1; inserts continue the sequence; IDs are never reused.
	Points []int `json:"points"`
	// Updates counts the applied update batches.
	Updates uint64 `json:"updates"`
}

// SessionCreateResponse is the envelope answering POST /v1/sessions.
// Stats is the simulated cost of the from-scratch build; Result is the
// session's initial answer.
type SessionCreateResponse struct {
	V       int         `json:"v"`
	Session SessionInfo `json:"session"`
	Pool    PoolInfo    `json:"pool"`
	Stats   Stats       `json:"stats"`
	Result  any         `json:"result"`
}

// SessionDelta is one update operation: op is insert|delete|retarget.
// point (coordinate → ascending coefficients) is required for insert and
// retarget; id for delete and retarget.
type SessionDelta struct {
	Op    string      `json:"op"`
	ID    int         `json:"id,omitempty"`
	Point [][]float64 `json:"point,omitempty"`
}

// SessionUpdateRequest is the envelope of POST /v1/sessions/{id}/update.
// The batch is atomic: it either applies in full or leaves the session
// untouched.
type SessionUpdateRequest struct {
	V      int            `json:"v"`
	Deltas []SessionDelta `json:"deltas"`
}

// SessionUpdateResponse reports one applied batch: the IDs assigned to
// its inserts, the incremental work (dirty leaves, merged internal
// nodes, and the simulated cost delta of exactly the recomputation this
// batch caused), and the refreshed result.
type SessionUpdateResponse struct {
	V           int         `json:"v"`
	Session     SessionInfo `json:"session"`
	Inserted    []int       `json:"inserted,omitempty"`
	DirtyLeaves int         `json:"dirty_leaves"`
	MergedNodes int         `json:"merged_nodes"`
	Stats       Stats       `json:"stats"`
	Result      any         `json:"result"`
}

// SessionQueryResponse is the envelope answering GET
// /v1/sessions/{id}/query — the maintained result, with no recompute.
// With ?verify=1 the server re-derives the answer from scratch on the
// session's machine and sets Verified to whether the maintained result
// is bit-identical (a live audit of the batch-dynamic contract).
type SessionQueryResponse struct {
	V        int         `json:"v"`
	Session  SessionInfo `json:"session"`
	Result   any         `json:"result"`
	Verified *bool       `json:"verified,omitempty"`
}

// SessionDeleteResponse is the envelope answering DELETE
// /v1/sessions/{id}. The session's machine has been reset and returned
// to the warm pool when this response is sent.
type SessionDeleteResponse struct {
	V       int    `json:"v"`
	ID      string `json:"id"`
	Updates uint64 `json:"updates"`
}
