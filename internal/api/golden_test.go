package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden schema files")

// golden marshals v with indentation and compares it byte-for-byte to
// the committed golden file — the guard that pins the v1 wire schema.
// Any field rename, tag change, or type change shows up as a diff here
// (and requires a deliberate -update plus a version discussion), not as
// a silent protocol break.
func golden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the pinned v1 schema:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenRequest(t *testing.T) {
	golden(t, "v1_request.json", Request{
		V: Version,
		System: [][][]float64{
			{{0}, {0}},
			{{1, 2}, {0}},
			{{0}, {20, -1}},
		},
		Origin: 0,
		Dims:   []float64{10, 10},
		Options: Options{
			Topology:   "hypercube",
			PEs:        64,
			Workers:    2,
			Faults:     "transient=0.05,retries=3",
			FaultSeed:  7,
			Trace:      true,
			CostDepth:  3,
			DeadlineMs: 2000,
		},
	})
}

func TestGoldenResponse(t *testing.T) {
	golden(t, "v1_response.json", Response{
		V:         Version,
		Algorithm: "closest-point-sequence",
		Machine:   MachineInfo{Topology: "hypercube", PEs: 64, Workers: 2},
		Stats:     Stats{Time: 321, CommSteps: 120, LocalSteps: 201, Rounds: 60, Messages: 1800},
		Pool:      PoolInfo{Hit: true},
		Fault:     &FaultReport{Attempts: 2, Transients: 3, RetryRounds: 5, Failed: []int{9}},
		CostTree:  "thm4.1 …",
		Result: []NeighborEvent{
			{Point: 1, Lo: 0, Hi: Time(19.0 / 3)},
			{Point: 2, Lo: Time(19.0 / 3), Hi: Time(math.Inf(1))},
		},
	})
}

func TestGoldenError(t *testing.T) {
	golden(t, "v1_error.json", []Error{
		*NewError(CodeBadSystem, "motion: invalid system of moving points"),
		*NewError(CodeQueueFull, "server: request not admitted: queue_full"),
		{
			V: Version, Code: CodeMemberDown,
			Message: `fleet: member "m1" owning session "s-m1-3-aabbccdd" is down`,
			Member:  "m1",
		},
	})
}

func TestErrorCodeRetryable(t *testing.T) {
	// The load-shaped admission codes are retryable; request- and
	// state-shaped codes are not. A spot check on both sides keeps the
	// classification a deliberate decision.
	for _, c := range []ErrorCode{CodeQueueFull, CodeDraining, CodeDeadlineQueued,
		CodeDeadlineExceeded, CodeCoalesceTimeout, CodeTooManySessions, CodeNoMembers} {
		if !c.Retryable() {
			t.Errorf("%s must be retryable", c)
		}
	}
	for _, c := range []ErrorCode{CodeBadRequest, CodeBadVersion, CodeBadSystem,
		CodeTooFewPEs, CodeNoSession, CodeSessionBroken, CodeMemberDown, CodeInternal} {
		if c.Retryable() {
			t.Errorf("%s must not be retryable", c)
		}
	}
	if e := NewError(CodeQueueFull, "x"); !e.Retryable {
		t.Error("NewError dropped Retryable for queue_full")
	}
}

func TestGoldenCluster(t *testing.T) {
	golden(t, "v1_cluster.json", ClusterResponse{
		V:    Version,
		Mode: "fleet",
		Members: []ClusterMember{
			{ID: "m0", URL: "http://127.0.0.1:9101", Healthy: true,
				Inflight: 2, QueueDepth: 1, IdlePEs: 4096, Sessions: 3},
			{ID: "m1", URL: "http://127.0.0.1:9102", Healthy: false},
		},
		Probe: &ClusterProbe{Key: "s-m0-7-0a1b2c3d", Member: "m0"},
	})
}

func TestGoldenBenchRecord(t *testing.T) {
	// The BENCH_tables.json record written by cmd/tables -json; its
	// shape is shared with (and pinned alongside) the server schema.
	golden(t, "bench_record.json", []BenchRecord{{
		Table: "table2", ID: "closest-seq", Problem: "closest-point sequence",
		Topology: "mesh", N: 256, SimTime: 1234,
		Claim: "Θ(λ^½(n−1,2k)) / Θ(log² n)", Bound: 64.0, Ratio: 19.28,
		Workers: 2, WallSerialNs: 1000, WallParNs: 600, Speedup: 1.67,
	}})
}

func TestGoldenResultPayloads(t *testing.T) {
	// One instance of every algorithm-specific result payload, in one
	// pinned file, so adding or renaming a payload field is a visible
	// schema change.
	golden(t, "v1_results.json", map[string]any{
		"closest-point-sequence":  []NeighborEvent{{Point: 1, Lo: 0, Hi: Time(math.Inf(1))}},
		"collision-times":         []Collision{{T: 1.5, A: 0, B: 3}},
		"hull-vertex-intervals":   []Interval{{Lo: 0, Hi: 2.5}},
		"containment-intervals":   []Interval{{Lo: 1, Hi: Time(math.Inf(1))}},
		"smallest-hypercube-edge": []Piece{{F: "20 - t", ID: 2, Lo: 0, Hi: 5}},
		"smallest-ever-hypercube": MinCube{D: 3.25, T: 1.75},
		"steady-nearest-neighbor": Neighbor{Point: 4},
		"steady-closest-pair":     Pair{A: 1, B: 2},
		"steady-hull":             Hull{Vertices: []int{0, 3, 5}},
		"steady-farthest-pair":    FarthestPair{A: 0, B: 7, Dist2: []float64{4, 0, 1}},
		"steady-min-area-rect":    Rect{Edge: 2, Area: "(4t² + 1)/(1)"},
		"closest-pair-sequence":   []PairEvent{{A: 0, B: 1, Lo: 0, Hi: Time(math.Inf(1))}},
	})
}

func TestTimeRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, 19.0 / 3, math.Inf(1), math.Inf(-1)} {
		b, err := json.Marshal(Time(v))
		if err != nil {
			t.Fatal(err)
		}
		var got Time
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if float64(got) != v {
			t.Errorf("Time %v round-tripped to %v via %s", v, got, b)
		}
	}
	if _, err := json.Marshal(Time(math.NaN())); err == nil {
		t.Error("NaN time marshalled without error")
	}
}
