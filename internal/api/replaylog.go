package api

import "encoding/json"

// Replay-log wire schema (v1): the envelope of one line of the
// hash-chained computation log (internal/replaylog). Every served /v1/*
// request appends one record in arrival order; a sealed segment ends
// with an anchor record carrying the Merkle root of the segment's record
// hashes. The chain fields make the log tamper-evident:
//
//   - Prev is the hex SHA-256 hash of the previous record (the anchor of
//     the preceding segment at a segment boundary; "" for the first
//     record of the log).
//   - Hash is the hex SHA-256 over the record's canonical JSON encoding
//     with Hash itself empty — so every byte of the record, Prev
//     included, is covered, and flipping any byte anywhere breaks either
//     this record's hash or the next record's Prev link.
//
// Records are written as compact single-line JSON (JSONL); request and
// response bodies are embedded verbatim as raw JSON, re-compacted by the
// encoder, so VerifyChain can check the stored bytes exactly.

// ReplayMeta is the execution metadata of one recorded request: enough
// to see, without parsing the embedded bodies, which machine served it
// and under which fault schedule.
type ReplayMeta struct {
	// Topology and PEs describe the machine that served the request
	// (empty/0 when the request failed before machine selection).
	Topology string `json:"topology,omitempty"`
	PEs      int    `json:"pes,omitempty"`
	// Workers is the worker-pool size (0 = serial).
	Workers int `json:"workers,omitempty"`
	// FaultSeed is the seed of a fault-injected request's schedule.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Session is the session ID a stateful request addressed.
	Session string `json:"session,omitempty"`
	// Member is the fleet member that served the request, recorded by
	// the front door (empty for single-process logs).
	Member string `json:"member,omitempty"`
}

// ReplayRecord is the v1 envelope of one computation-log record.
type ReplayRecord struct {
	V int `json:"v"`
	// Seq numbers records consecutively from 0 across the whole log
	// (segments included); VerifyChain reports the Seq of the first
	// tampered record.
	Seq uint64 `json:"seq"`
	// Time is the RFC3339Nano arrival timestamp — audit metadata,
	// covered by the hash but ignored by replay.
	Time string `json:"time,omitempty"`

	// Method, Path (the full request URI, query included), Status, and
	// the raw request/response bodies of the served request. A non-JSON
	// request body (a recorded decode failure) is stored in RequestBin
	// instead of Request.
	Method     string          `json:"method,omitempty"`
	Path       string          `json:"path,omitempty"`
	Status     int             `json:"status,omitempty"`
	Meta       ReplayMeta      `json:"meta"`
	Request    json.RawMessage `json:"request,omitempty"`
	RequestBin []byte          `json:"request_bin,omitempty"`
	Response   json.RawMessage `json:"response,omitempty"`

	// Anchor marks a segment seal: Count is the number of computation
	// records the segment holds and Root the Merkle root over their
	// hashes. Anchor records carry no request fields and are skipped by
	// replay.
	Anchor bool   `json:"anchor,omitempty"`
	Count  uint64 `json:"count,omitempty"`
	Root   string `json:"root,omitempty"`

	Prev string `json:"prev"`
	Hash string `json:"hash"`
}
