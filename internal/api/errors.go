package api

// The v1 error envelope. Every non-2xx /v1/* response carries exactly
// this shape, so clients in any language can branch on a stable
// machine-readable code instead of parsing message prose, decide
// whether a retry can help without a hand-maintained status-code
// table, and — in fleet deployments — see which member the error is
// about. The envelope is golden-pinned in testdata/v1_error.json; the
// code list below is closed on purpose: the serving layer can only
// emit codes that have a typed constant, so a new failure mode is a
// visible API change, not an ad-hoc string.

// ErrorCode identifies one failure mode of the serving surface. Codes
// are stable wire values: they never change meaning, and removing one
// is a breaking API change.
type ErrorCode string

// The request-shaped failures: the request itself is invalid and will
// fail identically on any member at any load. Never retryable.
const (
	// CodeBadRequest: the body failed to read or parse (oversize,
	// truncated, or malformed JSON).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeBadVersion: the envelope's schema version is not supported.
	CodeBadVersion ErrorCode = "bad_version"
	// CodeBadTopology: the topology option names no machine family the
	// endpoint supports.
	CodeBadTopology ErrorCode = "bad_topology"
	// CodeBadFaults: the fault-injection spec failed to parse.
	CodeBadFaults ErrorCode = "bad_faults"
	// CodeBadSystem: the system of moving points is invalid (empty,
	// ragged coordinates, or a malformed delta batch).
	CodeBadSystem ErrorCode = "bad_system"
	// CodeTooFewPEs: the machine the options allow is smaller than the
	// theorem's prescription for this system.
	CodeTooFewPEs ErrorCode = "too_few_pes"
	// CodeUnknownAlgorithm: the URL names no serving endpoint.
	CodeUnknownAlgorithm ErrorCode = "unknown_algorithm"
)

// The state-shaped failures: the request is well-formed but the thing
// it addresses is gone or broken. Not retryable — the state does not
// come back on its own.
const (
	// CodeNoSession: the session ID is unknown (never created, deleted,
	// TTL-evicted, or lost with a restarted fleet member).
	CodeNoSession ErrorCode = "no_session"
	// CodeSessionBroken: a previous failed update left the session's
	// engine unusable; delete it and rebuild.
	CodeSessionBroken ErrorCode = "session_broken"
	// CodeNotSurvivable: the injected fault schedule destroyed more of
	// the machine than the recovery theorems can remap around.
	CodeNotSurvivable ErrorCode = "not_survivable"
	// CodeMemberDown: the fleet member owning the addressed session is
	// marked down, and session state cannot move between processes. The
	// session is orphaned until (and unless) its member returns.
	CodeMemberDown ErrorCode = "member_down"
	// CodeInternal: the server broke an invariant; the message is the
	// only diagnostic.
	CodeInternal ErrorCode = "internal"
)

// The load-shaped failures: admission artifacts of the moment the
// request arrived. All retryable — the identical request can succeed
// seconds later.
const (
	// CodeQueueFull: the admission queue was full (HTTP 429).
	CodeQueueFull ErrorCode = "queue_full"
	// CodeTooManySessions: the live-session cap is reached (HTTP 429).
	CodeTooManySessions ErrorCode = "too_many_sessions"
	// CodeDraining: the server is shutting down (HTTP 503).
	CodeDraining ErrorCode = "draining"
	// CodeDeadlineQueued: the request's deadline expired while it
	// waited for an execution slot (HTTP 503).
	CodeDeadlineQueued ErrorCode = "deadline_queued"
	// CodeDeadlineExceeded: the deadline expired mid-execution
	// (HTTP 504).
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeCoalesceTimeout: the deadline expired while waiting for an
	// identical in-flight computation to finish (HTTP 503).
	CodeCoalesceTimeout ErrorCode = "coalesce_timeout"
	// CodeNoMembers: the fleet front door found no live member to route
	// a stateless request to (HTTP 503).
	CodeNoMembers ErrorCode = "no_members"
)

// retryable is the closed set of codes whose failures are artifacts of
// load or momentary membership, not of the request.
var retryable = map[ErrorCode]bool{
	CodeQueueFull:        true,
	CodeTooManySessions:  true,
	CodeDraining:         true,
	CodeDeadlineQueued:   true,
	CodeDeadlineExceeded: true,
	CodeCoalesceTimeout:  true,
	CodeNoMembers:        true,
}

// Retryable reports whether an identical retry of the failed request
// can succeed: true exactly for the load-shaped admission codes.
func (c ErrorCode) Retryable() bool { return retryable[c] }

// Error is the v1 error envelope of every non-2xx /v1/* response.
type Error struct {
	V    int       `json:"v"`
	Code ErrorCode `json:"code"`
	// Message is the human-readable diagnostic. Its text is not part of
	// the API contract; branch on Code.
	Message string `json:"message"`
	// Retryable mirrors Code.Retryable() on the wire, so clients need
	// no code table to implement backoff-and-retry.
	Retryable bool `json:"retryable,omitempty"`
	// Member names the fleet member the error is about — the down
	// member of a member_down, for example. Empty outside fleet
	// deployments (the X-Dyncg-Member header attributes every response,
	// errors included, to the process that produced it).
	Member string `json:"member,omitempty"`
}

// NewError builds the envelope for a code, deriving Retryable.
func NewError(code ErrorCode, message string) *Error {
	return &Error{V: Version, Code: code, Message: message, Retryable: code.Retryable()}
}
