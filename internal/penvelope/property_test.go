package penvelope

// Property tests for Theorem 3.2 against the two mathematical facts the
// construction must satisfy regardless of machine or merge order:
//
//  1. Pointwise correctness: the envelope of f₀…f_{n−1} evaluated at any
//     time equals min_i f_i(t) (Equation (1)).
//  2. The Davenport–Schinzel size bound (Theorem 2.3): the envelope of n
//     curves that pairwise intersect at most s times has at most λ(n, s)
//     pieces — for distinct parabolas, λ(n, 2) = 2n − 1.

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/dsseq"
	"dyncg/internal/machine"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

// TestEnvelopePointwiseMin: the parallel envelope agrees with a direct
// pointwise minimum of the input curves at randomly sampled times, on
// both machine families, for random parabola sets of many sizes.
func TestEnvelopePointwiseMin(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	for trial := 0; trial < 12; trial++ {
		n := 2 + r.Intn(24)
		cs := make([]curve.Curve, n)
		for i := range cs {
			// Random upward parabolas: a ∈ (0.1, 2.1) keeps every pair at
			// ≤ 2 intersections with s = 2 transversality generic.
			cs[i] = curve.NewPoly(poly.New(
				r.NormFloat64()*8, r.NormFloat64()*2, 0.1+2*r.Float64()))
		}
		for _, m := range []*machineCase{
			{"mesh", newMesh(MeshPEs(n, 2))},
			{"hypercube", newCube(CubePEs(n, 2))},
		} {
			env, err := EnvelopeOfCurves(m.m, cs, pieces.Min)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, m.name, err)
			}
			// The envelope of total curves must itself be total on [0, ∞).
			if len(env) == 0 || env[0].Lo != 0 || !math.IsInf(env[len(env)-1].Hi, 1) {
				t.Fatalf("trial %d %s: envelope does not cover [0, ∞): %v", trial, m.name, env)
			}
			for probe := 0; probe < 200; probe++ {
				tm := sampleTime(r, env)
				got, ok := env.Eval(tm)
				if !ok {
					t.Fatalf("trial %d %s: envelope undefined at t=%g", trial, m.name, tm)
				}
				want := math.Inf(1)
				for _, c := range cs {
					want = math.Min(want, c.Eval(tm))
				}
				// The envelope stores the generating curve, so values are
				// exact except within float noise of a breakpoint, where
				// either neighbouring curve is a valid generator.
				if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
					t.Fatalf("trial %d %s: envelope(%g) = %g, pointwise min = %g",
						trial, m.name, tm, got, want)
				}
			}
		}
	}
}

type machineCase struct {
	name string
	m    *machine.M
}

// sampleTime draws times that stress the envelope structure: mostly
// uniform over the finite breakpoint range, sometimes exactly at a
// breakpoint, sometimes far in the tail piece.
func sampleTime(r *rand.Rand, env pieces.Piecewise) float64 {
	last := env[len(env)-1].Lo
	switch r.Intn(10) {
	case 0:
		return env[r.Intn(len(env))].Lo // exactly a breakpoint
	case 1:
		return last + 1 + r.Float64()*100 // deep in the final piece
	default:
		return r.Float64() * (last + 1)
	}
}

// TestEnvelopeDavenportSchinzelBound: for n distinct parabolas (s = 2),
// the envelope has at most λ(n, 2) = 2n − 1 pieces — Theorem 2.3's bound
// that the whole machine-size analysis rests on. Runs both against
// random parabolas and against the extremal lower-bound construction
// that realises 2n − 1 exactly.
func TestEnvelopeDavenportSchinzelBound(t *testing.T) {
	r := rand.New(rand.NewSource(322))
	check := func(name string, cs []curve.Curve) {
		t.Helper()
		n := len(cs)
		bound := dsseq.Lambda(n, 2)
		if bound != 2*n-1 {
			t.Fatalf("λ(%d, 2) = %d, want %d", n, bound, 2*n-1)
		}
		for _, m := range []*machineCase{
			{"mesh", newMesh(MeshPEs(n, 2))},
			{"hypercube", newCube(CubePEs(n, 2))},
		} {
			env, err := EnvelopeOfCurves(m.m, cs, pieces.Min)
			if err != nil {
				t.Fatalf("%s %s: %v", name, m.name, err)
			}
			if len(env) > bound {
				t.Fatalf("%s %s: envelope of %d parabolas has %d pieces > λ(n,2) = %d",
					name, m.name, n, len(env), bound)
			}
		}
	}
	for trial := 0; trial < 8; trial++ {
		n := 2 + r.Intn(24)
		cs := make([]curve.Curve, n)
		for i := range cs {
			cs[i] = curve.NewPoly(poly.New(
				r.NormFloat64()*8, r.NormFloat64()*2, 0.1+2*r.Float64()))
		}
		check("random", cs)
	}
	// Extremal parabolas attain the bound: the envelope must have exactly
	// 2n − 1 pieces, so the ≤ check above is tight, not vacuous.
	for _, n := range []int{2, 4, 8} {
		ps := dsseq.ExtremalParabolas(n)
		cs := make([]curve.Curve, len(ps))
		for i, p := range ps {
			cs[i] = curve.NewPoly(p)
		}
		m := newCube(CubePEs(n, 2))
		env, err := EnvelopeOfCurves(m, cs, pieces.Min)
		if err != nil {
			t.Fatalf("extremal n=%d: %v", n, err)
		}
		if len(env) != 2*n-1 {
			t.Fatalf("extremal n=%d: %d pieces, want exactly %d", n, len(env), 2*n-1)
		}
		check("extremal", cs)
	}
}
