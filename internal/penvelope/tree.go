package penvelope

// This file implements the retained form of Theorem 3.2: a balanced
// merge tree whose leaves are the per-function piece strings and whose
// internal nodes store the sorted, front-packed envelope of their
// subtree — exactly the intermediate state the bottom-up recursive
// halving of Envelope materialises level by level and then throws away.
// Keeping it resident turns the envelope into a batch-dynamic structure:
// a batch of k leaf changes dirties at most k·log₂(slots) internal
// nodes, and each dirty node is recomputed by one Lemma 3.1 pass
// (mergeLevel) over a scratch block sized to the node's actual piece
// population instead of the full machine — the sublinear update path of
// the batch-dynamic literature (Wang et al.), with the from-scratch
// construction retained as the exact oracle (Rebuild).
//
// Bit-identity argument. mergeLevel is block-relative: side tags,
// bitonic merge order (a strict total order on (Lo, side, ID) with
// occupied registers sorting before empty ones), window computation,
// packing and run combination all depend only on the sequence of
// occupied registers in each block, never on the register-file length.
// Re-merging two front-packed sibling strings in a smaller power-of-two
// block therefore yields byte-for-byte the pieces the from-scratch pass
// produces in the full-width block — unless the emitted pieces overflow
// the smaller block, which mergeLevel reports as ErrBlockCapacity and
// mergeNode answers by doubling the block (capped at the from-scratch
// width, where overflow would be a genuine λ under-allocation either
// way).

import (
	"errors"
	"fmt"
	"math/bits"

	"dyncg/internal/dsseq"
	"dyncg/internal/machine"
	"dyncg/internal/pieces"
)

// MergeTree is a retained balanced envelope merge tree over a fixed set
// of leaf slots. Slot i holds the piece string of function i (possibly
// empty — deleted or never-inserted functions simply contribute no
// pieces); the root holds the envelope of every occupied slot. The tree
// is bound to the machine that built it only through sizing (slots ×
// stride = machine size); it holds no machine state and may be rebuilt
// or updated on any machine of the same size.
type MergeTree struct {
	kind   pieces.Kind
	stride int // PEs per leaf slot in the from-scratch layout
	// levels[0] are the leaves (len = slots, a power of two);
	// levels[l][b] is the envelope of leaves [b·2^l, (b+1)·2^l).
	levels [][]pieces.Piecewise
}

// TreeUpdate replaces the piece string of one leaf slot. A nil or empty
// F empties the slot (function deletion).
type TreeUpdate struct {
	Slot int
	F    pieces.Piecewise
}

// UpdateStats reports the work of one Update batch.
type UpdateStats struct {
	DirtyLeaves int // distinct leaf slots written
	MergedNodes int // internal nodes recomputed (≤ DirtyLeaves·log₂ slots)
}

// NewMergeTree builds the retained merge tree of fs on machine m in one
// from-scratch Envelope pass, capturing every internal node via the
// per-level snapshot hook. len(fs) is rounded up to the next power of
// two of leaf slots; the extra slots start empty and are real slots — a
// later Update may populate them. Machine sizing is the caller's: m must
// satisfy the same Θ(λ(slots, s)) allocation Envelope needs (MeshPEs /
// CubePEs over the slot count).
func NewMergeTree(m *machine.M, fs []pieces.Piecewise, kind pieces.Kind) (*MergeTree, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("penvelope: merge tree needs at least one leaf slot")
	}
	slots := dsseq.NextPow2(len(fs))
	N := m.Size()
	stride := N / slots
	if stride < 1 {
		return nil, fmt.Errorf("penvelope: %d leaf slots need ≥%d PEs, machine has %d: %w",
			slots, slots, N, machine.ErrTooFewPEs)
	}
	t := &MergeTree{kind: kind, stride: stride}
	depth := bits.Len(uint(slots)) - 1 // log₂ slots
	t.levels = make([][]pieces.Piecewise, depth+1)
	t.levels[0] = make([]pieces.Piecewise, slots)
	for i, f := range fs {
		t.levels[0][i] = clonePieces(f)
	}
	for l := 1; l <= depth; l++ {
		t.levels[l] = make([]pieces.Piecewise, slots>>l)
	}
	if slots == 1 {
		// Degenerate tree: the root is the single leaf (Envelope's n = 1
		// path runs no merge levels either).
		return t, t.levels[0][0].Validate()
	}
	// Pass the full slot array so Envelope's own layout (n2 = slots,
	// stride = N/slots) coincides with the tree's.
	if _, err := envelope(m, t.levels[0], kind, t.snap); err != nil {
		return nil, err
	}
	return t, nil
}

// snap is the per-level snapshot hook: after the merge level of the
// given block size, block b of regs holds the sorted, front-packed
// envelope of leaves [b·w, (b+1)·w) where w = block/stride.
func (t *MergeTree) snap(block int, regs []machine.Reg[envReg]) {
	l := bits.Len(uint(block/t.stride)) - 1
	nodes := t.levels[l]
	for b := range nodes {
		var pw pieces.Piecewise
		for i := b * block; i < (b+1)*block; i++ {
			if !regs[i].Ok {
				break // front-packed: the first empty register ends the run
			}
			pw = append(pw, regs[i].V.p)
		}
		nodes[b] = pw
	}
}

// Slots returns the number of leaf slots.
func (t *MergeTree) Slots() int { return len(t.levels[0]) }

// Stride returns the PEs-per-slot of the from-scratch layout (the
// per-leaf piece capacity).
func (t *MergeTree) Stride() int { return t.stride }

// Leaf returns the piece string of one leaf slot (not a copy; callers
// must not mutate it).
func (t *MergeTree) Leaf(slot int) pieces.Piecewise { return t.levels[0][slot] }

// Root returns the maintained envelope of all occupied leaves (not a
// copy; callers must not mutate it).
func (t *MergeTree) Root() pieces.Piecewise { return t.levels[len(t.levels)-1][0] }

// Update applies a batch of leaf replacements and recomputes exactly the
// dirty root paths, bottom-up one level at a time so a node merges its
// children at most once per batch. The result is bit-identical to a
// from-scratch rebuild over the updated leaves (see the file comment);
// costs are charged to m as the Lemma 3.1 passes actually run, so the
// machine's Stats delta is the simulated incremental cost.
//
// Update validates the whole batch before touching the tree: an invalid
// update (slot out of range, malformed pieces, a leaf exceeding its
// stride capacity) leaves the tree unchanged. An error from a merge pass
// itself (ErrBlockCapacity at full width) can leave sibling nodes of the
// dirty path inconsistent; callers should treat the tree as broken then,
// as the engine in internal/session does.
func (t *MergeTree) Update(m *machine.M, ups []TreeUpdate) (UpdateStats, error) {
	var st UpdateStats
	slots := t.Slots()
	for _, u := range ups {
		if u.Slot < 0 || u.Slot >= slots {
			return st, fmt.Errorf("penvelope: update slot %d out of range [0, %d)", u.Slot, slots)
		}
		if err := u.F.Validate(); err != nil {
			return st, fmt.Errorf("penvelope: update for slot %d invalid: %w", u.Slot, err)
		}
		if len(u.F) > 0 && dsseq.NextPow2(len(u.F)) > t.stride {
			return st, fmt.Errorf("penvelope: update for slot %d has %d pieces, leaf capacity is %d: %w",
				u.Slot, len(u.F), t.stride, machine.ErrTooFewPEs)
		}
	}
	dirty := make(map[int]bool, len(ups))
	for _, u := range ups {
		t.levels[0][u.Slot] = clonePieces(u.F)
		dirty[u.Slot] = true
	}
	st.DirtyLeaves = len(dirty)
	for l := 1; l < len(t.levels); l++ {
		parents := make(map[int]bool, len(dirty))
		for b := range dirty {
			parents[b>>1] = true
		}
		for _, b := range sortedKeys(parents) {
			v, err := t.mergeNode(m, l, t.levels[l-1][2*b], t.levels[l-1][2*b+1])
			if err != nil {
				return st, fmt.Errorf("penvelope: merge tree node (level %d, block %d): %w", l, b, err)
			}
			t.levels[l][b] = v
			st.MergedNodes++
		}
		dirty = parents
	}
	if err := t.Root().Validate(); err != nil {
		return st, fmt.Errorf("penvelope: merge tree produced invalid root: %w", err)
	}
	return st, nil
}

// mergeNode recomputes one internal node at the given level: one
// Lemma 3.1 pass merging the front-packed strings of its two children in
// a scratch block sized to their piece population, retry-doubling on
// ErrBlockCapacity up to the node's from-scratch width stride·2^level.
func (t *MergeTree) mergeNode(m *machine.M, level int, f, g pieces.Piecewise) (pieces.Piecewise, error) {
	full := t.stride << level
	need := len(f)
	if len(g) > need {
		need = len(g)
	}
	if need < 1 {
		need = 1
	}
	// Both halves must hold their child's string; double once more up
	// front because the merged population commonly exceeds either input.
	block := dsseq.NextPow2(need) * 4
	if block > full {
		block = full
	}
	for {
		out, err := t.mergeOnce(m, f, g, block)
		if err == nil {
			return out, nil
		}
		if errors.Is(err, ErrBlockCapacity) && block < full {
			block *= 2
			continue
		}
		return nil, err
	}
}

// mergeOnce lays the two child strings in the halves of one scratch
// block and runs a single merge level over it.
func (t *MergeTree) mergeOnce(m *machine.M, f, g pieces.Piecewise, block int) (pieces.Piecewise, error) {
	regs := machine.GetScratch[machine.Reg[envReg]](m, block)
	defer machine.PutScratch(m, regs)
	for j, p := range f {
		regs[j] = machine.Some(envReg{p: p})
	}
	for j, p := range g {
		regs[block/2+j] = machine.Some(envReg{p: p})
	}
	window := func(fw, gw pieces.Piecewise) pieces.Piecewise {
		return pieces.Merge(fw, gw, t.kind)
	}
	if err := mergeLevel(m, regs, block, window); err != nil {
		return nil, err
	}
	var out pieces.Piecewise
	for _, r := range regs {
		if !r.Ok {
			break // front-packed
		}
		out = append(out, r.V.p)
	}
	return out, nil
}

// Rebuild constructs the envelope of the current leaves from scratch on
// machine m (one full Envelope pass over the same layout) without
// touching the retained nodes — the exact correctness oracle for
// incremental updates.
func (t *MergeTree) Rebuild(m *machine.M) (pieces.Piecewise, error) {
	if t.Slots() == 1 {
		return clonePieces(t.levels[0][0]), nil
	}
	return envelope(m, t.levels[0], t.kind, nil)
}

func clonePieces(f pieces.Piecewise) pieces.Piecewise {
	if len(f) == 0 {
		return nil
	}
	return append(pieces.Piecewise(nil), f...)
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// Insertion sort: batches are small and this keeps recompute order
	// (and thus charged costs) deterministic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
