package penvelope

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

func randPiecewise(r *rand.Rand, id int) pieces.Piecewise {
	c := curve.NewPoly(poly.New(r.NormFloat64()*4, r.NormFloat64()))
	a := r.Float64() * 2
	b := a + 0.5 + r.Float64()*3
	ivs := [][2]float64{{a, b}}
	if r.Intn(2) == 0 {
		c2 := b + 0.3 + r.Float64()
		ivs = append(ivs, [2]float64{c2, c2 + 1 + r.Float64()*2})
	}
	return pieces.OnIntervals(c, id, ivs)
}

// TestCombine2MatchesSerialWindows: the machine Combine2 pass and the
// serial CombineWindows reference produce identical results for the min
// combiner over random partial functions.
func TestCombine2MatchesSerialWindows(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	window := func(fw, gw pieces.Piecewise) pieces.Piecewise {
		return pieces.Merge(fw, gw, pieces.Min)
	}
	for trial := 0; trial < 80; trial++ {
		f := randPiecewise(r, 0)
		g := randPiecewise(r, 1)
		want := pieces.CombineWindows(f, g, window)
		m := newCube(64)
		got, err := Combine2(m, f, g, window)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pieces vs serial %d\n got %v\nwant %v",
				trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i].ID != want[i].ID ||
				math.Abs(got[i].Lo-want[i].Lo) > 1e-9 ||
				(!math.IsInf(want[i].Hi, 1) && math.Abs(got[i].Hi-want[i].Hi) > 1e-9) {
				t.Fatalf("trial %d piece %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMapPiecesBasics: a transform splitting every piece in half, with
// distinct IDs so nothing recombines.
func TestMapPiecesBasics(t *testing.T) {
	f := pieces.Piecewise{
		{F: curve.Const(1), ID: 0, Lo: 0, Hi: 2},
		{F: curve.Const(2), ID: 1, Lo: 2, Hi: 6},
	}
	m := newCube(16)
	got, err := MapPieces(m, f, func(p pieces.Piece) []pieces.Piece {
		mid := (p.Lo + p.Hi) / 2
		a, b := p, p
		a.Hi = mid
		b.Lo = mid
		b.ID = p.ID + 100 // distinct so Compact keeps the split
		return []pieces.Piece{a, b}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("MapPieces produced %v", got)
	}
	if got[0].Hi != 1 || got[2].Hi != 4 {
		t.Fatalf("split points wrong: %v", got)
	}
}

func TestMapPiecesCompactsRuns(t *testing.T) {
	f := pieces.Piecewise{
		{F: curve.Const(1), ID: 7, Lo: 0, Hi: 2},
		{F: curve.Const(1), ID: 7, Lo: 2, Hi: 5},
	}
	m := newCube(8)
	got, err := MapPieces(m, f, func(p pieces.Piece) []pieces.Piece {
		return []pieces.Piece{p}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Lo != 0 || got[0].Hi != 5 {
		t.Fatalf("runs not compacted: %v", got)
	}
}

func TestCombine2Capacity(t *testing.T) {
	m := newCube(4)
	big := make(pieces.Piecewise, 5)
	for i := range big {
		big[i] = pieces.Piece{F: curve.Const(1), ID: i, Lo: float64(i), Hi: float64(i) + 1}
	}
	if _, err := Combine2(m, big, nil, nil); err == nil {
		t.Fatal("oversized input accepted")
	}
}
