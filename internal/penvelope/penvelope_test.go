package penvelope

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/dsseq"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

func newMesh(n int) *machine.M { return machine.New(mesh.MustNew(dsseq.NextPow4(n), mesh.Proximity)) }
func newCube(n int) *machine.M { return machine.New(hypercube.MustNew(dsseq.NextPow2(n))) }

func randomCurves(r *rand.Rand, n, deg int) []curve.Curve {
	cs := make([]curve.Curve, n)
	for i := range cs {
		c := make([]float64, deg+1)
		for j := range c {
			c[j] = r.NormFloat64() * 3
		}
		cs[i] = curve.NewPoly(poly.New(c...))
	}
	return cs
}

// samePiecewise compares two piecewise functions structurally (IDs and
// breakpoints) up to tolerance.
func samePiecewise(t *testing.T, got, want pieces.Piecewise, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pieces, want %d\n got: %v\nwant: %v",
			label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID {
			t.Fatalf("%s: piece %d ID %d, want %d", label, i, g.ID, w.ID)
		}
		tol := 1e-6 * (1 + math.Abs(w.Lo))
		if math.Abs(g.Lo-w.Lo) > tol {
			t.Fatalf("%s: piece %d Lo %v, want %v", label, i, g.Lo, w.Lo)
		}
		if math.IsInf(w.Hi, 1) != math.IsInf(g.Hi, 1) {
			t.Fatalf("%s: piece %d Hi %v, want %v", label, i, g.Hi, w.Hi)
		}
		if !math.IsInf(w.Hi, 1) && math.Abs(g.Hi-w.Hi) > 1e-6*(1+math.Abs(w.Hi)) {
			t.Fatalf("%s: piece %d Hi %v, want %v", label, i, g.Hi, w.Hi)
		}
	}
}

// TestMatchesSerialProperty: the parallel construction agrees with the
// serial reference on random polynomial families, on both topologies.
func TestMatchesSerialProperty(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(12)
		deg := 1 + r.Intn(3)
		cs := randomCurves(r, n, deg)
		want := pieces.EnvelopeOfCurves(cs, pieces.Min)

		for _, m := range []*machine.M{newMesh(MeshPEs(n, deg)), newCube(CubePEs(n, deg))} {
			got, err := EnvelopeOfCurves(m, cs, pieces.Min)
			if err != nil {
				t.Fatalf("trial %d on %s: %v", trial, m.Topology().Name(), err)
			}
			samePiecewise(t, got, want, m.Topology().Name())
		}
	}
}

func TestMaxEnvelope(t *testing.T) {
	cs := []curve.Curve{
		curve.NewPoly(poly.New(0, 1)),
		curve.NewPoly(poly.New(4, -1)),
	}
	want := pieces.EnvelopeOfCurves(cs, pieces.Max)
	m := newCube(8)
	got, err := EnvelopeOfCurves(m, cs, pieces.Max)
	if err != nil {
		t.Fatal(err)
	}
	samePiecewise(t, got, want, "max")
}

func TestExtremalFamilies(t *testing.T) {
	// The parallel envelope must attain the λ bounds on the extremal
	// inputs of Lemma 2.2, like the serial one.
	for _, n := range []int{4, 8, 16} {
		ps := dsseq.ExtremalParabolas(n)
		cs := make([]curve.Curve, n)
		for i, p := range ps {
			cs[i] = curve.NewPoly(p)
		}
		m := newMesh(MeshPEs(n, 2))
		got, err := EnvelopeOfCurves(m, cs, pieces.Min)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2*n-1 {
			t.Fatalf("n=%d: %d pieces, want 2n−1=%d", n, len(got), 2*n-1)
		}
		if !dsseq.IsDSSequence(got.IDs(), n, 2) {
			t.Fatalf("n=%d: piece order %v not a DS-sequence", n, got.IDs())
		}
	}
}

// TestPartialFunctions exercises Theorem 3.4: envelopes of functions
// defined only on sub-intervals (transitions), with gaps in the result.
func TestPartialFunctions(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(6)
		fs := make([]pieces.Piecewise, n)
		for i := range fs {
			c := curve.NewPoly(poly.New(r.NormFloat64()*3, r.NormFloat64()))
			// 1–2 random domain intervals.
			a := r.Float64() * 3
			b := a + 0.5 + r.Float64()*2
			ivs := [][2]float64{{a, b}}
			if r.Intn(2) == 0 {
				c2 := b + 0.5 + r.Float64()
				hi := c2 + 1 + r.Float64()
				ivs = append(ivs, [2]float64{c2, hi})
			}
			fs[i] = pieces.OnIntervals(c, i, ivs)
		}
		want := pieces.Envelope(fs, pieces.Min)
		m := newCube(CubePEs(n, 3))
		got, err := Envelope(m, fs, pieces.Min)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		samePiecewise(t, got, want, "partial")
		// Sample agreement including gaps.
		for s := 0; s < 50; s++ {
			tm := float64(s) * 0.17
			gv, gok := got.Eval(tm)
			wv, wok := want.Eval(tm)
			if gok != wok || (gok && math.Abs(gv-wv) > 1e-6) {
				t.Fatalf("trial %d: eval mismatch at %v: (%v,%v) vs (%v,%v)",
					trial, tm, gv, gok, wv, wok)
			}
		}
	}
}

func TestSingleFunction(t *testing.T) {
	m := newCube(4)
	cs := []curve.Curve{curve.NewPoly(poly.New(1, 2, 3))}
	got, err := EnvelopeOfCurves(m, cs, pieces.Min)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("single-function envelope = %v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	m := newCube(4)
	got, err := Envelope(m, nil, pieces.Min)
	if err != nil || got != nil {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}

func TestTooSmallMachine(t *testing.T) {
	m := newCube(2)
	_, err := EnvelopeOfCurves(m, randomCurves(rand.New(rand.NewSource(1)), 8, 1), pieces.Min)
	if err == nil {
		t.Fatal("expected capacity error")
	}
}

// TestTheorem32CostShape: envelope construction time grows like
// Θ(√N) on the mesh and Θ(log² n) on the hypercube (Theorem 3.2),
// asserted by ratio tests across quadruplings.
func TestTheorem32CostShape(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	sizes := []int{16, 64, 256, 1024}
	meshT := make([]float64, len(sizes))
	cubeT := make([]float64, len(sizes))
	for si, n := range sizes {
		cs := randomCurves(r, n, 2)
		mm := newMesh(MeshPEs(n, 2))
		if _, err := EnvelopeOfCurves(mm, cs, pieces.Min); err != nil {
			t.Fatal(err)
		}
		meshT[si] = float64(mm.Stats().Time())
		hc := newCube(CubePEs(n, 2))
		if _, err := EnvelopeOfCurves(hc, cs, pieces.Min); err != nil {
			t.Fatal(err)
		}
		cubeT[si] = float64(hc.Stats().Time())
	}
	for i := 1; i < len(sizes); i++ {
		ratio := meshT[i] / meshT[i-1]
		if ratio > 3.2 {
			t.Errorf("mesh envelope not Θ(√λ): %d→%d grew %.2f× (>2 expected ≈2)",
				sizes[i-1], sizes[i], ratio)
		}
		l0, l1 := math.Log2(float64(sizes[i-1])), math.Log2(float64(sizes[i]))
		cratio := cubeT[i] / cubeT[i-1]
		if cratio > 1.6*(l1*l1)/(l0*l0) {
			t.Errorf("hypercube envelope not Θ(log²): %d→%d grew %.2f×",
				sizes[i-1], sizes[i], cratio)
		}
	}
}
