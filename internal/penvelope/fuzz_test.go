package penvelope_test

import (
	"math"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

// FuzzEnvelopeMerge fuzzes the Lemma 3.1 merge: the parallel envelope of
// four arbitrary degree-≤2 curves (built by penvelope's bottom-up merging
// on a simulated hypercube) must agree with the serial divide-and-conquer
// envelope of internal/pieces AND with the direct pointwise minimum of
// the curves, on a dense grid of time samples. Values are compared, not
// piece IDs: at a crossing the two constructions may credit either curve,
// but the function value is determined.
func FuzzEnvelopeMerge(f *testing.F) {
	f.Add(6.0, -0.5, 0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 0.0, 5.0, -2.0, 0.25)
	f.Add(1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0) // all identical
	f.Add(0.0, 1.0, 0.5, 9.0, -3.0, 0.5, 4.0, 0.0, -0.25, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a0, a1, a2, b0, b1, b2, c0, c1, c2, d0, d1, d2 float64) {
		coefs := []float64{a0, a1, a2, b0, b1, b2, c0, c1, c2, d0, d1, d2}
		for _, c := range coefs {
			if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 100 {
				t.Skip()
			}
		}
		cs := []curve.Curve{
			curve.NewPoly(poly.New(a0, a1, a2)),
			curve.NewPoly(poly.New(b0, b1, b2)),
			curve.NewPoly(poly.New(c0, c1, c2)),
			curve.NewPoly(poly.New(d0, d1, d2)),
		}
		serial := pieces.EnvelopeOfCurves(cs, pieces.Min)
		m := machine.New(hypercube.MustNew(penvelope.CubePEs(len(cs), 2)))
		par, err := penvelope.EnvelopeOfCurves(m, cs, pieces.Min)
		if err != nil {
			t.Fatalf("parallel envelope failed: %v (curves %v)", err, cs)
		}
		const steps = 256
		for k := 0; k <= steps; k++ {
			tt := 20 * float64(k) / steps
			direct := math.Inf(1)
			for _, c := range cs {
				if v := c.Eval(tt); v < direct {
					direct = v
				}
			}
			tol := 1e-6 * math.Max(1, math.Abs(direct))
			if v, ok := par.Eval(tt); !ok || math.Abs(v-direct) > tol {
				t.Fatalf("t=%v: parallel envelope = (%v, %v), direct min = %v (curves %v)",
					tt, v, ok, direct, cs)
			}
			if v, ok := serial.Eval(tt); !ok || math.Abs(v-direct) > tol {
				t.Fatalf("t=%v: serial envelope = (%v, %v), direct min = %v (curves %v)",
					tt, v, ok, direct, cs)
			}
		}
	})
}
