package penvelope

import (
	"math/rand"
	"reflect"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

// identicalPiecewise asserts byte-for-byte equality — the merge tree's
// contract is bit-identity with the from-scratch construction, stronger
// than the tolerance-based samePiecewise of the parallel/serial
// comparisons.
func identicalPiecewise(t *testing.T, got, want pieces.Piecewise, label string) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: incremental and from-scratch results differ\n got: %v\nwant: %v", label, got, want)
	}
}

func leavesOf(r *rand.Rand, n, deg int) []pieces.Piecewise {
	cs := randomCurves(r, n, deg)
	fs := make([]pieces.Piecewise, n)
	for i, c := range cs {
		fs[i] = pieces.Total(c, i)
	}
	return fs
}

// TestMergeTreeBuildMatchesEnvelope: the freshly built tree's root must
// be bit-identical to a plain Envelope pass over the same slot layout.
func TestMergeTreeBuildMatchesEnvelope(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, n := range []int{1, 2, 3, 7, 16} {
		fs := leavesOf(r, n, 2)
		m := machine.New(hypercube.MustNew(CubePEs(n, 4)))
		tr, err := NewMergeTree(m, fs, pieces.Min)
		if err != nil {
			t.Fatalf("n=%d: NewMergeTree: %v", n, err)
		}
		m2 := machine.New(hypercube.MustNew(CubePEs(n, 4)))
		// Envelope over the padded slot array (the tree's layout).
		padded := make([]pieces.Piecewise, tr.Slots())
		copy(padded, fs)
		want, err := Envelope(m2, padded, pieces.Min)
		if err != nil {
			t.Fatalf("n=%d: Envelope: %v", n, err)
		}
		identicalPiecewise(t, tr.Root(), want, "build root")
	}
}

// TestMergeTreeUpdateMatchesRebuild drives random update batches through
// the retained tree and checks every root against a from-scratch rebuild
// on the same machine — the bit-identity contract — on both topologies.
func TestMergeTreeUpdateMatchesRebuild(t *testing.T) {
	const n, deg = 16, 2
	machines := map[string]func() *machine.M{
		"hypercube": func() *machine.M { return machine.New(hypercube.MustNew(CubePEs(n, 2*deg))) },
		"mesh":      func() *machine.M { return machine.New(mesh.MustNew(MeshPEs(n, 2*deg), mesh.Proximity)) },
	}
	for topo, mk := range machines {
		t.Run(topo, func(t *testing.T) {
			r := rand.New(rand.NewSource(88))
			m := mk()
			fs := leavesOf(r, n, deg)
			tr, err := NewMergeTree(m, fs, pieces.Min)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 12; round++ {
				k := 1 + r.Intn(6)
				ups := make([]TreeUpdate, k)
				for i := range ups {
					slot := r.Intn(tr.Slots())
					switch r.Intn(3) {
					case 0: // delete
						ups[i] = TreeUpdate{Slot: slot}
					default: // insert / replace
						c := randomCurves(r, 1, deg)[0]
						ups[i] = TreeUpdate{Slot: slot, F: pieces.Total(c, slot)}
					}
				}
				st, err := tr.Update(m, ups)
				if err != nil {
					t.Fatalf("round %d: Update: %v", round, err)
				}
				if st.DirtyLeaves < 1 || st.DirtyLeaves > k {
					t.Fatalf("round %d: DirtyLeaves = %d for batch of %d", round, st.DirtyLeaves, k)
				}
				want, err := tr.Rebuild(m)
				if err != nil {
					t.Fatalf("round %d: Rebuild: %v", round, err)
				}
				identicalPiecewise(t, tr.Root(), want, "updated root")
			}
		})
	}
}

// TestMergeTreeUpdateIsSublinear: a one-leaf update must do much less
// simulated *work* (messages moved) than a from-scratch rebuild, and no
// more simulated time. (The rebuild's parallel span is already Θ(log² n)
// on these machines, so the dirty-path win shows up in total work — and
// in host wall-clock, which BenchmarkSessionUpdate pins — rather than in
// a large span gap.)
func TestMergeTreeUpdateIsSublinear(t *testing.T) {
	const n = 64
	r := rand.New(rand.NewSource(7))
	m := machine.New(hypercube.MustNew(CubePEs(n, 2)))
	tr, err := NewMergeTree(m, leavesOf(r, n, 1), pieces.Min)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	c := randomCurves(r, 1, 1)[0]
	if _, err := tr.Update(m, []TreeUpdate{{Slot: 5, F: pieces.Total(c, 5)}}); err != nil {
		t.Fatal(err)
	}
	incr := m.Stats().Sub(before)
	before = m.Stats()
	if _, err := tr.Rebuild(m); err != nil {
		t.Fatal(err)
	}
	full := m.Stats().Sub(before)
	if incr.Messages*2 >= full.Messages {
		t.Fatalf("one-leaf update moved %d messages, not well below the rebuild's %d",
			incr.Messages, full.Messages)
	}
	if incr.Time() >= full.Time() {
		t.Fatalf("one-leaf update span %d not below rebuild span %d", incr.Time(), full.Time())
	}
}

// TestMergeTreeEmptyAndSparse: all-empty trees and trees emptied by
// updates must yield empty envelopes, and refilling must work.
func TestMergeTreeEmptyAndSparse(t *testing.T) {
	m := machine.New(hypercube.MustNew(64))
	tr, err := NewMergeTree(m, make([]pieces.Piecewise, 8), pieces.Min)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Root()) != 0 {
		t.Fatalf("empty tree root has %d pieces", len(tr.Root()))
	}
	f := pieces.Total(curve.NewPoly(poly.New(1, 2)), 3)
	if _, err := tr.Update(m, []TreeUpdate{{Slot: 3, F: f}}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Root()) != 1 || tr.Root()[0].ID != 3 {
		t.Fatalf("single-function root = %v", tr.Root())
	}
	if _, err := tr.Update(m, []TreeUpdate{{Slot: 3}}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Root()) != 0 {
		t.Fatalf("re-emptied tree root has %d pieces", len(tr.Root()))
	}
}

// TestMergeTreeUpdateValidation: bad batches must be rejected atomically.
func TestMergeTreeUpdateValidation(t *testing.T) {
	m := machine.New(hypercube.MustNew(64))
	r := rand.New(rand.NewSource(3))
	tr, err := NewMergeTree(m, leavesOf(r, 8, 1), pieces.Min)
	if err != nil {
		t.Fatal(err)
	}
	rootBefore := append(pieces.Piecewise(nil), tr.Root()...)
	good := pieces.Total(curve.NewPoly(poly.New(0, 1)), 0)
	if _, err := tr.Update(m, []TreeUpdate{{Slot: 0, F: good}, {Slot: 99, F: good}}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	identicalPiecewise(t, tr.Root(), rootBefore, "root after rejected batch")
	bad := pieces.Piecewise{{F: curve.NewPoly(poly.New(1)), ID: 0, Lo: 2, Hi: 1}}
	if _, err := tr.Update(m, []TreeUpdate{{Slot: 1, F: bad}}); err == nil {
		t.Fatal("malformed piecewise accepted")
	}
	identicalPiecewise(t, tr.Root(), rootBefore, "root after rejected malformed batch")
}
