// Package penvelope implements the paper's parallel construction of the
// minimum (and maximum) function — the central tool of §3:
//
//   - Lemma 3.1: merging the pieces of two piecewise functions stored in
//     disjoint strings into the pieces of their pointwise min, using one
//     merge, parallel prefixes, Θ(1) local root-finding per PE, and a
//     compaction — Θ(√m) on the mesh, Θ(log m) on the hypercube;
//
//   - Theorem 3.2: the recursive halving that builds
//     h(t) = min{f₀(t), …, f_{n−1}(t)} on a machine of λ_M(n,s) (mesh) or
//     λ_H(n,s) (hypercube) PEs in Θ(λ^{1/2}(n,s)) resp. Θ(log² n) time,
//     leaving the pieces ordered one per PE;
//
//   - Theorem 3.4: the same construction for partial functions with
//     bounded jump discontinuities and transitions (Figure 5), used by
//     the convex-hull-membership algorithm of §4.2.
//
// The recursion is realised bottom-up: level ℓ works on aligned blocks of
// 2^ℓ PEs, every block holding the envelope of its functions as a sorted,
// front-packed run of pieces; merging two sibling blocks is Lemma 3.1
// executed simultaneously in every block pair.
package penvelope

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"dyncg/internal/curve"
	"dyncg/internal/dsseq"
	"dyncg/internal/machine"
	"dyncg/internal/par"
	"dyncg/internal/pieces"
)

// ErrBlockCapacity reports that a merge level emitted more pieces than
// an aligned block can hold one-per-PE. Under the MeshPEs/CubePEs
// allocation (N ≥ 4·λ(n, s)) this never fires for from-scratch
// envelopes; the retained MergeTree deliberately re-merges dirty nodes
// in under-sized scratch blocks and uses this sentinel to retry with a
// doubled block (see mergeNode).
var ErrBlockCapacity = errors.New("penvelope: block capacity exceeded (λ under-allocation)")

// kindName names the envelope kind in trace spans.
func kindName(kind pieces.Kind) string {
	if kind == pieces.Max {
		return "max"
	}
	return "min"
}

// envReg is one PE's register during envelope construction: a piece plus
// the half ("string") it belonged to at the current merge level — the
// paper's f/g tag from Step 1 of Lemma 3.1.
type envReg struct {
	p    pieces.Piece
	side uint8
}

// lastSeen carries, through a parallel prefix, the most recent piece of
// each side — the other-piece field of Lemma 3.1 Step 3.
type lastSeen struct {
	f, g     pieces.Piece
	fOk, gOk bool
}

func mergeSeen(a, b lastSeen) lastSeen {
	out := b
	if !out.fOk {
		out.f, out.fOk = a.f, a.fOk
	}
	if !out.gOk {
		out.g, out.gOk = a.g, a.gOk
	}
	return out
}

// Envelope builds the min/max function of fs on machine m. Each input
// must have Θ(1) pieces (a single total curve, or the ≤ k+1 domain pieces
// of a partial function per Theorem 3.4); inputs are laid out one
// function per machine stride, the paper's input convention (§2.4). The
// result is returned as an ordered Piecewise (pieces end up ordered, one
// per PE, exactly as Theorem 3.2 promises) and the machine's counters
// hold the simulated parallel time.
func Envelope(m *machine.M, fs []pieces.Piecewise, kind pieces.Kind) (pieces.Piecewise, error) {
	return envelope(m, fs, kind, nil)
}

// envelope is the body of Envelope with an optional per-level snapshot
// hook: after every completed merge level, snap receives the block size
// and the register file, whose aligned blocks hold the sorted,
// front-packed envelopes of their function groups. NewMergeTree uses the
// hook to capture every internal node of the recursion tree in one
// bottom-up pass.
func envelope(m *machine.M, fs []pieces.Piecewise, kind pieces.Kind, snap func(block int, regs []machine.Reg[envReg])) (pieces.Piecewise, error) {
	n := len(fs)
	N := m.Size()
	if n == 0 {
		return nil, nil
	}
	if m.Observed() {
		m.SpanBegin("thm3.2-envelope",
			"funcs", strconv.Itoa(n), "kind", kindName(kind))
		defer m.SpanEnd()
	}
	maxInit := 1
	for _, f := range fs {
		if len(f) > maxInit {
			maxInit = len(f)
		}
	}
	// Spread the functions across the whole machine. The paper stores
	// Θ(1) pieces per PE; this implementation keeps exactly one piece per
	// PE and compensates with a constant-factor PE overallocation (see
	// MeshPEs/CubePEs and DESIGN.md): with N ≥ 4·λ(n,s) every block's
	// piece population, even before Step 6's compaction, fits one-per-PE.
	n2 := dsseq.NextPow2(n)
	stride := N / n2
	if stride < dsseq.NextPow2(maxInit) {
		return nil, fmt.Errorf("penvelope: %d functions with ≤%d pieces need ≥%d PEs, machine has %d: %w",
			n, maxInit, n2*dsseq.NextPow2(maxInit), N, machine.ErrTooFewPEs)
	}
	// Spread the inputs: function i's pieces at PEs i·stride, i·stride+1, …
	// (Step 1 of Theorem 3.2: split the descriptions evenly).
	regs := machine.GetScratch[machine.Reg[envReg]](m, N)
	defer machine.PutScratch(m, regs)
	for i, f := range fs {
		for j, p := range f {
			regs[i*stride+j] = machine.Some(envReg{p: p})
		}
	}
	// Bottom-up recursive halving (Step 2–3 of Theorem 3.2).
	window := func(fw, gw pieces.Piecewise) pieces.Piecewise {
		return pieces.Merge(fw, gw, kind)
	}
	for block := stride * 2; block <= N; block *= 2 {
		if err := mergeLevel(m, regs, block, window); err != nil {
			return nil, err
		}
		if snap != nil {
			snap(block, regs)
		}
	}
	out := pieces.Piecewise{}
	for _, r := range regs {
		if r.Ok {
			out = append(out, r.V.p)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("penvelope: invalid result: %w", err)
	}
	return out, nil
}

// mergeLevel performs Lemma 3.1 simultaneously in every aligned block of
// the given size: each block's two halves hold sorted, front-packed piece
// runs of h₁ and h₂; afterwards the block holds the sorted, front-packed
// pieces of window(h₁, h₂) — the pointwise min for envelope construction,
// or any other Θ(1)-per-window combination (the generalisation the paper
// notes after Lemma 3.1: "the algorithm ... can also be used to construct
// ... any of a variety of operations (e.g., max, sum, product)").
func mergeLevel(m *machine.M, regs []machine.Reg[envReg], block int, window func(fw, gw pieces.Piecewise) pieces.Piecewise) error {
	if m.Observed() {
		m.SpanBegin("lemma3.1-merge", "block", strconv.Itoa(block))
		defer m.SpanEnd()
	}
	N := len(regs)
	half := block / 2
	// Step 1: tag sides.
	m.ChargeLocal(1)
	par.ForEach(m.Workers(), N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if regs[i].Ok {
				r := regs[i].V
				r.side = uint8((i / half) % 2)
				regs[i] = machine.Some(r)
			}
		}
	})
	// Step 2: merge the two runs by interval left endpoint. Ties broken
	// by side then ID for determinism (the paper breaks ties in favour of
	// Right records; any fixed rule works here because empty windows are
	// skipped).
	machine.MergeBlocks(m, regs, block, func(a, b envReg) bool {
		if a.p.Lo != b.p.Lo {
			return a.p.Lo < b.p.Lo
		}
		if a.side != b.side {
			return a.side < b.side
		}
		return a.p.ID < b.p.ID
	})
	// Step 3: parallel prefix gives every PE the latest piece of each
	// side starting at or before its own (the other-piece field).
	seg := machine.GetScratch[bool](m, N)
	for i := 0; i < N; i += block {
		seg[i] = true
	}
	// seen is self-contained scratch (never crosses back into regs), so it
	// lives natively in the columnar layout — no record split/join.
	seen := machine.GetCols[lastSeen](m, N)
	m.ChargeLocal(1)
	par.ForEach(m.Workers(), N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !regs[i].Ok {
				continue
			}
			r := regs[i].V
			ls := lastSeen{}
			if r.side == 0 {
				ls.f, ls.fOk = r.p, true
			} else {
				ls.g, ls.gOk = r.p, true
			}
			seen.Val[i], seen.Occ[i] = ls, true
		}
	})
	machine.ScanCols(m, seen, seg, machine.Forward, mergeSeen)
	// Each PE also needs the start of the next piece to bound its window.
	next := machine.ShiftWithin(m, regs, block, -1)
	// Step 4–5: Θ(1) local work per PE — build the envelope restricted to
	// the window [myLo, nextLo) from the two active pieces, via the same
	// bounded computation a single PE performs in Lemma 3.1 (root
	// isolation on one pair of bounded-degree curves plus sample
	// comparisons on ≤ s+1 subintervals).
	m.ChargeLocal(1)
	emitted := machine.GetScratch[[]pieces.Piece](m, N)
	// The window computation (root isolation on a pair of curves) is pure
	// and writes only emitted[i], so PEs shard freely; maxEmit is an
	// order-independent max reduction.
	maxEmit := par.Reduce(m.Workers(), N, 0, func(lo, hi int) int {
		maxEmit := 0
		for i := lo; i < hi; i++ {
			if !regs[i].Ok || !seen.Occ[i] {
				continue
			}
			w0 := regs[i].V.p.Lo
			w1 := math.Inf(1)
			if next[i].Ok {
				w1 = next[i].V.p.Lo
			}
			if !(w0 < w1) {
				continue // empty window (tied left endpoints)
			}
			ls := seen.Val[i]
			var fw, gw pieces.Piecewise
			if ls.fOk {
				fw = clip(ls.f, w0, w1)
			}
			if ls.gOk {
				gw = clip(ls.g, w0, w1)
			}
			emitted[i] = window(fw, gw)
			if len(emitted[i]) > maxEmit {
				maxEmit = len(emitted[i])
			}
		}
		return maxEmit
	}, func(a, b int) int {
		if b > a {
			return b
		}
		return a
	})
	// Pack the emitted subpieces: rank by parallel prefix, then maxEmit
	// structured routes (each PE holds Θ(1) subpieces).
	counts := machine.GetCols[int](m, N)
	m.ChargeLocal(1)
	for i := 0; i < N; i++ {
		counts.Val[i], counts.Occ[i] = len(emitted[i]), true
	}
	machine.ScanCols(m, counts, seg, machine.Forward, func(a, b int) int { return a + b })
	out := machine.GetScratch[machine.Reg[envReg]](m, N)
	for i := range regs {
		if len(emitted[i]) == 0 {
			continue
		}
		base := (i/block)*block + counts.Val[i] - len(emitted[i])
		for j, p := range emitted[i] {
			if base+j >= (i/block+1)*block {
				return fmt.Errorf("%w at level %d", ErrBlockCapacity, block)
			}
			out[base+j] = machine.Some(envReg{p: p})
		}
	}
	srcBuf := machine.GetScratch[int](m, N)
	dstBuf := machine.GetScratch[int](m, N)
	for j := 0; j < maxEmit; j++ {
		// Each of the ≤ maxEmit rounds is one structured route.
		src, dst := srcBuf[:0], dstBuf[:0]
		for i := range regs {
			if j < len(emitted[i]) {
				src = append(src, i)
				dst = append(dst, (i/block)*block+counts.Val[i]-len(emitted[i])+j)
			}
		}
		m.ChargeRoute(src, dst)
	}
	copy(regs, out)
	// Release this level's scratch before recursing into Step 6. The
	// emitted buffer still holds per-PE subpiece slices (heap values from
	// window); clear it so the parked buffer does not pin them.
	clear(emitted)
	machine.PutScratch(m, dstBuf)
	machine.PutScratch(m, srcBuf)
	machine.PutScratch(m, out)
	machine.PutCols(m, counts)
	machine.PutScratch(m, emitted)
	machine.PutScratch(m, next)
	machine.PutCols(m, seen)
	machine.PutScratch(m, seg)
	// Step 6: combine adjacent subpieces with the same generating
	// function (runs), using a prefix within runs.
	return combineRuns(m, regs, block)
}

// combineRuns merges maximal runs of adjacent pieces with equal ID whose
// intervals abut, the parallel form of Piecewise.Compact.
func combineRuns(m *machine.M, regs []machine.Reg[envReg], block int) error {
	if m.Observed() {
		m.SpanBegin("combine-runs", "block", strconv.Itoa(block))
		defer m.SpanEnd()
	}
	N := len(regs)
	prev := machine.ShiftWithin(m, regs, block, +1) // prev[i] = regs[i-1]
	runStart := machine.GetScratch[bool](m, N)
	m.ChargeLocal(1)
	par.ForEach(m.Workers(), N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !regs[i].Ok {
				runStart[i] = i%block == 0
				continue
			}
			if !prev[i].Ok {
				runStart[i] = true
				continue
			}
			a, b := prev[i].V.p, regs[i].V.p
			runStart[i] = !(a.ID == b.ID && a.Hi == b.Lo)
		}
	})
	machine.PutScratch(m, prev)
	// Bring each run's final Hi to its head: a backward flood (nil op)
	// within runs.
	his := machine.GetCols[float64](m, N)
	for i := range regs {
		if regs[i].Ok {
			his.Val[i], his.Occ[i] = regs[i].V.p.Hi, true
		}
	}
	machine.ScanCols(m, his, runStart, machine.Backward, nil)
	m.ChargeLocal(1)
	for i := range regs {
		if !regs[i].Ok {
			continue
		}
		if runStart[i] {
			r := regs[i].V
			r.p.Hi = his.Val[i]
			regs[i] = machine.Some(r)
		} else {
			regs[i] = machine.None[envReg]()
		}
	}
	machine.PutCols(m, his)
	seg := machine.GetScratch[bool](m, N)
	for i := 0; i < N; i += block {
		seg[i] = true
	}
	machine.Compact(m, regs, seg)
	machine.PutScratch(m, seg)
	machine.PutScratch(m, runStart)
	return nil
}

// clip restricts a piece to the window [w0, w1), returning at most one
// piece.
func clip(p pieces.Piece, w0, w1 float64) pieces.Piecewise {
	lo := math.Max(p.Lo, w0)
	hi := math.Min(p.Hi, w1)
	if !(lo < hi) {
		return nil
	}
	return pieces.Piecewise{{F: p.F, ID: p.ID, Lo: lo, Hi: hi}}
}

// MeshPEs returns the mesh size (a power of four) this implementation
// uses for an envelope of n functions with at most s pairwise
// intersections: Θ(λ_M(n, s)) PEs, the Theorem 3.2 allocation up to the
// constant factor documented in DESIGN.md (one piece per PE instead of
// Θ(1) pieces per PE).
func MeshPEs(n, s int) int { return dsseq.NextPow4(4 * dsseq.LambdaBound(n, s)) }

// CubePEs is MeshPEs for the hypercube: Θ(λ_H(n, s)) PEs, a power of two.
func CubePEs(n, s int) int { return dsseq.NextPow2(4 * dsseq.LambdaBound(n, s)) }

// EnvelopeOfCurves runs Envelope over total curves, tagging curve i with
// ID i — the direct parallel construction of Equation (1).
func EnvelopeOfCurves(m *machine.M, cs []curve.Curve, kind pieces.Kind) (pieces.Piecewise, error) {
	fs := make([]pieces.Piecewise, len(cs))
	for i, c := range cs {
		fs[i] = pieces.Total(c, i)
	}
	return Envelope(m, fs, kind)
}
