package penvelope

import (
	"fmt"

	"dyncg/internal/machine"
	"dyncg/internal/pieces"
)

// Combine2 applies Lemma 3.1's machine algorithm once to two piecewise
// functions f and g with an arbitrary Θ(1)-per-window combiner — the
// paper's remark that the construction works for "any of a variety of
// operations" on a pair of functions. It is the workhorse of §4: the
// algorithms of Theorems 4.5–4.7 build difference functions and 0/1
// indicator functions (A₀, B₀, W_i, …) exactly this way.
//
// window receives the pieces of f and of g clipped to an elementary
// window (either may be empty) and returns the combined pieces on that
// window. Cost: Θ(√N) mesh / Θ(log N) hypercube (one Lemma 3.1 pass).
func Combine2(m *machine.M, f, g pieces.Piecewise, window func(fw, gw pieces.Piecewise) pieces.Piecewise) (pieces.Piecewise, error) {
	N := m.Size()
	if len(f) > N/2 || len(g) > N/2 {
		return nil, fmt.Errorf("penvelope: Combine2 inputs (%d, %d pieces) exceed machine halves (%d PEs): %w",
			len(f), len(g), N, machine.ErrTooFewPEs)
	}
	regs := make([]machine.Reg[envReg], N)
	for j, p := range f {
		regs[j] = machine.Some(envReg{p: p})
	}
	for j, p := range g {
		regs[N/2+j] = machine.Some(envReg{p: p})
	}
	if err := mergeLevel(m, regs, N, window); err != nil {
		return nil, err
	}
	out := pieces.Piecewise{}
	for _, r := range regs {
		if r.Ok {
			out = append(out, r.V.p)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("penvelope: Combine2 produced invalid pieces: %w", err)
	}
	return out, nil
}

// MergeMinMax is Combine2 specialised to the pointwise min/max of two
// piecewise functions (Lemma 3.1 proper).
func MergeMinMax(m *machine.M, f, g pieces.Piecewise, kind pieces.Kind) (pieces.Piecewise, error) {
	return Combine2(m, f, g, func(fw, gw pieces.Piecewise) pieces.Piecewise {
		return pieces.Merge(fw, gw, kind)
	})
}

// MapPieces applies a Θ(1) local transformation to every piece of f
// (each piece may expand into a bounded number of subpieces), then packs
// and recombines adjacent equal runs — one parallel prefix, a constant
// number of routes, and a compaction. Used for per-piece threshold
// indicators such as W_i(t) = [D_i(t) ≤ X_i] in Theorem 4.6.
func MapPieces(m *machine.M, f pieces.Piecewise, fn func(pieces.Piece) []pieces.Piece) (pieces.Piecewise, error) {
	N := m.Size()
	if len(f) > N {
		return nil, fmt.Errorf("penvelope: MapPieces input (%d pieces) exceeds machine (%d PEs): %w", len(f), N, machine.ErrTooFewPEs)
	}
	emitted := make([][]pieces.Piece, N)
	m.ChargeLocal(1)
	total := 0
	for i, p := range f {
		emitted[i] = fn(p)
		total += len(emitted[i])
	}
	if total > N {
		return nil, fmt.Errorf("penvelope: MapPieces expansion (%d pieces) exceeds machine (%d PEs): %w", total, N, machine.ErrTooFewPEs)
	}
	counts := machine.GetCols[int](m, N)
	m.ChargeLocal(1)
	for i := 0; i < N; i++ {
		counts.Set(i, len(emitted[i]))
	}
	machine.ScanCols(m, counts, machine.WholeMachine(N), machine.Forward,
		func(a, b int) int { return a + b })
	regs := make([]machine.Reg[envReg], N)
	maxEmit := 0
	for i := range emitted {
		if len(emitted[i]) > maxEmit {
			maxEmit = len(emitted[i])
		}
		base := counts.Val[i] - len(emitted[i])
		for j, p := range emitted[i] {
			regs[base+j] = machine.Some(envReg{p: p})
		}
	}
	for j := 0; j < maxEmit; j++ {
		var src, dst []int
		for i := range emitted {
			if j < len(emitted[i]) {
				src = append(src, i)
				dst = append(dst, counts.Val[i]-len(emitted[i])+j)
			}
		}
		m.ChargeRoute(src, dst)
	}
	machine.PutCols(m, counts)
	if err := combineRuns(m, regs, N); err != nil {
		return nil, err
	}
	out := pieces.Piecewise{}
	for _, r := range regs {
		if r.Ok {
			out = append(out, r.V.p)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("penvelope: MapPieces produced invalid pieces: %w", err)
	}
	return out, nil
}
