package trace_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dyncg/internal/core"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/trace"
)

// TestExactAttributionEndToEnd is the subsystem's acceptance check: for a
// §4 transient algorithm (Theorem 4.1 closest-point sequence) and a §5
// steady-state algorithm (Proposition 5.4 hull), on both the mesh and the
// hypercube, the traced root span accounts for the machine's simulated
// time *exactly* — no charged step escapes attribution.
func TestExactAttributionEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	sys := motion.Random(r, 12, 1, 2, 5)

	cases := []struct {
		algo string
		topo string
		m    *machine.M
		run  func(m *machine.M) error
	}{
		{"thm4.1-closest-seq", "mesh", core.MeshFor(sys.N()-1, 2), func(m *machine.M) error {
			_, err := core.ClosestPointSequence(m, sys, 0)
			return err
		}},
		{"thm4.1-closest-seq", "hypercube", core.CubeFor(sys.N()-1, 2), func(m *machine.M) error {
			_, err := core.ClosestPointSequence(m, sys, 0)
			return err
		}},
		{"prop5.4-steady-hull", "mesh", core.MeshOf(4 * sys.N()), func(m *machine.M) error {
			_, err := core.SteadyHull(m, sys)
			return err
		}},
		{"prop5.4-steady-hull", "hypercube", core.CubeOf(4 * sys.N()), func(m *machine.M) error {
			_, err := core.SteadyHull(m, sys)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.algo+"/"+tc.topo, func(t *testing.T) {
			tr := trace.Attach(tc.m, "run")
			if err := tc.run(tc.m); err != nil {
				t.Fatalf("%s on %s: %v", tc.algo, tc.topo, err)
			}
			root := tr.Finish()

			want := tc.m.Stats()
			if want.Time() == 0 {
				t.Fatalf("algorithm charged no simulated time")
			}
			if got := root.Delta(); got != want {
				t.Errorf("root delta %+v != machine stats %+v", got, want)
			}

			// The algorithm's named theorem span must be present and, as
			// the only child of the root, account for the full runtime.
			var algoSpan *trace.Span
			root.Walk(func(s *trace.Span, _ int) {
				if s.Name == tc.algo {
					algoSpan = s
				}
			})
			if algoSpan == nil {
				t.Fatalf("no span named %q in trace", tc.algo)
			}
			if got := algoSpan.Delta().Time(); got != want.Time() {
				t.Errorf("span %q time %d != machine time %d", tc.algo, got, want.Time())
			}

			// Self-times partition the total exactly.
			var selfSum int64
			root.Walk(func(s *trace.Span, _ int) { selfSum += s.Self().Time() })
			if selfSum != want.Time() {
				t.Errorf("Σ self %d != machine time %d", selfSum, want.Time())
			}

			// Chrome export round-trips and its root event carries the
			// exact simulated duration.
			var buf bytes.Buffer
			if err := trace.WriteChrome(&buf, root, tc.m); err != nil {
				t.Fatalf("WriteChrome: %v", err)
			}
			var ct trace.ChromeTrace
			if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
				t.Fatalf("chrome JSON does not round-trip: %v", err)
			}
			var rootDur int64 = -1
			for _, ev := range ct.TraceEvents {
				if ev.Ph == "X" && ev.Name == "run" {
					rootDur = ev.Dur
				}
			}
			if rootDur != want.Time() {
				t.Errorf("chrome root Dur %d != machine time %d", rootDur, want.Time())
			}

			// The cost tree reports the same exact total.
			var tree bytes.Buffer
			trace.WriteCostTree(&tree, root, 0)
			header := fmt.Sprintf("root total = %d", want.Time())
			if !strings.Contains(tree.String(), header) {
				t.Errorf("cost tree missing %q:\n%s", header, tree.String())
			}
		})
	}
}

// TestMetricsAcrossAlgorithms checks the aggregate registry over a full
// algorithm run: per-primitive self-times sum to the machine total.
func TestMetricsAcrossAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sys := motion.Random(r, 10, 1, 2, 5)
	m := core.MeshOf(4 * sys.N())
	tr := trace.Attach(m, "run")
	if _, _, err := core.SteadyClosestPair(m, sys); err != nil {
		t.Fatal(err)
	}
	root := tr.Finish()
	ms := trace.Collect(root)
	if ms.Root != m.Stats() {
		t.Fatalf("metrics root %+v != machine stats %+v", ms.Root, m.Stats())
	}
	var sum int64
	for _, pm := range ms.ByName {
		sum += pm.Total.Time()
	}
	if sum != m.Stats().Time() {
		t.Fatalf("Σ per-primitive self %d != machine time %d", sum, m.Stats().Time())
	}
	if ms.ByName["sort"] == nil || ms.ByName["sort"].Calls == 0 {
		t.Fatalf("expected sort primitives in steady closest-pair run")
	}
}
