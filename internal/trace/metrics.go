package trace

// Aggregate metrics: per-primitive counters and simulated-time
// histograms, collected from a finished span tree. Where the cost tree
// answers "where did this run's time go", the metrics snapshot answers
// "what does a sort cost here, and how is that cost distributed" —
// comparable across runs and PRs.

import (
	"fmt"
	"io"
	"sort"

	"dyncg/internal/machine"
)

// histBuckets is the number of power-of-two simulated-time buckets:
// bucket i counts spans with Time() in [2^(i−1), 2^i), bucket 0 counts
// zero-cost spans. 2^31 simulated steps is beyond any simulation here.
const histBuckets = 32

// Hist is a power-of-two histogram of simulated span times.
type Hist struct {
	Counts [histBuckets]int64
}

// Observe records one simulated-time sample.
func (h *Hist) Observe(t int64) {
	b := 0
	for t > 0 && b < histBuckets-1 {
		t >>= 1
		b++
	}
	h.Counts[b]++
}

// String renders the non-empty buckets compactly, e.g. "[8,16):12".
func (h *Hist) String() string {
	out := ""
	for b, c := range h.Counts {
		if c == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		if b == 0 {
			out += fmt.Sprintf("0:%d", c)
		} else {
			out += fmt.Sprintf("[%d,%d):%d", 1<<(b-1), 1<<b, c)
		}
	}
	return out
}

// PrimMetrics aggregates every span with a given name.
type PrimMetrics struct {
	Name  string
	Calls int64
	Total machine.Stats // sum of the spans' Self() costs
	Times Hist          // histogram of per-span total (Delta) times
	// Retries and Recoveries count fault rounds charged directly inside
	// spans of this name (only populated when the tracer recorded rounds,
	// i.e. WithRounds).
	Retries    int64
	Recoveries int64
}

// Metrics is an aggregate snapshot over a span tree.
type Metrics struct {
	ByName map[string]*PrimMetrics
	Root   machine.Stats // the root span's delta (total run cost)
}

// Collect walks a finished span tree and aggregates per-name metrics.
// Each span contributes its Self() cost to its own name's Total, so the
// Totals sum to the root's delta without double counting (nested
// primitives — a sort's merge levels, say — attribute only their own
// share), while the histogram records full per-call Delta times.
func Collect(root *Span) *Metrics {
	ms := &Metrics{ByName: map[string]*PrimMetrics{}, Root: root.Delta()}
	root.Walk(func(s *Span, depth int) {
		pm := ms.ByName[s.Name]
		if pm == nil {
			pm = &PrimMetrics{Name: s.Name}
			ms.ByName[s.Name] = pm
		}
		pm.Calls++
		pm.Total = pm.Total.Add(s.Self())
		pm.Times.Observe(s.Delta().Time())
		for _, ri := range s.Rounds {
			switch ri.Kind {
			case machine.RoundRetry:
				pm.Retries++
			case machine.RoundRecovery:
				pm.Recoveries++
			}
		}
	})
	return ms
}

// Write renders the snapshot as a table sorted by descending self time.
func (ms *Metrics) Write(w io.Writer) {
	names := make([]string, 0, len(ms.ByName))
	for n := range ms.ByName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := ms.ByName[names[i]], ms.ByName[names[j]]
		if a.Total.Time() != b.Total.Time() {
			return a.Total.Time() > b.Total.Time()
		}
		return a.Name < b.Name
	})
	nameW := len("primitive")
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	total := ms.Root.Time()
	fmt.Fprintf(w, "%-*s %6s %10s %7s %10s %10s %8s  %s\n",
		nameW, "primitive", "calls", "selftime", "%", "comm", "msgs", "rounds", "time histogram")
	for _, n := range names {
		pm := ms.ByName[n]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(pm.Total.Time()) / float64(total)
		}
		faults := ""
		if pm.Retries > 0 || pm.Recoveries > 0 {
			faults = fmt.Sprintf("  [retries=%d recoveries=%d]", pm.Retries, pm.Recoveries)
		}
		fmt.Fprintf(w, "%-*s %6d %10d %6.1f%% %10d %10d %8d  %s%s\n",
			nameW, pm.Name, pm.Calls, pm.Total.Time(), pct,
			pm.Total.CommSteps, pm.Total.Messages, pm.Total.Rounds, pm.Times.String(), faults)
	}
	fmt.Fprintf(w, "%-*s %6s %10d %6.1f%% %10d %10d %8d\n",
		nameW, "total", "", total, 100.0, ms.Root.CommSteps, ms.Root.Messages, ms.Root.Rounds)
}
