package trace

// Chrome trace-event export: the span tree rendered as a
// chrome://tracing- (and Perfetto-) loadable JSON timeline over
// *simulated* time. One simulated step is emitted as one microsecond, so
// the trace viewer's time axis reads directly in the paper's cost units.

import (
	"encoding/json"
	"io"

	"dyncg/internal/machine"
)

// ChromeEvent is one entry of the trace-event JSON array. Only the
// subset of the format the exporter emits is modelled; the struct is
// exported so tests (and external tooling) can round-trip the output.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`  // "X" complete, "M" metadata
	Ts   int64          `json:"ts"`  // simulated time, as µs
	Dur  int64          `json:"dur"` // simulated duration, as µs
	Pid  int            `json:"pid"` // one process per trace
	Tid  int            `json:"tid"` // one thread per PE-group (machine)
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeEvents flattens a finished span tree into trace events. The
// machine m supplies process/thread naming (topology and PE count); tid
// selects the thread lane, letting callers lay several machines'
// timelines side by side in one trace.
func ChromeEvents(root *Span, m *machine.M, tid int) []ChromeEvent {
	events := []ChromeEvent{
		{
			Name: "process_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": "simulated SIMD machine"},
		},
		{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": m.Topology().Name()},
		},
	}
	root.Walk(func(s *Span, depth int) {
		d := s.Delta()
		args := map[string]any{
			"comm":   d.CommSteps,
			"local":  d.LocalSteps,
			"rounds": d.Rounds,
			"msgs":   d.Messages,
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		if len(s.Rounds) > 0 {
			args["recorded_rounds"] = len(s.Rounds)
		}
		events = append(events, ChromeEvent{
			Name: s.Name,
			Cat:  category(depth),
			Ph:   "X",
			Ts:   s.Begin.Time(),
			Dur:  d.Time(),
			Pid:  0,
			Tid:  tid,
		})
		events[len(events)-1].Args = args
	})
	return events
}

func category(depth int) string {
	if depth == 0 {
		return "algorithm"
	}
	return "primitive"
}

// WriteChrome writes the span tree as a complete Chrome trace-event JSON
// document to w.
func WriteChrome(w io.Writer, root *Span, m *machine.M) error {
	return WriteChromeMulti(w, []*Span{root}, []*machine.M{m})
}

// WriteChromeMulti writes several machines' span trees into one trace,
// one thread lane per machine — e.g. the mesh and hypercube runs of the
// same algorithm side by side.
func WriteChromeMulti(w io.Writer, roots []*Span, ms []*machine.M) error {
	var all []ChromeEvent
	for i, root := range roots {
		all = append(all, ChromeEvents(root, ms[i], i+1)...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ChromeTrace{TraceEvents: all, DisplayTimeUnit: "ms"})
}
