// Package trace is the observability subsystem of the simulator: a
// zero-dependency hierarchical span tracer and metrics registry for the
// simulated SIMD machines of internal/machine.
//
// The quantity being traced is *simulated parallel time* (machine.Stats
// — the paper's Θ-bound currency), not wall-clock time: a span records
// the machine's counters at Begin and End, so its cost is an exact
// Stats delta, and the span tree attributes every simulated step to the
// primitive (sort, merge, prefix, …) and algorithm phase (Lemma 3.1
// merge level, Theorem 3.2 halving, a §4/§5 theorem) that charged it.
//
// Usage:
//
//	m := core.CubeOf(n)
//	tr := trace.Attach(m, "closest")         // tr observes every charge
//	core.ClosestPointSequence(m, sys, 0)
//	root := tr.Finish()                      // detaches, closes open spans
//	trace.WriteCostTree(os.Stdout, root, 0)  // per-phase % breakdown
//	trace.WriteChrome(f, root, m)            // chrome://tracing timeline
//	trace.Collect(root).Write(os.Stdout)     // per-primitive aggregates
//
// Tracing is opt-in and near-free when disabled: the machine's hooks are
// nil checks (benchmarked by BenchmarkObserverOverhead; the measured
// disabled overhead is recorded in EXPERIMENTS.md).
package trace

import (
	"strconv"

	"dyncg/internal/machine"
)

// Attr is one span attribute (a key/value string pair).
type Attr struct {
	Key, Val string
}

// Span is one node of the attribution tree: a named scope whose cost is
// the difference between the machine's counters at End and at Begin.
type Span struct {
	Name     string
	Attrs    []Attr
	Begin    machine.Stats // counter snapshot when the span opened
	End      machine.Stats // counter snapshot when the span closed
	Children []*Span
	// Rounds holds the individual cost events charged directly inside
	// this span (not inside a child), when round recording is enabled.
	Rounds []machine.RoundInfo

	parent *Span
}

// Delta returns the span's total cost: everything charged between Begin
// and End, children included.
func (s *Span) Delta() machine.Stats { return s.End.Sub(s.Begin) }

// Self returns the span's own cost: Delta minus the children's deltas —
// the cost charged directly in this scope.
func (s *Span) Self() machine.Stats {
	d := s.Delta()
	for _, c := range s.Children {
		d = d.Sub(c.Delta())
	}
	return d
}

// Attr returns the value of the named attribute, or "".
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Walk visits the span and all descendants in depth-first pre-order.
func (s *Span) Walk(f func(s *Span, depth int)) { s.walk(f, 0) }

func (s *Span) walk(f func(s *Span, depth int), depth int) {
	f(s, depth)
	for _, c := range s.Children {
		c.walk(f, depth+1)
	}
}

// Tracer implements machine.Observer: it maintains the span stack,
// snapshotting the machine's counters at every span boundary. A Tracer
// is single-goroutine, like the machine it observes.
type Tracer struct {
	m            *machine.M
	root         *Span
	cur          *Span
	recordRounds bool
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithRounds records every individual charged round into its enclosing
// span (Span.Rounds). Off by default: round lists are large (a full sort
// charges Θ(log² n) rounds) and the per-span Stats deltas already carry
// the aggregate cost.
func WithRounds() Option { return func(t *Tracer) { t.recordRounds = true } }

// Attach creates a Tracer, opens its root span, and installs it as m's
// observer. The machine's counters need not be zero, but for the root
// span's total to equal m.Stats().Time() exactly — the invariant the
// cost tree reports against — attach to a machine whose counters are
// fresh (see machine.M.Reset).
func Attach(m *machine.M, rootName string, opts ...Option) *Tracer {
	t := &Tracer{m: m}
	for _, o := range opts {
		o(t)
	}
	t.root = &Span{
		Name:  rootName,
		Begin: m.Stats(),
		Attrs: []Attr{
			{Key: "machine", Val: m.Topology().Name()},
			{Key: "pes", Val: strconv.Itoa(m.Size())},
		},
	}
	t.cur = t.root
	m.SetObserver(t)
	return t
}

// SpanBegin implements machine.Observer.
func (t *Tracer) SpanBegin(name string, kv []string) {
	s := &Span{Name: name, Begin: t.m.Stats(), parent: t.cur}
	if len(kv) >= 2 {
		s.Attrs = make([]Attr, 0, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			s.Attrs = append(s.Attrs, Attr{Key: kv[i], Val: kv[i+1]})
		}
	}
	t.cur.Children = append(t.cur.Children, s)
	t.cur = s
}

// SpanEnd implements machine.Observer.
func (t *Tracer) SpanEnd() {
	if t.cur == t.root {
		return // unmatched End; keep the root open until Finish
	}
	t.cur.End = t.m.Stats()
	t.cur = t.cur.parent
}

// Round implements machine.Observer.
func (t *Tracer) Round(ri machine.RoundInfo) {
	if t.recordRounds {
		t.cur.Rounds = append(t.cur.Rounds, ri)
	}
}

// Begin opens an application-level span directly on the tracer —
// equivalent to m.SpanBegin for callers that hold the Tracer.
func (t *Tracer) Begin(name string, attrs ...Attr) {
	kv := make([]string, 0, 2*len(attrs))
	for _, a := range attrs {
		kv = append(kv, a.Key, a.Val)
	}
	t.SpanBegin(name, kv)
}

// End closes the innermost span opened by Begin/SpanBegin.
func (t *Tracer) End() { t.SpanEnd() }

// Finish closes every open span (including the root), detaches the
// tracer from the machine, and returns the root of the span tree. The
// tracer can be re-Attached afterwards only via a new Attach call.
func (t *Tracer) Finish() *Span {
	end := t.m.Stats()
	for t.cur != t.root {
		t.cur.End = end
		t.cur = t.cur.parent
	}
	t.root.End = end
	if t.m.Observer() == machine.Observer(t) {
		t.m.SetObserver(nil)
	}
	return t.root
}

// Root returns the (possibly still-open) root span.
func (t *Tracer) Root() *Span { return t.root }
