package trace

// Plain-text cost-breakdown tree: the span tree with, per span, its
// total simulated time, its share of the root's total, and its self time
// (cost charged in the span but in none of its children). This is the
// report every perf PR quotes: the root's total equals
// machine.Stats.Time() exactly (same counters, same deltas), so "where
// did the Θ-bound's constant go" decomposes without residue.

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// WriteCostTree renders the finished span tree to w. maxDepth limits the
// rendered depth (0 = unlimited); sibling spans with equal name and
// attributes are coalesced into one line with a ×count marker, keeping
// deep traces (a sort emits one merge span per level) readable.
func WriteCostTree(w io.Writer, root *Span, maxDepth int) {
	total := root.Delta().Time()
	fmt.Fprintf(w, "cost tree (simulated time; root total = %d)\n", total)
	writeNode(w, root, "", "", total, maxDepth, 1, 0)
}

func writeNode(w io.Writer, s *Span, selfPrefix, childPrefix string, total int64, maxDepth, count, depth int) {
	d := s.Delta()
	pct := 100.0
	if total > 0 {
		pct = 100 * float64(count) * float64(d.Time()) / float64(total)
	}
	label := s.Name
	if attrs := attrString(s); attrs != "" {
		label += "[" + attrs + "]"
	}
	if count > 1 {
		label += fmt.Sprintf(" ×%d", count)
	}
	self := s.Self()
	// The box-drawing prefix is multi-byte UTF-8: pad by rune count so
	// the numeric columns line up across depths.
	fmt.Fprintf(w, "%s%-*s %8d %6.1f%%  self=%-6d comm=%-6d local=%-6d rounds=%-5d msgs=%d\n",
		selfPrefix, 44-utf8.RuneCountInString(selfPrefix), label,
		int64(count)*d.Time(), pct,
		int64(count)*self.Time(), int64(count)*d.CommSteps, int64(count)*d.LocalSteps,
		int64(count)*d.Rounds, int64(count)*d.Messages)
	if maxDepth > 0 && depth+1 >= maxDepth {
		return
	}
	groups := coalesce(s.Children)
	for i, g := range groups {
		last := i == len(groups)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		writeNode(w, g.span, childPrefix+branch, childPrefix+cont, total, maxDepth, g.count, depth+1)
	}
}

type spanGroup struct {
	span  *Span
	count int
}

// coalesce groups consecutive siblings that have the same name,
// attributes, and per-span cost, so repeated identical phases (the ≤
// maxEmit route rounds of a merge level, say) print once with a count.
func coalesce(children []*Span) []spanGroup {
	var out []spanGroup
	for _, c := range children {
		if n := len(out); n > 0 && sameShape(out[n-1].span, c) {
			out[n-1].count++
			continue
		}
		out = append(out, spanGroup{span: c, count: 1})
	}
	return out
}

func sameShape(a, b *Span) bool {
	if a.Name != b.Name || len(a.Children) != 0 || len(b.Children) != 0 {
		return false
	}
	if attrString(a) != attrString(b) {
		return false
	}
	return a.Delta() == b.Delta()
}

func attrString(s *Span) string {
	var parts []string
	for _, a := range s.Attrs {
		parts = append(parts, a.Key+"="+a.Val)
	}
	return strings.Join(parts, " ")
}
