package trace_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/trace"
)

func sortedInts(n int, r *rand.Rand) []machine.Reg[int] {
	vals := make([]int, n)
	for i := range vals {
		vals[i] = r.Intn(1 << 20)
	}
	return machine.Scatter(n, vals)
}

func TestSpanTreeMatchesMachineStats(t *testing.T) {
	for _, topo := range []machine.Topology{
		mesh.MustNew(64, mesh.Proximity), hypercube.MustNew(64),
	} {
		m := machine.New(topo)
		tr := trace.Attach(m, "root")
		r := rand.New(rand.NewSource(1))

		tr.Begin("phase-a")
		regs := sortedInts(64, r)
		machine.Sort(m, regs, func(a, b int) bool { return a < b })
		tr.End()
		tr.Begin("phase-b")
		machine.Scan(m, regs, machine.WholeMachine(64), machine.Forward,
			func(a, b int) int { return a + b })
		tr.End()

		root := tr.Finish()
		if got, want := root.Delta().Time(), m.Stats().Time(); got != want {
			t.Fatalf("%s: root delta time %d != machine time %d", topo.Name(), got, want)
		}
		if got, want := root.Delta(), m.Stats(); got != want {
			t.Fatalf("%s: root delta %+v != machine stats %+v", topo.Name(), got, want)
		}
		if len(root.Children) != 2 {
			t.Fatalf("want 2 phases, got %d", len(root.Children))
		}
		a, b := root.Children[0], root.Children[1]
		if a.Name != "phase-a" || b.Name != "phase-b" {
			t.Fatalf("unexpected child names %q %q", a.Name, b.Name)
		}
		// The sort phase must contain the machine-level sort span, which
		// in turn contains one merge span per bitonic level.
		if len(a.Children) != 1 || a.Children[0].Name != "sort" {
			t.Fatalf("phase-a children: %+v", a.Children)
		}
		if got := len(a.Children[0].Children); got != 6 { // log2(64) merge levels
			t.Fatalf("want 6 merge levels under sort, got %d", got)
		}
		// Deltas are consistent: parent delta = sum of children + self.
		root.Walk(func(s *trace.Span, depth int) {
			sum := s.Self()
			for _, c := range s.Children {
				sum = sum.Add(c.Delta())
			}
			if sum != s.Delta() {
				t.Fatalf("span %s: self+children %+v != delta %+v", s.Name, sum, s.Delta())
			}
		})
		// The machine must be detached after Finish.
		if m.Observed() {
			t.Fatal("machine still observed after Finish")
		}
	}
}

func TestAttrsAndRoundRecording(t *testing.T) {
	m := machine.New(hypercube.MustNew(16))
	tr := trace.Attach(m, "root", trace.WithRounds())
	regs := sortedInts(16, rand.New(rand.NewSource(2)))
	machine.Scan(m, regs, machine.WholeMachine(16), machine.Forward,
		func(a, b int) int { return a + b })
	root := tr.Finish()
	if root.Attr("machine") != m.Topology().Name() || root.Attr("pes") != "16" {
		t.Fatalf("root attrs: %+v", root.Attrs)
	}
	scan := root.Children[0]
	if scan.Name != "prefix" || scan.Attr("n") != "16" {
		t.Fatalf("scan span: %+v", scan)
	}
	if len(scan.Rounds) != 4 { // log2(16) shift rounds
		t.Fatalf("want 4 recorded rounds, got %d", len(scan.Rounds))
	}
	for _, ri := range scan.Rounds {
		if ri.Kind != machine.RoundShift {
			t.Fatalf("unexpected round kind %v", ri.Kind)
		}
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	m := machine.New(hypercube.MustNew(8))
	tr := trace.Attach(m, "root")
	tr.Begin("left-open")
	tr.Begin("nested")
	m.ChargeLocal(3)
	root := tr.Finish()
	if root.End.LocalSteps != 3 {
		t.Fatalf("root end snapshot %+v", root.End)
	}
	open := root.Children[0]
	if open.End != root.End || open.Children[0].End != root.End {
		t.Fatal("open spans not closed by Finish")
	}
	// Unmatched End must not pop past the root.
	tr2 := trace.Attach(m, "root2")
	tr2.End()
	tr2.End()
	tr2.Begin("child")
	tr2.End()
	root2 := tr2.Finish()
	if len(root2.Children) != 1 || root2.Children[0].Name != "child" {
		t.Fatalf("root2 children: %+v", root2.Children)
	}
}

func TestChromeExportRoundTrips(t *testing.T) {
	m := machine.New(mesh.MustNew(64, mesh.Proximity))
	tr := trace.Attach(m, "sort-run")
	regs := sortedInts(64, rand.New(rand.NewSource(3)))
	machine.Sort(m, regs, func(a, b int) bool { return a < b })
	root := tr.Finish()

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, root, m); err != nil {
		t.Fatal(err)
	}
	var doc trace.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome JSON does not round-trip: %v", err)
	}
	var complete, meta int
	var rootEv *trace.ChromeEvent
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur < 0 || ev.Name == "" {
				t.Fatalf("malformed event %+v", ev)
			}
			if ev.Name == "sort-run" {
				rootEv = &doc.TraceEvents[i]
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 {
		t.Fatalf("want 2 metadata events, got %d", meta)
	}
	if complete < 8 { // root + sort + 6 merge levels
		t.Fatalf("want ≥8 complete events, got %d", complete)
	}
	if rootEv == nil || rootEv.Dur != m.Stats().Time() {
		t.Fatalf("root event %+v; want dur %d", rootEv, m.Stats().Time())
	}
}

func TestCostTreeRootEqualsMachineTime(t *testing.T) {
	m := machine.New(hypercube.MustNew(64))
	tr := trace.Attach(m, "run")
	regs := sortedInts(64, rand.New(rand.NewSource(4)))
	machine.Sort(m, regs, func(a, b int) bool { return a < b })
	machine.Spread(m, regs, machine.WholeMachine(64))
	root := tr.Finish()

	var buf bytes.Buffer
	trace.WriteCostTree(&buf, root, 0)
	out := buf.String()
	want := "root total = " + itoa64(m.Stats().Time())
	if !strings.Contains(out, want) {
		t.Fatalf("cost tree missing %q:\n%s", want, out)
	}
	for _, name := range []string{"run", "sort", "merge", "broadcast", "prefix", "100.0%"} {
		if !strings.Contains(out, name) {
			t.Fatalf("cost tree missing %q:\n%s", name, out)
		}
	}
	// Depth-limited rendering hides the merge levels.
	buf.Reset()
	trace.WriteCostTree(&buf, root, 2)
	if strings.Contains(buf.String(), "merge") {
		t.Fatalf("depth-2 tree should not contain merge levels:\n%s", buf.String())
	}
}

func TestCollectMetrics(t *testing.T) {
	m := machine.New(hypercube.MustNew(64))
	tr := trace.Attach(m, "run")
	regs := sortedInts(64, rand.New(rand.NewSource(5)))
	machine.Sort(m, regs, func(a, b int) bool { return a < b })
	machine.Semigroup(m, regs, machine.WholeMachine(64), func(a, b int) int { return a + b })
	root := tr.Finish()

	ms := trace.Collect(root)
	if ms.Root != m.Stats() {
		t.Fatalf("metrics root %+v != stats %+v", ms.Root, m.Stats())
	}
	// Self-times partition the total exactly.
	var sum int64
	for _, pm := range ms.ByName {
		sum += pm.Total.Time()
	}
	if sum != ms.Root.Time() {
		t.Fatalf("self-times sum %d != total %d", sum, ms.Root.Time())
	}
	if ms.ByName["merge"] == nil || ms.ByName["merge"].Calls != 6 {
		t.Fatalf("merge metrics: %+v", ms.ByName["merge"])
	}
	if ms.ByName["semigroup"] == nil || ms.ByName["prefix"] == nil {
		t.Fatalf("missing primitives: %v", ms.ByName)
	}
	var buf bytes.Buffer
	ms.Write(&buf)
	if !strings.Contains(buf.String(), "merge") || !strings.Contains(buf.String(), "total") {
		t.Fatalf("metrics table:\n%s", buf.String())
	}
}

func TestHistBuckets(t *testing.T) {
	var h trace.Hist
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 2 || h.Counts[3] != 1 || h.Counts[10] != 1 {
		t.Fatalf("hist %v", h.Counts)
	}
	if s := h.String(); !strings.Contains(s, "[512,1024):1") {
		t.Fatalf("hist string %q", s)
	}
}

func itoa64(v int64) string { return strconv.FormatInt(v, 10) }

// BenchmarkObserverOverhead measures the cost of the observer hooks on
// the hot path: a full bitonic sort on 4096 PEs with tracing disabled
// (the nil-check fast path — the default for every caller that does not
// attach a tracer) vs enabled. The disabled number is what EXPERIMENTS.md
// records against the pre-hook baseline.
func BenchmarkObserverOverhead(b *testing.B) {
	const n = 4096
	r := rand.New(rand.NewSource(6))
	vals := make([]int, n)
	for i := range vals {
		vals[i] = r.Intn(1 << 20)
	}
	run := func(b *testing.B, attach bool) {
		m := machine.New(hypercube.MustNew(n))
		for i := 0; i < b.N; i++ {
			var tr *trace.Tracer
			if attach {
				tr = trace.Attach(m, "bench")
			}
			regs := machine.Scatter(n, vals)
			machine.Sort(m, regs, func(a, b int) bool { return a < b })
			if attach {
				tr.Finish()
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}
