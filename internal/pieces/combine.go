package pieces

import (
	"math"
	"sort"
)

// CombineWindows is the serial counterpart of the machine algorithm's
// generalised Lemma 3.1 pass (penvelope.Combine2): it slices the time
// axis into the elementary windows delimited by the left endpoints of
// the pieces of f and g, hands the window combiner the (≤ 1 per side)
// active pieces clipped to each window, and concatenates the results
// with adjacent same-function runs compacted.
//
// It exists as the Θ(m)-work serial baseline and as the reference
// implementation the parallel version is property-tested against.
func CombineWindows(f, g Piecewise, window func(fw, gw Piecewise) Piecewise) Piecewise {
	type tagged struct {
		p    Piece
		side int
	}
	all := make([]tagged, 0, len(f)+len(g))
	for _, p := range f {
		all = append(all, tagged{p: p, side: 0})
	}
	for _, p := range g {
		all = append(all, tagged{p: p, side: 1})
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p.Lo != all[j].p.Lo {
			return all[i].p.Lo < all[j].p.Lo
		}
		if all[i].side != all[j].side {
			return all[i].side < all[j].side
		}
		return all[i].p.ID < all[j].p.ID
	})
	var out Piecewise
	var lastF, lastG *Piece
	for i := range all {
		if all[i].side == 0 {
			lastF = &all[i].p
		} else {
			lastG = &all[i].p
		}
		w0 := all[i].p.Lo
		w1 := math.Inf(1)
		if i+1 < len(all) {
			w1 = all[i+1].p.Lo
		}
		if !(w0 < w1) {
			continue
		}
		var fw, gw Piecewise
		if lastF != nil {
			fw = clipPiece(*lastF, w0, w1)
		}
		if lastG != nil {
			gw = clipPiece(*lastG, w0, w1)
		}
		out = append(out, window(fw, gw)...)
	}
	return out.Compact()
}

// clipPiece restricts a piece to [w0, w1), returning at most one piece.
func clipPiece(p Piece, w0, w1 float64) Piecewise {
	lo := math.Max(p.Lo, w0)
	hi := math.Min(p.Hi, w1)
	if !(lo < hi) {
		return nil
	}
	return Piecewise{{F: p.F, ID: p.ID, Lo: lo, Hi: hi}}
}
