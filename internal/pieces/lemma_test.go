package pieces

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/poly"
)

// randPiecewiseTotal builds a total piecewise function of degree ≤ deg
// with the given number of pieces (distinct polynomials on consecutive
// intervals).
func randPiecewiseTotal(r *rand.Rand, npieces, deg, idBase int) Piecewise {
	var pw Piecewise
	lo := 0.0
	for i := 0; i < npieces; i++ {
		hi := lo + 0.5 + r.Float64()*2
		if i == npieces-1 {
			hi = math.Inf(1)
		}
		c := make([]float64, deg+1)
		for j := range c {
			c[j] = r.NormFloat64() * 3
		}
		pw = append(pw, Piece{
			F:  curve.NewPoly(poly.New(c...)),
			ID: idBase + i,
			Lo: lo,
			Hi: hi,
		})
		lo = hi
	}
	return pw
}

// countNondegenerateIntersections counts piece-interval pairs of f and g
// whose intervals overlap in more than a point.
func countNondegenerateIntersections(f, g Piecewise) int {
	count := 0
	for _, p := range f {
		for _, q := range g {
			lo := math.Max(p.Lo, q.Lo)
			hi := math.Min(p.Hi, q.Hi)
			if lo < hi {
				count++
			}
		}
	}
	return count
}

// TestLemma25IntersectionBound: the pieces of f and g have at most
// m + n nondegenerate intersections.
func TestLemma25IntersectionBound(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.Intn(8)
		n := 1 + r.Intn(8)
		f := randPiecewiseTotal(r, m, 2, 0)
		g := randPiecewiseTotal(r, n, 2, 100)
		if got := countNondegenerateIntersections(f, g); got > m+n {
			t.Fatalf("trial %d: %d nondegenerate intersections > m+n = %d",
				trial, got, m+n)
		}
	}
}

// TestLemma26PieceBound: min{f, g} has at most p(s+1) pieces, where p is
// the number of nondegenerate piece intersections and s bounds the
// pairwise polynomial intersections (degree here).
func TestLemma26PieceBound(t *testing.T) {
	r := rand.New(rand.NewSource(152))
	for trial := 0; trial < 200; trial++ {
		s := 1 + r.Intn(3)
		f := randPiecewiseTotal(r, 1+r.Intn(6), s, 0)
		g := randPiecewiseTotal(r, 1+r.Intn(6), s, 100)
		p := countNondegenerateIntersections(f, g)
		merged := Merge(f, g, Min)
		if err := merged.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(merged) > p*(s+1) {
			t.Fatalf("trial %d: min has %d pieces > p(s+1) = %d·%d",
				trial, len(merged), p, s+1)
		}
		// And the merge is pointwise correct.
		for k := 0; k < 25; k++ {
			tm := float64(k)*0.41 + 0.007
			fv, _ := f.Eval(tm)
			gv, _ := g.Eval(tm)
			want := math.Min(fv, gv)
			got, ok := merged.Eval(tm)
			if !ok || math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d: min(%v) = %v, want %v", trial, tm, got, want)
			}
		}
	}
}

// TestLemma33PartialPieceBound: for partial functions with at most k
// jumps/transitions each, the envelope piece count respects λ(n, s+2k)
// (checked against the dsseq bound indirectly via the total-coverage
// envelope machinery; here we check the envelope stays small and valid).
func TestLemma33PartialEnvelopeValid(t *testing.T) {
	r := rand.New(rand.NewSource(153))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(6)
		fs := make([]Piecewise, n)
		for i := range fs {
			// One transition: defined on [a, b] only (k = 1).
			a := r.Float64() * 2
			b := a + 1 + r.Float64()*3
			fs[i] = OnIntervals(curve.NewPoly(poly.New(r.NormFloat64()*3, r.NormFloat64())), i,
				[][2]float64{{a, b}})
		}
		env := Envelope(fs, Min)
		if err := env.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// λ(n, 1+2·1) bound with a safety factor (the exact constant is
		// the point of Lemma 3.3; we check no blow-up).
		if len(env) > 3*n+2 {
			t.Fatalf("trial %d: %d pieces for %d one-interval lines", trial, len(env), n)
		}
	}
}
