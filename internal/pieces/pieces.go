// Package pieces implements piecewise-defined functions of time and the
// serial construction of minimum/maximum functions (lower/upper
// envelopes).
//
// A "piece" is exactly the paper's notion (§2.5): a description of a
// function together with a maximal interval on which it realises the
// envelope. Piecewise functions may be partial — defined only on a union
// of intervals — which is what §3's jump discontinuities and transitions
// (Figure 5, Lemma 3.3, Theorem 3.4) require.
//
// The serial algorithms here serve three roles: the reference
// implementation that the parallel machine algorithms (internal/penvelope)
// are validated against, the serial baseline in the spirit of
// [Atallah 1985], and the local Θ(1)-sized sub-steps executed inside
// individual PEs by Lemma 3.1's algorithm.
package pieces

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dyncg/internal/curve"
)

// Piece is one piece of a piecewise function: F restricted to [Lo, Hi].
// Hi may be +Inf. ID records which input function generated the piece
// (the paper's pieces carry "a description of some f_i"; the ID is i).
type Piece struct {
	F      curve.Curve
	ID     int
	Lo, Hi float64
}

// Len returns the length of the piece's interval (possibly +Inf).
func (p Piece) Len() float64 { return p.Hi - p.Lo }

// Contains reports whether t lies in [Lo, Hi].
func (p Piece) Contains(t float64) bool { return t >= p.Lo && t <= p.Hi }

// interior returns a point in the interior of [lo, hi] suitable for
// sampling which of two non-crossing functions is smaller there.
func interior(lo, hi float64) float64 {
	if math.IsInf(hi, 1) {
		return lo + 1
	}
	return 0.5 * (lo + hi)
}

func (p Piece) String() string {
	hi := "∞"
	if !math.IsInf(p.Hi, 1) {
		hi = fmt.Sprintf("%.6g", p.Hi)
	}
	return fmt.Sprintf("(%v, id=%d, [%.6g, %s])", p.F, p.ID, p.Lo, hi)
}

// Piecewise is an ordered list of pieces with pairwise-disjoint interiors.
// Gaps between consecutive pieces are allowed and mean "undefined there"
// (partial functions, Theorem 3.4). The zero value is the everywhere-
// undefined function.
type Piecewise []Piece

// Total returns the piecewise function equal to c on all of [0, ∞).
func Total(c curve.Curve, id int) Piecewise {
	return Piecewise{{F: c, ID: id, Lo: 0, Hi: math.Inf(1)}}
}

// OnIntervals returns c restricted to the given [lo, hi] intervals, which
// must be sorted and disjoint.
func OnIntervals(c curve.Curve, id int, intervals [][2]float64) Piecewise {
	var pw Piecewise
	for _, iv := range intervals {
		if iv[1] > iv[0] {
			pw = append(pw, Piece{F: c, ID: id, Lo: iv[0], Hi: iv[1]})
		}
	}
	return pw
}

// Validate checks the structural invariants: ordering, nondegenerate
// intervals, disjoint interiors.
func (pw Piecewise) Validate() error {
	for i, p := range pw {
		if !(p.Lo < p.Hi) {
			return fmt.Errorf("piece %d has degenerate interval [%v, %v]", i, p.Lo, p.Hi)
		}
		if p.F == nil {
			return fmt.Errorf("piece %d has nil curve", i)
		}
		if i > 0 && p.Lo < pw[i-1].Hi {
			return fmt.Errorf("piece %d starts at %v before previous ends at %v",
				i, p.Lo, pw[i-1].Hi)
		}
	}
	return nil
}

// find returns the index of the piece whose interval contains t, or -1.
func (pw Piecewise) find(t float64) int {
	i := sort.Search(len(pw), func(i int) bool { return pw[i].Hi >= t })
	if i < len(pw) && pw[i].Contains(t) {
		return i
	}
	return -1
}

// Eval evaluates the piecewise function; ok is false where undefined.
func (pw Piecewise) Eval(t float64) (v float64, ok bool) {
	if i := pw.find(t); i >= 0 {
		return pw[i].F.Eval(t), true
	}
	return 0, false
}

// PieceAt returns the piece containing t, if any.
func (pw Piecewise) PieceAt(t float64) (Piece, bool) {
	if i := pw.find(t); i >= 0 {
		return pw[i], true
	}
	return Piece{}, false
}

// Defined reports whether the function is defined at t.
func (pw Piecewise) Defined(t float64) bool { return pw.find(t) >= 0 }

// Compact merges maximal runs of adjacent pieces that carry the same
// function, implementing Step 6 of Lemma 3.1's algorithm: pieces
// (F, [a,b]) and (F, [b,c]) combine to (F, [a,c]).
func (pw Piecewise) Compact() Piecewise {
	if len(pw) == 0 {
		return pw
	}
	out := make(Piecewise, 0, len(pw))
	cur := pw[0]
	for _, p := range pw[1:] {
		if p.Lo == cur.Hi && p.ID == cur.ID && sameCurve(p.F, cur.F) {
			cur.Hi = p.Hi
			continue
		}
		out = append(out, cur)
		cur = p
	}
	return append(out, cur)
}

// sameCurve reports whether two curves are the same function.
func sameCurve(a, b curve.Curve) bool {
	defer func() { recover() }() // mixed families are never the same
	_, ident := a.Intersections(b, 0, math.Inf(1))
	return ident
}

// Kind selects the envelope direction.
type Kind int

// Envelope kinds.
const (
	Min Kind = iota // lower envelope, h(t) = min f_i(t)  (Equation 1)
	Max             // upper envelope
)

// Merge computes the pointwise min (or max) of two piecewise functions,
// defined wherever at least one operand is defined — the serial
// counterpart of Lemma 3.1's six-step machine algorithm. Its cost is
// O(m + I) where m is the total piece count and I the number of
// intersections, each piece pair contributing at most s intersections.
func Merge(f, g Piecewise, kind Kind) Piecewise {
	if len(f) == 0 {
		return append(Piecewise(nil), g...)
	}
	if len(g) == 0 {
		return append(Piecewise(nil), f...)
	}
	cuts := breakpoints(f, g)
	out := make(Piecewise, 0, len(cuts))
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if !(lo < hi) {
			continue
		}
		t := interior(lo, hi)
		fi, gi := f.find(t), g.find(t)
		var chosen Piece
		switch {
		case fi < 0 && gi < 0:
			continue
		case fi < 0:
			chosen = g[gi]
		case gi < 0:
			chosen = f[fi]
		default:
			chosen = choose(f[fi], g[gi], t, kind)
		}
		out = append(out, Piece{F: chosen.F, ID: chosen.ID, Lo: lo, Hi: hi})
	}
	return out.Compact()
}

// choose picks the piece that realises the envelope at sample time t,
// breaking exact ties (identical functions) toward the smaller ID so the
// result is deterministic.
func choose(a, b Piece, t float64, kind Kind) Piece {
	if sameCurve(a.F, b.F) {
		if b.ID < a.ID {
			return b
		}
		return a
	}
	av, bv := a.F.Eval(t), b.F.Eval(t)
	aWins := av <= bv
	if kind == Max {
		aWins = av >= bv
	}
	if aWins {
		return a
	}
	return b
}

// breakpoints returns the sorted, deduplicated set of elementary-interval
// boundaries for merging f and g: all piece endpoints plus all
// intersection times of overlapping piece pairs (the subpiece boundaries
// of Lemma 3.1, Step 4).
func breakpoints(f, g Piecewise) []float64 {
	var cuts []float64
	for _, p := range f {
		cuts = append(cuts, p.Lo, p.Hi)
	}
	for _, p := range g {
		cuts = append(cuts, p.Lo, p.Hi)
	}
	// Two-pointer sweep over overlapping pairs; by Lemma 2.5 the pieces of
	// f and g have at most |f| + |g| nondegenerate intersections, so this
	// walk is linear in the output.
	i, j := 0, 0
	for i < len(f) && j < len(g) {
		lo := math.Max(f[i].Lo, g[j].Lo)
		hi := math.Min(f[i].Hi, g[j].Hi)
		if lo < hi {
			times, ident := f[i].F.Intersections(g[j].F, lo, hi)
			if !ident {
				cuts = append(cuts, times...)
			}
		}
		if f[i].Hi < g[j].Hi {
			i++
		} else if g[j].Hi < f[i].Hi {
			j++
		} else {
			i++
			j++
		}
	}
	sort.Float64s(cuts)
	return dedupeCuts(cuts)
}

func dedupeCuts(cuts []float64) []float64 {
	out := cuts[:0]
	for _, c := range cuts {
		// The tolerance is based on the previous cut so that c = +Inf
		// compares against a finite threshold.
		if len(out) == 0 || c-out[len(out)-1] > 1e-12*(1+math.Abs(out[len(out)-1])) {
			out = append(out, c)
		}
	}
	return out
}

// Envelope computes the min (or max) function of the given piecewise
// inputs by balanced divide and conquer — the serial counterpart of
// Theorem 3.2's recursive halving, and the O(λ(n,s) log n) serial
// baseline in the style of [Atallah 1985].
func Envelope(fs []Piecewise, kind Kind) Piecewise {
	switch len(fs) {
	case 0:
		return nil
	case 1:
		return append(Piecewise(nil), fs[0]...)
	}
	mid := len(fs) / 2
	return Merge(Envelope(fs[:mid], kind), Envelope(fs[mid:], kind), kind)
}

// EnvelopeOfCurves computes the envelope of total (everywhere-defined)
// curves; curve i is tagged with ID i. This is Equation (1) of the paper.
func EnvelopeOfCurves(cs []curve.Curve, kind Kind) Piecewise {
	fs := make([]Piecewise, len(cs))
	for i, c := range cs {
		fs[i] = Total(c, i)
	}
	return Envelope(fs, kind)
}

// IDs returns the generating-function IDs of the pieces in order — e.g.
// the sequence R of closest points of Theorem 4.1.
func (pw Piecewise) IDs() []int {
	ids := make([]int, len(pw))
	for i, p := range pw {
		ids[i] = p.ID
	}
	return ids
}

// Gaps returns the maximal intervals of [0, ∞) on which the function is
// undefined.
func (pw Piecewise) Gaps() [][2]float64 {
	var gaps [][2]float64
	prev := 0.0
	for _, p := range pw {
		if p.Lo > prev {
			gaps = append(gaps, [2]float64{prev, p.Lo})
		}
		prev = p.Hi
	}
	if !math.IsInf(prev, 1) {
		gaps = append(gaps, [2]float64{prev, math.Inf(1)})
	}
	return gaps
}

func (pw Piecewise) String() string {
	parts := make([]string, len(pw))
	for i, p := range pw {
		parts[i] = p.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
