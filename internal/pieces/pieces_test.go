package pieces

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/poly"
)

func pc(coefs ...float64) curve.Curve { return curve.NewPoly(poly.New(coefs...)) }

// TestFigure4Example reproduces Figure 4 of the paper: three curves whose
// minimum has pieces (g, [0,a]), (h, [a,b]), (f, [b,∞)).
func TestFigure4Example(t *testing.T) {
	// f decreasing, g increasing, h in between: choose
	// g(t) = t, h(t) = 2, f(t) = 6 − t/2.
	// min is g on [0,2], h on [2,8], f on [8,∞).
	g := pc(0, 1)
	h := pc(2)
	f := pc(6, -0.5)
	env := EnvelopeOfCurves([]curve.Curve{f, g, h}, Min)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	wantIDs := []int{1, 2, 0}
	ids := env.IDs()
	if len(ids) != 3 || ids[0] != wantIDs[0] || ids[1] != wantIDs[1] || ids[2] != wantIDs[2] {
		t.Fatalf("piece IDs = %v, want %v (env=%v)", ids, wantIDs, env)
	}
	if math.Abs(env[0].Hi-2) > 1e-9 || math.Abs(env[1].Hi-8) > 1e-9 {
		t.Fatalf("breakpoints = %v, %v; want 2, 8", env[0].Hi, env[1].Hi)
	}
	if !math.IsInf(env[2].Hi, 1) {
		t.Fatal("last piece must extend to ∞")
	}
}

func TestMergeWithGaps(t *testing.T) {
	// f defined on [0,1] and [3,4]; g defined on [0.5, 3.5].
	f := OnIntervals(pc(1), 0, [][2]float64{{0, 1}, {3, 4}})
	g := OnIntervals(pc(2), 1, [][2]float64{{0.5, 3.5}})
	m := Merge(f, g, Min)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// min: f (=1) on [0,1], g (=2) on [1,3], f on [3,4], undefined after 4.
	if v, ok := m.Eval(0.25); !ok || v != 1 {
		t.Errorf("at 0.25: %v %v", v, ok)
	}
	if v, ok := m.Eval(2); !ok || v != 2 {
		t.Errorf("at 2: %v %v", v, ok)
	}
	if v, ok := m.Eval(3.7); !ok || v != 1 {
		t.Errorf("at 3.7: %v %v", v, ok)
	}
	if m.Defined(5) {
		t.Error("should be undefined at 5")
	}
	gaps := m.Gaps()
	if len(gaps) != 1 || gaps[0][0] != 4 {
		t.Errorf("gaps = %v", gaps)
	}
}

func TestCompactMergesAdjacentSameFunction(t *testing.T) {
	c := pc(1, 1)
	pw := Piecewise{
		{F: c, ID: 3, Lo: 0, Hi: 2},
		{F: c, ID: 3, Lo: 2, Hi: 5},
		{F: c, ID: 3, Lo: 6, Hi: 7}, // gap: not merged
	}
	got := pw.Compact()
	if len(got) != 2 || got[0].Hi != 5 || got[1].Lo != 6 {
		t.Fatalf("Compact = %v", got)
	}
}

func TestEnvelopeMax(t *testing.T) {
	f := pc(0, 1)  // t
	g := pc(4, -1) // 4−t
	env := EnvelopeOfCurves([]curve.Curve{f, g}, Max)
	// max: g on [0,2], f on [2,∞)
	if len(env) != 2 || env[0].ID != 1 || env[1].ID != 0 {
		t.Fatalf("max envelope = %v", env)
	}
	if math.Abs(env[0].Hi-2) > 1e-9 {
		t.Fatalf("crossover = %v, want 2", env[0].Hi)
	}
}

func TestIdenticalCurvesTieBreak(t *testing.T) {
	a := pc(1, 2)
	b := pc(1, 2)
	env := EnvelopeOfCurves([]curve.Curve{b, a}, Min)
	if len(env) != 1 || env[0].ID != 0 {
		t.Fatalf("tie-break envelope = %v", env)
	}
}

func TestLambdaN1Bound(t *testing.T) {
	// Lines (s=1): the envelope of n lines has at most λ(n,1) = n pieces
	// (Theorem 2.3). Exercise with random lines.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(30)
		cs := make([]curve.Curve, n)
		for i := range cs {
			cs[i] = pc(r.NormFloat64()*5, r.NormFloat64()*5)
		}
		env := EnvelopeOfCurves(cs, Min)
		if err := env.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(env) > n {
			t.Fatalf("trial %d: %d lines produced %d pieces > λ(n,1)=n",
				trial, n, len(env))
		}
	}
}

func TestLambdaN2Bound(t *testing.T) {
	// Parabolas (s=2): at most λ(n,2) = 2n−1 pieces (Theorem 2.3).
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(20)
		cs := make([]curve.Curve, n)
		for i := range cs {
			cs[i] = pc(r.NormFloat64()*4, r.NormFloat64()*4, 0.5+r.Float64()*2)
		}
		env := EnvelopeOfCurves(cs, Min)
		if len(env) > 2*n-1 {
			t.Fatalf("trial %d: %d parabolas produced %d pieces > 2n−1",
				trial, n, len(env))
		}
	}
}

// Property: the envelope equals the brute-force pointwise minimum on a
// dense time grid, and its pieces tile [0, ∞) for total inputs.
func TestEnvelopeCorrectnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(12)
		deg := 1 + r.Intn(3)
		cs := make([]curve.Curve, n)
		ps := make([]poly.Poly, n)
		for i := range cs {
			c := make([]float64, deg+1)
			for j := range c {
				c[j] = r.NormFloat64() * 3
			}
			ps[i] = poly.New(c...)
			cs[i] = curve.NewPoly(ps[i])
		}
		env := EnvelopeOfCurves(cs, Min)
		if err := env.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(env) == 0 || env[0].Lo != 0 || !math.IsInf(env[len(env)-1].Hi, 1) {
			t.Fatalf("trial %d: envelope does not cover [0,∞): %v", trial, env)
		}
		for s := 0; s < 60; s++ {
			tm := float64(s) * 0.21
			want := math.Inf(1)
			for _, p := range ps {
				if v := p.Eval(tm); v < want {
					want = v
				}
			}
			got, ok := env.Eval(tm)
			if !ok {
				t.Fatalf("trial %d: envelope undefined at %v", trial, tm)
			}
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d: env(%v) = %v, want %v", trial, tm, got, want)
			}
		}
	}
}

// Property: each piece's function actually is the minimum throughout the
// piece (sampled at several interior points), i.e. pieces are genuine.
func TestPiecesAreGenuineProperty(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(8)
		cs := make([]curve.Curve, n)
		for i := range cs {
			cs[i] = pc(r.NormFloat64()*3, r.NormFloat64()*3, r.NormFloat64())
		}
		env := EnvelopeOfCurves(cs, Min)
		for _, p := range env {
			for _, frac := range []float64{0.25, 0.5, 0.75} {
				var tm float64
				if math.IsInf(p.Hi, 1) {
					tm = p.Lo + frac*10
				} else {
					tm = p.Lo + frac*(p.Hi-p.Lo)
				}
				v := p.F.Eval(tm)
				for j, c := range cs {
					if c.Eval(tm) < v-1e-6*(1+math.Abs(v)) {
						t.Fatalf("trial %d: piece %v beaten by curve %d at t=%v",
							trial, p, j, tm)
					}
				}
			}
		}
	}
}

func TestEnvelopeEmptyAndSingle(t *testing.T) {
	if env := Envelope(nil, Min); env != nil {
		t.Fatalf("empty envelope = %v", env)
	}
	one := Total(pc(3), 7)
	env := Envelope([]Piecewise{one}, Min)
	if len(env) != 1 || env[0].ID != 7 {
		t.Fatalf("single envelope = %v", env)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	bad := Piecewise{
		{F: pc(1), ID: 0, Lo: 0, Hi: 2},
		{F: pc(2), ID: 1, Lo: 1, Hi: 3},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("overlap not caught")
	}
	deg := Piecewise{{F: pc(1), ID: 0, Lo: 2, Hi: 2}}
	if err := deg.Validate(); err == nil {
		t.Fatal("degenerate interval not caught")
	}
}

func TestPieceAt(t *testing.T) {
	env := EnvelopeOfCurves([]curve.Curve{pc(0, 1), pc(4, -1)}, Min)
	p, ok := env.PieceAt(3)
	if !ok || p.ID != 1 {
		t.Fatalf("PieceAt(3) = %v %v", p, ok)
	}
	if _, ok := env.PieceAt(-1); ok {
		t.Fatal("PieceAt(-1) should fail")
	}
}

func TestAngleEnvelope(t *testing.T) {
	// Envelope of two angle curves: a fixed direction π/4 and a rotating
	// direction atan(t) that starts below (0) and ends above (→π/2),
	// crossing at t = 1.
	fixed := curve.NewAngle(poly.Constant(1), poly.Constant(1))
	rot := curve.NewAngle(poly.Constant(1), poly.X())
	env := EnvelopeOfCurves([]curve.Curve{fixed, rot}, Min)
	if len(env) != 2 {
		t.Fatalf("angle envelope = %v", env)
	}
	if env[0].ID != 1 || env[1].ID != 0 {
		t.Fatalf("angle envelope order = %v", env.IDs())
	}
	if math.Abs(env[0].Hi-1) > 1e-9 {
		t.Fatalf("crossover = %v, want 1", env[0].Hi)
	}
}
