package rcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 10)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	got, ok := c.Get("a")
	if !ok || string(got) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	c.Put("a", []byte("alpha-2"))
	got, _ = c.Get("a")
	if string(got) != "alpha-2" {
		t.Fatalf("refresh lost: %q", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if want := int64(len("a") + len("alpha-2")); st.Bytes != want {
		t.Fatalf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestLRUEviction(t *testing.T) {
	// Each entry is 1-byte key + 9-byte value = 10 bytes; bound of 25
	// holds two.
	c := New(25)
	val := func(s string) []byte { return []byte(s + "12345678") }
	c.Put("a", val("a"))
	c.Put("b", val("b"))
	c.Get("a") // a is now most recent
	c.Put("c", val("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be resident")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 25 {
		t.Errorf("bytes = %d exceeds bound 25", st.Bytes)
	}
}

func TestOversizedRejected(t *testing.T) {
	c := New(16)
	c.Put("big", make([]byte, 64))
	if _, ok := c.Get("big"); ok {
		t.Error("oversized entry was cached")
	}
	if st := c.Stats(); st.Entries != 0 || st.Evictions != 0 {
		t.Errorf("oversized Put disturbed the cache: %+v", st)
	}
}

func TestRefreshResize(t *testing.T) {
	c := New(100)
	c.Put("k", make([]byte, 20))
	c.Put("k", make([]byte, 50))
	if st := c.Stats(); st.Bytes != int64(1+50) {
		t.Errorf("bytes after refresh = %d, want %d", st.Bytes, 1+50)
	}
	// Growing a resident entry past the bound must evict others.
	c.Put("x", make([]byte, 40))
	c.Put("k", make([]byte, 90))
	st := c.Stats()
	if st.Bytes > 100 {
		t.Errorf("bytes = %d exceeds bound", st.Bytes)
	}
	if _, ok := c.Get("k"); !ok {
		t.Error("refreshed entry evicted instead of the older one")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache = New(0)
	if c != nil {
		t.Fatal("New(0) should return nil (disabled)")
	}
	c.Put("a", []byte("x")) // must not panic
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache returned a hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestConcurrent(t *testing.T) {
	c := New(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%32)
				if v, ok := c.Get(k); ok && len(v) == 0 {
					t.Error("empty cached value")
				}
				c.Put(k, []byte(k+"-value"))
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 1<<12 {
		t.Errorf("bytes = %d exceeds bound", st.Bytes)
	}
}
