// Package rcache is the serving layer's response cache: a bounded-bytes
// LRU from canonical request hashes (internal/canon) to exact wire
// response bytes. Storing the bytes — not the decoded response — is
// what keeps the replay log honest: a cache hit serves the same bytes
// the original computation wrote, so hash-chained replay records are
// byte-identical whether a response was computed, coalesced, or cached,
// and `dyncgd replay` verifies a cached-serving trace exactly like an
// uncached one.
//
// The bound is in bytes (keys + values), not entries, because response
// sizes span three orders of magnitude (a steady neighbour is ~300
// bytes; a traced 64k-point hull is megabytes). Eviction is strict LRU.
// An entry larger than the whole cache is rejected rather than evicting
// everything for one un-reusable response.
package rcache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      int64 // Get found the key
	Misses    int64 // Get did not find the key
	Evictions int64 // entries removed to make room
	Bytes     int64 // current resident bytes (keys + values)
	Entries   int   // current resident entries
}

type entry struct {
	key string
	val []byte
}

// Cache is a bounded-bytes LRU of wire response bytes, safe for
// concurrent use.
type Cache struct {
	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	ll        *list.List               // front = most recent
	items     map[string]*list.Element // key → element holding *entry
	hits      int64
	misses    int64
	evictions int64
}

// New returns a cache bounded to maxBytes of resident keys + values.
// maxBytes <= 0 returns a nil cache, on which every method is a
// well-defined no-op (Get always misses) — callers can wire "cache
// disabled" without a branch.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key and whether it was present,
// marking the entry most-recently-used. The returned slice is the
// cached backing array: callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put inserts (or refreshes) key → val, evicting least-recently-used
// entries until the byte bound holds. Oversized values (alone bigger
// than the bound) are rejected. The cache keeps a reference to val;
// callers must not modify it after Put.
func (c *Cache) Put(key string, val []byte) {
	if c == nil {
		return
	}
	size := int64(len(key) + len(val))
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += size
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.key) + len(e.val))
		c.evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   c.ll.Len(),
	}
}
