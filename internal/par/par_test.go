package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 7, minShard - 1, minShard, minShard + 1, 4*minShard + 3} {
			hits := make([]int32, n)
			ForEach(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad shard [%d, %d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestReduceOrderedCombine(t *testing.T) {
	// A deliberately non-commutative combine (list append order) must see
	// shards in ascending index order regardless of worker count.
	n := 10 * minShard
	want := Reduce(1, n, []int(nil), func(lo, hi int) []int {
		out := []int{}
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}, func(acc, part []int) []int { return append(acc, part...) })
	for _, workers := range []int{2, 3, 7} {
		got := Reduce(workers, n, []int(nil), func(lo, hi int) []int {
			out := []int{}
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		}, func(acc, part []int) []int { return append(acc, part...) })
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out of order at %d: %d != %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	n := 3*minShard + 17
	sum := func(w int) int {
		return Reduce(w, n, 0, func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s
		}, func(a, b int) int { return a + b })
	}
	want := n * (n - 1) / 2
	for _, w := range []int{1, 2, 8} {
		if got := sum(w); got != want {
			t.Fatalf("workers=%d: sum=%d want %d", w, got, want)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(4, 0, 42, func(lo, hi int) int { t.Fatal("fn called on empty range"); return 0 },
		func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("empty reduce = %d, want zero value 42", got)
	}
}

func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ s, n int }{{1, 10}, {3, 10}, {4, 4 * minShard}, {7, 1000}} {
		prev := 0
		for k := 0; k < tc.s; k++ {
			lo, hi := bounds(k, tc.s, tc.n)
			if lo != prev {
				t.Fatalf("s=%d n=%d shard %d: lo=%d want %d", tc.s, tc.n, k, lo, prev)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("s=%d n=%d: shards end at %d", tc.s, tc.n, prev)
		}
	}
}
