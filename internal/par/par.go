// Package par provides the sharded parallel-execution primitives behind
// the machine simulator's opt-in worker-pool backend
// (machine.WithParallel). The paper's data movement operations are
// data-parallel across PEs — in one lock-step round every PE touches only
// its own register and (read-only) its partner's — so the host simulation
// of one round can fan an index range [0, n) out over GOMAXPROCS-bounded
// workers without changing any result.
//
// Determinism contract. ForEach shards [0, n) into contiguous,
// non-overlapping ranges, one goroutine per shard, and waits for all of
// them; the caller guarantees fn(lo, hi) writes only to indices in
// [lo, hi) (reads may range over the whole input as long as no other
// shard writes it). Reduce additionally collects one partial value per
// shard and combines them IN ASCENDING SHARD ORDER on the calling
// goroutine, so even a non-commutative combine sees the exact order a
// serial left-to-right loop would have produced. Under these rules a
// parallel execution is bit-identical to the serial one — the property
// the differential tests in the repository root assert for every
// topology and worker count.
package par

import "sync"

// minShard is the smallest index range worth a goroutine. Rounds over
// fewer elements than this run inline: goroutine dispatch (~µs) would
// dominate the ~ns-per-element register work of small machines.
const minShard = 256

// shards returns the number of shards to use for n items on w workers.
func shards(workers, n int) int {
	if workers <= 1 || n <= minShard {
		return 1
	}
	s := (n + minShard - 1) / minShard
	if s > workers {
		s = workers
	}
	return s
}

// ForEach runs fn over the contiguous shards of [0, n) on up to `workers`
// goroutines and returns when every shard is done. With workers ≤ 1 (or a
// range too small to split) it is exactly fn(0, n) on the calling
// goroutine. fn must confine its writes to [lo, hi).
func ForEach(workers, n int, fn func(lo, hi int)) {
	s := shards(workers, n)
	if s <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(s - 1)
	for k := 1; k < s; k++ {
		lo, hi := bounds(k, s, n)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	// Shard 0 runs on the calling goroutine: one fewer goroutine spawn per
	// round, and the caller keeps doing useful work while it waits.
	lo, hi := bounds(0, s, n)
	fn(lo, hi)
	wg.Wait()
}

// Reduce runs fn over the contiguous shards of [0, n) in parallel and
// folds the per-shard partial results with combine in ascending shard
// order (on the calling goroutine), starting from zero. With one shard it
// is combine(zero, fn(0, n)).
func Reduce[T any](workers, n int, zero T, fn func(lo, hi int) T, combine func(acc, part T) T) T {
	s := shards(workers, n)
	if s <= 1 {
		if n <= 0 {
			return zero
		}
		return combine(zero, fn(0, n))
	}
	parts := make([]T, s)
	var wg sync.WaitGroup
	wg.Add(s - 1)
	for k := 1; k < s; k++ {
		k := k
		lo, hi := bounds(k, s, n)
		go func() {
			defer wg.Done()
			parts[k] = fn(lo, hi)
		}()
	}
	lo, hi := bounds(0, s, n)
	parts[0] = fn(lo, hi)
	wg.Wait()
	acc := zero
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}

// bounds returns the half-open range of shard k of s over [0, n): the
// ⌈n/s⌉-sized prefix shards followed by the remainder, so every index is
// covered exactly once and shard order equals index order.
func bounds(k, s, n int) (lo, hi int) {
	size := (n + s - 1) / s
	lo = k * size
	if lo > n {
		lo = n
	}
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}
