// Package ratfun implements the ordered field of real rational functions,
// ordered by their behaviour as t → +∞.
//
// Lemma 5.1 of the paper states that the steady-state minimum of two
// bounded-degree polynomials can be determined in Θ(1) serial time; this
// package is the systematic version of that observation. Every steady-state
// algorithm in §5 (nearest neighbour, closest pair, hull, diameter,
// smallest enclosing rectangle) is written once over the generic ordered
// field Real and instantiated either with plain float64 (static systems,
// k = 0) or with RatFun (k-motion systems evaluated "at infinity"), which
// makes every geometric predicate exact in the steady state.
package ratfun

import (
	"fmt"

	"dyncg/internal/poly"
)

// Real is the ordered-field interface shared by F64 and RatFun. All
// geometric predicates in internal/geom and internal/pgeom are generic
// over it, mirroring the paper's device of reusing static algorithms for
// steady-state inputs (Propositions 5.2–5.4, Theorem 5.8).
//
// The zero value of an implementing type must be the field's zero.
type Real[T any] interface {
	Add(T) T
	Sub(T) T
	Mul(T) T
	Div(T) T // division by zero panics, as in float64 integer-like use
	Neg() T
	Half() T   // exact division by two (midpoints for envelope probes)
	Sign() int // -1, 0, +1
	Cmp(T) int
	Float() float64 // representative numeric value (for display/output)
}

// F64 is the float64 instance of Real, used for static (k = 0) systems.
type F64 float64

// Add returns a + b.
func (a F64) Add(b F64) F64 { return a + b }

// Sub returns a − b.
func (a F64) Sub(b F64) F64 { return a - b }

// Mul returns a · b.
func (a F64) Mul(b F64) F64 { return a * b }

// Div returns a / b.
func (a F64) Div(b F64) F64 {
	if b == 0 {
		panic("ratfun: division by zero")
	}
	return a / b
}

// Neg returns −a.
func (a F64) Neg() F64 { return -a }

// Half returns a / 2.
func (a F64) Half() F64 { return a / 2 }

// Sign returns the sign of a.
func (a F64) Sign() int {
	switch {
	case a < 0:
		return -1
	case a > 0:
		return 1
	}
	return 0
}

// Cmp compares a and b.
func (a F64) Cmp(b F64) int { return (a - b).Sign() }

// Float returns a as a float64.
func (a F64) Float() float64 { return float64(a) }

var _ Real[F64] = F64(0)

// RatFun is a rational function Num/Den of the time variable, ordered by
// its limit behaviour as t → +∞. The zero value represents 0 (Den nil is
// read as the constant 1).
type RatFun struct {
	Num poly.Poly
	Den poly.Poly
}

// FromPoly returns p viewed as a rational function.
func FromPoly(p poly.Poly) RatFun { return RatFun{Num: p, Den: poly.Constant(1)} }

// FromFloat returns the constant rational function c.
func FromFloat(c float64) RatFun { return FromPoly(poly.Constant(c)) }

// den returns the denominator, treating the zero value as 1.
func (a RatFun) den() poly.Poly {
	if a.Den.IsZero() {
		return poly.Constant(1)
	}
	return a.Den
}

// normalize flips signs so the denominator is eventually positive, which
// makes Sign a plain numerator test.
func (a RatFun) normalize() RatFun {
	d := a.den()
	if d.SignAtInfinity() < 0 {
		return RatFun{Num: a.Num.Neg(), Den: d.Neg()}
	}
	return RatFun{Num: a.Num, Den: d}
}

// Add returns a + b.
func (a RatFun) Add(b RatFun) RatFun {
	return RatFun{
		Num: a.Num.Mul(b.den()).Add(b.Num.Mul(a.den())),
		Den: a.den().Mul(b.den()),
	}.normalize()
}

// Sub returns a − b.
func (a RatFun) Sub(b RatFun) RatFun { return a.Add(b.Neg()) }

// Mul returns a · b.
func (a RatFun) Mul(b RatFun) RatFun {
	return RatFun{Num: a.Num.Mul(b.Num), Den: a.den().Mul(b.den())}.normalize()
}

// Div returns a / b. It panics if b is identically zero.
func (a RatFun) Div(b RatFun) RatFun {
	if b.Num.IsZero() {
		panic("ratfun: division by zero rational function")
	}
	return RatFun{Num: a.Num.Mul(b.den()), Den: a.den().Mul(b.Num)}.normalize()
}

// Neg returns −a.
func (a RatFun) Neg() RatFun { return RatFun{Num: a.Num.Neg(), Den: a.den()} }

// Half returns a / 2.
func (a RatFun) Half() RatFun { return RatFun{Num: a.Num, Den: a.den().Scale(2)} }

// Sign returns the sign of a(t) as t → +∞ (Lemma 5.1).
func (a RatFun) Sign() int {
	n := a.normalize()
	return n.Num.SignAtInfinity()
}

// Cmp compares a and b as t → +∞.
func (a RatFun) Cmp(b RatFun) int { return a.Sub(b).Sign() }

// Float returns a representative value: the limit of a(t) as t → +∞ when
// finite, otherwise an evaluation at a large time past all critical roots.
func (a RatFun) Float() float64 {
	n := a.normalize()
	dn, dd := n.Num.Degree(), n.Den.Degree()
	switch {
	case dn < 0:
		return 0
	case dn < dd:
		return 0
	case dn == dd:
		return n.Num.Lead() / n.Den.Lead()
	default:
		t := n.Num.CauchyRootBound() + n.Den.CauchyRootBound() + 10
		return n.Num.Eval(t) / n.Den.Eval(t)
	}
}

// Eval evaluates the rational function at a finite time.
func (a RatFun) Eval(t float64) float64 { return a.Num.Eval(t) / a.den().Eval(t) }

// String renders the rational function.
func (a RatFun) String() string {
	n := a.normalize()
	if n.Den.Degree() == 0 && n.Den.Lead() == 1 {
		return n.Num.String()
	}
	return fmt.Sprintf("(%s)/(%s)", n.Num, n.Den)
}

var _ Real[RatFun] = RatFun{}
