package ratfun

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dyncg/internal/poly"
)

func randRat(r *rand.Rand) RatFun {
	randPoly := func(maxDeg int) poly.Poly {
		d := r.Intn(maxDeg + 1)
		c := make([]float64, d+1)
		for i := range c {
			c[i] = float64(r.Intn(9) - 4)
		}
		return poly.New(c...)
	}
	num := randPoly(3)
	den := randPoly(2)
	for den.IsZero() {
		den = randPoly(2)
	}
	return RatFun{Num: num, Den: den}
}

func TestZeroValueIsZero(t *testing.T) {
	var z RatFun
	if z.Sign() != 0 {
		t.Fatalf("zero value sign = %d", z.Sign())
	}
	one := FromFloat(1)
	if got := z.Add(one); got.Cmp(one) != 0 {
		t.Fatalf("0 + 1 = %v", got)
	}
	if got := one.Mul(z); got.Sign() != 0 {
		t.Fatalf("1 * 0 = %v", got)
	}
}

func TestOrderingAtInfinity(t *testing.T) {
	tt := FromPoly(poly.X())
	big := FromFloat(1e9)
	if tt.Cmp(big) != 1 {
		t.Error("t should eventually exceed any constant")
	}
	// t/(t+1) → 1 < 2
	ratio := RatFun{Num: poly.X(), Den: poly.New(1, 1)}
	if ratio.Cmp(FromFloat(2)) != -1 {
		t.Error("t/(t+1) should be < 2 at infinity")
	}
	// t²/(t+1) → ∞ > 7
	super := RatFun{Num: poly.X().Mul(poly.X()), Den: poly.New(1, 1)}
	if super.Cmp(FromFloat(7)) != 1 {
		t.Error("t²/(t+1) should exceed 7 at infinity")
	}
}

func TestNegativeDenominatorNormalization(t *testing.T) {
	// 1/(−t) → 0⁻, so it is negative at infinity.
	a := RatFun{Num: poly.Constant(1), Den: poly.New(0, -1)}
	if a.Sign() != -1 {
		t.Fatalf("1/(-t) sign = %d, want -1", a.Sign())
	}
}

// Property: field axioms hold (verified through Cmp, the only observable).
func TestFieldAxiomsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randRat(r), randRat(r), randRat(r)
		// (a+b)+c == a+(b+c)
		if a.Add(b).Add(c).Cmp(a.Add(b.Add(c))) != 0 {
			return false
		}
		// a*(b+c) == a*b + a*c
		if a.Mul(b.Add(c)).Cmp(a.Mul(b).Add(a.Mul(c))) != 0 {
			return false
		}
		// a - a == 0
		if a.Sub(a).Sign() != 0 {
			return false
		}
		// (a/b)*b == a when b != 0
		if b.Sign() != 0 && a.Div(b).Mul(b).Cmp(a) != 0 {
			return false
		}
		// Half
		if a.Half().Add(a.Half()).Cmp(a) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ordering is total and consistent with evaluation at a
// sufficiently large finite time.
func TestOrderMatchesLargeTimeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRat(r), randRat(r)
		c := a.Cmp(b)
		if c == 0 {
			return b.Cmp(a) == 0
		}
		d := a.Sub(b).normalize()
		T := d.Num.CauchyRootBound() + d.Den.CauchyRootBound() + 10
		diff := a.Eval(T) - b.Eval(T)
		return (diff < 0) == (c < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatRepresentative(t *testing.T) {
	// (2t+1)/(t+3) → 2
	a := RatFun{Num: poly.New(1, 2), Den: poly.New(3, 1)}
	if got := a.Float(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Float = %v, want 2", got)
	}
	if got := FromFloat(-3.5).Float(); got != -3.5 {
		t.Fatalf("Float const = %v", got)
	}
}

func TestF64Instance(t *testing.T) {
	a, b := F64(3), F64(-2)
	if a.Add(b) != 1 || a.Mul(b) != -6 || a.Sub(b) != 5 || a.Div(b) != -1.5 {
		t.Fatal("F64 arithmetic broken")
	}
	if a.Cmp(b) != 1 || b.Sign() != -1 || a.Half() != 1.5 || b.Neg() != 2 {
		t.Fatal("F64 ordering broken")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromFloat(1).Div(RatFun{})
}
