// Package fleet is the multi-process front door: one HTTP surface
// routing /v1/* traffic across N worker dyncgd processes with a
// consistent-hash ring (internal/shard.NamedRing) — the process-level
// counterpart of the in-process shard router (internal/server.Router).
//
// Routing mirrors the shard router's keys. One-shot algorithm requests
// route by canonical hash (internal/canon) when cacheable, falling
// back to the machine size-class key for fault-injected requests, so
// identical requests always meet at the same worker's warm pool.
// Session creation round-robins across live members; each worker mints
// session IDs that consistent-hash home to it (server.Config.FleetIDs)
// and salts them with its member ID, so follow-up session requests
// route by ID straight to the process holding the pinned machine.
//
// The front door owns the response cache and the request coalescer:
// both sit in front of the ring, shared across every member, so a
// repeat of a request computed on member A is a cache hit even when
// the repeat would route to member B, and identical concurrent
// requests collapse into a single worker computation fleet-wide.
//
// Failure handling is bounded and typed. Forwarding errors mark the
// member down (a background prober marks it back up when /healthz
// recovers); stateless requests retry across the remaining live
// members in ring-sequence order, each member tried at most once, and
// exhaust into 503 no_members. Session requests never fail over — the
// session's machine lives in one process — so a downed home member
// answers 503 member_down until the prober sees it return.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dyncg/internal/api"
	"dyncg/internal/canon"
	"dyncg/internal/coalesce"
	"dyncg/internal/rcache"
	"dyncg/internal/replaylog"
	"dyncg/internal/server"
	"dyncg/internal/shard"
	"dyncg/internal/topo"
)

// Member names one worker process of the fleet.
type Member struct {
	// ID is the worker's stable identity: its -member-id flag, the key
	// it is hashed under on the ring, and the value of its
	// X-Dyncg-Member header.
	ID string `json:"id"`
	// URL is the worker's base URL (scheme://host:port, no path).
	URL string `json:"url"`
}

// Config configures a FrontDoor. The zero value of every optional
// field gets the same default the worker-side server uses, so a fleet
// config reads like a server config.
type Config struct {
	// Members is the fleet roster. At least one member is required;
	// IDs must be distinct.
	Members []Member
	// MaxBody caps inbound request bodies (0 = 8 MiB) — the same cap
	// the workers apply, enforced here so an oversize body is rejected
	// with the worker's exact envelope without crossing the network.
	MaxBody int64
	// DefaultWorkers mirrors the workers' -workers flag; the front
	// door needs it to resolve the canonical hash the same way the
	// computation will.
	DefaultWorkers int
	// Deadline bounds one forwarded request (0 = 30s).
	Deadline time.Duration
	// ProbeInterval is the health-probe period (0 = 1s; negative
	// disables the background prober — tests drive Probe directly).
	ProbeInterval time.Duration
	// CacheBytes enables the fleet-wide response cache (0 disables);
	// Coalesce the fleet-wide request coalescer.
	CacheBytes int64
	Coalesce   bool
	// Logger receives one structured record per proxied request (nil =
	// discard).
	Logger *slog.Logger
	// ReplayLog, when non-nil, records the fleet-wide request stream —
	// every /v1/* request in front-door arrival order, each stamped
	// with the member that served it — on one hash chain.
	ReplayLog *replaylog.Log
	// Client issues the forwarded requests (nil = a default client;
	// tests inject one wired to httptest servers).
	Client *http.Client
}

// member is the front door's view of one worker.
type member struct {
	Member
	up atomic.Bool
	// proxied counts requests this member served.
	proxied atomic.Int64
}

// FrontDoor is the fleet proxy. Construct with New, optionally Start
// the background prober, mount Handler, and Close on shutdown.
type FrontDoor struct {
	cfg     Config
	ring    *shard.NamedRing
	members map[string]*member
	mux     *http.ServeMux
	next    atomic.Uint64 // round-robin cursor for session creation
	rc      *rcache.Cache
	cg      *coalesce.Group[*proxied]
	log     *slog.Logger
	rlog    *replaylog.Log
	client  *http.Client

	retries   atomic.Int64 // stateless failovers after a transport error
	orphaned  atomic.Int64 // member_down rejections
	exhausted atomic.Int64 // no_members rejections

	rmu sync.Mutex // serializes replay-log appends with their arrival order

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a front door over the fleet roster.
func New(cfg Config) (*FrontDoor, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fleet: empty member roster")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ids := make([]string, 0, len(cfg.Members))
	members := make(map[string]*member, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.ID == "" || m.URL == "" {
			return nil, fmt.Errorf("fleet: member needs both id and url: %+v", m)
		}
		if _, dup := members[m.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate member id %q", m.ID)
		}
		ids = append(ids, m.ID)
		mm := &member{Member: Member{ID: m.ID, URL: strings.TrimSuffix(m.URL, "/")}}
		mm.up.Store(true)
		members[m.ID] = mm
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &FrontDoor{
		cfg:     cfg,
		ring:    shard.NewNamed(ids, 0),
		members: members,
		mux:     http.NewServeMux(),
		rc:      rcache.New(cfg.CacheBytes),
		log:     log,
		rlog:    cfg.ReplayLog,
		client:  client,
		stop:    make(chan struct{}),
	}
	if cfg.Coalesce {
		f.cg = coalesce.New[*proxied]()
	}
	f.mux.HandleFunc("POST /v1/{algorithm}", f.handleAlgorithm)
	f.mux.HandleFunc("POST /v1/sessions", f.handleSessionCreate)
	f.mux.HandleFunc("POST /v1/sessions/{id}/update", f.handleSessionByID)
	f.mux.HandleFunc("GET /v1/sessions/{id}/query", f.handleSessionByID)
	f.mux.HandleFunc("DELETE /v1/sessions/{id}", f.handleSessionByID)
	f.mux.HandleFunc("GET /v1/cluster", f.handleCluster)
	f.mux.HandleFunc("GET /healthz", f.handleHealthz)
	f.mux.HandleFunc("GET /metrics", f.handleMetrics)
	return f, nil
}

// Handler returns the front door's HTTP handler.
func (f *FrontDoor) Handler() http.Handler { return f }

// ServeHTTP serves the fleet surface. Every response carries the
// schema-version header; proxied responses additionally carry the
// serving worker's identity headers, forwarded unchanged.
func (f *FrontDoor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Dyncg-Api-Version", fmt.Sprint(api.Version))
	f.mux.ServeHTTP(w, r)
}

// Start launches the background health prober (no-op when the probe
// interval is negative).
func (f *FrontDoor) Start() {
	if f.cfg.ProbeInterval < 0 {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(f.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				f.Probe()
			}
		}
	}()
}

// Close stops the prober and waits for it.
func (f *FrontDoor) Close() {
	close(f.stop)
	f.wg.Wait()
}

// Probe checks every member's /healthz once, marking members up or
// down by the result. The background prober calls it periodically;
// tests call it directly.
func (f *FrontDoor) Probe() {
	for _, id := range f.ring.IDs() {
		m := f.members[id]
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Deadline)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := f.client.Do(req)
		ok := false
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
		cancel()
		if was := m.up.Swap(ok); was != ok {
			f.log.LogAttrs(context.Background(), slog.LevelWarn, "member health flip",
				slog.String("member", id), slog.Bool("up", ok))
		}
	}
}

// proxied is one forwarded response: the exact wire bytes (trailing
// newline included) plus the headers the front door propagates.
type proxied struct {
	status int
	body   []byte
	ctype  string
	member string // X-Dyncg-Member of the worker (its ID when absent)
	source string // X-Dyncg-Source of the worker
}

// forward sends one request to a member and reads the full response.
// A transport error marks the member down and is returned; HTTP-level
// errors (any status) are successful forwards.
func (f *FrontDoor) forward(ctx context.Context, m *member, method, uri string, body []byte) (*proxied, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Deadline)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.URL+uri, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if m.up.Swap(false) {
			f.log.LogAttrs(ctx, slog.LevelWarn, "member down",
				slog.String("member", m.ID), slog.String("error", err.Error()))
		}
		return nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		if m.up.Swap(false) {
			f.log.LogAttrs(ctx, slog.LevelWarn, "member down",
				slog.String("member", m.ID), slog.String("error", err.Error()))
		}
		return nil, err
	}
	p := &proxied{
		status: resp.StatusCode,
		body:   rb,
		ctype:  resp.Header.Get("Content-Type"),
		member: resp.Header.Get("X-Dyncg-Member"),
		source: resp.Header.Get("X-Dyncg-Source"),
	}
	if p.member == "" {
		p.member = m.ID
	}
	m.proxied.Add(1)
	return p, nil
}

// forwardWalk forwards a stateless request along the ring's failover
// sequence for key: the owner first, then each remaining member in
// ring order, live members only, each tried at most once. Returns nil
// when every member is down or errors — the caller answers
// no_members.
func (f *FrontDoor) forwardWalk(ctx context.Context, key, method, uri string, body []byte) *proxied {
	first := true
	for _, id := range f.ring.Sequence(key) {
		m := f.members[id]
		if !m.up.Load() {
			first = false
			continue
		}
		p, err := f.forward(ctx, m, method, uri, body)
		if err == nil {
			return p
		}
		if !first {
			f.retries.Add(1)
		}
		first = false
	}
	f.exhausted.Add(1)
	return nil
}

// write sends a proxied response to the client and records it.
func (f *FrontDoor) write(w http.ResponseWriter, r *http.Request, p *proxied, raw []byte, meta api.ReplayMeta) {
	if p.ctype != "" {
		w.Header().Set("Content-Type", p.ctype)
	}
	w.Header().Set("X-Dyncg-Member", p.member)
	if p.source != "" {
		w.Header().Set("X-Dyncg-Source", p.source)
	}
	w.WriteHeader(p.status)
	w.Write(p.body)
	meta.Member = p.member
	f.record(r, p.status, bytes.TrimSuffix(p.body, []byte("\n")), raw, meta)
}

// fail sends a front-door-originated error envelope. member attributes
// the failure to a fleet member (member_down); empty for fleet-wide
// conditions.
func (f *FrontDoor) fail(w http.ResponseWriter, r *http.Request, status int, e *api.Error, raw []byte, meta api.ReplayMeta) {
	body, _ := json.Marshal(e)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dyncg-Member", "frontdoor")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
	meta.Member = e.Member
	f.record(r, status, body, raw, meta)
}

// record appends one replay record to the fleet-wide computation log.
// Appends are serialized so the chain order is the order responses
// were written.
func (f *FrontDoor) record(r *http.Request, status int, body, raw []byte, meta api.ReplayMeta) {
	if f.rlog == nil {
		return
	}
	rec := api.ReplayRecord{
		Method:   r.Method,
		Path:     r.URL.RequestURI(),
		Status:   status,
		Meta:     meta,
		Response: body,
	}
	switch {
	case len(raw) == 0:
	case json.Valid(raw):
		rec.Request = raw
	default:
		rec.RequestBin = raw
	}
	f.rmu.Lock()
	err := f.rlog.Append(rec)
	f.rmu.Unlock()
	if err != nil {
		f.log.LogAttrs(r.Context(), slog.LevelError, "replaylog",
			slog.String("error", err.Error()))
	}
}

// machineMeta extracts the served machine from a successful response
// body, so fleet replay records carry the same machine metadata the
// worker's own log would.
func machineMeta(status int, body []byte) api.ReplayMeta {
	if status != http.StatusOK {
		return api.ReplayMeta{}
	}
	var env struct {
		Machine api.MachineInfo `json:"machine"`
		Session struct {
			Machine api.MachineInfo `json:"machine"`
		} `json:"session"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return api.ReplayMeta{}
	}
	mi := env.Machine
	if mi.PEs == 0 {
		mi = env.Session.Machine
	}
	return api.ReplayMeta{Topology: mi.Topology, PEs: mi.PEs, Workers: mi.Workers}
}

// handleAlgorithm proxies POST /v1/{algorithm}: decode enough to
// compute the routing key, then cache-check, coalesce, and forward
// along the ring.
func (f *FrontDoor) handleAlgorithm(w http.ResponseWriter, r *http.Request) {
	raw, rerr := f.readBody(w, r)
	if rerr != nil {
		return
	}

	key := ""
	cacheKey := ""
	cacheable := false
	var req api.Request
	if json.Unmarshal(raw, &req) == nil {
		// Resolve topology and workers exactly as the worker will, so
		// the canonical hash (the cache/coalesce key) is computed over
		// the same values; requests the worker will reject still route
		// deterministically by whatever key falls out.
		topoName := req.Options.Topology
		if topoName == "" {
			topoName = string(topo.Hypercube)
		}
		if tp, terr := topo.Parse(topoName); terr == nil {
			topoName = string(tp)
		}
		workers := req.Options.Workers
		if workers == 0 {
			workers = f.cfg.DefaultWorkers
		}
		if workers < 1 {
			workers = 1
		}
		name := r.PathValue("algorithm")
		if k, ok := canon.Key(name, topoName, workers, &req); ok {
			cacheKey, cacheable = k, true
			key = k
		} else {
			key = server.ClassKey(&req)
		}
	}

	metaOf := func(p *proxied) api.ReplayMeta {
		m := machineMeta(p.status, p.body)
		m.FaultSeed = req.Options.FaultSeed
		return m
	}

	if cacheable && f.rc != nil {
		if body, ok := f.rc.Get(cacheKey); ok {
			p := &proxied{status: http.StatusOK, body: append(body, '\n'),
				ctype: "application/json", member: "frontdoor", source: "cache"}
			f.write(w, r, p, raw, machineMeta(http.StatusOK, body))
			return
		}
	}
	if cacheable && f.cg != nil {
		led := false
		p, _, derr := f.cg.Do(r.Context(), cacheKey, func() (*proxied, error) {
			led = true
			p := f.forwardWalk(r.Context(), key, r.Method, r.URL.RequestURI(), raw)
			if p == nil {
				return nil, errNoMembers
			}
			if p.status == http.StatusOK {
				f.rc.Put(cacheKey, bytes.TrimSuffix(p.body, []byte("\n")))
			}
			return p, nil
		})
		if derr != nil {
			if errors.Is(derr, errNoMembers) {
				f.fail(w, r, http.StatusServiceUnavailable,
					api.NewError(api.CodeNoMembers, "fleet: no live member to serve the request"),
					raw, api.ReplayMeta{})
			} else {
				// This follower's context expired while the leader was
				// still forwarding.
				f.fail(w, r, http.StatusServiceUnavailable,
					api.NewError(api.CodeCoalesceTimeout,
						fmt.Sprintf("fleet: deadline expired waiting for coalesced computation: %v", derr)),
					raw, api.ReplayMeta{})
			}
			return
		}
		if !led {
			p = &proxied{status: p.status, body: p.body, ctype: p.ctype,
				member: p.member, source: "coalesced"}
		}
		f.write(w, r, p, raw, metaOf(p))
		return
	}

	p := f.forwardWalk(r.Context(), key, r.Method, r.URL.RequestURI(), raw)
	if p == nil {
		f.fail(w, r, http.StatusServiceUnavailable,
			api.NewError(api.CodeNoMembers, "fleet: no live member to serve the request"),
			raw, api.ReplayMeta{})
		return
	}
	if cacheable && f.rc != nil && p.status == http.StatusOK {
		f.rc.Put(cacheKey, bytes.TrimSuffix(p.body, []byte("\n")))
	}
	f.write(w, r, p, raw, metaOf(p))
}

// errNoMembers marks a coalesced leader's walk that found no live
// member — distinguished from a follower's own context expiry.
var errNoMembers = errors.New("fleet: no live member")

// readBody reads one inbound request body under the fleet's size cap,
// answering the worker's exact decode-failure envelope on error (the
// body never reaches a worker in that case).
func (f *FrontDoor) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, f.cfg.MaxBody)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		st := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			st = http.StatusRequestEntityTooLarge
		}
		e := api.NewError(api.CodeBadRequest, fmt.Sprintf("server: decoding request: %v", err))
		f.fail(w, r, st, e, raw, api.ReplayMeta{})
		return nil, err
	}
	return raw, nil
}

// handleSessionCreate places new sessions round-robin across live
// members; the chosen worker mints an ID that hashes home to it.
// Creation is stateless until it succeeds, so a dead member is simply
// skipped.
func (f *FrontDoor) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	raw, rerr := f.readBody(w, r)
	if rerr != nil {
		return
	}
	ids := f.ring.IDs()
	start := int(f.next.Add(1) - 1)
	for i := 0; i < len(ids); i++ {
		m := f.members[ids[(start+i)%len(ids)]]
		if !m.up.Load() {
			continue
		}
		p, ferr := f.forward(r.Context(), m, r.Method, r.URL.RequestURI(), raw)
		if ferr != nil {
			f.retries.Add(1)
			continue
		}
		meta := machineMeta(p.status, p.body)
		meta.Session = sessionIDOf(p.body)
		f.write(w, r, p, raw, meta)
		return
	}
	f.exhausted.Add(1)
	f.fail(w, r, http.StatusServiceUnavailable,
		api.NewError(api.CodeNoMembers, "fleet: no live member to serve the request"),
		raw, api.ReplayMeta{})
}

// sessionIDOf pulls the session ID out of a create response.
func sessionIDOf(body []byte) string {
	var env struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	if json.Unmarshal(body, &env) != nil {
		return ""
	}
	return env.Session.ID
}

// handleSessionByID routes update/query/delete to the member owning
// the session ID. The session's machine lives in exactly one process,
// so there is no failover: a downed home member is a typed 503
// member_down until it returns (its sessions are gone with it — the
// worker answers no_session after a restart).
func (f *FrontDoor) handleSessionByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	home := f.ring.Lookup(id)
	m := f.members[home]
	var raw []byte
	if r.Method != http.MethodGet {
		var rerr error
		raw, rerr = f.readBody(w, r)
		if rerr != nil {
			return
		}
	}
	if !m.up.Load() {
		f.orphaned.Add(1)
		e := api.NewError(api.CodeMemberDown,
			fmt.Sprintf("fleet: member %q owning session %q is down", home, id))
		e.Member = home
		f.fail(w, r, http.StatusServiceUnavailable, e, raw, api.ReplayMeta{Session: id})
		return
	}
	p, err := f.forward(r.Context(), m, r.Method, r.URL.RequestURI(), raw)
	if err != nil {
		f.orphaned.Add(1)
		e := api.NewError(api.CodeMemberDown,
			fmt.Sprintf("fleet: member %q owning session %q is down", home, id))
		e.Member = home
		f.fail(w, r, http.StatusServiceUnavailable, e, raw, api.ReplayMeta{Session: id})
		return
	}
	meta := machineMeta(p.status, p.body)
	meta.Session = id
	f.write(w, r, p, raw, meta)
}

// handleHealthz: the fleet is healthy while any member is.
func (f *FrontDoor) handleHealthz(w http.ResponseWriter, r *http.Request) {
	for _, id := range f.ring.IDs() {
		if f.members[id].up.Load() {
			io.WriteString(w, "ok\n")
			return
		}
	}
	http.Error(w, "no live members", http.StatusServiceUnavailable)
}

// handleCluster serves GET /v1/cluster: the ring roster with live
// per-member stats (fetched from each live member's own /v1/cluster)
// and the ?key= routing probe.
func (f *FrontDoor) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := api.ClusterResponse{V: api.Version, Mode: "fleet"}
	for _, id := range f.ring.IDs() {
		m := f.members[id]
		row := api.ClusterMember{ID: id, URL: m.URL}
		if m.up.Load() {
			if p, err := f.forward(r.Context(), m, http.MethodGet, "/v1/cluster", nil); err == nil && p.status == http.StatusOK {
				var sub api.ClusterResponse
				if json.Unmarshal(bytes.TrimSuffix(p.body, []byte("\n")), &sub) == nil && len(sub.Members) > 0 {
					row.Healthy = sub.Members[0].Healthy
					row.Inflight = sub.Members[0].Inflight
					row.QueueDepth = sub.Members[0].QueueDepth
					row.IdlePEs = sub.Members[0].IdlePEs
					row.Sessions = sub.Members[0].Sessions
				}
			}
		}
		resp.Members = append(resp.Members, row)
	}
	if key := r.URL.Query().Get("key"); key != "" {
		resp.Probe = &api.ClusterProbe{Key: key, Member: f.ring.Lookup(key)}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(resp)
}

// handleMetrics aggregates the fleet exposition: every live member's
// /metrics with a member="<id>" label injected into each series
// (duplicate TYPE headers dropped), then the front door's own routing
// and cache counters.
func (f *FrontDoor) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	seenType := map[string]bool{}
	ids := f.ring.IDs()
	for _, id := range ids {
		m := f.members[id]
		if !m.up.Load() {
			continue
		}
		p, err := f.forward(r.Context(), m, http.MethodGet, "/metrics", nil)
		if err != nil || p.status != http.StatusOK {
			continue
		}
		for _, line := range strings.Split(string(p.body), "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				if !seenType[line] {
					seenType[line] = true
					b.WriteString(line)
					b.WriteByte('\n')
				}
				continue
			}
			b.WriteString(labelMember(line, id))
			b.WriteByte('\n')
		}
	}
	io.WriteString(w, b.String())

	up := make([]string, 0, len(ids))
	for _, id := range ids {
		up = append(up, id)
	}
	sort.Strings(up)
	fmt.Fprintf(w, "# TYPE dyncg_fleet_member_up gauge\n")
	for _, id := range up {
		v := 0
		if f.members[id].up.Load() {
			v = 1
		}
		fmt.Fprintf(w, "dyncg_fleet_member_up{member=%q} %d\n", id, v)
	}
	fmt.Fprintf(w, "# TYPE dyncg_fleet_proxied_total counter\n")
	for _, id := range up {
		fmt.Fprintf(w, "dyncg_fleet_proxied_total{member=%q} %d\n", id, f.members[id].proxied.Load())
	}
	fmt.Fprintf(w, "# TYPE dyncg_fleet_retries_total counter\n")
	fmt.Fprintf(w, "dyncg_fleet_retries_total %d\n", f.retries.Load())
	fmt.Fprintf(w, "# TYPE dyncg_fleet_member_down_total counter\n")
	fmt.Fprintf(w, "dyncg_fleet_member_down_total %d\n", f.orphaned.Load())
	fmt.Fprintf(w, "# TYPE dyncg_fleet_no_members_total counter\n")
	fmt.Fprintf(w, "dyncg_fleet_no_members_total %d\n", f.exhausted.Load())
	cs := f.rc.Stats()
	fmt.Fprintf(w, "# TYPE dyncg_fleet_rcache_hits_total counter\n")
	fmt.Fprintf(w, "dyncg_fleet_rcache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# TYPE dyncg_fleet_rcache_misses_total counter\n")
	fmt.Fprintf(w, "dyncg_fleet_rcache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# TYPE dyncg_fleet_rcache_bytes gauge\n")
	fmt.Fprintf(w, "dyncg_fleet_rcache_bytes %d\n", cs.Bytes)
	merged := int64(0)
	if f.cg != nil {
		merged = f.cg.Merged()
	}
	fmt.Fprintf(w, "# TYPE dyncg_fleet_coalesce_merged_total counter\n")
	fmt.Fprintf(w, "dyncg_fleet_coalesce_merged_total %d\n", merged)
}

// labelMember injects member="<id>" as the first label of one
// exposition line.
func labelMember(line, id string) string {
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return line
	}
	name, rest := line[:sp], line[sp:]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return fmt.Sprintf("%s{member=%q,%s%s", name[:i], id, name[i+1:], rest)
	}
	return fmt.Sprintf("%s{member=%q}%s", name, id, rest)
}
