package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"dyncg/internal/api"
	"dyncg/internal/motion"
	"dyncg/internal/replaylog"
	"dyncg/internal/server"
)

// wireSystem converts a system to its wire form.
func wireSystem(sys *motion.System) [][][]float64 {
	out := make([][][]float64, len(sys.Points))
	for i, p := range sys.Points {
		coords := make([][]float64, len(p.Coord))
		for j, c := range p.Coord {
			coords[j] = append([]float64(nil), c...)
		}
		out[i] = coords
	}
	return out
}

// endpointCases is one request per one-shot serving endpoint — the
// same coverage the in-process differential battery uses.
func endpointCases() map[string]api.Request {
	planar := motion.Random(rand.New(rand.NewSource(11)), 8, 1, 2, 10)
	colliding := motion.Converging(rand.New(rand.NewSource(12)), 8)
	diverging := motion.Diverging(rand.New(rand.NewSource(13)), 8)
	small := motion.Random(rand.New(rand.NewSource(14)), 6, 1, 2, 10)
	req := func(sys *motion.System, mod func(*api.Request)) api.Request {
		r := api.Request{V: api.Version, System: wireSystem(sys)}
		if mod != nil {
			mod(&r)
		}
		return r
	}
	return map[string]api.Request{
		"closest-point-sequence":  req(planar, func(r *api.Request) { r.Origin = 1 }),
		"farthest-point-sequence": req(planar, func(r *api.Request) { r.Origin = 2 }),
		"collision-times":         req(colliding, nil),
		"hull-vertex-intervals":   req(planar, func(r *api.Request) { r.Origin = 0 }),
		"containment-intervals":   req(planar, func(r *api.Request) { r.Dims = []float64{40, 40} }),
		"smallest-hypercube-edge": req(planar, nil),
		"smallest-ever-hypercube": req(planar, nil),
		"steady-nearest-neighbor": req(planar, func(r *api.Request) { r.Origin = 3 }),
		"steady-closest-pair":     req(planar, nil),
		"steady-hull":             req(diverging, nil),
		"steady-farthest-pair":    req(diverging, nil),
		"steady-min-area-rect":    req(diverging, nil),
		"closest-pair-sequence":   req(small, nil),
		"farthest-pair-sequence":  req(small, nil),
	}
}

// flaky wraps a worker handler with a kill switch: while dead, every
// request aborts its connection — exactly what a SIGKILLed process
// looks like to the front door's HTTP client.
type flaky struct {
	h    http.Handler
	dead atomic.Bool
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	f.h.ServeHTTP(w, r)
}

// testFleet is a 3-member fleet over in-process httptest workers.
type testFleet struct {
	fd      *FrontDoor
	workers []*flaky
	servers []*server.Server
}

// newTestFleet builds n workers (pooling disabled, so responses carry
// no pool-state dependence) behind a front door. mod edits the
// front-door config before construction.
func newTestFleet(t *testing.T, n int, mod func(*Config)) *testFleet {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%d", i)
	}
	tf := &testFleet{}
	members := make([]Member, n)
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{MemberID: ids[i], FleetIDs: ids, PoolCap: -1})
		fl := &flaky{h: srv.Handler()}
		ts := httptest.NewServer(fl)
		t.Cleanup(ts.Close)
		tf.workers = append(tf.workers, fl)
		tf.servers = append(tf.servers, srv)
		members[i] = Member{ID: ids[i], URL: ts.URL}
	}
	cfg := Config{Members: members, ProbeInterval: -1}
	if mod != nil {
		mod(&cfg)
	}
	fd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tf.fd = fd
	return tf
}

func (tf *testFleet) do(t *testing.T, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	tf.fd.Handler().ServeHTTP(w, r)
	return w
}

func singleDo(t *testing.T, h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// statelessTrace is the full stateless request mix: every endpoint,
// a fault-injected run (seeded, so deterministic), and the error
// paths (invalid JSON, bad version, unknown algorithm, bad topology).
func statelessTrace(t *testing.T) []struct {
	algo string
	body []byte
} {
	t.Helper()
	var trace []struct {
		algo string
		body []byte
	}
	add := func(algo string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, struct {
			algo string
			body []byte
		}{algo, b})
	}
	for name, req := range endpointCases() {
		add(name, req)
	}
	faulted := endpointCases()["closest-point-sequence"]
	faulted.Options.Faults = "transient=0.05,retries=3"
	faulted.Options.FaultSeed = 7
	add("closest-point-sequence", faulted)

	badVersion := endpointCases()["steady-hull"]
	badVersion.V = 99
	add("steady-hull", badVersion)

	badTopo := endpointCases()["steady-hull"]
	badTopo.Options.Topology = "torus"
	add("steady-hull", badTopo)

	add("no-such-algorithm", endpointCases()["steady-hull"])

	trace = append(trace, struct {
		algo string
		body []byte
	}{"steady-hull", []byte(`{"v":1,`)})
	return trace
}

// TestFleetMatchesSingleServer: every stateless /v1/* request served
// through a 3-member fleet returns bytes identical to a single
// in-process server — process distribution must be invisible on the
// wire.
func TestFleetMatchesSingleServer(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	single := server.New(server.Config{PoolCap: -1})
	for _, tc := range statelessTrace(t) {
		fleetW := tf.do(t, http.MethodPost, "/v1/"+tc.algo, tc.body)
		singleW := singleDo(t, single.Handler(), http.MethodPost, "/v1/"+tc.algo, tc.body)
		if fleetW.Code != singleW.Code {
			t.Errorf("%s: fleet status %d, single %d (%s)", tc.algo, fleetW.Code, singleW.Code, fleetW.Body)
			continue
		}
		if !bytes.Equal(fleetW.Body.Bytes(), singleW.Body.Bytes()) {
			t.Errorf("%s: fleet bytes differ from single server:\n  fleet:  %s\n  single: %s",
				tc.algo, fleetW.Body, singleW.Body)
		}
		if src := fleetW.Header().Get("X-Dyncg-Source"); fleetW.Code == http.StatusOK && src != "computed" {
			t.Errorf("%s: X-Dyncg-Source = %q, want computed", tc.algo, src)
		}
		if fleetW.Header().Get("X-Dyncg-Member") == "" {
			t.Errorf("%s: response carries no X-Dyncg-Member", tc.algo)
		}
	}
}

// TestFleetRoutingDeterminism: identical requests land on the same
// member every time.
func TestFleetRoutingDeterminism(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	body, _ := json.Marshal(endpointCases()["steady-hull"])
	first := tf.do(t, http.MethodPost, "/v1/steady-hull", body).Header().Get("X-Dyncg-Member")
	for i := 0; i < 5; i++ {
		if got := tf.do(t, http.MethodPost, "/v1/steady-hull", body).Header().Get("X-Dyncg-Member"); got != first {
			t.Fatalf("repeat %d routed to %q, first to %q", i, got, first)
		}
	}
}

// TestFleetSessionLifecycle: create → update → query → delete through
// the front door; every follow-up request routes to the member that
// minted the ID.
func TestFleetSessionLifecycle(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	sys := motion.Random(rand.New(rand.NewSource(21)), 8, 1, 2, 10)
	createBody, _ := json.Marshal(map[string]any{
		"v": api.Version, "algorithm": "closest-point-sequence", "system": wireSystem(sys),
	})
	w := tf.do(t, http.MethodPost, "/v1/sessions", createBody)
	if w.Code != http.StatusOK {
		t.Fatalf("create: %d: %s", w.Code, w.Body)
	}
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	id := created.Session.ID
	home := tf.fd.ring.Lookup(id)
	if minted := w.Header().Get("X-Dyncg-Member"); minted != home {
		t.Fatalf("session %q minted by %q but homes to %q", id, minted, home)
	}
	if !strings.HasPrefix(id, "s-"+home+"-") {
		t.Errorf("session ID %q not salted with its home member %q", id, home)
	}

	updBody, _ := json.Marshal(map[string]any{
		"v": api.Version,
		"deltas": []map[string]any{
			{"op": "insert", "point": [][]float64{{3, -1}, {-4, 1}}},
		},
	})
	w = tf.do(t, http.MethodPost, "/v1/sessions/"+id+"/update", updBody)
	if w.Code != http.StatusOK {
		t.Fatalf("update: %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Dyncg-Member"); got != home {
		t.Errorf("update served by %q, want home %q", got, home)
	}
	w = tf.do(t, http.MethodGet, "/v1/sessions/"+id+"/query?verify=1", nil)
	if w.Code != http.StatusOK || !bytes.Contains(w.Body.Bytes(), []byte(`"verified":true`)) {
		t.Fatalf("verified query: %d: %s", w.Code, w.Body)
	}
	w = tf.do(t, http.MethodDelete, "/v1/sessions/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("delete: %d: %s", w.Code, w.Body)
	}
	w = tf.do(t, http.MethodGet, "/v1/sessions/"+id+"/query", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("deleted session still answers: %d", w.Code)
	}
}

// TestFleetMemberKillRestart: with one member dead, stateless traffic
// keeps flowing with zero errors (bounded failover along the ring);
// sessions homed on the dead member answer 503 member_down; after the
// member returns and a probe sees it, traffic reaches it again.
func TestFleetMemberKillRestart(t *testing.T) {
	tf := newTestFleet(t, 3, nil)

	// Home a session on each member so at least one is orphaned by any
	// kill choice.
	sys := motion.Random(rand.New(rand.NewSource(22)), 8, 1, 2, 10)
	createBody, _ := json.Marshal(map[string]any{
		"v": api.Version, "algorithm": "closest-point-sequence", "system": wireSystem(sys),
	})
	homed := map[string]string{} // member → session ID
	for i := 0; i < 12 && len(homed) < 3; i++ {
		w := tf.do(t, http.MethodPost, "/v1/sessions", createBody)
		if w.Code != http.StatusOK {
			t.Fatalf("create %d: %d: %s", i, w.Code, w.Body)
		}
		var created struct {
			Session struct {
				ID string `json:"id"`
			} `json:"session"`
		}
		json.Unmarshal(w.Body.Bytes(), &created)
		homed[tf.fd.ring.Lookup(created.Session.ID)] = created.Session.ID
	}
	if len(homed) < 3 {
		t.Fatalf("could not home a session on every member: %v", homed)
	}

	// Kill m1.
	tf.workers[1].dead.Store(true)

	// Stateless traffic: zero errors while a member is down.
	for _, tc := range statelessTrace(t) {
		w := tf.do(t, http.MethodPost, "/v1/"+tc.algo, tc.body)
		if w.Code >= 500 && w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d during member outage: %s", tc.algo, w.Code, w.Body)
		}
		if w.Code == http.StatusServiceUnavailable {
			t.Fatalf("%s: stateless request rejected during single-member outage: %s", tc.algo, w.Body)
		}
	}
	// Creation still works: the dead member is skipped.
	if w := tf.do(t, http.MethodPost, "/v1/sessions", createBody); w.Code != http.StatusOK {
		t.Fatalf("create during outage: %d: %s", w.Code, w.Body)
	}

	// The orphaned session answers a typed member_down; sessions on
	// live members are untouched.
	w := tf.do(t, http.MethodGet, "/v1/sessions/"+homed["m1"]+"/query", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("orphaned session query: %d: %s", w.Code, w.Body)
	}
	var e api.Error
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeMemberDown || e.Member != "m1" || e.Retryable {
		t.Fatalf("orphan envelope = %+v", e)
	}
	for _, m := range []string{"m0", "m2"} {
		if w := tf.do(t, http.MethodGet, "/v1/sessions/"+homed[m]+"/query", nil); w.Code != http.StatusOK {
			t.Fatalf("session on live member %s: %d: %s", m, w.Code, w.Body)
		}
	}

	// Restart: the member returns, a probe sees it, traffic resumes.
	tf.workers[1].dead.Store(false)
	tf.fd.Probe()
	if !tf.fd.members["m1"].up.Load() {
		t.Fatal("probe did not mark the returned member up")
	}
	if w := tf.do(t, http.MethodGet, "/v1/sessions/"+homed["m1"]+"/query", nil); w.Code != http.StatusOK {
		t.Fatalf("session after member return: %d: %s", w.Code, w.Body)
	}
}

// TestFleetAllDown: every member dead → stateless requests answer a
// typed, retryable 503 no_members.
func TestFleetAllDown(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	for _, fl := range tf.workers {
		fl.dead.Store(true)
	}
	body, _ := json.Marshal(endpointCases()["steady-hull"])
	w := tf.do(t, http.MethodPost, "/v1/steady-hull", body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", w.Code)
	}
	var e api.Error
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeNoMembers || !e.Retryable {
		t.Fatalf("envelope = %+v", e)
	}
	if w := tf.do(t, http.MethodGet, "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz with all members down = %d, want 503", w.Code)
	}
}

// TestFleetCacheAndCoalesce: the front-door cache serves a repeat
// without re-forwarding, byte-identical, with X-Dyncg-Source: cache.
func TestFleetCacheAndCoalesce(t *testing.T) {
	tf := newTestFleet(t, 3, func(c *Config) {
		c.CacheBytes = 1 << 20
		c.Coalesce = true
	})
	body, _ := json.Marshal(endpointCases()["collision-times"])
	first := tf.do(t, http.MethodPost, "/v1/collision-times", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first: %d: %s", first.Code, first.Body)
	}
	repeat := tf.do(t, http.MethodPost, "/v1/collision-times", body)
	if repeat.Header().Get("X-Dyncg-Source") != "cache" {
		t.Fatalf("repeat source = %q, want cache", repeat.Header().Get("X-Dyncg-Source"))
	}
	if !bytes.Equal(first.Body.Bytes(), repeat.Body.Bytes()) {
		t.Fatal("cached bytes differ from computed bytes")
	}
	if st := tf.fd.rc.Stats(); st.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", st.Hits)
	}
	// Fault-injected requests bypass the cache.
	faulted := endpointCases()["collision-times"]
	faulted.Options.Faults = "transient=0.05,retries=3"
	faulted.Options.FaultSeed = 3
	fb, _ := json.Marshal(faulted)
	f1 := tf.do(t, http.MethodPost, "/v1/collision-times", fb)
	f2 := tf.do(t, http.MethodPost, "/v1/collision-times", fb)
	if f1.Header().Get("X-Dyncg-Source") != "computed" || f2.Header().Get("X-Dyncg-Source") != "computed" {
		t.Error("faulted requests must never be cache hits")
	}
}

// TestFleetReplayLog: the front door records the fleet-wide stream on
// one hash chain, member-attributed; the chain verifies.
func TestFleetReplayLog(t *testing.T) {
	dir := t.TempDir()
	rlog, err := replaylog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tf := newTestFleet(t, 3, func(c *Config) { c.ReplayLog = rlog })
	for _, tc := range statelessTrace(t) {
		tf.do(t, http.MethodPost, "/v1/"+tc.algo, tc.body)
	}
	sys := motion.Random(rand.New(rand.NewSource(23)), 6, 1, 2, 10)
	createBody, _ := json.Marshal(map[string]any{
		"v": api.Version, "algorithm": "closest-point-sequence", "system": wireSystem(sys),
	})
	w := tf.do(t, http.MethodPost, "/v1/sessions", createBody)
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	json.Unmarshal(w.Body.Bytes(), &created)
	tf.do(t, http.MethodGet, "/v1/sessions/"+created.Session.ID+"/query", nil)
	tf.do(t, http.MethodDelete, "/v1/sessions/"+created.Session.ID, nil)
	if err := rlog.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := replaylog.ReadDir(dir)
	if err != nil {
		t.Fatalf("fleet replay chain broken: %v", err)
	}
	want := len(statelessTrace(t)) + 3
	got := 0
	for _, rec := range recs {
		if rec.Anchor {
			continue
		}
		got++
		if rec.Meta.Member == "" {
			t.Errorf("record %d (%s) has no member attribution", rec.Seq, rec.Path)
		}
	}
	if got != want {
		t.Errorf("recorded %d computation records, want %d", got, want)
	}
}

// TestFleetCluster: the ring roster with live stats, the ?key= probe,
// and member-down visibility.
func TestFleetCluster(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	w := tf.do(t, http.MethodGet, "/v1/cluster?key=s-m1-1-00000000", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp api.ClusterResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "fleet" || len(resp.Members) != 3 {
		t.Fatalf("mode=%q members=%d", resp.Mode, len(resp.Members))
	}
	for _, m := range resp.Members {
		if !m.Healthy || m.URL == "" {
			t.Errorf("member %+v not healthy with URL", m)
		}
	}
	if resp.Probe == nil || resp.Probe.Member != tf.fd.ring.Lookup("s-m1-1-00000000") {
		t.Fatalf("probe = %+v", resp.Probe)
	}
	tf.workers[2].dead.Store(true)
	tf.fd.Probe()
	w = tf.do(t, http.MethodGet, "/v1/cluster", nil)
	json.Unmarshal(w.Body.Bytes(), &resp)
	for _, m := range resp.Members {
		if m.ID == "m2" && m.Healthy {
			t.Error("dead member reported healthy")
		}
	}
}

// TestFleetMetrics: the aggregated exposition carries member-labelled
// worker series plus the front door's own counters.
func TestFleetMetrics(t *testing.T) {
	tf := newTestFleet(t, 3, func(c *Config) { c.CacheBytes = 1 << 20 })
	body, _ := json.Marshal(endpointCases()["steady-hull"])
	tf.do(t, http.MethodPost, "/v1/steady-hull", body)
	tf.do(t, http.MethodPost, "/v1/steady-hull", body) // cache hit
	w := tf.do(t, http.MethodGet, "/metrics", nil)
	text := w.Body.String()
	for _, want := range []string{
		`dyncgd_requests_total{member="`,
		`dyncg_fleet_member_up{member="m0"} 1`,
		`dyncg_fleet_rcache_hits_total 1`,
		"# TYPE dyncg_fleet_proxied_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if n := strings.Count(text, "# TYPE dyncgd_requests_total counter"); n != 1 {
		t.Errorf("TYPE header for dyncgd_requests_total appears %d times, want 1", n)
	}
}

// TestLabelMember covers the exposition label-injection rewriting.
func TestLabelMember(t *testing.T) {
	for in, want := range map[string]string{
		`dyncgd_inflight 3`:                           `dyncgd_inflight{member="m0"} 3`,
		`dyncgd_requests_total{algorithm="x"} 5`:      `dyncgd_requests_total{member="m0",algorithm="x"} 5`,
		`dyncgd_pool_checkouts_total{result="hit"} 2`: `dyncgd_pool_checkouts_total{member="m0",result="hit"} 2`,
	} {
		if got := labelMember(in, "m0"); got != want {
			t.Errorf("labelMember(%q) = %q, want %q", in, got, want)
		}
	}
}
