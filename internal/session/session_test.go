package session

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/motion"
	"dyncg/internal/poly"
)

// randPoint draws one moving point with degree-k coordinates in d
// dimensions (same coefficient shaping as motion.Random).
func randPoint(r *rand.Rand, d, k int) motion.Point {
	coords := make([]poly.Poly, d)
	for c := range coords {
		cf := make([]float64, k+1)
		cf[0] = (r.Float64()*2 - 1) * 10
		for deg := 1; deg <= k; deg++ {
			cf[deg] = r.NormFloat64() / float64(deg*deg)
		}
		coords[c] = poly.New(cf...)
	}
	return motion.NewPoint(coords...)
}

func randPoints(r *rand.Rand, n, d, k int) []motion.Point {
	pts := make([]motion.Point, n)
	for i := range pts {
		pts[i] = randPoint(r, d, k)
	}
	return pts
}

// newTestMachine builds a machine of the session's prescribed size.
func newTestMachine(t testing.TB, topo string, algo Algo, capacity, maxK int) *machine.M {
	t.Helper()
	pes := PEs(topo, algo, capacity, maxK)
	if topo == "mesh" {
		return machine.New(mesh.MustNew(pes, mesh.Proximity))
	}
	return machine.New(hypercube.MustNew(pes))
}

// sameResult asserts the bit-identity contract between the maintained
// and the from-scratch answer.
func sameResult(t *testing.T, got, want Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: incremental and rebuilt results differ\n got: %+v\nwant: %+v", label, got, want)
	}
}

func TestParseAlgo(t *testing.T) {
	for _, a := range []Algo{ClosestPointSeq, FarthestPointSeq, ClosestPairSeq,
		FarthestPairSeq, CubeEdge, SmallestEver, Containment} {
		if got, err := ParseAlgo(string(a)); err != nil || got != a {
			t.Fatalf("ParseAlgo(%q) = %q, %v", a, got, err)
		}
	}
	if _, err := ParseAlgo("convex-hull"); !errors.Is(err, motion.ErrBadSystem) {
		t.Fatalf("unknown algorithm error = %v, want ErrBadSystem", err)
	}
}

func TestNewValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 4, 2, 1)
	m := newTestMachine(t, "hypercube", ClosestPointSeq, 8, 1)
	cases := []struct {
		name string
		cfg  Config
		pts  []motion.Point
	}{
		{"unknown algo", Config{Algorithm: "nope"}, pts},
		{"empty system", Config{Algorithm: ClosestPointSeq}, nil},
		{"origin out of range", Config{Algorithm: ClosestPointSeq, Origin: 9, Capacity: 8}, pts},
		{"capacity below population", Config{Algorithm: ClosestPointSeq, Capacity: 2}, pts},
		{"degree over bound", Config{Algorithm: ClosestPointSeq, Capacity: 8, MaxDegree: 1},
			randPoints(r, 4, 2, 3)},
		{"pair sequence singleton", Config{Algorithm: ClosestPairSeq, Capacity: 8}, pts[:1]},
		{"containment dims mismatch", Config{Algorithm: Containment, Capacity: 8, Dims: []float64{1}}, pts},
	}
	for _, tc := range cases {
		if _, err := New(m, tc.cfg, tc.pts); !errors.Is(err, motion.ErrBadSystem) {
			t.Errorf("%s: err = %v, want ErrBadSystem", tc.name, err)
		}
	}
	if _, err := New(machine.New(hypercube.MustNew(4)),
		Config{Algorithm: ClosestPointSeq, Capacity: 8}, pts); !errors.Is(err, machine.ErrTooFewPEs) {
		t.Errorf("undersized machine: err = %v, want ErrTooFewPEs", err)
	}
}

// TestApplyAtomicity: a rejected batch must leave points, IDs, and the
// maintained result untouched, even when its prefix was valid.
func TestApplyAtomicity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 4, 2, 1)
	m := newTestMachine(t, "hypercube", ClosestPointSeq, 8, 1)
	e, err := New(m, Config{Algorithm: ClosestPointSeq, Origin: 0, Capacity: 8}, pts)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Result()
	idsBefore := e.Points()
	bad := [][]Delta{
		nil, // empty batch
		{{Op: OpDelete, ID: 42}},
		{{Op: OpDelete, ID: 0}}, // the origin
		{{Op: OpRetarget, ID: 99, Point: randPoint(r, 2, 1)}},
		{{Op: OpInsert, Point: randPoint(r, 3, 1)}},                          // wrong dimension
		{{Op: OpInsert, Point: randPoint(r, 2, 1)}, {Op: "teleport", ID: 1}}, // valid prefix, bad op
	}
	for i, b := range bad {
		if _, _, err := e.Apply(b); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
		sameResult(t, e.Result(), before, "result after rejected batch")
		if !reflect.DeepEqual(e.Points(), idsBefore) {
			t.Fatalf("bad batch %d mutated the population: %v", i, e.Points())
		}
	}
	if e.Updates() != 0 {
		t.Fatalf("rejected batches counted as updates: %d", e.Updates())
	}
}

func TestApplyInsertDeleteLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 3, 2, 1)
	m := newTestMachine(t, "hypercube", FarthestPointSeq, 8, 1)
	e, err := New(m, Config{Algorithm: FarthestPointSeq, Origin: 1, Capacity: 8}, pts)
	if err != nil {
		t.Fatal(err)
	}
	ins, st, err := e.Apply([]Delta{
		{Op: OpInsert, Point: randPoint(r, 2, 1)},
		{Op: OpInsert, Point: randPoint(r, 2, 1)},
		{Op: OpDelete, ID: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ins, []int{3, 4}) {
		t.Fatalf("inserted IDs = %v, want [3 4]", ins)
	}
	if st.DirtyLeaves == 0 || st.MergedNodes == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(e.Points(), want) {
		t.Fatalf("Points() = %v, want %v", e.Points(), want)
	}
	// Capacity is a hard bound on the live population.
	var over []Delta
	for i := 0; i < 5; i++ {
		over = append(over, Delta{Op: OpInsert, Point: randPoint(r, 2, 1)})
	}
	if _, _, err := e.Apply(over); !errors.Is(err, machine.ErrTooFewPEs) {
		t.Fatalf("over-capacity insert: err = %v, want ErrTooFewPEs", err)
	}
	// Freed IDs are never reused.
	ins, _, err = e.Apply([]Delta{{Op: OpInsert, Point: randPoint(r, 2, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ins, []int{5}) {
		t.Fatalf("post-delete insert IDs = %v, want [5]", ins)
	}
	res, err := e.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, e.Result(), res, "lifecycle end")
}

// TestOriginRetarget: retargeting the query point dirties every leaf and
// still matches the oracle.
func TestOriginRetarget(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 5, 2, 1)
	m := newTestMachine(t, "hypercube", ClosestPointSeq, 8, 1)
	e, err := New(m, Config{Algorithm: ClosestPointSeq, Origin: 2, Capacity: 8}, pts)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := e.Apply([]Delta{{Op: OpRetarget, ID: 2, Point: randPoint(r, 2, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyLeaves != 4 {
		t.Fatalf("origin retarget dirtied %d leaves, want 4", st.DirtyLeaves)
	}
	res, err := e.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, e.Result(), res, "origin retarget")
	if _, _, err := e.Apply([]Delta{{Op: OpDelete, ID: 2}}); err == nil {
		t.Fatal("origin deletion accepted")
	}
}

func TestPEsPrescriptions(t *testing.T) {
	for _, algo := range []Algo{ClosestPointSeq, ClosestPairSeq, CubeEdge} {
		for _, topo := range []string{"hypercube", "mesh"} {
			if n := PEs(topo, algo, 8, 2); n < 8 {
				t.Errorf("PEs(%s, %s) = %d, implausibly small", topo, algo, n)
			}
		}
	}
	if PEs("hypercube", ClosestPairSeq, 8, 2) <= PEs("hypercube", ClosestPointSeq, 8, 2) {
		t.Error("pair sessions must prescribe more PEs than point sessions at equal capacity")
	}
}

// --- Registry ----------------------------------------------------------

func addSession(t *testing.T, r *Registry) *Session {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	m := newTestMachine(t, "hypercube", ClosestPointSeq, 8, 1)
	e, err := New(m, Config{Algorithm: ClosestPointSeq, Capacity: 8}, randPoints(rng, 3, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Add(e, m, "hypercube", 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegistryLifecycle(t *testing.T) {
	released := 0
	r := NewRegistry(2, time.Hour, func(*Session) { released++ })
	s1 := addSession(t, r)
	s2 := addSession(t, r)
	if s1.ID == s2.ID {
		t.Fatalf("duplicate session IDs: %q", s1.ID)
	}
	if _, err := r.Add(s1.Eng, s1.M, "hypercube", 0); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over-capacity Add: err = %v", err)
	}
	var got *Engine
	if err := r.Do(s1.ID, func(s *Session) error { got = s.Eng; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != s1.Eng {
		t.Fatal("Do handed back the wrong session")
	}
	if err := r.Remove(s1.ID); err != nil {
		t.Fatal(err)
	}
	if released != 1 {
		t.Fatalf("released = %d after one Remove", released)
	}
	if err := r.Do(s1.ID, func(*Session) error { return nil }); !errors.Is(err, ErrNoSession) {
		t.Fatalf("Do on removed session: err = %v", err)
	}
	if err := r.Remove(s1.ID); !errors.Is(err, ErrNoSession) {
		t.Fatalf("double Remove: err = %v", err)
	}
	r.Close()
	if released != 2 || r.Len() != 0 {
		t.Fatalf("after Close: released = %d, len = %d", released, r.Len())
	}
}

func TestRegistryTTLSweep(t *testing.T) {
	released := 0
	r := NewRegistry(0, time.Minute, func(*Session) { released++ })
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }
	s1 := addSession(t, r)
	addSession(t, r)
	// Touch s1 halfway through, then advance past the TTL of the other.
	clock = clock.Add(40 * time.Second)
	if err := r.Do(s1.ID, func(*Session) error { return nil }); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(30 * time.Second)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d sessions, want 1", n)
	}
	if r.Evictions() != 1 || released != 1 || r.Len() != 1 {
		t.Fatalf("after sweep: evictions=%d released=%d len=%d", r.Evictions(), released, r.Len())
	}
	if err := r.Do(s1.ID, func(*Session) error { return nil }); err != nil {
		t.Fatalf("recently used session evicted: %v", err)
	}
	// Explicit Remove of an already-evicted session is ErrNoSession, and
	// the release callback never fires twice.
	clock = clock.Add(2 * time.Minute)
	r.Sweep()
	if err := r.Remove(s1.ID); !errors.Is(err, ErrNoSession) {
		t.Fatalf("Remove after eviction: err = %v", err)
	}
	if released != 2 {
		t.Fatalf("released = %d, want 2", released)
	}
}

func TestRegistryIDPrefix(t *testing.T) {
	r := NewRegistry(0, time.Hour, nil)
	r.SetIDPrefix("m1")
	s := addSession(t, r)
	if !strings.HasPrefix(s.ID, "s-m1-") {
		t.Fatalf("salted ID = %q, want s-m1-… prefix", s.ID)
	}
	// The salt composes with an ID predicate (the fleet worker installs
	// both): re-minting keeps the salt while varying the suffix.
	r2 := NewRegistry(0, time.Hour, nil)
	r2.SetIDPrefix("m2")
	calls := 0
	r2.SetIDCheck(func(id string) bool {
		calls++
		if !strings.HasPrefix(id, "s-m2-") {
			t.Fatalf("predicate saw unsalted ID %q", id)
		}
		return calls >= 3
	})
	s2 := addSession(t, r2)
	if calls < 3 {
		t.Fatalf("predicate called %d times, want ≥ 3", calls)
	}
	if !strings.HasPrefix(s2.ID, "s-m2-") {
		t.Fatalf("salted ID = %q, want s-m2-… prefix", s2.ID)
	}
}
