// Package session implements stateful batch-dynamic scenario sessions —
// the serving-layer counterpart of the retained merge tree of
// internal/penvelope. A session pins a simulated machine and keeps the
// intermediate envelope state of one algorithm resident, so a batch of k
// trajectory inserts/deletes/retargets recomputes only the O(k·log n)
// dirty merge paths (one Lemma 3.1 pass per dirty node) instead of
// re-running the full Theorem 3.2 construction over all n functions.
//
// The design follows the parallel batch-dynamic literature (Wang et al.,
// PAPERS.md) in structure and the Dallant–Iacono lower bounds in
// spirit: exact from-scratch recomputation on the same machine
// (Engine.Rebuild) is retained as the correctness oracle, and every
// incremental answer is required — and tested — to be bit-identical to
// it.
//
// The package has two layers: Engine (one scenario's points, leaf-slot
// maps, retained trees, and derived answer) and Registry (named live
// sessions with a capacity bound, idle-TTL eviction, and per-session
// locking; machine release is a callback so the HTTP layer can return
// pinned machines to its warm pool).
package session

import (
	"errors"
	"fmt"
	"sort"

	"dyncg/internal/core"
	"dyncg/internal/curve"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
)

// Typed errors of the session layer (the server maps them to HTTP
// statuses). Validation failures of points, batches, and configs wrap
// motion.ErrBadSystem; capacity failures wrap machine.ErrTooFewPEs.
var (
	// ErrNoSession: the session ID is unknown (never created, deleted,
	// or TTL-evicted).
	ErrNoSession = errors.New("session: no such session")
	// ErrTooManySessions: the registry is at its session capacity.
	ErrTooManySessions = errors.New("session: session limit reached")
	// ErrBroken: a previous update failed mid-recompute and the retained
	// trees may be inconsistent; the session only answers with this error
	// from then on (delete it and create a fresh one).
	ErrBroken = errors.New("session: broken by a failed update")
)

// Algo names a session algorithm — the subset of the serving surface
// whose intermediate state is envelope-shaped and therefore maintainable
// in retained merge trees.
type Algo string

// The session algorithms.
const (
	// ClosestPointSeq / FarthestPointSeq: Theorem 4.1 sequences against
	// a fixed origin point (one d²-curve tree).
	ClosestPointSeq  Algo = "closest-point-sequence"
	FarthestPointSeq Algo = "farthest-point-sequence"
	// ClosestPairSeq / FarthestPairSeq: the §6 pair sequences — closest
	// pair and diameter over time (one tree over all unordered pairs).
	ClosestPairSeq  Algo = "closest-pair-sequence"
	FarthestPairSeq Algo = "farthest-pair-sequence"
	// CubeEdge / SmallestEver / Containment: the §4.3 envelope-backed
	// measures (2d coordinate-envelope trees plus the shared derivation
	// helpers of internal/core).
	CubeEdge     Algo = "smallest-hypercube-edge"
	SmallestEver Algo = "smallest-ever-hypercube"
	Containment  Algo = "containment-intervals"
)

// ParseAlgo validates a wire algorithm name.
func ParseAlgo(s string) (Algo, error) {
	switch a := Algo(s); a {
	case ClosestPointSeq, FarthestPointSeq, ClosestPairSeq, FarthestPairSeq,
		CubeEdge, SmallestEver, Containment:
		return a, nil
	}
	return "", fmt.Errorf("session: unknown session algorithm %q: %w", s, motion.ErrBadSystem)
}

// structure classes: how an algorithm maps points to leaf slots.
const (
	classPoint = iota // one slot per non-origin point (d² curves)
	classPair         // one slot per unordered point pair
	classSpan         // one slot per point, in 2·d coordinate trees
)

func (a Algo) class() int {
	switch a {
	case ClosestPointSeq, FarthestPointSeq:
		return classPoint
	case ClosestPairSeq, FarthestPairSeq:
		return classPair
	}
	return classSpan
}

func (a Algo) kind() pieces.Kind {
	if a == FarthestPointSeq || a == FarthestPairSeq {
		return pieces.Max
	}
	return pieces.Min
}

// Op is one update operation kind.
type Op string

// The update operations.
const (
	OpInsert   Op = "insert"   // add a new trajectory; its assigned ID is returned
	OpDelete   Op = "delete"   // remove a trajectory by ID
	OpRetarget Op = "retarget" // replace the trajectory of an existing ID
)

// Delta is one element of an update batch. Point is required for insert
// and retarget; ID for delete and retarget.
type Delta struct {
	Op    Op
	ID    int
	Point motion.Point
}

// Config configures a session engine.
type Config struct {
	Algorithm Algo
	// Origin is the index (into the initial point list) of the query
	// point for the point-sequence algorithms. The origin gets a stable
	// ID like every other point but cannot be deleted.
	Origin int
	// Dims are the hyper-rectangle side lengths (containment-intervals).
	Dims []float64
	// Capacity is the maximum number of live points over the session's
	// lifetime; the machine and the leaf slots are sized for it once at
	// creation (0 = max(2·n, 8)).
	Capacity int
	// MaxDegree bounds the trajectory degree of every point ever in the
	// session (0 = max(observed initial degree, 1)). Inserts and
	// retargets beyond it are rejected.
	MaxDegree int
}

// PEs returns the PE prescription for a session: the Θ(λ(n, s))
// envelope allocation of Theorem 3.2 sized for the session's capacity
// (not its current population), so the pinned machine never needs to
// grow. topo selects the λ_M ("mesh") or λ_H bound.
func PEs(topo string, algo Algo, capacity, maxDegree int) int {
	k := maxDegree
	if k < 1 {
		k = 1
	}
	env := penvelope.CubePEs
	if topo == "mesh" {
		env = penvelope.MeshPEs
	}
	switch algo.class() {
	case classPair:
		return env(capacity*(capacity-1)/2, 2*k)
	case classSpan:
		return env(capacity, k+2)
	}
	return env(capacity, 2*k)
}

// Result is a session's maintained answer; the field matching the
// algorithm is set (Edge for CubeEdge, MinD/MinT for SmallestEver, …).
type Result struct {
	Neighbors []core.NeighborEvent // point sequences
	Pairs     []core.PairEvent     // pair sequences
	Edge      pieces.Piecewise     // smallest-hypercube-edge
	MinD      float64              // smallest-ever-hypercube
	MinT      float64
	Intervals []core.Interval // containment-intervals
}

// ApplyStats reports the incremental work of one update batch, summed
// over the session's retained trees.
type ApplyStats struct {
	DirtyLeaves int
	MergedNodes int
}

// Engine is one scenario's batch-dynamic state: the live points keyed by
// stable ID, the leaf-slot maps, the retained merge trees, and the
// derived answer. An Engine is bound to the machine it was created on
// and is not safe for concurrent use (the Registry serialises access).
type Engine struct {
	algo     Algo
	m        *machine.M
	d        int // coordinate dimension
	maxK     int // trajectory degree bound
	capacity int
	originID int // stable ID of the query point (classPoint), else -1
	dims     []float64

	pts    map[int]motion.Point
	nextID int

	// classPoint / classSpan slot maps.
	slotOf    map[int]int
	slotPt    []int // slot → point ID, -1 when free
	freeSlots []int // LIFO
	hwSlot    int   // high-water sequential allocator

	// classPair slot maps.
	pairSlotOf map[[2]int]int
	slotPair   [][2]int // slot → {a, b} with a < b, {-1, -1} when free
	freePairs  []int
	hwPair     int

	// trees: classPoint/classPair hold one tree; classSpan holds 2·d
	// (min₀, max₀, min₁, max₁, …).
	trees []*penvelope.MergeTree

	res     Result
	updates uint64
	broken  error
}

// New builds a session engine on machine m from the initial points —
// one from-scratch tree construction (the same cost as the one-shot
// algorithm) that leaves the intermediate state resident. The machine
// must satisfy PEs(topo, algo, capacity, maxDegree); undersized machines
// are rejected with machine.ErrTooFewPEs.
func New(m *machine.M, cfg Config, pts []motion.Point) (*Engine, error) {
	if _, err := ParseAlgo(string(cfg.Algorithm)); err != nil {
		return nil, err
	}
	sys, err := motion.NewSystem(pts)
	if err != nil {
		return nil, err
	}
	maxK := cfg.MaxDegree
	if maxK == 0 {
		maxK = sys.K
		if maxK < 1 {
			maxK = 1
		}
	}
	if sys.K > maxK {
		return nil, fmt.Errorf("session: initial system has degree %d, exceeding max_degree %d: %w",
			sys.K, maxK, motion.ErrBadSystem)
	}
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = 2 * len(pts)
		if capacity < 8 {
			capacity = 8
		}
	}
	if capacity < len(pts) {
		return nil, fmt.Errorf("session: capacity %d below initial population %d: %w",
			capacity, len(pts), motion.ErrBadSystem)
	}
	e := &Engine{
		algo:     cfg.Algorithm,
		m:        m,
		d:        sys.D,
		maxK:     maxK,
		capacity: capacity,
		originID: -1,
		pts:      make(map[int]motion.Point, len(pts)),
	}
	for _, p := range pts {
		e.pts[e.nextID] = p
		e.nextID++
	}
	switch e.algo.class() {
	case classPoint:
		if cfg.Origin < 0 || cfg.Origin >= len(pts) {
			return nil, fmt.Errorf("session: origin %d out of range: %w", cfg.Origin, motion.ErrBadSystem)
		}
		e.originID = cfg.Origin
		e.initPointSlots()
		fs := make([]pieces.Piecewise, e.capacity)
		for slot, id := range e.slotPt {
			if id >= 0 {
				fs[slot] = e.pointLeaf(slot, id, e.pts)
			}
		}
		tr, err := penvelope.NewMergeTree(m, fs, e.algo.kind())
		if err != nil {
			return nil, err
		}
		e.trees = []*penvelope.MergeTree{tr}
	case classPair:
		if len(pts) < 2 {
			return nil, fmt.Errorf("session: pair sequence needs at least two points: %w", motion.ErrBadSystem)
		}
		e.initPairSlots()
		fs := make([]pieces.Piecewise, e.capacity*(e.capacity-1)/2)
		for slot, pr := range e.slotPair {
			if pr[0] >= 0 {
				fs[slot] = e.pairLeaf(slot, pr, e.pts)
			}
		}
		tr, err := penvelope.NewMergeTree(m, fs, e.algo.kind())
		if err != nil {
			return nil, err
		}
		e.trees = []*penvelope.MergeTree{tr}
	default: // classSpan
		if e.algo == Containment {
			if len(cfg.Dims) != sys.D {
				return nil, fmt.Errorf("session: %d dims for %d-dimensional system: %w",
					len(cfg.Dims), sys.D, motion.ErrBadSystem)
			}
			e.dims = append([]float64(nil), cfg.Dims...)
		}
		e.initPointSlots()
		e.trees = make([]*penvelope.MergeTree, 2*e.d)
		for c := 0; c < e.d; c++ {
			fs := make([]pieces.Piecewise, e.capacity)
			for slot, id := range e.slotPt {
				if id >= 0 {
					fs[slot] = e.coordLeaf(slot, id, c, e.pts)
				}
			}
			lo, err := penvelope.NewMergeTree(m, fs, pieces.Min)
			if err != nil {
				return nil, err
			}
			hi, err := penvelope.NewMergeTree(m, fs, pieces.Max)
			if err != nil {
				return nil, err
			}
			e.trees[2*c] = lo
			e.trees[2*c+1] = hi
		}
	}
	res, err := e.deriveFrom(e.trees)
	if err != nil {
		return nil, err
	}
	e.res = res
	return e, nil
}

func (e *Engine) initPointSlots() {
	e.slotOf = make(map[int]int, e.capacity)
	e.slotPt = make([]int, e.capacity)
	for i := range e.slotPt {
		e.slotPt[i] = -1
	}
	for id := 0; id < e.nextID; id++ {
		if id == e.originID {
			continue
		}
		slot := e.hwSlot
		e.hwSlot++
		e.slotOf[id] = slot
		e.slotPt[slot] = id
	}
}

func (e *Engine) initPairSlots() {
	slots := e.capacity * (e.capacity - 1) / 2
	e.pairSlotOf = make(map[[2]int]int, slots)
	e.slotPair = make([][2]int, slots)
	for i := range e.slotPair {
		e.slotPair[i] = [2]int{-1, -1}
	}
	for a := 0; a < e.nextID; a++ {
		for b := a + 1; b < e.nextID; b++ {
			slot := e.hwPair
			e.hwPair++
			pr := [2]int{a, b}
			e.pairSlotOf[pr] = slot
			e.slotPair[slot] = pr
		}
	}
}

// pointLeaf is the d²-to-origin curve of point id, tagged with its slot
// (slots are the stable run IDs of the Lemma 3.1 machinery).
func (e *Engine) pointLeaf(slot, id int, pts map[int]motion.Point) pieces.Piecewise {
	d2 := pts[e.originID].DistSq(pts[id])
	return pieces.Total(curve.NewPoly(d2), slot)
}

func (e *Engine) pairLeaf(slot int, pr [2]int, pts map[int]motion.Point) pieces.Piecewise {
	d2 := pts[pr[0]].DistSq(pts[pr[1]])
	return pieces.Total(curve.NewPoly(d2), slot)
}

func (e *Engine) coordLeaf(slot, id, coord int, pts map[int]motion.Point) pieces.Piecewise {
	return pieces.Total(curve.NewPoly(pts[id].Coord[coord]), slot)
}

// Algorithm returns the session's algorithm.
func (e *Engine) Algorithm() Algo { return e.algo }

// Capacity returns the maximum live population.
func (e *Engine) Capacity() int { return e.capacity }

// MaxDegree returns the trajectory degree bound.
func (e *Engine) MaxDegree() int { return e.maxK }

// Origin returns the stable ID of the query point (-1 when the
// algorithm has none).
func (e *Engine) Origin() int { return e.originID }

// Updates returns the number of applied update batches.
func (e *Engine) Updates() uint64 { return e.updates }

// Points returns the live stable IDs in ascending order.
func (e *Engine) Points() []int {
	out := make([]int, 0, len(e.pts))
	for id := range e.pts {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Point returns the current trajectory of a live stable ID.
func (e *Engine) Point(id int) (motion.Point, bool) {
	p, ok := e.pts[id]
	return p, ok
}

// Result returns the maintained answer (valid after New and after every
// successful Apply; not a deep copy — callers must not mutate it).
func (e *Engine) Result() Result { return e.res }

// staged is the copy-on-write working state of one Apply: nothing in
// the engine mutates until the whole batch validates.
type staged struct {
	pts        map[int]motion.Point
	nextID     int
	slotOf     map[int]int
	slotPt     []int
	freeSlots  []int
	hwSlot     int
	pairSlotOf map[[2]int]int
	slotPair   [][2]int
	freePairs  []int
	hwPair     int
	dirty      map[int]bool // classPoint/classSpan: dirty point slots
	dirtyPair  map[int]bool
	inserted   []int
}

func (e *Engine) stage() *staged {
	s := &staged{
		pts:       make(map[int]motion.Point, len(e.pts)),
		nextID:    e.nextID,
		hwSlot:    e.hwSlot,
		hwPair:    e.hwPair,
		dirty:     make(map[int]bool),
		dirtyPair: make(map[int]bool),
	}
	for id, p := range e.pts {
		s.pts[id] = p
	}
	if e.slotOf != nil {
		s.slotOf = make(map[int]int, len(e.slotOf))
		for id, sl := range e.slotOf {
			s.slotOf[id] = sl
		}
		s.slotPt = append([]int(nil), e.slotPt...)
		s.freeSlots = append([]int(nil), e.freeSlots...)
	}
	if e.pairSlotOf != nil {
		s.pairSlotOf = make(map[[2]int]int, len(e.pairSlotOf))
		for pr, sl := range e.pairSlotOf {
			s.pairSlotOf[pr] = sl
		}
		s.slotPair = append([][2]int(nil), e.slotPair...)
		s.freePairs = append([]int(nil), e.freePairs...)
	}
	return s
}

func (s *staged) allocSlot() int {
	if n := len(s.freeSlots); n > 0 {
		slot := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return slot
	}
	slot := s.hwSlot
	s.hwSlot++
	return slot
}

func (s *staged) allocPair() int {
	if n := len(s.freePairs); n > 0 {
		slot := s.freePairs[n-1]
		s.freePairs = s.freePairs[:n-1]
		return slot
	}
	slot := s.hwPair
	s.hwPair++
	return slot
}

// liveIDs returns the staged live IDs in ascending order (determinism
// of slot allocation and dirty-set iteration).
func (s *staged) liveIDs() []int {
	out := make([]int, 0, len(s.pts))
	for id := range s.pts {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func (e *Engine) validatePoint(p motion.Point) error {
	if p.Dim() != e.d {
		return fmt.Errorf("session: point has dimension %d, want %d: %w", p.Dim(), e.d, motion.ErrBadSystem)
	}
	if deg := p.Degree(); deg > e.maxK {
		return fmt.Errorf("session: trajectory degree %d exceeds the session bound %d: %w",
			deg, e.maxK, motion.ErrBadSystem)
	}
	return nil
}

// Apply applies one update batch atomically: the whole batch is
// validated against a staged copy of the engine state first, so a
// rejected batch leaves the session untouched; then exactly the dirty
// leaf slots are rewritten and the retained trees redo their dirty merge
// paths. Returns the stable IDs assigned to the batch's inserts, in
// order. The machine's Stats delta across the call is the simulated
// incremental cost.
func (e *Engine) Apply(deltas []Delta) ([]int, ApplyStats, error) {
	var st ApplyStats
	if e.broken != nil {
		return nil, st, fmt.Errorf("%w: %v", ErrBroken, e.broken)
	}
	if len(deltas) == 0 {
		return nil, st, fmt.Errorf("session: empty update batch: %w", motion.ErrBadSystem)
	}
	s := e.stage()
	for i, d := range deltas {
		if err := e.applyStaged(s, d); err != nil {
			return nil, st, fmt.Errorf("session: update %d (%s): %w", i, d.Op, err)
		}
	}
	// Whole-batch validation of the final population: the §2.4 system
	// model (shared dimension, distinct initial positions) must hold for
	// the points that remain.
	final := make([]motion.Point, 0, len(s.pts))
	for _, id := range s.liveIDs() {
		final = append(final, s.pts[id])
	}
	if len(final) == 0 {
		return nil, st, fmt.Errorf("session: batch empties the session: %w", motion.ErrBadSystem)
	}
	if _, err := motion.NewSystem(final); err != nil {
		return nil, st, err
	}

	// Build the leaf updates from the staged final state.
	type treeUps struct{ ups []penvelope.TreeUpdate }
	updatesFor := make([]treeUps, len(e.trees))
	switch e.algo.class() {
	case classPoint:
		for _, slot := range sortedSlots(s.dirty) {
			var f pieces.Piecewise
			if id := s.slotPt[slot]; id >= 0 {
				f = e.pointLeafStaged(slot, id, s)
			}
			updatesFor[0].ups = append(updatesFor[0].ups, penvelope.TreeUpdate{Slot: slot, F: f})
		}
	case classPair:
		for _, slot := range sortedSlots(s.dirtyPair) {
			var f pieces.Piecewise
			if pr := s.slotPair[slot]; pr[0] >= 0 {
				f = e.pairLeaf(slot, pr, s.pts)
			}
			updatesFor[0].ups = append(updatesFor[0].ups, penvelope.TreeUpdate{Slot: slot, F: f})
		}
	default:
		for _, slot := range sortedSlots(s.dirty) {
			id := s.slotPt[slot]
			for c := 0; c < e.d; c++ {
				var f pieces.Piecewise
				if id >= 0 {
					f = e.coordLeaf(slot, id, c, s.pts)
				}
				u := penvelope.TreeUpdate{Slot: slot, F: f}
				updatesFor[2*c].ups = append(updatesFor[2*c].ups, u)
				updatesFor[2*c+1].ups = append(updatesFor[2*c+1].ups, u)
			}
		}
	}

	// Commit the staged maps, then run the incremental recomputes. A
	// failure past this point (a genuine λ under-allocation surfacing
	// mid-merge) leaves the trees inconsistent: mark the session broken.
	e.pts, e.nextID = s.pts, s.nextID
	e.slotOf, e.slotPt, e.freeSlots, e.hwSlot = s.slotOf, s.slotPt, s.freeSlots, s.hwSlot
	e.pairSlotOf, e.slotPair, e.freePairs, e.hwPair = s.pairSlotOf, s.slotPair, s.freePairs, s.hwPair
	for ti, tu := range updatesFor {
		if len(tu.ups) == 0 {
			continue
		}
		ts, err := e.trees[ti].Update(e.m, tu.ups)
		st.DirtyLeaves += ts.DirtyLeaves
		st.MergedNodes += ts.MergedNodes
		if err != nil {
			e.broken = err
			return nil, st, fmt.Errorf("%w: %v", ErrBroken, err)
		}
	}
	res, err := e.deriveFrom(e.trees)
	if err != nil {
		e.broken = err
		return nil, st, fmt.Errorf("%w: %v", ErrBroken, err)
	}
	e.res = res
	e.updates++
	return s.inserted, st, nil
}

// pointLeafStaged is pointLeaf against the staged origin and points.
func (e *Engine) pointLeafStaged(slot, id int, s *staged) pieces.Piecewise {
	d2 := s.pts[e.originID].DistSq(s.pts[id])
	return pieces.Total(curve.NewPoly(d2), slot)
}

// applyStaged applies one delta to the staged state, recording dirty
// slots. Insertions allocate slots; deletions free them (slot values are
// rebuilt from the final staged points afterwards, so insert-then-delete
// of the same ID within a batch nets out to an empty dirty slot write).
func (e *Engine) applyStaged(s *staged, d Delta) error {
	switch d.Op {
	case OpInsert:
		if err := e.validatePoint(d.Point); err != nil {
			return err
		}
		if len(s.pts) >= e.capacity {
			return fmt.Errorf("session: insert exceeds session capacity %d: %w", e.capacity, machine.ErrTooFewPEs)
		}
		id := s.nextID
		s.nextID++
		s.pts[id] = d.Point
		s.inserted = append(s.inserted, id)
		switch e.algo.class() {
		case classPair:
			for _, other := range s.liveIDs() {
				if other == id {
					continue
				}
				pr := [2]int{other, id}
				if other > id {
					pr = [2]int{id, other}
				}
				slot := s.allocPair()
				s.pairSlotOf[pr] = slot
				s.slotPair[slot] = pr
				s.dirtyPair[slot] = true
			}
		default:
			slot := s.allocSlot()
			s.slotOf[id] = slot
			s.slotPt[slot] = id
			s.dirty[slot] = true
		}
	case OpDelete:
		if _, ok := s.pts[d.ID]; !ok {
			return fmt.Errorf("session: point %d does not exist: %w", d.ID, motion.ErrBadSystem)
		}
		if d.ID == e.originID {
			return fmt.Errorf("session: cannot delete the origin point %d: %w", d.ID, motion.ErrBadSystem)
		}
		delete(s.pts, d.ID)
		switch e.algo.class() {
		case classPair:
			for _, other := range s.liveIDs() {
				pr := [2]int{other, d.ID}
				if other > d.ID {
					pr = [2]int{d.ID, other}
				}
				slot, ok := s.pairSlotOf[pr]
				if !ok {
					continue
				}
				delete(s.pairSlotOf, pr)
				s.slotPair[slot] = [2]int{-1, -1}
				s.freePairs = append(s.freePairs, slot)
				s.dirtyPair[slot] = true
			}
		default:
			slot := s.slotOf[d.ID]
			delete(s.slotOf, d.ID)
			s.slotPt[slot] = -1
			s.freeSlots = append(s.freeSlots, slot)
			s.dirty[slot] = true
		}
	case OpRetarget:
		if _, ok := s.pts[d.ID]; !ok {
			return fmt.Errorf("session: point %d does not exist: %w", d.ID, motion.ErrBadSystem)
		}
		if err := e.validatePoint(d.Point); err != nil {
			return err
		}
		s.pts[d.ID] = d.Point
		switch e.algo.class() {
		case classPair:
			for _, other := range s.liveIDs() {
				if other == d.ID {
					continue
				}
				pr := [2]int{other, d.ID}
				if other > d.ID {
					pr = [2]int{d.ID, other}
				}
				if slot, ok := s.pairSlotOf[pr]; ok {
					s.dirtyPair[slot] = true
				}
			}
		default:
			if d.ID == e.originID {
				// The query trajectory changed: every d² leaf is dirty.
				for slot, id := range s.slotPt {
					if id >= 0 {
						s.dirty[slot] = true
					}
				}
			} else {
				s.dirty[s.slotOf[d.ID]] = true
			}
		}
	default:
		return fmt.Errorf("session: unknown op %q: %w", d.Op, motion.ErrBadSystem)
	}
	return nil
}

// deriveFrom converts tree roots into the session's answer via the same
// derivation code the one-shot algorithms use (internal/core).
func (e *Engine) deriveFrom(trees []*penvelope.MergeTree) (Result, error) {
	var res Result
	switch e.algo.class() {
	case classPoint:
		root := trees[0].Root()
		res.Neighbors = make([]core.NeighborEvent, len(root))
		for i, p := range root {
			res.Neighbors[i] = core.NeighborEvent{Point: e.slotPt[p.ID], Lo: p.Lo, Hi: p.Hi}
		}
	case classPair:
		root := trees[0].Root()
		res.Pairs = make([]core.PairEvent, len(root))
		for i, p := range root {
			pr := e.slotPair[p.ID]
			res.Pairs[i] = core.PairEvent{A: pr[0], B: pr[1], Lo: p.Lo, Hi: p.Hi}
		}
	default:
		spans := make([]pieces.Piecewise, e.d)
		for c := 0; c < e.d; c++ {
			diff, err := core.SpanFromEnvelopes(e.m, trees[2*c+1].Root(), trees[2*c].Root(), c)
			if err != nil {
				return res, err
			}
			spans[c] = diff
		}
		switch e.algo {
		case Containment:
			ivs, err := core.ContainmentFromSpans(e.m, spans, e.dims)
			if err != nil {
				return res, err
			}
			res.Intervals = ivs
		default:
			edge, err := core.EdgeFromSpans(e.m, spans)
			if err != nil {
				return res, err
			}
			res.Edge = edge
			if e.algo == SmallestEver {
				dmin, tmin, err := core.MinimizeEdge(e.m, edge)
				if err != nil {
					return res, err
				}
				res.MinD, res.MinT = dmin, tmin
			}
		}
	}
	return res, nil
}

// Rebuild recomputes the session's answer from scratch on the same
// machine — fresh merge trees over the current leaves, then the same
// derivation — without touching the retained state. It is the exact
// correctness oracle of the batch-dynamic design: Apply's maintained
// result must be bit-identical to it.
func (e *Engine) Rebuild() (Result, error) {
	if e.broken != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrBroken, e.broken)
	}
	fresh := make([]*penvelope.MergeTree, len(e.trees))
	for i, tr := range e.trees {
		leaves := make([]pieces.Piecewise, tr.Slots())
		for s := 0; s < tr.Slots(); s++ {
			leaves[s] = tr.Leaf(s)
		}
		var err error
		fresh[i], err = penvelope.NewMergeTree(e.m, leaves, treeKind(e.algo, i))
		if err != nil {
			return Result{}, err
		}
	}
	return e.deriveFrom(fresh)
}

// treeKind returns the envelope kind of tree index i under the engine's
// tree layout.
func treeKind(a Algo, i int) pieces.Kind {
	if a.class() == classSpan {
		if i%2 == 1 {
			return pieces.Max
		}
		return pieces.Min
	}
	return a.kind()
}

func sortedSlots(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
