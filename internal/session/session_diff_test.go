package session

// The differential battery of the batch-dynamic contract: random update
// batches driven through Engine.Apply must leave a maintained answer
// bit-identical to Engine.Rebuild — a from-scratch reconstruction on the
// same machine — for every session algorithm, on both topologies, at
// batch sizes from 1 to 64. Runs under -race in CI (scripts/check.sh).

import (
	"math/rand"
	"testing"
)

// deltaGen generates valid random batches against a mirror of the
// engine's ID state (IDs are deterministic: initial points get 0..n-1,
// inserts continue the sequence).
type deltaGen struct {
	r      *rand.Rand
	live   map[int]bool
	origin int // -1 when the algorithm has none
	nextID int
	cap    int
	d, k   int
}

func newDeltaGen(r *rand.Rand, n, capacity, d, k, origin int) *deltaGen {
	g := &deltaGen{r: r, live: make(map[int]bool), origin: origin, nextID: n, cap: capacity, d: d, k: k}
	for i := 0; i < n; i++ {
		g.live[i] = true
	}
	return g
}

func (g *deltaGen) pick(excludeOrigin bool) int {
	ids := make([]int, 0, len(g.live))
	for id := range g.live {
		if excludeOrigin && id == g.origin {
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return -1
	}
	// Deterministic order before sampling (map iteration is random).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids[g.r.Intn(len(ids))]
}

func (g *deltaGen) batch(size int) []Delta {
	ds := make([]Delta, 0, size)
	for len(ds) < size {
		switch g.r.Intn(3) {
		case 0: // insert
			if len(g.live) >= g.cap {
				continue
			}
			ds = append(ds, Delta{Op: OpInsert, Point: randPoint(g.r, g.d, g.k)})
			g.live[g.nextID] = true
			g.nextID++
		case 1: // delete (keep at least two points so every algorithm stays legal)
			if len(g.live) <= 2 {
				continue
			}
			id := g.pick(true)
			if id < 0 {
				continue
			}
			ds = append(ds, Delta{Op: OpDelete, ID: id})
			delete(g.live, id)
		default: // retarget (origin included — the all-dirty path)
			id := g.pick(false)
			ds = append(ds, Delta{Op: OpRetarget, ID: id, Point: randPoint(g.r, g.d, g.k)})
		}
	}
	return ds
}

func diffConfig(algo Algo, capacity, d int) Config {
	cfg := Config{Algorithm: algo, Capacity: capacity}
	if algo == Containment {
		cfg.Dims = make([]float64, d)
		for i := range cfg.Dims {
			cfg.Dims[i] = 8 + float64(i)
		}
	}
	return cfg
}

// TestSessionDifferential: moderate capacities, every algorithm, both
// topologies, random batches of size 1–6.
func TestSessionDifferential(t *testing.T) {
	const k = 1
	cases := []struct {
		algo     Algo
		capacity int
		d        int
	}{
		{ClosestPointSeq, 12, 2},
		{FarthestPointSeq, 12, 2},
		{ClosestPairSeq, 8, 2},
		{FarthestPairSeq, 8, 2},
		{CubeEdge, 12, 2},
		{SmallestEver, 12, 3},
		{Containment, 12, 2},
	}
	for _, topo := range []string{"hypercube", "mesh"} {
		for _, tc := range cases {
			tc := tc
			t.Run(topo+"/"+string(tc.algo), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(len(tc.algo)) + int64(tc.capacity)))
				n := tc.capacity / 2
				pts := randPoints(r, n, tc.d, k)
				m := newTestMachine(t, topo, tc.algo, tc.capacity, k)
				e, err := New(m, diffConfig(tc.algo, tc.capacity, tc.d), pts)
				if err != nil {
					t.Fatal(err)
				}
				// The engine's very first answer must already match.
				res, err := e.Rebuild()
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, e.Result(), res, "initial")
				g := newDeltaGen(r, n, tc.capacity, tc.d, k, e.Origin())
				rounds := 8
				if topo == "mesh" {
					rounds = 4 // mesh routing is slower to simulate
				}
				for round := 0; round < rounds; round++ {
					b := g.batch(1 + r.Intn(6))
					if _, _, err := e.Apply(b); err != nil {
						t.Fatalf("round %d: Apply(%d deltas): %v", round, len(b), err)
					}
					res, err := e.Rebuild()
					if err != nil {
						t.Fatalf("round %d: Rebuild: %v", round, err)
					}
					sameResult(t, e.Result(), res, "round")
				}
			})
		}
	}
}

// TestSessionDifferentialLargeBatches: batch sizes up to 64 against a
// high-capacity point-sequence session (the issue's upper bound).
func TestSessionDifferentialLargeBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("large-batch battery skipped in -short mode")
	}
	const capacity, d, k = 96, 2, 1
	r := rand.New(rand.NewSource(640))
	pts := randPoints(r, 48, d, k)
	m := newTestMachine(t, "hypercube", ClosestPointSeq, capacity, k)
	e, err := New(m, Config{Algorithm: ClosestPointSeq, Origin: 0, Capacity: capacity}, pts)
	if err != nil {
		t.Fatal(err)
	}
	g := newDeltaGen(r, 48, capacity, d, k, 0)
	for _, size := range []int{1, 4, 16, 64} {
		b := g.batch(size)
		if _, _, err := e.Apply(b); err != nil {
			t.Fatalf("batch of %d: %v", size, err)
		}
		res, err := e.Rebuild()
		if err != nil {
			t.Fatalf("batch of %d: Rebuild: %v", size, err)
		}
		sameResult(t, e.Result(), res, "large batch")
	}
}
