package session

// FuzzSessionUpdates drives byte-derived update batches through a
// session engine and cross-checks every accepted batch against the
// from-scratch oracle — the fuzzing arm of the differential battery.
// Rejected batches must be atomic (the maintained answer unchanged).

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
)

var fuzzAlgos = []Algo{
	ClosestPointSeq, FarthestPointSeq, ClosestPairSeq, FarthestPairSeq,
	CubeEdge, SmallestEver, Containment,
}

// fuzzDelta decodes one delta from three opcode bytes: operation,
// target selector, and a coefficient seed for fresh trajectories.
func fuzzDelta(op, target, coef byte, d, k int) Delta {
	r := rand.New(rand.NewSource(int64(coef)*7919 + 13))
	switch op % 4 {
	case 0:
		return Delta{Op: OpInsert, Point: randPoint(r, d, k)}
	case 1:
		return Delta{Op: OpDelete, ID: int(target % 16)}
	case 2:
		return Delta{Op: OpRetarget, ID: int(target % 16), Point: randPoint(r, d, k)}
	default:
		// Occasionally malformed: wrong dimension or degree, exercising
		// the rejection path.
		return Delta{Op: OpRetarget, ID: int(target % 16), Point: randPoint(r, d+1, k+2)}
	}
}

func FuzzSessionUpdates(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 1, 0, 1, 2, 1, 3, 4})
	f.Add(int64(2), []byte{2, 1, 0, 0, 5, 5, 1, 2, 9, 2, 0, 7})
	f.Add(int64(3), []byte{4, 2, 3, 3, 1, 1, 0, 8, 8, 1, 9, 9, 2, 2, 2})
	f.Add(int64(4), []byte{6, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) == 0 || len(ops) > 96 {
			t.Skip()
		}
		algo := fuzzAlgos[int(ops[0])%len(fuzzAlgos)]
		const capacity, d, k = 6, 2, 1
		r := rand.New(rand.NewSource(seed))
		pts := randPoints(r, 3, d, k)
		m := machine.New(hypercube.MustNew(PEs("hypercube", algo, capacity, k)))
		cfg := diffConfig(algo, capacity, d)
		e, err := New(m, cfg, pts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		// Slice the remaining bytes into batches of up to 4 deltas.
		body := ops[1:]
		for len(body) >= 3 {
			nb := 1 + int(body[0])%4
			var batch []Delta
			for i := 0; i < nb && len(body) >= 3; i++ {
				batch = append(batch, fuzzDelta(body[0], body[1], body[2], d, k))
				body = body[3:]
			}
			before := e.Result()
			if _, _, err := e.Apply(batch); err != nil {
				if !reflect.DeepEqual(e.Result(), before) {
					t.Fatalf("rejected batch mutated the result: %v", err)
				}
				// Expected rejections: model violations and capacity. A
				// broken session would be a real bug.
				if !errors.Is(err, motion.ErrBadSystem) && !errors.Is(err, machine.ErrTooFewPEs) {
					t.Fatalf("Apply failed outside the validation contract: %v", err)
				}
				continue
			}
			res, err := e.Rebuild()
			if err != nil {
				t.Fatalf("Rebuild: %v", err)
			}
			if !reflect.DeepEqual(e.Result(), res) {
				t.Fatalf("incremental result diverged from rebuild\n got: %+v\nwant: %+v", e.Result(), res)
			}
		}
	})
}
