package session

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dyncg/internal/machine"
)

// Session is one live registered scenario: an engine pinned to its
// machine, plus the bookkeeping the registry and the serving layer need.
// All engine access goes through Do, which serialises on the per-session
// mutex; the machine stays owned by the session until Close releases it.
type Session struct {
	ID      string
	Eng     *Engine
	M       *machine.M
	Topo    string
	PEs     int
	Workers int
	Created time.Time

	mu       sync.Mutex
	closed   bool
	lastUsed atomic.Int64 // unix nanos; written by Do, read by Sweep
}

// Do runs fn with exclusive access to the session, refreshing its idle
// deadline. Returns ErrNoSession if the session was closed concurrently
// (deleted or TTL-evicted between lookup and lock).
func (s *Session) Do(now time.Time, fn func(*Session) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrNoSession
	}
	s.lastUsed.Store(now.UnixNano())
	return fn(s)
}

// close releases the session's machine exactly once.
func (s *Session) close(release func(*Session)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if release != nil {
		release(s)
	}
}

// Registry holds the live sessions of one server: a capacity bound, an
// idle TTL, and a release callback invoked exactly once per session when
// it is deleted or evicted (the HTTP layer uses it to WarmReset the
// pinned machine and return it to the warm pool).
//
// Expiry is swept lazily — Sweep is called from the serving paths rather
// than a janitor goroutine, so a registry adds no background goroutines
// (the churn accounting test relies on this).
type Registry struct {
	max     int
	ttl     time.Duration
	release func(*Session)
	now     func() time.Time // test seam

	// idCheck, when set, is a predicate every minted session ID must
	// satisfy; Add re-mints the random suffix until it passes. The
	// serving layer's shard router installs "this ID consistent-hashes
	// back to my shard", so routing a session ID always finds the shard
	// holding its pinned machine.
	idCheck func(string) bool

	// idSalt, when set, is embedded in every minted ID ("s-<salt>-…").
	// Fleet workers set their member ID here so session IDs minted by
	// different processes can never collide — each process's (salt,
	// seq) pair is unique fleet-wide even though the seq counters are
	// process-local.
	idSalt string

	mu        sync.Mutex
	sessions  map[string]*Session
	seq       uint64
	evictions atomic.Uint64
}

// SetIDCheck installs the ID predicate. Call before serving begins:
// installation is not synchronized with concurrent Add.
func (r *Registry) SetIDCheck(check func(string) bool) { r.idCheck = check }

// SetIDPrefix salts minted session IDs with the given member ID. Call
// before serving begins: installation is not synchronized with
// concurrent Add.
func (r *Registry) SetIDPrefix(member string) { r.idSalt = member }

// NewRegistry builds a registry. max ≤ 0 means unbounded; ttl ≤ 0
// disables idle eviction; release may be nil.
func NewRegistry(max int, ttl time.Duration, release func(*Session)) *Registry {
	return &Registry{
		max:      max,
		ttl:      ttl,
		release:  release,
		now:      time.Now,
		sessions: make(map[string]*Session),
	}
}

// Add registers a new session over an engine and its pinned machine,
// assigning the ID. Fails with ErrTooManySessions at capacity (sweep
// first: an expired session should never crowd out a new one).
func (r *Registry) Add(eng *Engine, m *machine.M, topo string, workers int) (*Session, error) {
	r.Sweep()
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.max > 0 && len(r.sessions) >= r.max {
		return nil, fmt.Errorf("%w (max %d)", ErrTooManySessions, r.max)
	}
	r.seq++
	salt := ""
	if r.idSalt != "" {
		salt = r.idSalt + "-"
	}
	var id string
	for attempt := 0; ; attempt++ {
		var rnd [4]byte
		if _, err := rand.Read(rnd[:]); err != nil {
			return nil, fmt.Errorf("session: id generation: %w", err)
		}
		id = fmt.Sprintf("s-%s%d-%s", salt, r.seq, hex.EncodeToString(rnd[:]))
		if r.idCheck == nil || r.idCheck(id) {
			break
		}
		// Each mint passes an n-shard check with probability ~1/n, so
		// even a wide fleet converges in a handful of draws; the cap
		// only guards against a broken predicate.
		if attempt >= 256 {
			return nil, fmt.Errorf("session: id minting failed the shard check after %d attempts", attempt+1)
		}
	}
	s := &Session{
		ID:      id,
		Eng:     eng,
		M:       m,
		Topo:    topo,
		PEs:     m.Size(),
		Workers: workers,
		Created: now,
	}
	s.lastUsed.Store(now.UnixNano())
	r.sessions[s.ID] = s
	return s, nil
}

// Do looks up a session and runs fn with exclusive access to it.
func (r *Registry) Do(id string, fn func(*Session) error) error {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	return s.Do(r.now(), fn)
}

// Remove deletes a session and releases its machine.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	s, ok := r.sessions[id]
	if ok {
		delete(r.sessions, id)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	s.close(r.release)
	return nil
}

// Sweep evicts every session idle past the TTL and returns how many. The
// expired set is collected under the registry lock but closed outside
// it, so a slow release callback never blocks lookups.
func (r *Registry) Sweep() int {
	if r.ttl <= 0 {
		return 0
	}
	deadline := r.now().Add(-r.ttl).UnixNano()
	var expired []*Session
	r.mu.Lock()
	for id, s := range r.sessions {
		if s.lastUsed.Load() < deadline {
			delete(r.sessions, id)
			expired = append(expired, s)
		}
	}
	r.mu.Unlock()
	for _, s := range expired {
		s.close(r.release)
		r.evictions.Add(1)
	}
	return len(expired)
}

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Evictions returns the total TTL evictions since creation.
func (r *Registry) Evictions() uint64 { return r.evictions.Load() }

// Close releases every session (server shutdown).
func (r *Registry) Close() {
	r.mu.Lock()
	all := make([]*Session, 0, len(r.sessions))
	for id, s := range r.sessions {
		delete(r.sessions, id)
		all = append(all, s)
	}
	r.mu.Unlock()
	for _, s := range all {
		s.close(r.release)
	}
}
