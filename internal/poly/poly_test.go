package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestZeroPolynomial(t *testing.T) {
	var z Poly
	if !z.IsZero() || z.Degree() != -1 || z.Eval(3) != 0 {
		t.Fatalf("zero polynomial misbehaves: deg=%d eval=%v", z.Degree(), z.Eval(3))
	}
	if got := New(0, 0, 0); !got.IsZero() {
		t.Fatalf("New(0,0,0) not zero: %v", got)
	}
	if z.String() != "0" {
		t.Fatalf("zero String = %q", z.String())
	}
}

func TestEvalHorner(t *testing.T) {
	p := New(1, -2, 3) // 3t² − 2t + 1
	cases := []struct{ t, want float64 }{
		{0, 1}, {1, 2}, {2, 9}, {-1, 6},
	}
	for _, c := range cases {
		if got := p.Eval(c.t); got != c.want {
			t.Errorf("p(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestEvalAtInfinity(t *testing.T) {
	if got := New(5, 0, -1).Eval(math.Inf(1)); !math.IsInf(got, -1) {
		t.Errorf("(-t²+5)(∞) = %v, want -Inf", got)
	}
	if got := New(5, 2).Eval(math.Inf(-1)); !math.IsInf(got, -1) {
		t.Errorf("(2t+5)(-∞) = %v, want -Inf", got)
	}
	if got := Constant(7).Eval(math.Inf(1)); got != 7 {
		t.Errorf("const(∞) = %v, want 7", got)
	}
}

func TestArithmetic(t *testing.T) {
	p := New(1, 2)     // 2t+1
	q := New(-1, 0, 1) // t²−1
	if got, want := p.Add(q), New(0, 2, 1); !got.Equal(want) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := p.Mul(q), New(-1, -2, 1, 2); !got.Equal(want) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if got, want := q.Sub(q), Poly(nil); !got.Equal(want) {
		t.Errorf("Sub self = %v, want 0", got)
	}
	if got, want := p.Neg(), New(-1, -2); !got.Equal(want) {
		t.Errorf("Neg = %v, want %v", got, want)
	}
}

func randPoly(r *rand.Rand, maxDeg int) Poly {
	d := r.Intn(maxDeg + 1)
	c := make(Poly, d+1)
	for i := range c {
		c[i] = r.NormFloat64() * 3
	}
	return c.normalize()
}

// Property: ring identities hold pointwise at random sample times.
func TestRingAxiomsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64, at float64) bool {
		rr := rand.New(rand.NewSource(seed))
		p, q, s := randPoly(rr, 5), randPoly(rr, 5), randPoly(rr, 5)
		x := math.Mod(at, 4)
		lhs := p.Mul(q.Add(s)).Eval(x)
		rhs := p.Mul(q).Add(p.Mul(s)).Eval(x)
		return almostEq(lhs, rhs, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestShift(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		p := randPoly(r, 6)
		a := r.NormFloat64()
		q := p.Shift(a)
		x := r.NormFloat64() * 2
		if !almostEq(q.Eval(x), p.Eval(x+a), 1e-8) {
			t.Fatalf("Shift mismatch: p=%v a=%v x=%v got=%v want=%v",
				p, a, x, q.Eval(x), p.Eval(x+a))
		}
	}
}

func TestDerivative(t *testing.T) {
	p := New(1, 2, 3, 4) // 4t³+3t²+2t+1
	want := New(2, 6, 12)
	if got := p.Derivative(); !got.Equal(want) {
		t.Errorf("Derivative = %v, want %v", got, want)
	}
	if got := Constant(5).Derivative(); !got.IsZero() {
		t.Errorf("d/dt const = %v, want 0", got)
	}
}

func TestFromRootsRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(4)
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(r.Intn(9)) * 0.5 // well-separated-ish roots
		}
		p := FromRoots(want...)
		got := p.Roots(-1, 10)
		// Every distinct wanted root must appear.
		seen := map[float64]bool{}
		for _, w := range want {
			found := false
			for _, g := range got {
				if almostEq(g, w, 1e-6) {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: root %v of %v not found in %v", trial, w, p, got)
			}
			seen[w] = true
		}
		if len(got) > n {
			t.Fatalf("trial %d: too many roots %v for %v", trial, got, p)
		}
		_ = seen
	}
}

func TestRootsRespectInterval(t *testing.T) {
	p := FromRoots(-2, 1, 3)
	got := p.RootsNonNeg()
	if len(got) != 2 || !almostEq(got[0], 1, 1e-9) || !almostEq(got[1], 3, 1e-9) {
		t.Fatalf("RootsNonNeg = %v, want [1 3]", got)
	}
}

func TestDoubleRoot(t *testing.T) {
	p := FromRoots(2, 2) // (t−2)²
	got := p.Roots(0, 10)
	if len(got) != 1 || !almostEq(got[0], 2, 1e-5) {
		t.Fatalf("double root: got %v, want [2]", got)
	}
}

func TestQuadraticStability(t *testing.T) {
	// b² ≫ 4ac: naive formula loses the small root.
	p := New(1, -1e8, 1) // t² − 1e8·t + 1; roots ≈ 1e-8 and 1e8
	got := p.Roots(0, math.Inf(1))
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if !almostEq(got[0], 1e-8, 1e-6) {
		t.Errorf("small root = %v, want 1e-8", got[0])
	}
}

func TestHighDegreeRoots(t *testing.T) {
	// Degree 8 with known roots — exercises the recursive isolation.
	roots := []float64{0.5, 1, 2, 3, 5, 7, 8, 9}
	p := FromRoots(roots...)
	got := p.Roots(0, 20)
	if len(got) != len(roots) {
		t.Fatalf("got %d roots %v, want %d", len(got), got, len(roots))
	}
	for i := range roots {
		if !almostEq(got[i], roots[i], 1e-5) {
			t.Errorf("root %d = %v, want %v", i, got[i], roots[i])
		}
	}
}

func TestSignAtInfinityAndCompare(t *testing.T) {
	if New(100, -1).SignAtInfinity() != -1 {
		t.Error("−t+100 should be negative at ∞")
	}
	if New(0, 0, 2).CompareAtInfinity(New(1e9, 1)) != 1 {
		t.Error("2t² should exceed t+1e9 at ∞")
	}
	if New(1, 2).CompareAtInfinity(New(1, 2)) != 0 {
		t.Error("identical polynomials compare equal at ∞")
	}
}

// Property: CompareAtInfinity agrees with evaluation at a huge time.
func TestCompareAtInfinityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randPoly(r, 4), randPoly(r, 4)
		c := p.CompareAtInfinity(q)
		if c == 0 {
			return p.Sub(q).IsZero()
		}
		// Beyond the Cauchy bound of p−q the sign is settled.
		T := p.Sub(q).CauchyRootBound() + 10
		diff := p.Eval(T) - q.Eval(T)
		return (diff < 0) == (c < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionTimes(t *testing.T) {
	f := New(0, 0, 1) // t²
	g := New(2, 1)    // t+2
	got := f.IntersectionTimes(g, 0, math.Inf(1))
	if len(got) != 1 || !almostEq(got[0], 2, 1e-9) {
		t.Fatalf("t²=t+2 on [0,∞): got %v, want [2]", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{New(1, -2, 3), "3t^2 - 2t + 1"},
		{New(0, 1), "t"},
		{New(-1), "-1"},
		{New(0, 0, -1), "-t^2"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", []float64(c.p), got, c.want)
		}
	}
}

func TestCauchyBoundContainsRoots(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p := randPoly(r, 6)
		if p.Degree() < 1 {
			continue
		}
		b := p.CauchyRootBound()
		for _, root := range p.Roots(-b-1, b+1) {
			if math.Abs(root) > b+1e-9 {
				t.Fatalf("root %v outside Cauchy bound %v for %v", root, b, p)
			}
		}
	}
}
