package poly

import (
	"math"
	"sort"
)

// residualTol is the relative residual below which an evaluation is
// considered an exact zero of the polynomial.
const residualTol = 1e-9

// scaleAt returns Σ|c_i|·|t|^i, the natural magnitude scale of evaluating
// p at t, used for residual-relative zero tests.
func (p Poly) scaleAt(t float64) float64 {
	s := 0.0
	a := math.Abs(t)
	pow := 1.0
	for _, c := range p {
		s += math.Abs(c) * pow
		pow *= a
	}
	if s == 0 {
		return 1
	}
	return s
}

// SignAt returns the sign of p(t) with a residual-relative zero tolerance:
// −1, 0, or +1. t may be +Inf.
func (p Poly) SignAt(t float64) int {
	if math.IsInf(t, 1) {
		return p.SignAtInfinity()
	}
	v := p.Eval(t)
	if math.Abs(v) <= residualTol*p.scaleAt(t) {
		return 0
	}
	if v < 0 {
		return -1
	}
	return 1
}

// Roots returns all real roots of p on the interval [lo, hi], in increasing
// order, with multiple roots reported once. hi may be math.Inf(1), in which
// case the Cauchy root bound truncates the search. For the (numerically)
// zero polynomial it returns nil; callers that care about identical
// functions must test IsZero first, as the paper's algorithms do when they
// distinguish "f ≡ g on an interval" from crossings (§3).
func (p Poly) Roots(lo, hi float64) []float64 {
	q := p.normalize()
	if len(q) <= 1 {
		return nil
	}
	bound := q.CauchyRootBound() + 1
	effHi := hi
	if math.IsInf(hi, 1) || hi > bound {
		effHi = bound
	}
	if lo < -bound {
		lo = -bound
	}
	if lo > effHi {
		return nil
	}
	roots := q.rootsBounded(lo, effHi)
	sort.Float64s(roots)
	return dedupe(roots, lo, effHi)
}

// RootsNonNeg returns the real roots of p on [0, ∞).
func (p Poly) RootsNonNeg() []float64 { return p.Roots(0, math.Inf(1)) }

// rootsBounded finds roots on the finite interval [lo, hi] by recursive
// critical-point isolation: the roots of p′ split [lo, hi] into intervals
// on which p is monotonic, and a sign change on a monotonic interval pins
// down exactly one root, found by bisection.
func (p Poly) rootsBounded(lo, hi float64) []float64 {
	d := p.Degree()
	switch {
	case d <= 0:
		return nil
	case d == 1:
		r := -p.Coef(0) / p.Coef(1)
		if r >= lo && r <= hi {
			return []float64{r}
		}
		return nil
	case d == 2:
		return quadraticRoots(p.Coef(2), p.Coef(1), p.Coef(0), lo, hi)
	}
	crit := p.Derivative().rootsBounded(lo, hi)
	sort.Float64s(crit)
	breaks := make([]float64, 0, len(crit)+2)
	breaks = append(breaks, lo)
	for _, c := range crit {
		if c > breaks[len(breaks)-1] && c < hi {
			breaks = append(breaks, c)
		}
	}
	breaks = append(breaks, hi)

	var roots []float64
	// Roots of even multiplicity sit exactly at critical points and do not
	// produce a sign change, so every break point is tested directly with a
	// Taylor-remainder near-root criterion.
	for _, c := range breaks {
		if p.nearRoot(c) {
			roots = append(roots, c)
		}
	}
	for i := 0; i+1 < len(breaks); i++ {
		a, b := breaks[i], breaks[i+1]
		sa, sb := p.SignAt(a), p.SignAt(b)
		if sa*sb < 0 {
			roots = append(roots, p.bisect(a, b, sa))
		}
	}
	return roots
}

// nearRoot reports whether p has a root within a small neighbourhood of c:
// it tests |p(c)| against the Taylor bound Σ_j |p^(j)(c)|·err^j / j!, which
// is the largest |p(c)| can be if p vanishes somewhere within err of c.
func (p Poly) nearRoot(c float64) bool {
	if p.SignAt(c) == 0 {
		return true
	}
	err := 1e-9 * (1 + math.Abs(c))
	bound := 0.0
	d := p.Derivative()
	fact := 1.0
	pow := err
	for j := 1; len(d) > 0; j++ {
		fact *= float64(j)
		bound += math.Abs(d.Eval(c)) * pow / fact
		pow *= err
		d = d.Derivative()
	}
	return math.Abs(p.Eval(c)) <= 2*bound
}

// bisect finds the unique root in (a, b) given p(a) has sign sa ≠ 0 and
// p(b) has the opposite sign.
func (p Poly) bisect(a, b float64, sa int) float64 {
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		if m <= a || m >= b {
			break
		}
		v := p.Eval(m)
		switch {
		case v == 0:
			return m
		case (v < 0) == (sa < 0):
			a = m
		default:
			b = m
		}
		if b-a <= 1e-15*(1+math.Abs(a)+math.Abs(b)) {
			break
		}
	}
	return 0.5 * (a + b)
}

// quadraticRoots solves a·t² + b·t + c = 0 on [lo, hi] with the
// numerically stable citardauq formulation.
func quadraticRoots(a, b, c, lo, hi float64) []float64 {
	disc := b*b - 4*a*c
	scale := b*b + math.Abs(4*a*c)
	if scale == 0 {
		// b = 0 and a·c = 0 with a ≠ 0 (degree 2), so the only root is 0.
		if lo <= 0 && 0 <= hi {
			return []float64{0}
		}
		return nil
	}
	if disc < -residualTol*scale {
		return nil
	}
	var r1, r2 float64
	if disc <= residualTol*scale {
		r := -b / (2 * a)
		r1, r2 = r, r
	} else {
		s := math.Sqrt(disc)
		q := -0.5 * (b + math.Copysign(s, b))
		r1 = q / a
		r2 = c / q
		if r1 > r2 {
			r1, r2 = r2, r1
		}
	}
	var out []float64
	if r1 >= lo && r1 <= hi {
		out = append(out, r1)
	}
	if r2 != r1 && r2 >= lo && r2 <= hi {
		out = append(out, r2)
	}
	return out
}

// dedupe merges root estimates that coincide to within tolerance and
// clamps them to [lo, hi].
func dedupe(roots []float64, lo, hi float64) []float64 {
	if len(roots) == 0 {
		return nil
	}
	out := roots[:1]
	for _, r := range roots[1:] {
		last := out[len(out)-1]
		if r-last > 1e-10*(1+math.Abs(r)) {
			out = append(out, r)
		}
	}
	for i, r := range out {
		if r < lo {
			out[i] = lo
		}
		if r > hi {
			out[i] = hi
		}
	}
	return out
}

// IntersectionTimes returns the times t ∈ [lo, hi] at which p(t) = q(t).
// For distinct polynomials of degree ≤ s there are at most s such times
// (§2.5); identical polynomials yield nil and must be detected via Equal.
func (p Poly) IntersectionTimes(q Poly, lo, hi float64) []float64 {
	return p.Sub(q).Roots(lo, hi)
}
