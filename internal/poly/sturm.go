package poly

import "math"

// Sturm sequences give an independent, division-based way to *count*
// distinct real roots on an interval. The envelope algorithms rely on
// the bisection-based isolation in roots.go; the Sturm counter exists to
// cross-validate it (property tests check the two agree), in the spirit
// of the paper's requirement that root finding be an exact Θ(1)
// primitive (§6, property 4).

// Div returns the quotient and remainder of p / q (polynomial long
// division). It panics if q is the zero polynomial.
func (p Poly) Div(q Poly) (quo, rem Poly) {
	qq := q.normalize()
	if len(qq) == 0 {
		panic("poly: division by zero polynomial")
	}
	r := make(Poly, len(p))
	copy(r, p)
	r = r.normalize()
	if len(r) < len(qq) {
		return nil, r
	}
	quo = make(Poly, len(r)-len(qq)+1)
	lead := qq[len(qq)-1]
	for len(r) >= len(qq) {
		d := len(r) - len(qq)
		c := r[len(r)-1] / lead
		quo[d] = c
		for i := range qq {
			r[d+i] -= c * qq[i]
		}
		r[len(r)-1] = 0 // exact cancellation of the leading term
		r = r.normalize()
		if len(r) == 0 {
			break
		}
	}
	return quo.normalize(), r
}

// SturmChain returns the Sturm sequence p, p′, −rem(p, p′), … .
func (p Poly) SturmChain() []Poly {
	p0 := p.normalize()
	if len(p0) == 0 {
		return nil
	}
	chain := []Poly{p0}
	p1 := p0.Derivative()
	for !p1.IsZero() {
		chain = append(chain, p1)
		_, rem := chain[len(chain)-2].Div(p1)
		p1 = rem.Neg()
	}
	return chain
}

// signVariations counts sign changes of the chain evaluated at t (zeros
// skipped). t may be ±Inf (limit signs).
func signVariations(chain []Poly, t float64) int {
	vars, prev := 0, 0
	for _, q := range chain {
		var s int
		if math.IsInf(t, 0) {
			s = q.SignAtInfinity()
			if math.IsInf(t, -1) && q.Degree()%2 == 1 {
				s = -s
			}
		} else {
			v := q.Eval(t)
			switch {
			case v > 0:
				s = 1
			case v < 0:
				s = -1
			}
		}
		if s != 0 {
			if prev != 0 && s != prev {
				vars++
			}
			prev = s
		}
	}
	return vars
}

// CountRootsSturm returns the number of distinct real roots of p in the
// half-open interval (lo, hi] by Sturm's theorem. lo and hi must not be
// roots of p for the count to be exact; hi may be +Inf.
func (p Poly) CountRootsSturm(lo, hi float64) int {
	chain := p.SturmChain()
	if len(chain) == 0 {
		return 0
	}
	return signVariations(chain, lo) - signVariations(chain, hi)
}
