// Package poly implements dense univariate real polynomials of bounded
// degree, together with robust isolation of their real roots on [0, ∞).
//
// Polynomials are the motion primitives of the paper: every coordinate of a
// moving point is a polynomial of degree at most k in the time variable
// (§2.4, "k-motion"), and every algorithm in the paper ultimately reduces
// its geometric tests to evaluating and root-finding polynomials of bounded
// degree (so each such operation costs Θ(1) serial time, §6).
package poly

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a real polynomial stored as a dense coefficient slice in
// ascending order of degree: P(t) = Coef[0] + Coef[1]·t + … + Coef[d]·t^d.
// The zero value (nil slice) is the zero polynomial.
type Poly []float64

// eps is the relative tolerance used when trimming negligible leading
// coefficients and when comparing evaluation results.
const eps = 1e-12

// New returns a polynomial with the given ascending coefficients,
// normalized so that the leading coefficient is nonzero.
func New(coefs ...float64) Poly {
	p := make(Poly, len(coefs))
	copy(p, coefs)
	return p.normalize()
}

// Constant returns the constant polynomial c.
func Constant(c float64) Poly {
	if c == 0 {
		return nil
	}
	return Poly{c}
}

// X returns the identity polynomial t.
func X() Poly { return Poly{0, 1} }

// FromRoots returns the monic polynomial with the given real roots.
func FromRoots(roots ...float64) Poly {
	p := Poly{1}
	for _, r := range roots {
		p = p.Mul(Poly{-r, 1})
	}
	return p
}

// normalize trims trailing coefficients that are negligible relative to the
// largest coefficient magnitude, so Degree is meaningful.
func (p Poly) normalize() Poly {
	max := 0.0
	for _, c := range p {
		if a := math.Abs(c); a > max {
			max = a
		}
	}
	tol := max * eps
	n := len(p)
	for n > 0 && (p[n-1] == 0 || math.Abs(p[n-1]) < tol) {
		n--
	}
	if n == 0 {
		return nil
	}
	return p[:n]
}

// IsZero reports whether p is (numerically) the zero polynomial.
func (p Poly) IsZero() bool { return len(p.normalize()) == 0 }

// Degree returns the degree of p. The zero polynomial has degree -1.
func (p Poly) Degree() int { return len(p.normalize()) - 1 }

// Coef returns the coefficient of t^i (0 if i is out of range).
func (p Poly) Coef(i int) float64 {
	if i < 0 || i >= len(p) {
		return 0
	}
	return p[i]
}

// Lead returns the leading coefficient (0 for the zero polynomial).
func (p Poly) Lead() float64 {
	q := p.normalize()
	if len(q) == 0 {
		return 0
	}
	return q[len(q)-1]
}

// Eval evaluates p at t by Horner's rule. Evaluation at ±Inf returns the
// appropriately signed infinity (or 0 for the zero polynomial), matching
// the limit behaviour used by the paper's steady-state arguments (§5).
func (p Poly) Eval(t float64) float64 {
	if math.IsInf(t, 0) {
		q := p.normalize()
		switch {
		case len(q) == 0:
			return 0
		case len(q) == 1:
			return q[0]
		default:
			s := q[len(q)-1]
			if math.IsInf(t, -1) && (len(q)-1)%2 == 1 {
				s = -s
			}
			return math.Inf(sign(s))
		}
	}
	v := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		v = v*t + p[i]
	}
	return v
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// cancelEps is the per-coefficient relative tolerance below which the
// result of an addition is treated as exact cancellation. Without it,
// algebraically identical products built in different association orders
// (e.g. the cross product of a vector with itself over rational
// functions) leave ~1e-16-relative rounding residue whose *sign* would be
// read as a geometric predicate.
const cancelEps = 1e-11

// Add returns p + q. Coefficients that cancel to within rounding noise
// of the operands are snapped to zero.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	r := make(Poly, n)
	for i := range r {
		a, b := p.Coef(i), q.Coef(i)
		v := a + b
		if math.Abs(v) <= cancelEps*(math.Abs(a)+math.Abs(b)) {
			v = 0
		}
		r[i] = v
	}
	return r.normalize()
}

// Sub returns p − q, with the same cancellation snapping as Add.
func (p Poly) Sub(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	r := make(Poly, n)
	for i := range r {
		a, b := p.Coef(i), q.Coef(i)
		v := a - b
		if math.Abs(v) <= cancelEps*(math.Abs(a)+math.Abs(b)) {
			v = 0
		}
		r[i] = v
	}
	return r.normalize()
}

// Neg returns −p.
func (p Poly) Neg() Poly {
	r := make(Poly, len(p))
	for i, c := range p {
		r[i] = -c
	}
	return r
}

// Scale returns c·p.
func (p Poly) Scale(c float64) Poly {
	r := make(Poly, len(p))
	for i, v := range p {
		r[i] = c * v
	}
	return r.normalize()
}

// Mul returns p·q.
func (p Poly) Mul(q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	r := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			r[i+j] += a * b
		}
	}
	return r.normalize()
}

// Sq returns p².
func (p Poly) Sq() Poly { return p.Mul(p) }

// Shift returns the polynomial q(t) = p(t + a).
func (p Poly) Shift(a float64) Poly {
	// Taylor shift by repeated Horner steps; degrees are bounded so the
	// O(d²) cost is Θ(1) per the paper's model.
	q := make(Poly, len(p))
	copy(q, p)
	n := len(q)
	for i := 0; i < n; i++ {
		for j := n - 2; j >= i; j-- {
			q[j] += a * q[j+1]
		}
	}
	return q.normalize()
}

// Derivative returns p′.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return nil
	}
	r := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		r[i-1] = float64(i) * p[i]
	}
	return r.normalize()
}

// SignAtInfinity returns the sign of p(t) as t → +∞: −1, 0, or +1.
// This is the comparison primitive behind the paper's steady-state
// reduction (Lemma 5.1).
func (p Poly) SignAtInfinity() int {
	q := p.normalize()
	if len(q) == 0 {
		return 0
	}
	if q[len(q)-1] > 0 {
		return 1
	}
	return -1
}

// CompareAtInfinity compares p and q as t → +∞ (Lemma 5.1): it returns
// −1 if eventually p < q, 0 if p ≡ q, +1 if eventually p > q. It runs in
// Θ(1) time for bounded degree.
func (p Poly) CompareAtInfinity(q Poly) int {
	return p.Sub(q).SignAtInfinity()
}

// Equal reports whether p and q are numerically identical.
func (p Poly) Equal(q Poly) bool { return p.Sub(q).IsZero() }

// CauchyRootBound returns an upper bound B such that every real root of p
// satisfies |r| ≤ B. Returns 0 for constants.
func (p Poly) CauchyRootBound() float64 {
	q := p.normalize()
	if len(q) <= 1 {
		return 0
	}
	lead := math.Abs(q[len(q)-1])
	max := 0.0
	for _, c := range q[:len(q)-1] {
		if a := math.Abs(c); a > max {
			max = a
		}
	}
	return 1 + max/lead
}

// String renders the polynomial in conventional notation, e.g.
// "3t^2 - t + 0.5".
func (p Poly) String() string {
	q := p.normalize()
	if len(q) == 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i := len(q) - 1; i >= 0; i-- {
		c := q[i]
		if c == 0 {
			continue
		}
		switch {
		case first && c < 0:
			b.WriteString("-")
		case !first && c < 0:
			b.WriteString(" - ")
		case !first:
			b.WriteString(" + ")
		}
		a := math.Abs(c)
		if a != 1 || i == 0 {
			fmt.Fprintf(&b, "%g", a)
		}
		switch {
		case i == 1:
			b.WriteString("t")
		case i > 1:
			fmt.Fprintf(&b, "t^%d", i)
		}
		first = false
	}
	if first {
		return "0"
	}
	return b.String()
}
