package poly_test

import (
	"math"
	"testing"

	"dyncg/internal/poly"
)

// FuzzIsolateRoots fuzzes the root isolation of roots.go (recursive
// critical-point isolation + bisection) with arbitrary polynomials of
// degree ≤ 4 and checks the properties the paper's algorithms rely on
// (Θ(1) local root-finding per PE in Lemma 3.1):
//
//  1. reported roots lie inside the query interval and are sorted;
//  2. no sampled root is missed — wherever SignAt strictly changes
//     between two consecutive sample points, an isolated root brackets
//     the change.
func FuzzIsolateRoots(f *testing.F) {
	f.Add(2.0, -3.0, 1.0, 0.0, 0.0)   // (x−1)(x−2)
	f.Add(0.0, 1.0, 0.0, 0.0, 0.0)    // x
	f.Add(-1.0, 0.0, 0.0, 0.0, 1.0)   // x⁴ − 1
	f.Add(1.0, -4.0, 6.0, -4.0, 1.0)  // (x−1)⁴: quadruple root
	f.Add(6.25, -5.0, -4.0, 4.0, 1.0) // well-spread quartic
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3, c4 float64) {
		for _, c := range []float64{c0, c1, c2, c3, c4} {
			if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e6 {
				t.Skip()
			}
		}
		p := poly.New(c0, c1, c2, c3, c4)
		if p.IsZero() {
			t.Skip()
		}
		lo, hi := -16.0, 16.0
		roots := p.Roots(lo, hi)
		for i, r := range roots {
			if math.IsNaN(r) || r < lo-1e-9 || r > hi+1e-9 {
				t.Errorf("root %v outside [%v, %v]; p = %v", r, lo, hi, p)
			}
			if i > 0 && roots[i] < roots[i-1] {
				t.Errorf("roots unsorted: %v; p = %v", roots, p)
			}
		}
		// Sample the sign on a grid; every strict sign change must be
		// bracketed by a reported root. (Sample points where SignAt
		// returns 0 — within the residual tolerance of a root — are
		// transition points themselves and are skipped as anchors.)
		const steps = 512
		prevT, prevS := lo, p.SignAt(lo)
		for k := 1; k <= steps; k++ {
			tt := lo + (hi-lo)*float64(k)/steps
			s := p.SignAt(tt)
			if prevS != 0 && s != 0 && s != prevS {
				found := false
				for _, r := range roots {
					if r >= prevT-1e-6 && r <= tt+1e-6 {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("sign change %d→%d on [%v, %v] has no isolated root; p = %v, roots = %v",
						prevS, s, prevT, tt, p, roots)
				}
			}
			if s != 0 {
				prevT, prevS = tt, s
			}
		}
	})
}
