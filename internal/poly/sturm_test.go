package poly

import (
	"math"
	"math/rand"
	"testing"
)

func TestDivBasics(t *testing.T) {
	// (t² − 1) / (t − 1) = (t + 1), rem 0.
	p := New(-1, 0, 1)
	q := New(-1, 1)
	quo, rem := p.Div(q)
	if !quo.Equal(New(1, 1)) || !rem.IsZero() {
		t.Fatalf("quo=%v rem=%v", quo, rem)
	}
	// Degree(p) < Degree(q): quotient zero, remainder p.
	quo, rem = q.Div(p)
	if !quo.IsZero() || !rem.Equal(q) {
		t.Fatalf("quo=%v rem=%v", quo, rem)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 2).Div(nil)
}

// Property: p = quo·q + rem at random sample points, and deg rem < deg q.
func TestDivIdentityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		p := randPoly(r, 6)
		q := randPoly(r, 4)
		if q.IsZero() {
			continue
		}
		quo, rem := p.Div(q)
		if rem.Degree() >= q.Degree() && q.Degree() > 0 {
			t.Fatalf("trial %d: deg rem %d ≥ deg q %d", trial, rem.Degree(), q.Degree())
		}
		for s := 0; s < 5; s++ {
			x := r.NormFloat64() * 2
			lhs := p.Eval(x)
			rhs := quo.Eval(x)*q.Eval(x) + rem.Eval(x)
			if !almostEq(lhs, rhs, 1e-7) {
				t.Fatalf("trial %d: p(%v)=%v but quo·q+rem=%v (p=%v q=%v)",
					trial, x, lhs, rhs, p, q)
			}
		}
	}
}

func TestSturmKnownCounts(t *testing.T) {
	// (t−1)(t−3)(t−5): three roots in (0, 6], one in (0, 2].
	p := FromRoots(1, 3, 5)
	if got := p.CountRootsSturm(0, 6); got != 3 {
		t.Fatalf("count(0,6] = %d, want 3", got)
	}
	if got := p.CountRootsSturm(0, 2); got != 1 {
		t.Fatalf("count(0,2] = %d, want 1", got)
	}
	if got := p.CountRootsSturm(6, math.Inf(1)); got != 0 {
		t.Fatalf("count(6,∞] = %d, want 0", got)
	}
	// No real roots: t² + 1.
	if got := New(1, 0, 1).CountRootsSturm(math.Inf(-1), math.Inf(1)); got != 0 {
		t.Fatalf("t²+1 count = %d, want 0", got)
	}
}

// TestSturmCrossValidatesIsolation: the bisection-based root isolation of
// roots.go and the Sturm counter agree on the number of distinct roots of
// random square-free-ish polynomials (well-separated integer-ish roots).
func TestSturmCrossValidatesIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 300; trial++ {
		nr := 1 + r.Intn(5)
		used := map[int]bool{}
		var roots []float64
		for len(roots) < nr {
			v := r.Intn(19) - 9
			if !used[v] {
				used[v] = true
				roots = append(roots, float64(v))
			}
		}
		p := FromRoots(roots...).Scale(1 + r.Float64()*3)
		lo, hi := -9.5, 9.5
		found := p.Roots(lo, hi)
		want := p.CountRootsSturm(lo, hi)
		if len(found) != want {
			t.Fatalf("trial %d: isolation found %d roots %v, Sturm says %d (p=%v)",
				trial, len(found), found, want, p)
		}
	}
}
