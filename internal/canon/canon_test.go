package canon

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/api"
)

func req(system [][][]float64, mod func(*api.Request)) *api.Request {
	r := &api.Request{V: api.Version, System: system}
	if mod != nil {
		mod(r)
	}
	return r
}

func mustKey(t *testing.T, alg, topo string, workers int, r *api.Request) string {
	t.Helper()
	k, ok := Key(alg, topo, workers, r)
	if !ok {
		t.Fatalf("Key reported uncacheable for a fault-free request")
	}
	if len(k) != 64 {
		t.Fatalf("Key length = %d, want 64 hex chars", len(k))
	}
	return k
}

// TestKeyTrailingZeroInvariance: appending trailing zero (or negligible)
// coefficients never changes the key — poly.New strips them before the
// algorithms ever see them, so the responses are identical too.
func TestKeyTrailingZeroInvariance(t *testing.T) {
	base := [][][]float64{
		{{0, 1}, {0}},
		{{10, -1}, {1}},
		{{3, 2, 5}, {-4}},
	}
	padded := [][][]float64{
		{{0, 1, 0, 0}, {0, 0, 0}},
		{{10, -1, 0}, {1, 0}},
		{{3, 2, 5, 0, 0, 0}, {-4, 0}},
	}
	negligible := [][][]float64{
		{{0, 1, 1e-30}, {0}},
		{{10, -1}, {1, 1e-25}},
		{{3, 2, 5, 1e-20}, {-4}},
	}
	a := mustKey(t, "steady-hull", "hypercube", 1, req(base, nil))
	b := mustKey(t, "steady-hull", "hypercube", 1, req(padded, nil))
	c := mustKey(t, "steady-hull", "hypercube", 1, req(negligible, nil))
	if a != b {
		t.Errorf("trailing zeros changed the key:\n  %s\n  %s", a, b)
	}
	if a != c {
		t.Errorf("negligible trailing coefficients changed the key:\n  %s\n  %s", a, c)
	}
}

// TestKeyJSONSpellingInvariance: two JSON spellings of the same request —
// reordered fields, whitespace, exponent notation — decode to hash-equal
// requests. The key is computed post-decode, so the wire spelling is
// irrelevant by construction; this pins that property at the JSON level.
func TestKeyJSONSpellingInvariance(t *testing.T) {
	spellings := []string{
		`{"v":1,"system":[[[0,1],[0]],[[10,-1],[1]]],"origin":1,"options":{"topology":"mesh","workers":2}}`,
		`{
		  "options": {"workers": 2, "topology": "mesh"},
		  "origin": 1,
		  "system": [ [ [0.0, 1.0], [0e0] ], [ [1e1, -1], [1.000] ] ],
		  "v": 1
		}`,
	}
	keys := make([]string, len(spellings))
	for i, s := range spellings {
		var r api.Request
		if err := json.Unmarshal([]byte(s), &r); err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
		keys[i] = mustKey(t, "closest-point-sequence", "mesh", 2, &r)
	}
	if keys[0] != keys[1] {
		t.Errorf("JSON spelling changed the key:\n  %s\n  %s", keys[0], keys[1])
	}
}

// TestKeyDiscriminates: every field that can steer the response must
// steer the key.
func TestKeyDiscriminates(t *testing.T) {
	base := [][][]float64{{{0, 1}, {0}}, {{10, -1}, {1}}}
	ref := mustKey(t, "steady-hull", "hypercube", 1, req(base, nil))
	variants := map[string]string{
		"algorithm": mustKey(t, "steady-closest-pair", "hypercube", 1, req(base, nil)),
		"topology":  mustKey(t, "steady-hull", "mesh", 1, req(base, nil)),
		"workers":   mustKey(t, "steady-hull", "hypercube", 4, req(base, nil)),
		"origin": mustKey(t, "steady-hull", "hypercube", 1,
			req(base, func(r *api.Request) { r.Origin = 1 })),
		"farthest": mustKey(t, "steady-hull", "hypercube", 1,
			req(base, func(r *api.Request) { r.Farthest = true })),
		"dims": mustKey(t, "steady-hull", "hypercube", 1,
			req(base, func(r *api.Request) { r.Dims = []float64{4, 4} })),
		"pes": mustKey(t, "steady-hull", "hypercube", 1,
			req(base, func(r *api.Request) { r.Options.PEs = 64 })),
		"trace": mustKey(t, "steady-hull", "hypercube", 1,
			req(base, func(r *api.Request) { r.Options.Trace = true })),
		"cost_depth": mustKey(t, "steady-hull", "hypercube", 1,
			req(base, func(r *api.Request) { r.Options.CostDepth = 2 })),
		"deadline_ms": mustKey(t, "steady-hull", "hypercube", 1,
			req(base, func(r *api.Request) { r.Options.DeadlineMs = 5000 })),
		"coefficient": mustKey(t, "steady-hull", "hypercube", 1,
			req([][][]float64{{{0, 2}, {0}}, {{10, -1}, {1}}}, nil)),
		"point order": mustKey(t, "steady-hull", "hypercube", 1,
			req([][][]float64{{{10, -1}, {1}}, {{0, 1}, {0}}}, nil)),
		"extra point": mustKey(t, "steady-hull", "hypercube", 1,
			req(append(append([][][]float64{}, base...), [][]float64{{5}, {5}}), nil)),
	}
	for field, k := range variants {
		if k == ref {
			t.Errorf("changing %s did not change the key", field)
		}
	}
}

// TestKeyNegativeZero: -0.0 and +0.0 print differently in rational
// functions, so they must not be merged by the cache.
func TestKeyNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	a := mustKey(t, "steady-min-area-rect", "hypercube", 1,
		req([][][]float64{{{0, 1}, {0}}, {{1, negZero, 3}, {1}}}, nil))
	b := mustKey(t, "steady-min-area-rect", "hypercube", 1,
		req([][][]float64{{{0, 1}, {0}}, {{1, 0, 3}, {1}}}, nil))
	if a == b {
		t.Error("-0.0 and +0.0 coefficients hashed equal")
	}
}

// TestKeyStructuralAmbiguity: flattening must not let different shapes
// collide — [2 points × 1 coord] vs [1 point × 2 coords] with the same
// flat coefficient stream.
func TestKeyStructuralAmbiguity(t *testing.T) {
	a := mustKey(t, "collision-times", "hypercube", 1,
		req([][][]float64{{{1, 2}}, {{3, 4}}}, nil))
	b := mustKey(t, "collision-times", "hypercube", 1,
		req([][][]float64{{{1, 2}, {3, 4}}}, nil))
	if a == b {
		t.Error("different system shapes hashed equal")
	}
}

// TestKeyFaultsUncacheable: fault-injected requests must be reported
// uncacheable — their responses depend on the injected schedule.
func TestKeyFaultsUncacheable(t *testing.T) {
	r := req([][][]float64{{{0, 1}, {0}}}, func(r *api.Request) {
		r.Options.Faults = "transient=0.05"
	})
	if _, ok := Key("steady-hull", "hypercube", 1, r); ok {
		t.Error("fault-injected request reported cacheable")
	}
}

// TestKeyDeterministic: the same request hashes identically across
// repeated computations and across value copies.
func TestKeyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		sys := make([][][]float64, 2+rng.Intn(6))
		for i := range sys {
			sys[i] = make([][]float64, 1+rng.Intn(3))
			for j := range sys[i] {
				cf := make([]float64, 1+rng.Intn(4))
				for k := range cf {
					cf[k] = math.Trunc(rng.NormFloat64() * 100)
				}
				sys[i][j] = cf
			}
		}
		r1 := req(sys, nil)
		k1 := mustKey(t, "steady-hull", "mesh", 1, r1)
		// Deep copy.
		cp := make([][][]float64, len(sys))
		for i := range sys {
			cp[i] = make([][]float64, len(sys[i]))
			for j := range sys[i] {
				cp[i][j] = append([]float64(nil), sys[i][j]...)
			}
		}
		k2 := mustKey(t, "steady-hull", "mesh", 1, req(cp, nil))
		if k1 != k2 {
			t.Fatalf("trial %d: identical requests hashed differently", trial)
		}
	}
}
