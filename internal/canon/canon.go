// Package canon computes the canonical-form hash of a one-shot v1
// serving request: a SHA-256 over a normalized binary encoding of every
// field that can influence the response bytes, so that semantically
// identical requests — however their JSON was spelled — hash equal, and
// requests that could produce different responses hash apart.
//
// The hash is the dedup key of the serving layer's response cache
// (internal/rcache) and in-flight request coalescer (internal/coalesce):
// hash-equal requests are interchangeable, because the serving pipeline
// is a deterministic function of exactly the hashed fields. The
// normalizations applied are precisely the ones the computation itself
// applies when it decodes a request, no more:
//
//   - Coefficient arrays are normalized with poly.New — trailing
//     coefficients that are zero or negligible relative to the array's
//     largest magnitude are trimmed — because that is what systemFrom
//     feeds the algorithms. [1, 2, 0] and [1, 2] are the same motion.
//   - Remaining coefficients are hashed by their exact IEEE-754 bit
//     pattern (so 1, 1.0, and 1e0 coincide after JSON decoding, while
//     -0.0 stays distinct from +0.0 — the sign can surface in printed
//     rational functions, so merging them would be unsound).
//   - The topology and worker count are hashed in resolved form (the
//     caller supplies the post-default values), since both appear in
//     the response envelope.
//   - JSON field order, whitespace, and number spelling never reach the
//     hash at all: hashing happens on the decoded api.Request.
//
// Everything else that can steer the response — origin, farthest, dims,
// the PEs floor, trace and cost-depth, the deadline — is hashed
// verbatim. Fault-injected requests are not canonicalized: they bypass
// caching entirely (Key reports them uncacheable), because their cost
// accounting depends on the injected schedule, not only the system.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"dyncg/internal/api"
	"dyncg/internal/poly"
)

// version is the canonical-encoding version, hashed first so an
// encoding change can never collide with keys from an older layout.
const version = "dyncg-canon-v1"

// Key returns the canonical-form SHA-256 (hex) of a one-shot request
// and whether the request is cacheable at all. algorithm is the URL
// path element; topology and workers are the server-resolved values
// (defaults applied), since both are echoed in the response envelope.
// A request with a fault spec is uncacheable: its response depends on
// the injected schedule and its accounting on the recovery harness.
func Key(algorithm, topology string, workers int, req *api.Request) (string, bool) {
	if req.Options.Faults != "" {
		return "", false
	}
	h := sha256.New()
	buf := make([]byte, 0, 64)

	str := func(s string) {
		buf = binary.AppendUvarint(buf[:0], uint64(len(s)))
		h.Write(buf)
		h.Write([]byte(s))
	}
	uvar := func(v uint64) {
		buf = binary.AppendUvarint(buf[:0], v)
		h.Write(buf)
	}
	ivar := func(v int64) {
		buf = binary.AppendVarint(buf[:0], v)
		h.Write(buf)
	}
	f64 := func(f float64) {
		buf = binary.LittleEndian.AppendUint64(buf[:0], math.Float64bits(f))
		h.Write(buf)
	}
	boolb := func(b bool) {
		v := byte(0)
		if b {
			v = 1
		}
		h.Write([]byte{v})
	}

	str(version)
	uvar(uint64(req.V))
	str(algorithm)
	str(topology)
	ivar(int64(workers))
	ivar(int64(req.Options.PEs))
	boolb(req.Options.Trace)
	ivar(int64(req.Options.CostDepth))
	ivar(req.Options.DeadlineMs)
	ivar(int64(req.Origin))
	boolb(req.Farthest)

	uvar(uint64(len(req.Dims)))
	for _, d := range req.Dims {
		f64(d)
	}

	uvar(uint64(len(req.System)))
	for _, coords := range req.System {
		uvar(uint64(len(coords)))
		for _, cf := range coords {
			// The same normalization systemFrom applies: the algorithms
			// never see the trimmed coefficients, so neither does the key.
			p := poly.New(cf...)
			uvar(uint64(len(p)))
			for _, c := range p {
				f64(c)
			}
		}
	}

	return hex.EncodeToString(h.Sum(nil)), true
}
