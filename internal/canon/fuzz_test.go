package canon

import (
	"encoding/binary"
	"math"
	"testing"

	"dyncg/internal/api"
)

// FuzzCanonicalHash checks the two load-bearing properties of the
// canonical hash on arbitrary systems:
//
//  1. Renormalization invariance — appending trailing zero coefficients
//     to every coefficient array (a different spelling of the same
//     motion) never changes the key.
//  2. Discrimination — changing a coefficient that survives
//     normalization always changes the key (two distinct systems must
//     not collide, or the cache would serve the wrong answer).
//
// The input bytes are decoded as a stream of float64s and grouped into
// points; pad selects how many trailing zeros the renormalized variant
// appends.
func FuzzCanonicalHash(f *testing.F) {
	seed := func(fs ...float64) []byte {
		var b []byte
		for _, v := range fs {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(0, 1, 10, -1), byte(2))
	f.Add(seed(3, 2, 5, -4, 0.5, 0.25), byte(1))
	f.Add(seed(1e300, 1e-300, -7), byte(3))
	f.Add(seed(0, 0, 0, 0), byte(1))
	f.Add(seed(math.Copysign(0, -1), 1), byte(2))

	f.Fuzz(func(t *testing.T, data []byte, pad byte) {
		n := len(data) / 8
		if n == 0 || n > 256 {
			t.Skip()
		}
		fs := make([]float64, n)
		for i := range fs {
			fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			if math.IsNaN(fs[i]) || math.IsInf(fs[i], 0) {
				// JSON numbers cannot spell NaN or ±Inf; such coefficients
				// never reach the server's decoded request.
				t.Skip()
			}
		}

		// Group the floats into points of one coordinate each, two
		// coefficients per coordinate (a final odd float gets one).
		var sys [][][]float64
		for i := 0; i < n; i += 2 {
			end := i + 2
			if end > n {
				end = n
			}
			sys = append(sys, [][]float64{append([]float64(nil), fs[i:end]...)})
		}
		r1 := &api.Request{V: api.Version, System: sys}
		k1, ok := Key("steady-hull", "hypercube", 1, r1)
		if !ok {
			t.Fatal("fault-free request reported uncacheable")
		}
		if k2, _ := Key("steady-hull", "hypercube", 1, r1); k2 != k1 {
			t.Fatalf("key not deterministic: %s vs %s", k1, k2)
		}

		// Property 1: trailing zeros are a different spelling, not a
		// different system.
		padded := make([][][]float64, len(sys))
		zeros := make([]float64, int(pad)%4)
		for i, pt := range sys {
			padded[i] = [][]float64{append(append([]float64(nil), pt[0]...), zeros...)}
		}
		kp, _ := Key("steady-hull", "hypercube", 1, &api.Request{V: api.Version, System: padded})
		if kp != k1 {
			t.Errorf("trailing-zero padding changed the key:\n  %s\n  %s", k1, kp)
		}

		// Property 2: a materially different first coefficient must
		// change the key. c0 always survives normalization (trimming is
		// trailing-only), so mutating it yields a distinct system.
		mutated := make([][][]float64, len(sys))
		for i, pt := range sys {
			mutated[i] = [][]float64{append([]float64(nil), pt[0]...)}
		}
		if v := mutated[0][0][0]; v == 0 {
			mutated[0][0][0] = 1
		} else {
			mutated[0][0][0] = v * 2
		}
		km, _ := Key("steady-hull", "hypercube", 1, &api.Request{V: api.Version, System: mutated})
		if km == k1 {
			t.Errorf("distinct systems collided: coefficient %v vs %v",
				sys[0][0][0], mutated[0][0][0])
		}
	})
}
