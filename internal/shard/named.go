package shard

import (
	"fmt"
	"sort"
)

// NamedRing is an immutable consistent-hash ring over named members —
// the fleet-mode counterpart of Ring, which routes across in-process
// shards by index. Keying the ring by member ID (rather than position)
// means the front door and every worker process can build the same
// ring from the same ID list, and that membership is stable under
// reordering: the ring for "a,b,c" equals the ring for "c,a,b", so a
// fleet config can list members in any order without remapping keys.
// It is safe for concurrent use (all methods are read-only after
// NewNamed).
type NamedRing struct {
	ids    []string // member IDs, sorted
	points []uint32 // sorted virtual point hashes
	owner  []int    // owner[i] indexes ids
}

// NewNamed builds a ring over the given member IDs with the given
// number of virtual points per member (replicas <= 0 selects
// DefaultReplicas). IDs must be non-empty and distinct; order is
// irrelevant.
func NewNamed(ids []string, replicas int) *NamedRing {
	if len(ids) == 0 {
		panic("shard: named ring over zero members")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			panic("shard: empty member ID")
		}
		if i > 0 && id == sorted[i-1] {
			panic(fmt.Sprintf("shard: duplicate member ID %q", id))
		}
	}
	r := &NamedRing{ids: sorted}
	type vp struct {
		h     uint32
		owner int
	}
	vps := make([]vp, 0, len(sorted)*replicas)
	for i, id := range sorted {
		for v := 0; v < replicas; v++ {
			vps = append(vps, vp{hash(fmt.Sprintf("member-%s-vp-%d", id, v)), i})
		}
	}
	sort.Slice(vps, func(i, j int) bool {
		if vps[i].h != vps[j].h {
			return vps[i].h < vps[j].h
		}
		return vps[i].owner < vps[j].owner
	})
	r.points = make([]uint32, len(vps))
	r.owner = make([]int, len(vps))
	for i, p := range vps {
		r.points[i] = p.h
		r.owner[i] = p.owner
	}
	return r
}

// IDs returns the member IDs in sorted order. The slice is shared —
// callers must not mutate it.
func (r *NamedRing) IDs() []string { return r.ids }

// Lookup returns the member owning key: the first virtual point
// clockwise from the key's hash.
func (r *NamedRing) Lookup(key string) string {
	if len(r.ids) == 1 {
		return r.ids[0]
	}
	h := hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.ids[r.owner[i]]
}

// Sequence returns every member in failover order for key: the owner
// first, then each remaining member in the order its first virtual
// point appears walking clockwise. A front door that walks this
// sequence until a member accepts gets bounded retries (each member
// tried once) and a deterministic second choice per key, so failover
// traffic for a downed member spreads across the fleet instead of
// piling onto one neighbor.
func (r *NamedRing) Sequence(key string) []string {
	seq := make([]string, 0, len(r.ids))
	if len(r.ids) == 1 {
		return append(seq, r.ids[0])
	}
	h := hash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	seen := make([]bool, len(r.ids))
	for i := 0; i < len(r.points) && len(seq) < len(r.ids); i++ {
		o := r.owner[(start+i)%len(r.points)]
		if !seen[o] {
			seen[o] = true
			seq = append(seq, r.ids[o])
		}
	}
	return seq
}
