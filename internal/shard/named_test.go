package shard

import (
	"fmt"
	"testing"
)

func TestNamedSingleMember(t *testing.T) {
	r := NewNamed([]string{"only"}, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if got := r.Lookup(key); got != "only" {
			t.Fatalf("Lookup(%q) = %q on a 1-member ring", key, got)
		}
		if seq := r.Sequence(key); len(seq) != 1 || seq[0] != "only" {
			t.Fatalf("Sequence(%q) = %v on a 1-member ring", key, seq)
		}
	}
}

func TestNamedOrderIndependent(t *testing.T) {
	a := NewNamed([]string{"m0", "m1", "m2"}, 0)
	b := NewNamed([]string{"m2", "m0", "m1"}, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("Lookup(%q) differs across member orderings: %q vs %q",
				key, a.Lookup(key), b.Lookup(key))
		}
	}
}

func TestNamedCoverage(t *testing.T) {
	ids := []string{"alpha", "beta", "gamma", "delta"}
	r := NewNamed(ids, 0)
	counts := make(map[string]int)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	for _, id := range ids {
		got := counts[id]
		// With 64 virtual points per member the split is within a few
		// tens of percent of even; the test guards against a member
		// getting starved or hogging, not against statistical noise.
		if got < keys/len(ids)/3 || got > keys*3/len(ids) {
			t.Errorf("member %s owns %d of %d keys — badly uneven", id, got, keys)
		}
	}
}

func TestNamedSequence(t *testing.T) {
	ids := []string{"m0", "m1", "m2", "m3"}
	r := NewNamed(ids, 0)
	secondChoice := make(map[string]int)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key)
		if len(seq) != len(ids) {
			t.Fatalf("Sequence(%q) has %d members, want %d", key, len(seq), len(ids))
		}
		if seq[0] != r.Lookup(key) {
			t.Fatalf("Sequence(%q)[0] = %q, Lookup = %q", key, seq[0], r.Lookup(key))
		}
		seen := make(map[string]bool)
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("Sequence(%q) repeats %q: %v", key, id, seq)
			}
			seen[id] = true
		}
		secondChoice[seq[1]]++
	}
	// Failover spreads: the second choice must not be a single member
	// for every key (that would pile a downed member's whole load onto
	// one neighbor).
	if len(secondChoice) < 2 {
		t.Errorf("all keys share one failover target: %v", secondChoice)
	}
}

func TestNamedMinimalReassignment(t *testing.T) {
	small := NewNamed([]string{"m0", "m1", "m2"}, 0)
	big := NewNamed([]string{"m0", "m1", "m2", "m3"}, 0)
	moved := 0
	const keys = 10000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		a, b := small.Lookup(key), big.Lookup(key)
		if a != b {
			if b != "m3" {
				t.Fatalf("Lookup(%q) moved %q→%q, not onto the new member", key, a, b)
			}
			moved++
		}
	}
	// Adding one member to three should move roughly a quarter of keys.
	if moved < keys/10 || moved > keys/2 {
		t.Errorf("%d of %d keys moved when adding a 4th member — expected ~1/4", moved, keys)
	}
}

func TestNamedBadInput(t *testing.T) {
	for name, ids := range map[string][]string{
		"empty":     nil,
		"blank":     {"m0", ""},
		"duplicate": {"m0", "m1", "m0"},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNamed(%v) did not panic", ids)
				}
			}()
			NewNamed(ids, 0)
		})
	}
}
