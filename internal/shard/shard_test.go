package shard

import (
	"fmt"
	"testing"
)

// TestSingleShard: every key lands on shard 0.
func TestSingleShard(t *testing.T) {
	r := New(1, 0)
	for i := 0; i < 100; i++ {
		if s := r.Lookup(fmt.Sprintf("key-%d", i)); s != 0 {
			t.Fatalf("Lookup on 1-shard ring = %d", s)
		}
	}
}

// TestDeterministic: two rings with identical parameters route
// identically — the property the Router and the session ID minting
// both rely on.
func TestDeterministic(t *testing.T) {
	a, b := New(4, 0), New(4, 0)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("rings diverge on %q", k)
		}
	}
}

// TestRangeAndCoverage: lookups stay in [0, N) and every shard owns a
// nontrivial share of a uniform key population.
func TestRangeAndCoverage(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		r := New(n, 0)
		if r.N() != n {
			t.Fatalf("N() = %d, want %d", r.N(), n)
		}
		counts := make([]int, n)
		const keys = 10000
		for i := 0; i < keys; i++ {
			s := r.Lookup(fmt.Sprintf("session-%d-abcdef", i))
			if s < 0 || s >= n {
				t.Fatalf("Lookup out of range: %d (n=%d)", s, n)
			}
			counts[s]++
		}
		// With 64 virtual points per shard the split is a few percent
		// off uniform; assert no shard is starved below half its fair
		// share or doubled above it.
		fair := keys / n
		for s, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("n=%d: shard %d owns %d of %d keys (fair %d)", n, s, c, keys, fair)
			}
		}
	}
}

// TestMinimalReassignment: growing the ring by one shard moves only
// keys that land on the new shard — no key moves between two shards
// that exist in both rings.
func TestMinimalReassignment(t *testing.T) {
	old, grown := New(3, 0), New(4, 0)
	moved, total := 0, 10000
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("key-%d", i)
		a, b := old.Lookup(k), grown.Lookup(k)
		if a != b {
			moved++
			if b != 3 {
				t.Fatalf("key %q moved from shard %d to pre-existing shard %d", k, a, b)
			}
		}
	}
	// The new shard should claim roughly its fair quarter.
	if moved < total/8 || moved > total/2 {
		t.Errorf("grown ring moved %d of %d keys (expected ≈%d)", moved, total, total/4)
	}
}

// TestBadN: a ring over zero shards is a construction bug.
func TestBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 0) did not panic")
		}
	}()
	New(0, 0)
}
