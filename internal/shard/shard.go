// Package shard routes keys across N in-process server shards with a
// consistent-hash ring. Each shard owns its own machine pool, admission
// window, and coalescing group, so routing by key erases the
// single-pool mutex from the hot path while keeping every key's
// traffic on one shard — which is what makes per-shard coalescing and
// caching effective (identical requests meet in the same shard) and
// keeps a session's machine pinned where its requests land.
//
// The ring is the textbook construction: each shard is hashed at many
// virtual points on a circle, a key is hashed once, and the owning
// shard is the first virtual point clockwise. Virtual points smooth
// the load split (with 64 points per shard the imbalance is a few
// percent) and keep reassignment minimal when N changes: keys move
// only onto or off the shards whose points appeared or vanished.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-point count per shard used by New
// when replicas <= 0.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over shards 0..N-1. It is
// safe for concurrent use (all methods are read-only after New).
type Ring struct {
	n      int
	points []uint32 // sorted virtual point hashes
	owner  []int    // owner[i] = shard owning points[i]
}

// New builds a ring over n shards with the given number of virtual
// points per shard (replicas <= 0 selects DefaultReplicas). n must be
// at least 1.
func New(n, replicas int) *Ring {
	if n < 1 {
		panic(fmt.Sprintf("shard: ring over %d shards", n))
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		n:      n,
		points: make([]uint32, 0, n*replicas),
		owner:  make([]int, 0, n*replicas),
	}
	type vp struct {
		h     uint32
		shard int
	}
	vps := make([]vp, 0, n*replicas)
	for s := 0; s < n; s++ {
		for v := 0; v < replicas; v++ {
			vps = append(vps, vp{hash(fmt.Sprintf("shard-%d-vp-%d", s, v)), s})
		}
	}
	sort.Slice(vps, func(i, j int) bool {
		if vps[i].h != vps[j].h {
			return vps[i].h < vps[j].h
		}
		// Deterministic ownership for (astronomically unlikely) equal
		// hashes: the lower shard index wins.
		return vps[i].shard < vps[j].shard
	})
	for _, p := range vps {
		r.points = append(r.points, p.h)
		r.owner = append(r.owner, p.shard)
	}
	return r
}

// N returns the shard count.
func (r *Ring) N() int { return r.n }

// Lookup returns the shard owning key: the first virtual point
// clockwise from the key's hash.
func (r *Ring) Lookup(key string) int {
	if r.n == 1 {
		return 0
	}
	h := hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.owner[i]
}

// hash is FNV-1a over the key bytes — fast, dependency-free, and
// uniform enough for virtual-point smoothing to even out.
func hash(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}
