package hypercube

import (
	"math/bits"
	"testing"
)

func TestNewRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, -2, 3, 6, 12} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if _, err := New(n); err != nil {
			t.Errorf("New(%d) rejected: %v", n, err)
		}
	}
}

// TestGrayCodeDefinition checks the closed form against the paper's
// recursive definition of the binary reflected Gray code (§2.3).
func TestGrayCodeDefinition(t *testing.T) {
	var rec func(k, j int) int
	rec = func(k, j int) int {
		if k == 0 {
			return 0
		}
		if j < 1<<(k-1) {
			return rec(k-1, j)
		}
		return 1<<(k-1) + rec(k-1, 1<<k-1-j)
	}
	for k := 0; k <= 8; k++ {
		for j := 0; j < 1<<k; j++ {
			if Gray(j) != rec(k, j) {
				t.Fatalf("Gray(%d) = %d, recursive = %d (k=%d)",
					j, Gray(j), rec(k, j), k)
			}
		}
	}
}

func TestGrayInverse(t *testing.T) {
	for j := 0; j < 4096; j++ {
		if GrayInverse(Gray(j)) != j {
			t.Fatalf("Gray roundtrip failed at %d", j)
		}
	}
}

// TestConsecutiveLabelsAdjacent: the property the paper relabels for —
// consecutive Gray labels are hypercube neighbours.
func TestConsecutiveLabelsAdjacent(t *testing.T) {
	c := MustNew(256)
	for i := 0; i+1 < c.Size(); i++ {
		if c.Distance(i, i+1) != 1 {
			t.Fatalf("labels %d,%d at distance %d", i, i+1, c.Distance(i, i+1))
		}
	}
}

// TestSubcubeProperty: every aligned block of 2^j consecutive labels is a
// subcube (its node numbers agree outside j low bits).
func TestSubcubeProperty(t *testing.T) {
	c := MustNew(256)
	for blk := 2; blk <= c.Size(); blk *= 2 {
		for start := 0; start < c.Size(); start += blk {
			ref := Gray(start) &^ (blk - 1)
			for i := start; i < start+blk; i++ {
				if Gray(i)&^(blk-1) != ref {
					t.Fatalf("block [%d,%d): label %d (node %b) outside subcube %b",
						start, start+blk, i, Gray(i), ref)
				}
			}
		}
	}
}

// TestFigure3Adjacency pins the hypercube link structure for sizes
// 2, 4, 8 of Figure 3: node numbers differing in one bit are linked.
func TestFigure3Adjacency(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		c := MustNew(n)
		for i := 0; i < n; i++ {
			nbs := c.Neighbors(i)
			if len(nbs) != c.Dim() {
				t.Fatalf("n=%d: PE %d has %d neighbours, want %d",
					n, i, len(nbs), c.Dim())
			}
			for _, j := range nbs {
				if bits.OnesCount(uint(Gray(i)^Gray(j))) != 1 {
					t.Fatalf("n=%d: neighbours %d,%d differ in >1 bit", n, i, j)
				}
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	c := MustNew(1024)
	if c.Diameter() != 10 {
		t.Fatalf("diameter = %d, want 10", c.Diameter())
	}
	// All-ones node is at distance dim from node 0.
	far := c.Label(1023)
	if d := c.Distance(c.Label(0), far); d != 10 {
		t.Fatalf("antipodal distance = %d, want 10", d)
	}
}

// TestXorBitCost: every bitonic exchange partner is within 2 hops under
// Gray labelling, so each sort round is O(1) communication.
func TestXorBitCost(t *testing.T) {
	c := MustNew(1024)
	for b := 0; b < c.Dim(); b++ {
		if d := c.MaxDistanceForXorBit(b); d > 2 {
			t.Fatalf("bit %d partner distance %d > 2", b, d)
		}
	}
}
