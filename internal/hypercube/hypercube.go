// Package hypercube models the hypercube computer of §2.3: n = 2^q PEs
// whose node numbers are q-bit strings, with a bidirectional link between
// nodes whose numbers differ in exactly one bit.
//
// Following the paper, PEs are *labelled* not by node number but by the
// binary-reflected Gray code ordering G_q, under which consecutively
// labelled PEs are adjacent in the hypercube and every aligned block of
// 2^j consecutive labels forms a subcube (§2.3). A "string" of processors
// is a set of consecutively labelled PEs.
package hypercube

import (
	"fmt"
	"math/bits"

	"dyncg/internal/costmemo"
)

// Cube is a hypercube of size n = 2^q with Gray-code PE labelling.
type Cube struct {
	n   int
	dim int

	costs *costmemo.Table // memoised round costs (shared across machines)
}

// New returns a hypercube of size n (a positive power of two).
func New(n int) (*Cube, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("hypercube: size %d is not a positive power of 2", n)
	}
	c := &Cube{n: n, dim: bits.Len(uint(n)) - 1}
	c.costs = costmemo.New(c)
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(n int) *Cube {
	c, err := New(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the number of PEs.
func (c *Cube) Size() int { return c.n }

// Dim returns q = log₂ n, the dimension and communication diameter (§2.3).
func (c *Cube) Dim() int { return c.dim }

// Name implements the topology interface of internal/machine.
func (c *Cube) Name() string { return fmt.Sprintf("hypercube[2^%d]", c.dim) }

// Gray returns the node number of the PE with label j: the binary
// reflected Gray code G(j) = j XOR (j >> 1) (§2.3's recursive definition
// in closed form).
func Gray(j int) int { return j ^ (j >> 1) }

// GrayInverse returns the label of the node with number g.
func GrayInverse(g int) int {
	j := 0
	for g != 0 {
		j ^= g
		g >>= 1
	}
	return j
}

// Node returns the node number of PE label j.
func (c *Cube) Node(j int) int { return Gray(j) }

// Label returns the PE label of node number node.
func (c *Cube) Label(node int) int { return GrayInverse(node) }

// Distance returns the number of communication links on a shortest path
// between the PEs with labels i and j: the Hamming distance of their node
// numbers.
func (c *Cube) Distance(i, j int) int {
	return bits.OnesCount(uint(Gray(i) ^ Gray(j)))
}

// Diameter returns log₂ n (§2.3).
func (c *Cube) Diameter() int { return c.dim }

// MaxDistanceForXorBit returns max over labels i of Distance(i, i⊕2^b).
// In Gray labelling, labels differing in one bit map to nodes differing in
// at most two bits, so every bitonic exchange round costs O(1) hops and a
// full bitonic sort costs Θ(log² n) — the Table 1 bound.
func (c *Cube) MaxDistanceForXorBit(b int) int {
	off := 1 << b
	max := 0
	for i := 0; i < c.n; i++ {
		j := i ^ off
		if j < i || j >= c.n {
			continue
		}
		if d := c.Distance(i, j); d > max {
			max = d
		}
	}
	return max
}

// XorRoundCost returns the memoised worst partner distance of a bit-b
// XOR round (≤ 2 under Gray labelling; see MaxDistanceForXorBit).
// Computed once per Cube and shared by every machine wrapping it.
func (c *Cube) XorRoundCost(b int) int { return c.costs.XorRoundCost(b) }

// ShiftRoundCost returns the memoised worst partner distance of a ±off
// shift round.
func (c *Cube) ShiftRoundCost(off int) int { return c.costs.ShiftRoundCost(off) }

// Neighbors returns the labels of the PEs adjacent to label i.
func (c *Cube) Neighbors(i int) []int {
	node := Gray(i)
	out := make([]int, 0, c.dim)
	for b := 0; b < c.dim; b++ {
		out = append(out, GrayInverse(node^(1<<b)))
	}
	return out
}
