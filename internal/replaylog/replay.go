package replaylog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"dyncg/internal/api"
)

// Divergence pinpoints the first replayed response that differed from
// the recorded one.
type Divergence struct {
	Seq            uint64 // record index of the divergent request
	Path           string
	RecordedStatus int
	GotStatus      int
	Recorded       []byte // recorded response body
	Got            []byte // replayed response body (recorded session IDs substituted)
}

func (d *Divergence) String() string {
	return fmt.Sprintf("record %d (%s %d): replayed status %d\nrecorded: %s\nreplayed: %s",
		d.Seq, d.Path, d.RecordedStatus, d.GotStatus, d.Recorded, d.Got)
}

// Report summarises one replay run.
type Report struct {
	Records  int // records read from the log (anchors included)
	Replayed int // requests re-executed and compared
	Skipped  int // admission-artifact records not re-executed
	Anchors  int // anchor records passed over
	// Diverged is the first byte-level divergence, nil when every
	// replayed response matched its recording exactly.
	Diverged *Divergence
}

// replayConfig collects ReplayOption settings.
type replayConfig struct {
	from, to   uint64
	hasTo      bool
	ignorePool bool
}

// ReplayOption configures Replay.
type ReplayOption func(*replayConfig)

// WithRange replays only records with from ≤ Seq ≤ to (to < from means
// no upper bound). A slice that addresses sessions created before the
// slice cannot be replayed — start slices at a session boundary.
func WithRange(from, to uint64) ReplayOption {
	return func(c *replayConfig) {
		c.from = from
		if to >= from {
			c.to, c.hasTo = to, true
		}
	}
}

// WithIgnorePool masks the "pool" object of one-shot responses before
// diffing. Pool hits are deterministic for sequentially recorded traces,
// but a trace recorded under concurrent traffic interleaves checkouts
// nondeterministically; this option confines the diff to the
// deterministic payload (machine, stats, fault report, result).
func WithIgnorePool() ReplayOption {
	return func(c *replayConfig) { c.ignorePool = true }
}

// admissionArtifact reports whether a recorded status depends on live
// server load rather than the computation: such records cannot be
// expected to reproduce under sequential replay and are skipped.
func admissionArtifact(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// sessionID extracts the session ID of a create/update/query response
// body ({"session":{"id":…}}), or "".
func sessionID(body []byte) string {
	var env struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return ""
	}
	return env.Session.ID
}

// maskPool canonicalises the "pool" object of a v1 response body.
func maskPool(body []byte) []byte {
	var env map[string]json.RawMessage
	if err := json.Unmarshal(body, &env); err != nil {
		return body
	}
	if _, ok := env["pool"]; !ok {
		return body
	}
	env["pool"] = json.RawMessage(`{}`)
	out, err := json.Marshal(env)
	if err != nil {
		return body
	}
	return out
}

// Replay re-executes recorded requests, in log order, against h — a
// fresh serving surface (server.New(...).Handler()) whose machine pool
// starts empty — and diffs every response byte-for-byte against the
// recorded one, stopping at the first divergence.
//
// Session IDs are assigned randomly by the live registry, so they are
// the one intentionally nondeterministic byte sequence in a response.
// Replay maintains the recorded→live ID mapping: recorded IDs in
// request paths are rewritten to the live session, and live IDs in
// replayed responses are substituted back before diffing, making the
// comparison exact everywhere else.
func Replay(h http.Handler, recs []api.ReplayRecord, opts ...ReplayOption) (*Report, error) {
	var cfg replayConfig
	for _, o := range opts {
		o(&cfg)
	}
	rep := &Report{Records: len(recs)}
	sessions := map[string]string{} // recorded ID → live ID
	for i := range recs {
		rec := &recs[i]
		if rec.Anchor {
			rep.Anchors++
			continue
		}
		if rec.Seq < cfg.from || (cfg.hasTo && rec.Seq > cfg.to) {
			continue
		}
		if admissionArtifact(rec.Status) {
			rep.Skipped++
			continue
		}

		path := rec.Path
		if rid := rec.Meta.Session; rid != "" {
			live, ok := sessions[rid]
			switch {
			case ok:
				path = strings.ReplaceAll(path, rid, live)
			case rec.Status < http.StatusBadRequest && strings.Contains(path, rid):
				// A successful request against a session with no recorded
				// create cannot reproduce. (A recorded failure — e.g. 404
				// for an unknown ID — replays verbatim and fails the same
				// way.)
				return rep, fmt.Errorf("replaylog: record %d addresses session %q created outside the replayed slice", rec.Seq, rid)
			}
		}
		var body []byte
		switch {
		case len(rec.Request) > 0:
			body = rec.Request
		case len(rec.RequestBin) > 0:
			body = rec.RequestBin
		}
		req := httptest.NewRequest(rec.Method, path, bytes.NewReader(body))
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		got := bytes.TrimSuffix(w.Body.Bytes(), []byte("\n"))

		// A session create introduces a recorded→live ID pair; later
		// records (and this diff) see the recorded ID.
		if rec.Method == http.MethodPost && strings.HasSuffix(path, "/v1/sessions") && w.Code == http.StatusOK {
			recorded, live := sessionID(rec.Response), sessionID(got)
			if recorded != "" && live != "" {
				sessions[recorded] = live
			}
		}
		for recorded, live := range sessions {
			got = bytes.ReplaceAll(got, []byte(live), []byte(recorded))
		}

		want := []byte(rec.Response)
		if cfg.ignorePool {
			want, got = maskPool(want), maskPool(got)
		}
		rep.Replayed++
		if w.Code != rec.Status || !bytes.Equal(got, want) {
			rep.Diverged = &Divergence{
				Seq:            rec.Seq,
				Path:           rec.Path,
				RecordedStatus: rec.Status,
				GotStatus:      w.Code,
				Recorded:       want,
				Got:            got,
			}
			return rep, nil
		}
	}
	return rep, nil
}
