package replaylog

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"dyncg/internal/api"
)

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the committed fuzz seed corpus under testdata/fuzz")

// validSegment builds the canonical bytes of a 3-record + anchor
// segment — a healthy chain the fuzzer mutates from.
func validSegment(tb testing.TB) []byte {
	tb.Helper()
	var v verifier
	var buf bytes.Buffer
	prev := ""
	leaves := []string(nil)
	for i, rec := range []api.ReplayRecord{
		{Method: "POST", Path: "/v1/steady-hull", Status: 200,
			Request:  json.RawMessage(`{"points":[[0,0],[1,1]]}`),
			Response: json.RawMessage(`{"hull":[[0,0],[1,1]]}`)},
		{Method: "GET", Path: "/v1/sessions/s-1-abc/query", Status: 404,
			Meta:     api.ReplayMeta{Session: "s-1-abc"},
			Response: json.RawMessage(`{"error":"no session"}`)},
		{Method: "POST", Path: "/v1/collision-times", Status: 200,
			Meta:     api.ReplayMeta{Topology: "mesh", PEs: 16, Workers: 4, FaultSeed: 7},
			Response: json.RawMessage(`{"collisions":[]}`)},
	} {
		rec.V = api.Version
		rec.Seq = uint64(i)
		rec.Time = "2026-01-02T03:04:05Z"
		if err := seal(&rec, prev); err != nil {
			tb.Fatalf("seal: %v", err)
		}
		line, err := json.Marshal(&rec)
		if err != nil {
			tb.Fatalf("marshal: %v", err)
		}
		buf.Write(append(line, '\n'))
		prev = rec.Hash
		leaves = append(leaves, rec.Hash)
	}
	anchor := api.ReplayRecord{V: api.Version, Seq: 3, Time: "2026-01-02T03:04:06Z",
		Anchor: true, Count: 3, Root: MerkleRoot(leaves)}
	if err := seal(&anchor, prev); err != nil {
		tb.Fatalf("seal anchor: %v", err)
	}
	line, err := json.Marshal(&anchor)
	if err != nil {
		tb.Fatalf("marshal anchor: %v", err)
	}
	buf.Write(append(line, '\n'))
	if _, err := v.verifySegment(buf.Bytes(), "seed"); err != nil {
		tb.Fatalf("seed segment does not verify: %v", err)
	}
	return buf.Bytes()
}

// corpusSeeds are the committed seed inputs: a healthy chain, a
// truncation, a mid-chain byte flip, and structurally hostile lines.
func corpusSeeds(tb testing.TB) [][]byte {
	seed := validSegment(tb)
	tampered := append([]byte(nil), seed...)
	tampered[len(tampered)/3] ^= 0x01
	return [][]byte{
		seed,
		seed[:len(seed)/2],
		tampered,
		[]byte("{\"v\":1,\"seq\":0,\"meta\":{},\"prev\":\"\",\"hash\":\"\"}\n"),
		[]byte("not json\n{}\n"),
	}
}

// TestFuzzCorpus pins the committed seed corpus: -update-corpus
// regenerates testdata/fuzz/FuzzReplayLogDecode, and the plain run
// requires the files to be present (so the CI fuzz-smoke job always
// starts from the hostile seeds, not just from scratch).
func TestFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReplayLogDecode")
	if *updateCorpus {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range corpusSeeds(t) {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing (regenerate with -update-corpus): %v", err)
	}
	if want := len(corpusSeeds(t)); len(entries) != want {
		t.Fatalf("corpus has %d entries, want %d (regenerate with -update-corpus)", len(entries), want)
	}
}

// FuzzReplayLogDecode drives the record-parsing and chain-verification
// core over arbitrary segment bytes. Invariants: never panic; a segment
// that verifies has densely numbered records whose canonical re-encoding
// verifies again to the same records; any byte flip of a verified
// segment must not verify (spot-checked at a data-dependent position).
func FuzzReplayLogDecode(f *testing.F) {
	for _, seed := range corpusSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := VerifySegment(data)
		if err != nil {
			if _, ok := err.(*TamperError); !ok {
				t.Fatalf("non-TamperError failure: %T %v", err, err)
			}
			return
		}
		var rebuilt bytes.Buffer
		for i := range recs {
			if recs[i].Seq != uint64(i) {
				t.Fatalf("verified record %d has Seq %d", i, recs[i].Seq)
			}
			if recs[i].V != api.Version {
				t.Fatalf("verified record %d has version %d", i, recs[i].V)
			}
			line, err := json.Marshal(&recs[i])
			if err != nil {
				t.Fatalf("re-encoding verified record %d: %v", i, err)
			}
			rebuilt.Write(append(line, '\n'))
		}
		again, err := VerifySegment(rebuilt.Bytes())
		if err != nil {
			t.Fatalf("canonical re-encoding failed verification: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-verification found %d records, want %d", len(again), len(recs))
		}
		if len(data) > 0 && len(recs) > 0 {
			flipped := append([]byte(nil), data...)
			flipped[int(recs[0].Hash[0])%len(flipped)] ^= 0x01
			if _, err := VerifySegment(flipped); err == nil && !bytes.Equal(flipped, data) {
				t.Fatal("flipped byte went undetected")
			}
		}
	})
}
