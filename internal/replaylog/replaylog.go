// Package replaylog is the deterministic-replay and audit subsystem: an
// append-only, hash-chained computation log of every served /v1/*
// request, plus verification (VerifyChain — any byte-level tampering is
// detected with the index of the first bad record) and re-execution
// (Replay — a recorded trace is re-run against a fresh serving surface
// and every response diffed byte-for-byte against the recorded one).
//
// The repo's full determinism — seeded fault plans, bit-identical
// parallel and session recompute paths — is what makes the log more than
// an audit trail: any recorded trace is a regression input, and replay
// of a production log is an exact re-derivation of every answer ever
// served (Boxer 2025 argues dynamic geometry answers should be exactly
// reproducible over time; the Dallant–Iacono lower bounds make exact
// recomputation the honest baseline to audit against).
//
// On-disk format: a directory of JSONL segments (replay-000000.log,
// replay-000001.log, …), one api.ReplayRecord per line. Records chain by
// SHA-256 (each record's Hash covers its content including the previous
// record's hash); rotation by size seals a segment with an anchor record
// carrying the Merkle root of the segment's record hashes. Open resumes
// an existing log, re-verifying the tail so a restarted daemon keeps the
// chain intact.
//
// The serving hot path pays one nil-check when logging is disabled — the
// same observer-hook discipline as internal/trace (see
// BenchmarkReplayLogAppend: the disabled path is alloc-free).
package replaylog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dyncg/internal/api"
)

// segPattern names log segments so lexicographic order is chain order.
const segPattern = "replay-%06d.log"

// DefaultMaxSegment is the rotation threshold: a segment exceeding this
// many bytes is sealed with an anchor and a new one opened.
const DefaultMaxSegment = 64 << 20

// Stats is a point-in-time snapshot of a log's counters (exported as
// dyncg_replaylog_* Prometheus metrics by the server).
type Stats struct {
	Records  uint64 // computation records appended (anchors excluded)
	Bytes    uint64 // bytes written, all segments
	Segments uint64 // segments opened
	Errors   uint64 // failed appends
}

// Log is an append-only hash-chained computation log rooted at a
// directory. Safe for concurrent use; appends are serialised, and the
// append order is the log's arrival order.
type Log struct {
	dir     string
	maxSeg  int64
	now     func() time.Time
	mu      sync.Mutex
	f       *os.File
	seg     int    // index of the open segment
	segSize int64  // bytes in the open segment
	seq     uint64 // next record's Seq
	prev    string // hash of the last written record
	leaves  []string

	records  atomic.Uint64
	bytes    atomic.Uint64
	segments atomic.Uint64
	errors   atomic.Uint64
}

// Option configures a Log.
type Option func(*Log)

// WithMaxSegment sets the segment rotation threshold in bytes (≤ 0
// keeps DefaultMaxSegment).
func WithMaxSegment(n int64) Option {
	return func(l *Log) {
		if n > 0 {
			l.maxSeg = n
		}
	}
}

// WithNow overrides the arrival-timestamp clock (test seam: pinned
// clocks make record bytes, and therefore hashes, reproducible).
func WithNow(now func() time.Time) Option {
	return func(l *Log) { l.now = now }
}

// Open creates (or resumes) the log rooted at dir. Resuming re-verifies
// the existing chain end to end — a daemon never appends to a log it
// cannot vouch for — and continues from the last record's hash; if the
// last segment was sealed, a new segment is opened chaining from its
// anchor.
func Open(dir string, opts ...Option) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replaylog: %w", err)
	}
	l := &Log{dir: dir, maxSeg: DefaultMaxSegment, now: time.Now, seg: -1}
	for _, o := range opts {
		o(l)
	}

	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	sealed := false
	if len(segs) > 0 {
		recs, err := verifyDir(dir, segs)
		if err != nil {
			return nil, fmt.Errorf("replaylog: refusing to resume %s: %w", dir, err)
		}
		l.seg = len(segs) - 1
		l.seq = uint64(len(recs))
		if len(recs) > 0 {
			last := recs[len(recs)-1]
			l.prev = last.Hash
			sealed = last.Anchor
			for i := len(recs) - 1; i >= 0; i-- {
				if recs[i].Anchor {
					break
				}
				l.leaves = append([]string{recs[i].Hash}, l.leaves...)
			}
		}
	}

	if l.seg < 0 || sealed {
		if err := l.openSegment(l.seg + 1); err != nil {
			return nil, err
		}
	} else {
		path := filepath.Join(dir, fmt.Sprintf(segPattern, l.seg))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("replaylog: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("replaylog: %w", err)
		}
		l.f, l.segSize = f, st.Size()
		l.segments.Add(1)
	}
	return l, nil
}

// openSegment creates segment i and makes it the append target. Caller
// holds mu (or is Open).
func (l *Log) openSegment(i int) error {
	path := filepath.Join(l.dir, fmt.Sprintf(segPattern, i))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("replaylog: %w", err)
	}
	l.f, l.seg, l.segSize = f, i, 0
	l.leaves = l.leaves[:0]
	l.segments.Add(1)
	return nil
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Records:  l.records.Load(),
		Bytes:    l.bytes.Load(),
		Segments: l.segments.Load(),
		Errors:   l.errors.Load(),
	}
}

// Head returns the next Seq to be assigned and the hash of the last
// written record ("" for an empty log).
func (l *Log) Head() (seq uint64, hash string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.prev
}

// seal computes the record's chain fields: Prev and the SHA-256 over its
// canonical encoding with Hash empty.
func seal(rec *api.ReplayRecord, prev string) error {
	rec.Prev = prev
	rec.Hash = ""
	pre, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(pre)
	rec.Hash = hex.EncodeToString(sum[:])
	return nil
}

// Append seals rec onto the chain (assigning Seq, Time, Prev, Hash) and
// writes it as one JSONL line, rotating the segment when it exceeds the
// size threshold. Records are appended in call order — the log's
// arrival order.
func (l *Log) Append(rec api.ReplayRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.V = api.Version
	rec.Seq = l.seq
	rec.Time = l.now().UTC().Format(time.RFC3339Nano)
	rec.Anchor, rec.Count, rec.Root = false, 0, ""
	if err := l.write(&rec); err != nil {
		l.errors.Add(1)
		return err
	}
	l.leaves = append(l.leaves, rec.Hash)
	l.records.Add(1)
	if l.segSize >= l.maxSeg {
		if err := l.sealSegment(); err != nil {
			l.errors.Add(1)
			return err
		}
		if err := l.openSegment(l.seg + 1); err != nil {
			l.errors.Add(1)
			return err
		}
	}
	return nil
}

// write seals and writes one record line to the open segment. Caller
// holds mu; rec.Seq must equal l.seq.
func (l *Log) write(rec *api.ReplayRecord) error {
	if err := seal(rec, l.prev); err != nil {
		return fmt.Errorf("replaylog: sealing record %d: %w", rec.Seq, err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("replaylog: encoding record %d: %w", rec.Seq, err)
	}
	line = append(line, '\n')
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("replaylog: appending record %d: %w", rec.Seq, err)
	}
	l.seq++
	l.prev = rec.Hash
	l.segSize += int64(len(line))
	l.bytes.Add(uint64(len(line)))
	return nil
}

// sealSegment appends the anchor record: the Merkle root over the
// segment's record hashes. Caller holds mu.
func (l *Log) sealSegment() error {
	anchor := api.ReplayRecord{
		V:      api.Version,
		Seq:    l.seq,
		Time:   l.now().UTC().Format(time.RFC3339Nano),
		Anchor: true,
		Count:  uint64(len(l.leaves)),
		Root:   MerkleRoot(l.leaves),
	}
	if err := l.write(&anchor); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("replaylog: %w", err)
	}
	l.f = nil
	return nil
}

// Close seals the open segment with its anchor and closes the log. A
// closed log must not be appended to; Open the directory again to
// resume (a fresh segment chains from the anchor).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.sealSegment()
}

// MerkleRoot folds the hex leaf hashes pairwise with SHA-256 up to a
// single hex root. An odd node is promoted unchanged; the root of a
// single leaf is that leaf; the root of no leaves is "".
func MerkleRoot(leaves []string) string {
	if len(leaves) == 0 {
		return ""
	}
	level := make([][]byte, 0, len(leaves))
	for _, leaf := range leaves {
		b, err := hex.DecodeString(leaf)
		if err != nil || len(b) == 0 {
			// Defensive: leaf hashes are produced by seal; treat a bad
			// one as raw bytes so the root is still deterministic.
			b = []byte(leaf)
		}
		level = append(level, b)
	}
	for len(level) > 1 {
		next := make([][]byte, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			sum := sha256.Sum256(append(append([]byte{}, level[i]...), level[i+1]...))
			next = append(next, sum[:])
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return hex.EncodeToString(level[0])
}

// Segments lists dir's log segments in chain order.
func Segments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "replay-*.log"))
	if err != nil {
		return nil, fmt.Errorf("replaylog: %w", err)
	}
	sort.Strings(matches)
	return matches, nil
}
