package replaylog

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"dyncg/internal/api"
)

// fakeServer is a deterministic serving surface: algorithm endpoints
// echo the body, session creates mint live-N IDs, session queries echo
// the addressed ID. Fresh instances restart the ID counter, mimicking
// the real registry's replay-visible nondeterminism (different IDs,
// same payloads).
type fakeServer struct {
	nextID int
	salt   string // varies the minted IDs across instances
}

func (s *fakeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/sessions":
		s.nextID++
		fmt.Fprintf(w, `{"session":{"id":"%s-%d"}}`+"\n", s.salt, s.nextID)
	case strings.HasPrefix(r.URL.Path, "/v1/sessions/"):
		id := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
		fmt.Fprintf(w, `{"session":{"id":"%s"},"verify":%q}`+"\n", id, r.URL.RawQuery)
	default:
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, `{"path":%q,"echo":%s,"pool":{"hits":1}}`+"\n", r.URL.Path, body)
	}
}

func algoRecord(seq uint64, path, body string) api.ReplayRecord {
	return api.ReplayRecord{
		Seq:      seq,
		Method:   http.MethodPost,
		Path:     path,
		Status:   200,
		Request:  json.RawMessage(body),
		Response: json.RawMessage(fmt.Sprintf(`{"path":%q,"echo":%s,"pool":{"hits":1}}`, path, body)),
	}
}

// recordedTrace is a trace as the log would hold it, recorded against a
// fakeServer minting "rec"-salted session IDs.
func recordedTrace() []api.ReplayRecord {
	return []api.ReplayRecord{
		algoRecord(0, "/v1/steady-hull", `{"points":[[0,0]]}`),
		{
			Seq: 1, Method: http.MethodPost, Path: "/v1/sessions", Status: 200,
			Request:  json.RawMessage(`{"topology":"mesh"}`),
			Response: json.RawMessage(`{"session":{"id":"rec-1"}}`),
		},
		{
			Seq: 2, Method: http.MethodGet, Path: "/v1/sessions/rec-1?verify=1", Status: 200,
			Meta:     api.ReplayMeta{Session: "rec-1"},
			Response: json.RawMessage(`{"session":{"id":"rec-1"},"verify":"verify=1"}`),
		},
		{Seq: 3, Method: http.MethodPost, Path: "/v1/steady-hull", Status: 429,
			Response: json.RawMessage(`{"error":"overloaded"}`)},
		algoRecord(4, "/v1/closest-pair-sequence", `{"points":[[2,3]]}`),
		{Seq: 5, Anchor: true, Count: 5},
	}
}

func TestReplayMatches(t *testing.T) {
	// The live server mints different session IDs than the recording.
	rep, err := Replay(&fakeServer{salt: "live"}, recordedTrace())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Diverged != nil {
		t.Fatalf("unexpected divergence: %s", rep.Diverged)
	}
	if rep.Records != 6 || rep.Replayed != 4 || rep.Skipped != 1 || rep.Anchors != 1 {
		t.Fatalf("Report = %+v", rep)
	}
}

func TestReplayReportsFirstDivergence(t *testing.T) {
	trace := recordedTrace()
	trace[4].Response = json.RawMessage(`{"path":"/v1/closest-pair-sequence","echo":{"points":[[9,9]]},"pool":{"hits":1}}`)
	rep, err := Replay(&fakeServer{salt: "live"}, trace)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	d := rep.Diverged
	if d == nil {
		t.Fatal("divergence not detected")
	}
	if d.Seq != 4 {
		t.Fatalf("Diverged.Seq = %d, want 4", d.Seq)
	}
	if d.RecordedStatus != 200 || d.GotStatus != 200 {
		t.Fatalf("Diverged statuses = (%d, %d)", d.RecordedStatus, d.GotStatus)
	}
	for _, want := range []string{"record 4", "/v1/closest-pair-sequence", "[[9,9]]", "[[2,3]]"} {
		if !strings.Contains(d.String(), want) {
			t.Fatalf("Diverged.String() = %q, missing %q", d.String(), want)
		}
	}
}

func TestReplayDivergentStatus(t *testing.T) {
	trace := recordedTrace()
	trace[0].Status = 400
	rep, err := Replay(&fakeServer{salt: "live"}, trace)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Diverged == nil || rep.Diverged.Seq != 0 || rep.Diverged.GotStatus != 200 {
		t.Fatalf("Report = %+v", rep)
	}
}

func TestReplayRange(t *testing.T) {
	rep, err := Replay(&fakeServer{salt: "live"}, recordedTrace(), WithRange(3, 4))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Diverged != nil {
		t.Fatalf("unexpected divergence: %s", rep.Diverged)
	}
	if rep.Replayed != 1 || rep.Skipped != 1 {
		t.Fatalf("Report = %+v", rep)
	}
}

func TestReplaySessionOutsideSliceErrors(t *testing.T) {
	_, err := Replay(&fakeServer{salt: "live"}, recordedTrace(), WithRange(2, 0))
	if err == nil || !strings.Contains(err.Error(), "outside the replayed slice") {
		t.Fatalf("err = %v, want session-outside-slice error", err)
	}
}

func TestReplayIgnorePool(t *testing.T) {
	trace := recordedTrace()
	// A pool mismatch (trace recorded under concurrency) diverges by
	// default and is masked under WithIgnorePool.
	trace[0].Response = json.RawMessage(`{"path":"/v1/steady-hull","echo":{"points":[[0,0]]},"pool":{"hits":7}}`)
	rep, err := Replay(&fakeServer{salt: "live"}, trace)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Diverged == nil || rep.Diverged.Seq != 0 {
		t.Fatalf("pool mismatch not detected: %+v", rep)
	}
	rep, err = Replay(&fakeServer{salt: "live"}, trace, WithIgnorePool())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Diverged != nil {
		t.Fatalf("pool mismatch not masked: %s", rep.Diverged)
	}
}
