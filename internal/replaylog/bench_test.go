package replaylog

import (
	"encoding/json"
	"testing"

	"dyncg/internal/api"
)

// benchLog is nil so the disabled case measures the real hot-path guard:
// a package-level variable (not a constant) keeps the compiler from
// folding the branch away, exactly like Server.rlog on a server without
// -log-dir. The pinned gate on this case is 0 allocs/op — recording off
// must cost the serving path nothing.
var benchLog *Log

// BenchmarkReplayLogAppend measures the computation-log hook: the
// disabled nil-check path and a real enabled append (seal, hash, encode,
// write) of a representative record.
func BenchmarkReplayLogAppend(b *testing.B) {
	request := json.RawMessage(`{"v":1,"system":[[[0],[0]],[[1,2],[0]],[[0],[20,-1]]],"origin":0}`)
	response := json.RawMessage(`{"v":1,"algorithm":"closest-point-sequence","machine":{"topology":"hypercube","pes":64},"stats":{"time":740,"comm_steps":320,"local_steps":420,"rounds":110,"messages":5100},"pool":{"hit":true},"result":[{"point":1,"lo":0,"hi":6.333333333333333},{"point":2,"lo":6.333333333333333,"hi":"inf"}]}`)
	meta := api.ReplayMeta{Topology: "hypercube", PEs: 64}

	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchLog != nil {
				rec := api.ReplayRecord{
					Method: "POST", Path: "/v1/closest-point-sequence",
					Status: 200, Meta: meta, Request: request, Response: response,
				}
				if err := benchLog.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("enabled", func(b *testing.B) {
		l, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := api.ReplayRecord{
				Method: "POST", Path: "/v1/closest-point-sequence",
				Status: 200, Meta: meta, Request: request, Response: response,
			}
			if err := l.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
