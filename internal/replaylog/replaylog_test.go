package replaylog

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dyncg/internal/api"
)

// pinnedClock returns a deterministic strictly increasing clock.
func pinnedClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func mustOpen(t *testing.T, dir string, opts ...Option) *Log {
	t.Helper()
	l, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := l.Append(api.ReplayRecord{
			Method:   "POST",
			Path:     "/v1/steady-hull",
			Status:   200,
			Meta:     api.ReplayMeta{Topology: "mesh", PEs: 16},
			Request:  json.RawMessage(`{"points":[[0,0],[1,1]]}`),
			Response: json.RawMessage(`{"hull":[[0,0],[1,1]]}`),
		})
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestAppendCloseVerify(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, WithNow(pinnedClock()))
	appendN(t, l, 5)
	if seq, hash := l.Head(); seq != 5 || hash == "" {
		t.Fatalf("Head() = (%d, %q), want (5, non-empty)", seq, hash)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := l.Stats()
	if st.Records != 5 || st.Segments != 1 || st.Errors != 0 || st.Bytes == 0 {
		t.Fatalf("Stats() = %+v", st)
	}

	n, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if n != 6 { // 5 records + 1 anchor
		t.Fatalf("VerifyChain verified %d records, want 6", n)
	}
	recs, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	last := recs[len(recs)-1]
	if !last.Anchor || last.Count != 5 || last.Root == "" {
		t.Fatalf("final record is not a 5-leaf anchor: %+v", last)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has Seq %d", i, rec.Seq)
		}
	}
}

func TestRotationAndResume(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, WithNow(pinnedClock()), WithMaxSegment(1))
	appendN(t, l, 3) // rotation after every record
	segs, err := Segments(dir)
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	if len(segs) != 4 { // 3 sealed + 1 open
		t.Fatalf("got %d segments, want 4: %v", len(segs), segs)
	}

	// Resume without closing: the open (unsealed) segment is continued.
	l2 := mustOpen(t, dir, WithNow(pinnedClock()), WithMaxSegment(1))
	appendN(t, l2, 2)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Resume after a clean close: a new segment chains from the anchor.
	l3 := mustOpen(t, dir, WithNow(pinnedClock()))
	appendN(t, l3, 1)
	if err := l3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir after resume: %v", err)
	}
	var comps, anchors int
	for _, rec := range recs {
		if rec.Anchor {
			anchors++
		} else {
			comps++
		}
	}
	if comps != 6 {
		t.Fatalf("got %d computation records, want 6", comps)
	}
	if anchors < 4 {
		t.Fatalf("got %d anchors, want at least 4", anchors)
	}
}

func TestOpenRefusesTamperedLog(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, WithNow(pinnedClock()))
	appendN(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	flipByteInRecord(t, dir, 1)
	if _, err := Open(dir); err == nil {
		t.Fatal("Open resumed a tampered log")
	}
}

// flipByteInRecord flips one payload byte of record seq in its segment.
func flipByteInRecord(t *testing.T, dir string, seq int) {
	t.Helper()
	segs, err := Segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("Segments: %v (%d)", err, len(segs))
	}
	line := 0
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
		for i := range lines {
			if line == seq {
				// Flip a byte inside the path value, away from JSON
				// structure, so only the hash check can catch it.
				k := bytes.Index(lines[i], []byte("/v1/"))
				if k < 0 {
					k = len(lines[i]) / 2
				}
				lines[i][k+1] ^= 0x01
				out := append(bytes.Join(lines, []byte("\n")), '\n')
				if err := os.WriteFile(seg, out, 0o644); err != nil {
					t.Fatalf("WriteFile: %v", err)
				}
				return
			}
			line++
		}
	}
	t.Fatalf("record %d not found", seq)
}

func TestVerifyChainDetectsEveryFlippedByte(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, WithNow(pinnedClock()))
	appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := Segments(dir)
	orig, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Every single-byte flip anywhere in the segment must be detected.
	for pos := 0; pos < len(orig); pos++ {
		data := append([]byte(nil), orig...)
		data[pos] ^= 0x01
		if _, err := VerifySegment(data); err == nil {
			t.Fatalf("flip at byte %d (%q) went undetected", pos, orig[pos])
		}
	}
	if _, err := VerifySegment(orig); err != nil {
		t.Fatalf("pristine segment failed verification: %v", err)
	}
}

func TestTamperErrorReportsFirstBadRecord(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, WithNow(pinnedClock()))
	appendN(t, l, 4)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	flipByteInRecord(t, dir, 2)
	n, err := VerifyChain(dir)
	if err == nil {
		t.Fatal("VerifyChain passed a tampered log")
	}
	var te *TamperError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T, want *TamperError: %v", err, err)
	}
	if te.Seq != 2 {
		t.Fatalf("TamperError.Seq = %d, want 2", te.Seq)
	}
	if n != 2 {
		t.Fatalf("VerifyChain verified %d records before failing, want 2", n)
	}
	if !strings.Contains(te.Error(), "record 2") {
		t.Fatalf("TamperError.Error() = %q", te.Error())
	}
}

func TestVerifyChainDetectsDroppedRecord(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, WithNow(pinnedClock()))
	appendN(t, l, 4)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := Segments(dir)
	data, _ := os.ReadFile(segs[0])
	lines := bytes.SplitAfter(data, []byte("\n"))
	out := append(append([]byte(nil), bytes.Join(lines[:1], nil)...), bytes.Join(lines[2:], nil)...)
	if err := os.WriteFile(segs[0], out, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := VerifyChain(dir); err == nil {
		t.Fatal("VerifyChain passed a log with a dropped record")
	}
}

func TestVerifyChainEmptyDir(t *testing.T) {
	if _, err := VerifyChain(t.TempDir()); err == nil {
		t.Fatal("VerifyChain passed an empty directory")
	}
}

func TestDir(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	defer l.Close()
	if l.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", l.Dir(), dir)
	}
}

func TestOpenPathIsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a regular file as the log directory")
	}
}

func TestMerkleRoot(t *testing.T) {
	h := func(s string) string {
		rec := api.ReplayRecord{Path: s}
		if err := seal(&rec, ""); err != nil {
			t.Fatalf("seal: %v", err)
		}
		return rec.Hash
	}
	a, b, c := h("a"), h("b"), h("c")
	if got := MerkleRoot(nil); got != "" {
		t.Fatalf("MerkleRoot(nil) = %q, want empty", got)
	}
	if got := MerkleRoot([]string{a}); got != a {
		t.Fatalf("MerkleRoot of one leaf = %q, want the leaf", got)
	}
	ab := MerkleRoot([]string{a, b})
	if ab == a || ab == b || ab == "" {
		t.Fatalf("MerkleRoot(a,b) = %q", ab)
	}
	if got := MerkleRoot([]string{a, b}); got != ab {
		t.Fatal("MerkleRoot is not deterministic")
	}
	if got := MerkleRoot([]string{b, a}); got == ab {
		t.Fatal("MerkleRoot ignores leaf order")
	}
	// Odd leaf promotion: root(a,b,c) = fold(root(a,b), c).
	abc := MerkleRoot([]string{a, b, c})
	if want := MerkleRoot([]string{ab, c}); abc != want {
		t.Fatalf("MerkleRoot(a,b,c) = %q, want %q", abc, want)
	}
}

func TestWriteToClosedLogErrors(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(api.ReplayRecord{Path: "/v1/x"}); err == nil {
		t.Fatal("Append to a closed log succeeded")
	}
	if st := l.Stats(); st.Errors == 0 {
		t.Fatal("failed append not counted in Stats().Errors")
	}
}
