package replaylog

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"dyncg/internal/api"
)

// TamperError reports the first record at which chain verification
// failed: the global record index (Seq), the segment file, and why.
type TamperError struct {
	Seq     uint64 // index of the first bad record
	Segment string // segment file the record lives in
	Reason  string
}

func (e *TamperError) Error() string {
	return fmt.Sprintf("replaylog: record %d (%s): %s", e.Seq, e.Segment, e.Reason)
}

// verifier carries the chain state threaded through segments.
type verifier struct {
	seq    uint64   // expected Seq of the next record
	prev   string   // expected Prev of the next record
	leaves []string // record hashes since the last anchor
}

// verifyLine checks one JSONL line against the chain: strict decode,
// canonical byte equality, hash recomputation, Prev/Seq linkage, and —
// for anchors — the Merkle root and count of the segment's records. Any
// single flipped byte in the line fails one of these checks: a flip in
// a structural byte breaks the strict decode or the canonical
// re-encoding, a flip in the content changes the recomputed hash, and a
// flip in the stored hash breaks both the hash equality and the next
// record's Prev link.
func (v *verifier) verifyLine(line []byte, seg string) (api.ReplayRecord, error) {
	fail := func(reason string, args ...any) (api.ReplayRecord, error) {
		return api.ReplayRecord{}, &TamperError{Seq: v.seq, Segment: seg, Reason: fmt.Sprintf(reason, args...)}
	}
	var rec api.ReplayRecord
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return fail("undecodable record: %v", err)
	}
	canonical, err := json.Marshal(&rec)
	if err != nil {
		return fail("unencodable record: %v", err)
	}
	if !bytes.Equal(canonical, line) {
		return fail("stored bytes differ from the canonical encoding")
	}
	if rec.V != api.Version {
		return fail("schema version %d (want %d)", rec.V, api.Version)
	}
	if rec.Seq != v.seq {
		return fail("sequence %d (want %d)", rec.Seq, v.seq)
	}
	if rec.Prev != v.prev {
		return fail("prev hash %q does not match chain head %q", rec.Prev, v.prev)
	}
	stored := rec.Hash
	rec.Hash = ""
	pre, err := json.Marshal(&rec)
	if err != nil {
		return fail("unencodable record: %v", err)
	}
	sum := sha256.Sum256(pre)
	if got := hex.EncodeToString(sum[:]); got != stored {
		return fail("content hash %s does not match stored %s", got, stored)
	}
	rec.Hash = stored
	if rec.Anchor {
		if rec.Count != uint64(len(v.leaves)) {
			return fail("anchor covers %d records, segment has %d", rec.Count, len(v.leaves))
		}
		if root := MerkleRoot(v.leaves); rec.Root != root {
			return fail("anchor Merkle root %s does not match recomputed %s", rec.Root, root)
		}
		v.leaves = v.leaves[:0]
	} else {
		v.leaves = append(v.leaves, rec.Hash)
	}
	v.seq++
	v.prev = rec.Hash
	return rec, nil
}

// verifySegment verifies one segment's raw bytes, appending its records.
func (v *verifier) verifySegment(data []byte, seg string) ([]api.ReplayRecord, error) {
	var recs []api.ReplayRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 64<<20)
	for sc.Scan() {
		rec, err := v.verifyLine(sc.Bytes(), seg)
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, &TamperError{Seq: v.seq, Segment: seg, Reason: err.Error()}
	}
	return recs, nil
}

// VerifySegment verifies a single segment's raw bytes as a standalone
// chain starting at (seq 0, genesis prev) and returns its records — the
// parsing-and-verification core that FuzzReplayLogDecode drives.
func VerifySegment(data []byte) ([]api.ReplayRecord, error) {
	var v verifier
	return v.verifySegment(data, "segment")
}

// verifyDir verifies the given segment files as one chain.
func verifyDir(dir string, segs []string) ([]api.ReplayRecord, error) {
	var v verifier
	var all []api.ReplayRecord
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			return all, fmt.Errorf("replaylog: %w", err)
		}
		recs, err := v.verifySegment(data, seg)
		all = append(all, recs...)
		if err != nil {
			return all, err
		}
	}
	return all, nil
}

// VerifyChain verifies the whole log under dir — every segment, in
// chain order — and returns the number of records (anchors included)
// that verified before any failure. On tampering the error is a
// *TamperError carrying the index of the first bad record.
func VerifyChain(dir string) (int, error) {
	recs, err := ReadDir(dir)
	return len(recs), err
}

// ReadDir verifies the whole log under dir and returns its records
// (anchors included) in chain order.
func ReadDir(dir string) ([]api.ReplayRecord, error) {
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("replaylog: no log segments under %s", dir)
	}
	return verifyDir(dir, segs)
}
