package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleCaller: a lone caller is a leader with no followers.
func TestSingleCaller(t *testing.T) {
	g := New[int]()
	v, shared, err := g.Do(context.Background(), "k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 || shared {
		t.Fatalf("Do = (%d, %v, %v), want (42, false, nil)", v, shared, err)
	}
	if g.Merged() != 0 {
		t.Fatalf("Merged = %d, want 0", g.Merged())
	}
}

// TestMergesConcurrentCalls: N concurrent calls with the same key run
// fn exactly once; everyone gets the leader's value; N-1 are merged.
func TestMergesConcurrentCalls(t *testing.T) {
	const n = 16
	g := New[string]()
	var computations atomic.Int64
	gate := make(chan struct{}) // holds the leader inside fn
	inFn := make(chan struct{}) // signals the leader reached fn
	results := make([]string, n)
	shareds := make([]bool, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], shareds[0], errs[0] = g.Do(context.Background(), "k", func() (string, error) {
			computations.Add(1)
			close(inFn)
			<-gate
			return "answer", nil
		})
	}()
	<-inFn // leader is inside fn; everyone else must merge
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shareds[i], errs[i] = g.Do(context.Background(), "k", func() (string, error) {
				computations.Add(1)
				return "wrong-leader", nil
			})
		}(i)
	}
	// Wait for all followers to attach before releasing the leader.
	for g.Merged() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if c := computations.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1", c)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != "answer" {
			t.Fatalf("caller %d: (%q, %v), want (answer, nil)", i, results[i], errs[i])
		}
		if !shareds[i] {
			t.Errorf("caller %d: shared = false, want true (flight had %d callers)", i, n)
		}
	}
	if m := g.Merged(); m != n-1 {
		t.Fatalf("Merged = %d, want %d", m, n-1)
	}
}

// TestDistinctKeysDoNotMerge: different keys run independent flights.
func TestDistinctKeysDoNotMerge(t *testing.T) {
	g := New[int]()
	var computations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), fmt.Sprintf("k%d", i), func() (int, error) {
				computations.Add(1)
				time.Sleep(5 * time.Millisecond)
				return i, nil
			})
			if err != nil || v != i {
				t.Errorf("key k%d: (%d, %v)", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if c := computations.Load(); c != 8 {
		t.Fatalf("computations = %d, want 8", c)
	}
	if g.Merged() != 0 {
		t.Fatalf("Merged = %d, want 0", g.Merged())
	}
}

// TestErrorFansOut: the leader's error reaches every follower.
func TestErrorFansOut(t *testing.T) {
	g := New[int]()
	boom := errors.New("boom")
	gate := make(chan struct{})
	inFn := make(chan struct{})
	go g.Do(context.Background(), "k", func() (int, error) {
		close(inFn)
		<-gate
		return 0, boom
	})
	<-inFn
	done := make(chan error, 1)
	go func() {
		_, shared, err := g.Do(context.Background(), "k", func() (int, error) {
			t.Error("follower ran fn")
			return 0, nil
		})
		if !shared {
			t.Error("follower shared = false")
		}
		done <- err
	}()
	for g.Merged() < 1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("follower err = %v, want boom", err)
	}
}

// TestFollowerContextExpiry: a follower whose context expires unblocks
// with ctx.Err() while the leader keeps running for itself.
func TestFollowerContextExpiry(t *testing.T) {
	g := New[int]()
	gate := make(chan struct{})
	inFn := make(chan struct{})
	leaderDone := make(chan int, 1)
	go func() {
		v, _, _ := g.Do(context.Background(), "k", func() (int, error) {
			close(inFn)
			<-gate
			return 7, nil
		})
		leaderDone <- v
	}()
	<-inFn
	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func() (int, error) { return 0, nil })
		followerDone <- err
	}()
	for g.Merged() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-followerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(gate)
	if v := <-leaderDone; v != 7 {
		t.Fatalf("leader v = %d, want 7", v)
	}
}

// TestSequentialCallsRecompute: once a flight settles, the next call
// with the same key computes fresh (retention is the cache's job).
func TestSequentialCallsRecompute(t *testing.T) {
	g := New[int]()
	var computations atomic.Int64
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
			return int(computations.Add(1)), nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: (%d, %v, %v)", i, v, shared, err)
		}
	}
}

// TestPanicUnblocksFollowers: a panicking leader must not strand its
// followers on the done channel.
func TestPanicUnblocksFollowers(t *testing.T) {
	g := New[int]()
	gate := make(chan struct{})
	inFn := make(chan struct{})
	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		g.Do(context.Background(), "k", func() (int, error) {
			close(inFn)
			<-gate
			panic("kaboom")
		})
	}()
	<-inFn
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		g.Do(context.Background(), "k", func() (int, error) { return 0, nil })
	}()
	for g.Merged() < 1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if p := <-leaderPanicked; p == nil {
		t.Fatal("leader panic did not propagate")
	}
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower stranded after leader panic")
	}
	// The key must be free again.
	v, _, err := g.Do(context.Background(), "k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("post-panic Do = (%d, %v)", v, err)
	}
}
