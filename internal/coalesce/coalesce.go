// Package coalesce merges identical in-flight requests into one
// computation with fanned-out results — a singleflight front door for
// the serving layer, keyed by the canonical request hash
// (internal/canon).
//
// The first caller of a key becomes the leader and runs the function;
// callers arriving while the leader is in flight become followers and
// block until the leader settles, then receive the leader's result.
// Under Dallant–Iacono's conditional lower bounds the computation
// behind each key is inherently expensive, so merging N identical
// concurrent requests into one pool checkout is the honest N× win —
// no algorithmic shortcut is being papered over.
//
// Unlike golang.org/x/sync/singleflight (unavailable here; this is a
// stdlib-only tree), followers honour their own context: a follower
// whose deadline expires unblocks with its ctx error while the leader
// runs on for the remaining followers. Results are not retained after
// the last flight completes — caching completed responses is
// internal/rcache's job, with its own byte bound.
package coalesce

import (
	"context"
	"sync"
	"sync/atomic"
)

// call is one in-flight computation.
type call[V any] struct {
	done      chan struct{} // closed when val/err are settled
	followers atomic.Int64  // callers merged into this flight
	val       V
	err       error
}

// Group coalesces concurrent Do calls with equal keys, one flight per
// key. Use New; the zero value is not ready.
type Group[V any] struct {
	mu     sync.Mutex
	flight map[string]*call[V]
	merged atomic.Int64
}

// New returns an empty group.
func New[V any]() *Group[V] {
	return &Group[V]{flight: make(map[string]*call[V])}
}

// Do executes fn under key, coalescing with any in-flight call of the
// same key. The leader runs fn to completion regardless of its own
// context (its result is owed to the followers); followers block until
// the leader settles or their own ctx expires, whichever is first.
// shared reports whether the flight served more than one caller: true
// for every follower, and true for a leader that had at least one
// follower attach before it settled.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.flight[key]; ok {
		c.followers.Add(1)
		g.mu.Unlock()
		g.merged.Add(1)
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return v, true, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.flight[key] = c
	g.mu.Unlock()

	// Settle in a defer so a panicking fn still unblocks its followers
	// (they observe the zero value and nil error; the panic propagates
	// to the leader's caller). Removing the key and reading the follower
	// count happen under the same lock that admits followers, so the
	// count is exact: after the delete no caller can attach.
	defer func() {
		g.mu.Lock()
		delete(g.flight, key)
		shared = c.followers.Load() > 0
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}

// Merged returns the total number of calls that joined another caller's
// flight as followers since the group was created.
func (g *Group[V]) Merged() int64 { return g.merged.Load() }
