package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"dyncg/internal/api"
	"dyncg/internal/replaylog"
	"dyncg/internal/shard"
)

// Router fans one HTTP surface across N in-process server shards, each
// with its own machine pool, admission window, response cache, and
// coalescing group — erasing the single pool mutex (and single
// admission queue) from the hot path. Requests are routed by
// consistent hash (internal/shard):
//
//   - POST /v1/{algorithm} routes by the request's machine size class
//     (topology, point count, max degree, PEs floor, workers), so
//     identical requests always meet in the same shard — which is what
//     makes per-shard coalescing and caching effective — and requests
//     sharing a size class reuse the same shard's warm pool.
//   - Session requests route by session ID. Creation is round-robin;
//     each shard's registry mints IDs that consistent-hash back to it
//     (session.Registry.SetIDCheck), so every follow-up request lands
//     on the shard holding the session's pinned machine.
//
// All shards share the Config's replay log: records interleave in
// arrival order on one hash chain, exactly as a single server's
// concurrent requests do. /metrics serves the merged exposition
// (counters summed across shards, queue depths per shard). A Router
// over one shard routes nothing and behaves like the Server it wraps.
type Router struct {
	shards  []*Server
	ring    *shard.Ring
	mux     *http.ServeMux
	next    atomic.Uint64 // round-robin cursor for session creation
	rlog    *replaylog.Log
	maxBody int64
}

// NewRouter constructs n shards from the config (each gets the full
// admission window, pool capacity, and cache budget — bounds are
// per-shard) and the routing surface over them.
func NewRouter(n int, cfg Config) *Router {
	if n < 1 {
		n = 1
	}
	rt := &Router{
		ring: shard.New(n, 0),
		mux:  http.NewServeMux(),
		rlog: cfg.ReplayLog,
	}
	fleetCheck := fleetIDCheck(cfg)
	for i := 0; i < n; i++ {
		srv := New(cfg)
		if cfg.MemberID == "" && n > 1 {
			srv.member = fmt.Sprintf("shard-%d", i)
		}
		idx := i
		srv.sessions.SetIDCheck(func(id string) bool {
			return rt.ring.Lookup(id) == idx && (fleetCheck == nil || fleetCheck(id))
		})
		rt.shards = append(rt.shards, srv)
	}
	rt.maxBody = rt.shards[0].cfg.MaxBody
	rt.mux.HandleFunc("POST /v1/{algorithm}", rt.routeAlgorithm)
	rt.mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	rt.mux.HandleFunc("POST /v1/sessions", rt.routeSessionCreate)
	rt.mux.HandleFunc("POST /v1/sessions/{id}/update", rt.routeSessionByID)
	rt.mux.HandleFunc("GET /v1/sessions/{id}/query", rt.routeSessionByID)
	rt.mux.HandleFunc("DELETE /v1/sessions/{id}", rt.routeSessionByID)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt
}

// Handler returns the router's HTTP handler (the router itself).
func (rt *Router) Handler() http.Handler { return rt }

// ServeHTTP serves the routed surface. Requests that reach a shard get
// that shard's identity headers; router-level endpoints (healthz,
// metrics, cluster) stamp the schema version here.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Dyncg-Api-Version", apiVersionHeader)
	rt.mux.ServeHTTP(w, r)
}

// Shards returns the shard servers (exposed for tests and metrics).
func (rt *Router) Shards() []*Server { return rt.shards }

// SetDraining flips drain mode on every shard.
func (rt *Router) SetDraining(v bool) {
	for _, s := range rt.shards {
		s.SetDraining(v)
	}
}

// InFlight returns the number of executing requests across all shards.
func (rt *Router) InFlight() int {
	n := 0
	for _, s := range rt.shards {
		n += s.InFlight()
	}
	return n
}

// ClassKey is the routing key of a one-shot request: a deterministic
// digest of the machine size class it will occupy. Identical requests
// agree on it trivially (the coalescing requirement); requests that
// differ only in coefficients or query fields share it, keeping a
// working set's machine classes warm in as few shards as possible.
func ClassKey(req *api.Request) string {
	n := len(req.System)
	k := 0
	for _, pt := range req.System {
		for _, cf := range pt {
			if len(cf) > k {
				k = len(cf)
			}
		}
	}
	return fmt.Sprintf("%s|%d|%d|%d|%d", req.Options.Topology, n, k, req.Options.PEs, req.Options.Workers)
}

// routeAlgorithm reads and decodes the body once, picks the shard by
// size-class hash, and hands the shard the predecoded request via the
// context. Bodies that fail to read or parse route to shard 0, which
// reproduces the decode failure byte-for-byte (the error never depends
// on shard state).
func (rt *Router) routeAlgorithm(w http.ResponseWriter, r *http.Request) {
	pd := &predecoded{}
	r.Body = http.MaxBytesReader(w, r.Body, rt.maxBody)
	raw, err := io.ReadAll(r.Body)
	pd.raw = raw
	idx := 0
	if err != nil {
		pd.status = http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			pd.status = http.StatusRequestEntityTooLarge
		}
		pd.err = fmt.Errorf("server: decoding request: %w", err)
	} else {
		var req api.Request
		if uerr := json.Unmarshal(raw, &req); uerr != nil {
			pd.status = http.StatusBadRequest
			pd.err = fmt.Errorf("server: decoding request: %w", uerr)
		} else {
			pd.req = &req
			idx = rt.ring.Lookup(ClassKey(&req))
		}
	}
	ctx := context.WithValue(r.Context(), predecodedKey{}, pd)
	rt.shards[idx].ServeHTTP(w, r.WithContext(ctx))
}

// routeSessionCreate places new sessions round-robin; the chosen
// shard's registry mints an ID that hashes back to it.
func (rt *Router) routeSessionCreate(w http.ResponseWriter, r *http.Request) {
	idx := int(rt.next.Add(1)-1) % len(rt.shards)
	rt.shards[idx].ServeHTTP(w, r)
}

// routeSessionByID routes update/query/delete to the shard owning the
// session ID. Unknown IDs still route deterministically, and the owning
// shard's registry reports no_session.
func (rt *Router) routeSessionByID(w http.ResponseWriter, r *http.Request) {
	rt.shards[rt.ring.Lookup(r.PathValue("id"))].ServeHTTP(w, r)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Draining flips on every shard together; shard 0 speaks for all.
	rt.shards[0].handleHealthz(w, r)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	for _, s := range rt.shards {
		s.sessions.Sweep()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	writeAllMetrics(w, rt.shards, rt.rlog)
}
