package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"dyncg/internal/api"
)

// TestIdentityHeaders: every response — success, error, healthz —
// carries X-Dyncg-Member and X-Dyncg-Api-Version.
func TestIdentityHeaders(t *testing.T) {
	s := New(Config{MemberID: "m7"})
	for _, path := range []string{"/healthz", "/v1/cluster", "/metrics"} {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if got := w.Header().Get("X-Dyncg-Member"); got != "m7" {
			t.Errorf("%s: X-Dyncg-Member = %q, want m7", path, got)
		}
		if got := w.Header().Get("X-Dyncg-Api-Version"); got != strconv.Itoa(api.Version) {
			t.Errorf("%s: X-Dyncg-Api-Version = %q, want %d", path, got, api.Version)
		}
	}
	// An unnamed server is member "local".
	w := postRec(t, New(Config{}).Handler(), "steady-hull", []byte("{"))
	if got := w.Header().Get("X-Dyncg-Member"); got != "local" {
		t.Errorf("error response X-Dyncg-Member = %q, want local", got)
	}
}

// TestClusterSingle: a standalone server reports itself as the one
// member and owns every probed key.
func TestClusterSingle(t *testing.T) {
	s := New(Config{MemberID: "m0"})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/cluster?key=abc", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp api.ClusterResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.V != api.Version || resp.Mode != "single" {
		t.Fatalf("v=%d mode=%q", resp.V, resp.Mode)
	}
	if len(resp.Members) != 1 || resp.Members[0].ID != "m0" || !resp.Members[0].Healthy {
		t.Fatalf("members = %+v", resp.Members)
	}
	if resp.Probe == nil || resp.Probe.Key != "abc" || resp.Probe.Member != "m0" {
		t.Fatalf("probe = %+v", resp.Probe)
	}
	s.SetDraining(true)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/cluster", nil))
	var drained api.ClusterResponse
	if err := json.Unmarshal(w.Body.Bytes(), &drained); err != nil {
		t.Fatal(err)
	}
	if drained.Members[0].Healthy {
		t.Error("draining member reported healthy")
	}
}

// TestClusterSharded: the router reports one row per shard and
// resolves key probes to the owning shard — the same shard its
// routing actually uses (verified by a session lookup).
func TestClusterSharded(t *testing.T) {
	rt := NewRouter(3, Config{})
	w := routerDo(t, rt, http.MethodGet, "/v1/cluster", nil)
	var resp api.ClusterResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "sharded" || len(resp.Members) != 3 {
		t.Fatalf("mode=%q members=%d", resp.Mode, len(resp.Members))
	}
	ids := map[string]bool{}
	for _, m := range resp.Members {
		ids[m.ID] = true
	}
	for _, want := range []string{"shard-0", "shard-1", "shard-2"} {
		if !ids[want] {
			t.Errorf("missing member %s in %v", want, resp.Members)
		}
	}
	w = routerDo(t, rt, http.MethodGet, "/v1/cluster?key=s-1-deadbeef", nil)
	var probed api.ClusterResponse
	if err := json.Unmarshal(w.Body.Bytes(), &probed); err != nil {
		t.Fatal(err)
	}
	want := rt.shards[rt.ring.Lookup("s-1-deadbeef")].member
	if probed.Probe == nil || probed.Probe.Member != want {
		t.Fatalf("probe = %+v, want member %s", probed.Probe, want)
	}
}

// TestFleetIDMinting: a worker configured with a fleet roster mints
// session IDs that are salted with its member ID and consistent-hash
// home to it on the fleet's named ring.
func TestFleetIDMinting(t *testing.T) {
	cfg := Config{MemberID: "m1", FleetIDs: []string{"m0", "m1", "m2"}}
	check := fleetIDCheck(cfg)
	if check == nil {
		t.Fatal("fleetIDCheck = nil for a 3-member fleet")
	}
	s := New(cfg)
	req := endpointCases(t)["closest-point-sequence"]
	body, err := json.Marshal(api.SessionCreateRequest{
		V: api.Version, System: req.System, Algorithm: "closest-point-sequence",
		Options: api.SessionOptions{Topology: "hypercube"},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader(body))
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("create: %d: %s", w.Code, w.Body)
	}
	var out api.SessionCreateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	id := out.Session.ID
	if len(id) < 5 || id[:5] != "s-m1-" {
		t.Errorf("session ID %q not salted with member m1", id)
	}
	if !check(id) {
		t.Errorf("session ID %q does not hash home to m1", id)
	}
}
