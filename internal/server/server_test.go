package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dyncg/internal/api"
	"dyncg/internal/core"
	"dyncg/internal/fault"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/topo"
)

// wireSystem converts a system to its wire form (point → coordinate →
// ascending coefficients).
func wireSystem(sys *motion.System) [][][]float64 {
	out := make([][][]float64, len(sys.Points))
	for i, p := range sys.Points {
		coords := make([][]float64, len(p.Coord))
		for j, c := range p.Coord {
			coords[j] = append([]float64(nil), c...)
		}
		out[i] = coords
	}
	return out
}

// post sends one v1 request to the handler and decodes the envelope with
// the result kept raw.
type rawResponse struct {
	V         int              `json:"v"`
	Algorithm string           `json:"algorithm"`
	Machine   api.MachineInfo  `json:"machine"`
	Stats     api.Stats        `json:"stats"`
	Pool      api.PoolInfo     `json:"pool"`
	Fault     *api.FaultReport `json:"fault"`
	CostTree  string           `json:"cost_tree"`
	Result    json.RawMessage  `json:"result"`
}

func post(t *testing.T, h http.Handler, algo string, req api.Request) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/"+algo, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.Bytes()
}

func decodeOK(t *testing.T, status int, body []byte) rawResponse {
	t.Helper()
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp rawResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v (%s)", err, body)
	}
	return resp
}

func decodeErr(t *testing.T, body []byte) api.Error {
	t.Helper()
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decoding error envelope: %v (%s)", err, body)
	}
	return e
}

// endpointCases is one request per serving endpoint, covering every
// algorithm the facade exposes.
func endpointCases(t *testing.T) map[string]api.Request {
	planar := motion.Random(rand.New(rand.NewSource(11)), 8, 1, 2, 10)
	colliding := motion.Converging(rand.New(rand.NewSource(12)), 8)
	diverging := motion.Diverging(rand.New(rand.NewSource(13)), 8)
	small := motion.Random(rand.New(rand.NewSource(14)), 6, 1, 2, 10)
	req := func(sys *motion.System, mod func(*api.Request)) api.Request {
		r := api.Request{V: api.Version, System: wireSystem(sys)}
		if mod != nil {
			mod(&r)
		}
		return r
	}
	return map[string]api.Request{
		"closest-point-sequence":  req(planar, func(r *api.Request) { r.Origin = 1 }),
		"farthest-point-sequence": req(planar, func(r *api.Request) { r.Origin = 2 }),
		"collision-times":         req(colliding, nil),
		"hull-vertex-intervals":   req(planar, func(r *api.Request) { r.Origin = 0 }),
		"containment-intervals":   req(planar, func(r *api.Request) { r.Dims = []float64{40, 40} }),
		"smallest-hypercube-edge": req(planar, nil),
		"smallest-ever-hypercube": req(planar, nil),
		"steady-nearest-neighbor": req(planar, func(r *api.Request) { r.Origin = 3 }),
		"steady-closest-pair":     req(planar, nil),
		"steady-hull":             req(diverging, nil),
		"steady-farthest-pair":    req(diverging, nil),
		"steady-min-area-rect":    req(diverging, nil),
		"closest-pair-sequence":   req(small, nil),
		"farthest-pair-sequence":  req(small, nil),
	}
}

// runDirect executes the request against the facade directly — the
// reference the served answers must match bit for bit. The facade calls
// here are written out by hand (not routed through the dispatch table)
// so the test exercises an independent path to each algorithm.
func runDirect(t *testing.T, name string, tp topo.Topology, req api.Request) (any, machine.Stats) {
	t.Helper()
	sys, err := systemFrom(req.System)
	if err != nil {
		t.Fatal(err)
	}
	m, err := topo.NewMachine(tp, algorithms[name].pes(string(tp), sys))
	if err != nil {
		t.Fatal(err)
	}
	var result any
	switch name {
	case "closest-point-sequence":
		seq, err := core.ClosestPointSequence(m, sys, req.Origin)
		check(t, err)
		result = neighborEvents(seq)
	case "farthest-point-sequence":
		seq, err := core.FarthestPointSequence(m, sys, req.Origin)
		check(t, err)
		result = neighborEvents(seq)
	case "collision-times":
		cs, err := core.CollisionTimes(m, sys, req.Origin)
		check(t, err)
		result = collisions(cs)
	case "hull-vertex-intervals":
		ivs, err := core.HullVertexIntervals(m, sys, req.Origin)
		check(t, err)
		result = intervals(ivs)
	case "containment-intervals":
		ivs, err := core.ContainmentIntervals(m, sys, req.Dims)
		check(t, err)
		result = intervals(ivs)
	case "smallest-hypercube-edge":
		pw, err := core.SmallestHypercubeEdge(m, sys)
		check(t, err)
		result = piecewise(pw)
	case "smallest-ever-hypercube":
		dmin, tmin, err := core.SmallestEverHypercube(m, sys)
		check(t, err)
		result = api.MinCube{D: dmin, T: tmin}
	case "steady-nearest-neighbor":
		nn, err := core.SteadyNearestNeighborD(m, sys, req.Origin, req.Farthest)
		check(t, err)
		result = api.Neighbor{Point: nn}
	case "steady-closest-pair":
		a, b, err := core.SteadyClosestPair(m, sys)
		check(t, err)
		result = api.Pair{A: a, B: b}
	case "steady-hull":
		hull, err := core.SteadyHull(m, sys)
		check(t, err)
		result = api.Hull{Vertices: hull}
	case "steady-farthest-pair":
		a, b, d2, err := core.SteadyFarthestPair(m, sys)
		check(t, err)
		result = api.FarthestPair{A: a, B: b, Dist2: coefs(d2)}
	case "steady-min-area-rect":
		rect, err := core.SteadyMinAreaRect(m, sys)
		check(t, err)
		result = api.Rect{Edge: rect.Edge, Area: fmt.Sprintf("%v", rect.Area)}
	case "closest-pair-sequence":
		seq, err := core.ClosestPairSequence(m, sys)
		check(t, err)
		result = pairEvents(seq)
	case "farthest-pair-sequence":
		seq, err := core.FarthestPairSequence(m, sys)
		check(t, err)
		result = pairEvents(seq)
	default:
		t.Fatalf("no direct path for %q", name)
	}
	return result, m.Stats()
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestEndpointsBitIdenticalToFacade drives every endpoint over real HTTP
// (httptest server, both topology families of the paper) and demands the
// served result and simulated Stats match a direct facade run byte for
// byte.
func TestEndpointsBitIdenticalToFacade(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tp := range []topo.Topology{topo.Hypercube, topo.Mesh} {
		for name, req := range endpointCases(t) {
			t.Run(string(tp)+"/"+name, func(t *testing.T) {
				req.Options.Topology = string(tp)
				body, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}
				hr, err := http.Post(ts.URL+"/v1/"+name, "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				defer hr.Body.Close()
				var resp rawResponse
				if hr.StatusCode != http.StatusOK {
					t.Fatalf("status %d", hr.StatusCode)
				}
				if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
					t.Fatal(err)
				}

				wantResult, wantStats := runDirect(t, name, tp, req)
				wantJSON, err := json.Marshal(wantResult)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(resp.Result, wantJSON) {
					t.Errorf("served result differs from the direct facade call:\n  got  %s\n  want %s",
						resp.Result, wantJSON)
				}
				if got, want := resp.Stats, api.FromStats(wantStats); got != want {
					t.Errorf("served stats %+v, want %+v", got, want)
				}
				if resp.V != api.Version || resp.Algorithm != name {
					t.Errorf("envelope v=%d algorithm=%q", resp.V, resp.Algorithm)
				}
			})
		}
	}
}

// TestFaultedRequestBitIdentical pins the fault path: a request with a
// fault spec must bypass the pool and reproduce a direct recovery-harness
// run — same answer, same cumulative stats, same fault tally.
func TestFaultedRequestBitIdentical(t *testing.T) {
	s := New(Config{})
	sys := motion.Diverging(rand.New(rand.NewSource(13)), 8)
	const specStr = "transient=0.05,retries=3,fail=1,gap=150"
	req := api.Request{
		V:      api.Version,
		System: wireSystem(sys),
		Options: api.Options{
			Faults:    specStr,
			FaultSeed: 42,
		},
	}
	status, body := post(t, s.Handler(), "steady-hull", req)
	resp := decodeOK(t, status, body)
	if !resp.Pool.Bypassed || resp.Pool.Hit {
		t.Errorf("fault-injected request pool info = %+v, want bypassed", resp.Pool)
	}
	if resp.Fault == nil {
		t.Fatal("fault-injected response carries no fault report")
	}

	spec, err := fault.ParseSpec(specStr)
	check(t, err)
	net, err := topo.NewNetwork(topo.Hypercube, algorithms["steady-hull"].pes("hypercube", sys))
	check(t, err)
	var hull []int
	res, err := fault.Run(net, fault.NewPlan(spec, 42), func(m *machine.M) error {
		if m.Size() < sys.N() {
			return fmt.Errorf("degraded below %d PEs: %w", sys.N(), machine.ErrTooFewPEs)
		}
		var err error
		hull, err = core.SteadyHull(m, sys)
		return err
	})
	check(t, err)
	wantJSON, err := json.Marshal(api.Hull{Vertices: hull})
	check(t, err)
	if !bytes.Equal(resp.Result, wantJSON) {
		t.Errorf("faulted result %s, want %s", resp.Result, wantJSON)
	}
	if got, want := resp.Stats, api.FromStats(res.Stats); got != want {
		t.Errorf("faulted stats %+v, want %+v", got, want)
	}
	want := api.FaultReport{Attempts: res.Attempts, Transients: res.Transients,
		RetryRounds: res.RetryRounds, Failed: res.Failed}
	if resp.Fault.Attempts != want.Attempts || resp.Fault.Transients != want.Transients ||
		resp.Fault.RetryRounds != want.RetryRounds || len(resp.Fault.Failed) != len(want.Failed) {
		t.Errorf("fault report %+v, want %+v", *resp.Fault, want)
	}
	if want.Attempts < 2 {
		t.Errorf("fault spec with fail=1 recovered in %d attempt(s); the test exercised no remap", want.Attempts)
	}
}

// TestPoolReuseAcrossRequests: the second identical request must hit the
// pool and still produce the identical answer and stats.
func TestPoolReuseAcrossRequests(t *testing.T) {
	s := New(Config{})
	req := endpointCases(t)["steady-hull"]
	st1, b1 := post(t, s.Handler(), "steady-hull", req)
	first := decodeOK(t, st1, b1)
	if first.Pool.Hit {
		t.Error("first request reported a pool hit on an empty pool")
	}
	st2, b2 := post(t, s.Handler(), "steady-hull", req)
	second := decodeOK(t, st2, b2)
	if !second.Pool.Hit {
		t.Error("second identical request missed the pool")
	}
	if !bytes.Equal(first.Result, second.Result) || first.Stats != second.Stats {
		t.Errorf("pooled rerun drifted: %s %+v vs %s %+v",
			first.Result, first.Stats, second.Result, second.Stats)
	}
	if got := s.Pool().Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("pool stats %+v, want 1 hit / 1 miss", got)
	}
}

// TestPoolEvictionUnderCap: with capacity 1, alternating size classes
// keep evicting; the server keeps answering correctly.
func TestPoolEvictionUnderCap(t *testing.T) {
	s := New(Config{PoolCap: 1})
	small := endpointCases(t)["steady-nearest-neighbor"] // 8 points → 8 PEs
	big := endpointCases(t)["steady-hull"]               // 8 points → 64 PEs
	for i := 0; i < 2; i++ {
		st, b := post(t, s.Handler(), "steady-nearest-neighbor", small)
		decodeOK(t, st, b)
		st, b = post(t, s.Handler(), "steady-hull", big)
		decodeOK(t, st, b)
	}
	ps := s.Pool().Stats()
	if ps.Evictions == 0 {
		t.Errorf("alternating size classes over a capacity-1 pool evicted nothing: %+v", ps)
	}
	if ps.Idle > 1 {
		t.Errorf("pool holds %d idle machines, capacity 1", ps.Idle)
	}
}

// TestTraceReturnsCostTree: options.trace attaches a tracer and the
// response carries the cost-attribution tree; the pooled machine comes
// back observer-free.
func TestTraceReturnsCostTree(t *testing.T) {
	s := New(Config{})
	req := endpointCases(t)["closest-point-sequence"]
	req.Options.Trace = true
	req.Options.CostDepth = 2
	status, body := post(t, s.Handler(), "closest-point-sequence", req)
	resp := decodeOK(t, status, body)
	if !strings.Contains(resp.CostTree, "closest-point-sequence") {
		t.Errorf("cost tree missing the root span:\n%s", resp.CostTree)
	}
	key := Key{Topo: "hypercube", PEs: resp.Machine.PEs, Workers: 1}
	m := s.Pool().Get(key)
	if m == nil {
		t.Fatal("traced machine was not returned to the pool")
	}
	if m.Observed() {
		t.Error("pooled machine still carries the request's tracer")
	}
}

// TestWorkersKeyedSeparately: a parallel request must not check out a
// serial machine (the worker count is part of the size class).
func TestWorkersKeyedSeparately(t *testing.T) {
	s := New(Config{})
	req := endpointCases(t)["steady-closest-pair"]
	st, b := post(t, s.Handler(), "steady-closest-pair", req)
	serial := decodeOK(t, st, b)

	req.Options.Workers = 2
	st, b = post(t, s.Handler(), "steady-closest-pair", req)
	par := decodeOK(t, st, b)
	if par.Pool.Hit {
		t.Error("workers=2 request hit the serial machine's class")
	}
	if par.Machine.Workers != 2 {
		t.Errorf("machine info workers = %d, want 2", par.Machine.Workers)
	}
	if !bytes.Equal(serial.Result, par.Result) || serial.Stats != par.Stats {
		t.Error("parallel backend drifted from serial (must be bit-identical)")
	}
}

// --- error and overload paths -------------------------------------------

func TestErrorMapping(t *testing.T) {
	s := New(Config{})
	good := endpointCases(t)["steady-hull"]
	cases := []struct {
		name   string
		algo   string
		mut    func(*api.Request)
		status int
		code   api.ErrorCode
	}{
		{"unknown algorithm", "no-such-algorithm", nil, http.StatusNotFound, "unknown_algorithm"},
		{"bad version", "steady-hull", func(r *api.Request) { r.V = 99 }, http.StatusBadRequest, "bad_version"},
		{"bad topology", "steady-hull", func(r *api.Request) { r.Options.Topology = "torus" }, http.StatusBadRequest, "bad_topology"},
		{"bad faults", "steady-hull", func(r *api.Request) { r.Options.Faults = "transient=nope" }, http.StatusBadRequest, "bad_faults"},
		{"empty system", "steady-hull", func(r *api.Request) { r.System = nil }, http.StatusBadRequest, "bad_system"},
		{"origin out of range", "closest-point-sequence", func(r *api.Request) { r.Origin = 99 }, http.StatusBadRequest, "bad_system"},
		{"ccc too small", "steady-hull", func(r *api.Request) {
			r.Options.Topology = "ccc"
			r.Options.PEs = 1 << 20
		}, http.StatusUnprocessableEntity, "too_few_pes"},
		{"not survivable", "steady-hull", func(r *api.Request) {
			r.Options.Faults = "fail=70,gap=10"
			r.Options.FaultSeed = 3
		}, http.StatusServiceUnavailable, "not_survivable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := good
			if tc.mut != nil {
				tc.mut(&req)
			}
			status, body := post(t, s.Handler(), tc.algo, req)
			if status != tc.status {
				t.Fatalf("status = %d (%s), want %d", status, body, tc.status)
			}
			if e := decodeErr(t, body); e.Code != tc.code {
				t.Errorf("code = %q, want %q (%s)", e.Code, tc.code, e.Message)
			}
		})
	}
}

func TestMalformedBody(t *testing.T) {
	s := New(Config{})
	r := httptest.NewRequest(http.MethodPost, "/v1/steady-hull", strings.NewReader("{not json"))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
	if e := decodeErr(t, w.Body.Bytes()); e.Code != "bad_request" {
		t.Errorf("code = %q, want bad_request", e.Code)
	}
}

func TestDrainingRejects(t *testing.T) {
	s := New(Config{})
	s.SetDraining(true)
	status, body := post(t, s.Handler(), "steady-hull", endpointCases(t)["steady-hull"])
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if e := decodeErr(t, body); e.Code != "draining" {
		t.Errorf("code = %q, want draining", e.Code)
	}
	hr := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, hr)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", w.Code)
	}
}

func TestQueueFullRejectsWith429(t *testing.T) {
	s := New(Config{MaxInFlight: 1, MaxQueue: 1})
	// Occupy the execution slot and the whole wait queue by hand; the
	// next request must bounce immediately with 429.
	s.sem <- struct{}{}
	s.queue <- struct{}{}
	s.queue <- struct{}{}
	defer func() { <-s.sem; <-s.queue; <-s.queue }()
	status, body := post(t, s.Handler(), "steady-hull", endpointCases(t)["steady-hull"])
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	if e := decodeErr(t, body); e.Code != "queue_full" {
		t.Errorf("code = %q, want queue_full", e.Code)
	}
}

func TestDeadlineWhileQueued(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	s.sem <- struct{}{} // all execution slots busy: the request queues
	defer func() { <-s.sem }()
	req := endpointCases(t)["steady-hull"]
	req.Options.DeadlineMs = 25
	start := time.Now()
	status, body := post(t, s.Handler(), "steady-hull", req)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d after %v, want 503", status, time.Since(start))
	}
	if e := decodeErr(t, body); e.Code != "deadline_queued" {
		t.Errorf("code = %q, want deadline_queued", e.Code)
	}
	if len(s.queue) != 0 {
		t.Errorf("timed-out request left %d entries in the queue", len(s.queue))
	}
}

// TestCancelledRequestFreesMachine: a request whose context dies during
// execution still returns its machine to the pool, and the next request
// reuses it.
func TestCancelledRequestFreesMachine(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	s.hookRunning = cancel // cancel after checkout, before the algorithm runs
	req := endpointCases(t)["steady-hull"]
	body, err := json.Marshal(req)
	check(t, err)
	r := httptest.NewRequest(http.MethodPost, "/v1/steady-hull", bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", w.Code)
	}
	if e := decodeErr(t, w.Body.Bytes()); e.Code != "deadline_exceeded" {
		t.Errorf("code = %q, want deadline_exceeded", e.Code)
	}
	if got := s.Pool().Stats(); got.Idle != 1 {
		t.Fatalf("cancelled request leaked its machine: %d idle, want 1", got.Idle)
	}
	if s.InFlight() != 0 {
		t.Fatalf("cancelled request leaked its execution slot")
	}
	s.hookRunning = nil
	status, b := post(t, s.Handler(), "steady-hull", req)
	if resp := decodeOK(t, status, b); !resp.Pool.Hit {
		t.Error("follow-up request missed the machine the cancelled request should have freed")
	}
}

func TestCancelledBeforeExecution(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	s.hookAdmitted = cancel // cancel after admission, before checkout
	req := endpointCases(t)["steady-hull"]
	body, err := json.Marshal(req)
	check(t, err)
	r := httptest.NewRequest(http.MethodPost, "/v1/steady-hull", bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if s.InFlight() != 0 || len(s.queue) != 0 {
		t.Error("pre-execution cancellation leaked admission slots")
	}
}

// --- observability -------------------------------------------------------

func TestHealthz(t *testing.T) {
	s := New(Config{})
	r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q, want 200 ok", w.Code, w.Body.String())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	req := endpointCases(t)["steady-hull"]
	for i := 0; i < 2; i++ {
		st, b := post(t, s.Handler(), "steady-hull", req)
		decodeOK(t, st, b)
	}
	r := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	out := w.Body.String()
	for _, want := range []string{
		`dyncgd_requests_total{algorithm="steady-hull",code="200"} 2`,
		`dyncgd_request_latency_us_count{algorithm="steady-hull"} 2`,
		`dyncgd_pool_checkouts_total{result="hit"} 1`,
		`dyncgd_pool_checkouts_total{result="miss"} 1`,
		"dyncgd_pool_idle 1",
		"dyncgd_inflight 0",
		"dyncgd_draining 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func newTestLogger(buf *bytes.Buffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey { // deterministic output
				return slog.Attr{}
			}
			return a
		},
	}))
}

func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{Logger: newTestLogger(&buf)})
	st, b := post(t, s.Handler(), "steady-hull", endpointCases(t)["steady-hull"])
	decodeOK(t, st, b)
	line := buf.String()
	for _, want := range []string{"algorithm=steady-hull", "status=200", "topology=hypercube", "pool_hit=false"} {
		if !strings.Contains(line, want) {
			t.Errorf("request log missing %q:\n%s", want, line)
		}
	}
}
