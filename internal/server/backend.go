package server

import (
	"net/http"
	"strconv"

	"dyncg/internal/api"
	"dyncg/internal/shard"
)

// Backend is one routing target of a fleet or shard router: something
// that serves the /v1/* surface under a stable member identity. The
// in-process implementation is *Server itself; internal/fleet provides
// the HTTP implementation that forwards to a worker process. Routing
// layers program against this interface so the same routing logic
// (consistent-hash by class key or session ID) works whether the
// member is a goroutine away or a process away.
type Backend interface {
	// ID is the member's stable identity: the value of the
	// X-Dyncg-Member response header and the ring key the member is
	// hashed under.
	ID() string
	// Healthy reports whether the member currently accepts traffic.
	Healthy() bool
	http.Handler
}

// apiVersionHeader is the value of X-Dyncg-Api-Version on every
// response: the v1 wire-schema version the server speaks.
var apiVersionHeader = strconv.Itoa(api.Version)

// ID returns the server's member identity (Config.MemberID, or
// "local" for a standalone server).
func (s *Server) ID() string { return s.member }

// Healthy reports whether the server accepts traffic (not draining).
func (s *Server) Healthy() bool { return !s.draining.Load() }

// ServeHTTP serves the full surface, stamping the identity headers —
// X-Dyncg-Member and X-Dyncg-Api-Version — on every response so a
// client (or a front door debugging a misroute) can always see which
// member produced the bytes and under which schema version.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h.Set("X-Dyncg-Api-Version", apiVersionHeader)
	h.Set("X-Dyncg-Member", s.member)
	s.mux.ServeHTTP(w, r)
}

// fleetIDCheck builds the session-ID predicate of a fleet worker:
// minted IDs must consistent-hash (on the fleet's named ring) back to
// this member, so the front door's ID-routed session requests always
// land on the process holding the pinned machine. Nil when the config
// is not a multi-member fleet.
func fleetIDCheck(cfg Config) func(string) bool {
	if cfg.MemberID == "" || len(cfg.FleetIDs) < 2 {
		return nil
	}
	ring := shard.NewNamed(cfg.FleetIDs, 0)
	me := cfg.MemberID
	return func(id string) bool { return ring.Lookup(id) == me }
}

// clusterMember snapshots this server's row of the /v1/cluster
// envelope.
func (s *Server) clusterMember() api.ClusterMember {
	return api.ClusterMember{
		ID:         s.member,
		Healthy:    !s.draining.Load(),
		Inflight:   len(s.sem),
		QueueDepth: len(s.queue) - len(s.sem),
		IdlePEs:    s.pool.Stats().IdlePEs,
		Sessions:   s.sessions.Len(),
	}
}

// handleCluster serves GET /v1/cluster for a standalone server: one
// member, every key owned by it.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := api.ClusterResponse{
		V:       api.Version,
		Mode:    "single",
		Members: []api.ClusterMember{s.clusterMember()},
	}
	if key := r.URL.Query().Get("key"); key != "" {
		resp.Probe = &api.ClusterProbe{Key: key, Member: s.member}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCluster serves GET /v1/cluster for a shard router: one row per
// shard, ?key= resolved on the shard ring.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	mode := "sharded"
	if len(rt.shards) == 1 {
		mode = "single"
	}
	resp := api.ClusterResponse{V: api.Version, Mode: mode}
	for _, s := range rt.shards {
		resp.Members = append(resp.Members, s.clusterMember())
	}
	if key := r.URL.Query().Get("key"); key != "" {
		resp.Probe = &api.ClusterProbe{
			Key:    key,
			Member: rt.shards[rt.ring.Lookup(key)].member,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
