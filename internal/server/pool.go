// Package server is the batch-serving layer of the repository: an HTTP
// handler exposing every facade algorithm as POST /v1/<algorithm> with
// the versioned JSON schema of internal/api, backed by a sharded pool of
// pre-warmed machines so steady-state requests simulate without
// allocating.
//
// The serving pipeline per request:
//
//	decode → validate → admit (bounded queue + in-flight cap, deadline)
//	→ check a machine out of the pool (or construct on miss)
//	→ run the algorithm → convert the answer to its wire form
//	→ check the machine back in → respond.
//
// Fault-injected requests bypass the pool: the recovery harness
// (internal/fault.Run) owns machine construction across its re-run
// attempts, so those requests construct throwaway machines and report
// Pool.Bypassed.
package server

import (
	"sync"

	"dyncg/internal/machine"
)

// Key identifies a machine size class: requests whose (topology family,
// post-rounding PE count, worker-pool size) coincide are served by
// interchangeable machines. PEs is the exact constructed size (use
// dyncg.TopologySize), not the requested minimum, so e.g. a 100-PE and a
// 120-PE hypercube request share the 128-PE class.
type Key struct {
	Topo    string
	PEs     int
	Workers int
}

// pooled is one idle machine plus the logical-clock stamp of its last
// check-in (its LRU age).
type pooled struct {
	m    *machine.M
	seen uint64
}

// Pool is a sharded fleet of idle, pre-warmed machines keyed by size
// class. Within a class machines form a stack (most recently used on
// top, so the warmest arena is handed out first); across classes the
// globally least-recently-used machine is evicted when the pool exceeds
// its capacity.
//
// Get and Put are safe for concurrent use and allocation-free in steady
// state — the point of the pool: a warm checkout plus WarmReset leaves
// the machine's scratch arena intact, so the request that follows runs
// its data-movement primitives with zero machine or scratch allocations.
type Pool struct {
	mu        sync.Mutex
	capacity  int
	maxPEs    int
	clock     uint64
	idle      map[Key][]pooled
	n         int
	pes       int
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewPool returns a pool retaining at most capacity idle machines with
// no PE-retention budget (capacity ≤ 0 disables retention: every Put
// discards the machine).
func NewPool(capacity int) *Pool {
	return NewPoolPEs(capacity, 0)
}

// NewPoolPEs is NewPool with a PE-retention budget: the pool retains at
// most maxPEs total PEs across all idle machines (maxPEs ≤ 0 =
// unbounded). The machine-count cap alone is the wrong control at large
// n — 32 idle 2^20-PE machines pin tens of gigabytes of register and
// arena memory — so the budget bounds retained memory by construction
// size, evicting least-recently-used machines first.
func NewPoolPEs(capacity, maxPEs int) *Pool {
	return &Pool{capacity: capacity, maxPEs: maxPEs, idle: make(map[Key][]pooled)}
}

// Get checks the most recently used idle machine of the size class out
// of the pool, WarmReset (counters zeroed, scratch arena kept warm), or
// returns nil on a pool miss — the caller then constructs a machine and
// Puts it back after use, growing the class.
func (p *Pool) Get(key Key) *machine.M {
	p.mu.Lock()
	defer p.mu.Unlock()
	stack := p.idle[key]
	if n := len(stack); n > 0 {
		m := stack[n-1].m
		stack[n-1] = pooled{}
		p.idle[key] = stack[:n-1]
		p.n--
		p.pes -= m.Size()
		p.hits++
		m.WarmReset()
		return m
	}
	p.misses++
	return nil
}

// Put checks a machine in under its size class, detaching any observer
// or fault injector a request attached (pooled machines carry no
// per-request state). When the pool is over capacity the globally
// least-recently-used idle machine is evicted.
func (p *Pool) Put(key Key, m *machine.M) {
	if m == nil {
		return
	}
	m.SetObserver(nil)
	m.SetInjector(nil)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity <= 0 {
		return
	}
	p.clock++
	p.idle[key] = append(p.idle[key], pooled{m: m, seen: p.clock})
	p.n++
	p.pes += m.Size()
	for p.n > p.capacity {
		p.evictOldest()
	}
	// The PE budget can evict the just-inserted machine itself: a single
	// over-budget machine (e.g. a one-off 2^20-PE request) is not worth
	// pinning the memory of an entire warm fleet.
	for p.maxPEs > 0 && p.pes > p.maxPEs && p.n > 0 {
		p.evictOldest()
	}
}

// evictOldest drops the least-recently-checked-in machine across every
// class. Stacks are pushed in clock order, so each class's oldest entry
// sits at index 0 and the scan is one comparison per class.
func (p *Pool) evictOldest() {
	var victim Key
	oldest, found := ^uint64(0), false
	for k, stack := range p.idle {
		if len(stack) > 0 && stack[0].seen < oldest {
			oldest, victim, found = stack[0].seen, k, true
		}
	}
	if !found {
		return
	}
	stack := p.idle[victim]
	p.pes -= stack[0].m.Size()
	copy(stack, stack[1:])
	stack[len(stack)-1] = pooled{}
	p.idle[victim] = stack[:len(stack)-1]
	p.n--
	p.evictions++
}

// PoolStats is a snapshot of the pool's counters. IdlePEs is the total
// PE count across idle machines — the quantity the PE-retention budget
// bounds.
type PoolStats struct {
	Hits, Misses, Evictions uint64
	Idle                    int
	IdlePEs                 int
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, Idle: p.n, IdlePEs: p.pes}
}

// IdleIn returns the number of idle machines in one size class.
func (p *Pool) IdleIn(key Key) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[key])
}

// Flush discards every idle machine and returns how many were dropped
// (used by tests and cold-path benchmarks; counters are preserved).
func (p *Pool) Flush() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	dropped := p.n
	p.idle = make(map[Key][]pooled)
	p.n = 0
	p.pes = 0
	return dropped
}
