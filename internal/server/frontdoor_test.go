package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// postRec sends one request and returns the full recorder, for tests
// that assert headers as well as bodies.
func postRec(t *testing.T, h http.Handler, algo string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, "/v1/"+algo, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// TestCacheServesExactBytes: an identical repeat request is served from
// the cache — byte-identical to the computed response, with the source
// header flipped and no second pool checkout.
func TestCacheServesExactBytes(t *testing.T) {
	algo, body := benchRequest(t)
	s := New(Config{CacheBytes: 1 << 20})

	first := postRec(t, s.Handler(), algo, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first: status %d: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Dyncg-Source"); got != "computed" {
		t.Fatalf("first: X-Dyncg-Source = %q, want computed", got)
	}

	second := postRec(t, s.Handler(), algo, body)
	if second.Code != http.StatusOK {
		t.Fatalf("second: status %d: %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Dyncg-Source"); got != "cache" {
		t.Fatalf("second: X-Dyncg-Source = %q, want cache", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("cached response differs from computed:\n%s\n%s", first.Body, second.Body)
	}

	ps := s.Pool().Stats()
	if total := ps.Hits + ps.Misses; total != 1 {
		t.Errorf("pool checkouts = %d, want 1 (cache hit must not touch the pool)", total)
	}
	cs := s.RCacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("rcache stats = %+v, want 1 hit / 1 miss", cs)
	}
}

// TestCacheCanonicalization: a renormalized spelling of the same system
// (trailing zero coefficients) hits the cache entry of the original and
// receives its exact bytes — the canon.Key property, end to end.
func TestCacheCanonicalization(t *testing.T) {
	s := New(Config{CacheBytes: 1 << 20})
	a := []byte(`{"v":1,"system":[[[0,1],[0]],[[10,-1],[1]]],"origin":1}`)
	b := []byte(`{"v": 1, "system": [[[0,1,0,0],[0,0]],[[1e1,-1.0],[1.000,0]]], "origin": 1}`)

	first := postRec(t, s.Handler(), "closest-point-sequence", a)
	if first.Code != http.StatusOK {
		t.Fatalf("first: status %d: %s", first.Code, first.Body.String())
	}
	second := postRec(t, s.Handler(), "closest-point-sequence", b)
	if got := second.Header().Get("X-Dyncg-Source"); got != "cache" {
		t.Fatalf("renormalized request: X-Dyncg-Source = %q, want cache", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("renormalized request served different bytes")
	}
}

// TestCoalesceComputesOnce is the acceptance criterion: N identical
// concurrent requests perform exactly one pool computation, every
// response is byte-identical, and the source headers distinguish the
// leader from the merged followers.
func TestCoalesceComputesOnce(t *testing.T) {
	const n = 8
	algo, body := benchRequest(t)

	// Reference bytes from an uncoalesced server with an identical
	// machine state (fresh pool, first request of its class).
	ref := postRec(t, New(Config{}).Handler(), algo, body)
	if ref.Code != http.StatusOK {
		t.Fatalf("reference: status %d: %s", ref.Code, ref.Body.String())
	}

	s := New(Config{Coalesce: true}) // cache off: every request must coalesce, not hit
	var computations atomic.Int64
	entered := make(chan struct{})
	gate := make(chan struct{})
	s.hookRunning = func() {
		if computations.Add(1) == 1 {
			close(entered) // leader checked out the machine...
			<-gate         // ...and holds it until all followers merged
		}
	}

	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		recs[0] = postRec(t, s.Handler(), algo, body)
	}()
	<-entered
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = postRec(t, s.Handler(), algo, body)
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.CoalesceMerged() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers merged", s.CoalesceMerged(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if c := computations.Load(); c != 1 {
		t.Fatalf("pool computations = %d, want exactly 1", c)
	}
	sources := map[string]int{}
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(rec.Body.Bytes(), ref.Body.Bytes()) {
			t.Errorf("request %d: response differs from uncoalesced serving", i)
		}
		sources[rec.Header().Get("X-Dyncg-Source")]++
	}
	if sources["computed"] != 1 || sources["coalesced"] != n-1 {
		t.Errorf("sources = %v, want 1 computed / %d coalesced", sources, n-1)
	}
	if m := s.CoalesceMerged(); m != n-1 {
		t.Errorf("CoalesceMerged = %d, want %d", m, n-1)
	}
}

// TestFaultRequestsBypassFrontDoor: fault-injected requests are never
// cached or coalesced — their responses depend on the injected
// schedule, not only the system.
func TestFaultRequestsBypassFrontDoor(t *testing.T) {
	s := New(Config{CacheBytes: 1 << 20, Coalesce: true})
	body := []byte(`{"v":1,"system":[[[0,1],[0]],[[10,-1],[1]],[[3],[4]],[[5,2],[1]]],` +
		`"options":{"faults":"transient=0.2","fault_seed":7}}`)
	for i := 0; i < 2; i++ {
		rec := postRec(t, s.Handler(), "collision-times", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Dyncg-Source"); got != "computed" {
			t.Errorf("request %d: X-Dyncg-Source = %q, want computed", i, got)
		}
	}
	if cs := s.RCacheStats(); cs.Hits != 0 || cs.Entries != 0 {
		t.Errorf("fault-injected responses reached the cache: %+v", cs)
	}
}

// TestCacheRespectsDraining: a draining server rejects requests even
// when the answer sits in the cache.
func TestCacheRespectsDraining(t *testing.T) {
	algo, body := benchRequest(t)
	s := New(Config{CacheBytes: 1 << 20})
	if rec := postRec(t, s.Handler(), algo, body); rec.Code != http.StatusOK {
		t.Fatalf("prime: status %d", rec.Code)
	}
	s.SetDraining(true)
	rec := postRec(t, s.Handler(), algo, body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining cache-hit: status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("draining rejection body: %s", rec.Body.String())
	}
}

// TestErrorResponsesNotCached: non-200 outcomes never enter the cache.
func TestErrorResponsesNotCached(t *testing.T) {
	s := New(Config{CacheBytes: 1 << 20})
	// One moving point cannot collide with anything: bad_system.
	body := []byte(`{"v":1,"system":[]}`)
	for i := 0; i < 2; i++ {
		rec := postRec(t, s.Handler(), "collision-times", body)
		if rec.Code == http.StatusOK {
			t.Fatalf("empty system unexpectedly succeeded")
		}
		if got := rec.Header().Get("X-Dyncg-Source"); got == "cache" {
			t.Errorf("request %d: error served from cache", i)
		}
	}
	if cs := s.RCacheStats(); cs.Entries != 0 {
		t.Errorf("error response entered the cache: %+v", cs)
	}
}

// TestFrontDoorMetrics: the new counters appear on /metrics with the
// values the traffic implies.
func TestFrontDoorMetrics(t *testing.T) {
	algo, body := benchRequest(t)
	s := New(Config{CacheBytes: 1 << 20, Coalesce: true})
	postRec(t, s.Handler(), algo, body)
	postRec(t, s.Handler(), algo, body) // cache hit

	r := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	out := w.Body.String()
	for _, want := range []string{
		"dyncg_rcache_hits_total 1",
		"dyncg_rcache_misses_total 1",
		"dyncg_rcache_evictions_total 0",
		"dyncg_coalesce_inflight_merged_total 0",
		"dyncgd_pool_idle_pes ",
		"dyncgd_shard_queue_depth{shard=\"0\"} 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(out, "dyncg_rcache_bytes ") {
		t.Error("metrics missing dyncg_rcache_bytes")
	}
	// The idle-PEs gauge must reflect the one pooled 64-PE machine.
	if !strings.Contains(out, "dyncgd_pool_idle_pes 64") {
		t.Errorf("dyncgd_pool_idle_pes should be 64:\n%s", out)
	}
}

// TestSessionsBypassFrontDoor: session endpoints carry no source
// header and never touch the response cache.
func TestSessionsBypassFrontDoor(t *testing.T) {
	s := New(Config{CacheBytes: 1 << 20, Coalesce: true})
	body := []byte(`{"v":1,"algorithm":"closest-point-sequence","origin":0,` +
		`"system":[[[0,1],[0]],[[10,-1],[1]],[[3],[4]],[[5,2],[1]]]}`)
	r := httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("session create: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Dyncg-Source"); got != "" {
		t.Errorf("session response carries X-Dyncg-Source = %q", got)
	}
	if cs := s.RCacheStats(); cs.Entries != 0 || cs.Misses != 0 {
		t.Errorf("session touched the response cache: %+v", cs)
	}
}

// TestDistinctRequestsDoNotShareCache: changing any response-steering
// field misses the cache.
func TestDistinctRequestsDoNotShareCache(t *testing.T) {
	s := New(Config{CacheBytes: 1 << 20})
	a := []byte(`{"v":1,"system":[[[0,1],[0]],[[10,-1],[1]]],"origin":0}`)
	b := []byte(`{"v":1,"system":[[[0,1],[0]],[[10,-1],[1]]],"origin":1}`)
	postRec(t, s.Handler(), "closest-point-sequence", a)
	rec := postRec(t, s.Handler(), "closest-point-sequence", b)
	if got := rec.Header().Get("X-Dyncg-Source"); got != "computed" {
		t.Errorf("different origin served from %q", got)
	}
}
