package server

import (
	"testing"

	"dyncg/internal/machine"
	"dyncg/internal/topo"
	"dyncg/internal/trace"
)

func newMachine(t testing.TB, pes int) *machine.M {
	t.Helper()
	m, err := topo.NewMachine(topo.Hypercube, pes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPoolHitReturnsSameMachine(t *testing.T) {
	p := NewPool(4)
	key := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	if got := p.Get(key); got != nil {
		t.Fatalf("Get on an empty pool = %v, want nil", got)
	}
	m := newMachine(t, 64)
	p.Put(key, m)
	if got := p.Get(key); got != m {
		t.Fatalf("Get after Put = %p, want the checked-in machine %p", got, m)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Idle != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 0 idle", st)
	}
}

func TestPoolClassesAreDisjoint(t *testing.T) {
	p := NewPool(4)
	k64 := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	k128 := Key{Topo: "hypercube", PEs: 128, Workers: 1}
	p.Put(k64, newMachine(t, 64))
	if got := p.Get(k128); got != nil {
		t.Fatalf("Get(%v) returned a machine from class %v", k128, k64)
	}
	if m := p.Get(k64); m == nil || m.Size() != 64 {
		t.Fatalf("Get(%v) = %v, want the 64-PE machine", k64, m)
	}
}

func TestPoolMRUCheckout(t *testing.T) {
	p := NewPool(4)
	key := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	first, second := newMachine(t, 64), newMachine(t, 64)
	p.Put(key, first)
	p.Put(key, second)
	if got := p.Get(key); got != second {
		t.Errorf("Get = %p, want the most recently checked-in machine %p", got, second)
	}
}

func TestPoolLRUEvictionAcrossClasses(t *testing.T) {
	p := NewPool(2)
	oldKey := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	midKey := Key{Topo: "hypercube", PEs: 128, Workers: 1}
	newKey := Key{Topo: "hypercube", PEs: 256, Workers: 1}
	p.Put(oldKey, newMachine(t, 64))
	p.Put(midKey, newMachine(t, 128))
	p.Put(newKey, newMachine(t, 256)) // over capacity: evicts the 64-PE class
	if got := p.IdleIn(oldKey); got != 0 {
		t.Errorf("oldest class has %d idle machines after eviction, want 0", got)
	}
	if p.IdleIn(midKey) != 1 || p.IdleIn(newKey) != 1 {
		t.Errorf("younger classes evicted: mid=%d new=%d, want 1 and 1",
			p.IdleIn(midKey), p.IdleIn(newKey))
	}
	st := p.Stats()
	if st.Evictions != 1 || st.Idle != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 idle", st)
	}
}

func TestPoolCheckoutKeepsArenaWarm(t *testing.T) {
	p := NewPool(4)
	key := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	m := newMachine(t, 64)
	regs := make([]machine.Reg[int], m.Size())
	for i := range regs {
		regs[i] = machine.Some(i)
	}
	machine.Semigroup(m, regs, machine.WholeMachine(m.Size()), intMin) // park scratch
	gen := m.ScratchGeneration()
	p.Put(key, m)
	got := p.Get(key)
	if got != m {
		t.Fatal("pool returned a different machine")
	}
	if got.ScratchGeneration() != gen {
		t.Errorf("checkout bumped the scratch generation %d → %d; parked buffers lost",
			gen, got.ScratchGeneration())
	}
	if st := got.Stats(); st != (machine.Stats{}) {
		t.Errorf("checkout did not zero the counters: %v", st)
	}
}

func TestPoolPutDetachesRequestState(t *testing.T) {
	p := NewPool(4)
	key := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	m := newMachine(t, 64)
	trace.Attach(m, "leftover")
	p.Put(key, m)
	if got := p.Get(key); got.Observed() {
		t.Error("checked-out machine still carries the previous request's observer")
	}
}

// TestPoolPEBudgetEvictsLRU: the PE-retention budget evicts
// least-recently-used machines until the total idle PE count fits,
// independently of the machine-count cap.
func TestPoolPEBudgetEvictsLRU(t *testing.T) {
	p := NewPoolPEs(32, 256)
	k64 := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	k128 := Key{Topo: "hypercube", PEs: 128, Workers: 1}
	p.Put(k64, newMachine(t, 64))
	p.Put(k128, newMachine(t, 128))
	p.Put(k128, newMachine(t, 128)) // 320 PEs total: evicts the oldest (64-PE)
	if got := p.Get(k64); got != nil {
		t.Errorf("64-PE machine still pooled after PE budget exceeded")
	}
	st := p.Stats()
	if st.Evictions != 1 || st.IdlePEs != 256 {
		t.Errorf("stats = %+v, want 1 eviction and 256 idle PEs", st)
	}
}

// TestPoolPEBudgetDropsOversizedMachine: a machine bigger than the whole
// budget is not retained at all — one giant checkout must not pin the
// memory of an entire warm fleet.
func TestPoolPEBudgetDropsOversizedMachine(t *testing.T) {
	p := NewPoolPEs(32, 100)
	key := Key{Topo: "hypercube", PEs: 128, Workers: 1}
	p.Put(key, newMachine(t, 128))
	if st := p.Stats(); st.Idle != 0 || st.IdlePEs != 0 {
		t.Errorf("stats = %+v, want nothing retained", st)
	}
}

// TestPoolPEBudgetAccounting: checkouts and Flush release budget.
func TestPoolPEBudgetAccounting(t *testing.T) {
	p := NewPoolPEs(32, 1024)
	key := Key{Topo: "hypercube", PEs: 256, Workers: 1}
	p.Put(key, newMachine(t, 256))
	p.Put(key, newMachine(t, 256))
	if st := p.Stats(); st.IdlePEs != 512 {
		t.Fatalf("IdlePEs = %d, want 512", st.IdlePEs)
	}
	m := p.Get(key)
	if st := p.Stats(); st.IdlePEs != 256 {
		t.Errorf("IdlePEs after checkout = %d, want 256", st.IdlePEs)
	}
	p.Put(key, m)
	p.Flush()
	if st := p.Stats(); st.IdlePEs != 0 {
		t.Errorf("IdlePEs after flush = %d, want 0", st.IdlePEs)
	}
}

func TestPoolDisabledRetainsNothing(t *testing.T) {
	p := NewPool(-1)
	key := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	p.Put(key, newMachine(t, 64))
	if got := p.Get(key); got != nil {
		t.Errorf("disabled pool returned %v, want nil", got)
	}
}

func intMin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func intLess(a, b int) bool { return a < b }

// TestPoolCycleAllocFree pins the pool's own hot path: a checkout +
// WarmReset + check-in cycle on a warm size class touches no heap.
func TestPoolCycleAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	p := NewPool(4)
	key := Key{Topo: "hypercube", PEs: 64, Workers: 1}
	p.Put(key, newMachine(t, 64))
	allocs := testing.AllocsPerRun(10, func() {
		p.Put(key, p.Get(key))
	})
	if allocs != 0 {
		t.Errorf("pool Get+Put cycle: %v allocs/run, want 0", allocs)
	}
}

// TestWarmCheckoutRunAllocFree is the acceptance budget of the serving
// design: checking a pre-warmed machine out of its size class, running a
// Table-1 primitive, and checking it back in performs zero machine or
// scratch allocations — the WarmReset keeps the arena generation, so the
// primitive reuses the buffers parked by the previous request.
func TestWarmCheckoutRunAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	p := NewPool(4)
	const pes = 1024
	key := Key{Topo: "hypercube", PEs: pes, Workers: 1}
	m := newMachine(t, pes)
	regs := make([]machine.Reg[int], pes)
	for i := range regs {
		regs[i] = machine.Some((i * 7919) % 1024)
	}
	seg := machine.WholeMachine(pes)
	machine.Semigroup(m, regs, seg, intMin) // warm the arena
	machine.Sort(m, regs, intLess)
	p.Put(key, m)
	allocs := testing.AllocsPerRun(10, func() {
		mm := p.Get(key)
		machine.Semigroup(mm, regs, seg, intMin)
		machine.Sort(mm, regs, intLess)
		p.Put(key, mm)
	})
	if allocs != 0 {
		t.Errorf("warm checkout + primitives + checkin: %v allocs/run, want 0", allocs)
	}
}
