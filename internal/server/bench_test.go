package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"dyncg/internal/api"
	"dyncg/internal/motion"
)

// benchRequest is the serving workload of the pinned benchmarks: a
// steady-state hull over 8 diverging points (64-PE hypercube class).
func benchRequest(b testing.TB) (string, []byte) {
	sys := motion.Diverging(rand.New(rand.NewSource(13)), 8)
	body, err := json.Marshal(api.Request{V: api.Version, System: wireSystem(sys)})
	if err != nil {
		b.Fatal(err)
	}
	return "steady-hull", body
}

func serveOnce(b testing.TB, s *Server, algo string, body []byte) {
	r := httptest.NewRequest(http.MethodPost, "/v1/"+algo, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServer is the serving entry of the pinned benchmark suite
// (scripts/bench.sh → BENCH_perf.json): one full request through decode,
// admission, pool, algorithm, and encode. The warm variant reuses the
// pooled machine every iteration — its allocs/op is the per-request
// serving overhead (request/response plumbing and result conversion)
// with ZERO machine or scratch allocations; the cold variant constructs
// a machine per request, and the gap between the two is what the pool
// buys.
func BenchmarkServer(b *testing.B) {
	algo, body := benchRequest(b)
	b.Run("warm", func(b *testing.B) {
		s := New(Config{})
		serveOnce(b, s, algo, body) // populate the pool, warm the arena
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, s, algo, body)
		}
	})
	b.Run("cold", func(b *testing.B) {
		s := New(Config{PoolCap: -1}) // retention disabled: construct every time
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, s, algo, body)
		}
	})
}

// TestWarmRequestAllocBudget asserts the acceptance criterion end to
// end: on a warm size class the whole HTTP request performs strictly
// fewer allocations than the cold path — every machine- and
// scratch-related allocation is gone, leaving only request plumbing
// (JSON decode/encode, recorder, result slices), which the machine of a
// cold request strictly exceeds. The machine-level zero-allocation
// budget itself is pinned by TestWarmCheckoutRunAllocFree.
func TestWarmRequestAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	algo, body := benchRequest(t)

	warmSrv := New(Config{})
	serveOnce(t, warmSrv, algo, body)
	warm := testing.AllocsPerRun(10, func() { serveOnce(t, warmSrv, algo, body) })

	coldSrv := New(Config{PoolCap: -1})
	cold := testing.AllocsPerRun(10, func() { serveOnce(t, coldSrv, algo, body) })

	if warm >= cold {
		t.Errorf("warm request allocates %v/run, cold %v/run; the pool saved nothing", warm, cold)
	}
	t.Logf("allocs/run: warm=%v cold=%v (machine+scratch construction eliminated)", warm, cold)
}
