package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"dyncg/internal/api"
	"dyncg/internal/motion"
)

// throughputWorkload is the saturation request mix: a hot set of 4
// byte-identical heavy requests (24-point hull, 1024-PE class) that the
// duplicate fraction draws from, and a pool of unique light requests
// (8-point hull, 64-PE class) that always miss the cache. The skew is
// the realistic shape for a response cache: the popular queries are the
// expensive ones. Everything is deterministic in its seeds.
type throughputWorkload struct {
	hot  [][]byte
	uniq [][]byte
}

func newThroughputWorkload(b *testing.B) *throughputWorkload {
	marshal := func(sys *motion.System) []byte {
		body, err := json.Marshal(api.Request{V: api.Version, System: wireSystem(sys)})
		if err != nil {
			b.Fatal(err)
		}
		return body
	}
	w := &throughputWorkload{}
	for i := 0; i < 4; i++ {
		w.hot = append(w.hot, marshal(motion.Diverging(rand.New(rand.NewSource(100+int64(i))), 24)))
	}
	// The unique pool recycles beyond 4096 requests; the pinned suite
	// runs far fewer iterations per row.
	for i := 0; i < 4096; i++ {
		w.uniq = append(w.uniq, marshal(motion.Diverging(rand.New(rand.NewSource(10_000+int64(i))), 8)))
	}
	return w
}

// BenchmarkServerThroughput is the saturation suite behind the req/s
// axis of BENCH_perf.json: closed-loop parallel clients driving
// steady-hull through the full serving stack at shard counts {1,2,4}
// and duplicate ratios {0%,50%}, plus an uncached/uncoalesced baseline
// at 50% duplicates — the row the cached dup=50 rows must beat by ≥2×.
// Rows report req/s via b.ReportMetric (higher is better; benchgate
// gates collapses). scripts/bench.sh runs this suite without -benchmem:
// per-op allocation under concurrent load is nondeterministic and has
// its own single-request benchmarks.
func BenchmarkServerThroughput(b *testing.B) {
	wl := newThroughputWorkload(b)
	var seedCtr atomic.Int64

	run := func(b *testing.B, h http.Handler, dupPct int) {
		var cursor atomic.Int64
		var failed atomic.Bool
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rnd := rand.New(rand.NewSource(1000 + seedCtr.Add(1)))
			for pb.Next() {
				var body []byte
				if rnd.Intn(100) < dupPct {
					body = wl.hot[rnd.Intn(len(wl.hot))]
				} else {
					body = wl.uniq[cursor.Add(1)%int64(len(wl.uniq))]
				}
				r := httptest.NewRequest(http.MethodPost, "/v1/steady-hull", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, r)
				if w.Code != http.StatusOK && failed.CompareAndSwap(false, true) {
					b.Errorf("status %d: %s", w.Code, w.Body.String())
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}

	cached := Config{CacheBytes: DefaultCacheBytes, Coalesce: true}
	for _, shards := range []int{1, 2, 4} {
		for _, dupPct := range []int{0, 50} {
			b.Run(fmt.Sprintf("shards=%d/dup=%d", shards, dupPct), func(b *testing.B) {
				var h http.Handler
				if shards > 1 {
					h = NewRouter(shards, cached).Handler()
				} else {
					h = New(cached).Handler()
				}
				run(b, h, dupPct)
			})
		}
	}
	b.Run("nocache/dup=50", func(b *testing.B) {
		run(b, New(Config{}).Handler(), 50)
	})
}
