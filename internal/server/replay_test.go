package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dyncg/internal/api"
	"dyncg/internal/replaylog"
)

// rawCall sends raw bytes (or nil) to the handler.
func rawCall(t *testing.T, h http.Handler, method, path string, body []byte) (int, []byte) {
	t.Helper()
	r := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.Bytes()
}

// TestServerRecordsReplayLog pins the hot-path hook: with a log
// configured, every served /v1/* request appends exactly one record
// whose Response field holds byte-for-byte what went over the wire, and
// the replaylog counters surface on /metrics.
func TestServerRecordsReplayLog(t *testing.T) {
	dir := t.TempDir()
	rlog, err := replaylog.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s := New(Config{ReplayLog: rlog})

	cases := endpointCases(t)
	req := cases["steady-hull"]
	st, body := post(t, s.Handler(), "steady-hull", req)
	if st != http.StatusOK {
		t.Fatalf("steady-hull: status %d, body %s", st, body)
	}

	// Session surface: create carries the minted ID in its record meta.
	screq := api.SessionCreateRequest{
		V: api.Version, Algorithm: "closest-point-sequence",
		System: req.System, Origin: 0,
	}
	stc, screate := sessionCall(t, s.Handler(), http.MethodPost, "/v1/sessions", screq)
	if stc != http.StatusOK {
		t.Fatalf("session create: status %d, body %s", stc, screate)
	}

	// A non-JSON body is recorded too, byte-exact, in RequestBin.
	stb, _ := rawCall(t, s.Handler(), http.MethodPost, "/v1/steady-hull", []byte(`{"v":1,`))
	if stb != http.StatusBadRequest {
		t.Fatalf("invalid body: status %d", stb)
	}

	if err := rlog.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := rlog.Stats().Records; got != 3 {
		t.Fatalf("log has %d records, want 3", got)
	}

	recs, err := replaylog.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	first := recs[0]
	if first.Method != http.MethodPost || first.Path != "/v1/steady-hull" || first.Status != http.StatusOK {
		t.Fatalf("record 0 = %s %s %d", first.Method, first.Path, first.Status)
	}
	if first.Meta.Topology != "hypercube" || first.Meta.PEs == 0 {
		t.Fatalf("record 0 meta = %+v", first.Meta)
	}
	// The recorded response must be exactly the wire bytes (modulo the
	// encoder's trailing newline).
	if want := append([]byte(nil), first.Response...); !bytes.Equal(append(want, '\n'), body) {
		t.Fatalf("recorded response differs from wire bytes:\nrecorded: %s\nwire:     %s", first.Response, body)
	}
	if sid := recs[1].Meta.Session; !strings.HasPrefix(sid, "s-") {
		t.Fatalf("session create record meta.Session = %q", sid)
	}
	if !bytes.Equal(recs[2].RequestBin, []byte(`{"v":1,`)) {
		t.Fatalf("invalid body not recorded in RequestBin: %+v", recs[2])
	}

	// Replaying the in-package trace against a fresh server reproduces
	// every byte.
	fresh := New(Config{})
	rep, err := replaylog.Replay(fresh.Handler(), recs)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Diverged != nil {
		t.Fatalf("replay diverged: %s", rep.Diverged)
	}
	if rep.Replayed != 3 {
		t.Fatalf("replayed %d, want 3", rep.Replayed)
	}
}

// TestMetricsReplayLog pins the dyncg_replaylog_* exposition.
func TestMetricsReplayLog(t *testing.T) {
	rlog, err := replaylog.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer rlog.Close()
	s := New(Config{ReplayLog: rlog})
	if st, body := post(t, s.Handler(), "steady-hull", endpointCases(t)["steady-hull"]); st != http.StatusOK {
		t.Fatalf("steady-hull: status %d, body %s", st, body)
	}
	_, metrics := rawCall(t, s.Handler(), http.MethodGet, "/metrics", nil)
	for _, want := range []string{
		"dyncg_replaylog_records_total 1",
		"dyncg_replaylog_bytes_total",
		"dyncg_replaylog_segments_total 1",
		"dyncg_replaylog_append_errors_total 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// A server without a log stays silent about it.
	plain := New(Config{})
	_, metrics = rawCall(t, plain.Handler(), http.MethodGet, "/metrics", nil)
	if strings.Contains(string(metrics), "dyncg_replaylog") {
		t.Fatal("metrics expose replaylog counters with recording disabled")
	}
}
