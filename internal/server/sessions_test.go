package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"dyncg/internal/api"
	"dyncg/internal/motion"
	"dyncg/internal/poly"
)

func wirePoint(p motion.Point) [][]float64 {
	coords := make([][]float64, len(p.Coord))
	for j, c := range p.Coord {
		coords[j] = append([]float64(nil), c...)
	}
	return coords
}

// sessionCall marshals a request body (nil for bodyless methods), sends
// it, and returns the status and body.
func sessionCall(t *testing.T, h http.Handler, method, path string, body any) (int, []byte) {
	t.Helper()
	var r *http.Request
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = httptest.NewRequest(method, path, strings.NewReader(string(raw)))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.Bytes()
}

func createSession(t *testing.T, h http.Handler, req api.SessionCreateRequest) api.SessionCreateResponse {
	t.Helper()
	st, body := sessionCall(t, h, http.MethodPost, "/v1/sessions", req)
	if st != http.StatusOK {
		t.Fatalf("create: status = %d, body %s", st, body)
	}
	var resp api.SessionCreateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("create: %v (%s)", err, body)
	}
	if resp.Session.ID == "" {
		t.Fatalf("create: empty session id (%s)", body)
	}
	return resp
}

// TestSessionRoundTripMatchesOneShot drives create → update → query →
// delete over the handler and demands the maintained result match the
// one-shot endpoint run on the session's final system, byte for byte on
// the wire. The update batch uses inserts and retargets only, so the
// session's stable IDs coincide with the one-shot point indices.
func TestSessionRoundTripMatchesOneShot(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	sys := motion.Random(rand.New(rand.NewSource(21)), 6, 1, 2, 10)

	created := createSession(t, h, api.SessionCreateRequest{
		V:         api.Version,
		Algorithm: "closest-point-sequence",
		System:    wireSystem(sys),
		Origin:    0,
		Options:   api.SessionOptions{Capacity: 12},
	})
	id := created.Session.ID
	if got := created.Session.Points; len(got) != 6 {
		t.Fatalf("created session has points %v", got)
	}
	if created.Session.Origin != 0 || created.Session.Capacity != 12 {
		t.Fatalf("session info %+v", created.Session)
	}

	// One batch: two inserts and a retarget (IDs stay dense, so the final
	// population equals a 8-point one-shot system in ID order).
	r := rand.New(rand.NewSource(22))
	extra := motion.Random(r, 3, 1, 2, 10)
	var upResp api.SessionUpdateResponse
	st, body := sessionCall(t, h, http.MethodPost, "/v1/sessions/"+id+"/update", api.SessionUpdateRequest{
		V: api.Version,
		Deltas: []api.SessionDelta{
			{Op: "insert", Point: wirePoint(extra.Points[0])},
			{Op: "insert", Point: wirePoint(extra.Points[1])},
			{Op: "retarget", ID: 3, Point: wirePoint(extra.Points[2])},
		},
	})
	if st != http.StatusOK {
		t.Fatalf("update: status = %d, body %s", st, body)
	}
	if err := json.Unmarshal(body, &upResp); err != nil {
		t.Fatal(err)
	}
	if want := []int{6, 7}; len(upResp.Inserted) != 2 || upResp.Inserted[0] != want[0] || upResp.Inserted[1] != want[1] {
		t.Fatalf("inserted = %v, want %v", upResp.Inserted, want)
	}
	if upResp.DirtyLeaves != 3 || upResp.MergedNodes == 0 {
		t.Fatalf("incremental work not reported: %+v", upResp)
	}
	if upResp.Stats.Time == 0 {
		t.Fatalf("update reported zero simulated cost")
	}
	if upResp.Session.Updates != 1 {
		t.Fatalf("updates counter = %d", upResp.Session.Updates)
	}

	// Query returns the same result; ?verify=1 audits bit-identity
	// against a from-scratch re-derivation on the session's machine.
	st, qBody := sessionCall(t, h, http.MethodGet, "/v1/sessions/"+id+"/query?verify=1", nil)
	if st != http.StatusOK {
		t.Fatalf("query: status = %d, body %s", st, qBody)
	}
	var qResp struct {
		Result   json.RawMessage `json:"result"`
		Verified *bool           `json:"verified"`
	}
	if err := json.Unmarshal(qBody, &qResp); err != nil {
		t.Fatal(err)
	}
	if qResp.Verified == nil || !*qResp.Verified {
		t.Fatalf("verify=1 did not confirm bit-identity: %s", qBody)
	}

	// The one-shot endpoint on the session's final system must agree.
	finalSys := wireSystem(sys)
	finalSys = append(finalSys, wirePoint(extra.Points[0]), wirePoint(extra.Points[1]))
	finalSys[3] = wirePoint(extra.Points[2])
	oneStatus, oneBody := post(t, h, "closest-point-sequence", api.Request{
		V: api.Version, System: finalSys, Origin: 0,
	})
	oneShot := decodeOK(t, oneStatus, oneBody)
	var upRaw struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &upRaw); err != nil {
		t.Fatal(err)
	}
	if string(upRaw.Result) != string(oneShot.Result) {
		t.Fatalf("session result diverged from one-shot\n session: %s\n one-shot: %s", upRaw.Result, oneShot.Result)
	}
	if string(qResp.Result) != string(upRaw.Result) {
		t.Fatalf("query result differs from update result")
	}

	// Delete releases the machine back to the pool; the session is gone.
	idleBefore := s.Pool().Stats().Idle
	st, dBody := sessionCall(t, h, http.MethodDelete, "/v1/sessions/"+id, nil)
	if st != http.StatusOK {
		t.Fatalf("delete: status = %d, body %s", st, dBody)
	}
	var dResp api.SessionDeleteResponse
	if err := json.Unmarshal(dBody, &dResp); err != nil {
		t.Fatal(err)
	}
	if dResp.ID != id || dResp.Updates != 1 {
		t.Fatalf("delete response %+v", dResp)
	}
	if st, _ := sessionCall(t, h, http.MethodGet, "/v1/sessions/"+id+"/query", nil); st != http.StatusNotFound {
		t.Fatalf("query after delete: status = %d", st)
	}
	if s.Sessions().Len() != 0 {
		t.Fatalf("registry still holds %d sessions", s.Sessions().Len())
	}
	if got := s.Pool().Stats().Idle; got != idleBefore+1 {
		t.Fatalf("pool idle = %d after delete, want %d (released session machine)", got, idleBefore+1)
	}
}

// TestSessionEveryAlgorithm creates one session per session algorithm on
// each topology and verifies the maintained answer after an update via
// the server's own ?verify=1 audit.
func TestSessionEveryAlgorithm(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	sys := motion.Random(rand.New(rand.NewSource(31)), 5, 1, 2, 10)
	extra := motion.Random(rand.New(rand.NewSource(32)), 1, 1, 2, 10)
	for _, topo := range []string{"hypercube", "mesh"} {
		for _, algo := range []string{
			"closest-point-sequence", "farthest-point-sequence",
			"closest-pair-sequence", "farthest-pair-sequence",
			"smallest-hypercube-edge", "smallest-ever-hypercube",
			"containment-intervals",
		} {
			t.Run(topo+"/"+algo, func(t *testing.T) {
				req := api.SessionCreateRequest{
					V:         api.Version,
					Algorithm: algo,
					System:    wireSystem(sys),
					Options:   api.SessionOptions{Topology: topo, Capacity: 8},
				}
				if algo == "containment-intervals" {
					req.Dims = []float64{30, 30}
				}
				created := createSession(t, h, req)
				id := created.Session.ID
				st, body := sessionCall(t, h, http.MethodPost, "/v1/sessions/"+id+"/update", api.SessionUpdateRequest{
					V: api.Version,
					Deltas: []api.SessionDelta{
						{Op: "insert", Point: wirePoint(extra.Points[0])},
						{Op: "delete", ID: 2},
					},
				})
				if st != http.StatusOK {
					t.Fatalf("update: status = %d, body %s", st, body)
				}
				st, qBody := sessionCall(t, h, http.MethodGet, "/v1/sessions/"+id+"/query?verify=1", nil)
				if st != http.StatusOK {
					t.Fatalf("query: status = %d, body %s", st, qBody)
				}
				var qResp struct {
					Verified *bool `json:"verified"`
				}
				if err := json.Unmarshal(qBody, &qResp); err != nil {
					t.Fatal(err)
				}
				if qResp.Verified == nil || !*qResp.Verified {
					t.Fatalf("maintained answer failed the verify audit: %s", qBody)
				}
				if st, _ := sessionCall(t, h, http.MethodDelete, "/v1/sessions/"+id, nil); st != http.StatusOK {
					t.Fatalf("delete failed")
				}
			})
		}
	}
}

func TestSessionErrors(t *testing.T) {
	s := New(Config{MaxSessions: 1})
	h := s.Handler()
	sys := motion.Random(rand.New(rand.NewSource(41)), 4, 1, 2, 10)
	mk := func(mod func(*api.SessionCreateRequest)) api.SessionCreateRequest {
		req := api.SessionCreateRequest{
			V:         api.Version,
			Algorithm: "closest-point-sequence",
			System:    wireSystem(sys),
		}
		if mod != nil {
			mod(&req)
		}
		return req
	}

	cases := []struct {
		name   string
		req    api.SessionCreateRequest
		status int
		code   api.ErrorCode
	}{
		{"unknown algorithm", mk(func(r *api.SessionCreateRequest) { r.Algorithm = "steady-hull" }),
			http.StatusBadRequest, "unknown_algorithm"},
		{"bad version", mk(func(r *api.SessionCreateRequest) { r.V = 9 }),
			http.StatusBadRequest, "bad_version"},
		{"bad topology", mk(func(r *api.SessionCreateRequest) { r.Options.Topology = "ccc" }),
			http.StatusBadRequest, "bad_topology"},
		{"origin out of range", mk(func(r *api.SessionCreateRequest) { r.Origin = 40 }),
			http.StatusBadRequest, "bad_system"},
		{"capacity too small", mk(func(r *api.SessionCreateRequest) { r.Options.Capacity = 2 }),
			http.StatusBadRequest, "bad_system"},
	}
	for _, tc := range cases {
		st, body := sessionCall(t, h, http.MethodPost, "/v1/sessions", tc.req)
		if st != tc.status {
			t.Fatalf("%s: status = %d, want %d (%s)", tc.name, st, tc.status, body)
		}
		if e := decodeErr(t, body); e.Code != tc.code {
			t.Fatalf("%s: code = %q, want %q", tc.name, e.Code, tc.code)
		}
	}
	// Rejected creates must not leak sessions or pin machines.
	if s.Sessions().Len() != 0 {
		t.Fatalf("rejected creates left %d sessions", s.Sessions().Len())
	}

	created := createSession(t, h, mk(nil))
	id := created.Session.ID

	// Session capacity (MaxSessions: 1).
	st, body := sessionCall(t, h, http.MethodPost, "/v1/sessions", mk(nil))
	if st != http.StatusTooManyRequests || decodeErr(t, body).Code != "too_many_sessions" {
		t.Fatalf("session limit: status = %d, body %s", st, body)
	}

	// Unknown session IDs.
	for _, call := range []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/v1/sessions/s-404-beef/update", api.SessionUpdateRequest{V: api.Version,
			Deltas: []api.SessionDelta{{Op: "delete", ID: 0}}}},
		{http.MethodGet, "/v1/sessions/s-404-beef/query", nil},
		{http.MethodDelete, "/v1/sessions/s-404-beef", nil},
	} {
		st, body := sessionCall(t, h, call.method, call.path, call.body)
		if st != http.StatusNotFound || decodeErr(t, body).Code != "no_session" {
			t.Fatalf("%s %s: status = %d, body %s", call.method, call.path, st, body)
		}
	}

	// An invalid batch is atomic and reports bad_system; the session
	// stays usable.
	st, body = sessionCall(t, h, http.MethodPost, "/v1/sessions/"+id+"/update", api.SessionUpdateRequest{
		V:      api.Version,
		Deltas: []api.SessionDelta{{Op: "delete", ID: 0}}, // the origin
	})
	if st != http.StatusBadRequest || decodeErr(t, body).Code != "bad_system" {
		t.Fatalf("origin delete: status = %d, body %s", st, body)
	}
	// Batches that exceed the session's capacity report too_few_pes.
	var over []api.SessionDelta
	for i := 0; i < 10; i++ {
		over = append(over, api.SessionDelta{Op: "insert",
			Point: [][]float64{{float64(100 + i)}, {float64(i)}}})
	}
	st, body = sessionCall(t, h, http.MethodPost, "/v1/sessions/"+id+"/update",
		api.SessionUpdateRequest{V: api.Version, Deltas: over})
	if st != http.StatusUnprocessableEntity || decodeErr(t, body).Code != "too_few_pes" {
		t.Fatalf("over capacity: status = %d, body %s", st, body)
	}
	if st, _ := sessionCall(t, h, http.MethodGet, "/v1/sessions/"+id+"/query", nil); st != http.StatusOK {
		t.Fatalf("session unusable after rejected batches")
	}
}

// TestSessionTTLEviction: an idle session is swept lazily from a serving
// path, its machine returns to the pool, and the eviction is counted.
func TestSessionTTLEviction(t *testing.T) {
	s := New(Config{SessionTTL: 30 * time.Millisecond})
	h := s.Handler()
	sys := motion.Random(rand.New(rand.NewSource(51)), 4, 1, 2, 10)
	created := createSession(t, h, api.SessionCreateRequest{
		V: api.Version, Algorithm: "smallest-hypercube-edge", System: wireSystem(sys),
	})
	if idle := s.Pool().Stats().Idle; idle != 0 {
		t.Fatalf("pinned machine counted idle: %d", idle)
	}
	time.Sleep(60 * time.Millisecond)
	// Any serving-path request sweeps; /metrics is one of them.
	st, metrics := sessionCall(t, h, http.MethodGet, "/metrics", nil)
	if st != http.StatusOK {
		t.Fatalf("metrics: status = %d", st)
	}
	if !strings.Contains(string(metrics), "dyncg_session_evictions_total 1") {
		t.Fatalf("eviction not counted:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "dyncg_sessions_active 0") {
		t.Fatalf("evicted session still active:\n%s", metrics)
	}
	if st, _ := sessionCall(t, h, http.MethodGet, "/v1/sessions/"+created.Session.ID+"/query", nil); st != http.StatusNotFound {
		t.Fatalf("evicted session still answers: status = %d", st)
	}
	if idle := s.Pool().Stats().Idle; idle != 1 {
		t.Fatalf("evicted session's machine not returned to the pool: idle = %d", idle)
	}
}

// TestSessionMetricsExposed: the issue's dyncg_-prefixed metric family
// appears on /metrics with the update counter and latency histogram
// moving.
func TestSessionMetricsExposed(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	sys := motion.Random(rand.New(rand.NewSource(61)), 4, 1, 2, 10)
	created := createSession(t, h, api.SessionCreateRequest{
		V: api.Version, Algorithm: "closest-point-sequence", System: wireSystem(sys),
	})
	pt := motion.NewPoint(poly.New(55), poly.New(1, 1))
	st, _ := sessionCall(t, h, http.MethodPost, "/v1/sessions/"+created.Session.ID+"/update",
		api.SessionUpdateRequest{V: api.Version,
			Deltas: []api.SessionDelta{{Op: "insert", Point: wirePoint(pt)}}})
	if st != http.StatusOK {
		t.Fatalf("update: status = %d", st)
	}
	_, metrics := sessionCall(t, h, http.MethodGet, "/metrics", nil)
	for _, want := range []string{
		"dyncg_sessions_active 1",
		"dyncg_session_updates_total 1",
		"dyncg_session_evictions_total 0",
		`dyncg_session_update_latency_us_bucket{le="+Inf"} 1`,
		"dyncg_session_update_latency_us_count 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestSessionChurnPoolAccounting is the issue's no-leak battery: cycling
// 1000 create/update/delete sessions must leave the pool at a steady
// size (the machines are reused, not accreted) and must not grow the
// goroutine count (the registry has no janitor goroutine).
func TestSessionChurnPoolAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("churn battery skipped in -short mode")
	}
	s := New(Config{})
	h := s.Handler()
	sys := motion.Random(rand.New(rand.NewSource(71)), 4, 1, 2, 10)
	req := api.SessionCreateRequest{
		V: api.Version, Algorithm: "closest-point-sequence", System: wireSystem(sys),
		Options: api.SessionOptions{Capacity: 8},
	}
	pt := motion.NewPoint(poly.New(77, 2), poly.New(-3))
	up := api.SessionUpdateRequest{V: api.Version,
		Deltas: []api.SessionDelta{{Op: "insert", Point: wirePoint(pt)}}}

	// Warm up one cycle so the pool holds the class's machine, then
	// measure from the steady state.
	created := createSession(t, h, req)
	sessionCall(t, h, http.MethodDelete, "/v1/sessions/"+created.Session.ID, nil)
	runtime.GC()
	goroutinesBefore := runtime.NumGoroutine()
	idleBefore := s.Pool().Stats().Idle

	const cycles = 1000
	for i := 0; i < cycles; i++ {
		created := createSession(t, h, req)
		if st, body := sessionCall(t, h, http.MethodPost,
			"/v1/sessions/"+created.Session.ID+"/update", up); st != http.StatusOK {
			t.Fatalf("cycle %d: update status %d, body %s", i, st, body)
		}
		if st, _ := sessionCall(t, h, http.MethodDelete,
			"/v1/sessions/"+created.Session.ID, nil); st != http.StatusOK {
			t.Fatalf("cycle %d: delete failed", i)
		}
	}

	if got := s.Sessions().Len(); got != 0 {
		t.Fatalf("%d sessions leaked", got)
	}
	if idleAfter := s.Pool().Stats().Idle; idleAfter != idleBefore {
		t.Fatalf("pool idle drifted across churn: %d → %d", idleBefore, idleAfter)
	}
	ps := s.Pool().Stats()
	if ps.Hits < cycles {
		t.Fatalf("churn did not reuse the pooled machine: hits = %d over %d cycles", ps.Hits, cycles)
	}
	runtime.GC()
	if goroutinesAfter := runtime.NumGoroutine(); goroutinesAfter > goroutinesBefore+2 {
		t.Fatalf("goroutines grew across churn: %d → %d", goroutinesBefore, goroutinesAfter)
	}
}
