package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dyncg/internal/api"
	"dyncg/internal/canon"
)

// routerDo sends one request through a router and returns the recorder.
func routerDo(t *testing.T, rt *Router, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, r)
	return w
}

// TestRouterMatchesSingleServer: every endpoint served through a
// 3-shard router returns bytes identical to a single fresh server —
// sharding must be invisible on the wire.
func TestRouterMatchesSingleServer(t *testing.T) {
	for name, req := range endpointCases(t) {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh router and server per case: the request is then the first
		// of its machine class on both sides, so pool info matches.
		rt := NewRouter(3, Config{})
		single := postRec(t, New(Config{}).Handler(), name, body)
		routed := routerDo(t, rt, http.MethodPost, "/v1/"+name, body)
		if routed.Code != single.Code {
			t.Errorf("%s: routed status %d, single %d", name, routed.Code, single.Code)
			continue
		}
		if !bytes.Equal(routed.Body.Bytes(), single.Body.Bytes()) {
			t.Errorf("%s: routed bytes differ from single server:\n  %s\n  %s",
				name, routed.Body, single.Body)
		}
	}
}

// TestRouterRoutingDeterminism: identical requests always land on the
// same shard — observable as a cache hit on the repeat, which can only
// happen if both visits reached the shard holding the entry.
func TestRouterRoutingDeterminism(t *testing.T) {
	algo, body := benchRequest(t)
	rt := NewRouter(4, Config{CacheBytes: 1 << 20})
	first := routerDo(t, rt, http.MethodPost, "/v1/"+algo, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first: status %d: %s", first.Code, first.Body.String())
	}
	second := routerDo(t, rt, http.MethodPost, "/v1/"+algo, body)
	if got := second.Header().Get("X-Dyncg-Source"); got != "cache" {
		t.Fatalf("repeat request missed the cache (source %q): inconsistent routing", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cached routed response differs")
	}
	// Exactly one shard saw traffic: one miss then one hit, fleet-wide.
	var hits, misses int64
	for _, s := range rt.Shards() {
		st := s.RCacheStats()
		hits += st.Hits
		misses += st.Misses
	}
	if hits != 1 || misses != 1 {
		t.Errorf("fleet rcache hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestRouterSessionLifecycle: sessions created through the router are
// reachable for update/query/delete — the minted IDs hash back to the
// owning shard.
func TestRouterSessionLifecycle(t *testing.T) {
	rt := NewRouter(3, Config{})
	create := []byte(`{"v":1,"algorithm":"closest-point-sequence","origin":0,` +
		`"system":[[[0,1],[0]],[[10,-1],[1]],[[3],[4]],[[5,2],[1]]]}`)

	type sessResp struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	var ids []string
	for i := 0; i < 9; i++ {
		w := routerDo(t, rt, http.MethodPost, "/v1/sessions", create)
		if w.Code != http.StatusOK {
			t.Fatalf("create %d: status %d: %s", i, w.Code, w.Body.String())
		}
		var sr sessResp
		if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil || sr.Session.ID == "" {
			t.Fatalf("create %d: bad response %s", i, w.Body.String())
		}
		ids = append(ids, sr.Session.ID)
	}

	// Round-robin creation spreads sessions across all shards; every
	// shard's registry must only hold IDs that hash back to it.
	perShard := make([]int, 3)
	for _, id := range ids {
		perShard[rt.ring.Lookup(id)]++
	}
	for i, s := range rt.Shards() {
		if s.sessions.Len() != perShard[i] {
			t.Errorf("shard %d holds %d sessions, ring says %d", i, s.sessions.Len(), perShard[i])
		}
	}

	for _, id := range ids {
		w := routerDo(t, rt, http.MethodGet, "/v1/sessions/"+id+"/query", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("query %s: status %d: %s", id, w.Code, w.Body.String())
		}
		upd := []byte(`{"v":1,"deltas":[{"op":"retarget","id":1,"point":[[7,1],[2]]}]}`)
		w = routerDo(t, rt, http.MethodPost, "/v1/sessions/"+id+"/update", upd)
		if w.Code != http.StatusOK {
			t.Fatalf("update %s: status %d: %s", id, w.Code, w.Body.String())
		}
		w = routerDo(t, rt, http.MethodDelete, "/v1/sessions/"+id, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("delete %s: status %d: %s", id, w.Code, w.Body.String())
		}
	}
	for i, s := range rt.Shards() {
		if s.sessions.Len() != 0 {
			t.Errorf("shard %d still holds %d sessions after deletes", i, s.sessions.Len())
		}
	}
}

// TestRouterUnknownSession: a made-up ID routes deterministically and
// reports no_session, matching single-server behavior.
func TestRouterUnknownSession(t *testing.T) {
	rt := NewRouter(3, Config{})
	w := routerDo(t, rt, http.MethodGet, "/v1/sessions/s-99-deadbeef/query", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", w.Code, w.Body.String())
	}
	if e := decodeErr(t, w.Body.Bytes()); e.Code != "no_session" {
		t.Errorf("code %q, want no_session", e.Code)
	}
}

// TestRouterDecodeErrors: malformed and oversized bodies produce the
// same envelopes through the router as through a single server.
func TestRouterDecodeErrors(t *testing.T) {
	cfg := Config{MaxBody: 256}
	rt := NewRouter(3, cfg)
	single := New(cfg)

	cases := map[string][]byte{
		"malformed": []byte(`{"v":1,`),
		"oversized": []byte(fmt.Sprintf(`{"v":1,"system":[%s]}`, strings.Repeat("1,", 400))),
	}
	wantStatus := map[string]int{
		"malformed": http.StatusBadRequest,
		"oversized": http.StatusRequestEntityTooLarge,
	}
	for name, body := range cases {
		routed := routerDo(t, rt, http.MethodPost, "/v1/steady-hull", body)
		ref := postRec(t, single.Handler(), "steady-hull", body)
		if routed.Code != wantStatus[name] {
			t.Errorf("%s: routed status %d, want %d", name, routed.Code, wantStatus[name])
		}
		if routed.Code != ref.Code || !bytes.Equal(routed.Body.Bytes(), ref.Body.Bytes()) {
			t.Errorf("%s: routed error differs from single server:\n  %d %s\n  %d %s",
				name, routed.Code, routed.Body, ref.Code, ref.Body)
		}
	}
}

// TestRouterUnknownAlgorithm: an unknown algorithm name decodes fine,
// routes by class, and gets the shard's 404 envelope.
func TestRouterUnknownAlgorithm(t *testing.T) {
	rt := NewRouter(3, Config{})
	req := endpointCases(t)["steady-hull"]
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := routerDo(t, rt, http.MethodPost, "/v1/no-such-algorithm", body)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", w.Code, w.Body.String())
	}
	if e := decodeErr(t, w.Body.Bytes()); e.Code != "unknown_algorithm" {
		t.Errorf("code %q, want unknown_algorithm", e.Code)
	}
}

// TestRouterMergedMetrics: /metrics reports one merged exposition with
// per-shard queue depths and fleet-summed front-door counters.
func TestRouterMergedMetrics(t *testing.T) {
	algo, body := benchRequest(t)
	rt := NewRouter(3, Config{CacheBytes: 1 << 20})
	routerDo(t, rt, http.MethodPost, "/v1/"+algo, body)
	routerDo(t, rt, http.MethodPost, "/v1/"+algo, body) // cache hit on same shard

	w := routerDo(t, rt, http.MethodGet, "/metrics", nil)
	out := w.Body.String()
	for _, want := range []string{
		`dyncgd_requests_total{algorithm="steady-hull",code="200"} 2`,
		`dyncgd_shard_queue_depth{shard="0"} 0`,
		`dyncgd_shard_queue_depth{shard="1"} 0`,
		`dyncgd_shard_queue_depth{shard="2"} 0`,
		"dyncg_rcache_hits_total 1",
		"dyncg_rcache_misses_total 1",
		"dyncgd_pool_idle_pes 64",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged metrics missing %q", want)
		}
	}
	if n := strings.Count(out, "# TYPE dyncgd_requests_total counter"); n != 1 {
		t.Errorf("dyncgd_requests_total TYPE line appears %d times, want 1 (merged exposition)", n)
	}
}

// TestRouterHealthz: health and drain flow through the router.
func TestRouterHealthz(t *testing.T) {
	rt := NewRouter(2, Config{})
	if w := routerDo(t, rt, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	rt.SetDraining(true)
	if w := routerDo(t, rt, http.MethodGet, "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d", w.Code)
	}
	algo, body := benchRequest(t)
	if w := routerDo(t, rt, http.MethodPost, "/v1/"+algo, body); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining request: status %d", w.Code)
	}
	rt.SetDraining(false)
	if w := routerDo(t, rt, http.MethodPost, "/v1/"+algo, body); w.Code != http.StatusOK {
		t.Fatalf("post-drain request: status %d", w.Code)
	}
	if rt.InFlight() != 0 {
		t.Errorf("InFlight = %d at rest", rt.InFlight())
	}
}

// TestCanonHashEqualImpliesSameResponse is the canon property test at
// the serving layer: requests whose canonical keys agree receive
// byte-identical responses from independent fresh servers.
func TestCanonHashEqualImpliesSameResponse(t *testing.T) {
	// Pairs of distinct spellings of one request.
	pairs := [][2][]byte{
		{
			[]byte(`{"v":1,"system":[[[0,1],[0]],[[10,-1],[1]],[[3],[4]],[[5,2],[1]]],"origin":1}`),
			[]byte(`{"origin":1,"v":1,"system":[[[0,1,0],[0,0,0]],[[10,-1],[1,0]],[[3,0],[4]],[[5,2],[1]]]}`),
		},
		{
			[]byte(`{"v":1,"system":[[[2],[3]],[[4],[5]],[[6],[7]],[[8],[9]]],"dims":[40,40]}`),
			[]byte(`{"v":1,"dims":[4e1,40.0],"system":[[[2.0],[3]],[[4],[5,0]],[[6],[7]],[[8],[9]]]}`),
		},
	}
	algos := []string{"closest-point-sequence", "containment-intervals"}
	for i, pair := range pairs {
		var keys [2]string
		var bodies [2][]byte
		for j, raw := range pair {
			var req api.Request
			if err := json.Unmarshal(raw, &req); err != nil {
				t.Fatalf("pair %d[%d]: %v", i, j, err)
			}
			// Topology and workers are server-resolved inputs; any fixed
			// values expose the property under test (key equality across
			// spellings of one system).
			k, ok := canon.Key(algos[i], "hypercube", 1, &req)
			if !ok {
				t.Fatalf("pair %d[%d]: uncacheable", i, j)
			}
			keys[j] = k
			rec := postRec(t, New(Config{}).Handler(), algos[i], raw)
			if rec.Code != http.StatusOK {
				t.Fatalf("pair %d[%d]: status %d: %s", i, j, rec.Code, rec.Body.String())
			}
			bodies[j] = rec.Body.Bytes()
		}
		if keys[0] != keys[1] {
			t.Errorf("pair %d: canonical keys differ:\n  %s\n  %s", i, keys[0], keys[1])
		}
		if !bytes.Equal(bodies[0], bodies[1]) {
			t.Errorf("pair %d: hash-equal requests got different bytes:\n  %s\n  %s",
				i, bodies[0], bodies[1])
		}
	}
}
