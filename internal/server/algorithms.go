package server

import (
	"fmt"

	"dyncg/internal/api"
	"dyncg/internal/core"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

// algorithm couples one facade algorithm to its machine prescription and
// wire conversion. pes is the PE count the theorem prescribes for the
// system on the given topology family, before topology rounding — the
// same sizing cmd/dyncg applies. minSize, when non-nil, is the smallest
// machine the body accepts after rounding or fault degradation (the
// guard that turns an under-sized degraded submachine into ErrTooFewPEs
// instead of an index panic).
type algorithm struct {
	pes     func(topo string, sys *motion.System) int
	minSize func(sys *motion.System) int
	run     func(m *machine.M, sys *motion.System, req *api.Request) (any, error)
}

// envPEs is the Θ(λ(n, s)) envelope allocation of Theorem 3.2 for the
// topology family ("mesh" gets the λ_M bound, everything else λ_H).
func envPEs(topo string, n, s int) int {
	if topo == "mesh" {
		return penvelope.MeshPEs(n, s)
	}
	return penvelope.CubePEs(n, s)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func atLeast(mult int) func(sys *motion.System) int {
	return func(sys *motion.System) int { return mult * sys.N() }
}

// algorithms is the serving surface: one entry per facade algorithm,
// keyed by the URL path element of POST /v1/<name>.
var algorithms = map[string]algorithm{
	"closest-point-sequence": {
		pes: func(topo string, sys *motion.System) int {
			return envPEs(topo, sys.N(), 2*maxi(sys.K, 1))
		},
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			seq, err := core.ClosestPointSequence(m, sys, req.Origin)
			return neighborEvents(seq), err
		},
	},
	"farthest-point-sequence": {
		pes: func(topo string, sys *motion.System) int {
			return envPEs(topo, sys.N(), 2*maxi(sys.K, 1))
		},
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			seq, err := core.FarthestPointSequence(m, sys, req.Origin)
			return neighborEvents(seq), err
		},
	},
	"collision-times": {
		pes: func(topo string, sys *motion.System) int { return 8 * sys.N() },
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			cs, err := core.CollisionTimes(m, sys, req.Origin)
			return collisions(cs), err
		},
	},
	"hull-vertex-intervals": {
		pes: func(topo string, sys *motion.System) int {
			return envPEs(topo, sys.N(), 4*maxi(sys.K, 1)+2)
		},
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			ivs, err := core.HullVertexIntervals(m, sys, req.Origin)
			return intervals(ivs), err
		},
	},
	"containment-intervals": {
		pes: func(topo string, sys *motion.System) int {
			return envPEs(topo, sys.N(), sys.K+2)
		},
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			ivs, err := core.ContainmentIntervals(m, sys, req.Dims)
			return intervals(ivs), err
		},
	},
	"smallest-hypercube-edge": {
		pes: func(topo string, sys *motion.System) int {
			return envPEs(topo, sys.N(), sys.K+2)
		},
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			pw, err := core.SmallestHypercubeEdge(m, sys)
			return piecewise(pw), err
		},
	},
	"smallest-ever-hypercube": {
		pes: func(topo string, sys *motion.System) int {
			return envPEs(topo, sys.N(), sys.K+2)
		},
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			dmin, tmin, err := core.SmallestEverHypercube(m, sys)
			return api.MinCube{D: dmin, T: tmin}, err
		},
	},
	"steady-nearest-neighbor": {
		pes:     func(topo string, sys *motion.System) int { return sys.N() },
		minSize: atLeast(1),
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			nn, err := core.SteadyNearestNeighborD(m, sys, req.Origin, req.Farthest)
			return api.Neighbor{Point: nn}, err
		},
	},
	"steady-closest-pair": {
		pes:     func(topo string, sys *motion.System) int { return 4 * sys.N() },
		minSize: atLeast(1),
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			a, b, err := core.SteadyClosestPair(m, sys)
			return api.Pair{A: a, B: b}, err
		},
	},
	"steady-hull": {
		pes:     func(topo string, sys *motion.System) int { return 8 * sys.N() },
		minSize: atLeast(1),
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			hull, err := core.SteadyHull(m, sys)
			return api.Hull{Vertices: hull}, err
		},
	},
	"steady-farthest-pair": {
		pes:     func(topo string, sys *motion.System) int { return 8 * sys.N() },
		minSize: atLeast(4),
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			a, b, d2, err := core.SteadyFarthestPair(m, sys)
			return api.FarthestPair{A: a, B: b, Dist2: coefs(d2)}, err
		},
	},
	"steady-min-area-rect": {
		pes:     func(topo string, sys *motion.System) int { return 8 * sys.N() },
		minSize: atLeast(4),
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			rect, err := core.SteadyMinAreaRect(m, sys)
			if err != nil {
				return nil, err
			}
			return api.Rect{Edge: rect.Edge, Area: fmt.Sprintf("%v", rect.Area)}, nil
		},
	},
	"closest-pair-sequence": {
		pes: func(topo string, sys *motion.System) int {
			k := maxi(sys.K, 1)
			return envPEs(topo, core.PairSequencePEs(sys.N(), k), 2*k)
		},
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			seq, err := core.ClosestPairSequence(m, sys)
			return pairEvents(seq), err
		},
	},
	"farthest-pair-sequence": {
		pes: func(topo string, sys *motion.System) int {
			k := maxi(sys.K, 1)
			return envPEs(topo, core.PairSequencePEs(sys.N(), k), 2*k)
		},
		run: func(m *machine.M, sys *motion.System, req *api.Request) (any, error) {
			seq, err := core.FarthestPairSequence(m, sys)
			return pairEvents(seq), err
		},
	},
}

// --- wire conversions ----------------------------------------------------
//
// Converters return empty (not nil) slices so an empty result marshals
// as [] rather than null, and they are total — a nil input (the
// error-path value) converts to an empty payload the response encoder
// never sees.

func neighborEvents(seq []core.NeighborEvent) []api.NeighborEvent {
	out := make([]api.NeighborEvent, 0, len(seq))
	for _, ev := range seq {
		out = append(out, api.NeighborEvent{Point: ev.Point, Lo: api.Time(ev.Lo), Hi: api.Time(ev.Hi)})
	}
	return out
}

func collisions(cs []core.Collision) []api.Collision {
	out := make([]api.Collision, 0, len(cs))
	for _, c := range cs {
		out = append(out, api.Collision{T: c.T, A: c.A, B: c.B})
	}
	return out
}

func intervals(ivs []core.Interval) []api.Interval {
	out := make([]api.Interval, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, api.Interval{Lo: api.Time(iv.Lo), Hi: api.Time(iv.Hi)})
	}
	return out
}

func piecewise(pw pieces.Piecewise) []api.Piece {
	out := make([]api.Piece, 0, len(pw))
	for _, p := range pw {
		out = append(out, api.Piece{F: fmt.Sprintf("%v", p.F), ID: p.ID, Lo: api.Time(p.Lo), Hi: api.Time(p.Hi)})
	}
	return out
}

func pairEvents(seq []core.PairEvent) []api.PairEvent {
	out := make([]api.PairEvent, 0, len(seq))
	for _, ev := range seq {
		out = append(out, api.PairEvent{A: ev.A, B: ev.B, Lo: api.Time(ev.Lo), Hi: api.Time(ev.Hi)})
	}
	return out
}

func coefs(p poly.Poly) []float64 {
	return append(make([]float64, 0, len(p)), p...)
}

// systemFrom decodes the wire form of a system of moving points:
// point → coordinate → ascending polynomial coefficients.
func systemFrom(raw [][][]float64) (*motion.System, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("server: empty system: %w", motion.ErrBadSystem)
	}
	pts := make([]motion.Point, len(raw))
	for i, coords := range raw {
		cs := make([]poly.Poly, len(coords))
		for j, cf := range coords {
			cs[j] = poly.New(cf...)
		}
		pts[i] = motion.NewPoint(cs...)
	}
	return motion.NewSystem(pts)
}
