package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latBuckets are the upper bounds, in microseconds, of the request
// latency histogram (the final +Inf bucket is implicit).
var latBuckets = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// algoMetrics accumulates one algorithm's request counters.
type algoMetrics struct {
	codes   map[int]uint64 // HTTP status → count
	buckets []uint64       // per-bucket latency counts (len(latBuckets)+1)
	count   uint64
	sumUs   int64
}

// Metrics is the per-algorithm request registry behind GET /metrics:
// request counts by status code and a latency histogram, exposed in the
// Prometheus text format.
type Metrics struct {
	mu    sync.Mutex
	algos map[string]*algoMetrics
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{algos: make(map[string]*algoMetrics)} }

// Observe records one finished request.
func (x *Metrics) Observe(algo string, status int, d time.Duration) {
	us := d.Microseconds()
	x.mu.Lock()
	defer x.mu.Unlock()
	am := x.algos[algo]
	if am == nil {
		am = &algoMetrics{codes: make(map[int]uint64), buckets: make([]uint64, len(latBuckets)+1)}
		x.algos[algo] = am
	}
	am.codes[status]++
	am.count++
	am.sumUs += us
	i := sort.Search(len(latBuckets), func(i int) bool { return us <= latBuckets[i] })
	am.buckets[i]++
}

// Write writes the registry in the Prometheus text exposition format,
// with algorithms and status codes in sorted order so scrapes (and
// tests) see deterministic output.
func (x *Metrics) Write(w io.Writer) {
	x.mu.Lock()
	defer x.mu.Unlock()
	names := make([]string, 0, len(x.algos))
	for name := range x.algos {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# TYPE dyncgd_requests_total counter\n")
	for _, name := range names {
		am := x.algos[name]
		codes := make([]int, 0, len(am.codes))
		for c := range am.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "dyncgd_requests_total{algorithm=%q,code=\"%d\"} %d\n", name, c, am.codes[c])
		}
	}

	fmt.Fprintf(w, "# TYPE dyncgd_request_latency_us histogram\n")
	for _, name := range names {
		am := x.algos[name]
		cum := uint64(0)
		for i, ub := range latBuckets {
			cum += am.buckets[i]
			fmt.Fprintf(w, "dyncgd_request_latency_us_bucket{algorithm=%q,le=\"%d\"} %d\n", name, ub, cum)
		}
		cum += am.buckets[len(latBuckets)]
		fmt.Fprintf(w, "dyncgd_request_latency_us_bucket{algorithm=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "dyncgd_request_latency_us_sum{algorithm=%q} %d\n", name, am.sumUs)
		fmt.Fprintf(w, "dyncgd_request_latency_us_count{algorithm=%q} %d\n", name, am.count)
	}
}
