package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"dyncg/internal/replaylog"
)

// latBuckets are the upper bounds, in microseconds, of the request
// latency histogram (the final +Inf bucket is implicit).
var latBuckets = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// algoMetrics accumulates one algorithm's request counters.
type algoMetrics struct {
	codes   map[int]uint64 // HTTP status → count
	buckets []uint64       // per-bucket latency counts (len(latBuckets)+1)
	count   uint64
	sumUs   int64
}

// Metrics is the per-algorithm request registry behind GET /metrics:
// request counts by status code and a latency histogram, exposed in the
// Prometheus text format.
type Metrics struct {
	mu    sync.Mutex
	algos map[string]*algoMetrics
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{algos: make(map[string]*algoMetrics)} }

// Observe records one finished request.
func (x *Metrics) Observe(algo string, status int, d time.Duration) {
	us := d.Microseconds()
	x.mu.Lock()
	defer x.mu.Unlock()
	am := x.algos[algo]
	if am == nil {
		am = &algoMetrics{codes: make(map[int]uint64), buckets: make([]uint64, len(latBuckets)+1)}
		x.algos[algo] = am
	}
	am.codes[status]++
	am.count++
	am.sumUs += us
	i := sort.Search(len(latBuckets), func(i int) bool { return us <= latBuckets[i] })
	am.buckets[i]++
}

// foldInto accumulates x's counters into dst. dst must be private to
// the caller (the Router folds every shard's registry into a scratch
// one per scrape, so the merged exposition has one series per
// algorithm, not one per shard).
func (x *Metrics) foldInto(dst *Metrics) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for name, am := range x.algos {
		d := dst.algos[name]
		if d == nil {
			d = &algoMetrics{codes: make(map[int]uint64), buckets: make([]uint64, len(latBuckets)+1)}
			dst.algos[name] = d
		}
		for c, v := range am.codes {
			d.codes[c] += v
		}
		for i, v := range am.buckets {
			d.buckets[i] += v
		}
		d.count += am.count
		d.sumUs += am.sumUs
	}
}

// Write writes the registry in the Prometheus text exposition format,
// with algorithms and status codes in sorted order so scrapes (and
// tests) see deterministic output.
func (x *Metrics) Write(w io.Writer) {
	x.mu.Lock()
	defer x.mu.Unlock()
	names := make([]string, 0, len(x.algos))
	for name := range x.algos {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# TYPE dyncgd_requests_total counter\n")
	for _, name := range names {
		am := x.algos[name]
		codes := make([]int, 0, len(am.codes))
		for c := range am.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "dyncgd_requests_total{algorithm=%q,code=\"%d\"} %d\n", name, c, am.codes[c])
		}
	}

	fmt.Fprintf(w, "# TYPE dyncgd_request_latency_us histogram\n")
	for _, name := range names {
		am := x.algos[name]
		cum := uint64(0)
		for i, ub := range latBuckets {
			cum += am.buckets[i]
			fmt.Fprintf(w, "dyncgd_request_latency_us_bucket{algorithm=%q,le=\"%d\"} %d\n", name, ub, cum)
		}
		cum += am.buckets[len(latBuckets)]
		fmt.Fprintf(w, "dyncgd_request_latency_us_bucket{algorithm=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "dyncgd_request_latency_us_sum{algorithm=%q} %d\n", name, am.sumUs)
		fmt.Fprintf(w, "dyncgd_request_latency_us_count{algorithm=%q} %d\n", name, am.count)
	}
}

// writeAllMetrics writes the full Prometheus exposition for a set of
// shards sharing one replay log. A single Server passes itself as the
// only shard; the Router passes its whole fleet, so counters are
// summed (or folded per algorithm) across shards and the per-shard
// queue depths appear as one labelled series per shard. Everything a
// pre-shard scrape exposed keeps its name and meaning; sharding only
// adds series.
func writeAllMetrics(w io.Writer, shards []*Server, rlog *replaylog.Log) {
	merged := NewMetrics()
	for _, s := range shards {
		s.met.foldInto(merged)
	}
	merged.Write(w)

	sm := newSessionMetrics()
	active, evictions := 0, uint64(0)
	for _, s := range shards {
		s.sessMet.foldInto(sm)
		active += s.sessions.Len()
		evictions += s.sessions.Evictions()
	}
	sm.write(w, active, evictions)

	var ps PoolStats
	for _, s := range shards {
		st := s.pool.Stats()
		ps.Hits += st.Hits
		ps.Misses += st.Misses
		ps.Evictions += st.Evictions
		ps.Idle += st.Idle
		ps.IdlePEs += st.IdlePEs
	}
	fmt.Fprintf(w, "# TYPE dyncgd_pool_checkouts_total counter\n")
	fmt.Fprintf(w, "dyncgd_pool_checkouts_total{result=\"hit\"} %d\n", ps.Hits)
	fmt.Fprintf(w, "dyncgd_pool_checkouts_total{result=\"miss\"} %d\n", ps.Misses)
	fmt.Fprintf(w, "# TYPE dyncgd_pool_evictions_total counter\n")
	fmt.Fprintf(w, "dyncgd_pool_evictions_total %d\n", ps.Evictions)
	fmt.Fprintf(w, "# TYPE dyncgd_pool_idle gauge\n")
	fmt.Fprintf(w, "dyncgd_pool_idle %d\n", ps.Idle)
	fmt.Fprintf(w, "# TYPE dyncgd_pool_idle_pes gauge\n")
	fmt.Fprintf(w, "dyncgd_pool_idle_pes %d\n", ps.IdlePEs)

	inflight, queued := 0, 0
	for _, s := range shards {
		inflight += len(s.sem)
		queued += len(s.queue) - len(s.sem)
	}
	fmt.Fprintf(w, "# TYPE dyncgd_inflight gauge\n")
	fmt.Fprintf(w, "dyncgd_inflight %d\n", inflight)
	fmt.Fprintf(w, "# TYPE dyncgd_queue_depth gauge\n")
	fmt.Fprintf(w, "dyncgd_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# TYPE dyncgd_shard_queue_depth gauge\n")
	for i, s := range shards {
		fmt.Fprintf(w, "dyncgd_shard_queue_depth{shard=\"%d\"} %d\n", i, len(s.queue)-len(s.sem))
	}
	fmt.Fprintf(w, "# TYPE dyncgd_draining gauge\n")
	d := 0
	if shards[0].draining.Load() {
		d = 1
	}
	fmt.Fprintf(w, "dyncgd_draining %d\n", d)

	var cs rcacheStatsSum
	var coalesced int64
	for _, s := range shards {
		st := s.rc.Stats()
		cs.hits += st.Hits
		cs.misses += st.Misses
		cs.evictions += st.Evictions
		cs.bytes += st.Bytes
		coalesced += s.CoalesceMerged()
	}
	fmt.Fprintf(w, "# TYPE dyncg_coalesce_inflight_merged_total counter\n")
	fmt.Fprintf(w, "dyncg_coalesce_inflight_merged_total %d\n", coalesced)
	fmt.Fprintf(w, "# TYPE dyncg_rcache_hits_total counter\n")
	fmt.Fprintf(w, "dyncg_rcache_hits_total %d\n", cs.hits)
	fmt.Fprintf(w, "# TYPE dyncg_rcache_misses_total counter\n")
	fmt.Fprintf(w, "dyncg_rcache_misses_total %d\n", cs.misses)
	fmt.Fprintf(w, "# TYPE dyncg_rcache_evictions_total counter\n")
	fmt.Fprintf(w, "dyncg_rcache_evictions_total %d\n", cs.evictions)
	fmt.Fprintf(w, "# TYPE dyncg_rcache_bytes gauge\n")
	fmt.Fprintf(w, "dyncg_rcache_bytes %d\n", cs.bytes)

	if rlog != nil {
		rs := rlog.Stats()
		fmt.Fprintf(w, "# TYPE dyncg_replaylog_records_total counter\n")
		fmt.Fprintf(w, "dyncg_replaylog_records_total %d\n", rs.Records)
		fmt.Fprintf(w, "# TYPE dyncg_replaylog_bytes_total counter\n")
		fmt.Fprintf(w, "dyncg_replaylog_bytes_total %d\n", rs.Bytes)
		fmt.Fprintf(w, "# TYPE dyncg_replaylog_segments_total counter\n")
		fmt.Fprintf(w, "dyncg_replaylog_segments_total %d\n", rs.Segments)
		fmt.Fprintf(w, "# TYPE dyncg_replaylog_append_errors_total counter\n")
		fmt.Fprintf(w, "dyncg_replaylog_append_errors_total %d\n", rs.Errors)
	}
}

// rcacheStatsSum accumulates response-cache counters across shards.
type rcacheStatsSum struct {
	hits, misses, evictions, bytes int64
}
