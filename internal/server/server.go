package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"dyncg/internal/api"
	"dyncg/internal/fault"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/replaylog"
	"dyncg/internal/session"
	"dyncg/internal/topo"
	"dyncg/internal/trace"
)

// Config configures a Server. The zero value gets sensible defaults.
type Config struct {
	// PoolCap is the maximum number of idle machines retained across all
	// size classes (0 = 32; negative disables pooling entirely).
	PoolCap int
	// PoolMaxPEs bounds the total PE count across idle pooled machines —
	// the memory control at large n, where a single 2^20-PE machine
	// holds tens of megabytes of register and arena buffers (0 = 2^22,
	// about four idle 2^20-PE machines; negative = unbounded).
	PoolMaxPEs int
	// MaxInFlight caps concurrently executing requests (0 = GOMAXPROCS).
	MaxInFlight int
	// MaxQueue caps requests waiting for an execution slot; beyond it
	// requests are rejected with 429 (0 = 4×MaxInFlight).
	MaxQueue int
	// Deadline is the default per-request deadline, queueing included
	// (0 = 30s). Requests may set their own via options.deadline_ms.
	Deadline time.Duration
	// MaxBody caps the request body size (0 = 8 MiB).
	MaxBody int64
	// DefaultWorkers is the worker-pool size for requests that do not set
	// options.workers (0 = serial).
	DefaultWorkers int
	// MaxSessions caps concurrently live scenario sessions, each of which
	// pins one machine for its lifetime (0 = 64; negative = unbounded).
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this, returning their
	// machines to the pool (0 = 15m; negative disables eviction). Expiry
	// is swept lazily from the serving paths — no janitor goroutine.
	SessionTTL time.Duration
	// Logger receives one structured record per request (nil = discard).
	Logger *slog.Logger
	// ReplayLog, when non-nil, records every served /v1/* request and
	// response into the hash-chained computation log (internal/replaylog)
	// in arrival order. Nil disables recording at the cost of one
	// nil-check on the hot path.
	ReplayLog *replaylog.Log
}

// Server is the HTTP serving surface: POST /v1/<algorithm> for every
// facade algorithm, plus GET /healthz and GET /metrics. Construct with
// New, mount Handler on an http.Server, and flip SetDraining(true)
// before shutdown so the health check fails while in-flight requests
// finish.
type Server struct {
	cfg      Config
	pool     *Pool
	met      *Metrics
	sem      chan struct{} // executing requests
	queue    chan struct{} // executing + waiting requests
	draining atomic.Bool
	log      *slog.Logger
	rlog     *replaylog.Log
	mux      *http.ServeMux
	sessions *session.Registry
	sessMet  *sessionMetrics

	hookAdmitted func() // test seam: runs after admission, before machine checkout
	hookRunning  func() // test seam: runs after machine checkout, before the algorithm
}

// New constructs a Server from the config (zero values defaulted).
func New(cfg Config) *Server {
	if cfg.PoolCap == 0 {
		cfg.PoolCap = 32
	}
	if cfg.PoolMaxPEs == 0 {
		cfg.PoolMaxPEs = 1 << 22
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 64
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = 15 * time.Minute
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:   cfg,
		pool:  NewPoolPEs(cfg.PoolCap, cfg.PoolMaxPEs),
		met:   NewMetrics(),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.MaxInFlight+cfg.MaxQueue),
		log:   log,
		rlog:  cfg.ReplayLog,
		mux:   http.NewServeMux(),
	}
	s.sessMet = newSessionMetrics()
	s.sessions = session.NewRegistry(cfg.MaxSessions, cfg.SessionTTL, s.releaseSession)
	s.mux.HandleFunc("POST /v1/{algorithm}", s.handleAlgorithm)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/update", s.handleSessionUpdate)
	s.mux.HandleFunc("GET /v1/sessions/{id}/query", s.handleSessionQuery)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool returns the machine pool (exposed for tests and metrics).
func (s *Server) Pool() *Pool { return s.pool }

// Metrics returns the request-metrics registry.
func (s *Server) Metrics() *Metrics { return s.met }

// SetDraining flips drain mode: /healthz turns 503 and new algorithm
// requests are rejected, while admitted requests run to completion.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of currently executing requests.
func (s *Server) InFlight() int { return len(s.sem) }

// admit applies admission control: reject when draining, 429 when the
// wait queue is full, then block for an execution slot until the
// request's deadline. The returned release frees the slot.
func (s *Server) admit(ctx context.Context) (release func(), status int, code string) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, "draining"
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, http.StatusTooManyRequests, "queue_full"
	}
	select {
	case s.sem <- struct{}{}:
		<-s.queue
		if ctx.Err() != nil {
			<-s.sem
			return nil, http.StatusServiceUnavailable, "deadline_queued"
		}
		return func() { <-s.sem }, 0, ""
	case <-ctx.Done():
		<-s.queue
		return nil, http.StatusServiceUnavailable, "deadline_queued"
	}
}

// errStatus maps the facade's typed errors to HTTP statuses.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, motion.ErrBadSystem):
		return http.StatusBadRequest, "bad_system"
	case errors.Is(err, machine.ErrTooFewPEs):
		return http.StatusUnprocessableEntity, "too_few_pes"
	case errors.Is(err, fault.ErrNotSurvivable):
		return http.StatusServiceUnavailable, "not_survivable"
	case errors.Is(err, session.ErrNoSession):
		return http.StatusNotFound, "no_session"
	case errors.Is(err, session.ErrTooManySessions):
		return http.StatusTooManyRequests, "too_many_sessions"
	case errors.Is(err, session.ErrBroken):
		return http.StatusConflict, "session_broken"
	}
	return http.StatusInternalServerError, "internal"
}

func apiError(code string, err error) *api.Error {
	return &api.Error{V: api.Version, Code: code, Err: err.Error()}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// finish writes the response and, when the computation log is enabled,
// appends one replay record for the request. The disabled path is the
// plain writeJSON hot path behind a single nil-check; the enabled path
// writes the exact bytes writeJSON would (Marshal plus the Encoder's
// trailing newline) so recorded responses are byte-identical to live
// ones.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, status int, out any, raw []byte, meta api.ReplayMeta) {
	if s.rlog == nil {
		writeJSON(w, status, out)
		return
	}
	body, err := json.Marshal(out)
	if err != nil {
		writeJSON(w, status, out)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
	rec := api.ReplayRecord{
		Method:   r.Method,
		Path:     r.URL.RequestURI(),
		Status:   status,
		Meta:     meta,
		Response: body,
	}
	switch {
	case len(raw) == 0:
	case json.Valid(raw):
		rec.Request = raw
	default:
		// A rejected non-JSON body cannot ride in a RawMessage; keep the
		// recorded failure byte-exact as base64.
		rec.RequestBin = raw
	}
	if err := s.rlog.Append(rec); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelError, "replaylog",
			slog.String("error", err.Error()))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.sessions.Sweep() // lazy TTL eviction rides the scrape path
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.Write(w)
	s.sessMet.write(w, s.sessions)
	ps := s.pool.Stats()
	fmt.Fprintf(w, "# TYPE dyncgd_pool_checkouts_total counter\n")
	fmt.Fprintf(w, "dyncgd_pool_checkouts_total{result=\"hit\"} %d\n", ps.Hits)
	fmt.Fprintf(w, "dyncgd_pool_checkouts_total{result=\"miss\"} %d\n", ps.Misses)
	fmt.Fprintf(w, "# TYPE dyncgd_pool_evictions_total counter\n")
	fmt.Fprintf(w, "dyncgd_pool_evictions_total %d\n", ps.Evictions)
	fmt.Fprintf(w, "# TYPE dyncgd_pool_idle gauge\n")
	fmt.Fprintf(w, "dyncgd_pool_idle %d\n", ps.Idle)
	fmt.Fprintf(w, "# TYPE dyncgd_inflight gauge\n")
	fmt.Fprintf(w, "dyncgd_inflight %d\n", len(s.sem))
	fmt.Fprintf(w, "# TYPE dyncgd_queue_depth gauge\n")
	fmt.Fprintf(w, "dyncgd_queue_depth %d\n", len(s.queue)-len(s.sem))
	fmt.Fprintf(w, "# TYPE dyncgd_draining gauge\n")
	d := 0
	if s.draining.Load() {
		d = 1
	}
	fmt.Fprintf(w, "dyncgd_draining %d\n", d)
	if s.rlog != nil {
		rs := s.rlog.Stats()
		fmt.Fprintf(w, "# TYPE dyncg_replaylog_records_total counter\n")
		fmt.Fprintf(w, "dyncg_replaylog_records_total %d\n", rs.Records)
		fmt.Fprintf(w, "# TYPE dyncg_replaylog_bytes_total counter\n")
		fmt.Fprintf(w, "dyncg_replaylog_bytes_total %d\n", rs.Bytes)
		fmt.Fprintf(w, "# TYPE dyncg_replaylog_segments_total counter\n")
		fmt.Fprintf(w, "dyncg_replaylog_segments_total %d\n", rs.Segments)
		fmt.Fprintf(w, "# TYPE dyncg_replaylog_append_errors_total counter\n")
		fmt.Fprintf(w, "dyncg_replaylog_append_errors_total %d\n", rs.Errors)
	}
}

// handleAlgorithm serves POST /v1/<algorithm>: decode, validate, admit,
// check out (or construct) a machine, run, convert, respond.
func (s *Server) handleAlgorithm(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	name := r.PathValue("algorithm")

	var (
		status    int
		out       any
		mi        api.MachineInfo
		pi        api.PoolInfo
		sysN      int
		sim       int64
		errMsg    string
		raw       []byte
		faultSeed int64
	)
	defer func() {
		s.finish(w, r, status, out, raw, api.ReplayMeta{
			Topology:  mi.Topology,
			PEs:       mi.PEs,
			Workers:   mi.Workers,
			FaultSeed: faultSeed,
		})
		lat := time.Since(started)
		s.met.Observe(name, status, lat)
		lvl := slog.LevelInfo
		if status >= http.StatusInternalServerError {
			lvl = slog.LevelError
		}
		s.log.LogAttrs(r.Context(), lvl, "request",
			slog.String("algorithm", name),
			slog.Int("status", status),
			slog.Duration("latency", lat),
			slog.Int("n", sysN),
			slog.String("topology", mi.Topology),
			slog.Int("pes", mi.PEs),
			slog.Int("workers", mi.Workers),
			slog.Bool("pool_hit", pi.Hit),
			slog.Bool("pool_bypassed", pi.Bypassed),
			slog.Int64("sim_time", sim),
			slog.String("error", errMsg),
		)
	}()
	fail := func(st int, code string, err error) {
		status, out, errMsg = st, apiError(code, err), err.Error()
	}

	alg, ok := algorithms[name]
	if !ok {
		fail(http.StatusNotFound, "unknown_algorithm",
			fmt.Errorf("server: unknown algorithm %q", name))
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var rerr error
	raw, rerr = io.ReadAll(r.Body)
	if rerr != nil {
		st := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(rerr, &tooBig) {
			st = http.StatusRequestEntityTooLarge
		}
		fail(st, "bad_request", fmt.Errorf("server: decoding request: %w", rerr))
		return
	}
	var req api.Request
	if err := json.Unmarshal(raw, &req); err != nil {
		fail(http.StatusBadRequest, "bad_request", fmt.Errorf("server: decoding request: %w", err))
		return
	}
	if req.V != api.Version {
		fail(http.StatusBadRequest, "bad_version",
			fmt.Errorf("server: unsupported schema version %d (want %d)", req.V, api.Version))
		return
	}

	topoName := req.Options.Topology
	if topoName == "" {
		topoName = string(topo.Hypercube)
	}
	tp, err := topo.Parse(topoName)
	if err != nil {
		fail(http.StatusBadRequest, "bad_topology", err)
		return
	}
	spec, err := fault.ParseSpec(req.Options.Faults)
	if err != nil {
		fail(http.StatusBadRequest, "bad_faults", err)
		return
	}
	sys, err := systemFrom(req.System)
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}
	sysN = sys.N()

	// Normalise the worker count so it can key the machine pool: the
	// constructed machine's Workers() is GOMAXPROCS for negative values
	// and 1 (serial) for 0 or 1.
	workers := req.Options.Workers
	if workers == 0 {
		workers = s.cfg.DefaultWorkers
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	infoWorkers := 0
	if workers > 1 {
		infoWorkers = workers
	}

	need := alg.pes(string(tp), sys)
	if req.Options.PEs > need {
		need = req.Options.PEs
	}
	classSize, err := topo.Size(tp, need)
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}

	deadline := s.cfg.Deadline
	if req.Options.DeadlineMs > 0 {
		deadline = time.Duration(req.Options.DeadlineMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	release, st, code := s.admit(ctx)
	if st != 0 {
		fail(st, code, fmt.Errorf("server: request not admitted: %s", code))
		return
	}
	defer release()
	if s.hookAdmitted != nil {
		s.hookAdmitted()
	}
	if ctx.Err() != nil {
		fail(http.StatusServiceUnavailable, "deadline_queued",
			fmt.Errorf("server: deadline expired before execution: %w", ctx.Err()))
		return
	}

	var (
		stats    machine.Stats
		freport  *api.FaultReport
		tr       *trace.Tracer
		result   any
		runErr   error
		costTree string
	)
	if !spec.Zero() {
		// Fault-injected runs bypass the pool: the recovery harness owns
		// machine construction across its remap-and-rerun attempts.
		pi.Bypassed = true
		faultSeed = req.Options.FaultSeed
		net, err := topo.NewNetwork(tp, need)
		if err != nil {
			st, code := errStatus(err)
			fail(st, code, err)
			return
		}
		plan := fault.NewPlan(spec, req.Options.FaultSeed)
		var ropts []fault.RunOption
		if workers > 1 {
			ropts = append(ropts, fault.WithMachineOptions(machine.WithParallel(workers)))
		}
		if req.Options.Trace {
			// A fresh tracer per attempt; the final attempt's tree is the
			// one reported (aborted attempts die mid-span).
			ropts = append(ropts, fault.WithAttach(func(fm *machine.M, attempt int) {
				tr = trace.Attach(fm, name)
			}))
		}
		res, err := fault.Run(net, plan, func(fm *machine.M) error {
			if alg.minSize != nil && fm.Size() < alg.minSize(sys) {
				return fmt.Errorf("server: %s needs %d PEs, machine has %d: %w",
					name, alg.minSize(sys), fm.Size(), machine.ErrTooFewPEs)
			}
			var err error
			result, err = alg.run(fm, sys, &req)
			return err
		}, ropts...)
		runErr = err
		if res != nil {
			stats = res.Stats
			mi = api.MachineInfo{Topology: string(tp), PEs: res.Topo.Size(), Workers: infoWorkers}
			freport = &api.FaultReport{
				Attempts:    res.Attempts,
				Transients:  res.Transients,
				RetryRounds: res.RetryRounds,
				Failed:      res.Failed,
			}
		}
	} else {
		key := Key{Topo: string(tp), PEs: classSize, Workers: workers}
		m := s.pool.Get(key)
		pi.Hit = m != nil
		if m == nil {
			var mopts []topo.Option
			if workers > 1 {
				mopts = append(mopts, topo.WithParallel(workers))
			}
			m, err = topo.NewMachine(tp, need, mopts...)
			if err != nil {
				st, code := errStatus(err)
				fail(st, code, err)
				return
			}
		}
		defer s.pool.Put(key, m)
		mi = api.MachineInfo{Topology: string(tp), PEs: m.Size(), Workers: infoWorkers}
		if alg.minSize != nil && m.Size() < alg.minSize(sys) {
			runErr = fmt.Errorf("server: %s needs %d PEs, machine has %d: %w",
				name, alg.minSize(sys), m.Size(), machine.ErrTooFewPEs)
		} else {
			if req.Options.Trace {
				tr = trace.Attach(m, name)
			}
			if s.hookRunning != nil {
				s.hookRunning()
			}
			result, runErr = alg.run(m, sys, &req)
			stats = m.Stats()
		}
	}
	sim = stats.Time()

	if tr != nil {
		root := tr.Finish()
		if runErr == nil {
			var buf bytes.Buffer
			trace.WriteCostTree(&buf, root, req.Options.CostDepth)
			costTree = buf.String()
		}
	}
	if runErr != nil {
		st, code := errStatus(runErr)
		fail(st, code, runErr)
		return
	}
	if ctx.Err() != nil {
		fail(http.StatusGatewayTimeout, "deadline_exceeded",
			fmt.Errorf("server: deadline expired during execution: %w", ctx.Err()))
		return
	}

	status = http.StatusOK
	out = &api.Response{
		V:         api.Version,
		Algorithm: name,
		Machine:   mi,
		Stats:     api.FromStats(stats),
		Pool:      pi,
		Fault:     freport,
		CostTree:  costTree,
		Result:    result,
	}
}
