package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"dyncg/internal/api"
	"dyncg/internal/canon"
	"dyncg/internal/coalesce"
	"dyncg/internal/fault"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/rcache"
	"dyncg/internal/replaylog"
	"dyncg/internal/session"
	"dyncg/internal/topo"
	"dyncg/internal/trace"
)

// DefaultCacheBytes is the response-cache bound the daemon uses when
// caching is enabled without an explicit size (dyncgd -rcache-bytes).
// Replay of a trace recorded with caching enabled must run with the
// same bound, so the default is a named constant both sides share.
const DefaultCacheBytes = 32 << 20

// Config configures a Server. The zero value gets sensible defaults —
// with the front door (response cache and request coalescing) disabled:
// both change which requests perform simulated work, so they are strict
// opt-ins and every pre-existing Config keeps its meaning.
type Config struct {
	// PoolCap is the maximum number of idle machines retained across all
	// size classes (0 = 32; negative disables pooling entirely).
	PoolCap int
	// PoolMaxPEs bounds the total PE count across idle pooled machines —
	// the memory control at large n, where a single 2^20-PE machine
	// holds tens of megabytes of register and arena buffers (0 = 2^22,
	// about four idle 2^20-PE machines; negative = unbounded).
	PoolMaxPEs int
	// MaxInFlight caps concurrently executing requests (0 = GOMAXPROCS).
	MaxInFlight int
	// MaxQueue caps requests waiting for an execution slot; beyond it
	// requests are rejected with 429 (0 = 4×MaxInFlight).
	MaxQueue int
	// Deadline is the default per-request deadline, queueing included
	// (0 = 30s). Requests may set their own via options.deadline_ms.
	Deadline time.Duration
	// MaxBody caps the request body size (0 = 8 MiB).
	MaxBody int64
	// DefaultWorkers is the worker-pool size for requests that do not set
	// options.workers (0 = serial).
	DefaultWorkers int
	// MaxSessions caps concurrently live scenario sessions, each of which
	// pins one machine for its lifetime (0 = 64; negative = unbounded).
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this, returning their
	// machines to the pool (0 = 15m; negative disables eviction). Expiry
	// is swept lazily from the serving paths — no janitor goroutine.
	SessionTTL time.Duration
	// CacheBytes, when positive, enables the response cache: a
	// bounded-bytes LRU (internal/rcache) of exact wire response bytes
	// keyed by the canonical request hash (internal/canon). Cached
	// responses are served without admission or simulated work and are
	// byte-identical to the original computation, so replay logs stay
	// verifiable — provided replay runs with the same cache
	// configuration. 0 disables caching.
	CacheBytes int64
	// Coalesce, when true, merges identical in-flight one-shot requests
	// (equal canonical hashes) into a single pool computation whose
	// response bytes fan out to every merged caller (internal/coalesce).
	// Sessions and fault-injected requests are never coalesced.
	Coalesce bool
	// MemberID is this process's identity in a fleet: stamped into the
	// X-Dyncg-Member response header, reported by /v1/cluster, and
	// salted into minted session IDs so IDs from different worker
	// processes never collide (empty = "local", unsalted IDs).
	MemberID string
	// FleetIDs lists every member of the fleet this process belongs to
	// (MemberID included). With two or more members, minted session IDs
	// must consistent-hash back to MemberID on the fleet's named ring,
	// so the front door's ID-routed session traffic always finds the
	// process holding the session. Empty for standalone servers.
	FleetIDs []string
	// Logger receives one structured record per request (nil = discard).
	Logger *slog.Logger
	// ReplayLog, when non-nil, records every served /v1/* request and
	// response into the hash-chained computation log (internal/replaylog)
	// in arrival order. Nil disables recording at the cost of one
	// nil-check on the hot path.
	ReplayLog *replaylog.Log
}

// Server is the HTTP serving surface: POST /v1/<algorithm> for every
// facade algorithm, plus GET /healthz and GET /metrics. Construct with
// New, mount Handler on an http.Server, and flip SetDraining(true)
// before shutdown so the health check fails while in-flight requests
// finish.
type Server struct {
	cfg      Config
	pool     *Pool
	met      *Metrics
	sem      chan struct{} // executing requests
	queue    chan struct{} // executing + waiting requests
	draining atomic.Bool
	log      *slog.Logger
	rlog     *replaylog.Log
	mux      *http.ServeMux
	member   string
	sessions *session.Registry
	sessMet  *sessionMetrics
	rc       *rcache.Cache             // nil when caching is disabled
	cg       *coalesce.Group[*outcome] // nil when coalescing is disabled

	hookAdmitted func() // test seam: runs after admission, before machine checkout
	hookRunning  func() // test seam: runs after machine checkout, before the algorithm
}

// New constructs a Server from the config (zero values defaulted).
func New(cfg Config) *Server {
	if cfg.PoolCap == 0 {
		cfg.PoolCap = 32
	}
	if cfg.PoolMaxPEs == 0 {
		cfg.PoolMaxPEs = 1 << 22
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 64
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = 15 * time.Minute
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:   cfg,
		pool:  NewPoolPEs(cfg.PoolCap, cfg.PoolMaxPEs),
		met:   NewMetrics(),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.MaxInFlight+cfg.MaxQueue),
		log:   log,
		rlog:  cfg.ReplayLog,
		mux:   http.NewServeMux(),
		rc:    rcache.New(cfg.CacheBytes),
	}
	if cfg.Coalesce {
		s.cg = coalesce.New[*outcome]()
	}
	s.member = cfg.MemberID
	if s.member == "" {
		s.member = "local"
	}
	s.sessMet = newSessionMetrics()
	s.sessions = session.NewRegistry(cfg.MaxSessions, cfg.SessionTTL, s.releaseSession)
	if cfg.MemberID != "" {
		s.sessions.SetIDPrefix(cfg.MemberID)
	}
	if check := fleetIDCheck(cfg); check != nil {
		s.sessions.SetIDCheck(check)
	}
	s.mux.HandleFunc("POST /v1/{algorithm}", s.handleAlgorithm)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/update", s.handleSessionUpdate)
	s.mux.HandleFunc("GET /v1/sessions/{id}/query", s.handleSessionQuery)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler (the server itself, so
// every response carries the identity headers).
func (s *Server) Handler() http.Handler { return s }

// Pool returns the machine pool (exposed for tests and metrics).
func (s *Server) Pool() *Pool { return s.pool }

// Metrics returns the request-metrics registry.
func (s *Server) Metrics() *Metrics { return s.met }

// RCacheStats returns a snapshot of the response-cache counters (all
// zero when caching is disabled).
func (s *Server) RCacheStats() rcache.Stats { return s.rc.Stats() }

// CoalesceMerged returns how many requests were merged into another
// caller's in-flight computation (0 when coalescing is disabled).
func (s *Server) CoalesceMerged() int64 {
	if s.cg == nil {
		return 0
	}
	return s.cg.Merged()
}

// SetDraining flips drain mode: /healthz turns 503 and new algorithm
// requests are rejected, while admitted requests run to completion.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of currently executing requests.
func (s *Server) InFlight() int { return len(s.sem) }

// admit applies admission control: reject when draining, 429 when the
// wait queue is full, then block for an execution slot until the
// request's deadline. The returned release frees the slot.
func (s *Server) admit(ctx context.Context) (release func(), status int, code api.ErrorCode) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, api.CodeDraining
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, http.StatusTooManyRequests, api.CodeQueueFull
	}
	select {
	case s.sem <- struct{}{}:
		<-s.queue
		if ctx.Err() != nil {
			<-s.sem
			return nil, http.StatusServiceUnavailable, api.CodeDeadlineQueued
		}
		return func() { <-s.sem }, 0, ""
	case <-ctx.Done():
		<-s.queue
		return nil, http.StatusServiceUnavailable, api.CodeDeadlineQueued
	}
}

// errStatus maps the facade's typed errors to HTTP statuses and the
// typed error codes of the v1 envelope.
func errStatus(err error) (int, api.ErrorCode) {
	switch {
	case errors.Is(err, motion.ErrBadSystem):
		return http.StatusBadRequest, api.CodeBadSystem
	case errors.Is(err, machine.ErrTooFewPEs):
		return http.StatusUnprocessableEntity, api.CodeTooFewPEs
	case errors.Is(err, fault.ErrNotSurvivable):
		return http.StatusServiceUnavailable, api.CodeNotSurvivable
	case errors.Is(err, session.ErrNoSession):
		return http.StatusNotFound, api.CodeNoSession
	case errors.Is(err, session.ErrTooManySessions):
		return http.StatusTooManyRequests, api.CodeTooManySessions
	case errors.Is(err, session.ErrBroken):
		return http.StatusConflict, api.CodeSessionBroken
	}
	return http.StatusInternalServerError, api.CodeInternal
}

func apiError(code api.ErrorCode, err error) *api.Error {
	return api.NewError(code, err.Error())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// newline is written separately after shared response bytes: appending
// to a cached/coalesced body would race on its backing array.
var newline = []byte("\n")

// The values of the X-Dyncg-Source response header: how the algorithm
// response was produced.
const (
	sourceComputed  = "computed"  // this request ran the computation
	sourceCoalesced = "coalesced" // merged into another caller's in-flight computation
	sourceCache     = "cache"     // served from the response cache
)

// finish writes the response and, when the computation log is enabled,
// appends one replay record for the request. The disabled path is the
// plain writeJSON hot path behind a single nil-check; the enabled path
// writes the exact bytes writeJSON would (Marshal plus the Encoder's
// trailing newline) so recorded responses are byte-identical to live
// ones.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, status int, out any, raw []byte, meta api.ReplayMeta) {
	if s.rlog == nil {
		writeJSON(w, status, out)
		return
	}
	body, err := json.Marshal(out)
	if err != nil {
		writeJSON(w, status, out)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
	s.record(r, status, body, raw, meta)
}

// finishBytes is finish for responses that already exist as wire bytes
// (cache hits and coalesced fan-outs): write body + newline and record
// body. The bytes are shared across callers and must not be mutated.
func (s *Server) finishBytes(w http.ResponseWriter, r *http.Request, status int, body, raw []byte, meta api.ReplayMeta) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write(newline)
	if s.rlog == nil {
		return
	}
	s.record(r, status, body, raw, meta)
}

// record appends one replay record (caller has checked s.rlog != nil).
func (s *Server) record(r *http.Request, status int, body, raw []byte, meta api.ReplayMeta) {
	rec := api.ReplayRecord{
		Method:   r.Method,
		Path:     r.URL.RequestURI(),
		Status:   status,
		Meta:     meta,
		Response: body,
	}
	switch {
	case len(raw) == 0:
	case json.Valid(raw):
		rec.Request = raw
	default:
		// A rejected non-JSON body cannot ride in a RawMessage; keep the
		// recorded failure byte-exact as base64.
		rec.RequestBin = raw
	}
	if err := s.rlog.Append(rec); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelError, "replaylog",
			slog.String("error", err.Error()))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.sessions.Sweep() // lazy TTL eviction rides the scrape path
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	writeAllMetrics(w, []*Server{s}, s.rlog)
}

// predecoded carries a /v1/{algorithm} body already read and decoded by
// the shard Router, so the owning shard does not re-read or re-parse
// it. err, when non-nil, is the decode failure the shard must reproduce
// (with the recorded status) so routed and unrouted serving emit
// byte-identical error envelopes.
type predecoded struct {
	raw    []byte
	req    *api.Request
	status int
	err    error
}

type predecodedKey struct{}

func predecodedFrom(ctx context.Context) *predecoded {
	pd, _ := ctx.Value(predecodedKey{}).(*predecoded)
	return pd
}

// outcome is the complete result of serving one algorithm request: the
// HTTP status, the response envelope (out) or its exact wire bytes
// (body, without the trailing newline), and the metadata the replay
// record and the structured log want. Outcomes produced behind the
// front door are marshalled once and shared across coalesced callers.
type outcome struct {
	status    int
	out       any
	body      []byte
	mi        api.MachineInfo
	pi        api.PoolInfo
	sim       int64
	errMsg    string
	faultSeed int64
}

func errOutcome(st int, code api.ErrorCode, err error) *outcome {
	return &outcome{status: st, out: apiError(code, err), errMsg: err.Error()}
}

// marshal fills o.body from o.out. Marshal cannot fail for the
// envelope types this package produces; the fallback degrades to an
// internal-error envelope rather than panicking on a future payload
// that breaks the invariant.
func (o *outcome) marshal() {
	if o.body != nil {
		return
	}
	b, err := json.Marshal(o.out)
	if err != nil {
		e := apiError(api.CodeInternal, fmt.Errorf("server: encoding response: %w", err))
		o.status, o.out, o.errMsg = http.StatusInternalServerError, e, err.Error()
		b, _ = json.Marshal(e)
	}
	o.body = b
}

// algRequest is one decoded, validated, fully resolved one-shot
// request — everything compute needs, independent of the HTTP layer.
type algRequest struct {
	name        string
	alg         algorithm
	req         *api.Request
	tp          topo.Topology
	spec        fault.Spec
	sys         *motion.System
	workers     int // resolved pool-key worker count (≥ 1)
	infoWorkers int // reported worker count (0 when serial)
	need        int // PEs the theorem prescribes (pre-rounding)
	classSize   int // constructed machine size (post-rounding)
}

// handleAlgorithm serves POST /v1/<algorithm>: decode, validate, then
// either serve from the response cache, join an identical in-flight
// computation, or compute (admit, check out a machine, run, convert).
// Every response carries X-Dyncg-Source: computed|coalesced|cache.
func (s *Server) handleAlgorithm(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	name := r.PathValue("algorithm")

	var (
		o      *outcome
		raw    []byte
		sysN   int
		source = sourceComputed
	)
	defer func() {
		if o == nil {
			o = errOutcome(http.StatusInternalServerError, api.CodeInternal,
				errors.New("server: request produced no outcome"))
		}
		w.Header().Set("X-Dyncg-Source", source)
		meta := api.ReplayMeta{
			Topology:  o.mi.Topology,
			PEs:       o.mi.PEs,
			Workers:   o.mi.Workers,
			FaultSeed: o.faultSeed,
		}
		if o.body != nil {
			s.finishBytes(w, r, o.status, o.body, raw, meta)
		} else {
			s.finish(w, r, o.status, o.out, raw, meta)
		}
		lat := time.Since(started)
		s.met.Observe(name, o.status, lat)
		lvl := slog.LevelInfo
		if o.status >= http.StatusInternalServerError {
			lvl = slog.LevelError
		}
		s.log.LogAttrs(r.Context(), lvl, "request",
			slog.String("algorithm", name),
			slog.Int("status", o.status),
			slog.Duration("latency", lat),
			slog.Int("n", sysN),
			slog.String("topology", o.mi.Topology),
			slog.Int("pes", o.mi.PEs),
			slog.Int("workers", o.mi.Workers),
			slog.Bool("pool_hit", o.pi.Hit),
			slog.Bool("pool_bypassed", o.pi.Bypassed),
			slog.String("source", source),
			slog.Int64("sim_time", o.sim),
			slog.String("error", o.errMsg),
		)
	}()
	fail := func(st int, code api.ErrorCode, err error) { o = errOutcome(st, code, err) }

	alg, ok := algorithms[name]
	if !ok {
		fail(http.StatusNotFound, api.CodeUnknownAlgorithm,
			fmt.Errorf("server: unknown algorithm %q", name))
		return
	}

	var req api.Request
	if pd := predecodedFrom(r.Context()); pd != nil {
		raw = pd.raw
		if pd.err != nil {
			fail(pd.status, api.CodeBadRequest, pd.err)
			return
		}
		req = *pd.req
	} else {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
		var rerr error
		raw, rerr = io.ReadAll(r.Body)
		if rerr != nil {
			st := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(rerr, &tooBig) {
				st = http.StatusRequestEntityTooLarge
			}
			fail(st, api.CodeBadRequest, fmt.Errorf("server: decoding request: %w", rerr))
			return
		}
		if err := json.Unmarshal(raw, &req); err != nil {
			fail(http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("server: decoding request: %w", err))
			return
		}
	}
	if req.V != api.Version {
		fail(http.StatusBadRequest, api.CodeBadVersion,
			fmt.Errorf("server: unsupported schema version %d (want %d)", req.V, api.Version))
		return
	}

	topoName := req.Options.Topology
	if topoName == "" {
		topoName = string(topo.Hypercube)
	}
	tp, err := topo.Parse(topoName)
	if err != nil {
		fail(http.StatusBadRequest, api.CodeBadTopology, err)
		return
	}
	spec, err := fault.ParseSpec(req.Options.Faults)
	if err != nil {
		fail(http.StatusBadRequest, api.CodeBadFaults, err)
		return
	}
	sys, err := systemFrom(req.System)
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}
	sysN = sys.N()

	// Normalise the worker count so it can key the machine pool: the
	// constructed machine's Workers() is GOMAXPROCS for negative values
	// and 1 (serial) for 0 or 1.
	workers := req.Options.Workers
	if workers == 0 {
		workers = s.cfg.DefaultWorkers
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	infoWorkers := 0
	if workers > 1 {
		infoWorkers = workers
	}

	need := alg.pes(string(tp), sys)
	if req.Options.PEs > need {
		need = req.Options.PEs
	}
	classSize, err := topo.Size(tp, need)
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}

	ar := &algRequest{
		name:        name,
		alg:         alg,
		req:         &req,
		tp:          tp,
		spec:        spec,
		sys:         sys,
		workers:     workers,
		infoWorkers: infoWorkers,
		need:        need,
		classSize:   classSize,
	}

	deadline := s.cfg.Deadline
	if req.Options.DeadlineMs > 0 {
		deadline = time.Duration(req.Options.DeadlineMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Front door: fault-free requests with an enabled cache or coalescer
	// are keyed by their canonical hash. A cache hit serves the original
	// computation's exact bytes with no admission and no simulated work
	// (drain mode still rejects — a draining server takes no new
	// requests, cheap or not). A miss either joins an identical
	// in-flight computation or becomes its leader.
	if (s.rc != nil || s.cg != nil) && ar.spec.Zero() {
		if key, cacheable := canon.Key(name, string(tp), workers, &req); cacheable {
			if !s.draining.Load() {
				if body, ok := s.rc.Get(key); ok {
					source = sourceCache
					o = &outcome{
						status: http.StatusOK,
						body:   body,
						mi:     api.MachineInfo{Topology: string(tp), PEs: classSize, Workers: infoWorkers},
					}
					return
				}
			}
			if s.cg != nil {
				var led bool
				fl, _, derr := s.cg.Do(ctx, key, func() (*outcome, error) {
					led = true
					oc := s.compute(ctx, ar)
					oc.marshal()
					if oc.status == http.StatusOK {
						s.rc.Put(key, oc.body)
					}
					return oc, nil
				})
				if derr != nil {
					// This follower's deadline expired while the leader was
					// still computing. 503 is an admission artifact: replay
					// skips it like any other load-dependent rejection.
					source = sourceCoalesced
					fail(http.StatusServiceUnavailable, api.CodeCoalesceTimeout,
						fmt.Errorf("server: deadline expired waiting for coalesced computation: %w", derr))
					return
				}
				if !led {
					source = sourceCoalesced
				}
				o = fl
				return
			}
			oc := s.compute(ctx, ar)
			oc.marshal()
			if oc.status == http.StatusOK {
				s.rc.Put(key, oc.body)
			}
			o = oc
			return
		}
	}

	o = s.compute(ctx, ar)
}

// compute runs one resolved request through admission, machine
// checkout (or the fault-recovery harness), the algorithm, and wire
// conversion. It is the single computation a coalesced flight performs
// on behalf of all its callers.
func (s *Server) compute(ctx context.Context, ar *algRequest) *outcome {
	o := &outcome{}
	fail := func(st int, code api.ErrorCode, err error) {
		o.status, o.out, o.errMsg = st, apiError(code, err), err.Error()
	}

	release, st, code := s.admit(ctx)
	if st != 0 {
		fail(st, code, fmt.Errorf("server: request not admitted: %s", code))
		return o
	}
	defer release()
	if s.hookAdmitted != nil {
		s.hookAdmitted()
	}
	if ctx.Err() != nil {
		fail(http.StatusServiceUnavailable, api.CodeDeadlineQueued,
			fmt.Errorf("server: deadline expired before execution: %w", ctx.Err()))
		return o
	}

	name, alg, req, tp, sys := ar.name, ar.alg, ar.req, ar.tp, ar.sys
	var (
		stats    machine.Stats
		freport  *api.FaultReport
		tr       *trace.Tracer
		result   any
		runErr   error
		costTree string
	)
	if !ar.spec.Zero() {
		// Fault-injected runs bypass the pool: the recovery harness owns
		// machine construction across its remap-and-rerun attempts.
		o.pi.Bypassed = true
		o.faultSeed = req.Options.FaultSeed
		net, err := topo.NewNetwork(tp, ar.need)
		if err != nil {
			st, code := errStatus(err)
			fail(st, code, err)
			return o
		}
		plan := fault.NewPlan(ar.spec, req.Options.FaultSeed)
		var ropts []fault.RunOption
		if ar.workers > 1 {
			ropts = append(ropts, fault.WithMachineOptions(machine.WithParallel(ar.workers)))
		}
		if req.Options.Trace {
			// A fresh tracer per attempt; the final attempt's tree is the
			// one reported (aborted attempts die mid-span).
			ropts = append(ropts, fault.WithAttach(func(fm *machine.M, attempt int) {
				tr = trace.Attach(fm, name)
			}))
		}
		res, err := fault.Run(net, plan, func(fm *machine.M) error {
			if alg.minSize != nil && fm.Size() < alg.minSize(sys) {
				return fmt.Errorf("server: %s needs %d PEs, machine has %d: %w",
					name, alg.minSize(sys), fm.Size(), machine.ErrTooFewPEs)
			}
			var err error
			result, err = alg.run(fm, sys, req)
			return err
		}, ropts...)
		runErr = err
		if res != nil {
			stats = res.Stats
			o.mi = api.MachineInfo{Topology: string(tp), PEs: res.Topo.Size(), Workers: ar.infoWorkers}
			freport = &api.FaultReport{
				Attempts:    res.Attempts,
				Transients:  res.Transients,
				RetryRounds: res.RetryRounds,
				Failed:      res.Failed,
			}
		}
	} else {
		key := Key{Topo: string(tp), PEs: ar.classSize, Workers: ar.workers}
		m := s.pool.Get(key)
		o.pi.Hit = m != nil
		if m == nil {
			var mopts []topo.Option
			if ar.workers > 1 {
				mopts = append(mopts, topo.WithParallel(ar.workers))
			}
			var err error
			m, err = topo.NewMachine(tp, ar.need, mopts...)
			if err != nil {
				st, code := errStatus(err)
				fail(st, code, err)
				return o
			}
		}
		defer s.pool.Put(key, m)
		o.mi = api.MachineInfo{Topology: string(tp), PEs: m.Size(), Workers: ar.infoWorkers}
		if alg.minSize != nil && m.Size() < alg.minSize(sys) {
			runErr = fmt.Errorf("server: %s needs %d PEs, machine has %d: %w",
				name, alg.minSize(sys), m.Size(), machine.ErrTooFewPEs)
		} else {
			if req.Options.Trace {
				tr = trace.Attach(m, name)
			}
			if s.hookRunning != nil {
				s.hookRunning()
			}
			result, runErr = alg.run(m, sys, req)
			stats = m.Stats()
		}
	}
	o.sim = stats.Time()

	if tr != nil {
		root := tr.Finish()
		if runErr == nil {
			var buf bytes.Buffer
			trace.WriteCostTree(&buf, root, req.Options.CostDepth)
			costTree = buf.String()
		}
	}
	if runErr != nil {
		st, code := errStatus(runErr)
		fail(st, code, runErr)
		return o
	}
	if ctx.Err() != nil {
		fail(http.StatusGatewayTimeout, api.CodeDeadlineExceeded,
			fmt.Errorf("server: deadline expired during execution: %w", ctx.Err()))
		return o
	}

	o.status = http.StatusOK
	o.out = &api.Response{
		V:         api.Version,
		Algorithm: name,
		Machine:   o.mi,
		Stats:     api.FromStats(stats),
		Pool:      o.pi,
		Fault:     freport,
		CostTree:  costTree,
		Result:    result,
	}
	return o
}
