package server

// The stateful session endpoints: a session checks one machine out of
// the warm pool, builds an internal/session engine on it, and keeps both
// resident so each update batch pays only the engine's incremental dirty
// merge paths. DELETE (or TTL eviction) WarmResets the machine and
// returns it to the pool — the machine's lifecycle is pool → pinned →
// pool, never leaked, which TestSessionChurnPoolAccounting pins down.
//
//	POST   /v1/sessions              create (admitted; one from-scratch build)
//	POST   /v1/sessions/{id}/update  apply a batch (admitted; incremental)
//	GET    /v1/sessions/{id}/query   read the maintained answer (admitted
//	                                 only with ?verify=1, which re-derives
//	                                 from scratch and audits bit-identity)
//	DELETE /v1/sessions/{id}         release (not admitted; frees capacity)

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"reflect"
	"runtime"
	"sync"
	"time"

	"dyncg/internal/api"
	"dyncg/internal/motion"
	"dyncg/internal/poly"
	"dyncg/internal/session"
	"dyncg/internal/topo"
)

// releaseSession is the registry's release callback: zero the pinned
// machine's counters (keeping its scratch arena warm) and return it to
// the pool under the size class it was checked out from.
func (s *Server) releaseSession(ss *session.Session) {
	ss.M.WarmReset()
	s.pool.Put(Key{Topo: ss.Topo, PEs: ss.PEs, Workers: ss.Workers}, ss.M)
}

// sessionMetrics are the session-layer Prometheus counters. Gauges
// (active sessions) and the eviction counter live in the registry; this
// struct accumulates what only the handlers see: applied batches and
// their latency histogram. Exposed under the dyncg_ namespace.
type sessionMetrics struct {
	mu      sync.Mutex
	updates uint64
	buckets []uint64 // reuses latBuckets bounds; last entry is +Inf
	sumUs   int64
}

func newSessionMetrics() *sessionMetrics {
	return &sessionMetrics{buckets: make([]uint64, len(latBuckets)+1)}
}

func (x *sessionMetrics) observeUpdate(d time.Duration) {
	us := d.Microseconds()
	x.mu.Lock()
	defer x.mu.Unlock()
	x.updates++
	x.sumUs += us
	i := 0
	for i < len(latBuckets) && us > latBuckets[i] {
		i++
	}
	x.buckets[i]++
}

// foldInto accumulates x's counters into dst (a scratch instance the
// merged scrape builds per call).
func (x *sessionMetrics) foldInto(dst *sessionMetrics) {
	x.mu.Lock()
	defer x.mu.Unlock()
	dst.updates += x.updates
	dst.sumUs += x.sumUs
	for i, v := range x.buckets {
		dst.buckets[i] += v
	}
}

// write emits the session-layer exposition. active and evictions come
// from the registry (or the sum across a Router's shard registries).
func (x *sessionMetrics) write(w io.Writer, active int, evictions uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	fmt.Fprintf(w, "# TYPE dyncg_sessions_active gauge\n")
	fmt.Fprintf(w, "dyncg_sessions_active %d\n", active)
	fmt.Fprintf(w, "# TYPE dyncg_session_updates_total counter\n")
	fmt.Fprintf(w, "dyncg_session_updates_total %d\n", x.updates)
	fmt.Fprintf(w, "# TYPE dyncg_session_evictions_total counter\n")
	fmt.Fprintf(w, "dyncg_session_evictions_total %d\n", evictions)
	fmt.Fprintf(w, "# TYPE dyncg_session_update_latency_us histogram\n")
	cum := uint64(0)
	for i, ub := range latBuckets {
		cum += x.buckets[i]
		fmt.Fprintf(w, "dyncg_session_update_latency_us_bucket{le=\"%d\"} %d\n", ub, cum)
	}
	cum += x.buckets[len(latBuckets)]
	fmt.Fprintf(w, "dyncg_session_update_latency_us_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "dyncg_session_update_latency_us_sum %d\n", x.sumUs)
	fmt.Fprintf(w, "dyncg_session_update_latency_us_count %d\n", x.updates)
}

// Sessions returns the session registry (exposed for tests).
func (s *Server) Sessions() *session.Registry { return s.sessions }

// sessionInfo snapshots a session's wire description (caller holds the
// session via registry.Do).
func sessionInfo(ss *session.Session) api.SessionInfo {
	infoWorkers := 0
	if ss.Workers > 1 {
		infoWorkers = ss.Workers
	}
	return api.SessionInfo{
		ID:        ss.ID,
		Algorithm: string(ss.Eng.Algorithm()),
		Machine:   api.MachineInfo{Topology: ss.Topo, PEs: ss.PEs, Workers: infoWorkers},
		Capacity:  ss.Eng.Capacity(),
		MaxDegree: ss.Eng.MaxDegree(),
		Origin:    ss.Eng.Origin(),
		Points:    ss.Eng.Points(),
		Updates:   ss.Eng.Updates(),
	}
}

// sessionResult converts a session's maintained answer to the same wire
// payload the one-shot algorithm would return.
func sessionResult(algo session.Algo, res session.Result) any {
	switch algo {
	case session.ClosestPointSeq, session.FarthestPointSeq:
		return neighborEvents(res.Neighbors)
	case session.ClosestPairSeq, session.FarthestPairSeq:
		return pairEvents(res.Pairs)
	case session.CubeEdge:
		return piecewise(res.Edge)
	case session.SmallestEver:
		return api.MinCube{D: res.MinD, T: res.MinT}
	default: // session.Containment
		return intervals(res.Intervals)
	}
}

// pointFrom decodes one moving point (coordinate → ascending
// coefficients).
func pointFrom(coords [][]float64) motion.Point {
	cs := make([]poly.Poly, len(coords))
	for j, cf := range coords {
		cs[j] = poly.New(cf...)
	}
	return motion.NewPoint(cs...)
}

// deltasFrom converts the wire batch to engine deltas.
func deltasFrom(ws []api.SessionDelta) ([]session.Delta, error) {
	out := make([]session.Delta, len(ws))
	for i, wd := range ws {
		d := session.Delta{Op: session.Op(wd.Op), ID: wd.ID}
		switch d.Op {
		case session.OpInsert, session.OpRetarget:
			if len(wd.Point) == 0 {
				return nil, fmt.Errorf("server: delta %d (%s) has no point: %w", i, wd.Op, motion.ErrBadSystem)
			}
			d.Point = pointFrom(wd.Point)
		case session.OpDelete:
		default:
			return nil, fmt.Errorf("server: delta %d has unknown op %q: %w", i, wd.Op, motion.ErrBadSystem)
		}
		out[i] = d
	}
	return out, nil
}

// sessionLog emits one structured record for a session endpoint.
func (s *Server) sessionLog(ctx context.Context, endpoint, id string, status int, lat time.Duration, attrs ...slog.Attr) {
	lvl := slog.LevelInfo
	if status >= http.StatusInternalServerError {
		lvl = slog.LevelError
	}
	base := []slog.Attr{
		slog.String("endpoint", endpoint),
		slog.String("session_id", id),
		slog.Int("status", status),
		slog.Duration("latency", lat),
	}
	s.log.LogAttrs(ctx, lvl, "session", append(base, attrs...)...)
}

// decodeSession decodes a session request body with the server's body
// cap and version gate, returning the raw body bytes for the
// computation log.
func decodeSession(w http.ResponseWriter, r *http.Request, maxBody int64, v any, version func() int) ([]byte, int, api.ErrorCode, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		st := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			st = http.StatusRequestEntityTooLarge
		}
		return raw, st, api.CodeBadRequest, fmt.Errorf("server: decoding request: %w", err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return raw, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("server: decoding request: %w", err)
	}
	if got := version(); got != api.Version {
		return raw, http.StatusBadRequest, api.CodeBadVersion,
			fmt.Errorf("server: unsupported schema version %d (want %d)", got, api.Version)
	}
	return raw, 0, "", nil
}

// handleSessionCreate serves POST /v1/sessions: admit, pin a machine
// from the pool (or construct into the session's size class), build the
// engine from scratch, and register the session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.sessions.Sweep()
	var (
		status int
		out    any
		sid    string
		raw    []byte
		mi     api.MachineInfo
	)
	defer func() {
		s.finish(w, r, status, out, raw, api.ReplayMeta{
			Topology: mi.Topology, PEs: mi.PEs, Workers: mi.Workers, Session: sid,
		})
		lat := time.Since(started)
		s.met.Observe("sessions.create", status, lat)
		s.sessionLog(r.Context(), "create", sid, status, lat)
	}()
	fail := func(st int, code api.ErrorCode, err error) {
		status, out = st, apiError(code, err)
	}

	var req api.SessionCreateRequest
	body, st, code, derr := decodeSession(w, r, s.cfg.MaxBody, &req, func() int { return req.V })
	raw = body
	if st != 0 {
		fail(st, code, derr)
		return
	}
	algo, err := session.ParseAlgo(req.Algorithm)
	if err != nil {
		fail(http.StatusBadRequest, api.CodeUnknownAlgorithm, err)
		return
	}
	topoName := req.Options.Topology
	if topoName == "" {
		topoName = string(topo.Hypercube)
	}
	tp, err := topo.Parse(topoName)
	if err != nil {
		fail(http.StatusBadRequest, api.CodeBadTopology, err)
		return
	}
	if tp != topo.Hypercube && tp != topo.Mesh {
		fail(http.StatusBadRequest, api.CodeBadTopology,
			fmt.Errorf("server: sessions support mesh and hypercube machines, not %q", tp))
		return
	}
	sys, err := systemFrom(req.System)
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}

	// The engine's own defaults, replicated here because the machine must
	// be sized before the engine exists.
	capacity := req.Options.Capacity
	if capacity == 0 {
		capacity = 2 * sys.N()
		if capacity < 8 {
			capacity = 8
		}
	}
	maxK := req.Options.MaxDegree
	if maxK == 0 {
		maxK = sys.K
		if maxK < 1 {
			maxK = 1
		}
	}
	need := session.PEs(string(tp), algo, capacity, maxK)
	if req.Options.PEs > need {
		need = req.Options.PEs
	}
	classSize, err := topo.Size(tp, need)
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}
	workers := req.Options.Workers
	if workers == 0 {
		workers = s.cfg.DefaultWorkers
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	deadline := s.cfg.Deadline
	if req.Options.DeadlineMs > 0 {
		deadline = time.Duration(req.Options.DeadlineMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	release, st, code := s.admit(ctx)
	if st != 0 {
		fail(st, code, fmt.Errorf("server: request not admitted: %s", code))
		return
	}
	defer release()

	key := Key{Topo: string(tp), PEs: classSize, Workers: workers}
	m := s.pool.Get(key)
	var pi api.PoolInfo
	pi.Hit = m != nil
	if m == nil {
		var mopts []topo.Option
		if workers > 1 {
			mopts = append(mopts, topo.WithParallel(workers))
		}
		m, err = topo.NewMachine(tp, need, mopts...)
		if err != nil {
			st, code := errStatus(err)
			fail(st, code, err)
			return
		}
	}
	cfg := session.Config{
		Algorithm: algo,
		Origin:    req.Origin,
		Dims:      req.Dims,
		Capacity:  req.Options.Capacity,
		MaxDegree: req.Options.MaxDegree,
	}
	eng, err := session.New(m, cfg, sys.Points)
	if err != nil {
		s.pool.Put(key, m) // the machine is clean: New failed before mutating it, or its work is discarded by WarmReset on next checkout
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}
	buildStats := m.Stats()
	ss, err := s.sessions.Add(eng, m, string(tp), workers)
	if err != nil {
		m.WarmReset()
		s.pool.Put(key, m)
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}
	sid = ss.ID

	resp := &api.SessionCreateResponse{
		V:       api.Version,
		Session: sessionInfo(ss),
		Pool:    pi,
		Stats:   api.FromStats(buildStats),
		Result:  sessionResult(algo, eng.Result()),
	}
	mi = resp.Session.Machine
	status, out = http.StatusOK, resp
}

// handleSessionUpdate serves POST /v1/sessions/{id}/update: admit, then
// apply the batch under the session lock. The reported Stats are the
// machine's counter delta across the batch — the simulated cost of
// exactly the incremental recompute.
func (s *Server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.sessions.Sweep()
	id := r.PathValue("id")
	var (
		status int
		out    any
		nd     int
		raw    []byte
		mi     api.MachineInfo
	)
	defer func() {
		s.finish(w, r, status, out, raw, api.ReplayMeta{
			Topology: mi.Topology, PEs: mi.PEs, Workers: mi.Workers, Session: id,
		})
		lat := time.Since(started)
		s.met.Observe("sessions.update", status, lat)
		if status == http.StatusOK {
			s.sessMet.observeUpdate(lat)
		}
		s.sessionLog(r.Context(), "update", id, status, lat, slog.Int("deltas", nd))
	}()
	fail := func(st int, code api.ErrorCode, err error) {
		status, out = st, apiError(code, err)
	}

	var req api.SessionUpdateRequest
	body, st, code, derr := decodeSession(w, r, s.cfg.MaxBody, &req, func() int { return req.V })
	raw = body
	if st != 0 {
		fail(st, code, derr)
		return
	}
	nd = len(req.Deltas)
	deltas, err := deltasFrom(req.Deltas)
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	release, st, code := s.admit(ctx)
	if st != 0 {
		fail(st, code, fmt.Errorf("server: request not admitted: %s", code))
		return
	}
	defer release()

	var resp *api.SessionUpdateResponse
	err = s.sessions.Do(id, func(ss *session.Session) error {
		before := ss.M.Stats()
		inserted, ast, err := ss.Eng.Apply(deltas)
		if err != nil {
			return err
		}
		resp = &api.SessionUpdateResponse{
			V:           api.Version,
			Session:     sessionInfo(ss),
			Inserted:    inserted,
			DirtyLeaves: ast.DirtyLeaves,
			MergedNodes: ast.MergedNodes,
			Stats:       api.FromStats(ss.M.Stats().Sub(before)),
			Result:      sessionResult(ss.Eng.Algorithm(), ss.Eng.Result()),
		}
		return nil
	})
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}
	mi = resp.Session.Machine
	status, out = http.StatusOK, resp
}

// handleSessionQuery serves GET /v1/sessions/{id}/query. The plain read
// returns the maintained answer without recomputation (and without
// admission — it does no simulated work). With ?verify=1 the request is
// admitted and the answer is re-derived from scratch on the session's
// machine, reporting whether the maintained result is bit-identical.
func (s *Server) handleSessionQuery(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.sessions.Sweep()
	id := r.PathValue("id")
	verify := r.URL.Query().Get("verify") == "1"
	var (
		status int
		out    any
		mi     api.MachineInfo
	)
	defer func() {
		s.finish(w, r, status, out, nil, api.ReplayMeta{
			Topology: mi.Topology, PEs: mi.PEs, Workers: mi.Workers, Session: id,
		})
		lat := time.Since(started)
		s.met.Observe("sessions.query", status, lat)
		s.sessionLog(r.Context(), "query", id, status, lat, slog.Bool("verify", verify))
	}()
	fail := func(st int, code api.ErrorCode, err error) {
		status, out = st, apiError(code, err)
	}

	if verify {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
		defer cancel()
		release, st, code := s.admit(ctx)
		if st != 0 {
			fail(st, code, fmt.Errorf("server: request not admitted: %s", code))
			return
		}
		defer release()
	}

	var resp *api.SessionQueryResponse
	err := s.sessions.Do(id, func(ss *session.Session) error {
		resp = &api.SessionQueryResponse{
			V:       api.Version,
			Session: sessionInfo(ss),
			Result:  sessionResult(ss.Eng.Algorithm(), ss.Eng.Result()),
		}
		if verify {
			rebuilt, err := ss.Eng.Rebuild()
			if err != nil {
				return err
			}
			ok := reflect.DeepEqual(ss.Eng.Result(), rebuilt)
			resp.Verified = &ok
		}
		return nil
	})
	if err != nil {
		st, code := errStatus(err)
		fail(st, code, err)
		return
	}
	mi = resp.Session.Machine
	status, out = http.StatusOK, resp
}

// handleSessionDelete serves DELETE /v1/sessions/{id}: drop the session
// and return its machine to the pool. Not admitted — deletion frees
// capacity and must work on a saturated server.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.sessions.Sweep()
	id := r.PathValue("id")
	var (
		status int
		out    any
	)
	defer func() {
		s.finish(w, r, status, out, nil, api.ReplayMeta{Session: id})
		lat := time.Since(started)
		s.met.Observe("sessions.delete", status, lat)
		s.sessionLog(r.Context(), "delete", id, status, lat)
	}()

	var updates uint64
	err := s.sessions.Do(id, func(ss *session.Session) error {
		updates = ss.Eng.Updates()
		return nil
	})
	if err == nil {
		err = s.sessions.Remove(id)
	}
	if err != nil {
		st, code := errStatus(err)
		status, out = st, apiError(code, err)
		return
	}
	status = http.StatusOK
	out = &api.SessionDeleteResponse{V: api.Version, ID: id, Updates: updates}
}
