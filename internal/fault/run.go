package fault

import (
	"errors"
	"fmt"
	"strconv"

	"dyncg/internal/machine"
)

// ErrNotSurvivable reports that the fault schedule killed enough PEs
// that no healthy aligned submachine can still run the computation.
var ErrNotSurvivable = errors.New("fault: computation not survivable on the remaining healthy PEs")

// Result reports one Run: the final machine, the cumulative simulated
// cost across every attempt (aborted partial runs, charged recoveries,
// and the successful re-run), and the fault tally.
type Result struct {
	// M is the machine of the final attempt (the one whose body
	// completed, or the last one tried on error).
	M *machine.M
	// Stats is the cumulative simulated cost of the whole faulted
	// execution. With no faults injected it equals the fault-free cost;
	// with any fault injected it is strictly larger.
	Stats machine.Stats
	// Attempts is the number of times the body ran (1 = no remap).
	Attempts int
	// Transients and RetryRounds mirror the plan's tally: faulted rounds
	// and the extra retry rounds charged for them.
	Transients  int64
	RetryRounds int64
	// Failed lists permanently failed PEs as labels of the ORIGINAL
	// topology, in failure order.
	Failed []int
	// Topo is the topology of the final attempt: the original one, or
	// the largest healthy *Sub after failures.
	Topo machine.Topology
}

// String summarises the fault tally for CLI output.
func (r *Result) String() string {
	return fmt.Sprintf("attempts=%d transient-faults=%d retry-rounds=%d failed-pes=%v",
		r.Attempts, r.Transients, r.RetryRounds, r.Failed)
}

type runner struct {
	mopts  []machine.Option
	attach func(m *machine.M, attempt int)
}

// RunOption configures Run.
type RunOption func(*runner)

// WithMachineOptions passes machine construction options (e.g.
// machine.WithParallel) through to every attempt's machine.
func WithMachineOptions(opts ...machine.Option) RunOption {
	return func(r *runner) { r.mopts = opts }
}

// WithAttach registers a hook called with every attempt's machine right
// after construction, before the plan is installed — the place to attach
// a trace.Tracer or other observer.
func WithAttach(f func(m *machine.M, attempt int)) RunOption {
	return func(r *runner) { r.attach = f }
}

// Run executes body under the fault plan with recovery. The body is the
// re-run unit — the "affected primitive" of the recovery protocol: it
// must be a pure function of the machine it is given (re-runnable from
// its captured inputs, the checkpoint), sizing its work by its own
// problem size rather than m.Size(), and returning an error if the
// machine is too small.
//
// Protocol: the body runs on a fresh machine over the full topology.
// Transient faults charge retry rounds in place (the machine handles
// them; outputs are unaffected). When the plan fires a permanent PE
// failure, the machine raises machine.PEFailure; Run recovers it, adds
// the PE to the dead set, finds the largest healthy aligned submachine
// (Gray-code subcube / Hilbert submesh, see Sub), charges the
// checkpoint-restore route that moves the surviving state into it, and
// re-runs the body there. A nil plan (or a zero-spec one) degenerates to
// a single clean attempt.
//
// The returned Result accumulates Stats across all attempts, so degraded
// executions are honestly more expensive than clean ones. If the
// surviving submachine is too small for the body, Run returns an error
// wrapping ErrNotSurvivable.
func Run(topo machine.Topology, plan *Plan, body func(*machine.M) error, opts ...RunOption) (*Result, error) {
	var r runner
	for _, o := range opts {
		o(&r)
	}
	res := &Result{}
	dead := map[int]bool{}
	off, size := 0, topo.Size()
	base := BlockBase(topo)
	var pendingRecovery *recovery
	for {
		var t machine.Topology = topo
		if off != 0 || size != topo.Size() {
			t = NewSub(topo, off, size)
		}
		m := machine.New(t, r.mopts...)
		if r.attach != nil {
			r.attach(m, res.Attempts)
		}
		if plan != nil {
			plan.Bind(size)
			m.SetInjector(plan)
		}
		res.M, res.Topo = m, t
		res.Attempts++
		if pendingRecovery != nil {
			pendingRecovery.charge(m)
			pendingRecovery = nil
		}
		fail, err := runBody(m, body)
		res.Stats = res.Stats.Add(m.Stats())
		if plan != nil {
			res.Transients, res.RetryRounds = plan.Transients, plan.RetryRounds
		}
		if fail == nil {
			if err != nil && len(res.Failed) > 0 {
				// The body ran clean on the full machine but cannot fit
				// on the degraded one: the schedule is not survivable.
				return res, fmt.Errorf("%w: %v", ErrNotSurvivable, err)
			}
			return res, err
		}

		// Permanent failure: remap onto the largest healthy submachine.
		orig := off + fail.PE
		dead[orig] = true
		res.Failed = append(res.Failed, orig)
		noff, nsize := LargestHealthyBlock(topo.Size(), base, dead)
		if nsize == 0 {
			return res, fmt.Errorf("%w: all PEs failed", ErrNotSurvivable)
		}
		pendingRecovery = &recovery{
			topo: topo, pe: orig,
			fromOff: off, toOff: noff, n: nsize,
		}
		off, size = noff, nsize
	}
}

// runBody executes the body, converting a machine.PEFailure panic into a
// normal return; all other panics propagate.
func runBody(m *machine.M, body func(*machine.M) error) (fail *machine.PEFailure, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pf, ok := r.(machine.PEFailure); ok {
				fail = &pf
				return
			}
			panic(r)
		}
	}()
	return nil, body(m)
}

// recovery is a deferred checkpoint-restore charge: the state migration
// from the previous attempt's block into the new healthy block, charged
// on the new machine so the cost lands inside its trace timeline.
type recovery struct {
	topo           machine.Topology
	pe             int // the PE whose failure triggered this recovery
	fromOff, toOff int
	n              int // size of the new healthy block
}

// charge records the restore route on the new machine: slot i of the new
// block is reloaded from the checkpoint image at slot i of the old block
// (the Scatter input convention — PE i holds item i), one structured
// route whose cost is the worst point-to-point distance in the parent
// network.
func (rc *recovery) charge(m *machine.M) {
	if m.Observed() {
		m.SpanBegin("fault.recover",
			"pe", strconv.Itoa(rc.pe),
			"from", strconv.Itoa(rc.fromOff),
			"to", strconv.Itoa(rc.toOff),
			"size", strconv.Itoa(rc.n))
		defer m.SpanEnd()
	}
	dist, msgs := 0, 0
	for i := 0; i < rc.n; i++ {
		src, dst := rc.fromOff+i, rc.toOff+i
		if src == dst {
			continue
		}
		msgs++
		if d := rc.topo.Distance(src, dst); d > dist {
			dist = d
		}
	}
	m.ChargeRecovery(dist, msgs)
}
