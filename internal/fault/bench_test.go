package fault

import (
	"math/rand"
	"testing"

	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
)

// BenchmarkInjectorOverhead measures the cost of the injector hook on
// the hot path: a full bitonic sort on 4096 PEs with no injector (the
// nil-check fast path every fault-free caller takes) vs a zero-fault
// plan attached vs a plan actually injecting transient faults. The
// disabled number is what EXPERIMENTS.md records against the pre-hook
// baseline (budget: ≤ 2%).
func BenchmarkInjectorOverhead(b *testing.B) {
	const n = 4096
	r := rand.New(rand.NewSource(6))
	vals := make([]int, n)
	for i := range vals {
		vals[i] = r.Intn(1 << 20)
	}
	topo := hypercube.MustNew(n)
	run := func(b *testing.B, spec *Spec) {
		for i := 0; i < b.N; i++ {
			m := machine.New(topo)
			if spec != nil {
				plan := NewPlan(*spec, 11)
				plan.Bind(n)
				m.SetInjector(plan)
			}
			regs := machine.Scatter(n, vals)
			machine.Sort(m, regs, func(a, b int) bool { return a < b })
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("zero-plan", func(b *testing.B) { run(b, &Spec{}) })
	b.Run("transient-1pct", func(b *testing.B) { run(b, &Spec{Transient: 0.01}) })
}
