package fault

// Graceful degradation needs somewhere healthy to run. Both of the
// paper's labellings were chosen so that aligned blocks of consecutive
// labels are themselves instances of the machine: on the Gray-coded
// hypercube every aligned block of 2^j labels is a subcube (§2.3), and
// under the mesh's proximity (Hilbert) indexing every aligned block of
// 4^j indices is a √-sized submesh (§2.2, property 2). So "remap onto
// the largest healthy subcube/submesh" is exactly "find the largest
// aligned label block containing no dead PE and re-label it 0..size-1".
// The same construction applies verbatim to the CCC and shuffle-exchange
// networks (aligned power-of-two index blocks; distances stay the
// parent's BFS distances, so charged costs remain honest even though the
// block is not an induced sub-network there).

import (
	"fmt"

	"dyncg/internal/machine"
)

// BlockBase returns the alignment base of topo's healthy-block structure:
// 4 for the mesh (submeshes are quadrants of the Hilbert order), 2 for
// the hypercube, CCC, and shuffle-exchange (power-of-two label blocks).
func BlockBase(topo machine.Topology) int {
	// The mesh is the only bundled topology with a √n side.
	if _, ok := topo.(interface{ Side() int }); ok {
		return 4
	}
	return 2
}

// LargestHealthyBlock returns the offset and size of the largest aligned
// block of consecutive labels — size a power of base, offset a multiple
// of the size — containing no dead PE. It prefers larger blocks, and the
// lowest offset among equals (deterministic). size 0 means no healthy PE
// remains.
func LargestHealthyBlock(n, base int, dead map[int]bool) (off, size int) {
	for size = 1; size*base <= n; size *= base {
	}
	for ; size >= 1; size /= base {
		blocked := make(map[int]bool, len(dead))
		for d := range dead {
			if d >= 0 && d < n {
				blocked[d/size] = true
			}
		}
		for b := 0; b*size+size <= n; b++ {
			if !blocked[b] {
				return b * size, size
			}
		}
	}
	return 0, 0
}

// Sub is a machine.Topology view of an aligned label block of a parent
// topology: the healthy submachine a computation is remapped onto after
// permanent PE failures. Label i of the Sub is label Off+i of the
// parent; distances are the parent's link distances, so simulated costs
// on the degraded machine remain distances in the real network.
type Sub struct {
	parent machine.Topology
	off, n int
	diam   int
}

// NewSub builds the aligned-block view [off, off+n) of parent.
func NewSub(parent machine.Topology, off, n int) *Sub {
	if off < 0 || n <= 0 || off+n > parent.Size() {
		panic(fmt.Sprintf("fault: block [%d,%d) outside topology of size %d",
			off, off+n, parent.Size()))
	}
	s := &Sub{parent: parent, off: off, n: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := s.Distance(i, j); d > s.diam {
				s.diam = d
			}
		}
	}
	return s
}

// Parent returns the wrapped topology.
func (s *Sub) Parent() machine.Topology { return s.parent }

// Offset returns the parent label of the Sub's label 0.
func (s *Sub) Offset() int { return s.off }

// Size implements machine.Topology.
func (s *Sub) Size() int { return s.n }

// Name implements machine.Topology.
func (s *Sub) Name() string {
	return fmt.Sprintf("%s[healthy %d..%d]", s.parent.Name(), s.off, s.off+s.n-1)
}

// Distance implements machine.Topology: the parent's link distance
// between the underlying PEs.
func (s *Sub) Distance(i, j int) int {
	return s.parent.Distance(s.off+i, s.off+j)
}

// Diameter implements machine.Topology: the worst pairwise distance
// within the block (equals the subcube/submesh diameter on the
// hypercube/mesh).
func (s *Sub) Diameter() int { return s.diam }
