// Package fault is the fault-injection and recovery subsystem of the
// simulator: deterministic, seeded schedules of transient link faults and
// permanent PE failures for machine.M, plus the recovery harness that
// keeps the paper's algorithms returning bit-identical geometric answers
// while the machine underneath is being perturbed.
//
// The paper's machines (§2.2 mesh, §2.3 hypercube) are idealized
// lock-step SIMD — every round succeeds and every PE is alive. This
// package supplies the degraded-operation story a production-scale
// system needs, without giving up the simulator's two core guarantees:
//
//   - Determinism: a Plan draws every fault decision from its own seeded
//     PRNG, consumed in charged-round order, with no wall-clock input.
//     The same seed against the same computation yields the identical
//     fault schedule, identical Stats, and an identical trace span tree.
//
//   - Honest cost accounting: transient faults trigger bounded
//     retry-with-backoff whose extra rounds are charged to Stats
//     (CommSteps/Rounds/Messages) inside whatever primitive span is open,
//     and permanent PE failures trigger remap-onto-a-healthy-submachine
//     (Gray-code-aligned subcube on the hypercube, Hilbert-aligned
//     submesh on the mesh) with an explicitly charged checkpoint-restore
//     route — so degraded runs show strictly larger simulated time,
//     attributed to the retrying/remapped primitives in the cost tree.
//
// Usage:
//
//	spec, _ := fault.ParseSpec("transient=0.02,retries=3,fail=1,gap=200")
//	plan := fault.NewPlan(spec, seed)
//	res, err := fault.Run(topo, plan, func(m *machine.M) error {
//	    out, err = core.ClosestPointSequence(m, sys, 0)
//	    return err
//	})
//	// out is bit-identical to a fault-free run; res.Stats holds the
//	// (strictly larger) cumulative simulated cost.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"dyncg/internal/machine"
)

// Spec describes a fault workload. The zero Spec injects nothing.
type Spec struct {
	// Transient is the per-communication-round probability of a
	// transient link fault (a round that must be re-sent).
	Transient float64
	// MaxRetries bounds the retry attempts a single transient fault can
	// need; the actual count is drawn uniformly from [1, MaxRetries].
	// 0 means the default of 3.
	MaxRetries int
	// Fail is the number of permanent PE failures to inject over the
	// run. Each failure requires the recovery harness (Run); driving a
	// machine directly with a failing plan panics with machine.PEFailure.
	Fail int
	// Gap is the mean number of communication rounds between permanent
	// failures; the actual gap is drawn uniformly from [1, 2·Gap].
	// 0 means the default of 200.
	Gap int
}

// Defaults for unset Spec fields.
const (
	defaultMaxRetries = 3
	defaultGap        = 200
)

// Zero reports whether the spec injects no faults at all.
func (s Spec) Zero() bool { return s.Transient == 0 && s.Fail == 0 }

func (s Spec) String() string {
	parts := []string{fmt.Sprintf("transient=%g", s.Transient)}
	if s.MaxRetries != 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", s.MaxRetries))
	}
	if s.Fail != 0 {
		parts = append(parts, fmt.Sprintf("fail=%d", s.Fail))
		if s.Gap != 0 {
			parts = append(parts, fmt.Sprintf("gap=%d", s.Gap))
		}
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the comma-separated key=value fault spec accepted by
// the -faults CLI flags: transient=<prob>, retries=<max>, fail=<count>,
// gap=<rounds>. Unknown keys and malformed values are errors; an empty
// string is the zero Spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: bad spec entry %q (want key=value)", kv)
		}
		switch k {
		case "transient":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return Spec{}, fmt.Errorf("fault: transient=%q is not a probability", v)
			}
			spec.Transient = p
		case "retries":
			r, err := strconv.Atoi(v)
			if err != nil || r < 1 {
				return Spec{}, fmt.Errorf("fault: retries=%q is not a positive count", v)
			}
			spec.MaxRetries = r
		case "fail":
			f, err := strconv.Atoi(v)
			if err != nil || f < 0 {
				return Spec{}, fmt.Errorf("fault: fail=%q is not a count", v)
			}
			spec.Fail = f
		case "gap":
			g, err := strconv.Atoi(v)
			if err != nil || g < 1 {
				return Spec{}, fmt.Errorf("fault: gap=%q is not a positive round count", v)
			}
			spec.Gap = g
		default:
			return Spec{}, fmt.Errorf("fault: unknown spec key %q", k)
		}
	}
	return spec, nil
}

// Plan is a deterministic, seeded fault schedule implementing
// machine.Injector. It consumes its PRNG in charged-round order and
// never reads the wall clock, so the schedule is a pure function of
// (Spec, seed, computation). A Plan is single-goroutine, like the
// machine it is attached to, and is stateful across the attempts of one
// fault.Run (the round counter and remaining-failure budget carry over a
// remap, so the schedule perturbs the whole execution, recovery re-runs
// included).
type Plan struct {
	spec      Spec
	seed      int64
	rng       *rand.Rand
	size      int   // current machine size (victims are drawn from it)
	round     int64 // charged communication rounds seen so far
	nextFail  int64 // round at which the next permanent failure fires
	failsLeft int

	// Counters for reporting (mirrored into Run's Result).
	Transients  int64 // rounds that suffered a transient fault
	RetryRounds int64 // extra retry rounds injected
	Failed      int   // permanent failures fired
}

// NewPlan builds a plan from a spec and a seed. Unset spec fields take
// the package defaults (MaxRetries 3, Gap 200).
func NewPlan(spec Spec, seed int64) *Plan {
	if spec.MaxRetries == 0 {
		spec.MaxRetries = defaultMaxRetries
	}
	if spec.Gap == 0 {
		spec.Gap = defaultGap
	}
	p := &Plan{spec: spec, seed: seed,
		rng: rand.New(rand.NewSource(seed)), failsLeft: spec.Fail}
	p.scheduleNextFail()
	return p
}

// Spec returns the (default-normalized) spec the plan was built from.
func (p *Plan) Spec() Spec { return p.spec }

// Seed returns the plan's PRNG seed.
func (p *Plan) Seed() int64 { return p.seed }

// Bind tells the plan the size of the machine it is about to observe, so
// permanent-failure victims are drawn from live labels. Run calls it at
// every attempt; standalone transient-only users (fail=0) may skip it.
func (p *Plan) Bind(n int) { p.size = n }

func (p *Plan) scheduleNextFail() {
	if p.failsLeft <= 0 {
		p.nextFail = -1
		return
	}
	p.nextFail = p.round + 1 + p.rng.Int63n(int64(2*p.spec.Gap))
}

// CommRound implements machine.Injector.
func (p *Plan) CommRound(machine.RoundInfo) machine.FaultOutcome {
	p.round++
	out := machine.CleanRound
	if p.spec.Transient > 0 && p.rng.Float64() < p.spec.Transient {
		out.Retries = 1 + p.rng.Intn(p.spec.MaxRetries)
		p.Transients++
		p.RetryRounds += int64(out.Retries)
	}
	if p.nextFail >= 0 && p.round >= p.nextFail {
		if p.size <= 0 {
			panic("fault: Plan with permanent failures used without Bind (use fault.Run)")
		}
		out.FailPE = p.rng.Intn(p.size)
		p.failsLeft--
		p.Failed++
		p.scheduleNextFail()
	}
	return out
}
