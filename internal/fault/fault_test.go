package fault

import (
	"reflect"
	"testing"

	"dyncg/internal/ccc"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/shuffle"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		ok   bool
	}{
		{"", Spec{}, true},
		{"transient=0.02", Spec{Transient: 0.02}, true},
		{"transient=0.5,retries=2,fail=3,gap=50",
			Spec{Transient: 0.5, MaxRetries: 2, Fail: 3, Gap: 50}, true},
		{" transient=0.1 , fail=1 ", Spec{Transient: 0.1, Fail: 1}, true},
		{"transient=2", Spec{}, false},
		{"transient=-0.1", Spec{}, false},
		{"retries=0", Spec{}, false},
		{"fail=-1", Spec{}, false},
		{"gap=0", Spec{}, false},
		{"bogus=1", Spec{}, false},
		{"transient", Spec{}, false},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseSpec(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []Spec{
		{Transient: 0.25},
		{Transient: 0.01, MaxRetries: 5},
		{Transient: 0.1, MaxRetries: 2, Fail: 2, Gap: 77},
	} {
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %q: got %+v want %+v", s.String(), got, s)
		}
	}
}

// TestPlanDeterminism: two plans with the same seed produce the same
// outcome stream; a different seed produces a different one.
func TestPlanDeterminism(t *testing.T) {
	spec := Spec{Transient: 0.2, MaxRetries: 3, Fail: 2, Gap: 10}
	stream := func(seed int64) []machine.FaultOutcome {
		p := NewPlan(spec, seed)
		p.Bind(64)
		out := make([]machine.FaultOutcome, 200)
		for i := range out {
			out[i] = p.CommRound(machine.RoundInfo{})
		}
		return out
	}
	a, b := stream(7), stream(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	if reflect.DeepEqual(a, stream(8)) {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

func TestPlanRespectsBudgets(t *testing.T) {
	spec := Spec{Transient: 1, MaxRetries: 4, Fail: 3, Gap: 5}
	p := NewPlan(spec, 1)
	p.Bind(16)
	fails := 0
	for i := 0; i < 1000; i++ {
		out := p.CommRound(machine.RoundInfo{})
		if out.Retries < 1 || out.Retries > 4 {
			t.Fatalf("round %d: retries %d outside [1, 4]", i, out.Retries)
		}
		if out.FailPE >= 0 {
			fails++
			if out.FailPE >= 16 {
				t.Fatalf("victim %d outside machine of 16", out.FailPE)
			}
		}
	}
	if fails != 3 {
		t.Fatalf("injected %d permanent failures, want exactly 3", fails)
	}
}

func TestLargestHealthyBlock(t *testing.T) {
	cases := []struct {
		n, base  int
		dead     []int
		off, siz int
	}{
		{64, 2, nil, 0, 64},
		{64, 2, []int{0}, 32, 32},
		{64, 2, []int{63}, 0, 32},
		{64, 2, []int{20}, 32, 32},
		{64, 2, []int{10, 40}, 16, 16}, // both halves blocked; [16,32) is the lowest healthy quarter
		{64, 4, nil, 0, 64},
		{64, 4, []int{5}, 16, 16},
		{16, 4, []int{0, 4, 8, 12}, 1, 1},
		{4, 2, []int{0, 1, 2, 3}, 0, 0},
	}
	for _, tc := range cases {
		dead := map[int]bool{}
		for _, d := range tc.dead {
			dead[d] = true
		}
		off, siz := LargestHealthyBlock(tc.n, tc.base, dead)
		if off != tc.off || siz != tc.siz {
			t.Fatalf("LargestHealthyBlock(%d, %d, %v) = (%d, %d), want (%d, %d)",
				tc.n, tc.base, tc.dead, off, siz, tc.off, tc.siz)
		}
		for i := off; i < off+siz; i++ {
			if dead[i] {
				t.Fatalf("block [%d,%d) contains dead PE %d", off, off+siz, i)
			}
		}
	}
}

func TestBlockBase(t *testing.T) {
	if b := BlockBase(mesh.MustNew(16, mesh.Proximity)); b != 4 {
		t.Fatalf("mesh base = %d, want 4", b)
	}
	for _, topo := range []machine.Topology{
		hypercube.MustNew(16), ccc.MustNew(2), shuffle.MustNew(4),
	} {
		if b := BlockBase(topo); b != 2 {
			t.Fatalf("%s base = %d, want 2", topo.Name(), b)
		}
	}
}

// TestSubIsSubcube: on the Gray-coded hypercube an aligned block is a
// genuine subcube — diameter log2(size) — and distances match the
// parent's.
func TestSubIsSubcube(t *testing.T) {
	h := hypercube.MustNew(64)
	s := NewSub(h, 32, 16)
	if s.Size() != 16 || s.Offset() != 32 {
		t.Fatalf("sub size/offset = %d/%d", s.Size(), s.Offset())
	}
	if s.Diameter() != 4 {
		t.Fatalf("subcube of 16 has diameter %d, want 4", s.Diameter())
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if s.Distance(i, j) != h.Distance(32+i, 32+j) {
				t.Fatalf("distance (%d,%d) diverges from parent", i, j)
			}
		}
	}
}

// TestSubIsSubmesh: an aligned 4^j block of the proximity-ordered mesh is
// a contiguous √-sized submesh (diameter 2(side−1)).
func TestSubIsSubmesh(t *testing.T) {
	m := mesh.MustNew(64, mesh.Proximity)
	s := NewSub(m, 16, 16) // a 4×4 quadrant
	if s.Diameter() != 6 {
		t.Fatalf("4x4 submesh diameter = %d, want 6", s.Diameter())
	}
}

// sortBody returns a body sorting a fixed item set plus a pointer to the
// captured output; the item count is independent of m.Size(), as the
// recovery protocol requires.
func sortBody(vals []int) (func(*machine.M) error, *[]int) {
	out := new([]int)
	return func(m *machine.M) error {
		if m.Size() < len(vals) {
			return ErrNotSurvivable
		}
		regs := machine.Scatter(m.Size(), vals)
		machine.Sort(m, regs, func(a, b int) bool { return a < b })
		*out = machine.Gather(regs)
		return nil
	}, out
}

func testTopologies() map[string]machine.Topology {
	return map[string]machine.Topology{
		"mesh":      mesh.MustNew(64, mesh.Proximity),
		"hypercube": hypercube.MustNew(64),
		"ccc":       ccc.MustNew(4),
		"shuffle":   shuffle.MustNew(6),
	}
}

// TestRunCleanMatchesDirect: a nil plan is a plain single-machine run.
func TestRunCleanMatchesDirect(t *testing.T) {
	vals := []int{9, 3, 7, 1, 8, 2, 6, 4, 5, 0, 11, 10}
	for name, topo := range testTopologies() {
		direct := machine.New(topo)
		regs := machine.Scatter(direct.Size(), vals)
		machine.Sort(direct, regs, func(a, b int) bool { return a < b })
		want := machine.Gather(regs)

		body, out := sortBody(vals)
		res, err := Run(topo, nil, body)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(*out, want) {
			t.Fatalf("%s: clean Run output %v != direct %v", name, *out, want)
		}
		if res.Stats != direct.Stats() {
			t.Fatalf("%s: clean Run stats %+v != direct %+v", name, res.Stats, direct.Stats())
		}
		if res.Attempts != 1 || res.Transients != 0 || len(res.Failed) != 0 {
			t.Fatalf("%s: clean Run report %v", name, res)
		}
	}
}

// TestRunTransient: transient faults leave outputs bit-identical and
// make the simulated time strictly larger, on every topology.
func TestRunTransient(t *testing.T) {
	vals := make([]int, 16)
	for i := range vals {
		vals[i] = (i * 37) % 100
	}
	for name, topo := range testTopologies() {
		body, out := sortBody(vals)
		clean, err := Run(topo, nil, body)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]int(nil), (*out)...)

		plan := NewPlan(Spec{Transient: 0.1, MaxRetries: 3}, 5)
		res, err := Run(topo, plan, body)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(*out, want) {
			t.Fatalf("%s: faulted output %v != clean %v", name, *out, want)
		}
		if res.Transients == 0 {
			t.Fatalf("%s: schedule injected no transient faults; pick a denser spec", name)
		}
		if res.Stats.Time() <= clean.Stats.Time() {
			t.Fatalf("%s: degraded time %d not strictly larger than clean %d",
				name, res.Stats.Time(), clean.Stats.Time())
		}
		if res.Stats.Rounds != clean.Stats.Rounds+res.RetryRounds {
			t.Fatalf("%s: rounds %d != clean %d + retries %d",
				name, res.Stats.Rounds, clean.Stats.Rounds, res.RetryRounds)
		}
	}
}

// TestRunRecovery: permanent PE failures remap onto a healthy submachine
// and re-run; outputs stay bit-identical, the final machine is a Sub
// excluding every dead PE, and the cumulative cost strictly exceeds a
// clean run on that degraded machine (the aborted attempt and the
// checkpoint-restore route are charged on top of the re-run).
func TestRunRecovery(t *testing.T) {
	vals := make([]int, 16)
	for i := range vals {
		vals[i] = (i * 53) % 97
	}
	for name, topo := range testTopologies() {
		recovered := false
		for seed := int64(1); seed <= 20 && !recovered; seed++ {
			body, out := sortBody(vals)
			if _, err := Run(topo, nil, body); err != nil {
				t.Fatal(err)
			}
			want := append([]int(nil), (*out)...)

			plan := NewPlan(Spec{Fail: 1, Gap: 30}, seed)
			res, err := Run(topo, plan, body)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if len(res.Failed) == 0 {
				continue // schedule ran out of rounds before the failure fired
			}
			recovered = true
			if res.Attempts != 2 {
				t.Fatalf("%s: %d attempts after one failure, want 2", name, res.Attempts)
			}
			if !reflect.DeepEqual(*out, want) {
				t.Fatalf("%s: degraded output %v != clean %v", name, *out, want)
			}
			subClean := machine.New(res.Topo)
			if err := body(subClean); err != nil {
				t.Fatalf("%s: clean re-run on %s: %v", name, res.Topo.Name(), err)
			}
			if res.Stats.Time() <= subClean.Stats().Time() {
				t.Fatalf("%s: degraded time %d not strictly larger than clean degraded-machine time %d",
					name, res.Stats.Time(), subClean.Stats().Time())
			}
			sub, ok := res.Topo.(*Sub)
			if !ok {
				t.Fatalf("%s: final topology %s is not a Sub", name, res.Topo.Name())
			}
			for _, dead := range res.Failed {
				if dead >= sub.Offset() && dead < sub.Offset()+sub.Size() {
					t.Fatalf("%s: dead PE %d inside healthy block", name, dead)
				}
			}
		}
		if !recovered {
			t.Fatalf("%s: no seed in 1..20 exercised a permanent failure", name)
		}
	}
}

// TestRunNotSurvivable: killing PEs until no block can hold the items
// yields ErrNotSurvivable, not a wrong answer.
func TestRunNotSurvivable(t *testing.T) {
	topo := hypercube.MustNew(16)
	vals := make([]int, 16) // needs the whole machine; any failure is fatal
	for i := range vals {
		vals[i] = i
	}
	body, _ := sortBody(vals)
	plan := NewPlan(Spec{Fail: 1, Gap: 5}, 3)
	_, err := Run(topo, plan, body)
	if err == nil {
		t.Fatal("expected ErrNotSurvivable, got success")
	}
}
