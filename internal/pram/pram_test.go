package pram

import (
	"math/bits"
	"math/rand"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

func randCurves(n int) []curve.Curve {
	r := rand.New(rand.NewSource(9))
	cs := make([]curve.Curve, n)
	for i := range cs {
		cs[i] = curve.NewPoly(poly.New(r.NormFloat64()*4, r.NormFloat64(), 0.5+r.Float64()))
	}
	return cs
}

func TestEnvelopeResultExact(t *testing.T) {
	cs := randCurves(32)
	m := machine.New(hypercube.MustNew(32))
	env, steps := Envelope(m, cs, pieces.Min)
	want := pieces.EnvelopeOfCurves(cs, pieces.Min)
	if len(env) != len(want) {
		t.Fatalf("pieces %d, want %d", len(env), len(want))
	}
	if wantSteps := StepsPerLevel * bits.Len(uint(32)); steps != wantSteps {
		t.Fatalf("steps = %d, want %d", steps, wantSteps)
	}
}

// TestSimulationCostDominates: the PRAM simulation must cost strictly
// more than one native sort per level, and its mesh cost must carry the
// extra Θ(log n) factor of §6 relative to a single sort.
func TestSimulationCostDominates(t *testing.T) {
	n := 1024
	cs := randCurves(n)
	m := machine.New(mesh.MustNew(n, mesh.Proximity))
	Envelope(m, cs, pieces.Min)
	pramCost := m.Stats().Time()

	m2 := machine.New(mesh.MustNew(n, mesh.Proximity))
	regs := machine.Scatter(n, make([]int, n))
	machine.Sort(m2, regs, func(a, b int) bool { return a < b })
	oneSort := m2.Stats().Time()

	levels := bits.Len(uint(n))
	if pramCost < int64(levels)*oneSort {
		t.Fatalf("PRAM simulation cost %d < levels×sort %d", pramCost, int64(levels)*oneSort)
	}
}
