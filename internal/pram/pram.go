// Package pram is the comparison baseline of §1 and §6: the
// O(log n)-time n-processor CREW PRAM lower-envelope algorithm of
// [Chandran and Mount 1989], *simulated* on the mesh and hypercube.
//
// The paper's point is quantitative: an n-PE mesh emulates one CREW PRAM
// step (with concurrent reads) in Θ(√n) time and a hypercube in Θ(log² n)
// time (via bitonic-sort-based request routing), so direct simulation
// yields Θ(√n·log n) and Θ(log³ n) envelope algorithms — strictly worse
// than the native constructions of Theorem 3.2 (Θ(λ^{1/2}(n,s)) and
// Θ(log² n)). This package reproduces that comparison *measured*: it runs
// the envelope computation while charging, for every PRAM step, one
// sort-based concurrent-access emulation on the same machine simulator,
// so the C2 benchmark compares like with like.
package pram

import (
	"math/bits"
	"strconv"

	"dyncg/internal/curve"
	"dyncg/internal/machine"
	"dyncg/internal/pieces"
)

// StepsPerLevel is the number of CREW PRAM rounds charged per
// divide-and-conquer level of the envelope algorithm (read the two
// sub-envelopes, locate overlaps, write the merged pieces). The
// Chandran–Mount algorithm performs Θ(1) such rounds per level, O(log n)
// in total.
const StepsPerLevel = 3

// Envelope computes the lower/upper envelope of cs "on a CREW PRAM
// simulated by machine m": the result is exact (computed by the serial
// reference), and m is charged StepsPerLevel sort-based concurrent-access
// emulations per level — the §6 simulation cost. It returns the envelope
// and the number of PRAM steps charged.
func Envelope(m *machine.M, cs []curve.Curve, kind pieces.Kind) (pieces.Piecewise, int) {
	if m.Observed() {
		m.SpanBegin("pram-envelope", "funcs", strconv.Itoa(len(cs)))
		defer m.SpanEnd()
	}
	env := pieces.EnvelopeOfCurves(cs, kind)
	levels := bits.Len(uint(len(cs)))
	steps := 0
	for l := 0; l < levels; l++ {
		for s := 0; s < StepsPerLevel; s++ {
			chargeConcurrentAccess(m)
			steps++
		}
	}
	return env, steps
}

// chargeConcurrentAccess charges one emulated CREW concurrent-read/write
// round: requests are routed by sorting (keys are PE indices; bitonic
// sort cost is data-independent), the standard emulation the paper cites
// (Θ(√n) mesh, Θ(log² n) hypercube).
func chargeConcurrentAccess(m *machine.M) {
	if m.Observed() {
		m.SpanBegin("pram-step")
		defer m.SpanEnd()
	}
	n := m.Size()
	regs := make([]machine.Reg[int], n)
	for i := range regs {
		regs[i] = machine.Some(n - i)
	}
	machine.Sort(m, regs, func(a, b int) bool { return a < b })
}
