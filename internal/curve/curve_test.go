package curve

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/poly"
)

func TestPolyCurveEvalAndIntersections(t *testing.T) {
	f := NewPoly(poly.New(0, 0, 1)) // t²
	g := NewPoly(poly.New(2, 1))    // t+2
	if f.Eval(3) != 9 || g.Eval(3) != 5 {
		t.Fatal("Eval broken")
	}
	times, ident := f.Intersections(g, 0, math.Inf(1))
	if ident || len(times) != 1 || math.Abs(times[0]-2) > 1e-9 {
		t.Fatalf("Intersections = %v, %v", times, ident)
	}
	_, ident = f.Intersections(f, 0, math.Inf(1))
	if !ident {
		t.Fatal("identical curves not detected")
	}
}

func TestConstCurve(t *testing.T) {
	c := Const(3)
	if c.Eval(0) != 3 || c.Eval(100) != 3 {
		t.Fatal("Const broken")
	}
}

func TestAngleEvalQuadrants(t *testing.T) {
	cases := []struct {
		dx, dy poly.Poly
		t      float64
		want   float64
	}{
		{poly.Constant(1), poly.Constant(0), 0, 0},
		{poly.Constant(0), poly.Constant(1), 0, math.Pi / 2},
		{poly.Constant(-1), poly.Constant(0), 0, math.Pi}, // convention: (−π, π]
		{poly.Constant(0), poly.Constant(-1), 0, -math.Pi / 2},
		{poly.Constant(1), poly.Constant(1), 0, math.Pi / 4},
	}
	for i, c := range cases {
		a := NewAngle(c.dx, c.dy)
		if got := a.Eval(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Eval = %v, want %v", i, got, c.want)
		}
	}
}

func TestAngleIntersections(t *testing.T) {
	// Vector 1: fixed direction (1, 1). Vector 2: (1, t): parallel when
	// t = 1 with positive dot product.
	a := NewAngle(poly.Constant(1), poly.Constant(1))
	b := NewAngle(poly.Constant(1), poly.X())
	times, ident := a.Intersections(b, 0, math.Inf(1))
	if ident || len(times) != 1 || math.Abs(times[0]-1) > 1e-9 {
		t.Fatalf("angle intersections = %v, %v", times, ident)
	}
}

func TestAngleAntiparallel(t *testing.T) {
	// Vector 1: (1, 0). Vector 2: (1−t, 0): antiparallel once t > 1.
	// cross ≡ 0 so no isolated antiparallel times are reported there;
	// use a rotating vector instead: (cos-like) — vector 2: (1−t, 1−t)
	// against (1,1): cross ≡ 0. Pick genuinely rotating: (1, t) vs (−1, 1):
	// cross = 1·1 − t·(−1) = 1+t, never 0 on [0,∞).
	a := NewAngle(poly.Constant(1), poly.X())         // rotates from 0 to π/2
	b := NewAngle(poly.Constant(-1), poly.New(2, -1)) // (−1, 2−t)
	// cross = 1·(2−t) − t·(−1) = 2 − t + t = 2 → never parallel.
	times := a.AntiparallelTimes(b, 0, math.Inf(1))
	if len(times) != 0 {
		t.Fatalf("unexpected antiparallel times %v", times)
	}
	// (1, t) vs (−1, −t·…): b = (−1, −t) is exactly opposite of (1, t).
	c := NewAngle(poly.Constant(-1), poly.X().Neg())
	_, ident := a.Intersections(c, 0, math.Inf(1))
	if ident {
		t.Fatal("opposite vectors reported identical")
	}
	// (1, t) vs (−2, 1−2t): cross = 1·(1−2t) − t·(−2) = 1 − 2t + 2t = 1 ≠ 0.
	// Build a rotating pair with a real antiparallel event:
	// u = (1, t), v = (−1, t): cross = t + t = 2t, root at t=0, dot = −1+t².
	u := NewAngle(poly.Constant(1), poly.X())
	v := NewAngle(poly.Constant(-1), poly.X())
	anti := u.AntiparallelTimes(v, 0, math.Inf(1))
	if len(anti) != 1 || anti[0] != 0 {
		t.Fatalf("antiparallel times = %v, want [0]", anti)
	}
}

func TestAngleIdentical(t *testing.T) {
	// (1, t) and (2, 2t) point the same way for all t ≥ 0.
	a := NewAngle(poly.Constant(1), poly.X())
	b := NewAngle(poly.Constant(2), poly.X().Scale(2))
	_, ident := a.Intersections(b, 0, math.Inf(1))
	if !ident {
		t.Fatal("positively proportional vectors should be identical angles")
	}
}

func TestAngleDefined(t *testing.T) {
	// Vector (t−1, 0): vanishes at t=1 (collision).
	a := NewAngle(poly.New(-1, 1), nil)
	if a.Defined(1) {
		t.Fatal("angle should be undefined at collision time")
	}
	if !a.Defined(0) || !a.Defined(2) {
		t.Fatal("angle should be defined away from collision")
	}
}

// Property: angle intersection times really are equal-angle times.
func TestAngleIntersectionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rp := func() poly.Poly {
			return poly.New(float64(r.Intn(7)-3), float64(r.Intn(7)-3))
		}
		a := NewAngle(rp(), rp())
		b := NewAngle(rp(), rp())
		times, ident := a.Intersections(b, 0, 100)
		if ident {
			continue
		}
		for _, tm := range times {
			if !a.Defined(tm) || !b.Defined(tm) {
				continue
			}
			da, db := a.Eval(tm), b.Eval(tm)
			d := math.Abs(da - db)
			if d > math.Pi {
				d = 2*math.Pi - d
			}
			if d > 1e-5 {
				t.Fatalf("trial %d: angles differ by %v at t=%v (a=%v b=%v)",
					trial, d, tm, a, b)
			}
		}
	}
}
