// Package curve defines the real-valued functions of time that the
// paper's envelope algorithms operate on.
//
// Section 6 of the paper lists the four properties a function family must
// satisfy for the algorithms to apply: (1) continuity on its domain,
// (2) a Θ(1)-storage description, (3) Θ(1)-time evaluation, and (4) at most
// k pairwise intersections, computable in Θ(1) time. The Curve interface is
// the direct transcription of those properties. Two families are provided:
// polynomial curves (trajectories, squared distances, coordinate spans) and
// angle curves (the T_ij functions of §4.2, represented by their direction
// vector rather than by arctan so that all predicates stay polynomial).
package curve

import (
	"fmt"
	"math"

	"dyncg/internal/poly"
)

// Curve is a continuous real-valued function of time with the Θ(1)
// description/evaluation/intersection properties of §6.
//
// Intersections must be called with curves of the same family (the paper's
// algorithms only ever compare functions drawn from one family F).
type Curve interface {
	// Eval evaluates the curve at time t ≥ 0.
	Eval(t float64) float64
	// Intersections returns the times in [lo, hi] at which the curve
	// equals other, in increasing order, together with an "identical"
	// flag that is true when the two curves coincide as functions (in
	// which case the time slice is empty).
	Intersections(other Curve, lo, hi float64) (times []float64, identical bool)
	// String returns a compact human-readable description.
	String() string
}

// Poly is a polynomial curve.
type Poly struct{ P poly.Poly }

// NewPoly wraps a polynomial as a Curve.
func NewPoly(p poly.Poly) Poly { return Poly{P: p} }

// Const returns the constant curve c.
func Const(c float64) Poly { return Poly{P: poly.Constant(c)} }

// Eval evaluates the polynomial at t.
func (c Poly) Eval(t float64) float64 { return c.P.Eval(t) }

// Intersections implements Curve for polynomial-vs-polynomial.
func (c Poly) Intersections(other Curve, lo, hi float64) ([]float64, bool) {
	o, ok := other.(Poly)
	if !ok {
		panic(fmt.Sprintf("curve: Poly intersected with %T", other))
	}
	d := c.P.Sub(o.P)
	if d.IsZero() {
		return nil, true
	}
	return d.Roots(lo, hi), false
}

// String implements Curve.
func (c Poly) String() string { return c.P.String() }

// Angle is the angle function T(t) of §4.2: the angle in (−π, π] of the
// moving direction vector (DX(t), DY(t)), e.g. from point P_i to point P_j.
// It is represented by the vector itself; every predicate (comparison,
// intersection, antiparallelism) reduces to polynomial sign tests and root
// isolation, exactly as in the proof of Theorem 4.5.
type Angle struct {
	DX, DY poly.Poly
}

// NewAngle returns the angle curve of the vector (dx(t), dy(t)).
func NewAngle(dx, dy poly.Poly) Angle { return Angle{DX: dx, DY: dy} }

// Eval returns the angle atan2(DY(t), DX(t)) ∈ (−π, π].
func (c Angle) Eval(t float64) float64 {
	y, x := c.DY.Eval(t), c.DX.Eval(t)
	a := math.Atan2(y, x)
	if a == -math.Pi { // normalize to (−π, π]
		a = math.Pi
	}
	return a
}

// Defined reports whether the angle exists at t (the vector is nonzero);
// it vanishes exactly at collision times (§4.2: T undefined when the two
// points coincide).
func (c Angle) Defined(t float64) bool {
	return c.DX.SignAt(t) != 0 || c.DY.SignAt(t) != 0
}

// cross returns DX·other.DY − DY·other.DX, the polynomial whose roots are
// the times at which the two vectors are parallel (proof of Theorem 4.5).
func (c Angle) cross(o Angle) poly.Poly {
	return c.DX.Mul(o.DY).Sub(c.DY.Mul(o.DX))
}

// dot returns DX·other.DX + DY·other.DY.
func (c Angle) dot(o Angle) poly.Poly {
	return c.DX.Mul(o.DX).Add(c.DY.Mul(o.DY))
}

// Intersections returns the times in [lo, hi] at which the two angle
// functions are equal: the vectors are parallel (cross = 0) and similarly
// oriented (dot > 0). Per Theorem 4.5 this is a Θ(1) computation on
// bounded-degree polynomials.
func (c Angle) Intersections(other Curve, lo, hi float64) ([]float64, bool) {
	o, ok := other.(Angle)
	if !ok {
		panic(fmt.Sprintf("curve: Angle intersected with %T", other))
	}
	cr := c.cross(o)
	dt := c.dot(o)
	if cr.IsZero() {
		// Always parallel. Identical iff also always similarly oriented.
		if dt.SignAtInfinity() > 0 && len(dt.RootsNonNeg()) == 0 {
			return nil, true
		}
		// Antiparallel throughout (or flips at isolated collisions):
		// equal only where dot > 0; for bounded-degree motion this is a
		// union of intervals, which the piecewise layer handles by
		// domain splitting, so report no isolated intersections.
		return nil, false
	}
	var times []float64
	for _, r := range cr.Roots(lo, hi) {
		if dt.SignAt(r) > 0 {
			times = append(times, r)
		}
	}
	return times, false
}

// AntiparallelTimes returns the times in [lo, hi] at which the two angle
// curves differ by exactly π: vectors parallel (cross = 0) and oppositely
// oriented (dot < 0). Used to locate a₀−d₀ = π events in Theorem 4.5.
func (c Angle) AntiparallelTimes(o Angle, lo, hi float64) []float64 {
	cr := c.cross(o)
	if cr.IsZero() {
		return nil
	}
	dt := c.dot(o)
	var times []float64
	for _, r := range cr.Roots(lo, hi) {
		if dt.SignAt(r) < 0 {
			times = append(times, r)
		}
	}
	return times
}

// String implements Curve.
func (c Angle) String() string {
	return fmt.Sprintf("atan2(%s, %s)", c.DY, c.DX)
}

var (
	_ Curve = Poly{}
	_ Curve = Angle{}
)
