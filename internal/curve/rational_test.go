package curve

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/poly"
)

func TestRationalValidation(t *testing.T) {
	if _, err := NewRational(poly.New(1), nil); err == nil {
		t.Error("zero denominator accepted")
	}
	// Denominator with a root at t=2.
	if _, err := NewRational(poly.New(1), poly.FromRoots(2)); err == nil {
		t.Error("vanishing denominator accepted")
	}
	// Negative denominator.
	if _, err := NewRational(poly.New(1), poly.New(-1)); err == nil {
		t.Error("negative denominator accepted")
	}
	// 1/(1+t²) is fine.
	if _, err := NewRational(poly.New(1), poly.New(1, 0, 1)); err != nil {
		t.Errorf("valid rational rejected: %v", err)
	}
}

func TestRationalEvalAndIntersections(t *testing.T) {
	// f = 4/(1+t), g = 1: equal at t = 3.
	f := MustRational(poly.New(4), poly.New(1, 1))
	g := MustRational(poly.New(1), poly.New(1))
	if f.Eval(0) != 4 || math.Abs(f.Eval(3)-1) > 1e-12 {
		t.Fatalf("Eval broken: %v %v", f.Eval(0), f.Eval(3))
	}
	times, ident := f.Intersections(g, 0, math.Inf(1))
	if ident || len(times) != 1 || math.Abs(times[0]-3) > 1e-9 {
		t.Fatalf("intersections = %v, %v", times, ident)
	}
	// Identical after cross-multiplication: 2/(2+2t) ≡ 1/(1+t).
	h := MustRational(poly.New(2), poly.New(2, 2))
	i := MustRational(poly.New(1), poly.New(1, 1))
	if _, ident := h.Intersections(i, 0, math.Inf(1)); !ident {
		t.Fatal("proportional rationals not identified")
	}
}

// TestRationalEnvelopeProperty: envelopes of the §6-general family match
// brute-force sampling — the paper's four-property contract in action.
// (Uses the pieces package indirectly via a local mini-check to avoid an
// import cycle in tests; full envelope integration lives in
// internal/pieces and examples/influence.)
func TestRationalPairwiseMinProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		mk := func() Rational {
			num := poly.New(r.Float64()*5, r.NormFloat64())
			den := poly.New(0.5+r.Float64(), r.Float64(), 0.1+r.Float64())
			return MustRational(num, den)
		}
		f, g := mk(), mk()
		times, ident := f.Intersections(g, 0, 50)
		if ident {
			continue
		}
		// Between consecutive intersections the order is constant.
		cuts := append([]float64{0}, times...)
		cuts = append(cuts, 50)
		for i := 0; i+1 < len(cuts); i++ {
			lo, hi := cuts[i], cuts[i+1]
			if hi-lo < 1e-6 {
				continue
			}
			a := lo + (hi-lo)*0.25
			b := lo + (hi-lo)*0.75
			less1 := f.Eval(a) < g.Eval(a)
			less2 := f.Eval(b) < g.Eval(b)
			// Allow ties within tolerance near tangencies.
			if less1 != less2 && math.Abs(f.Eval(b)-g.Eval(b)) > 1e-7 &&
				math.Abs(f.Eval(a)-g.Eval(a)) > 1e-7 {
				t.Fatalf("trial %d: order flips inside (%v, %v) without intersection",
					trial, lo, hi)
			}
		}
	}
}
