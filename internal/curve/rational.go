package curve

import (
	"fmt"

	"dyncg/internal/poly"
)

// Rational is a rational function of time, f(t) = Num(t)/Den(t) with
// Den(t) > 0 for all t ≥ 0 (so f is continuous on [0, ∞)).
//
// It exists to exercise §6's closing generalisation: the paper's
// algorithms apply to any function family with (1) continuity, (2) Θ(1)
// storage, (3) Θ(1) evaluation, and (4) at most k pairwise intersections
// computable in Θ(1) time. Bounded-degree positive-denominator rationals
// satisfy all four — two such functions intersect where the
// cross-multiplied polynomial Num₁·Den₂ − Num₂·Den₁ vanishes — so
// envelopes of, e.g., inverse-square signal strengths over moving
// transmitters (examples/influence) come for free.
type Rational struct {
	Num, Den poly.Poly
}

// NewRational validates and builds a rational curve. The denominator
// must be strictly positive on [0, ∞) (continuity, §6 property 1).
func NewRational(num, den poly.Poly) (Rational, error) {
	if den.IsZero() {
		return Rational{}, fmt.Errorf("curve: zero denominator")
	}
	if den.SignAt(0) <= 0 || den.SignAtInfinity() <= 0 {
		return Rational{}, fmt.Errorf("curve: denominator not positive on [0, ∞)")
	}
	if roots := den.RootsNonNeg(); len(roots) > 0 {
		return Rational{}, fmt.Errorf("curve: denominator vanishes at t=%v", roots[0])
	}
	return Rational{Num: num, Den: den}, nil
}

// MustRational is NewRational but panics on error.
func MustRational(num, den poly.Poly) Rational {
	r, err := NewRational(num, den)
	if err != nil {
		panic(err)
	}
	return r
}

// Eval evaluates the rational function at t.
func (c Rational) Eval(t float64) float64 { return c.Num.Eval(t) / c.Den.Eval(t) }

// Intersections implements Curve: f₁ = f₂ exactly where
// Num₁·Den₂ − Num₂·Den₁ = 0, a bounded-degree polynomial (§6 property 4).
func (c Rational) Intersections(other Curve, lo, hi float64) ([]float64, bool) {
	o, ok := other.(Rational)
	if !ok {
		panic(fmt.Sprintf("curve: Rational intersected with %T", other))
	}
	d := c.Num.Mul(o.Den).Sub(o.Num.Mul(c.Den))
	if d.IsZero() {
		return nil, true
	}
	return d.Roots(lo, hi), false
}

// String implements Curve.
func (c Rational) String() string {
	if c.Den.Degree() == 0 && c.Den.Lead() == 1 {
		return c.Num.String()
	}
	return fmt.Sprintf("(%s)/(%s)", c.Num, c.Den)
}

var _ Curve = Rational{}
