// Package dsseq implements the Davenport–Schinzel machinery of §2.5: the
// function λ(n, s) bounding the number of pieces of the minimum function
// of n curves that pairwise intersect at most s times, the associated
// sequence combinatorics (Definition 2.1), the inverse Ackermann function
// α(n) (Theorem 2.3), and extremal constructions used to stress the
// envelope algorithms.
package dsseq

import "math"

// maxSat is the saturation value for the fast-growing Ackermann hierarchy.
const maxSat = math.MaxInt64 / 4

// ackRow applies the k-th Hart–Sharir function A_k to x with saturation:
// A_1(x) = 2x and A_k(x) = A_{k-1} iterated x times starting from 1.
func ackRow(k int, x int64) int64 {
	if x >= maxSat {
		return maxSat
	}
	if k == 1 {
		if x > maxSat/2 {
			return maxSat
		}
		return 2 * x
	}
	v := int64(1)
	for i := int64(0); i < x; i++ {
		v = ackRow(k-1, v)
		if v >= maxSat {
			return maxSat
		}
	}
	return v
}

// InverseAckermann returns α(n), the functional inverse of the Ackermann
// hierarchy: the least k with A_k(k) ≥ n. It is ≤ 4 for every remotely
// practical n (Hart–Sharir 1986, quoted in §2.5: α(n) ≤ 4 for n up to a
// tower of 65536 twos).
func InverseAckermann(n int) int {
	if n <= 4 {
		return 1
	}
	for k := 1; ; k++ {
		v := ackRow(k, int64(k))
		// A saturated row dominates every representable n.
		if v >= maxSat || v >= int64(n) {
			return k
		}
	}
}

// Lambda returns λ(n, s) where it is known exactly (Theorem 2.3):
// λ(n, 0) = 1, λ(n, 1) = n, λ(n, 2) = 2n − 1. For s ≥ 3 it returns the
// value of LambdaBound; exact values for s ≥ 3 are only known
// asymptotically (Θ(n·α(n)) for s = 3).
func Lambda(n, s int) int {
	if n <= 0 {
		return 0
	}
	switch s {
	case 0:
		return 1
	case 1:
		return n
	case 2:
		return 2*n - 1
	}
	if n == 1 {
		return 1
	}
	return LambdaBound(n, s)
}

// LambdaBound returns a safe upper bound on λ(n, s), used to size the
// processor allocations λ_M(n, s) and λ_H(n, s) of §3. For s ≥ 3 the true
// value is Θ(n·α(n)) (s = 3) or O(n·α(n)^{O(α(n)^{s−3})}) (Sharir 1987);
// for every n a simulator can hold, α(n) ≤ 4, so s·n·(α(n)+1) is a
// comfortable and honest bound.
func LambdaBound(n, s int) int {
	if n <= 0 {
		return 0
	}
	switch s {
	case 0:
		return 1
	case 1:
		return n
	case 2:
		return 2*n - 1
	}
	return s * n * (InverseAckermann(n) + 1)
}

// LambdaMesh returns λ_M(n, s) = 4^⌈log₄ λ(n,s)⌉, the smallest power of
// four that accommodates λ(n, s) PEs (§3).
func LambdaMesh(n, s int) int { return NextPow4(LambdaBound(n, s)) }

// LambdaCube returns λ_H(n, s) = 2^⌈log₂ λ(n,s)⌉ (§3).
func LambdaCube(n, s int) int { return NextPow2(LambdaBound(n, s)) }

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NextPow4 returns the smallest power of four ≥ n (and ≥ 1).
func NextPow4(n int) int {
	p := 1
	for p < n {
		p <<= 2
	}
	return p
}

// IsDSSequence reports whether seq (symbols in [0, n)) is an (n, s)
// Davenport–Schinzel sequence in the sense of Definition 2.1: no two equal
// adjacent symbols and no alternating subsequence a…b…a…b… of length
// s + 2 for distinct a, b.
func IsDSSequence(seq []int, n, s int) bool {
	for i, a := range seq {
		if a < 0 || a >= n {
			return false
		}
		if i > 0 && seq[i-1] == a {
			return false
		}
	}
	// For each ordered pair (a, b), the longest alternation starting with a
	// is found by a single scan. Quadratic in n, linear in len(seq): fine
	// for validation purposes.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			alt := 0 // length of longest alternation a b a b … seen so far
			for _, x := range seq {
				if alt%2 == 0 && x == a {
					alt++
				} else if alt%2 == 1 && x == b {
					alt++
				}
				if alt >= s+2 {
					return false
				}
			}
		}
	}
	return true
}

// MaxAlternation returns the length of the longest alternating
// subsequence a…b…a…b… over all pairs of distinct symbols in seq.
func MaxAlternation(seq []int, n int) int {
	best := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			alt := 0
			for _, x := range seq {
				if alt%2 == 0 && x == a {
					alt++
				} else if alt%2 == 1 && x == b {
					alt++
				}
			}
			if alt > best {
				best = alt
			}
		}
	}
	return best
}

// ExtremalS1 returns the extremal (n, 1) DS-sequence 0, 1, …, n−1 of
// length λ(n, 1) = n.
func ExtremalS1(n int) []int {
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	return seq
}

// ExtremalS2 returns the extremal (n, 2) DS-sequence
// 0, 1, …, n−2, n−1, n−2, …, 1, 0 of length λ(n, 2) = 2n − 1.
func ExtremalS2(n int) []int {
	seq := make([]int, 0, 2*n-1)
	for i := 0; i < n; i++ {
		seq = append(seq, i)
	}
	for i := n - 2; i >= 0; i-- {
		seq = append(seq, i)
	}
	return seq
}

// ExactLambdaSmall computes λ(n, s) exactly by exhaustive search. It is
// exponential and intended only for tiny parameters in tests (n ≤ 5,
// s ≤ 3), where it certifies the closed forms of Theorem 2.3.
func ExactLambdaSmall(n, s int) int {
	best := 0
	var seq []int
	var dfs func()
	dfs = func() {
		if len(seq) > best {
			best = len(seq)
		}
		for c := 0; c < n; c++ {
			if len(seq) > 0 && seq[len(seq)-1] == c {
				continue
			}
			seq = append(seq, c)
			if IsDSSequence(seq, n, s) {
				dfs()
			}
			seq = seq[:len(seq)-1]
		}
	}
	dfs()
	return best
}
