package dsseq_test

import (
	"testing"

	"dyncg/internal/dsseq"
)

// FuzzDSValidity fuzzes the Davenport–Schinzel machinery of Theorem 2.3
// from three directions:
//
//  1. the extremal generators always pass the validity checker (and the
//     (n,2) generator achieves its exact alternation bound);
//  2. IsDSSequence agrees with the independent reference predicate
//     "adjacent-distinct ∧ in-range ∧ MaxAlternation ≤ s+1" on arbitrary
//     sequences;
//  3. deterministic mutations of a valid sequence — duplicating a symbol
//     in place, or writing an out-of-range symbol — are always rejected.
func FuzzDSValidity(f *testing.F) {
	f.Add(5, 2, []byte{0, 1, 2, 3, 4, 3, 2, 1, 0})
	f.Add(3, 1, []byte{0, 1, 2})
	f.Add(2, 3, []byte{0, 1, 0, 1, 0})
	f.Add(7, 2, []byte("abcabc"))
	f.Fuzz(func(t *testing.T, n, s int, data []byte) {
		if n < 2 || n > 24 || s < 1 || s > 4 {
			t.Skip()
		}
		if len(data) > 256 {
			data = data[:256]
		}

		// (1) Generators pass their own checker.
		if got := dsseq.ExtremalS1(n); !dsseq.IsDSSequence(got, n, 1) {
			t.Errorf("ExtremalS1(%d) rejected by IsDSSequence", n)
		}
		s2 := dsseq.ExtremalS2(n)
		if !dsseq.IsDSSequence(s2, n, 2) {
			t.Errorf("ExtremalS2(%d) rejected by IsDSSequence", n)
		}
		if got := dsseq.MaxAlternation(s2, n); got != 3 {
			t.Errorf("MaxAlternation(ExtremalS2(%d)) = %d, want 3", n, got)
		}
		if len(s2) != 2*n-1 {
			t.Errorf("len(ExtremalS2(%d)) = %d, want λ(n,2) = %d", n, len(s2), 2*n-1)
		}

		// (2) Checker agrees with the reference predicate on fuzz input.
		seq := make([]int, len(data))
		for i, b := range data {
			seq[i] = int(b) % n
		}
		wellFormed := true
		for i, a := range seq {
			if i > 0 && seq[i-1] == a {
				wellFormed = false
			}
		}
		want := wellFormed && dsseq.MaxAlternation(seq, n) <= s+1
		if got := dsseq.IsDSSequence(seq, n, s); got != want {
			t.Errorf("IsDSSequence(%v, n=%d, s=%d) = %v, reference predicate says %v",
				seq, n, s, got, want)
		}

		// (3) Mutations of a valid sequence are always rejected.
		if len(seq) > 0 && dsseq.IsDSSequence(seq, n, s) {
			mid := len(seq) / 2
			dup := append(append([]int{}, seq[:mid+1]...), seq[mid:]...)
			if dsseq.IsDSSequence(dup, n, s) {
				t.Errorf("adjacent duplicate at %d accepted: %v", mid, dup)
			}
			oor := append([]int{}, seq...)
			oor[mid] = n
			if dsseq.IsDSSequence(oor, n, s) {
				t.Errorf("out-of-range symbol accepted: %v", oor)
			}
		}
	})
}
