package dsseq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dyncg/internal/curve"
	"dyncg/internal/pieces"
)

func TestInverseAckermannTiny(t *testing.T) {
	// α is monotone nondecreasing and ≤ 4 for any machine-sized n.
	prev := 0
	for _, n := range []int{1, 2, 4, 8, 16, 1 << 20, 1 << 40, 1 << 62} {
		a := InverseAckermann(n)
		if a < prev {
			t.Fatalf("α not monotone at n=%d: %d < %d", n, a, prev)
		}
		if a > 4 {
			t.Fatalf("α(%d) = %d > 4", n, a)
		}
		prev = a
	}
}

func TestLambdaClosedForms(t *testing.T) {
	for n := 1; n <= 100; n++ {
		if Lambda(n, 1) != n {
			t.Fatalf("λ(%d,1) = %d, want %d", n, Lambda(n, 1), n)
		}
		if Lambda(n, 2) != 2*n-1 {
			t.Fatalf("λ(%d,2) = %d, want %d", n, Lambda(n, 2), 2*n-1)
		}
		if Lambda(n, 0) != 1 {
			t.Fatalf("λ(%d,0) = %d, want 1", n, Lambda(n, 0))
		}
	}
}

func TestExactLambdaMatchesClosedForms(t *testing.T) {
	// Brute force certifies Theorem 2.3's closed forms on tiny inputs.
	for n := 1; n <= 4; n++ {
		if got := ExactLambdaSmall(n, 1); got != n {
			t.Errorf("exact λ(%d,1) = %d, want %d", n, got, n)
		}
		if got := ExactLambdaSmall(n, 2); got != 2*n-1 {
			t.Errorf("exact λ(%d,2) = %d, want %d", n, got, 2*n-1)
		}
	}
	// λ(2, s) = s + 1 (two functions crossing s times: s+1 pieces).
	for s := 1; s <= 4; s++ {
		if got := ExactLambdaSmall(2, s); got != s+1 {
			t.Errorf("exact λ(2,%d) = %d, want %d", s, got, s+1)
		}
	}
}

func TestLemma24Superadditivity(t *testing.T) {
	// Lemma 2.4: 2λ(n, s) ≤ λ(2n, s) — for the closed forms and bound.
	for n := 1; n <= 64; n++ {
		for s := 1; s <= 4; s++ {
			if 2*Lambda(n, s) > Lambda(2*n, s) {
				t.Fatalf("2λ(%d,%d)=%d > λ(%d,%d)=%d",
					n, s, 2*Lambda(n, s), 2*n, s, Lambda(2*n, s))
			}
		}
	}
}

func TestIsDSSequence(t *testing.T) {
	// The paper's example: a1 a2 a1 a3 a1 ∉ L(3,2) since a1a2a1a2… wait —
	// the text's example is z = a1 a2 a3 a1 a2 (0-indexed: 0 1 2 0 1),
	// containing E12 = 0101 as a subsequence? With s = 2 the forbidden
	// alternation has length s + 2 = 4: 0 1 0 1. The sequence 0 1 2 0 1
	// contains 0 1 0 1. So it must be rejected for s = 2.
	if IsDSSequence([]int{0, 1, 2, 0, 1}, 3, 2) {
		t.Error("0 1 2 0 1 should not be a (3,2) DS-sequence")
	}
	if !IsDSSequence([]int{0, 1, 2, 1, 0}, 3, 2) {
		t.Error("0 1 2 1 0 is a valid (3,2) DS-sequence")
	}
	if IsDSSequence([]int{0, 0}, 2, 3) {
		t.Error("immediate repetition must be rejected")
	}
	if IsDSSequence([]int{0, 5}, 2, 3) {
		t.Error("out-of-alphabet symbol must be rejected")
	}
}

func TestExtremalSequencesAreValidAndExtremal(t *testing.T) {
	for n := 1; n <= 30; n++ {
		s1 := ExtremalS1(n)
		if len(s1) != Lambda(n, 1) || !IsDSSequence(s1, n, 1) {
			t.Fatalf("ExtremalS1(%d) invalid", n)
		}
		s2 := ExtremalS2(n)
		if len(s2) != Lambda(n, 2) || !IsDSSequence(s2, n, 2) {
			t.Fatalf("ExtremalS2(%d) invalid: len=%d", n, len(s2))
		}
	}
}

// Property: random subsequence deletion preserves DS-validity.
func TestDSClosedUnderDeletionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		seq := ExtremalS2(n)
		// Delete a random element and collapse any adjacent repeats.
		i := r.Intn(len(seq))
		del := append(append([]int{}, seq[:i]...), seq[i+1:]...)
		var collapsed []int
		for _, x := range del {
			if len(collapsed) == 0 || collapsed[len(collapsed)-1] != x {
				collapsed = append(collapsed, x)
			}
		}
		return IsDSSequence(collapsed, n, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExtremalParabolasAttainBound(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 12, 16, 24} {
		ps := ExtremalParabolas(n)
		cs := make([]curve.Curve, n)
		for i, p := range ps {
			cs[i] = curve.NewPoly(p)
		}
		env := pieces.EnvelopeOfCurves(cs, pieces.Min)
		if len(env) != 2*n-1 {
			t.Fatalf("n=%d: envelope has %d pieces, want λ(n,2)=%d\n%v",
				n, len(env), 2*n-1, env)
		}
		// The visiting order must itself be a (n,2) DS-sequence.
		if !IsDSSequence(env.IDs(), n, 2) {
			t.Fatalf("n=%d: piece sequence %v is not a (n,2) DS-sequence",
				n, env.IDs())
		}
	}
}

func TestSortedLinesAttainBound(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 32} {
		ps := SortedLines(n)
		cs := make([]curve.Curve, n)
		for i, p := range ps {
			cs[i] = curve.NewPoly(p)
		}
		env := pieces.EnvelopeOfCurves(cs, pieces.Min)
		if len(env) != n {
			t.Fatalf("n=%d: envelope has %d pieces, want λ(n,1)=%d",
				n, len(env), n)
		}
		if !IsDSSequence(env.IDs(), n, 1) {
			t.Fatalf("n=%d: piece order %v not a (n,1) DS-sequence", n, env.IDs())
		}
	}
}

func TestPowHelpers(t *testing.T) {
	if NextPow2(1) != 1 || NextPow2(3) != 4 || NextPow2(8) != 8 {
		t.Fatal("NextPow2 broken")
	}
	if NextPow4(1) != 1 || NextPow4(5) != 16 || NextPow4(16) != 16 || NextPow4(17) != 64 {
		t.Fatal("NextPow4 broken")
	}
	if LambdaMesh(10, 1) != 16 || LambdaCube(10, 1) != 16 {
		t.Fatal("λ_M/λ_H broken for s=1")
	}
	if LambdaMesh(10, 2) != 64 || LambdaCube(10, 2) != 32 {
		t.Fatalf("λ_M(10,2)=%d λ_H(10,2)=%d", LambdaMesh(10, 2), LambdaCube(10, 2))
	}
}

func TestMaxAlternation(t *testing.T) {
	if got := MaxAlternation([]int{0, 1, 0, 1, 0}, 2); got != 5 {
		t.Fatalf("MaxAlternation = %d, want 5", got)
	}
	if got := MaxAlternation([]int{0, 0, 0}, 2); got != 1 {
		t.Fatalf("MaxAlternation single symbol = %d, want 1", got)
	}
}
