package dsseq

import (
	"math"

	"dyncg/internal/poly"
)

// ExtremalParabolas returns n upward parabolas whose lower envelope on
// [0, ∞) attains the Davenport–Schinzel bound λ(n, 2) = 2n − 1 pieces
// (Lemma 2.2: the bound is best possible).
//
// Construction: f_i(t) = ε_i·(t − C)² + i with widths ε_i = 1/(i+1)²
// strictly decreasing. Near the common centre C the steepest parabola
// (smallest additive term) wins; moving away from C the envelope hands
// over to successively flatter parabolas at radii
// R_{i,i+1}² = 1/(ε_i − ε_{i+1}), which are strictly increasing. With C
// larger than the largest hand-over radius, every hand-over also happens
// at a positive time, so the envelope visits the functions in the order
// n−1, …, 1, 0, 1, …, n−1: exactly 2n − 1 pieces.
func ExtremalParabolas(n int) []poly.Poly {
	if n <= 0 {
		return nil
	}
	maxR := 0.0
	if n >= 2 {
		e := func(i int) float64 { return 1 / float64((i+1)*(i+1)) }
		maxR = math.Sqrt(1 / (e(n-2) - e(n-1)))
	}
	c := maxR + 1
	ps := make([]poly.Poly, n)
	for i := range ps {
		eps := 1 / float64((i+1)*(i+1))
		// ε(t−C)² + i expanded in t.
		ps[i] = poly.New(eps*c*c+float64(i), -2*eps*c, eps)
	}
	return ps
}

// SortedLines returns n lines with distinct slopes whose lower envelope
// attains λ(n, 1) = n pieces: line i has slope n−i and is lowest on the
// i-th time band.
func SortedLines(n int) []poly.Poly {
	ps := make([]poly.Poly, n)
	for i := range ps {
		slope := float64(n - i)
		// Intercepts b_i = i(i+1)/2 make consecutive lines cross at
		// t = i + 1/2, so the lower envelope visits line 0, 1, …, n−1 in
		// order: n pieces.
		intercept := float64(i*(i+1)) / 2
		ps[i] = poly.New(intercept, slope)
	}
	return ps
}
