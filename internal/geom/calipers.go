package geom

import "dyncg/internal/ratfun"

// This file implements the rotating-calipers constructions of §5.4:
// antipodal pairs (Lemma 5.5, after [Shamos 1975]), diameter and farthest
// pair (Proposition 5.6, Corollary 5.7), and the minimum-area enclosing
// rectangle (Theorem 5.8). Inputs are the extreme points of a convex
// polygon in counterclockwise order, as produced by Hull.

// AntipodalPairs returns all antipodal vertex pairs of the convex polygon
// hull (indices into hull). A pair is antipodal when distinct parallel
// lines of support pass through its two vertices (Figure 6a).
func AntipodalPairs[T ratfun.Real[T]](hull []Point[T]) [][2]int {
	n := len(hull)
	switch n {
	case 0, 1:
		return nil
	case 2:
		return [][2]int{{0, 1}}
	}
	// A vertex's support directions form the angular cone between the
	// outward normals of its two incident edges (the "sector" of
	// Figure 6b, dualised). A pair (u, v) is antipodal exactly when u's
	// cone intersects the negation of v's cone: then a common direction
	// admits parallel support lines through both. Each test is Θ(1) field
	// arithmetic; the quadratic pair scan is the serial oracle (the
	// machine-parallel version in internal/pgeom follows Lemma 5.5's
	// sort-and-group formulation).
	normal := func(i int) Point[T] {
		e := hull[(i+1)%n].Sub(hull[i])
		return Point[T]{X: e.Y, Y: e.X.Neg()} // outward for CCW
	}
	inCone := func(d, a, b Point[T]) bool {
		// d within the CCW cone from a to b (cone spans < π).
		return Cross(a, d).Sign() >= 0 && Cross(d, b).Sign() >= 0
	}
	overlap := func(a1, b1, a2, b2 Point[T]) bool {
		return inCone(a1, a2, b2) || inCone(b1, a2, b2) ||
			inCone(a2, a1, b1) || inCone(b2, a1, b1)
	}
	var pairs [][2]int
	for u := 0; u < n; u++ {
		au, bu := normal((u+n-1)%n), normal(u)
		for v := u + 1; v < n; v++ {
			av, bv := normal((v+n-1)%n), normal(v)
			if overlap(au, bu, av.Neg(), bv.Neg()) {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	return pairs
}

// Diameter returns the squared diameter of the convex polygon hull and an
// antipodal pair realising it (Proposition 5.6: the diameter is attained
// by an antipodal pair).
func Diameter[T ratfun.Real[T]](hull []Point[T]) (d2 T, pair [2]int) {
	pairs := AntipodalPairs(hull)
	if len(pairs) == 0 {
		var zero T
		return zero, [2]int{0, 0}
	}
	best := 0
	bestD := DistSq(hull[pairs[0][0]], hull[pairs[0][1]])
	for i := 1; i < len(pairs); i++ {
		d := DistSq(hull[pairs[i][0]], hull[pairs[i][1]])
		if d.Cmp(bestD) > 0 {
			best, bestD = i, d
		}
	}
	return bestD, pairs[best]
}

// FarthestPair returns IDs of a farthest pair of the point set and their
// squared distance (Corollary 5.7: hull, then diameter).
func FarthestPair[T ratfun.Real[T]](pts []Point[T]) (a, b Point[T], d2 T) {
	h := Hull(pts)
	if len(h) == 1 {
		return h[0], h[0], DistSq(h[0], h[0])
	}
	d2, pair := Diameter(h)
	return h[pair[0]], h[pair[1]], d2
}

// Rect is an enclosing rectangle: the four corners in counterclockwise
// order, the index of the hull edge its base contains (Theorem 5.8: a
// minimal rectangle has a side collinear with a hull edge), and its area.
type Rect[T ratfun.Real[T]] struct {
	Corners [4]Point[T]
	Edge    int
	Area    T
}

// MinAreaRect returns a minimum-area rectangle enclosing the convex
// polygon hull (≥ 3 vertices), implementing Theorem 5.8's per-edge
// construction: for each edge e, the rectangle R_e with one side on e is
// determined by the extreme projections along e and the farthest vertex
// perpendicular to e; the answer is the minimum-area R_e.
func MinAreaRect[T ratfun.Real[T]](hull []Point[T]) Rect[T] {
	n := len(hull)
	if n < 3 {
		panic("geom: MinAreaRect requires a non-degenerate polygon")
	}
	var best Rect[T]
	haveBest := false
	for e := 0; e < n; e++ {
		p, q := hull[e], hull[(e+1)%n]
		u := q.Sub(p) // edge direction
		uu := Dot(u, u)
		// Extremes of projection along u and of perpendicular distance.
		minP, maxP := Dot(hull[0].Sub(p), u), Dot(hull[0].Sub(p), u)
		maxH := Cross(u, hull[0].Sub(p))
		for _, v := range hull[1:] {
			pr := Dot(v.Sub(p), u)
			if pr.Cmp(minP) < 0 {
				minP = pr
			}
			if pr.Cmp(maxP) > 0 {
				maxP = pr
			}
			h := Cross(u, v.Sub(p))
			if h.Cmp(maxH) > 0 {
				maxH = h
			}
		}
		area := maxP.Sub(minP).Mul(maxH).Div(uu)
		if !haveBest || area.Cmp(best.Area) < 0 {
			haveBest = true
			// Corners: p + (pr/uu)·u + (h/uu)·n with n = (−u.Y, u.X).
			nrm := Point[T]{X: u.Y.Neg(), Y: u.X}
			at := func(pr, h T) Point[T] {
				sx := p.X.Add(u.X.Mul(pr).Div(uu)).Add(nrm.X.Mul(h).Div(uu))
				sy := p.Y.Add(u.Y.Mul(pr).Div(uu)).Add(nrm.Y.Mul(h).Div(uu))
				return Point[T]{X: sx, Y: sy}
			}
			var zero T
			best = Rect[T]{
				Corners: [4]Point[T]{
					at(minP, zero), at(maxP, zero), at(maxP, maxH), at(minP, maxH),
				},
				Edge: e,
				Area: area,
			}
		}
	}
	return best
}

// RectContains reports whether the rectangle contains the point (boundary
// inclusive) — a test helper exported for reuse by the parallel version's
// validators.
func RectContains[T ratfun.Real[T]](r Rect[T], v Point[T]) bool {
	for i := 0; i < 4; i++ {
		a, b := r.Corners[i], r.Corners[(i+1)%4]
		if Orient(a, b, v) < 0 {
			return false
		}
	}
	return true
}
