package geom

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/poly"
	"dyncg/internal/ratfun"
)

func fp(x, y float64, id int) Point[ratfun.F64] {
	return Point[ratfun.F64]{X: ratfun.F64(x), Y: ratfun.F64(y), ID: id}
}

func randPts(r *rand.Rand, n int) []Point[ratfun.F64] {
	pts := make([]Point[ratfun.F64], n)
	for i := range pts {
		pts[i] = fp(r.NormFloat64()*10, r.NormFloat64()*10, i)
	}
	return pts
}

func TestOrient(t *testing.T) {
	a, b := fp(0, 0, 0), fp(1, 0, 1)
	if Orient(a, b, fp(1, 1, 2)) != 1 {
		t.Error("left turn not detected")
	}
	if Orient(a, b, fp(1, -1, 2)) != -1 {
		t.Error("right turn not detected")
	}
	if Orient(a, b, fp(2, 0, 2)) != 0 {
		t.Error("collinear not detected")
	}
}

func TestHullSquare(t *testing.T) {
	pts := []Point[ratfun.F64]{
		fp(0, 0, 0), fp(2, 0, 1), fp(2, 2, 2), fp(0, 2, 3),
		fp(1, 1, 4), // interior
		fp(1, 0, 5), // on edge: not extreme
	}
	h := Hull(pts)
	if len(h) != 4 {
		t.Fatalf("hull = %v", h)
	}
	ids := map[int]bool{}
	for _, p := range h {
		ids[p.ID] = true
	}
	for _, want := range []int{0, 1, 2, 3} {
		if !ids[want] {
			t.Fatalf("extreme point %d missing from %v", want, h)
		}
	}
	// CCW orientation.
	for i := 0; i < len(h); i++ {
		if Orient(h[i], h[(i+1)%4], h[(i+2)%4]) != 1 {
			t.Fatal("hull not CCW")
		}
	}
}

func TestHullDegenerate(t *testing.T) {
	if h := Hull([]Point[ratfun.F64]{fp(1, 1, 0)}); len(h) != 1 {
		t.Fatalf("single point hull = %v", h)
	}
	// All collinear.
	h := Hull([]Point[ratfun.F64]{fp(0, 0, 0), fp(1, 1, 1), fp(2, 2, 2), fp(3, 3, 3)})
	if len(h) != 2 {
		t.Fatalf("collinear hull = %v", h)
	}
	// Duplicates collapse.
	h = Hull([]Point[ratfun.F64]{fp(0, 0, 0), fp(0, 0, 1), fp(1, 0, 2), fp(0, 1, 3)})
	if len(h) != 3 {
		t.Fatalf("dup hull = %v", h)
	}
}

// Property: every input point lies inside or on the hull, and every hull
// vertex is an input point.
func TestHullContainmentProperty(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		pts := randPts(r, 3+r.Intn(40))
		h := Hull(pts)
		if len(h) < 2 {
			continue
		}
		for _, p := range pts {
			for i := 0; i < len(h); i++ {
				if len(h) > 2 && Orient(h[i], h[(i+1)%len(h)], p) < 0 {
					t.Fatalf("trial %d: point %v outside hull edge %d", trial, p, i)
				}
			}
		}
	}
}

func TestIsExtreme(t *testing.T) {
	pts := []Point[ratfun.F64]{fp(0, 0, 0), fp(4, 0, 1), fp(0, 4, 2)}
	if !IsExtreme(pts, fp(5, 5, 9)) {
		t.Error("outside point should be extreme")
	}
	if IsExtreme(pts, fp(1, 1, 9)) {
		t.Error("interior point should not be extreme")
	}
}

func TestNearestAndFarthest(t *testing.T) {
	pts := []Point[ratfun.F64]{fp(1, 0, 0), fp(5, 0, 1), fp(-2, 0, 2)}
	q := fp(0, 0, 9)
	if got := NearestTo(pts, q); got != 0 {
		t.Fatalf("NearestTo = %d", got)
	}
	if got := FarthestFrom(pts, q); got != 1 {
		t.Fatalf("FarthestFrom = %d", got)
	}
}

// Property: divide-and-conquer closest pair agrees with brute force.
func TestClosestPairProperty(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 100; trial++ {
		pts := randPts(r, 2+r.Intn(60))
		i, j, d2 := ClosestPair(pts)
		if i == j {
			t.Fatalf("trial %d: degenerate pair", trial)
		}
		want := ratfun.F64(math.Inf(1))
		for a := range pts {
			for b := a + 1; b < len(pts); b++ {
				if d := DistSq(pts[a], pts[b]); d < want {
					want = d
				}
			}
		}
		if d2.Cmp(want) != 0 {
			t.Fatalf("trial %d: d²=%v, want %v", trial, d2, want)
		}
		if DistSq(pts[i], pts[j]).Cmp(d2) != 0 {
			t.Fatalf("trial %d: returned pair does not realise d²", trial)
		}
	}
}

// Property: diameter from antipodal pairs equals brute-force max distance.
func TestDiameterProperty(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 100; trial++ {
		pts := randPts(r, 3+r.Intn(40))
		h := Hull(pts)
		if len(h) < 3 {
			continue
		}
		d2, pair := Diameter(h)
		want := ratfun.F64(0)
		for a := range pts {
			for b := range pts {
				if d := DistSq(pts[a], pts[b]); d > want {
					want = d
				}
			}
		}
		if d2.Cmp(want) != 0 {
			t.Fatalf("trial %d: diameter² %v, want %v (pair %v)", trial, d2, want, pair)
		}
	}
}

func TestAntipodalSectors(t *testing.T) {
	// Figure 6: on a square every vertex pair across the diagonal is
	// antipodal, and adjacent vertices are antipodal too (parallel edges).
	h := []Point[ratfun.F64]{fp(0, 0, 0), fp(2, 0, 1), fp(2, 2, 2), fp(0, 2, 3)}
	pairs := AntipodalPairs(h)
	want := map[[2]int]bool{
		{0, 2}: true, {1, 3}: true, // diagonals
		{0, 1}: true, {1, 2}: true, {2, 3}: true, {0, 3}: true, // parallel edges
	}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Fatalf("unexpected pair %v", p)
		}
	}
}

// Property: the min-area rectangle contains every point, has a hull edge
// on its boundary, and beats a brute-force rotation sweep up to sampling.
func TestMinAreaRectProperty(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	for trial := 0; trial < 60; trial++ {
		pts := randPts(r, 3+r.Intn(30))
		h := Hull(pts)
		if len(h) < 3 {
			continue
		}
		rect := MinAreaRect(h)
		if rect.Area.Sign() <= 0 {
			t.Fatalf("trial %d: nonpositive area %v", trial, rect.Area)
		}
		for _, p := range pts {
			// Tolerance-aware containment: hull vertices sit exactly on
			// the rectangle boundary and float rounding may push the
			// cross product marginally negative.
			for i := 0; i < 4; i++ {
				a, b := rect.Corners[i], rect.Corners[(i+1)%4]
				cr := Cross(b.Sub(a), p.Sub(a))
				scale := DistSq(a, b)
				if float64(cr) < -1e-6*float64(scale) {
					t.Fatalf("trial %d: point %v outside rectangle %v (cr=%v)",
						trial, p, rect.Corners, cr)
				}
			}
		}
		// Sampled rotation sweep can only be ≥ the reported minimum (up
		// to a tolerance, since samples include the optimal edge angles).
		for e := 0; e < len(h); e++ {
			p, q := h[e], h[(e+1)%len(h)]
			u := q.Sub(p)
			uu := Dot(u, u)
			minP, maxP := Dot(h[0].Sub(p), u), Dot(h[0].Sub(p), u)
			maxH := Cross(u, h[0].Sub(p))
			for _, v := range h {
				pr := Dot(v.Sub(p), u)
				if pr < minP {
					minP = pr
				}
				if pr > maxP {
					maxP = pr
				}
				if cr := Cross(u, v.Sub(p)); cr > maxH {
					maxH = cr
				}
			}
			area := (maxP - minP) * maxH / uu
			if area < rect.Area*(1-1e-9) {
				t.Fatalf("trial %d: edge %d rectangle %v smaller than min %v",
					trial, e, area, rect.Area)
			}
		}
	}
}

// TestSteadyStateInstance: the same generic code runs over the rational-
// function field — the Lemma 5.1 reduction. Two points diverge linearly;
// in steady state the faster one is farther from the origin point.
func TestSteadyStateInstance(t *testing.T) {
	mk := func(x, y poly.Poly, id int) Point[ratfun.RatFun] {
		return Point[ratfun.RatFun]{X: ratfun.FromPoly(x), Y: ratfun.FromPoly(y), ID: id}
	}
	origin := mk(poly.New(0), poly.New(0), 9)
	pts := []Point[ratfun.RatFun]{
		mk(poly.New(100), poly.New(0), 0),    // static, initially far
		mk(poly.New(1, 1), poly.New(0), 1),   // drifts away at speed 1
		mk(poly.New(0, 0.1), poly.New(0), 2), // slow drift
	}
	if got := FarthestFrom(pts, origin); got != 1 {
		t.Fatalf("steady-state farthest = %d, want 1", got)
	}
	// Both drifting points end up arbitrarily far; the static point,
	// though initially farthest, is the steady-state nearest.
	if got := NearestTo(pts, origin); got != 0 {
		t.Fatalf("steady-state nearest = %d, want 0", got)
	}
	// Steady-state hull of four points where one is eventually inside.
	sq := []Point[ratfun.RatFun]{
		mk(poly.New(0, -1), poly.New(0, -1), 0),
		mk(poly.New(0, 1), poly.New(0, -1), 1),
		mk(poly.New(0, 1), poly.New(0, 1), 2),
		mk(poly.New(0, -1), poly.New(0, 1), 3),
		mk(poly.New(50), poly.New(0), 4), // static: eventually interior
	}
	h := Hull(sq)
	if len(h) != 4 {
		t.Fatalf("steady hull size = %d: %v", len(h), h)
	}
	for _, p := range h {
		if p.ID == 4 {
			t.Fatal("static point should not be extreme in steady state")
		}
	}
}
