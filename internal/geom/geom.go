// Package geom implements the static planar computational geometry the
// paper builds on (Table 4): convex hull, closest pair, antipodal pairs
// via rotating calipers (Lemma 5.5, after [Shamos 1975]), diameter and
// farthest pair, and the minimum-area enclosing rectangle (Theorem 5.8).
//
// Everything is generic over the ordered field ratfun.Real. Instantiated
// at F64 the algorithms solve static (k = 0) problems; instantiated at
// RatFun they solve the steady-state (t → ∞) problems of §5 directly,
// because every predicate (orientation, distance comparison, projection
// comparison) becomes a sign test on bounded-degree rational functions —
// the systematic form of the paper's Lemma 5.1 reduction.
package geom

import (
	"sort"

	"dyncg/internal/ratfun"
)

// Point is a planar point over the ordered field T, tagged with the index
// of the moving point-object it represents.
type Point[T ratfun.Real[T]] struct {
	X, Y T
	ID   int
}

// Sub returns the vector a − b.
func (a Point[T]) Sub(b Point[T]) Point[T] {
	return Point[T]{X: a.X.Sub(b.X), Y: a.Y.Sub(b.Y), ID: a.ID}
}

// Neg returns −a.
func (a Point[T]) Neg() Point[T] {
	return Point[T]{X: a.X.Neg(), Y: a.Y.Neg(), ID: a.ID}
}

// Cross returns the 2-D cross product a × b.
func Cross[T ratfun.Real[T]](a, b Point[T]) T {
	return a.X.Mul(b.Y).Sub(a.Y.Mul(b.X))
}

// Dot returns the dot product a · b.
func Dot[T ratfun.Real[T]](a, b Point[T]) T {
	return a.X.Mul(b.X).Add(a.Y.Mul(b.Y))
}

// Orient returns the orientation of the triple (a, b, c): +1 for a left
// turn (counterclockwise), −1 for a right turn, 0 for collinear. This is
// the Θ(1) relative-position test of Proposition 5.4's proof.
func Orient[T ratfun.Real[T]](a, b, c Point[T]) int {
	return Cross(b.Sub(a), c.Sub(a)).Sign()
}

// DistSq returns the squared distance between a and b; comparisons of
// squared distances avoid square roots, as in §4.1/§5.2.
func DistSq[T ratfun.Real[T]](a, b Point[T]) T {
	d := a.Sub(b)
	return Dot(d, d)
}

// cmpXY orders points lexicographically by (X, Y).
func cmpXY[T ratfun.Real[T]](a, b Point[T]) int {
	if c := a.X.Cmp(b.X); c != 0 {
		return c
	}
	return a.Y.Cmp(b.Y)
}

// Hull returns the extreme points of the convex hull of pts in
// counterclockwise order, starting from the lexicographically smallest
// point (Andrew's monotone chain; collinear boundary points are not
// extreme points and are dropped, matching the paper's definition of
// extreme point in §4.2).
func Hull[T ratfun.Real[T]](pts []Point[T]) []Point[T] {
	if len(pts) == 0 {
		return nil
	}
	ps := append([]Point[T](nil), pts...)
	sort.Slice(ps, func(i, j int) bool { return cmpXY(ps[i], ps[j]) < 0 })
	// Deduplicate coincident points.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if cmpXY(uniq[len(uniq)-1], p) != 0 {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) <= 2 {
		return ps
	}
	build := func(seq []Point[T]) []Point[T] {
		var st []Point[T]
		for _, p := range seq {
			for len(st) >= 2 && Orient(st[len(st)-2], st[len(st)-1], p) <= 0 {
				st = st[:len(st)-1]
			}
			st = append(st, p)
		}
		return st
	}
	lower := build(ps)
	rev := make([]Point[T], len(ps))
	for i := range ps {
		rev[i] = ps[len(ps)-1-i]
	}
	upper := build(rev)
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) == 0 { // all collinear: keep the two endpoints
		hull = []Point[T]{ps[0], ps[len(ps)-1]}
	}
	return hull
}

// IsExtreme reports whether q is an extreme point of hull(pts ∪ {q}).
func IsExtreme[T ratfun.Real[T]](pts []Point[T], q Point[T]) bool {
	h := Hull(append(append([]Point[T]{}, pts...), q))
	for _, p := range h {
		if p.ID == q.ID && cmpXY(p, q) == 0 {
			return true
		}
	}
	return false
}

// NearestTo returns the index (into pts) of a point nearest to the query
// point, by linear semigroup-style scan — the serial counterpart of
// Proposition 5.2.
func NearestTo[T ratfun.Real[T]](pts []Point[T], q Point[T]) int {
	best := -1
	var bestD T
	for i, p := range pts {
		d := DistSq(p, q)
		if best < 0 || d.Cmp(bestD) < 0 {
			best, bestD = i, d
		}
	}
	return best
}

// FarthestFrom is NearestTo with the order reversed.
func FarthestFrom[T ratfun.Real[T]](pts []Point[T], q Point[T]) int {
	best := -1
	var bestD T
	for i, p := range pts {
		d := DistSq(p, q)
		if best < 0 || d.Cmp(bestD) > 0 {
			best, bestD = i, d
		}
	}
	return best
}

// ClosestPair returns indices (into pts) of a closest pair and their
// squared distance, by the classic divide-and-conquer over the generic
// field (serial counterpart of Proposition 5.3). Requires ≥ 2 points.
func ClosestPair[T ratfun.Real[T]](pts []Point[T]) (int, int, T) {
	if len(pts) < 2 {
		panic("geom: ClosestPair needs at least two points")
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cmpXY(pts[idx[a]], pts[idx[b]]) < 0 })
	bi, bj := idx[0], idx[1]
	bd := DistSq(pts[bi], pts[bj])
	var rec func(lo, hi int, byY []int)
	rec = func(lo, hi int, byY []int) {
		if hi-lo <= 3 {
			for a := lo; a < hi; a++ {
				for b := a + 1; b < hi; b++ {
					if d := DistSq(pts[idx[a]], pts[idx[b]]); d.Cmp(bd) < 0 {
						bi, bj, bd = idx[a], idx[b], d
					}
				}
			}
			sort.Slice(byY, func(a, b int) bool { return pts[byY[a]].Y.Cmp(pts[byY[b]].Y) < 0 })
			return
		}
		mid := (lo + hi) / 2
		midX := pts[idx[mid]].X
		left := append([]int{}, byY[:mid-lo]...)
		right := append([]int{}, byY[mid-lo:]...)
		copy(left, idx[lo:mid])
		copy(right, idx[mid:hi])
		rec(lo, mid, left)
		rec(mid, hi, right)
		// Merge by Y back into byY.
		i, j := 0, 0
		for k := range byY {
			switch {
			case i >= len(left):
				byY[k] = right[j]
				j++
			case j >= len(right):
				byY[k] = left[i]
				i++
			case pts[left[i]].Y.Cmp(pts[right[j]].Y) <= 0:
				byY[k] = left[i]
				i++
			default:
				byY[k] = right[j]
				j++
			}
		}
		// Strip: points with (x − midX)² < best d².
		var strip []int
		for _, id := range byY {
			dx := pts[id].X.Sub(midX)
			if dx.Mul(dx).Cmp(bd) < 0 {
				strip = append(strip, id)
			}
		}
		for a := 0; a < len(strip); a++ {
			for b := a + 1; b < len(strip) && b <= a+7; b++ {
				if d := DistSq(pts[strip[a]], pts[strip[b]]); d.Cmp(bd) < 0 {
					bi, bj, bd = strip[a], strip[b], d
				}
			}
		}
	}
	byY := append([]int{}, idx...)
	rec(0, len(idx), byY)
	return bi, bj, bd
}
