package costmemo

import (
	"sync"
	"testing"
)

// ring is a cycle of n PEs: Distance(i, j) = min(|i−j|, n−|i−j|).
type ring struct{ n int }

func (r ring) Size() int { return r.n }
func (r ring) Distance(i, j int) int {
	d := i - j
	if d < 0 {
		d = -d
	}
	if r.n-d < d {
		d = r.n - d
	}
	return d
}

func naiveXor(d Dister, b int) int {
	n, off, max := d.Size(), 1<<b, 0
	for i := 0; i < n; i++ {
		j := i ^ off
		if j < i || j >= n {
			continue
		}
		if dd := d.Distance(i, j); dd > max {
			max = dd
		}
	}
	return max
}

func naiveShift(d Dister, off int) int {
	n, max := d.Size(), 0
	for i := 0; i+off < n; i++ {
		if dd := d.Distance(i, i+off); dd > max {
			max = dd
		}
	}
	return max
}

func TestTableMatchesNaive(t *testing.T) {
	r := ring{n: 64}
	tab := New(r)
	for b := 0; b < 6; b++ {
		if got, want := tab.XorRoundCost(b), naiveXor(r, b); got != want {
			t.Fatalf("xor bit %d: %d want %d", b, got, want)
		}
	}
	for _, off := range []int{1, 2, 3, 5, 16, 63, -7} {
		want := off
		if want < 0 {
			want = -want
		}
		if got := tab.ShiftRoundCost(off); got != naiveShift(r, want) {
			t.Fatalf("shift %d: %d want %d", off, got, naiveShift(r, want))
		}
	}
	// Out-of-range bits are harmless.
	if tab.XorRoundCost(40) != 0 || tab.XorRoundCost(-1) != 0 {
		t.Fatal("out-of-range bit should cost 0")
	}
}

// TestTableConcurrent exercises the sync.Once / RWMutex paths under the
// race detector: many goroutines share one table, as per-goroutine
// machines sharing one Topology do.
func TestTableConcurrent(t *testing.T) {
	r := ring{n: 256}
	tab := New(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < 8; b++ {
				if tab.XorRoundCost(b) != naiveXor(r, b) {
					t.Errorf("concurrent xor mismatch at bit %d", b)
				}
			}
			for off := 1; off < 32; off++ {
				if tab.ShiftRoundCost(off) != naiveShift(r, off) {
					t.Errorf("concurrent shift mismatch at %d", off)
				}
			}
		}()
	}
	wg.Wait()
}
