// Package costmemo memoises the per-topology round-cost tables of the
// machine simulator: the worst partner distance of a bit-b XOR round
// (bitonic merge/sort) and of a ±off shift round (prefix, broadcast,
// semigroup). The underlying distances are fixed by the topology — mesh
// Hilbert hop distances, hypercube Hamming distances, CCC/shuffle BFS
// distances — so the tables depend only on the (immutable) topology, not
// on any machine instance.
//
// Before this package every machine.M recomputed the tables in private
// maps, an O(n)-per-pattern scan repeated for every M. The simulator's
// concurrency contract confines an M to one goroutine but explicitly
// allows wrapping one shared Topology in one M per goroutine; Table makes
// that cheap: the XOR table is built once behind a sync.Once (all
// ⌈log₂ n⌉ bits in one pass) and shift offsets are filled lazily under an
// RWMutex, so concurrent machines share one set of tables with a
// read-lock fast path.
package costmemo

import (
	"math/bits"
	"sync"
)

// Dister is the slice of machine.Topology the tables need: a PE count and
// pairwise link distances. (Declared locally so topology packages do not
// import internal/machine.)
type Dister interface {
	Size() int
	Distance(i, j int) int
}

// Table memoises round costs for one topology. The zero value is not
// usable; construct with New. Safe for concurrent use.
type Table struct {
	d Dister

	xorOnce sync.Once
	xor     []int // bit b → max over i of Distance(i, i ⊕ 2^b)

	mu    sync.RWMutex
	shift map[int]int // |off| → max over i of Distance(i, i+off)
}

// New returns an empty table over d. Nothing is computed until first use.
func New(d Dister) *Table {
	return &Table{d: d, shift: map[int]int{}}
}

// XorRoundCost returns the worst partner distance of a bit-b XOR round:
// max over i of Distance(i, i ⊕ 2^b), pairs off the machine excluded. The
// full table (every bit of the PE index) is computed on first call.
func (t *Table) XorRoundCost(b int) int {
	t.xorOnce.Do(func() {
		n := t.d.Size()
		t.xor = make([]int, bits.Len(uint(n-1)))
		for bb := range t.xor {
			off := 1 << bb
			max := 0
			for i := 0; i < n; i++ {
				j := i ^ off
				if j < i || j >= n {
					continue
				}
				if d := t.d.Distance(i, j); d > max {
					max = d
				}
			}
			t.xor[bb] = max
		}
	})
	if b < 0 || b >= len(t.xor) {
		return 0
	}
	return t.xor[b]
}

// ShiftRoundCost returns the worst partner distance of a round in which
// PE i sends to PE i+off: max over valid i of Distance(i, i+off).
// Distinct offsets are memoised lazily (algorithms use O(log n) distinct
// offsets, so precomputing all n would be waste).
func (t *Table) ShiftRoundCost(off int) int {
	if off < 0 {
		off = -off
	}
	t.mu.RLock()
	c, ok := t.shift[off]
	t.mu.RUnlock()
	if ok {
		return c
	}
	n := t.d.Size()
	max := 0
	for i := 0; i+off < n; i++ {
		if d := t.d.Distance(i, i+off); d > max {
			max = d
		}
	}
	t.mu.Lock()
	t.shift[off] = max
	t.mu.Unlock()
	return max
}
