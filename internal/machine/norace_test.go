//go:build !race

package machine

// raceEnabled reports whether this test binary was built with the race
// detector, which instruments every memory access and adds allocations of
// its own — the AllocsPerRun budgets in alloc_test.go only hold without it.
const raceEnabled = false
