// Package machine is the SIMD machine simulator underlying every parallel
// algorithm in this repository. It executes the paper's abstract data
// movement operations (§2.6, Table 1) — semigroup, broadcast, parallel
// prefix, merge, sort, grouping — over an abstract Topology (the mesh of
// §2.2 or the hypercube of §2.3) while charging simulated parallel time.
//
// Cost model. The machines are lock-step SIMD: in one communication round
// every PE exchanges with a partner at some link distance, and the round
// costs the maximum distance over all active pairs (messages follow
// disjoint dimension-ordered/axis-ordered paths for the structured
// patterns used here, so distance, not congestion, is the bottleneck).
// All primitives are built from two patterns:
//
//   - XOR rounds (partner i ⊕ 2^b): bitonic merge and sort;
//   - shift rounds (partner i ± 2^b): prefix, broadcast, semigroup.
//
// Under the paper's proximity (Hilbert) or shuffled-row-major mesh
// indexing a bit-b round costs Θ(2^{b/2}) hops, so a full bitonic sort
// costs Θ(√n) — the mesh-optimal bound of Table 1 (standing in for
// Thompson–Kung; see DESIGN.md). On the Gray-coded hypercube every round
// costs O(1) hops (≤ 2), giving Θ(log n) merges/scans and Θ(log² n) sort.
//
// Local computation is charged per lock-step phase: each primitive phase
// in which every PE performs Θ(1) work adds 1 to LocalSteps, mirroring
// the paper's unit-cost local operations.
package machine

import (
	"fmt"
	"math/bits"
	"reflect"
	"runtime"
)

// Topology is the communication structure of a machine: the mesh
// (internal/mesh) or hypercube (internal/hypercube).
type Topology interface {
	Size() int
	Name() string
	// Distance is the link distance between the PEs labelled i and j.
	Distance(i, j int) int
	// Diameter is the communication diameter.
	Diameter() int
}

// RoundCoster is an optional Topology extension: a topology that memoises
// its own round-cost tables (internal/costmemo) shares one set of tables
// across every machine wrapping it, instead of each M rebuilding them
// with O(n)-per-pattern scans. All four bundled topologies (mesh,
// hypercube, ccc, shuffle) implement it; plain Topology values fall back
// to the per-machine scan.
type RoundCoster interface {
	// XorRoundCost is max over i of Distance(i, i ⊕ 2^b), off-machine
	// pairs excluded.
	XorRoundCost(b int) int
	// ShiftRoundCost is max over valid i of Distance(i, i+off).
	ShiftRoundCost(off int) int
}

// Stats accumulates simulated parallel running time.
type Stats struct {
	CommSteps  int64 // Σ over rounds of the round's worst link distance
	LocalSteps int64 // Σ over phases of unit local work
	Rounds     int64 // number of communication rounds
	Messages   int64 // total point-to-point messages sent
}

// Time returns the total simulated parallel time, the quantity the
// paper's Θ-bounds describe.
func (s Stats) Time() int64 { return s.CommSteps + s.LocalSteps }

// Sub returns the counter-wise difference s − prev: the cost accumulated
// between two snapshots. It is the span-delta primitive of
// internal/trace (a span records Stats at Begin and End; Sub of the two
// is the span's cost).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		CommSteps:  s.CommSteps - prev.CommSteps,
		LocalSteps: s.LocalSteps - prev.LocalSteps,
		Rounds:     s.Rounds - prev.Rounds,
		Messages:   s.Messages - prev.Messages,
	}
}

// Add returns the counter-wise sum s + other.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		CommSteps:  s.CommSteps + other.CommSteps,
		LocalSteps: s.LocalSteps + other.LocalSteps,
		Rounds:     s.Rounds + other.Rounds,
		Messages:   s.Messages + other.Messages,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("time=%d (comm=%d local=%d rounds=%d msgs=%d)",
		s.Time(), s.CommSteps, s.LocalSteps, s.Rounds, s.Messages)
}

// M is a simulated SIMD machine: a topology plus cost accounting.
//
// Concurrency contract: an M is *owned* by a single goroutine. The cost
// counters, the per-M cost caches (xorCost, shiftCost) and the observer
// stream are mutated without synchronization on every charged round, so
// sharing one M across goroutines — even for "read-only" primitives — is
// a data race. Two forms of concurrency are nevertheless supported:
//
//   - Across machines: the Topology is immutable after construction
//     (mesh.Mesh, hypercube.Cube, ccc.CCC, shuffle.SE), including its
//     memoised costmemo round-cost tables, so concurrent simulations wrap
//     one shared Topology in one M per goroutine (exercised under -race
//     by TestTopologySharedAcrossMachines).
//
//   - Within a machine: with WithParallel(w), the per-PE compute loop of
//     a primitive's round fans out over an internal/par worker pool. The
//     workers touch ONLY disjoint shards of the register files — they
//     never call chargeXOR/chargeShift/ChargeLocal/ChargeRoute, never
//     mutate Stats or the cost caches, and never invoke the Observer. All
//     charging happens on the owning goroutine after the shards join, so
//     Stats, round order, and the observer span/round stream are
//     bit-identical to the serial backend (proved by the differential
//     tests in the repository root).
type M struct {
	topo    Topology
	n       int
	st      Stats
	workers int      // worker pool size for per-PE loops; ≤ 1 means serial
	obs     Observer // nil unless tracing is attached (see observe.go)
	inj     Injector // nil unless fault injection is attached (see fault.go)

	xorCost   map[int]int // bit → worst partner distance for i ⊕ 2^b
	shiftCost map[int]int // offset → worst partner distance for i → i+off

	scr arena // per-machine scratch-buffer pool (see arena.go)
}

// Option configures a machine at construction time.
type Option func(*M)

// WithParallel enables the sharded worker-pool execution backend: per-PE
// compute loops run on up to `workers` goroutines (GOMAXPROCS when
// workers ≤ 0). Simulated costs, outputs, and trace streams are identical
// to the serial backend; only host wall-clock time changes.
func WithParallel(workers int) Option {
	return func(m *M) {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		m.workers = workers
	}
}

// New wraps a topology in a machine with fresh counters.
func New(t Topology, opts ...Option) *M {
	m := &M{topo: t, n: t.Size(), workers: 1,
		xorCost: map[int]int{}, shiftCost: map[int]int{},
		scr: arena{pools: map[reflect.Type]any{}}}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Workers returns the worker-pool size per-PE loops may use (1 = serial).
func (m *M) Workers() int { return m.workers }

// Size returns the number of PEs.
func (m *M) Size() int { return m.n }

// Topology returns the underlying topology.
func (m *M) Topology() Topology { return m.topo }

// Stats returns the accumulated counters.
func (m *M) Stats() Stats { return m.st }

// Reset zeroes every Stats counter, restarting the simulated clock at 0.
// The xor/shift round-cost caches are deliberately preserved — they
// depend only on the (immutable) topology, so identical operation
// sequences charge identical costs before and after a Reset. An attached
// Observer is also preserved; note that resetting mid-span rewinds the
// simulated timeline a tracer sees (spans opened before the Reset will
// record an End snapshot smaller than their Begin), so attach tracers to
// freshly reset machines.
//
// Reset also starts a new scratch-arena generation: scratch buffers
// parked before the Reset are released to the garbage collector rather
// than reused (see arena.go), so a machine reused across independent
// runs does not pin the previous run's peak scratch.
func (m *M) Reset() {
	m.st = Stats{}
	m.scr.gen++
}

// WarmReset zeroes the Stats counters like Reset but keeps the current
// scratch-arena generation, so scratch buffers parked by earlier runs
// remain reusable. It is the reset for deliberate machine reuse across
// runs of the same shape — the serving pool (internal/server) checks a
// pre-warmed machine out, WarmResets it, and runs the next request with
// zero machine or scratch allocations. Use the plain Reset when the
// next run's peak scratch is unrelated to the previous one's and parked
// buffers should be released to the garbage collector instead.
func (m *M) WarmReset() { m.st = Stats{} }

// xorRoundCost returns (and caches) the worst partner distance of a
// bit-b XOR round. Topologies that memoise their own tables (RoundCoster)
// are consulted directly; others fall back to a per-machine scan.
func (m *M) xorRoundCost(b int) int {
	if rc, ok := m.topo.(RoundCoster); ok {
		return rc.XorRoundCost(b)
	}
	if c, ok := m.xorCost[b]; ok {
		return c
	}
	off := 1 << b
	max := 0
	for i := 0; i < m.n; i++ {
		j := i ^ off
		if j < i || j >= m.n {
			continue
		}
		if d := m.topo.Distance(i, j); d > max {
			max = d
		}
	}
	m.xorCost[b] = max
	return max
}

// shiftRoundCost returns (and caches) the worst partner distance of a
// round in which PE i sends to PE i+off.
func (m *M) shiftRoundCost(off int) int {
	if off < 0 {
		off = -off
	}
	if rc, ok := m.topo.(RoundCoster); ok {
		return rc.ShiftRoundCost(off)
	}
	if c, ok := m.shiftCost[off]; ok {
		return c
	}
	max := 0
	for i := 0; i+off < m.n; i++ {
		if d := m.topo.Distance(i, i+off); d > max {
			max = d
		}
	}
	m.shiftCost[off] = max
	return max
}

// chargeXOR records one bit-b XOR round with the given message count.
func (m *M) chargeXOR(b int, msgs int) {
	d := m.xorRoundCost(b)
	m.st.Rounds++
	m.st.CommSteps += int64(d)
	m.st.LocalSteps++
	m.st.Messages += int64(msgs)
	if m.obs != nil {
		m.obs.Round(RoundInfo{Kind: RoundXOR, Param: b, Dist: d, Msgs: msgs})
	}
	if m.inj != nil {
		m.faultRound(RoundInfo{Kind: RoundXOR, Param: b, Dist: d, Msgs: msgs})
	}
}

// chargeShift records one ±off shift round.
func (m *M) chargeShift(off, msgs int) {
	d := m.shiftRoundCost(off)
	m.st.Rounds++
	m.st.CommSteps += int64(d)
	m.st.LocalSteps++
	m.st.Messages += int64(msgs)
	if m.obs != nil {
		if off < 0 {
			off = -off
		}
		m.obs.Round(RoundInfo{Kind: RoundShift, Param: off, Dist: d, Msgs: msgs})
	}
	if m.inj != nil {
		if off < 0 {
			off = -off
		}
		m.faultRound(RoundInfo{Kind: RoundShift, Param: off, Dist: d, Msgs: msgs})
	}
}

// ChargeLocal records phases of pure Θ(1)-per-PE local computation.
func (m *M) ChargeLocal(phases int) {
	m.st.LocalSteps += int64(phases)
	if m.obs != nil {
		m.obs.Round(RoundInfo{Kind: RoundLocal, Param: phases})
	}
}

// ChargeRoute records a structured route in which item i moves to
// dest[i] (dest must be injective on the valid entries; the patterns used
// by the algorithms — order-preserving compaction and spreading — admit
// congestion-free greedy routes whose time is the worst point-to-point
// distance).
func (m *M) ChargeRoute(src, dest []int) {
	max, msgs := 0, 0
	for k, i := range src {
		j := dest[k]
		if i == j {
			continue
		}
		msgs++
		if d := m.topo.Distance(i, j); d > max {
			max = d
		}
	}
	m.st.Rounds++
	m.st.CommSteps += int64(max)
	m.st.LocalSteps++
	m.st.Messages += int64(msgs)
	if m.obs != nil {
		m.obs.Round(RoundInfo{Kind: RoundRoute, Dist: max, Msgs: msgs})
	}
	if m.inj != nil {
		m.faultRound(RoundInfo{Kind: RoundRoute, Dist: max, Msgs: msgs})
	}
}

// Bits returns ⌈log₂ n⌉ for the machine size.
func (m *M) Bits() int { return bits.Len(uint(m.n - 1)) }
