package machine

// Differential battery for the sparse active-set primitives: every
// sparse operation must produce the same registers (under masked
// comparison — occupancy plus values where occupied) AND charge the
// same Stats and observer round/span stream as its dense counterpart on
// the same occupancy pattern, across random masks, both bundled
// topologies, and machine sizes including non-trivial active fractions.
// FuzzActiveSetRounds extends the same identity to fuzzer-chosen
// occupancy masks and operation sequences.

import (
	"math/rand"
	"reflect"
	"testing"

	"dyncg/internal/colstore"
	"dyncg/internal/hypercube"
	"dyncg/internal/mesh"
)

// streamRec records the observer event stream for charge-order identity.
type streamRec struct {
	events []string
	rounds []RoundInfo
}

func (r *streamRec) SpanBegin(name string, kv []string) {
	ev := "begin:" + name
	for _, s := range kv {
		ev += ":" + s
	}
	r.events = append(r.events, ev)
}
func (r *streamRec) SpanEnd() { r.events = append(r.events, "end") }
func (r *streamRec) Round(ri RoundInfo) {
	r.events = append(r.events, "round")
	r.rounds = append(r.rounds, ri)
}

// maskRegs builds the dense and sparse views of the same occupancy mask,
// with value i*3+1 at each occupied PE i.
func maskRegs(n int, occ []bool) ([]Reg[int], *Sparse[int]) {
	regs := make([]Reg[int], n)
	s := NewSparse[int](n)
	for i := 0; i < n; i++ {
		if occ[i] {
			regs[i] = Some(i*3 + 1)
			s.Set(i, i*3+1)
		}
	}
	return regs, s
}

func toFile(regs []Reg[int]) colstore.File[int] {
	f := colstore.New[int](len(regs))
	for i, r := range regs {
		if r.Ok {
			f.Set(i, r.V)
		}
	}
	return f
}

// checkSparseInvariant verifies the active list matches the occupancy
// mask and stays sorted.
func checkSparseInvariant(t *testing.T, s *Sparse[int]) {
	t.Helper()
	want := colstore.Active(s.File().Occ, nil)
	if !reflect.DeepEqual(append([]int32{}, s.Active()...), append([]int32{}, want...)) {
		t.Fatalf("active list %v does not match occupancy %v", s.Active(), want)
	}
}

// requireSparseMatch asserts masked register identity, Stats identity,
// and observer stream identity between a dense run and a sparse run.
func requireSparseMatch(t *testing.T, op string, denseRegs []Reg[int], denseStats Stats, denseObs *streamRec, s *Sparse[int], sparseStats Stats, sparseObs *streamRec) {
	t.Helper()
	if !colstore.Equal(toFile(denseRegs), s.File()) {
		t.Fatalf("%s: sparse registers diverge from dense\ndense: %v\nsparse: %v %v",
			op, denseRegs, s.File().Val, s.File().Occ)
	}
	checkSparseInvariant(t, s)
	if denseStats != sparseStats {
		t.Fatalf("%s: sparse stats %+v != dense stats %+v — the sparse primitive must charge the dense cost model", op, sparseStats, denseStats)
	}
	if !reflect.DeepEqual(denseObs.events, sparseObs.events) {
		t.Fatalf("%s: observer event streams diverge\ndense:  %v\nsparse: %v", op, denseObs.events, sparseObs.events)
	}
	if !reflect.DeepEqual(denseObs.rounds, sparseObs.rounds) {
		t.Fatalf("%s: round streams diverge\ndense:  %+v\nsparse: %+v", op, denseObs.rounds, sparseObs.rounds)
	}
}

func addOp(a, b int) int { return a + b }
func minOp(a, b int) int {
	if b < a {
		return b
	}
	return a
}

// sparseOps enumerates the primitive pairs under test. Each entry runs
// the dense primitive on regs and the sparse primitive on s.
var sparseOps = []struct {
	name   string
	dense  func(m *M, regs []Reg[int], seg []bool)
	sparse func(m *M, s *Sparse[int])
}{
	{"scan-fwd-add",
		func(m *M, regs []Reg[int], seg []bool) { Scan(m, regs, seg, Forward, addOp) },
		func(m *M, s *Sparse[int]) { SparseScan(m, s, Forward, addOp) }},
	{"scan-bwd-add",
		func(m *M, regs []Reg[int], seg []bool) { Scan(m, regs, seg, Backward, addOp) },
		func(m *M, s *Sparse[int]) { SparseScan(m, s, Backward, addOp) }},
	{"scan-fwd-flood",
		func(m *M, regs []Reg[int], seg []bool) { Scan(m, regs, seg, Forward, nil) },
		func(m *M, s *Sparse[int]) { SparseScan(m, s, Forward, nil) }},
	{"scan-bwd-flood",
		func(m *M, regs []Reg[int], seg []bool) { Scan(m, regs, seg, Backward, nil) },
		func(m *M, s *Sparse[int]) { SparseScan(m, s, Backward, nil) }},
	{"spread",
		func(m *M, regs []Reg[int], seg []bool) { Spread(m, regs, seg) },
		func(m *M, s *Sparse[int]) { SparseSpread(m, s) }},
	{"semigroup-min",
		func(m *M, regs []Reg[int], seg []bool) { Semigroup(m, regs, seg, minOp) },
		func(m *M, s *Sparse[int]) { SparseSemigroup(m, s, minOp) }},
	{"sort",
		func(m *M, regs []Reg[int], seg []bool) {
			Sort(m, regs, func(a, b int) bool { return a%7 < b%7 }) // ties exercise the unstable network
		},
		func(m *M, s *Sparse[int]) {
			SparseSort(m, s, func(a, b int) bool { return a%7 < b%7 })
		}},
	{"compact",
		func(m *M, regs []Reg[int], seg []bool) { Compact(m, regs, seg) },
		func(m *M, s *Sparse[int]) { SparseCompact(m, s) }},
	{"shift+3",
		func(m *M, regs []Reg[int], seg []bool) {
			out := ShiftWithin(m, regs, len(regs), 3)
			copy(regs, out)
			PutScratch(m, out)
		},
		func(m *M, s *Sparse[int]) { SparseShiftWithin(m, s, s.Len(), 3) }},
	{"shift-block-neg",
		func(m *M, regs []Reg[int], seg []bool) {
			block := len(regs) / 2
			if block < 1 {
				block = 1
			}
			out := ShiftWithin(m, regs, block, -2)
			copy(regs, out)
			PutScratch(m, out)
		},
		func(m *M, s *Sparse[int]) {
			block := s.Len() / 2
			if block < 1 {
				block = 1
			}
			SparseShiftWithin(m, s, block, -2)
		}},
	{"route-reverse",
		func(m *M, regs []Reg[int], seg []bool) {
			n := len(regs)
			dest := make([]int, n)
			for i := range dest {
				if i%5 == 4 {
					dest[i] = -1 // dropped
				} else {
					dest[i] = n - 1 - i
				}
			}
			Route(m, regs, dest)
		},
		func(m *M, s *Sparse[int]) {
			n := s.Len()
			dest := make([]int, n)
			for i := range dest {
				if i%5 == 4 {
					dest[i] = -1
				} else {
					dest[i] = n - 1 - i
				}
			}
			SparseRoute(m, s, dest)
		}},
}

// runSparseCase runs one (op, topology, mask) cell dense and sparse on
// fresh machines and asserts full identity.
func runSparseCase(t *testing.T, opIdx int, newM func() *M, occ []bool) {
	t.Helper()
	n := len(occ)
	op := sparseOps[opIdx]

	dm := newM()
	denseObs := &streamRec{}
	dm.SetObserver(denseObs)
	regs, _ := maskRegs(n, occ)
	op.dense(dm, regs, WholeMachine(n))

	sm := newM()
	sparseObs := &streamRec{}
	sm.SetObserver(sparseObs)
	_, s := maskRegs(n, occ)
	op.sparse(sm, s)

	requireSparseMatch(t, op.name, regs, dm.Stats(), denseObs, s, sm.Stats(), sparseObs)
}

// TestSparseDenseIdentity is the property battery: for random occupancy
// masks at several densities, every sparse primitive matches its dense
// counterpart in registers, Stats, and the observed round stream, on
// both machine families.
func TestSparseDenseIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for _, n := range []int{1, 4, 16, 64, 256} {
		topos := map[string]func() *M{
			"mesh":      func() *M { return New(mesh.MustNew(meshSize(n), mesh.Proximity)) },
			"hypercube": func() *M { return New(hypercube.MustNew(n)) },
		}
		for topoName, newM := range topos {
			mn := newM().Size()
			for _, density := range []float64{0, 0.03, 0.2, 0.7, 1} {
				occ := make([]bool, mn)
				for i := range occ {
					if r.Float64() < density {
						occ[i] = true
					}
				}
				for opIdx := range sparseOps {
					opIdx := opIdx
					t.Run(sparseOps[opIdx].name+"/"+topoName, func(t *testing.T) {
						runSparseCase(t, opIdx, newM, occ)
					})
				}
			}
		}
	}
}

// TestPairCountBruteForce pins the closed-form compare-exchange pair
// count (the occupancy-independent message count of a dense CE round)
// against direct enumeration, including non-power-of-two machine sizes.
func TestPairCountBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 8, 13, 16, 31, 32, 100, 256} {
		for _, mask := range []int{1, 2, 3, 4, 7, 8, 15, 16, 31, 63, 255} {
			want := 0
			for i := 0; i < n; i++ {
				j := i ^ mask
				if j > i && j < n {
					want++
				}
			}
			if got := pairCount(n, mask); got != want {
				t.Errorf("pairCount(%d, %d) = %d, want %d", n, mask, got, want)
			}
		}
	}
}

// TestSparseSetClear covers the maintenance surface of the active list.
func TestSparseSetClear(t *testing.T) {
	s := NewSparse[int](8)
	s.Set(5, 50)
	s.Set(2, 20)
	s.Set(5, 55) // overwrite keeps one entry
	if got := s.Active(); !reflect.DeepEqual(got, []int32{2, 5}) {
		t.Fatalf("Active = %v", got)
	}
	if v, ok := s.Get(5); !ok || v != 55 {
		t.Fatalf("Get(5) = %v, %v", v, ok)
	}
	s.Clear(2)
	s.Clear(2) // double clear is a no-op
	if got := s.Active(); !reflect.DeepEqual(got, []int32{5}) {
		t.Fatalf("Active after Clear = %v", got)
	}
	if got := s.Gather(); !reflect.DeepEqual(got, []int{55}) {
		t.Fatalf("Gather = %v", got)
	}
	if s.Count() != 1 || s.Len() != 8 {
		t.Fatalf("Count/Len = %d/%d", s.Count(), s.Len())
	}
	sc := SparseScatter(4, []int{9, 8})
	if got := sc.Gather(); !reflect.DeepEqual(got, []int{9, 8}) {
		t.Fatalf("SparseScatter Gather = %v", got)
	}
}

// TestSparseRouteCollisionPanics mirrors the dense Route contract.
func TestSparseRouteCollisionPanics(t *testing.T) {
	m := New(hypercube.MustNew(4))
	s := SparseScatter(4, []int{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on destination collision")
		}
	}()
	SparseRoute(m, s, []int{3, 3, -1, -1})
}

// FuzzActiveSetRounds drives dense/sparse identity from fuzzer-chosen
// occupancy masks: the mask bytes choose which PEs hold items, opSel
// picks the primitive, and nSel the machine size. Any divergence in
// masked registers, Stats, or the observer stream is a bug in the
// sparse layer (or a cost-model drift in the dense one).
func FuzzActiveSetRounds(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{0x0f})
	f.Add(uint8(1), uint8(3), []byte{0xaa, 0x55})
	f.Add(uint8(2), uint8(6), []byte{0x01, 0x00, 0x80})
	f.Add(uint8(3), uint8(7), []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(uint8(2), uint8(9), []byte{})
	f.Add(uint8(1), uint8(10), []byte{0x10})
	f.Fuzz(func(t *testing.T, nSel, opSel uint8, mask []byte) {
		n := 1 << (int(nSel)%5 + 2) // 4..64
		opIdx := int(opSel) % len(sparseOps)
		occ := make([]bool, n)
		for i := range occ {
			if len(mask) > 0 && mask[(i/8)%len(mask)]&(1<<(i%8)) != 0 {
				occ[i] = true
			}
		}
		runSparseCase(t, opIdx, func() *M { return New(hypercube.MustNew(n)) }, occ)
		runSparseCase(t, opIdx, func() *M { return New(mesh.MustNew(meshSize(n), mesh.Proximity)) },
			append(make([]bool, 0, meshSize(n)), append(occ, make([]bool, meshSize(n)-n)...)...))
	})
}
