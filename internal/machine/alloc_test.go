package machine

// Allocation-budget tests for the scratch arena: on a warm machine every
// Table-1 primitive must run without touching the heap. These are the
// test-suite counterparts of the pinned benchmarks in bench_perf_test.go
// (the benchmarks measure, these assert), and they are what keeps a
// future edit from quietly reintroducing per-call allocation — an
// AllocsPerRun regression here fails `go test` long before the bench
// gate sees it.
//
// Skipped under the race detector: its instrumentation allocates.

import (
	"testing"

	"dyncg/internal/hypercube"
)

func intMin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func intLess(a, b int) bool { return a < b }

// warmMachine returns a machine plus a register file and whole-machine
// segment mask, with the arena warmed by one run of each exercised op.
func warmMachine(t *testing.T, n int) (*M, []Reg[int], []bool) {
	t.Helper()
	m := New(hypercube.MustNew(n))
	regs := make([]Reg[int], n)
	for i := range regs {
		regs[i] = Some((i * 7919) % 1024)
	}
	seg := WholeMachine(n)
	return m, regs, seg
}

func TestScanAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	m, regs, seg := warmMachine(t, 1024)
	Scan(m, regs, seg, Forward, intMin) // warm the arena
	allocs := testing.AllocsPerRun(10, func() {
		Scan(m, regs, seg, Forward, intMin)
	})
	if allocs != 0 {
		t.Errorf("Scan on a warm machine: %v allocs/run, want 0", allocs)
	}
}

func TestSemigroupAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	m, regs, seg := warmMachine(t, 1024)
	Semigroup(m, regs, seg, intMin)
	allocs := testing.AllocsPerRun(10, func() {
		Semigroup(m, regs, seg, intMin)
	})
	if allocs != 0 {
		t.Errorf("Semigroup on a warm machine: %v allocs/run, want 0", allocs)
	}
}

func TestSortAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	m, regs, _ := warmMachine(t, 1024)
	Sort(m, regs, intLess)
	allocs := testing.AllocsPerRun(10, func() {
		Sort(m, regs, intLess)
	})
	if allocs != 0 {
		t.Errorf("Sort on a warm machine: %v allocs/run, want 0", allocs)
	}
}

// TestArenaReuse checks the arena actually recycles: two same-size Gets
// with a Put between them return the same backing array.
func TestArenaReuse(t *testing.T) {
	m := New(hypercube.MustNew(16))
	a := GetScratch[int](m, 100)
	a[0] = 42
	PutScratch(m, a)
	b := GetScratch[int](m, 100)
	if &a[0] != &b[0] {
		t.Error("GetScratch after PutScratch did not reuse the buffer")
	}
	if b[0] != 0 {
		t.Errorf("reused scratch not zeroed: b[0] = %d", b[0])
	}
}

// TestArenaGeneration checks Reset invalidates parked buffers: a buffer
// parked before Reset must not be revived after it.
func TestArenaGeneration(t *testing.T) {
	m := New(hypercube.MustNew(16))
	gen := m.ScratchGeneration()
	a := GetScratch[int](m, 64)
	PutScratch(m, a)
	m.Reset()
	if got := m.ScratchGeneration(); got != gen+1 {
		t.Fatalf("ScratchGeneration after Reset = %d, want %d", got, gen+1)
	}
	b := GetScratch[int](m, 64)
	if len(a) > 0 && len(b) > 0 && &a[:1][0] == &b[0] {
		t.Error("GetScratch revived a buffer parked before Reset")
	}
	// Buffers parked in the new generation recycle again.
	PutScratch(m, b)
	c := GetScratch[int](m, 64)
	if &b[:1][0] != &c[0] {
		t.Error("GetScratch did not reuse a current-generation buffer")
	}
}

// TestArenaSmallerGet checks a parked large buffer serves smaller
// requests (capacity, not length, is matched).
func TestArenaSmallerGet(t *testing.T) {
	m := New(hypercube.MustNew(16))
	a := GetScratch[bool](m, 256)
	PutScratch(m, a)
	b := GetScratch[bool](m, 10)
	if len(b) != 10 || cap(b) < 256 {
		t.Errorf("GetScratch(10) after Put(256): len=%d cap=%d, want len 10 from the parked buffer", len(b), cap(b))
	}
}
