package machine

// This file implements the per-machine scratch arena: a typed,
// generation-stamped pool of recyclable scratch slices. Every data
// movement primitive of ops.go needs O(n) scratch per call (shift
// targets, segment-flag doubling buffers, compaction ranks, routing
// source/destination lists); before the arena each call allocated them
// fresh, so one Table-2/3 run performed thousands of O(n) heap
// allocations that dominated simulator wall-clock. The arena hands the
// same few buffers back out call after call, making the steady-state
// hot paths allocation-free (see bench_perf_test.go and the
// AllocsPerRun assertions in alloc_test.go).
//
// Design:
//
//   - One free list per element type, keyed by reflect.Type and created
//     on first use, so the one arena serves []Reg[T] for every T the
//     generic op layer is instantiated at, plus []bool, []int, and any
//     caller-side element type (penvelope's piece buffers, pgeom's
//     candidate registers).
//
//   - Buffers are generation-stamped: every parked buffer records the
//     arena generation at Put time, and M.Reset() starts a new
//     generation. A Get never revives a buffer parked in an earlier
//     generation — stale entries are dropped to the garbage collector
//     instead — so a long-lived machine cannot pin peak-sized scratch
//     from a previous run across the Reset boundary, and run-to-run
//     memory behaviour stays reproducible.
//
//   - GetScratch returns buffers zeroed to length n, so a converted
//     call site behaves exactly like the make([]E, n) it replaced.
//
// Ownership contract: the arena belongs to the machine's owning
// goroutine, like the Stats counters (see the concurrency contract on
// M). Get/Put only ever run on that goroutine — the sharded worker
// loops of internal/par never touch the arena; every primitive acquires
// and releases its scratch outside par.ForEach/par.Reduce bodies. Put
// hands ownership of the buffer to the arena: callers must not retain
// (or double-Put) a released slice, and must only Put buffers they own
// outright — never a caller-supplied register file.

import "reflect"

// arenaMaxFree bounds each per-type free list. Primitives hold at most
// a handful of scratch buffers at once (Compact's five is the current
// peak); a few extra slots absorb nested callers (penvelope keeps piece
// buffers checked out across whole merge levels) without letting an
// unbalanced caller grow the pool without bound.
const arenaMaxFree = 16

// arena is the scratch-buffer pool hung off every M.
type arena struct {
	gen   uint64
	pools map[reflect.Type]any // *pool[E], keyed by reflect.TypeOf((*E)(nil))
}

// pool is the free list for one element type.
type pool[E any] struct {
	free []parked[E]
}

// parked is one recyclable buffer plus the generation it was parked in.
type parked[E any] struct {
	buf []E
	gen uint64
}

// poolOf returns (creating on first use) the free list for element type
// E. The nil-*E key is packed directly into the interface, so the
// lookup itself does not allocate.
func poolOf[E any](m *M) *pool[E] {
	key := reflect.TypeOf((*E)(nil))
	if p, ok := m.scr.pools[key]; ok {
		return p.(*pool[E])
	}
	p := &pool[E]{}
	m.scr.pools[key] = p
	return p
}

// GetScratch returns a zeroed scratch slice of length n from m's arena,
// reusing a previously released buffer when one of sufficient capacity
// from the current generation is parked. The slice is owned by the
// caller until released with PutScratch (releasing is optional — an
// unreleased buffer is simply collected by the GC, which is the right
// thing for results that escape to the caller, like ShiftWithin's).
func GetScratch[E any](m *M, n int) []E {
	p := poolOf[E](m)
	for k := len(p.free) - 1; k >= 0; k-- {
		e := p.free[k]
		if e.gen != m.scr.gen {
			// Parked before the last Reset — and entries park in
			// generation order, so positions 0..k are all stale. Drop
			// them, keep the already-scanned current-generation tail,
			// and stop.
			kept := copy(p.free, p.free[k+1:])
			p.free = p.free[:kept]
			break
		}
		if cap(e.buf) < n {
			continue
		}
		// Remove entry k, preserving the generation-ordered prefix.
		copy(p.free[k:], p.free[k+1:])
		p.free = p.free[:len(p.free)-1]
		s := e.buf[:n]
		clear(s)
		return s
	}
	return make([]E, n)
}

// PutScratch releases a buffer back to m's arena for reuse by a later
// GetScratch of the same element type. The caller must own the buffer
// (obtained from GetScratch, or freshly allocated) and must not use it
// again after the call. Zero-capacity and overflow buffers are dropped.
func PutScratch[E any](m *M, s []E) {
	if cap(s) == 0 {
		return
	}
	p := poolOf[E](m)
	if len(p.free) >= arenaMaxFree {
		return
	}
	p.free = append(p.free, parked[E]{buf: s[:0], gen: m.scr.gen})
}

// ScratchGeneration returns the arena's current generation — it
// advances on every Reset. Exposed for tests and debugging.
func (m *M) ScratchGeneration() uint64 { return m.scr.gen }
