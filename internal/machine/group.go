package machine

// Grouping (§2.6): "this operation is often performed when one set of
// ordered data needs to perform multiple simultaneous searches on
// another set of ordered data. It is typically accomplished ... by
// sorting both sets of ordered data together, performing sort-based
// concurrent reads within strings to determine substrings, and then
// performing a semigroup or parallel prefix operation within the
// substrings."
//
// Group is the direct realisation: every query learns the index of its
// predecessor data item under the given order. It underlies the sector
// searches of Lemma 5.5 and Theorem 5.8 and the point-location step of
// the steady-state hull verification.

// Group performs the simultaneous predecessor searches of the grouping
// operation: pred[q] is the index (into data) of the greatest data item
// ≤ queries[q] under less, or −1 if queries[q] precedes every data item.
// Ties resolve to the data item (data sorts before equal queries).
//
// Cost: one sort plus one parallel prefix — Θ(√n) mesh, Θ(log² n)
// hypercube (Table 1: grouping). Requires len(data)+len(queries) ≤
// m.Size().
func Group[T any](m *M, data, queries []T, less func(a, b T) bool) []int {
	n := m.Size()
	if len(data)+len(queries) > n {
		panic("machine: Group inputs exceed machine size")
	}
	type entry struct {
		v     T
		query bool
		idx   int
	}
	// Native columnar register file: Group runs its whole pipeline over
	// the struct-of-arrays layout, skipping the record split/join of the
	// []Reg wrappers.
	f := GetCols[entry](m, n)
	for i, v := range data {
		f.Set(i, entry{v: v, idx: i})
	}
	for q, v := range queries {
		f.Set(len(data)+q, entry{v: v, query: true, idx: q})
	}
	SortCols(m, f, func(a, b entry) bool {
		if less(a.v, b.v) {
			return true
		}
		if less(b.v, a.v) {
			return false
		}
		if a.query != b.query {
			return !a.query // data before equal queries
		}
		return a.idx < b.idx
	})
	// Parallel prefix: carry the most recent data index.
	carry := GetCols[int](m, n)
	m.ChargeLocal(1)
	for i := 0; i < n; i++ {
		if f.Occ[i] && !f.Val[i].query {
			carry.Set(i, f.Val[i].idx)
		}
	}
	seg := GetScratch[bool](m, n)
	if n > 0 {
		seg[0] = true
	}
	ScanCols(m, carry, seg, Forward, func(a, b int) int { return b })
	PutScratch(m, seg)
	m.ChargeLocal(1)
	pred := make([]int, len(queries))
	for i := range pred {
		pred[i] = -1
	}
	for i := 0; i < n; i++ {
		if f.Occ[i] && f.Val[i].query && carry.Occ[i] {
			pred[f.Val[i].idx] = carry.Val[i]
		}
	}
	PutCols(m, carry)
	PutCols(m, f)
	return pred
}
