package machine

// This file is the fault-injection hook surface of the simulator, the
// degraded-operation counterpart of the Observer hook in observe.go. The
// machine stays dependency-free: it only *asks* an attached Injector for
// the fault fate of every charged communication round, and internal/fault
// implements the seeded schedules and the recovery harness on top. When
// no injector is attached every hook is a single nil check, so the
// fault-free fast path stays within the same ≤2% overhead budget as
// tracing (see BenchmarkInjectorOverhead in internal/fault and the record
// in EXPERIMENTS.md).
//
// Fault model. The machines are lock-step SIMD, so faults are modelled at
// round granularity:
//
//   - A *transient link fault* makes a communication round unreliable:
//     the round's messages must be re-sent. The injector reports how many
//     retry attempts the round needs; each retry is charged as a full
//     extra round whose communication cost grows linearly with the
//     attempt number (retry k waits k extra steps of backoff before
//     re-sending). Data is never corrupted — the SIMD controller detects
//     the fault and replays the round — so algorithm outputs are
//     unchanged while Stats honestly records the degraded cost.
//
//   - A *permanent PE failure* kills one processing element. The machine
//     cannot recover by itself (register files live with the algorithm,
//     not the machine), so it raises a PEFailure panic that the recovery
//     harness (internal/fault.Run) converts into remap-onto-a-healthy-
//     submachine plus re-run. Driving an injector that fails PEs without
//     that harness crashes, deliberately.

import "fmt"

// FaultOutcome is an Injector's verdict on one charged communication
// round.
type FaultOutcome struct {
	// Retries is the number of extra times the round must be re-sent due
	// to transient link faults (0 = clean round). Each retry is charged
	// as one full round with linear backoff (see faultRound).
	Retries int
	// FailPE, when ≥ 0, is the label of a PE that permanently fails at
	// the end of this round; the machine raises PEFailure{FailPE}.
	FailPE int
}

// CleanRound is the no-fault outcome.
var CleanRound = FaultOutcome{FailPE: -1}

// Injector decides the fault fate of every charged communication round
// (XOR, shift, and route rounds; local phases involve no links and are
// never faulted). Implementations must be cheap and deterministic: the
// hook runs synchronously inside the simulator on the machine's owning
// goroutine, and the whole fault subsystem's reproducibility contract
// (same seed ⇒ same schedule ⇒ same Stats and trace) rests on the
// injector consuming randomness only from its own seeded source in round
// order. Retried rounds are NOT re-submitted to the injector.
type Injector interface {
	CommRound(info RoundInfo) FaultOutcome
}

// PEFailure is the panic value raised when the attached Injector reports
// a permanent PE failure. internal/fault.Run recovers it, remaps the
// computation onto the largest healthy submachine, and re-runs.
type PEFailure struct{ PE int }

func (f PEFailure) Error() string {
	return fmt.Sprintf("machine: PE %d failed permanently", f.PE)
}

// SetInjector attaches (or, with nil, detaches) the machine's fault
// injector. Fault injection is opt-in: with no injector attached the
// charge paths reduce to nil checks.
func (m *M) SetInjector(inj Injector) { m.inj = inj }

// Injector returns the attached injector, or nil.
func (m *M) Injector() Injector { return m.inj }

// faultRound applies the injector's verdict for a just-charged round:
// retries are charged as extra rounds with linear backoff (retry k costs
// Dist+k communication steps and re-sends all Msgs messages), emitted to
// the observer as RoundRetry events so traces attribute the degraded cost
// to the primitive that suffered it; a permanent PE failure becomes a
// PEFailure panic for the recovery harness.
func (m *M) faultRound(ri RoundInfo) {
	out := m.inj.CommRound(ri)
	for k := 1; k <= out.Retries; k++ {
		d := ri.Dist + k
		m.st.Rounds++
		m.st.CommSteps += int64(d)
		m.st.LocalSteps++
		m.st.Messages += int64(ri.Msgs)
		if m.obs != nil {
			m.obs.Round(RoundInfo{Kind: RoundRetry, Param: k, Dist: d, Msgs: ri.Msgs})
		}
	}
	if out.FailPE >= 0 {
		panic(PEFailure{PE: out.FailPE})
	}
}

// ChargeRecovery records one structured recovery round — the
// checkpoint-restore state migration internal/fault charges when it
// remaps a computation onto a healthy submachine after a permanent PE
// failure. It is charged like a route (worst point-to-point distance plus
// one local phase) and emitted as a RoundRecovery event; the injector is
// deliberately not consulted (recovery traffic uses the already-verified
// healthy region).
func (m *M) ChargeRecovery(dist, msgs int) {
	m.st.Rounds++
	m.st.CommSteps += int64(dist)
	m.st.LocalSteps++
	m.st.Messages += int64(msgs)
	if m.obs != nil {
		m.obs.Round(RoundInfo{Kind: RoundRecovery, Dist: dist, Msgs: msgs})
	}
}
