package machine

import (
	"math/rand"
	"sort"
	"testing"

	"dyncg/internal/hypercube"
	"dyncg/internal/mesh"
)

// TestGroupMatchesBinarySearch: the grouping operation's predecessor
// answers equal serial binary search on every query.
func TestGroupMatchesBinarySearch(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		nd := 1 + r.Intn(30)
		nq := 1 + r.Intn(30)
		data := make([]int, nd)
		for i := range data {
			data[i] = r.Intn(50) * 2 // even keys
		}
		sort.Ints(data)
		// Strictly increasing for a clean predecessor oracle.
		for i := 1; i < len(data); i++ {
			if data[i] <= data[i-1] {
				data[i] = data[i-1] + 2
			}
		}
		queries := make([]int, nq)
		for i := range queries {
			queries[i] = r.Intn(120) - 4 // mix of hits, misses, out-of-range
		}
		for _, topo := range []Topology{
			mesh.MustNew(64, mesh.Proximity),
			hypercube.MustNew(64),
		} {
			m := New(topo)
			pred := Group(m, data, queries, func(a, b int) bool { return a < b })
			for q, p := range pred {
				want := sort.SearchInts(data, queries[q]+1) - 1
				if p != want {
					t.Fatalf("trial %d %s: query %d (=%d): pred %d, want %d (data %v)",
						trial, topo.Name(), q, queries[q], p, want, data)
				}
			}
			if m.Stats().Time() <= 0 {
				t.Fatal("no cost charged")
			}
		}
	}
}

func TestGroupTiesResolveToData(t *testing.T) {
	m := New(hypercube.MustNew(16))
	data := []int{10, 20, 30}
	queries := []int{20, 9, 31}
	pred := Group(m, data, queries, func(a, b int) bool { return a < b })
	if pred[0] != 1 { // query 20 sees data 20
		t.Fatalf("tie pred = %d, want 1", pred[0])
	}
	if pred[1] != -1 {
		t.Fatalf("below-range pred = %d, want -1", pred[1])
	}
	if pred[2] != 2 {
		t.Fatalf("above-range pred = %d, want 2", pred[2])
	}
}

func TestGroupCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := New(hypercube.MustNew(4))
	Group(m, []int{1, 2, 3}, []int{4, 5}, func(a, b int) bool { return a < b })
}
