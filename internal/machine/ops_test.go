package machine

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dyncg/internal/hypercube"
	"dyncg/internal/mesh"
)

func machines(n int) map[string]*M {
	return map[string]*M{
		"mesh":      New(mesh.MustNew(meshSize(n), mesh.Proximity)),
		"hypercube": New(hypercube.MustNew(n)),
	}
}

func meshSize(n int) int {
	p := 1
	for p < n {
		p <<= 2
	}
	return p
}

func TestSortRandom(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for name, m := range machines(64) {
		for trial := 0; trial < 20; trial++ {
			k := r.Intn(m.Size() + 1)
			vals := make([]int, k)
			for i := range vals {
				vals[i] = r.Intn(100)
			}
			regs := Scatter(m.Size(), vals)
			// Shuffle occupied registers across PEs.
			r.Shuffle(m.Size(), func(i, j int) { regs[i], regs[j] = regs[j], regs[i] })
			Sort(m, regs, func(a, b int) bool { return a < b })
			got := Gather(regs)
			want := append([]int{}, vals...)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("%s: lost items: %d vs %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d: sort mismatch at %d: %v vs %v",
						name, trial, i, got, want)
				}
			}
			// Occupied registers must be packed at the front.
			for i := 0; i < len(got); i++ {
				if !regs[i].Ok {
					t.Fatalf("%s: hole at %d", name, i)
				}
			}
		}
	}
}

func TestSortBlocksIndependent(t *testing.T) {
	m := New(hypercube.MustNew(16))
	vals := []int{9, 3, 7, 1, 8, 2, 6, 4, 15, 11, 13, 10, 5, 0, 14, 12}
	regs := Scatter(16, vals)
	SortBlocks(m, regs, 4, func(a, b int) bool { return a < b })
	for blk := 0; blk < 4; blk++ {
		for i := 0; i+1 < 4; i++ {
			a, b := regs[blk*4+i], regs[blk*4+i+1]
			if a.V > b.V {
				t.Fatalf("block %d unsorted: %v", blk, regs[blk*4:blk*4+4])
			}
		}
	}
	// Block contents must be preserved.
	got := map[int]bool{}
	for _, r := range regs[:4] {
		got[r.V] = true
	}
	for _, w := range vals[:4] {
		if !got[w] {
			t.Fatalf("block 0 lost %d", w)
		}
	}
}

func TestMergeBlocks(t *testing.T) {
	m := New(mesh.MustNew(16, mesh.Proximity))
	// Two sorted halves per block of 8.
	vals := []int{1, 3, 5, 7, 2, 4, 6, 8, 0, 2, 4, 6, 1, 3, 5, 7}
	regs := Scatter(16, vals)
	MergeBlocks(m, regs, 8, func(a, b int) bool { return a < b })
	want := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 2, 3, 4, 5, 6, 7}}
	for blk := 0; blk < 2; blk++ {
		for i := 0; i < 8; i++ {
			if regs[blk*8+i].V != want[blk][i] {
				t.Fatalf("block %d = %v, want %v", blk,
					Gather(regs[blk*8:blk*8+8]), want[blk])
			}
		}
	}
}

func TestScanSegmented(t *testing.T) {
	for name, m := range machines(16) {
		regs := make([]Reg[int], 16)
		for i := range regs {
			regs[i] = Some(1)
		}
		seg := BlockSegments(16, 4)
		Scan(m, regs, seg, Forward, func(a, b int) int { return a + b })
		for i := range regs {
			want := i%4 + 1
			if regs[i].V != want {
				t.Fatalf("%s: prefix[%d] = %d, want %d", name, i, regs[i].V, want)
			}
		}
		// Backward suffix sums.
		for i := range regs {
			regs[i] = Some(1)
		}
		Scan(m, regs, seg, Backward, func(a, b int) int { return a + b })
		for i := range regs {
			want := 4 - i%4
			if regs[i].V != want {
				t.Fatalf("%s: suffix[%d] = %d, want %d", name, i, regs[i].V, want)
			}
		}
	}
}

func TestScanSkipsEmpty(t *testing.T) {
	m := New(hypercube.MustNew(8))
	regs := []Reg[int]{Some(1), None[int](), Some(2), None[int](), Some(3), None[int](), None[int](), Some(4)}
	Scan(m, regs, WholeMachine(8), Forward, func(a, b int) int { return a + b })
	wantVals := []int{1, 1, 3, 3, 6, 6, 6, 10}
	for i, w := range wantVals {
		if !regs[i].Ok || regs[i].V != w {
			t.Fatalf("prefix[%d] = %+v, want %d", i, regs[i], w)
		}
	}
}

func TestSemigroupMin(t *testing.T) {
	for name, m := range machines(16) {
		vals := []int{5, 3, 8, 1, 9, 2, 7, 6, 4, 0, 11, 10, 15, 13, 12, 14}
		regs := Scatter(16, vals)
		seg := BlockSegments(16, 8)
		Semigroup(m, regs, seg, func(a, b int) int {
			if a < b {
				return a
			}
			return b
		})
		for i := 0; i < 8; i++ {
			if regs[i].V != 1 {
				t.Fatalf("%s: seg0 min at %d = %d", name, i, regs[i].V)
			}
		}
		for i := 8; i < 16; i++ {
			if regs[i].V != 0 {
				t.Fatalf("%s: seg1 min at %d = %d", name, i, regs[i].V)
			}
		}
	}
}

func TestSpreadBroadcast(t *testing.T) {
	for name, m := range machines(16) {
		regs := make([]Reg[string], 16)
		regs[5] = Some("a")
		regs[12] = Some("b")
		seg := BlockSegments(16, 8)
		Spread(m, regs, seg)
		for i := 0; i < 8; i++ {
			if regs[i].V != "a" {
				t.Fatalf("%s: PE %d = %+v, want a", name, i, regs[i])
			}
		}
		for i := 8; i < 16; i++ {
			if regs[i].V != "b" {
				t.Fatalf("%s: PE %d = %+v, want b", name, i, regs[i])
			}
		}
	}
}

func TestSpreadEmptySegmentStaysEmpty(t *testing.T) {
	m := New(hypercube.MustNew(8))
	regs := make([]Reg[int], 8)
	regs[1] = Some(7)
	seg := BlockSegments(8, 4)
	Spread(m, regs, seg)
	for i := 4; i < 8; i++ {
		if regs[i].Ok {
			t.Fatalf("empty segment PE %d became %+v", i, regs[i])
		}
	}
}

func TestCompact(t *testing.T) {
	for name, m := range machines(16) {
		regs := make([]Reg[int], 16)
		regs[2], regs[5], regs[7] = Some(10), Some(20), Some(30)
		regs[9], regs[14] = Some(40), Some(50)
		seg := BlockSegments(16, 8)
		Compact(m, regs, seg)
		if regs[0].V != 10 || regs[1].V != 20 || regs[2].V != 30 || regs[3].Ok {
			t.Fatalf("%s: seg0 = %v", name, regs[:8])
		}
		if regs[8].V != 40 || regs[9].V != 50 || regs[10].Ok {
			t.Fatalf("%s: seg1 = %v", name, regs[8:])
		}
	}
}

func TestRoute(t *testing.T) {
	m := New(mesh.MustNew(16, mesh.Proximity))
	regs := Scatter(16, []int{1, 2, 3})
	dest := make([]int, 16)
	for i := range dest {
		dest[i] = -1
	}
	dest[0], dest[1], dest[2] = 15, 0, 7
	Route(m, regs, dest)
	if regs[15].V != 1 || regs[0].V != 2 || regs[7].V != 3 {
		t.Fatalf("Route result = %v", regs)
	}
	if regs[1].Ok || regs[2].Ok {
		t.Fatal("sources not cleared")
	}
}

// TestTable1CostShapes verifies the asymptotic claims of Table 1 by
// measuring simulated time across machine sizes: sort/scan/semigroup are
// Θ(√n) on the mesh; scan/semigroup/merge are Θ(log n) and sort Θ(log² n)
// on the hypercube. Shape is asserted by ratio tests across 4× size
// increases.
func TestTable1CostShapes(t *testing.T) {
	sizes := []int{64, 256, 1024, 4096}
	meshSortT := make([]float64, len(sizes))
	cubeSortT := make([]float64, len(sizes))
	meshScanT := make([]float64, len(sizes))
	cubeScanT := make([]float64, len(sizes))
	r := rand.New(rand.NewSource(31))
	for si, n := range sizes {
		mm := New(mesh.MustNew(n, mesh.Proximity))
		hc := New(hypercube.MustNew(n))
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(1 << 20)
		}
		less := func(a, b int) bool { return a < b }
		plus := func(a, b int) int { return a + b }

		regs := Scatter(n, vals)
		Sort(mm, regs, less)
		meshSortT[si] = float64(mm.Stats().CommSteps)

		regs = Scatter(n, vals)
		Sort(hc, regs, less)
		cubeSortT[si] = float64(hc.Stats().CommSteps)

		mm.Reset()
		regs = Scatter(n, vals)
		Scan(mm, regs, WholeMachine(n), Forward, plus)
		meshScanT[si] = float64(mm.Stats().CommSteps)

		hc.Reset()
		regs = Scatter(n, vals)
		Scan(hc, regs, WholeMachine(n), Forward, plus)
		cubeScanT[si] = float64(hc.Stats().CommSteps)
	}
	// Mesh sort and scan: quadrupling n must roughly double time (√n).
	for i := 1; i < len(sizes); i++ {
		for _, pair := range [][2]float64{
			{meshSortT[i], meshSortT[i-1]},
			{meshScanT[i], meshScanT[i-1]},
		} {
			ratio := pair[0] / pair[1]
			if ratio < 1.5 || ratio > 3.0 {
				t.Errorf("mesh Θ(√n) violated: sizes %d→%d ratio %.2f",
					sizes[i-1], sizes[i], ratio)
			}
		}
	}
	// Hypercube: scan grows like log n (ratio (log 4n)/(log n) < 1.45 here);
	// sort grows like log² n.
	for i := 1; i < len(sizes); i++ {
		l0 := math.Log2(float64(sizes[i-1]))
		l1 := math.Log2(float64(sizes[i]))
		scanRatio := cubeScanT[i] / cubeScanT[i-1]
		if scanRatio > 1.3*(l1/l0) {
			t.Errorf("hypercube scan not Θ(log n): %d→%d ratio %.2f",
				sizes[i-1], sizes[i], scanRatio)
		}
		sortRatio := cubeSortT[i] / cubeSortT[i-1]
		if sortRatio > 1.3*(l1*l1)/(l0*l0) {
			t.Errorf("hypercube sort not Θ(log² n): %d→%d ratio %.2f",
				sizes[i-1], sizes[i], sortRatio)
		}
	}
	// Cross-topology: at n=4096 the mesh must be ≫ slower than the cube.
	if meshSortT[3] < 3*cubeSortT[3] {
		t.Errorf("mesh sort (%v) should exceed hypercube sort (%v) at n=4096",
			meshSortT[3], cubeSortT[3])
	}
}

// TestMeshIndexingAblation: row-major indexing loses the Θ(√n) sort bound
// (DESIGN.md ablation 1).
func TestMeshIndexingAblation(t *testing.T) {
	n := 4096
	cost := map[mesh.Indexing]int64{}
	for _, ix := range []mesh.Indexing{mesh.RowMajor, mesh.ShuffledRowMajor, mesh.Proximity} {
		m := New(mesh.MustNew(n, ix))
		vals := make([]int, n)
		for i := range vals {
			vals[i] = (i * 2654435761) % 1000003
		}
		regs := Scatter(n, vals)
		Sort(m, regs, func(a, b int) bool { return a < b })
		got := Gather(regs)
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				t.Fatalf("%v: unsorted", ix)
			}
		}
		cost[ix] = m.Stats().CommSteps
	}
	// Row-major pays an extra Θ(log n) factor, which emerges slowly with
	// n; at 4096 PEs it is ≈1.5× over shuffled row-major. Proximity order
	// shares shuffled's Θ(√n) bound with a larger constant (Hilbert
	// blocks have looser bounding boxes than bit-interleaved ones).
	if float64(cost[mesh.RowMajor]) < 1.3*float64(cost[mesh.ShuffledRowMajor]) {
		t.Errorf("row-major (%d) should be noticeably slower than shuffled (%d)",
			cost[mesh.RowMajor], cost[mesh.ShuffledRowMajor])
	}
	if cost[mesh.Proximity] > 3*cost[mesh.ShuffledRowMajor] {
		t.Errorf("proximity (%d) and shuffled (%d) should be within a constant",
			cost[mesh.Proximity], cost[mesh.ShuffledRowMajor])
	}
}

func TestStatsAccounting(t *testing.T) {
	m := New(hypercube.MustNew(8))
	if m.Stats().Time() != 0 {
		t.Fatal("fresh machine has nonzero time")
	}
	regs := Scatter(8, []int{3, 1, 2})
	Sort(m, regs, func(a, b int) bool { return a < b })
	st := m.Stats()
	if st.CommSteps <= 0 || st.Rounds <= 0 || st.Messages <= 0 {
		t.Fatalf("stats not accumulated: %v", st)
	}
	m.Reset()
	if m.Stats().Time() != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestScatterPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scatter(2, []int{1, 2, 3})
}
