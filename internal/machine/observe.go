package machine

// This file is the instrumentation hook surface of the simulator. The
// machine itself stays dependency-free: it only *emits* structured cost
// events through the Observer interface, and internal/trace (or any other
// consumer) implements it. When no observer is attached every hook is a
// single nil check, so the uninstrumented fast path stays within noise of
// the pre-hook simulator (see BenchmarkObserverOverhead in
// internal/trace).

// RoundKind classifies a charged cost event.
type RoundKind uint8

// The cost event kinds, one per charging entry point of M.
const (
	RoundXOR      RoundKind = iota // partner i ⊕ 2^b (bitonic merge/sort)
	RoundShift                     // partner i ± off (prefix, broadcast, …)
	RoundRoute                     // one structured route
	RoundLocal                     // pure Θ(1)-per-PE local phases
	RoundRetry                     // re-send of a faulted round (transient link fault, see fault.go)
	RoundRecovery                  // checkpoint-restore route after a permanent PE failure
)

// String returns the kind name used in traces and metrics.
func (k RoundKind) String() string {
	switch k {
	case RoundXOR:
		return "xor"
	case RoundShift:
		return "shift"
	case RoundRoute:
		return "route"
	case RoundLocal:
		return "local"
	case RoundRetry:
		return "retry"
	case RoundRecovery:
		return "recovery"
	}
	return "unknown"
}

// RoundInfo describes one charged cost event: a communication round, a
// structured route, or a batch of local phases.
type RoundInfo struct {
	Kind  RoundKind
	Param int // bit b for XOR rounds, |offset| for shift rounds, phase count for local
	Dist  int // communication steps charged (worst link distance of the round)
	Msgs  int // point-to-point messages sent in the round
}

// Observer receives cost events and span boundaries from a machine.
// Implementations must be cheap: every hook runs synchronously inside the
// simulator. The machine calls the hooks from the single goroutine that
// drives it (see the concurrency contract on M).
type Observer interface {
	// SpanBegin opens a nested attribution scope (a primitive such as
	// "sort", or an algorithm-level scope like a theorem's name). kv holds
	// alternating key/value attribute pairs.
	SpanBegin(name string, kv []string)
	// SpanEnd closes the innermost open scope.
	SpanEnd()
	// Round reports one charged cost event inside the current scope.
	Round(RoundInfo)
}

// SetObserver attaches (or, with nil, detaches) the machine's observer.
// Tracing is opt-in: with no observer attached all hooks reduce to nil
// checks.
func (m *M) SetObserver(o Observer) { m.obs = o }

// Observer returns the attached observer, or nil.
func (m *M) Observer() Observer { return m.obs }

// Observed reports whether an observer is attached. Callers building
// non-trivial span attributes should gate on it to keep the disabled
// path allocation-free.
func (m *M) Observed() bool { return m.obs != nil }

// SpanBegin opens a named attribution scope on the attached observer, if
// any. kv holds alternating key/value attribute pairs; every SpanBegin
// must be matched by a SpanEnd on the same machine.
func (m *M) SpanBegin(name string, kv ...string) {
	if m.obs != nil {
		m.obs.SpanBegin(name, kv)
	}
}

// SpanEnd closes the innermost scope opened by SpanBegin.
func (m *M) SpanEnd() {
	if m.obs != nil {
		m.obs.SpanEnd()
	}
}
