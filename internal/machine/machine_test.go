package machine

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"dyncg/internal/hypercube"
	"dyncg/internal/mesh"
)

func TestStatsSub(t *testing.T) {
	a := Stats{CommSteps: 10, LocalSteps: 4, Rounds: 3, Messages: 100}
	b := Stats{CommSteps: 7, LocalSteps: 1, Rounds: 2, Messages: 40}
	got := a.Sub(b)
	want := Stats{CommSteps: 3, LocalSteps: 3, Rounds: 1, Messages: 60}
	if got != want {
		t.Errorf("Sub: got %+v, want %+v", got, want)
	}
	if z := a.Sub(a); z != (Stats{}) {
		t.Errorf("a.Sub(a) = %+v, want zero", z)
	}
	if got := a.Sub(Stats{}); got != a {
		t.Errorf("a.Sub(zero) = %+v, want %+v", got, a)
	}
	if got.Time() != 6 {
		t.Errorf("delta Time() = %d, want 6", got.Time())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{CommSteps: 3, LocalSteps: 3, Rounds: 1, Messages: 60}
	b := Stats{CommSteps: 7, LocalSteps: 1, Rounds: 2, Messages: 40}
	want := Stats{CommSteps: 10, LocalSteps: 4, Rounds: 3, Messages: 100}
	if got := a.Add(b); got != want {
		t.Errorf("Add: got %+v, want %+v", got, want)
	}
	// Add and Sub are inverses.
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("(a+b)−b = %+v, want %+v", got, a)
	}
}

// TestTopologySharedAcrossMachines documents the concurrency contract: a
// Topology is immutable after construction and may back any number of M
// instances concurrently, as long as each M stays on one goroutine. Run
// under -race (scripts/check.sh does) this fails if a topology method
// ever mutates shared state.
func TestTopologySharedAcrossMachines(t *testing.T) {
	const goroutines = 8
	for _, topo := range []Topology{
		mesh.MustNew(64, mesh.Proximity), hypercube.MustNew(64),
	} {
		var wg sync.WaitGroup
		results := make([]Stats, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(g)))
				m := New(topo) // one M per goroutine; the topology is shared
				vals := make([]int, m.Size())
				for i := range vals {
					vals[i] = r.Intn(1000)
				}
				regs := Scatter(m.Size(), vals)
				Sort(m, regs, func(a, b int) bool { return a < b })
				got := Gather(regs)
				if !sort.IntsAreSorted(got) {
					t.Errorf("goroutine %d: sort produced unsorted output", g)
				}
				results[g] = m.Stats()
			}(g)
		}
		wg.Wait()
		// Bitonic sort cost is data-independent: every goroutine must have
		// been charged the same simulated time.
		for g := 1; g < goroutines; g++ {
			if results[g] != results[0] {
				t.Errorf("%s: goroutine %d stats %+v != goroutine 0 stats %+v",
					topo.Name(), g, results[g], results[0])
			}
		}
	}
}

// TestSinglePEMachine exercises every primitive on an n=1 machine: all
// data movement degenerates to local work and nothing may panic or
// charge communication.
func TestSinglePEMachine(t *testing.T) {
	for _, topo := range []Topology{
		mesh.MustNew(1, mesh.Proximity), hypercube.MustNew(1),
	} {
		m := New(topo)
		regs := Scatter(1, []int{42})
		Sort(m, regs, func(a, b int) bool { return a < b })
		Scan(m, regs, WholeMachine(1), Forward, func(a, b int) int { return a + b })
		Spread(m, regs, WholeMachine(1))
		Semigroup(m, regs, WholeMachine(1), func(a, b int) int { return a + b })
		MergeBlocks(m, regs, 1, func(a, b int) bool { return a < b })
		if got := Gather(regs); len(got) != 1 || got[0] != 42 {
			t.Errorf("%s: n=1 primitives corrupted the register: %v", topo.Name(), got)
		}
		if st := m.Stats(); st.CommSteps != 0 {
			t.Errorf("%s: n=1 machine charged %d comm steps", topo.Name(), st.CommSteps)
		}
	}
}

func TestNonPowerSizesRejected(t *testing.T) {
	for _, n := range []int{-4, 0, 2, 3, 8, 15, 48} {
		if _, err := mesh.New(n, mesh.Proximity); err == nil {
			t.Errorf("mesh.New(%d) succeeded, want non-power-of-4 error", n)
		}
	}
	for _, n := range []int{-2, 0, 3, 6, 12, 100} {
		if _, err := hypercube.New(n); err == nil {
			t.Errorf("hypercube.New(%d) succeeded, want non-power-of-2 error", n)
		}
	}
	// The boundary cases that must succeed.
	if _, err := mesh.New(1, mesh.Proximity); err != nil {
		t.Errorf("mesh.New(1): %v", err)
	}
	if _, err := hypercube.New(1); err != nil {
		t.Errorf("hypercube.New(1): %v", err)
	}
}

// plainTopo strips the RoundCoster methods off a bundled topology so the
// machine's per-M fallback cost caches are exercised.
type plainTopo struct{ Topology }

// TestResetPreservesCostCaches is white-box: Reset clears the counters
// but keeps the memoised per-round cost caches, so a re-run of the same
// operation is charged identically (and the caches need not be rebuilt).
// The topologies are wrapped in plainTopo because the bundled ones now
// carry their own costmemo tables (RoundCoster), bypassing the per-M maps.
func TestResetPreservesCostCaches(t *testing.T) {
	for _, topo := range []Topology{
		plainTopo{mesh.MustNew(64, mesh.Proximity)}, plainTopo{hypercube.MustNew(64)},
	} {
		m := New(topo)
		run := func() Stats {
			regs := Scatter(m.Size(), make([]int, m.Size()))
			Sort(m, regs, func(a, b int) bool { return a < b })
			Scan(m, regs, WholeMachine(m.Size()), Forward, func(a, b int) int { return a + b })
			return m.Stats()
		}
		first := run()
		if len(m.xorCost) == 0 && len(m.shiftCost) == 0 {
			t.Fatalf("%s: no cost caches populated by sort+scan", topo.Name())
		}
		xorEntries, shiftEntries := len(m.xorCost), len(m.shiftCost)
		m.Reset()
		if m.Stats() != (Stats{}) {
			t.Fatalf("%s: Reset left stats %+v", topo.Name(), m.Stats())
		}
		if len(m.xorCost) != xorEntries || len(m.shiftCost) != shiftEntries {
			t.Errorf("%s: Reset dropped cost caches (%d/%d → %d/%d)", topo.Name(),
				xorEntries, shiftEntries, len(m.xorCost), len(m.shiftCost))
		}
		if second := run(); second != first {
			t.Errorf("%s: re-run after Reset charged %+v, first run %+v",
				topo.Name(), second, first)
		}
	}
}
