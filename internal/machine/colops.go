package machine

// This file is the columnar core of the simulator: every Table-1 data
// movement primitive implemented over struct-of-arrays register files
// (colstore.File — parallel Val/Occ slices) instead of per-PE []Reg[T]
// records. Round bodies are flat loops over two contiguous slices, which
// is what lets the compiler keep them bounds-check-light, keeps per-PE
// work free of record shuffling, and shards cleanly under internal/par.
// The legacy []Reg[T] entry points in ops.go are thin split/run/join
// wrappers over these functions, so both layouts execute the exact same
// round structure and charge the exact same Stats — bit-identity is
// structural, not re-proved per primitive (and is pinned end to end by
// the columnardiff battery in the repository root).
//
// The charging discipline is unchanged from ops.go: round bodies never
// touch the machine; all chargeXOR/chargeShift/ChargeLocal/ChargeRoute
// calls happen on the owning goroutine between rounds, so serial and
// sharded execution stay bit-identical. Scratch discipline is unchanged
// too: every primitive draws its O(n) scratch from the machine's arena
// and releases it before returning (a File is two arena buffers — see
// GetCols/PutCols).

import (
	"dyncg/internal/colstore"

	"dyncg/internal/par"
)

// GetCols returns an empty columnar register file of length n drawn from
// m's scratch arena. Release it with PutCols (optional, like PutScratch).
func GetCols[T any](m *M, n int) colstore.File[T] {
	return colstore.File[T]{Val: GetScratch[T](m, n), Occ: GetScratch[bool](m, n)}
}

// PutCols releases a file's two buffers back to m's arena.
func PutCols[T any](m *M, f colstore.File[T]) {
	PutScratch(m, f.Occ)
	PutScratch(m, f.Val)
}

// splitRegs copies a record-layout register file into a columnar file
// drawn from the arena. It is the entry bridge of the legacy wrappers.
func splitRegs[T any](m *M, regs []Reg[T]) colstore.File[T] {
	f := GetCols[T](m, len(regs))
	for i := range regs {
		f.Val[i] = regs[i].V
		f.Occ[i] = regs[i].Ok
	}
	return f
}

// joinRegs copies a columnar file back into a record-layout register
// file, stale values of empty registers included — the wrappers must be
// byte-identical to the old record implementation, which propagated
// those bytes through swaps and copies.
func joinRegs[T any](f colstore.File[T], regs []Reg[T]) {
	for i := range regs {
		regs[i] = Reg[T]{V: f.Val[i], Ok: f.Occ[i]}
	}
}

// --- Parallel prefix (segmented scan) -------------------------------------

// scanRoundCols is the columnar per-PE body of one doubling round of
// ScanCols: PE i reads only the round-stable val/occ/fl arrays and
// writes only index i of the next-state arrays, so shards are disjoint.
// It is the transliteration of scanRound+combine in ops.go: empty
// registers are identities, a nil op floods (occupied neighbour wins).
func scanRoundCols[T any](val, nextVal []T, occ, nextOcc, fl, nextFl []bool, off int, dir ScanDir, op func(a, b T) T, lo, hi int) int {
	n := len(val)
	msgs := 0
	for i := lo; i < hi; i++ {
		var j int
		if dir == Forward {
			j = i - off
		} else {
			j = i + off
		}
		if j < 0 || j >= n || fl[i] {
			continue
		}
		msgs++
		switch {
		case !occ[j]: // empty neighbour: keep local
			nextVal[i], nextOcc[i] = val[i], occ[i]
		case !occ[i]: // empty local: take neighbour
			nextVal[i], nextOcc[i] = val[j], occ[j]
		case op == nil: // flood mode: occupied neighbour wins
			nextVal[i], nextOcc[i] = val[j], true
		case dir == Forward:
			nextVal[i], nextOcc[i] = op(val[j], val[i]), true
		default:
			nextVal[i], nextOcc[i] = op(val[i], val[j]), true
		}
		nextFl[i] = fl[i] || fl[j]
	}
	return msgs
}

// ScanCols is the columnar segmented inclusive scan — see Scan in ops.go
// for the cost model and the flood (nil-op) mode.
func ScanCols[T any](m *M, f colstore.File[T], segStart []bool, dir ScanDir, op func(a, b T) T) {
	defer closeSpan(pspan(m, "prefix", f.Len()))
	n := f.Len()
	fl := GetScratch[bool](m, n)
	if dir == Forward {
		copy(fl, segStart)
	} else {
		for i := 0; i < n; i++ {
			fl[i] = i+1 >= n || segStart[i+1]
		}
	}
	maxSeg, run := 0, 0
	for i := 0; i < n; i++ {
		if segStart[i] {
			run = 0
		}
		run++
		if run > maxSeg {
			maxSeg = run
		}
	}
	if maxSeg > 1 {
		next := GetCols[T](m, n)
		nextFl := GetScratch[bool](m, n)
		for off := 1; off < maxSeg; off <<= 1 {
			copy(next.Val, f.Val)
			copy(next.Occ, f.Occ)
			copy(nextFl, fl)
			var msgs int
			if m.workers > 1 {
				off := off
				msgs = par.Reduce(m.workers, n, 0, func(lo, hi int) int {
					return scanRoundCols(f.Val, next.Val, f.Occ, next.Occ, fl, nextFl, off, dir, op, lo, hi)
				}, addInt)
			} else {
				msgs = scanRoundCols(f.Val, next.Val, f.Occ, next.Occ, fl, nextFl, off, dir, op, 0, n)
			}
			copy(f.Val, next.Val)
			copy(f.Occ, next.Occ)
			copy(fl, nextFl)
			m.chargeShift(off, msgs)
		}
		PutScratch(m, nextFl)
		PutCols(m, next)
	}
	PutScratch(m, fl)
}

// --- Broadcast -------------------------------------------------------------

// spreadFixCols resolves the two flood directions of SpreadCols: prefer
// the forward (leftward) source where it exists. PE i writes only its
// own registers.
func spreadFixCols[T any](val, fwdVal []T, occ, fwdOcc []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		if fwdOcc[i] {
			val[i], occ[i] = fwdVal[i], true
		}
	}
}

// SpreadCols is the columnar broadcast of §2.6 — see Spread in ops.go.
func SpreadCols[T any](m *M, f colstore.File[T], segStart []bool) {
	defer closeSpan(pspan(m, "broadcast", f.Len()))
	n := f.Len()
	fwd := GetCols[T](m, n)
	fwd.CopyFrom(f)
	ScanCols(m, fwd, segStart, Forward, nil)
	ScanCols(m, f, segStart, Backward, nil)
	m.ChargeLocal(1)
	if m.workers > 1 {
		par.ForEach(m.workers, n, func(lo, hi int) {
			spreadFixCols(f.Val, fwd.Val, f.Occ, fwd.Occ, lo, hi)
		})
	} else {
		spreadFixCols(f.Val, fwd.Val, f.Occ, fwd.Occ, 0, n)
	}
	PutCols(m, fwd)
}

// markLastCols marks each segment's last PE with its register. PE i
// writes only index i of the marked file.
func markLastCols[T any](markedVal, val []T, markedOcc, occ, segStart []bool, lo, hi int) {
	n := len(val)
	for i := lo; i < hi; i++ {
		if i+1 >= n || segStart[i+1] {
			markedVal[i], markedOcc[i] = val[i], occ[i]
		}
	}
}

// SemigroupCols is the columnar semigroup computation of §2.6 — see
// Semigroup in ops.go.
func SemigroupCols[T any](m *M, f colstore.File[T], segStart []bool, op func(a, b T) T) {
	defer closeSpan(pspan(m, "semigroup", f.Len()))
	ScanCols(m, f, segStart, Forward, op)
	n := f.Len()
	m.ChargeLocal(1)
	marked := GetCols[T](m, n)
	if m.workers > 1 {
		par.ForEach(m.workers, n, func(lo, hi int) {
			markLastCols(marked.Val, f.Val, marked.Occ, f.Occ, segStart, lo, hi)
		})
	} else {
		markLastCols(marked.Val, f.Val, marked.Occ, f.Occ, segStart, 0, n)
	}
	ScanCols(m, marked, segStart, Backward, nil)
	f.CopyFrom(marked)
	PutCols(m, marked)
}

// --- Bitonic merge and sort ------------------------------------------------

// ceRoundCols is the columnar per-PE body of one compare-exchange round;
// each pair (i, i ⊕ mask) is handled from its smaller index, so writes
// stay disjoint across shards. Transliteration of ceRound+regLess:
// occupied registers sort before empty ones, and swaps exchange the full
// register — stale values of empty registers included.
func ceRoundCols[T any](val []T, occ []bool, mask, block int, less func(a, b T) bool, lo, hi int) int {
	n := len(val)
	msgs := 0
	for i := lo; i < hi; i++ {
		j := i ^ mask
		if j <= i || j >= n || i/block != j/block {
			continue
		}
		msgs += 2
		if (occ[j] && !occ[i]) || (occ[j] && occ[i] && less(val[j], val[i])) {
			val[i], val[j] = val[j], val[i]
			occ[i], occ[j] = occ[j], occ[i]
		}
	}
	return msgs
}

// compareExchangeCols performs one lock-step compare-exchange round over
// a columnar file — see compareExchange in ops.go.
func compareExchangeCols[T any](m *M, f colstore.File[T], mask, block int, less func(a, b T) bool) {
	n := f.Len()
	var msgs int
	if m.workers > 1 {
		msgs = par.Reduce(m.workers, n, 0, func(lo, hi int) int {
			return ceRoundCols(f.Val, f.Occ, mask, block, less, lo, hi)
		}, addInt)
	} else {
		msgs = ceRoundCols(f.Val, f.Occ, mask, block, less, 0, n)
	}
	b := 0
	for 1<<(b+1) <= mask {
		b++
	}
	m.chargeXOR(b, msgs)
}

// MergeBlocksCols is the columnar block merge of §2.6 — see MergeBlocks
// in ops.go.
func MergeBlocksCols[T any](m *M, f colstore.File[T], block int, less func(a, b T) bool) {
	if block < 2 {
		return
	}
	defer closeSpan(pspan(m, "merge", block))
	compareExchangeCols(m, f, block-1, block, less)
	for mask := block / 4; mask >= 1; mask /= 2 {
		compareExchangeCols(m, f, mask, block, less)
	}
}

// SortBlocksCols is the columnar bitonic block sort — see SortBlocks in
// ops.go. Empty registers gather at the tail of each block.
func SortBlocksCols[T any](m *M, f colstore.File[T], block int, less func(a, b T) bool) {
	defer closeSpan(pspan(m, "sort", block))
	for sub := 2; sub <= block; sub *= 2 {
		MergeBlocksCols(m, f, sub, less)
	}
}

// SortCols sorts the whole machine (one string) in columnar layout.
func SortCols[T any](m *M, f colstore.File[T], less func(a, b T) bool) {
	SortBlocksCols(m, f, f.Len(), less)
}

// --- Routing-based operations ----------------------------------------------

// rankOccupiedCols writes each PE's occupancy count (0/1) for the rank
// prefix of CompactCols. PE i writes only index i of counts.
func rankOccupiedCols(counts colstore.File[int], occ []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		c := 0
		if occ[i] {
			c = 1
		}
		counts.Val[i], counts.Occ[i] = c, true
	}
}

// markSegBaseCols records each segment start's own index. PE i writes
// only index i of segBase.
func markSegBaseCols(segBase colstore.File[int], segStart []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		if segStart[i] {
			segBase.Val[i], segBase.Occ[i] = i, true
		}
	}
}

// CompactCols is the columnar order-preserving segment compaction — see
// Compact in ops.go. Vacated registers are left empty with zeroed values.
func CompactCols[T any](m *M, f colstore.File[T], segStart []bool) {
	defer closeSpan(pspan(m, "compact", f.Len()))
	n := f.Len()
	counts := GetCols[int](m, n)
	m.ChargeLocal(1)
	if m.workers > 1 {
		par.ForEach(m.workers, n, func(lo, hi int) {
			rankOccupiedCols(counts, f.Occ, lo, hi)
		})
	} else {
		rankOccupiedCols(counts, f.Occ, 0, n)
	}
	ScanCols(m, counts, segStart, Forward, addInt)
	segBase := GetCols[int](m, n)
	m.ChargeLocal(1)
	if m.workers > 1 {
		par.ForEach(m.workers, n, func(lo, hi int) {
			markSegBaseCols(segBase, segStart, lo, hi)
		})
	} else {
		markSegBaseCols(segBase, segStart, 0, n)
	}
	ScanCols(m, segBase, segStart, Forward, nil)
	out := GetCols[T](m, n)
	src := GetScratch[int](m, n)[:0]
	dst := GetScratch[int](m, n)[:0]
	for i := 0; i < n; i++ {
		if !f.Occ[i] {
			continue
		}
		d := segBase.Val[i] + counts.Val[i] - 1
		src = append(src, i)
		dst = append(dst, d)
		out.Val[d], out.Occ[d] = f.Val[i], true
	}
	m.ChargeRoute(src, dst)
	f.CopyFrom(out)
	PutScratch(m, dst)
	PutScratch(m, src)
	PutCols(m, out)
	PutCols(m, segBase)
	PutCols(m, counts)
}

// RouteCols moves item i to dest[i] (−1 to drop) in columnar layout —
// see Route in ops.go. dest must be injective.
func RouteCols[T any](m *M, f colstore.File[T], dest []int) {
	defer closeSpan(pspan(m, "route", f.Len()))
	n := f.Len()
	out := GetCols[T](m, n)
	src := GetScratch[int](m, n)[:0]
	dst := GetScratch[int](m, n)[:0]
	for i := 0; i < n; i++ {
		if !f.Occ[i] || dest[i] < 0 {
			continue
		}
		if out.Occ[dest[i]] {
			panic("machine: Route destination collision")
		}
		out.Val[dest[i]], out.Occ[dest[i]] = f.Val[i], true
		src = append(src, i)
		dst = append(dst, dest[i])
	}
	m.ChargeRoute(src, dst)
	f.CopyFrom(out)
	PutScratch(m, dst)
	PutScratch(m, src)
	PutCols(m, out)
}

// shiftRoundCols is the columnar per-PE body of ShiftWithinCols: PE i
// writes only index i of the out file; the source file is read-only for
// the round.
func shiftRoundCols[T any](out colstore.File[T], val []T, occ []bool, block, delta, lo, hi int) int {
	n := len(val)
	msgs := 0
	for i := lo; i < hi; i++ {
		j := i - delta // the PE whose value lands here
		if j < 0 || j >= n || j/block != i/block || !occ[j] {
			continue
		}
		out.Val[i], out.Occ[i] = val[j], true
		msgs++
	}
	return msgs
}

// ShiftWithinCols returns what each PE receives when every PE sends its
// register to PE i+delta within aligned blocks — see ShiftWithin in
// ops.go. The result file is drawn from the machine's arena; release it
// with PutCols when done (or drop it).
func ShiftWithinCols[T any](m *M, f colstore.File[T], block, delta int) colstore.File[T] {
	n := f.Len()
	out := GetCols[T](m, n)
	var msgs int
	if m.workers > 1 {
		msgs = par.Reduce(m.workers, n, 0, func(lo, hi int) int {
			return shiftRoundCols(out, f.Val, f.Occ, block, delta, lo, hi)
		}, addInt)
	} else {
		msgs = shiftRoundCols(out, f.Val, f.Occ, block, delta, 0, n)
	}
	m.chargeShift(delta, msgs)
	return out
}
