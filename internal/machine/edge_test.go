package machine

// Edge-case coverage for the routing primitives: shifts whose magnitude
// leaves the block, register files with no occupied entries, and the
// degenerate single-PE machine. These paths carry no data but must still
// charge their rounds identically (a shift with nothing to move is still
// one lock-step round in the simulated cost model).

import (
	"testing"

	"dyncg/internal/hypercube"
)

func TestShiftWithinDeltaBeyondBlock(t *testing.T) {
	m := New(hypercube.MustNew(16))
	regs := make([]Reg[int], 16)
	for i := range regs {
		regs[i] = Some(i)
	}
	for _, delta := range []int{4, 5, 16, -4, -16} {
		before := m.Stats()
		out := ShiftWithin(m, regs, 4, delta) // |delta| ≥ block: nothing survives
		after := m.Stats()
		for i, r := range out {
			if r.Ok {
				t.Errorf("delta=%d: out[%d] occupied, want all-None (transfer left its block)", delta, i)
			}
		}
		if after.Rounds != before.Rounds+1 {
			t.Errorf("delta=%d: charged %d rounds, want exactly 1", delta, after.Rounds-before.Rounds)
		}
		if after.Messages != before.Messages {
			t.Errorf("delta=%d: charged %d messages, want 0", delta, after.Messages-before.Messages)
		}
		PutScratch(m, out)
	}
}

func TestShiftWithinAllNone(t *testing.T) {
	m := New(hypercube.MustNew(8))
	regs := make([]Reg[int], 8) // all None
	before := m.Stats()
	out := ShiftWithin(m, regs, 8, 1)
	after := m.Stats()
	for i, r := range out {
		if r.Ok {
			t.Errorf("out[%d] occupied, want all-None", i)
		}
	}
	if after.Rounds != before.Rounds+1 || after.Messages != before.Messages {
		t.Errorf("all-None shift: rounds+%d msgs+%d, want rounds+1 msgs+0",
			after.Rounds-before.Rounds, after.Messages-before.Messages)
	}
	PutScratch(m, out)
}

func TestRouteAllNone(t *testing.T) {
	m := New(hypercube.MustNew(8))
	regs := make([]Reg[int], 8)
	dest := []int{7, 6, 5, 4, 3, 2, 1, 0}
	before := m.Stats()
	Route(m, regs, dest)
	after := m.Stats()
	for i, r := range regs {
		if r.Ok {
			t.Errorf("regs[%d] occupied after routing an empty file", i)
		}
	}
	if after.Rounds != before.Rounds+1 || after.Messages != before.Messages {
		t.Errorf("all-None route: rounds+%d msgs+%d, want rounds+1 msgs+0",
			after.Rounds-before.Rounds, after.Messages-before.Messages)
	}
}

func TestRouteDropAll(t *testing.T) {
	m := New(hypercube.MustNew(4))
	regs := []Reg[int]{Some(1), Some(2), Some(3), Some(4)}
	Route(m, regs, []int{-1, -1, -1, -1})
	for i, r := range regs {
		if r.Ok {
			t.Errorf("regs[%d] occupied, want dropped (dest −1)", i)
		}
	}
}

// TestSinglePEShiftRoute covers the n=1 cases of the routing primitives
// (the general n=1 primitive sweep lives in machine_test.go).
func TestSinglePEShiftRoute(t *testing.T) {
	m := New(hypercube.MustNew(1))
	regs := []Reg[int]{Some(42)}

	out := ShiftWithin(m, regs, 1, 0) // self-shift: the value stays
	if !out[0].Ok || out[0].V != 42 {
		t.Errorf("n=1 self-shift: got %+v, want Some(42)", out[0])
	}
	PutScratch(m, out)

	out = ShiftWithin(m, regs, 1, 1) // off the machine
	if out[0].Ok {
		t.Errorf("n=1 shift by 1: got %+v, want None", out[0])
	}
	PutScratch(m, out)

	Route(m, regs, []int{0})
	if !regs[0].Ok || regs[0].V != 42 {
		t.Errorf("n=1 identity route: got %+v, want Some(42)", regs[0])
	}

	seg := WholeMachine(1)
	Scan(m, regs, seg, Forward, intMin)
	Semigroup(m, regs, seg, intMin)
	Compact(m, regs, seg)
	Sort(m, regs, intLess)
	if !regs[0].Ok || regs[0].V != 42 {
		t.Errorf("n=1 primitives disturbed the register: got %+v, want Some(42)", regs[0])
	}
}
