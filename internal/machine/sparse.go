package machine

// Sparse active-set rounds. A production-scale machine (n = 1<<20 and
// beyond) usually carries far fewer data items than PEs — a session
// holding 5k points on a 1M-PE hypercube would pay O(n) host work per
// round under the dense primitives just to skip empty registers. A
// Sparse[T] register file couples the columnar layout (colstore.File)
// with the sorted list of occupied indices, and the primitives below do
// host work proportional to the active set while charging the machine
// EXACTLY what the dense whole-machine primitive charges: the simulated
// cost model describes a physical SIMD machine whose rounds run over all
// n PEs regardless of occupancy, so Stats — rounds, comm steps, local
// steps, and message counts — are occupancy-independent for the
// scan/sort round structures used here and are reproduced closed-form
// (the message count of a whole-machine scan round at offset `off` is
// n − off; a compare-exchange round on pair mask `mask` moves
// 2·pairCount(n, mask) messages). Answer-and-Stats identity with the
// dense primitives is pinned by the property tests and
// FuzzActiveSetRounds in sparse_test.go.
//
// Semantics and restrictions:
//
//   - All sparse primitives operate on the whole machine as a single
//     string (segStart = WholeMachine(n)); segmented variants would need
//     per-segment active tracking that no current caller wants.
//   - Results are identical to the dense primitive under masked
//     comparison: equal occupancy and equal values wherever occupied.
//     (Dense primitives propagate stale bytes of empty registers through
//     swaps; a sparse file does not track stale bytes at all.)
//   - Work bounds are per-primitive: Sort, Compact, ShiftWithin and
//     Route do O(k·polylog) host work for k active items. Scan, Spread
//     and Semigroup are O(final occupied): their results genuinely
//     occupy every PE from the first active index onward (scans flood),
//     which is a property of the operation, not the layout.
//
// Charging discipline matches ops.go/colops.go: charges and observer
// events are emitted in the same order as the dense implementation, so
// an attached tracer sees a bit-identical span/round stream.

import (
	"math/bits"
	"slices"

	"dyncg/internal/colstore"
)

// Sparse is an active-set register file: a columnar file plus the sorted
// indices of its occupied registers.
type Sparse[T any] struct {
	f   colstore.File[T]
	act []int32 // ascending indices of occupied registers
}

// NewSparse returns an empty sparse file over n PEs. The active list is
// pre-sized to n so primitive calls never reallocate it.
func NewSparse[T any](n int) *Sparse[T] {
	return &Sparse[T]{f: colstore.New[T](n), act: make([]int32, 0, n)}
}

// SparseScatter places vals one per PE from PE 0 upward (the paper's
// input convention), like Scatter/colstore.Scatter.
func SparseScatter[T any](n int, vals []T) *Sparse[T] {
	s := NewSparse[T](n)
	for i, v := range vals {
		s.Set(i, v)
	}
	return s
}

// Len returns the number of PEs the file spans.
func (s *Sparse[T]) Len() int { return s.f.Len() }

// Count returns the number of occupied registers (O(1)).
func (s *Sparse[T]) Count() int { return len(s.act) }

// Get returns PE i's value and occupancy.
func (s *Sparse[T]) Get(i int) (T, bool) { return s.f.Get(i) }

// Set stores v into PE i's register, inserting i into the active list if
// the register was empty (O(k) worst case for the insertion shift).
func (s *Sparse[T]) Set(i int, v T) {
	if !s.f.Occ[i] {
		at, _ := slices.BinarySearch(s.act, int32(i))
		s.act = slices.Insert(s.act, at, int32(i))
	}
	s.f.Set(i, v)
}

// Clear empties PE i's register.
func (s *Sparse[T]) Clear(i int) {
	if s.f.Occ[i] {
		at, _ := slices.BinarySearch(s.act, int32(i))
		s.act = slices.Delete(s.act, at, at+1)
	}
	s.f.Clear(i)
}

// Active returns the ascending occupied indices. The slice is owned by
// the file: callers must not mutate it and must re-fetch it after any
// primitive call.
func (s *Sparse[T]) Active() []int32 { return s.act }

// File returns the underlying columnar file (values of empty registers
// are unspecified — compare with colstore.Equal/EqualFunc, which mask).
func (s *Sparse[T]) File() colstore.File[T] { return s.f }

// Gather returns the occupied values in index order.
func (s *Sparse[T]) Gather() []T {
	out := make([]T, 0, len(s.act))
	for _, p := range s.act {
		out = append(out, s.f.Val[p])
	}
	return out
}

// rebuildRange resets the active list to the contiguous index range
// [lo, hi).
func (s *Sparse[T]) rebuildRange(lo, hi int) {
	s.act = s.act[:0]
	for i := lo; i < hi; i++ {
		s.act = append(s.act, int32(i))
	}
}

// sparseScanCharges emits the exact charge stream of a dense
// whole-machine scan over n PEs: one span, and one shift round per
// doubling offset with the occupancy-independent message count n − off
// (PE i receives from i∓off unless it is left of the spreading boundary
// flag, which after rounds 1..off/2 covers exactly off PEs).
func sparseScanCharges(m *M, n int) {
	defer closeSpan(pspan(m, "prefix", n))
	for off := 1; off < n; off <<= 1 {
		m.chargeShift(off, n-off)
	}
}

// SparseScan is the whole-machine inclusive scan over a sparse file —
// dense counterpart Scan with segStart = WholeMachine(n). Empty
// registers are identities; a nil op floods (the string-boundary-side
// value wins). Note the flood result: every PE from the first active
// index onward (Forward) or up to the last active index (Backward)
// becomes occupied, so the active set densifies to a suffix/prefix —
// host work is O(final occupied).
func SparseScan[T any](m *M, s *Sparse[T], dir ScanDir, op func(a, b T) T) {
	n := s.Len()
	defer closeSpan(pspan(m, "prefix", n))
	if k := len(s.act); k > 0 {
		val := s.f.Val
		if dir == Forward {
			first := int(s.act[0])
			ai := 0
			var acc T
			for i := first; i < n; i++ {
				if ai < k && int(s.act[ai]) == i {
					if ai == 0 {
						acc = val[i]
					} else if op != nil {
						acc = op(acc, val[i]) // prefix ∗ local
					}
					ai++
				}
				val[i] = acc
				s.f.Occ[i] = true
			}
			s.rebuildRange(first, n)
		} else {
			last := int(s.act[k-1])
			ai := k - 1
			var acc T
			for i := last; i >= 0; i-- {
				if ai >= 0 && int(s.act[ai]) == i {
					if ai == k-1 {
						acc = val[i]
					} else if op != nil {
						acc = op(val[i], acc) // local ∗ suffix
					}
					ai--
				}
				val[i] = acc
				s.f.Occ[i] = true
			}
			s.rebuildRange(0, last+1)
		}
	}
	for off := 1; off < n; off <<= 1 {
		m.chargeShift(off, n-off)
	}
}

// SparseSpread is the whole-machine broadcast over a sparse file — dense
// counterpart Spread. Every PE receives a value (the forward flood wins
// where both reach), so the result is fully dense when any register is
// occupied.
func SparseSpread[T any](m *M, s *Sparse[T]) {
	n := s.Len()
	defer closeSpan(pspan(m, "broadcast", n))
	sparseScanCharges(m, n) // forward flood of the copy
	sparseScanCharges(m, n) // backward flood in place
	m.ChargeLocal(1)
	if k := len(s.act); k > 0 {
		first, last := int(s.act[0]), int(s.act[k-1])
		firstVal, lastVal := s.f.Val[first], s.f.Val[last]
		for i := 0; i < first; i++ {
			s.f.Val[i] = lastVal // only the backward flood reaches here
			s.f.Occ[i] = true
		}
		for i := first; i < n; i++ {
			s.f.Val[i] = firstVal // forward flood preferred
			s.f.Occ[i] = true
		}
		s.rebuildRange(0, n)
	}
}

// SparseSemigroup delivers the op-reduction of all items to every PE —
// dense counterpart Semigroup on the whole machine. The result is fully
// dense when any register is occupied.
func SparseSemigroup[T any](m *M, s *Sparse[T], op func(a, b T) T) {
	n := s.Len()
	defer closeSpan(pspan(m, "semigroup", n))
	sparseScanCharges(m, n) // forward op scan
	m.ChargeLocal(1)        // mark each string's last PE
	sparseScanCharges(m, n) // backward flood of the totals
	if k := len(s.act); k > 0 {
		total := s.f.Val[s.act[0]]
		for _, p := range s.act[1:] {
			total = op(total, s.f.Val[p])
		}
		for i := 0; i < n; i++ {
			s.f.Val[i] = total
			s.f.Occ[i] = true
		}
		s.rebuildRange(0, n)
	}
}

// countBothBelow counts the x in [0, n) with x ⊕ mask also in [0, n), by
// a two-tightness digit walk over the bits of n — O(log² n), no scan of
// the index space.
func countBothBelow(n, mask int) int {
	if n <= 0 {
		return 0
	}
	nb := bits.Len(uint(n | mask)) // cover mask bits above n's width too
	var rec func(k int, ta, tb bool) int
	rec = func(k int, ta, tb bool) int {
		if !ta && !tb {
			// Both x and x⊕mask are already strictly below n on a higher
			// bit; every completion of the remaining k+1 bits is valid.
			return 1 << (k + 1)
		}
		if k < 0 {
			return 0 // a still-tight prefix means the value equals n
		}
		nk := (n >> k) & 1
		mk := (mask >> k) & 1
		total := 0
		for xk := 0; xk <= 1; xk++ {
			yk := xk ^ mk
			if ta && xk > nk || tb && yk > nk {
				continue
			}
			total += rec(k-1, ta && xk == nk, tb && yk == nk)
		}
		return total
	}
	return rec(nb-1, true, true)
}

// pairCount returns the number of PE pairs (i, i ⊕ mask) with both ends
// on an n-PE machine — the pair population of one dense compare-exchange
// round (each pair exchanges 2 messages regardless of occupancy). The
// same-block constraint of SortBlocks is vacuous here because every
// mask used is smaller than its (power-of-two) block.
func pairCount(n, mask int) int {
	if mask <= 0 {
		return 0
	}
	return countBothBelow(n, mask) / 2
}

// sparseCE runs one compare-exchange round on the active items only:
// each pair with at least one occupied member is resolved exactly as the
// dense round resolves it (occupied registers sort before empty ones),
// and pairs of two empty registers are no-ops the host skips. snap must
// hold the pre-round active list; the post-round list is rebuilt into
// s.act.
func (s *Sparse[T]) sparseCE(m *M, mask, block int, less func(a, b T) bool, snap []int32) {
	n := s.Len()
	val, occ := s.f.Val, s.f.Occ
	newAct := s.act[:0]
	moved := false
	for _, p32 := range snap {
		p := int(p32)
		q := p ^ mask
		if q >= n || p/block != q/block {
			newAct = append(newAct, p32) // no partner on the machine
			continue
		}
		if q > p {
			// First visit of the pair. Both occupied: order them (smaller
			// value to the smaller index). Partner empty: regLess(empty,
			// occupied) is false, so the item stays put.
			if occ[q] && less(val[q], val[p]) {
				val[p], val[q] = val[q], val[p]
			}
			newAct = append(newAct, p32)
			continue
		}
		// q < p: if q is occupied the pair was resolved at q's visit
		// (both-occupied swaps exchange values, not occupancy). If q is
		// empty, the dense round swaps the occupied register down:
		// regLess(occupied@p, empty@q) holds.
		if occ[q] {
			newAct = append(newAct, p32)
			continue
		}
		val[q] = val[p]
		occ[q] = true
		occ[p] = false
		newAct = append(newAct, int32(q))
		moved = true
	}
	if moved {
		slices.Sort(newAct)
	}
	s.act = newAct
	b := 0
	for 1<<(b+1) <= mask {
		b++
	}
	m.chargeXOR(b, 2*pairCount(n, mask))
}

// sparseMergeBlocks mirrors MergeBlocksCols round for round.
func sparseMergeBlocks[T any](m *M, s *Sparse[T], block int, less func(a, b T) bool, snap []int32) {
	if block < 2 {
		return
	}
	defer closeSpan(pspan(m, "merge", block))
	snap = append(snap[:0], s.act...)
	s.sparseCE(m, block-1, block, less, snap)
	for mask := block / 4; mask >= 1; mask /= 2 {
		snap = append(snap[:0], s.act...)
		s.sparseCE(m, mask, block, less, snap)
	}
}

// SparseSort sorts the whole machine — dense counterpart Sort. The k
// active items ride the exact bitonic round schedule of the dense sort
// (so ties land in the same slots the unstable dense network puts them
// in), but each round costs the host O(k) plus an O(k log k) re-sort of
// the active list, not O(n).
func SparseSort[T any](m *M, s *Sparse[T], less func(a, b T) bool) {
	n := s.Len()
	defer closeSpan(pspan(m, "sort", n))
	snap := GetScratch[int32](m, len(s.act))
	for sub := 2; sub <= n; sub *= 2 {
		sparseMergeBlocks(m, s, sub, less, snap)
	}
	PutScratch(m, snap)
}

// SparseCompact packs the active items to the front of the machine,
// preserving order — dense counterpart Compact on the whole machine.
// Host work O(k).
func SparseCompact[T any](m *M, s *Sparse[T]) {
	n := s.Len()
	defer closeSpan(pspan(m, "compact", n))
	k := len(s.act)
	m.ChargeLocal(1)        // write the 0/1 occupancy ranks
	sparseScanCharges(m, n) // rank prefix sums
	m.ChargeLocal(1)        // mark the segment base
	sparseScanCharges(m, n) // flood the base index
	src := GetScratch[int](m, k)
	dst := GetScratch[int](m, k)
	for idx, p := range s.act {
		src[idx] = int(p)
		dst[idx] = idx
	}
	m.ChargeRoute(src, dst)
	val, occ := s.f.Val, s.f.Occ
	for idx, p := range s.act {
		val[idx] = val[p] // idx ≤ p: ascending in-place move is safe
	}
	for _, p := range s.act {
		if int(p) >= k {
			occ[p] = false
		}
	}
	for i := 0; i < k; i++ {
		occ[i] = true
	}
	PutScratch(m, dst)
	PutScratch(m, src)
	s.rebuildRange(0, k)
}

// SparseShiftWithin shifts every item to PE i+delta within aligned
// blocks of the given size, in place — dense counterpart ShiftWithin
// (which writes a fresh output file instead). Items shifted across a
// block boundary or off the machine are dropped. Host work O(k).
func SparseShiftWithin[T any](m *M, s *Sparse[T], block, delta int) {
	n := s.Len()
	k := len(s.act)
	pos := GetScratch[int32](m, k)[:0]
	tmp := GetScratch[T](m, k)[:0]
	val, occ := s.f.Val, s.f.Occ
	for _, p32 := range s.act {
		p := int(p32)
		q := p + delta
		if q < 0 || q >= n || q/block != p/block {
			continue
		}
		pos = append(pos, int32(q))
		tmp = append(tmp, val[p])
	}
	for _, p := range s.act {
		occ[p] = false
	}
	for idx, q := range pos {
		val[q] = tmp[idx]
		occ[q] = true
	}
	s.act = append(s.act[:0], pos...) // ascending order is preserved
	m.chargeShift(delta, len(pos))
	PutScratch(m, tmp)
	PutScratch(m, pos)
}

// SparseRoute moves the item at PE i to dest[i] (−1 to drop) — dense
// counterpart Route. dest must be injective on the active indices; only
// the active entries of dest are read, so host work is O(k log k).
func SparseRoute[T any](m *M, s *Sparse[T], dest []int) {
	n := s.Len()
	defer closeSpan(pspan(m, "route", n))
	k := len(s.act)
	src := GetScratch[int](m, k)[:0]
	dst := GetScratch[int](m, k)[:0]
	tmp := GetScratch[T](m, k)[:0]
	val, occ := s.f.Val, s.f.Occ
	for _, p32 := range s.act {
		p := int(p32)
		if dest[p] < 0 {
			continue
		}
		src = append(src, p)
		dst = append(dst, dest[p])
		tmp = append(tmp, val[p])
	}
	// Vacate every old position — items routed to −1 are dropped, like
	// the dense Route — before landing the moved items.
	for _, p := range s.act {
		occ[p] = false
	}
	newAct := s.act[:0]
	for _, d := range dst {
		newAct = append(newAct, int32(d))
	}
	slices.Sort(newAct)
	for i := 1; i < len(newAct); i++ {
		if newAct[i] == newAct[i-1] {
			panic("machine: Route destination collision")
		}
	}
	m.ChargeRoute(src, dst)
	for idx, d := range dst {
		val[d] = tmp[idx]
		occ[d] = true
	}
	s.act = newAct
	PutScratch(m, tmp)
	PutScratch(m, dst)
	PutScratch(m, src)
}
