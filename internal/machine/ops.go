package machine

// This file implements the fundamental data movement operations of §2.6
// (Table 1) as generic primitives over register files. A register file is
// a slice with one entry per PE; Reg.Ok distinguishes PEs that hold a data
// item from empty PEs (the paper allows strings with fewer items than
// PEs). Segments ("strings of processors", §2.2/§2.3) are described by a
// boolean segment-start mask; all segmented operations run in every
// string simultaneously, as the paper requires ("there are multiple
// strings in which the operations are to be performed in parallel").
//
// Allocation discipline: every primitive draws its O(n) scratch from the
// machine's arena (arena.go) and releases it before returning, and each
// per-PE round body is a named function — not a closure — invoked
// directly on the serial path and wrapped in a closure only when the
// worker-pool backend (WithParallel) shards it. A warm machine therefore
// runs Scan/Spread/Semigroup/Sort/Compact/Route/ShiftWithin without
// touching the heap at all (asserted by alloc_test.go, measured by
// bench_perf_test.go).

import (
	"strconv"

	"dyncg/internal/par"
)

// pspan opens a primitive-level span on the attached observer (nil-check
// fast path: zero work when tracing is off). Callers must invoke the
// returned closer; attribute construction only happens when observed.
func pspan(m *M, name string, size int) func() {
	if m.obs == nil {
		return nil
	}
	m.obs.SpanBegin(name, []string{"n", strconv.Itoa(size)})
	return m.obs.SpanEnd
}

func closeSpan(end func()) {
	if end != nil {
		end()
	}
}

// addInt is the shard-count combiner of every par.Reduce below.
func addInt(a, b int) int { return a + b }

// Reg is one PE's register: a value and a validity flag.
type Reg[T any] struct {
	V  T
	Ok bool
}

// Some returns an occupied register.
func Some[T any](v T) Reg[T] { return Reg[T]{V: v, Ok: true} }

// None returns an empty register.
func None[T any]() Reg[T] { return Reg[T]{} }

// WholeMachine returns the segment mask describing a single string
// spanning the entire machine.
func WholeMachine(n int) []bool {
	seg := make([]bool, n)
	if n > 0 {
		seg[0] = true
	}
	return seg
}

// BlockSegments returns the mask of aligned segments of the given size.
func BlockSegments(n, block int) []bool {
	seg := make([]bool, n)
	for i := 0; i < n; i += block {
		seg[i] = true
	}
	return seg
}

// --- Parallel prefix (segmented scan) -------------------------------------

// ScanDir selects the scan direction.
type ScanDir int

// Scan directions.
const (
	Forward  ScanDir = iota // prefixes p_i = x_1 ∗ … ∗ x_i  (§2.6)
	Backward                // suffixes
)

// scanRound is the per-PE body of one doubling round of Scan: PE i reads
// only regs/fl (stable within the round) and writes only next[i] /
// nextFl[i], so shards are disjoint.
func scanRound[T any](regs, next []Reg[T], fl, nextFl []bool, off int, dir ScanDir, op func(a, b T) T, lo, hi int) int {
	n := len(regs)
	msgs := 0
	for i := lo; i < hi; i++ {
		var j int
		if dir == Forward {
			j = i - off
		} else {
			j = i + off
		}
		if j < 0 || j >= n || fl[i] {
			continue
		}
		msgs++
		next[i] = combine(regs[j], regs[i], dir, op)
		nextFl[i] = fl[i] || fl[j]
	}
	return msgs
}

// Scan performs a segmented inclusive scan with the associative operation
// op, in Θ(√n) mesh / Θ(log n) hypercube time (Table 1: parallel prefix).
// Empty registers act as identity elements. The result is written in
// place; each PE ends with the combined value of all items from its
// segment boundary through itself.
//
// A nil op is the flood mode: when both registers are occupied the
// neighbour's value wins, which spreads each segment's boundary value
// across the segment. Spread, Semigroup, and Compact use it internally —
// a named nil beats a func literal here because closures materialised
// inside generic functions carry the instantiation dictionary and hence
// heap-allocate per call, the only remaining allocation on these paths.
func Scan[T any](m *M, regs []Reg[T], segStart []bool, dir ScanDir, op func(a, b T) T) {
	defer closeSpan(pspan(m, "prefix", len(regs)))
	n := len(regs)
	fl := GetScratch[bool](m, n)
	if dir == Forward {
		copy(fl, segStart)
	} else {
		for i := 0; i < n; i++ {
			fl[i] = i+1 >= n || segStart[i+1]
		}
	}
	// The scan needs offsets up to the longest segment only: segmented
	// scans within blocks of size B cost Θ(√B) mesh / Θ(log B) hypercube,
	// which is what keeps Theorem 3.2's level costs geometric.
	maxSeg, run := 0, 0
	for i := 0; i < n; i++ {
		if segStart[i] {
			run = 0
		}
		run++
		if run > maxSeg {
			maxSeg = run
		}
	}
	if maxSeg > 1 {
		next := GetScratch[Reg[T]](m, n)
		nextFl := GetScratch[bool](m, n)
		for off := 1; off < maxSeg; off <<= 1 {
			copy(next, regs)
			copy(nextFl, fl)
			var msgs int
			if m.workers > 1 {
				off := off
				msgs = par.Reduce(m.workers, n, 0, func(lo, hi int) int {
					return scanRound(regs, next, fl, nextFl, off, dir, op, lo, hi)
				}, addInt)
			} else {
				msgs = scanRound(regs, next, fl, nextFl, off, dir, op, 0, n)
			}
			copy(regs, next)
			copy(fl, nextFl)
			m.chargeShift(off, msgs)
		}
		PutScratch(m, nextFl)
		PutScratch(m, next)
	}
	PutScratch(m, fl)
}

// combine merges a neighbour's partial result with the local one,
// treating empty registers as identity.
func combine[T any](neigh, local Reg[T], dir ScanDir, op func(a, b T) T) Reg[T] {
	switch {
	case !neigh.Ok:
		return local
	case !local.Ok:
		return neigh
	case op == nil: // flood mode: occupied neighbour wins
		return neigh
	case dir == Forward:
		return Some(op(neigh.V, local.V))
	default:
		return Some(op(local.V, neigh.V))
	}
}

// --- Broadcast -------------------------------------------------------------

// spreadFix resolves the two flood directions of Spread: prefer the
// forward (leftward) source where both exist. PE i writes only regs[i].
func spreadFix[T any](regs, fwd []Reg[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		if fwd[i].Ok {
			regs[i] = fwd[i]
		}
	}
}

// Spread gives every PE the value of the nearest occupied register within
// its segment: marked items flood in both directions. With exactly one
// marked item per string this is the broadcast operation of §2.6, costing
// Θ(√n) mesh / Θ(log n) hypercube time.
func Spread[T any](m *M, regs []Reg[T], segStart []bool) {
	defer closeSpan(pspan(m, "broadcast", len(regs)))
	n := len(regs)
	fwd := GetScratch[Reg[T]](m, n)
	copy(fwd, regs)
	Scan(m, fwd, segStart, Forward, nil)
	Scan(m, regs, segStart, Backward, nil)
	// Any PE left empty by both passes has no occupied register in its
	// segment.
	m.ChargeLocal(1)
	if m.workers > 1 {
		par.ForEach(m.workers, n, func(lo, hi int) {
			spreadFix(regs, fwd, lo, hi)
		})
	} else {
		spreadFix(regs, fwd, 0, n)
	}
	PutScratch(m, fwd)
}

// markLast marks each segment's last PE with its register value. PE i
// writes only marked[i].
func markLast[T any](marked, regs []Reg[T], segStart []bool, lo, hi int) {
	n := len(regs)
	for i := lo; i < hi; i++ {
		if i+1 >= n || segStart[i+1] {
			marked[i] = regs[i]
		}
	}
}

// Semigroup applies the associative operation to all items of each
// segment and delivers the result to every PE of the segment (§2.6:
// semigroup computation — min, max, sum, …).
func Semigroup[T any](m *M, regs []Reg[T], segStart []bool, op func(a, b T) T) {
	defer closeSpan(pspan(m, "semigroup", len(regs)))
	Scan(m, regs, segStart, Forward, op)
	// Totals now sit at each segment's last occupied PE; flood them back.
	n := len(regs)
	m.ChargeLocal(1)
	marked := GetScratch[Reg[T]](m, n)
	if m.workers > 1 {
		par.ForEach(m.workers, n, func(lo, hi int) {
			markLast(marked, regs, segStart, lo, hi)
		})
	} else {
		markLast(marked, regs, segStart, 0, n)
	}
	Scan(m, marked, segStart, Backward, nil)
	copy(regs, marked)
	PutScratch(m, marked)
}

// --- Bitonic merge and sort ------------------------------------------------

// ceRound is the per-PE body of one compare-exchange round. Each index
// belongs to exactly one pair (i, i ⊕ mask) and the pair is handled only
// from its smaller index, so writes are disjoint across shards even when
// a pair straddles a shard boundary.
func ceRound[T any](regs []Reg[T], mask, block int, less func(a, b T) bool, lo, hi int) int {
	n := len(regs)
	msgs := 0
	for i := lo; i < hi; i++ {
		j := i ^ mask
		if j <= i || j >= n || i/block != j/block {
			continue
		}
		msgs += 2
		if regLess(regs[j], regs[i], less) {
			regs[i], regs[j] = regs[j], regs[i]
		}
	}
	return msgs
}

// compareExchange performs one lock-step compare-exchange round: every
// PE pair (i, j = i ⊕ mask) within an aligned block orders its two items
// so the smaller lands on the smaller index. Empty registers sort after
// occupied ones.
func compareExchange[T any](m *M, regs []Reg[T], mask, block int, less func(a, b T) bool) {
	n := len(regs)
	var msgs int
	if m.workers > 1 {
		msgs = par.Reduce(m.workers, n, 0, func(lo, hi int) int {
			return ceRound(regs, mask, block, less, lo, hi)
		}, addInt)
	} else {
		msgs = ceRound(regs, mask, block, less, 0, n)
	}
	// Charge by the highest bit of the mask: the partner distance of a
	// multi-bit mask is bounded by (and realised at) its top bit under
	// both topologies' locality properties.
	b := 0
	for 1<<(b+1) <= mask {
		b++
	}
	m.chargeXOR(b, msgs)
}

func regLess[T any](a, b Reg[T], less func(x, y T) bool) bool {
	switch {
	case a.Ok && !b.Ok:
		return true
	case !a.Ok:
		return false
	default:
		return less(a.V, b.V)
	}
}

// MergeBlocks merges, within every aligned block of the given size, the
// two sorted halves of the block into one sorted block — the merge
// operation of §2.6 (Θ(√n) mesh, Θ(log n) hypercube for full-machine
// blocks). All blocks are processed in the same rounds.
func MergeBlocks[T any](m *M, regs []Reg[T], block int, less func(a, b T) bool) {
	if block < 2 {
		return
	}
	defer closeSpan(pspan(m, "merge", block))
	// First stage: compare i with its mirror in the block (i ⊕ (block−1)),
	// which turns ascending+ascending into two half-blocks each bitonic
	// and correctly split; the remaining stages are half-cleaners.
	compareExchange(m, regs, block-1, block, less)
	for mask := block / 4; mask >= 1; mask /= 2 {
		compareExchange(m, regs, mask, block, less)
	}
}

// SortBlocks sorts every aligned block of the given size by bitonic
// sort: Θ(√n) on the mesh (shuffled/proximity indexing) and Θ(log² n) on
// the hypercube for full-machine blocks (Table 1: sort). Empty registers
// gather at the tail of each block.
func SortBlocks[T any](m *M, regs []Reg[T], block int, less func(a, b T) bool) {
	defer closeSpan(pspan(m, "sort", block))
	for sub := 2; sub <= block; sub *= 2 {
		MergeBlocks(m, regs, sub, less)
	}
}

// Sort sorts the whole machine (one string).
func Sort[T any](m *M, regs []Reg[T], less func(a, b T) bool) {
	SortBlocks(m, regs, len(regs), less)
}

// --- Routing-based operations ----------------------------------------------

// rankOccupied writes each PE's occupancy count (0/1) for the rank
// prefix of Compact. PE i writes only counts[i].
func rankOccupied[T any](counts []Reg[int], regs []Reg[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		c := 0
		if regs[i].Ok {
			c = 1
		}
		counts[i] = Some(c)
	}
}

// markSegBase records each segment start's own index. PE i writes only
// segBase[i].
func markSegBase(segBase []Reg[int], segStart []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		if segStart[i] {
			segBase[i] = Some(i)
		}
	}
}

// Compact moves the occupied registers of each segment to the front of
// the segment, preserving order: a parallel-prefix rank computation plus
// one structured route (the "pack into a string" step used throughout
// §4–§5).
func Compact[T any](m *M, regs []Reg[T], segStart []bool) {
	defer closeSpan(pspan(m, "compact", len(regs)))
	n := len(regs)
	// Rank each occupied register within its segment (exclusive count).
	counts := GetScratch[Reg[int]](m, n)
	m.ChargeLocal(1)
	if m.workers > 1 {
		par.ForEach(m.workers, n, func(lo, hi int) {
			rankOccupied(counts, regs, lo, hi)
		})
	} else {
		rankOccupied(counts, regs, 0, n)
	}
	Scan(m, counts, segStart, Forward, addInt)
	segBase := GetScratch[Reg[int]](m, n)
	m.ChargeLocal(1)
	if m.workers > 1 {
		par.ForEach(m.workers, n, func(lo, hi int) {
			markSegBase(segBase, segStart, lo, hi)
		})
	} else {
		markSegBase(segBase, segStart, 0, n)
	}
	Scan(m, segBase, segStart, Forward, nil)
	out := GetScratch[Reg[T]](m, n)
	src := GetScratch[int](m, n)[:0]
	dst := GetScratch[int](m, n)[:0]
	for i := range regs {
		if !regs[i].Ok {
			continue
		}
		d := segBase[i].V + counts[i].V - 1
		src = append(src, i)
		dst = append(dst, d)
		out[d] = regs[i]
	}
	m.ChargeRoute(src, dst)
	copy(regs, out)
	PutScratch(m, dst)
	PutScratch(m, src)
	PutScratch(m, out)
	PutScratch(m, segBase)
	PutScratch(m, counts)
}

// Route moves item i to dest[i] (−1 to drop). dest must be injective.
// It is charged as one structured route; callers only use monotone or
// block-local patterns that admit congestion-free greedy routing.
func Route[T any](m *M, regs []Reg[T], dest []int) {
	defer closeSpan(pspan(m, "route", len(regs)))
	n := len(regs)
	out := GetScratch[Reg[T]](m, n)
	src := GetScratch[int](m, n)[:0]
	dst := GetScratch[int](m, n)[:0]
	for i := range regs {
		if !regs[i].Ok || dest[i] < 0 {
			continue
		}
		if out[dest[i]].Ok {
			panic("machine: Route destination collision")
		}
		out[dest[i]] = regs[i]
		src = append(src, i)
		dst = append(dst, dest[i])
	}
	m.ChargeRoute(src, dst)
	copy(regs, out)
	PutScratch(m, dst)
	PutScratch(m, src)
	PutScratch(m, out)
}

// shiftRound is the per-PE body of ShiftWithin: PE i writes only out[i];
// regs is read-only for the round.
func shiftRound[T any](out, regs []Reg[T], block, delta, lo, hi int) int {
	n := len(regs)
	msgs := 0
	for i := lo; i < hi; i++ {
		j := i - delta // the PE whose value lands here
		if j < 0 || j >= n || j/block != i/block || !regs[j].Ok {
			continue
		}
		out[i] = regs[j]
		msgs++
	}
	return msgs
}

// ShiftWithin returns what each PE receives when every PE sends its
// register to PE i+delta, with transfers confined to aligned blocks of
// the given size (one shift communication round). The result is drawn
// from the machine's scratch arena: callers that are done with it may
// release it with PutScratch to keep the enclosing loop allocation-free
// (or simply drop it — an unreleased buffer is garbage-collected).
func ShiftWithin[T any](m *M, regs []Reg[T], block, delta int) []Reg[T] {
	n := len(regs)
	out := GetScratch[Reg[T]](m, n)
	var msgs int
	if m.workers > 1 {
		msgs = par.Reduce(m.workers, n, 0, func(lo, hi int) int {
			return shiftRound(out, regs, block, delta, lo, hi)
		}, addInt)
	} else {
		msgs = shiftRound(out, regs, block, delta, 0, n)
	}
	m.chargeShift(delta, msgs)
	return out
}

// Count returns, to the caller (not the PEs), the number of occupied
// registers; it is free of simulated cost and used by test/driver code.
func Count[T any](regs []Reg[T]) int {
	c := 0
	for _, r := range regs {
		if r.Ok {
			c++
		}
	}
	return c
}

// Gather returns the occupied register values in index order — a
// zero-cost observation for drivers and tests, not a machine operation.
func Gather[T any](regs []Reg[T]) []T {
	var out []T
	for _, r := range regs {
		if r.Ok {
			out = append(out, r.V)
		}
	}
	return out
}

// Scatter places vals one per PE from PE 0 upward — the paper's input
// convention ("no processor contains more than one of the functions",
// §2.4). Zero simulated cost: it is the initial data layout.
func Scatter[T any](n int, vals []T) []Reg[T] {
	if len(vals) > n {
		panic("machine: more values than PEs")
	}
	regs := make([]Reg[T], n)
	for i, v := range vals {
		regs[i] = Some(v)
	}
	return regs
}
