package machine

// This file is the record-layout ([]Reg[T]) surface of the fundamental
// data movement operations of §2.6 (Table 1). A register file is a slice
// with one entry per PE; Reg.Ok distinguishes PEs that hold a data item
// from empty PEs (the paper allows strings with fewer items than PEs).
// Segments ("strings of processors", §2.2/§2.3) are described by a
// boolean segment-start mask; all segmented operations run in every
// string simultaneously, as the paper requires.
//
// Since the columnar refactor the implementations live in colops.go:
// each primitive here splits its register file into a struct-of-arrays
// colstore.File drawn from the machine's arena, runs the columnar
// primitive, and joins the columns back — including the stale values of
// empty registers, which the old record implementation propagated
// byte-for-byte through swaps and copies and which callers may observe.
// The split/join bridges are charge-free host work, so spans, Stats, and
// the observer round stream are identical to both the columnar entry
// points and the pre-refactor record implementation (pinned by the
// columnardiff battery in the repository root).
//
// Allocation discipline is unchanged: every primitive draws its O(n)
// scratch from the machine's arena (arena.go) and releases it before
// returning, and each per-PE round body is a named function — not a
// closure — invoked directly on the serial path and wrapped in a closure
// only when the worker-pool backend (WithParallel) shards it. A warm
// machine runs Scan/Spread/Semigroup/Sort/Compact/Route/ShiftWithin
// without touching the heap at all (asserted by alloc_test.go, measured
// by bench_perf_test.go).

import "strconv"

// pspan opens a primitive-level span on the attached observer (nil-check
// fast path: zero work when tracing is off). Callers must invoke the
// returned closer; attribute construction only happens when observed.
func pspan(m *M, name string, size int) func() {
	if m.obs == nil {
		return nil
	}
	m.obs.SpanBegin(name, []string{"n", strconv.Itoa(size)})
	return m.obs.SpanEnd
}

func closeSpan(end func()) {
	if end != nil {
		end()
	}
}

// addInt is the shard-count combiner of every par.Reduce in colops.go.
func addInt(a, b int) int { return a + b }

// Reg is one PE's register: a value and a validity flag.
type Reg[T any] struct {
	V  T
	Ok bool
}

// Some returns an occupied register.
func Some[T any](v T) Reg[T] { return Reg[T]{V: v, Ok: true} }

// None returns an empty register.
func None[T any]() Reg[T] { return Reg[T]{} }

// WholeMachine returns the segment mask describing a single string
// spanning the entire machine.
func WholeMachine(n int) []bool {
	seg := make([]bool, n)
	if n > 0 {
		seg[0] = true
	}
	return seg
}

// BlockSegments returns the mask of aligned segments of the given size.
func BlockSegments(n, block int) []bool {
	seg := make([]bool, n)
	for i := 0; i < n; i += block {
		seg[i] = true
	}
	return seg
}

// ScanDir selects the scan direction.
type ScanDir int

// Scan directions.
const (
	Forward  ScanDir = iota // prefixes p_i = x_1 ∗ … ∗ x_i  (§2.6)
	Backward                // suffixes
)

// Scan performs a segmented inclusive scan with the associative operation
// op, in Θ(√n) mesh / Θ(log n) hypercube time (Table 1: parallel prefix).
// Empty registers act as identity elements. The result is written in
// place; each PE ends with the combined value of all items from its
// segment boundary through itself.
//
// A nil op is the flood mode: when both registers are occupied the
// neighbour's value wins, which spreads each segment's boundary value
// across the segment. Spread, Semigroup, and Compact use it internally —
// a named nil beats a func literal here because closures materialised
// inside generic functions carry the instantiation dictionary and hence
// heap-allocate per call, the only remaining allocation on these paths.
func Scan[T any](m *M, regs []Reg[T], segStart []bool, dir ScanDir, op func(a, b T) T) {
	f := splitRegs(m, regs)
	ScanCols(m, f, segStart, dir, op)
	joinRegs(f, regs)
	PutCols(m, f)
}

// Spread gives every PE the value of the nearest occupied register within
// its segment: marked items flood in both directions. With exactly one
// marked item per string this is the broadcast operation of §2.6, costing
// Θ(√n) mesh / Θ(log n) hypercube time.
func Spread[T any](m *M, regs []Reg[T], segStart []bool) {
	f := splitRegs(m, regs)
	SpreadCols(m, f, segStart)
	joinRegs(f, regs)
	PutCols(m, f)
}

// Semigroup applies the associative operation to all items of each
// segment and delivers the result to every PE of the segment (§2.6:
// semigroup computation — min, max, sum, …).
func Semigroup[T any](m *M, regs []Reg[T], segStart []bool, op func(a, b T) T) {
	f := splitRegs(m, regs)
	SemigroupCols(m, f, segStart, op)
	joinRegs(f, regs)
	PutCols(m, f)
}

// MergeBlocks merges, within every aligned block of the given size, the
// two sorted halves of the block into one sorted block — the merge
// operation of §2.6 (Θ(√n) mesh, Θ(log n) hypercube for full-machine
// blocks). All blocks are processed in the same rounds.
func MergeBlocks[T any](m *M, regs []Reg[T], block int, less func(a, b T) bool) {
	if block < 2 {
		return
	}
	f := splitRegs(m, regs)
	MergeBlocksCols(m, f, block, less)
	joinRegs(f, regs)
	PutCols(m, f)
}

// SortBlocks sorts every aligned block of the given size by bitonic
// sort: Θ(√n) on the mesh (shuffled/proximity indexing) and Θ(log² n) on
// the hypercube for full-machine blocks (Table 1: sort). Empty registers
// gather at the tail of each block.
func SortBlocks[T any](m *M, regs []Reg[T], block int, less func(a, b T) bool) {
	f := splitRegs(m, regs)
	SortBlocksCols(m, f, block, less)
	joinRegs(f, regs)
	PutCols(m, f)
}

// Sort sorts the whole machine (one string).
func Sort[T any](m *M, regs []Reg[T], less func(a, b T) bool) {
	SortBlocks(m, regs, len(regs), less)
}

// Compact moves the occupied registers of each segment to the front of
// the segment, preserving order: a parallel-prefix rank computation plus
// one structured route (the "pack into a string" step used throughout
// §4–§5).
func Compact[T any](m *M, regs []Reg[T], segStart []bool) {
	f := splitRegs(m, regs)
	CompactCols(m, f, segStart)
	joinRegs(f, regs)
	PutCols(m, f)
}

// Route moves item i to dest[i] (−1 to drop). dest must be injective.
// It is charged as one structured route; callers only use monotone or
// block-local patterns that admit congestion-free greedy routing.
func Route[T any](m *M, regs []Reg[T], dest []int) {
	f := splitRegs(m, regs)
	RouteCols(m, f, dest)
	joinRegs(f, regs)
	PutCols(m, f)
}

// ShiftWithin returns what each PE receives when every PE sends its
// register to PE i+delta, with transfers confined to aligned blocks of
// the given size (one shift communication round). The result is drawn
// from the machine's scratch arena: callers that are done with it may
// release it with PutScratch to keep the enclosing loop allocation-free
// (or simply drop it — an unreleased buffer is garbage-collected).
func ShiftWithin[T any](m *M, regs []Reg[T], block, delta int) []Reg[T] {
	f := splitRegs(m, regs)
	shifted := ShiftWithinCols(m, f, block, delta)
	out := GetScratch[Reg[T]](m, len(regs))
	joinRegs(shifted, out)
	PutCols(m, shifted)
	PutCols(m, f)
	return out
}

// Count returns, to the caller (not the PEs), the number of occupied
// registers; it is free of simulated cost and used by test/driver code.
func Count[T any](regs []Reg[T]) int {
	c := 0
	for _, r := range regs {
		if r.Ok {
			c++
		}
	}
	return c
}

// Gather returns the occupied register values in index order — a
// zero-cost observation for drivers and tests, not a machine operation.
func Gather[T any](regs []Reg[T]) []T {
	var out []T
	for _, r := range regs {
		if r.Ok {
			out = append(out, r.V)
		}
	}
	return out
}

// Scatter places vals one per PE from PE 0 upward — the paper's input
// convention ("no processor contains more than one of the functions",
// §2.4). Zero simulated cost: it is the initial data layout.
func Scatter[T any](n int, vals []T) []Reg[T] {
	if len(vals) > n {
		panic("machine: more values than PEs")
	}
	regs := make([]Reg[T], n)
	for i, v := range vals {
		regs[i] = Some(v)
	}
	return regs
}
