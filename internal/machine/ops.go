package machine

// This file implements the fundamental data movement operations of §2.6
// (Table 1) as generic primitives over register files. A register file is
// a slice with one entry per PE; Reg.Ok distinguishes PEs that hold a data
// item from empty PEs (the paper allows strings with fewer items than
// PEs). Segments ("strings of processors", §2.2/§2.3) are described by a
// boolean segment-start mask; all segmented operations run in every
// string simultaneously, as the paper requires ("there are multiple
// strings in which the operations are to be performed in parallel").

import (
	"strconv"

	"dyncg/internal/par"
)

// pspan opens a primitive-level span on the attached observer (nil-check
// fast path: zero work when tracing is off). Callers must invoke the
// returned closer; attribute construction only happens when observed.
func pspan(m *M, name string, size int) func() {
	if m.obs == nil {
		return nil
	}
	m.obs.SpanBegin(name, []string{"n", strconv.Itoa(size)})
	return m.obs.SpanEnd
}

func closeSpan(end func()) {
	if end != nil {
		end()
	}
}

// Reg is one PE's register: a value and a validity flag.
type Reg[T any] struct {
	V  T
	Ok bool
}

// Some returns an occupied register.
func Some[T any](v T) Reg[T] { return Reg[T]{V: v, Ok: true} }

// None returns an empty register.
func None[T any]() Reg[T] { return Reg[T]{} }

// WholeMachine returns the segment mask describing a single string
// spanning the entire machine.
func WholeMachine(n int) []bool {
	seg := make([]bool, n)
	if n > 0 {
		seg[0] = true
	}
	return seg
}

// BlockSegments returns the mask of aligned segments of the given size.
func BlockSegments(n, block int) []bool {
	seg := make([]bool, n)
	for i := 0; i < n; i += block {
		seg[i] = true
	}
	return seg
}

// --- Parallel prefix (segmented scan) -------------------------------------

// ScanDir selects the scan direction.
type ScanDir int

// Scan directions.
const (
	Forward  ScanDir = iota // prefixes p_i = x_1 ∗ … ∗ x_i  (§2.6)
	Backward                // suffixes
)

// Scan performs a segmented inclusive scan with the associative operation
// op, in Θ(√n) mesh / Θ(log n) hypercube time (Table 1: parallel prefix).
// Empty registers act as identity elements. The result is written in
// place; each PE ends with the combined value of all items from its
// segment boundary through itself.
func Scan[T any](m *M, regs []Reg[T], segStart []bool, dir ScanDir, op func(a, b T) T) {
	defer closeSpan(pspan(m, "prefix", len(regs)))
	n := len(regs)
	fl := make([]bool, n)
	if dir == Forward {
		copy(fl, segStart)
	} else {
		for i := 0; i < n; i++ {
			fl[i] = i+1 >= n || segStart[i+1]
		}
	}
	// The scan needs offsets up to the longest segment only: segmented
	// scans within blocks of size B cost Θ(√B) mesh / Θ(log B) hypercube,
	// which is what keeps Theorem 3.2's level costs geometric.
	maxSeg, run := 0, 0
	for i := 0; i < n; i++ {
		if segStart[i] {
			run = 0
		}
		run++
		if run > maxSeg {
			maxSeg = run
		}
	}
	next := make([]Reg[T], n)
	nextFl := make([]bool, n)
	for off := 1; off < maxSeg; off <<= 1 {
		copy(next, regs)
		copy(nextFl, fl)
		// Per-PE round body: PE i reads only regs/fl (stable within the
		// round) and writes only next[i]/nextFl[i], so shards are disjoint.
		off, dir := off, dir
		msgs := par.Reduce(m.workers, n, 0, func(lo, hi int) int {
			msgs := 0
			for i := lo; i < hi; i++ {
				var j int
				if dir == Forward {
					j = i - off
				} else {
					j = i + off
				}
				if j < 0 || j >= n || fl[i] {
					continue
				}
				msgs++
				next[i] = combine(regs[j], regs[i], dir, op)
				nextFl[i] = fl[i] || fl[j]
			}
			return msgs
		}, func(a, b int) int { return a + b })
		regs2 := regs
		copy(regs2, next)
		copy(fl, nextFl)
		m.chargeShift(off, msgs)
	}
}

// combine merges a neighbour's partial result with the local one,
// treating empty registers as identity.
func combine[T any](neigh, local Reg[T], dir ScanDir, op func(a, b T) T) Reg[T] {
	switch {
	case !neigh.Ok:
		return local
	case !local.Ok:
		return neigh
	case dir == Forward:
		return Some(op(neigh.V, local.V))
	default:
		return Some(op(local.V, neigh.V))
	}
}

// --- Broadcast -------------------------------------------------------------

// Spread gives every PE the value of the nearest occupied register within
// its segment: marked items flood in both directions. With exactly one
// marked item per string this is the broadcast operation of §2.6, costing
// Θ(√n) mesh / Θ(log n) hypercube time.
func Spread[T any](m *M, regs []Reg[T], segStart []bool) {
	defer closeSpan(pspan(m, "broadcast", len(regs)))
	fwd := make([]Reg[T], len(regs))
	copy(fwd, regs)
	keep := func(a, b T) T { return a }
	Scan(m, fwd, segStart, Forward, keep)
	keepR := func(a, b T) T { return b }
	Scan(m, regs, segStart, Backward, keepR)
	// Prefer the forward (leftward) source where both exist; any PE left
	// empty by both passes has no occupied register in its segment.
	m.ChargeLocal(1)
	par.ForEach(m.workers, len(regs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if fwd[i].Ok {
				regs[i] = fwd[i]
			}
		}
	})
}

// Semigroup applies the associative operation to all items of each
// segment and delivers the result to every PE of the segment (§2.6:
// semigroup computation — min, max, sum, …).
func Semigroup[T any](m *M, regs []Reg[T], segStart []bool, op func(a, b T) T) {
	defer closeSpan(pspan(m, "semigroup", len(regs)))
	Scan(m, regs, segStart, Forward, op)
	// Totals now sit at each segment's last occupied PE; flood them back.
	n := len(regs)
	m.ChargeLocal(1)
	marked := make([]Reg[T], n)
	par.ForEach(m.workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lastOfSeg := i+1 >= n || segStart[i+1]
			if lastOfSeg {
				marked[i] = regs[i]
			}
		}
	})
	keepR := func(a, b T) T { return b }
	Scan(m, marked, segStart, Backward, keepR)
	copy(regs, marked)
}

// --- Bitonic merge and sort ------------------------------------------------

// compareExchange performs one lock-step compare-exchange round: every
// PE pair (i, j = i ⊕ mask) orders its two items so the smaller lands on
// the smaller index. Empty registers sort after occupied ones.
func compareExchange[T any](m *M, regs []Reg[T], mask int, blockOf func(i int) int, less func(a, b T) bool) {
	n := len(regs)
	// Each index belongs to exactly one pair (i, i ⊕ mask) and the pair is
	// handled only from its smaller index, so writes are disjoint across
	// shards even when a pair straddles a shard boundary.
	msgs := par.Reduce(m.workers, n, 0, func(lo, hi int) int {
		msgs := 0
		for i := lo; i < hi; i++ {
			j := i ^ mask
			if j <= i || j >= n || blockOf(i) != blockOf(j) {
				continue
			}
			msgs += 2
			if regLess(regs[j], regs[i], less) {
				regs[i], regs[j] = regs[j], regs[i]
			}
		}
		return msgs
	}, func(a, b int) int { return a + b })
	// Charge by the highest bit of the mask: the partner distance of a
	// multi-bit mask is bounded by (and realised at) its top bit under
	// both topologies' locality properties.
	b := 0
	for 1<<(b+1) <= mask {
		b++
	}
	m.chargeXOR(b, msgs)
}

func regLess[T any](a, b Reg[T], less func(x, y T) bool) bool {
	switch {
	case a.Ok && !b.Ok:
		return true
	case !a.Ok:
		return false
	default:
		return less(a.V, b.V)
	}
}

// MergeBlocks merges, within every aligned block of the given size, the
// two sorted halves of the block into one sorted block — the merge
// operation of §2.6 (Θ(√n) mesh, Θ(log n) hypercube for full-machine
// blocks). All blocks are processed in the same rounds.
func MergeBlocks[T any](m *M, regs []Reg[T], block int, less func(a, b T) bool) {
	if block < 2 {
		return
	}
	defer closeSpan(pspan(m, "merge", block))
	blockOf := func(i int) int { return i / block }
	// First stage: compare i with its mirror in the block (i ⊕ (block−1)),
	// which turns ascending+ascending into two half-blocks each bitonic
	// and correctly split; the remaining stages are half-cleaners.
	compareExchange(m, regs, block-1, blockOf, less)
	for mask := block / 4; mask >= 1; mask /= 2 {
		compareExchange(m, regs, mask, blockOf, less)
	}
}

// SortBlocks sorts every aligned block of the given size by bitonic
// sort: Θ(√n) on the mesh (shuffled/proximity indexing) and Θ(log² n) on
// the hypercube for full-machine blocks (Table 1: sort). Empty registers
// gather at the tail of each block.
func SortBlocks[T any](m *M, regs []Reg[T], block int, less func(a, b T) bool) {
	defer closeSpan(pspan(m, "sort", block))
	for sub := 2; sub <= block; sub *= 2 {
		MergeBlocks(m, regs, sub, less)
	}
}

// Sort sorts the whole machine (one string).
func Sort[T any](m *M, regs []Reg[T], less func(a, b T) bool) {
	SortBlocks(m, regs, len(regs), less)
}

// --- Routing-based operations ----------------------------------------------

// Compact moves the occupied registers of each segment to the front of
// the segment, preserving order: a parallel-prefix rank computation plus
// one structured route (the "pack into a string" step used throughout
// §4–§5).
func Compact[T any](m *M, regs []Reg[T], segStart []bool) {
	defer closeSpan(pspan(m, "compact", len(regs)))
	n := len(regs)
	// Rank each occupied register within its segment (exclusive count).
	counts := make([]Reg[int], n)
	m.ChargeLocal(1)
	par.ForEach(m.workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := 0
			if regs[i].Ok {
				c = 1
			}
			counts[i] = Some(c)
		}
	})
	Scan(m, counts, segStart, Forward, func(a, b int) int { return a + b })
	segBase := make([]Reg[int], n)
	m.ChargeLocal(1)
	par.ForEach(m.workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if segStart[i] {
				segBase[i] = Some(i)
			}
		}
	})
	Scan(m, segBase, segStart, Forward, func(a, b int) int { return a })
	var src, dst []int
	out := make([]Reg[T], n)
	for i := range regs {
		if !regs[i].Ok {
			continue
		}
		d := segBase[i].V + counts[i].V - 1
		src = append(src, i)
		dst = append(dst, d)
		out[d] = regs[i]
	}
	m.ChargeRoute(src, dst)
	copy(regs, out)
}

// Route moves item i to dest[i] (−1 to drop). dest must be injective.
// It is charged as one structured route; callers only use monotone or
// block-local patterns that admit congestion-free greedy routing.
func Route[T any](m *M, regs []Reg[T], dest []int) {
	defer closeSpan(pspan(m, "route", len(regs)))
	n := len(regs)
	out := make([]Reg[T], n)
	var src, dst []int
	for i := range regs {
		if !regs[i].Ok || dest[i] < 0 {
			continue
		}
		if out[dest[i]].Ok {
			panic("machine: Route destination collision")
		}
		out[dest[i]] = regs[i]
		src = append(src, i)
		dst = append(dst, dest[i])
	}
	m.ChargeRoute(src, dst)
	copy(regs, out)
}

// ShiftWithin returns what each PE receives when every PE sends its
// register to PE i+delta, with transfers confined to aligned blocks of
// the given size (one shift communication round).
func ShiftWithin[T any](m *M, regs []Reg[T], block, delta int) []Reg[T] {
	n := len(regs)
	out := make([]Reg[T], n)
	// PE i writes only out[i]; regs is read-only for the round.
	msgs := par.Reduce(m.workers, n, 0, func(lo, hi int) int {
		msgs := 0
		for i := lo; i < hi; i++ {
			j := i - delta // the PE whose value lands here
			if j < 0 || j >= n || j/block != i/block || !regs[j].Ok {
				continue
			}
			out[i] = regs[j]
			msgs++
		}
		return msgs
	}, func(a, b int) int { return a + b })
	m.chargeShift(delta, msgs)
	return out
}

// Count returns, to the caller (not the PEs), the number of occupied
// registers; it is free of simulated cost and used by test/driver code.
func Count[T any](regs []Reg[T]) int {
	c := 0
	for _, r := range regs {
		if r.Ok {
			c++
		}
	}
	return c
}

// Gather returns the occupied register values in index order — a
// zero-cost observation for drivers and tests, not a machine operation.
func Gather[T any](regs []Reg[T]) []T {
	var out []T
	for _, r := range regs {
		if r.Ok {
			out = append(out, r.V)
		}
	}
	return out
}

// Scatter places vals one per PE from PE 0 upward — the paper's input
// convention ("no processor contains more than one of the functions",
// §2.4). Zero simulated cost: it is the initial data layout.
func Scatter[T any](n int, vals []T) []Reg[T] {
	if len(vals) > n {
		panic("machine: more values than PEs")
	}
	regs := make([]Reg[T], n)
	for i, v := range vals {
		regs[i] = Some(v)
	}
	return regs
}
