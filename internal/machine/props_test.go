package machine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dyncg/internal/hypercube"
	"dyncg/internal/mesh"
)

// Property: Sort produces a permutation of its input, in order, on both
// topologies, for any input size ≤ machine and any values.
func TestSortPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		k := r.Intn(n + 1)
		vals := make([]int, k)
		for i := range vals {
			vals[i] = r.Intn(32) // duplicates likely
		}
		for _, topo := range []Topology{
			mesh.MustNew(n, mesh.Proximity), hypercube.MustNew(n),
		} {
			m := New(topo)
			regs := Scatter(n, vals)
			r.Shuffle(n, func(i, j int) { regs[i], regs[j] = regs[j], regs[i] })
			Sort(m, regs, func(a, b int) bool { return a < b })
			got := Gather(regs)
			want := append([]int{}, vals...)
			sort.Ints(want)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: segmented Scan equals the serial per-segment prefix for any
// segment layout and occupancy pattern.
func TestScanMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		regs := make([]Reg[int], n)
		seg := make([]bool, n)
		seg[0] = true
		for i := range regs {
			if r.Intn(3) > 0 {
				regs[i] = Some(r.Intn(100))
			}
			if i > 0 && r.Intn(5) == 0 {
				seg[i] = true
			}
		}
		// Serial oracle.
		want := make([]Reg[int], n)
		acc, accOk := 0, false
		for i := 0; i < n; i++ {
			if seg[i] {
				acc, accOk = 0, false
			}
			if regs[i].Ok {
				if accOk {
					acc += regs[i].V
				} else {
					acc, accOk = regs[i].V, true
				}
				want[i] = Some(acc)
			} else if accOk {
				want[i] = Some(acc)
			}
		}
		m := New(hypercube.MustNew(n))
		got := make([]Reg[int], n)
		copy(got, regs)
		Scan(m, got, seg, Forward, func(a, b int) int { return a + b })
		for i := range got {
			// Occupied positions must match the oracle exactly; empty
			// positions may or may not have been filled by the scan's
			// identity-skipping, so only compare where input was occupied.
			if regs[i].Ok && (got[i].V != want[i].V || !got[i].Ok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compact preserves the relative order and multiset of
// occupied values within every segment.
func TestCompactOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		block := []int{8, 16, 32, 64}[r.Intn(4)]
		regs := make([]Reg[int], n)
		var wantPerSeg [][]int
		for s := 0; s < n; s += block {
			var w []int
			for i := s; i < s+block; i++ {
				if r.Intn(2) == 0 {
					v := r.Intn(1000)
					regs[i] = Some(v)
					w = append(w, v)
				}
			}
			wantPerSeg = append(wantPerSeg, w)
		}
		m := New(mesh.MustNew(64, mesh.Proximity))
		Compact(m, regs, BlockSegments(n, block))
		for si, w := range wantPerSeg {
			base := si * block
			for i, v := range w {
				if !regs[base+i].Ok || regs[base+i].V != v {
					return false
				}
			}
			for i := len(w); i < block; i++ {
				if regs[base+i].Ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
