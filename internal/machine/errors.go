package machine

import "errors"

// ErrTooFewPEs reports that a machine is too small for the computation
// it was asked to run — the paper's algorithms each prescribe a minimum
// PE count (Θ(n) for the direct algorithms, Θ(λ(n, s)) for the
// envelope-based ones), and callers that size machines below it get an
// error wrapping this sentinel rather than a wrong answer. Test with
// errors.Is; the facade re-exports it as dyncg.ErrTooFewPEs.
var ErrTooFewPEs = errors.New("machine: too few PEs for the computation")
