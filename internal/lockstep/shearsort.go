package lockstep

import (
	"fmt"
	"math/bits"
)

// This file runs a genuinely two-dimensional program on the goroutine
// runtime: shearsort on a √n×√n mesh whose PEs may only talk to their
// lattice neighbours — the communication structure of Figure 1. It
// complements the linear-array programs (odd-even transposition,
// chain semigroup) by exercising row AND column links, and serves as the
// fidelity check for the vector simulator's mesh sorts.

// NewMesh2D returns a runtime whose legal links are the 4-neighbour
// lattice links of a side×side mesh in row-major layout.
func NewMesh2D(side int, mem func(id int) any) *Runtime {
	r := New(side*side, mem)
	r.adjacent = func(a, b int) bool {
		ar, ac := a/side, a%side
		br, bc := b/side, b%side
		dr, dc := ar-br, ac-bc
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		return dr+dc == 1
	}
	return r
}

// ShearSort sorts side² values into snake order (§2.2's snake-like
// indexing) on a lock-step side×side mesh of goroutine PEs: ⌈log₂ side⌉+1
// alternating phases of row sorts (snake direction) and column sorts,
// each phase side rounds of odd-even transposition over lattice links —
// the classic Θ(√n·log n) mesh sort, within a log factor of the
// simulator's bitonic Θ(√n).
func ShearSort(side int, vals []int) ([]int, error) {
	if len(vals) != side*side {
		return nil, fmt.Errorf("lockstep: %d values for a %d×%d mesh", len(vals), side, side)
	}
	type mem struct{ v int }
	r := NewMesh2D(side, func(id int) any { return &mem{v: vals[id]} })

	// One odd-even transposition round along rows (dir depends on row
	// parity: even rows ascend left→right, odd rows descend) or columns.
	exchange := func(rowPhase bool, parity int) error {
		step := func(pe *PE) map[int]Msg {
			m := pe.Mem.(*mem)
			row, col := pe.ID/side, pe.ID%side
			partner := -1
			if rowPhase {
				if (col+parity)%2 == 0 && col+1 < side {
					partner = pe.ID + 1
				} else if (col+parity)%2 == 1 && col-1 >= 0 {
					partner = pe.ID - 1
				}
			} else {
				if (row+parity)%2 == 0 && row+1 < side {
					partner = pe.ID + side
				} else if (row+parity)%2 == 1 && row-1 >= 0 {
					partner = pe.ID - side
				}
			}
			if partner < 0 {
				return nil
			}
			return map[int]Msg{partner: m.v}
		}
		if err := r.Run(1, step); err != nil {
			return err
		}
		// Resolve: each PE that sent also received its partner's value.
		resolve := func(pe *PE) map[int]Msg {
			m := pe.Mem.(*mem)
			row, col := pe.ID/side, pe.ID%side
			for from, raw := range pe.Recv {
				v := raw.(int)
				if rowPhase {
					fc := from % side
					// Within a row: even rows ascend left→right, odd rows
					// descend (snake order). This PE should end holding
					// the larger value iff it is the right neighbour in an
					// ascending row or the left neighbour in a descending
					// one.
					asc := row%2 == 0
					holdLarger := (fc < col) == asc
					if holdLarger {
						if v > m.v {
							m.v = v
						}
					} else {
						if v < m.v {
							m.v = v
						}
					}
				} else {
					fr := from / side
					if fr < row { // partner above: keep the larger here
						if v > m.v {
							m.v = v
						}
					} else {
						if v < m.v {
							m.v = v
						}
					}
				}
			}
			return nil
		}
		return r.Run(1, resolve)
	}

	phases := bits.Len(uint(side)) + 1
	for p := 0; p < phases; p++ {
		// Row phase: side rounds of odd-even transposition.
		for round := 0; round < side; round++ {
			if err := exchange(true, round%2); err != nil {
				return nil, err
			}
		}
		// Column phase.
		for round := 0; round < side; round++ {
			if err := exchange(false, round%2); err != nil {
				return nil, err
			}
		}
	}
	// Final row phase leaves the mesh in snake order.
	for round := 0; round < side; round++ {
		if err := exchange(true, round%2); err != nil {
			return nil, err
		}
	}
	out := make([]int, side*side)
	for i := range out {
		out[i] = r.PEState(i).(*mem).v
	}
	return out, nil
}

// SnakeToLinear reads a row-major mesh state in snake order.
func SnakeToLinear(side int, rowMajor []int) []int {
	out := make([]int, 0, len(rowMajor))
	for row := 0; row < side; row++ {
		if row%2 == 0 {
			for col := 0; col < side; col++ {
				out = append(out, rowMajor[row*side+col])
			}
		} else {
			for col := side - 1; col >= 0; col-- {
				out = append(out, rowMajor[row*side+col])
			}
		}
	}
	return out
}
