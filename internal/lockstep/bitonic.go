package lockstep

import (
	"fmt"
	"math/bits"

	"dyncg/internal/hypercube"
)

// This file extends the goroutine runtime from linear-array and mesh
// programs to the hypercube of §2.3: PEs carry the paper's labels, reside
// at the nodes given by the binary reflected Gray code, and may only talk
// along genuine hypercube edges (node numbers differing in exactly one
// bit). The program run on it is Batcher's bitonic sort in its classic
// single-bit form, where every compare-exchange partner i⊕2^b is one hop
// away — unlike internal/machine's vectorised MergeBlocks, whose mirror
// masks (block−1) span several dimensions per round and rely on the cost
// model to charge the multi-hop distance. The two implementations perform
// the same q(q+1)/2 compare-exchange rounds, which the tests cross-check
// against the simulator's Stats.

// NewHypercubeGray returns a runtime of 2^dim PEs where PE i carries the
// paper's label i and resides at node hypercube.Gray(i); legal links are
// the hypercube's edges, i.e. pairs of PEs whose *node numbers* differ in
// exactly one bit. Consecutive labels remain adjacent (the Gray-code
// property §2.3 exploits), so every linear-array program also runs
// unchanged on this runtime.
func NewHypercubeGray(dim int, mem func(id int) any) *Runtime {
	r := New(1<<dim, mem)
	r.adjacent = func(a, b int) bool {
		return bits.OnesCount(uint(hypercube.Gray(a)^hypercube.Gray(b))) == 1
	}
	return r
}

// BitonicSortHypercube sorts 2^dim values on a lock-step hypercube of
// goroutine PEs and returns the sorted sequence together with the number
// of compare-exchange rounds performed (q(q+1)/2 for q = dim).
//
// Bitonic position p lives at node p, i.e. on the PE labelled
// GrayInverse(p); the stage-(k, 2^b) partner of position p is p⊕2^b,
// whose node differs in exactly bit b — a single hypercube hop, so every
// message the program sends is validated against real edges by the
// runtime. Each compare-exchange round costs two supersteps: one to
// exchange values, one to resolve min/max locally.
func BitonicSortHypercube(dim int, vals []int) ([]int, int, error) {
	n := 1 << dim
	if len(vals) != n {
		return nil, 0, fmt.Errorf("lockstep: %d values for a 2^%d hypercube", len(vals), dim)
	}
	type mem struct{ v int }
	// PE labelled id holds bitonic position Gray(id) = its node number.
	r := NewHypercubeGray(dim, func(id int) any {
		return &mem{v: vals[hypercube.Gray(id)]}
	})

	rounds := 0
	for k := 2; k <= n; k <<= 1 {
		for jstep := k >> 1; jstep > 0; jstep >>= 1 {
			k, jstep := k, jstep
			send := func(pe *PE) map[int]Msg {
				p := hypercube.Gray(pe.ID)
				partner := hypercube.GrayInverse(p ^ jstep)
				return map[int]Msg{partner: pe.Mem.(*mem).v}
			}
			resolve := func(pe *PE) map[int]Msg {
				m := pe.Mem.(*mem)
				p := hypercube.Gray(pe.ID)
				for _, raw := range pe.Recv {
					v := raw.(int)
					// Ascending block iff the k bit of the position is
					// clear; the low side of the pair keeps the minimum in
					// an ascending block and the maximum in a descending
					// one.
					up := p&k == 0
					lowSide := p&jstep == 0
					if lowSide == up {
						if v < m.v {
							m.v = v
						}
					} else {
						if v > m.v {
							m.v = v
						}
					}
				}
				return nil
			}
			if err := r.Run(1, send); err != nil {
				return nil, 0, err
			}
			if err := r.Run(1, resolve); err != nil {
				return nil, 0, err
			}
			rounds++
		}
	}

	out := make([]int, n)
	for p := range out {
		out[p] = r.PEState(hypercube.GrayInverse(p)).(*mem).v
	}
	return out, rounds, nil
}
