package lockstep

import (
	"math/rand"
	"sort"
	"testing"

	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
)

func TestOddEvenTranspositionSort(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 8, 16, 33, 64} {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(1000)
		}
		got, err := OddEvenTranspositionSort(append([]int{}, vals...))
		if err != nil {
			t.Fatal(err)
		}
		want := append([]int{}, vals...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got %v, want %v", n, got, want)
			}
		}
	}
}

func TestChainSemigroup(t *testing.T) {
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	vals := []int{5, 2, 9, 1, 7, 3}
	got, err := ChainSemigroup(vals, min)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 1 {
			t.Fatalf("PE %d got %d, want 1", i, v)
		}
	}
	sum := func(a, b int) int { return a + b }
	got, err = ChainSemigroup([]int{1, 2, 3, 4}, sum)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 {
		t.Fatalf("sum = %d, want 10", got[0])
	}
}

func TestNonNeighbourSendRejected(t *testing.T) {
	r := New(4, nil)
	err := r.Run(1, func(pe *PE) map[int]Msg {
		if pe.ID == 0 {
			return map[int]Msg{3: "illegal"}
		}
		return nil
	})
	if err == nil {
		t.Fatal("non-neighbour send not rejected")
	}
}

func TestOffMachineSendRejected(t *testing.T) {
	r := New(4, nil)
	err := r.Run(1, func(pe *PE) map[int]Msg {
		if pe.ID == 3 {
			return map[int]Msg{4: "off the edge"}
		}
		return nil
	})
	if err == nil {
		t.Fatal("off-machine send not rejected")
	}
}

// TestCrossValidateWithVectorSimulator: the goroutine runtime and the
// cost-accounting simulator compute identical sorts and semigroup values
// on the same inputs (DESIGN.md S9).
func TestCrossValidateWithVectorSimulator(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 64
	vals := make([]int, n)
	for i := range vals {
		vals[i] = r.Intn(10000)
	}

	fromLockstep, err := OddEvenTranspositionSort(append([]int{}, vals...))
	if err != nil {
		t.Fatal(err)
	}

	for _, topo := range []machine.Topology{
		mesh.MustNew(n, mesh.Proximity),
		hypercube.MustNew(n),
	} {
		m := machine.New(topo)
		regs := machine.Scatter(n, vals)
		machine.Sort(m, regs, func(a, b int) bool { return a < b })
		fromVector := machine.Gather(regs)
		for i := range fromLockstep {
			if fromLockstep[i] != fromVector[i] {
				t.Fatalf("%s: divergence at %d: lockstep %v vs vector %v",
					topo.Name(), i, fromLockstep[i], fromVector[i])
			}
		}
	}

	// Semigroup cross-validation.
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	fromChain, err := ChainSemigroup(vals, min)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(hypercube.MustNew(n))
	regs := machine.Scatter(n, vals)
	machine.Semigroup(m, regs, machine.WholeMachine(n), min)
	for i := range regs {
		if regs[i].V != fromChain[i] {
			t.Fatalf("semigroup divergence at PE %d: %d vs %d",
				i, regs[i].V, fromChain[i])
		}
	}
}

// TestConcurrency: the runtime genuinely runs PEs as goroutines — a step
// that blocks until all PEs have entered would deadlock a sequential
// executor. We emulate that with a shared WaitGroup-free barrier via
// channel counting inside one superstep.
func TestConcurrency(t *testing.T) {
	n := 32
	entered := make(chan int, n)
	release := make(chan struct{})
	r := New(n, nil)
	done := make(chan error, 1)
	go func() {
		done <- r.Run(1, func(pe *PE) map[int]Msg {
			entered <- pe.ID
			<-release
			return nil
		})
	}()
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		seen[<-entered] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d distinct PEs entered concurrently", len(seen))
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
