// Package lockstep is a goroutine-per-PE realisation of the paper's SIMD
// machines: every processing element is a goroutine, every communication
// link is a channel, and execution proceeds in synchronous supersteps
// (compute → exchange → barrier), the way the MPP/CM-2 class machines of
// §1 operate.
//
// It exists for fidelity: internal/machine simulates the same algorithms
// as vectorised register-file operations with cost accounting (fast, used
// for the benchmark tables), while this package actually runs PEs
// concurrently and only lets messages travel along links between
// *consecutively indexed* PEs — legal single hops under both the mesh's
// proximity indexing (§2.2, property 1) and the hypercube's Gray-code
// labelling (§2.3), which is precisely why the paper chooses those
// orderings. Tests cross-validate the two implementations.
package lockstep

import (
	"fmt"
	"sync"
)

// Msg is a value exchanged between adjacent PEs in one superstep.
type Msg any

// PE is the per-processor state visible to a step function.
type PE struct {
	ID   int
	N    int
	Recv map[int]Msg // messages delivered at the end of the previous superstep
	Mem  any         // local memory
}

// Step is one superstep of a SIMD program: it may read Recv and Mem, and
// returns the messages to send this round (keyed by destination PE).
// Destinations must be ID−1 or ID+1: the linear-array links guaranteed by
// proximity/Gray ordering.
type Step func(pe *PE) map[int]Msg

// Runtime executes programs over n PE goroutines.
type Runtime struct {
	n        int
	pes      []*PE
	adjacent func(a, b int) bool // legal links; nil means linear array
}

// New returns a runtime with n PEs and per-PE local memory initialised
// by mem (may be nil).
func New(n int, mem func(id int) any) *Runtime {
	r := &Runtime{n: n, pes: make([]*PE, n)}
	for i := range r.pes {
		r.pes[i] = &PE{ID: i, N: n, Recv: map[int]Msg{}}
		if mem != nil {
			r.pes[i].Mem = mem(i)
		}
	}
	return r
}

// Size returns the number of PEs.
func (r *Runtime) Size() int { return r.n }

// PEState returns PE i's local memory (for observation after a run).
func (r *Runtime) PEState(i int) any { return r.pes[i].Mem }

// Run executes `steps` supersteps of the program. In each superstep all
// PE goroutines run concurrently; their outgoing messages are validated
// against the linear-array links and delivered at the barrier.
func (r *Runtime) Run(steps int, program Step) error {
	type envelope struct {
		from, to int
		m        Msg
	}
	for s := 0; s < steps; s++ {
		outs := make([][]envelope, r.n)
		var wg sync.WaitGroup
		wg.Add(r.n)
		for i := 0; i < r.n; i++ {
			go func(pe *PE, slot *[]envelope) {
				defer wg.Done()
				sends := program(pe)
				for to, m := range sends {
					*slot = append(*slot, envelope{pe.ID, to, m})
				}
			}(r.pes[i], &outs[i])
		}
		wg.Wait()
		// Barrier: validate links and deliver.
		inbox := make([]map[int]Msg, r.n)
		for i := range inbox {
			inbox[i] = map[int]Msg{}
		}
		for _, es := range outs {
			for _, e := range es {
				if e.to < 0 || e.to >= r.n {
					return fmt.Errorf("lockstep: PE %d sent off-machine to %d", e.from, e.to)
				}
				legal := e.to == e.from-1 || e.to == e.from+1
				if r.adjacent != nil {
					legal = r.adjacent(e.from, e.to)
				}
				if !legal {
					return fmt.Errorf("lockstep: PE %d sent to non-neighbour %d at step %d",
						e.from, e.to, s)
				}
				inbox[e.to][e.from] = e.m
			}
		}
		for i, pe := range r.pes {
			pe.Recv = inbox[i]
		}
	}
	return nil
}

// --- Canonical programs ------------------------------------------------

// OddEvenTranspositionSort sorts one int per PE in n supersteps by
// odd-even transposition along the linear order — the classic mesh-array
// sort the paper's snake/proximity orderings enable. It returns the
// sorted values.
func OddEvenTranspositionSort(vals []int) ([]int, error) {
	n := len(vals)
	type mem struct{ v int }
	r := New(n, func(id int) any { return &mem{v: vals[id]} })
	phase := 0
	step := func(pe *PE) map[int]Msg {
		m := pe.Mem.(*mem)
		// Incorporate the exchange decided last round.
		for from, raw := range pe.Recv {
			v := raw.(int)
			if from < pe.ID && v > m.v {
				m.v = v // left neighbour pushed its larger value right
			}
			if from > pe.ID && v < m.v {
				m.v = v
			}
		}
		// Decide partner for this round and send our value.
		var partner int
		if (pe.ID+phase)%2 == 0 {
			partner = pe.ID + 1
		} else {
			partner = pe.ID - 1
		}
		if partner < 0 || partner >= pe.N {
			return nil
		}
		return map[int]Msg{partner: m.v}
	}
	// Each transposition needs a send round and an update; interleave by
	// alternating phase after every superstep pair.
	for round := 0; round < n+1; round++ {
		if err := r.Run(1, step); err != nil {
			return nil, err
		}
		// Resolve the exchange synchronously at the barrier by one more
		// local pass (no sends).
		if err := r.Run(1, func(pe *PE) map[int]Msg {
			m := pe.Mem.(*mem)
			for from, raw := range pe.Recv {
				v := raw.(int)
				if from < pe.ID && v > m.v {
					m.v = v
				}
				if from > pe.ID && v < m.v {
					m.v = v
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		phase ^= 1
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.PEState(i).(*mem).v
	}
	return out, nil
}

// ChainSemigroup applies an associative op over one value per PE using
// only neighbour links: a left-to-right accumulate followed by a
// right-to-left broadcast, 2(n−1) supersteps, and returns the value held
// by every PE (they all agree).
func ChainSemigroup(vals []int, op func(a, b int) int) ([]int, error) {
	n := len(vals)
	type mem struct {
		v      int
		acc    int
		hasAcc bool
		total  int
		hasTot bool
	}
	r := New(n, func(id int) any {
		m := &mem{v: vals[id], acc: vals[id]}
		m.hasAcc = id == 0
		return m
	})
	step := func(pe *PE) map[int]Msg {
		m := pe.Mem.(*mem)
		for from, raw := range pe.Recv {
			switch {
			case from == pe.ID-1 && !m.hasAcc:
				m.acc = op(raw.(int), m.v)
				m.hasAcc = true
			case from == pe.ID+1 && !m.hasTot:
				m.total = raw.(int)
				m.hasTot = true
			}
		}
		if pe.ID == pe.N-1 && m.hasAcc && !m.hasTot {
			m.total = m.acc
			m.hasTot = true
		}
		sends := map[int]Msg{}
		if m.hasAcc && pe.ID+1 < pe.N {
			sends[pe.ID+1] = m.acc
		}
		if m.hasTot && pe.ID-1 >= 0 {
			sends[pe.ID-1] = m.total
		}
		return sends
	}
	if err := r.Run(2*n+2, step); err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		m := r.PEState(i).(*mem)
		if !m.hasTot {
			return nil, fmt.Errorf("lockstep: PE %d never received the total", i)
		}
		out[i] = m.total
	}
	return out, nil
}
