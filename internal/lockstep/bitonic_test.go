package lockstep_test

import (
	"math/rand"
	"sort"
	"testing"

	"dyncg/internal/hypercube"
	"dyncg/internal/lockstep"
	"dyncg/internal/machine"
)

// TestBitonicSortHypercube cross-validates the goroutine hypercube
// against the vector simulator: same sorted output as machine.Sort on the
// same values, and the same q(q+1)/2 compare-exchange round count that
// the simulator charges in Stats.Rounds.
func TestBitonicSortHypercube(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 2, 3, 4, 6} {
		n := 1 << dim
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(1000) - 500
		}

		got, rounds, err := lockstep.BitonicSortHypercube(dim, vals)
		if err != nil {
			t.Fatalf("dim=%d: %v", dim, err)
		}
		want := append([]int{}, vals...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dim=%d: sorted[%d] = %d, want %d (full: %v)", dim, i, got[i], want[i], got)
			}
		}
		if wantRounds := dim * (dim + 1) / 2; rounds != wantRounds {
			t.Errorf("dim=%d: %d compare-exchange rounds, want q(q+1)/2 = %d", dim, rounds, wantRounds)
		}

		// The simulator's bitonic sort on the same hypercube: identical
		// output in PE order and an identical communication round count.
		m := machine.New(hypercube.MustNew(n))
		regs := machine.Scatter(n, vals)
		machine.Sort(m, regs, func(a, b int) bool { return a < b })
		for i := range regs {
			if !regs[i].Ok || regs[i].V != got[i] {
				t.Fatalf("dim=%d: simulator PE %d holds (%d, %v), lockstep holds %d",
					dim, i, regs[i].V, regs[i].Ok, got[i])
			}
		}
		if simRounds := m.Stats().Rounds; simRounds != int64(rounds) {
			t.Errorf("dim=%d: simulator charged %d rounds, lockstep performed %d",
				dim, simRounds, rounds)
		}
	}
}

// TestBitonicSortHypercubeDuplicates exercises ties and constant input.
func TestBitonicSortHypercubeDuplicates(t *testing.T) {
	vals := []int{3, 1, 3, 1, 2, 2, 3, 3}
	got, _, err := lockstep.BitonicSortHypercube(3, vals)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int{}, vals...)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if got, _, err := lockstepConst(4); err != nil || !allEqual(got, 9) {
		t.Fatalf("constant input perturbed: %v (err %v)", got, err)
	}
}

func lockstepConst(dim int) ([]int, int, error) {
	vals := make([]int, 1<<dim)
	for i := range vals {
		vals[i] = 9
	}
	return lockstep.BitonicSortHypercube(dim, vals)
}

func allEqual(xs []int, v int) bool {
	for _, x := range xs {
		if x != v {
			return false
		}
	}
	return true
}

// TestNewHypercubeGrayRejectsNonEdges proves the runtime enforces real
// hypercube links: a program that sends between two PEs whose nodes
// differ in more than one bit must be rejected.
func TestNewHypercubeGrayRejectsNonEdges(t *testing.T) {
	r := lockstep.NewHypercubeGray(3, nil)
	err := r.Run(1, func(pe *lockstep.PE) map[int]lockstep.Msg {
		if pe.ID != 0 {
			return nil
		}
		// Node of PE 0 is 0; node of PE 5 is Gray(5) = 7: three bits away.
		return map[int]lockstep.Msg{5: 1}
	})
	if err == nil {
		t.Fatal("send across a non-edge was not rejected")
	}
}

// TestLinearProgramsOnHypercube runs the linear-array odd-even
// transposition sort unchanged on hypercube links: consecutive labels are
// adjacent under the Gray-code embedding, so the program's ID±1 sends are
// all legal single hops.
func TestLinearProgramsOnHypercube(t *testing.T) {
	dim := 4
	n := 1 << dim
	r := lockstep.NewHypercubeGray(dim, nil)
	err := r.Run(1, func(pe *lockstep.PE) map[int]lockstep.Msg {
		sends := map[int]lockstep.Msg{}
		if pe.ID+1 < pe.N {
			sends[pe.ID+1] = pe.ID
		}
		if pe.ID-1 >= 0 {
			sends[pe.ID-1] = pe.ID
		}
		return sends
	})
	if err != nil {
		t.Fatalf("ID±1 sends illegal on hypercube links: %v (n=%d)", err, n)
	}
}
