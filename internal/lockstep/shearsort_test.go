package lockstep

import (
	"math/rand"
	"sort"
	"testing"
)

func TestShearSortRandom(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for _, side := range []int{2, 4, 8} {
		for trial := 0; trial < 10; trial++ {
			n := side * side
			vals := make([]int, n)
			for i := range vals {
				vals[i] = r.Intn(1000)
			}
			got, err := ShearSort(side, append([]int{}, vals...))
			if err != nil {
				t.Fatal(err)
			}
			snake := SnakeToLinear(side, got)
			want := append([]int{}, vals...)
			sort.Ints(want)
			for i := range want {
				if snake[i] != want[i] {
					t.Fatalf("side=%d trial=%d: snake order %v, want %v (grid %v)",
						side, trial, snake, want, got)
				}
			}
		}
	}
}

func TestShearSortRejectsBadInput(t *testing.T) {
	if _, err := ShearSort(3, []int{1, 2}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// TestMesh2DLinkValidation: diagonal or long-distance sends are illegal.
func TestMesh2DLinkValidation(t *testing.T) {
	r := NewMesh2D(4, nil)
	err := r.Run(1, func(pe *PE) map[int]Msg {
		if pe.ID == 0 {
			return map[int]Msg{5: "diagonal"} // (0,0) → (1,1)
		}
		return nil
	})
	if err == nil {
		t.Fatal("diagonal send accepted")
	}
	err = r.Run(1, func(pe *PE) map[int]Msg {
		if pe.ID == 0 {
			return map[int]Msg{4: "down"} // (0,0) → (1,0): legal
		}
		return nil
	})
	if err != nil {
		t.Fatalf("legal lattice send rejected: %v", err)
	}
}

// TestShearSortAllEqual and duplicates.
func TestShearSortDuplicates(t *testing.T) {
	side := 4
	vals := []int{3, 3, 3, 3, 1, 1, 1, 1, 2, 2, 2, 2, 0, 0, 0, 0}
	got, err := ShearSort(side, vals)
	if err != nil {
		t.Fatal(err)
	}
	snake := SnakeToLinear(side, got)
	for i := 1; i < len(snake); i++ {
		if snake[i-1] > snake[i] {
			t.Fatalf("not sorted: %v", snake)
		}
	}
}
