package mesh

import (
	"math"
	"testing"
)

func TestNewRejectsNonPow4(t *testing.T) {
	for _, n := range []int{0, -4, 2, 8, 15, 32} {
		if _, err := New(n, Proximity); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
	for _, n := range []int{1, 4, 16, 64, 256, 1024} {
		if _, err := New(n, Proximity); err != nil {
			t.Errorf("New(%d) rejected: %v", n, err)
		}
	}
}

// TestFigure2Orderings pins the four indexings of Figure 2 on the 16-PE
// mesh exactly as printed in the paper.
func TestFigure2Orderings(t *testing.T) {
	wantRow := [4][4]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}}
	wantShuffled := [4][4]int{{0, 1, 4, 5}, {2, 3, 6, 7}, {8, 9, 12, 13}, {10, 11, 14, 15}}
	wantSnake := [4][4]int{{0, 1, 2, 3}, {7, 6, 5, 4}, {8, 9, 10, 11}, {15, 14, 13, 12}}
	check := func(ix Indexing, want [4][4]int) {
		m := MustNew(16, ix)
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				if got := m.IndexAt(r, c); got != want[r][c] {
					t.Errorf("%v (%d,%d) = %d, want %d", ix, r, c, got, want[r][c])
				}
			}
		}
	}
	check(RowMajor, wantRow)
	check(ShuffledRowMajor, wantShuffled)
	check(Snake, wantSnake)
}

// TestProximityProperties checks the two defining properties of proximity
// order stated in §2.2.
func TestProximityProperties(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256, 1024} {
		m := MustNew(n, Proximity)
		// Property 1: consecutive PEs are lattice neighbours.
		for i := 0; i+1 < n; i++ {
			if m.Distance(i, i+1) != 1 {
				t.Fatalf("n=%d: PE %d and %d at distance %d",
					n, i, i+1, m.Distance(i, i+1))
			}
		}
		// Property 2: each aligned block of 4^j consecutive indices forms
		// a submesh (bounding box of side 2^j).
		for blk := 4; blk <= n; blk *= 4 {
			sub := int(math.Sqrt(float64(blk)))
			for start := 0; start < n; start += blk {
				minR, minC := m.Side(), m.Side()
				maxR, maxC := 0, 0
				for i := start; i < start+blk; i++ {
					r, c := m.Grid(i)
					if r < minR {
						minR = r
					}
					if r > maxR {
						maxR = r
					}
					if c < minC {
						minC = c
					}
					if c > maxC {
						maxC = c
					}
				}
				if maxR-minR+1 != sub || maxC-minC+1 != sub {
					t.Fatalf("n=%d: block [%d,%d) spans %dx%d, want %dx%d",
						n, start, start+blk, maxR-minR+1, maxC-minC+1, sub, sub)
				}
			}
		}
	}
}

// TestSnakeAdjacency: snake order also has the consecutive-neighbour
// property (but not recursive subdivision).
func TestSnakeAdjacency(t *testing.T) {
	m := MustNew(64, Snake)
	for i := 0; i+1 < 64; i++ {
		if m.Distance(i, i+1) != 1 {
			t.Fatalf("snake: PE %d,%d at distance %d", i, i+1, m.Distance(i, i+1))
		}
	}
}

// TestBijection: every indexing is a bijection between indices and cells.
func TestBijection(t *testing.T) {
	for _, ix := range []Indexing{RowMajor, ShuffledRowMajor, Snake, Proximity} {
		m := MustNew(256, ix)
		seen := make([]bool, 256)
		for i := 0; i < 256; i++ {
			r, c := m.Grid(i)
			if m.IndexAt(r, c) != i {
				t.Fatalf("%v: roundtrip failed for %d", ix, i)
			}
			cell := r*m.Side() + c
			if seen[cell] {
				t.Fatalf("%v: cell %d hit twice", ix, cell)
			}
			seen[cell] = true
		}
	}
}

func TestDiameterAndDistance(t *testing.T) {
	m := MustNew(16, RowMajor)
	if m.Diameter() != 6 {
		t.Fatalf("diameter = %d, want 6", m.Diameter())
	}
	if d := m.Distance(0, 15); d != 6 {
		t.Fatalf("corner distance = %d, want 6", d)
	}
	if d := m.Distance(5, 5); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

// TestXorDistanceScaling verifies the property that makes bitonic sort
// Θ(√n) on the mesh: under shuffled row-major and proximity indexing, the
// worst-case lattice distance between bit-b exchange partners i and
// i⊕2^b is O(2^{b/2}).
func TestXorDistanceScaling(t *testing.T) {
	n := 1024
	for _, ix := range []Indexing{ShuffledRowMajor, Proximity} {
		m := MustNew(n, ix)
		for b := 0; 1<<b < n; b++ {
			d := m.MaxDistanceForXorBit(b)
			bound := 4 * int(math.Ceil(math.Pow(2, float64(b)/2)))
			if d > bound {
				t.Errorf("%v: xor bit %d worst distance %d > bound %d",
					ix, b, d, bound)
			}
		}
		// Sum over all bits must be O(√n): the total bitonic-merge cost.
		sum := 0
		for b := 0; 1<<b < n; b++ {
			sum += m.MaxDistanceForXorBit(b)
		}
		if sum > 12*int(math.Sqrt(float64(n))) {
			t.Errorf("%v: Σ_b maxdist = %d, not O(√n)", ix, sum)
		}
	}
	// Row-major, by contrast, pays Θ(2^b) for in-row bits: bit √n/2
	// costs 16 at n=1024 where shuffled pays 4 — asserted loosely.
	rm := MustNew(n, RowMajor)
	if rm.MaxDistanceForXorBit(4) <= MustNew(n, ShuffledRowMajor).MaxDistanceForXorBit(4) {
		t.Error("row-major should pay more than shuffled for mid bits")
	}
}

func TestNeighbors(t *testing.T) {
	m := MustNew(16, RowMajor)
	if got := len(m.Neighbors(0)); got != 2 {
		t.Fatalf("corner has %d neighbours", got)
	}
	if got := len(m.Neighbors(5)); got != 4 {
		t.Fatalf("interior has %d neighbours", got)
	}
	for _, nb := range m.Neighbors(5) {
		if m.Distance(5, nb) != 1 {
			t.Fatal("neighbour not at distance 1")
		}
	}
}

func TestRender(t *testing.T) {
	m := MustNew(4, RowMajor)
	want := "0 1 \n2 3 \n"
	if got := m.Render(); got != want {
		t.Fatalf("Render = %q, want %q", got, want)
	}
}
