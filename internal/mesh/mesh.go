// Package mesh models the two-dimensional mesh-connected computer of
// §2.2: n = 4^q processors arranged as a √n × √n lattice, each PE linked
// to its row/column neighbours. PEs are numbered 0 … n−1 by one of the
// four indexing schemes of Figure 2 — row-major, shuffled row-major,
// snake-like, and proximity (Peano–Hilbert) order. The paper's algorithms
// assume proximity order, whose two key properties (§2.2) are:
//
//  1. consecutively indexed PEs are lattice neighbours, and
//  2. the mesh subdivides recursively into submeshes of consecutively
//     indexed PEs.
//
// Shuffled row-major shares property 2 and the "Θ(2^{b/2}) distance for
// index-offset 2^b" property that makes bitonic sort run in Θ(√n) total
// mesh time; proximity order additionally has property 1.
package mesh

import (
	"fmt"
	"math"

	"dyncg/internal/costmemo"
)

// Indexing is one of the PE-numbering schemes of Figure 2.
type Indexing int

// The indexing schemes of Figure 2.
const (
	RowMajor Indexing = iota
	ShuffledRowMajor
	Snake
	Proximity // Peano–Hilbert order; the paper's default (§2.2)
)

// String returns the scheme name.
func (ix Indexing) String() string {
	switch ix {
	case RowMajor:
		return "row-major"
	case ShuffledRowMajor:
		return "shuffled-row-major"
	case Snake:
		return "snake-like"
	case Proximity:
		return "proximity"
	}
	return fmt.Sprintf("Indexing(%d)", int(ix))
}

// Mesh is a √n × √n mesh-connected computer with a chosen indexing.
type Mesh struct {
	n    int // number of PEs; a power of 4
	side int // √n
	ix   Indexing

	toGrid [][2]int // index → (row, col)
	fromXY []int    // row*side+col → index

	costs *costmemo.Table // memoised round costs (shared across machines)
}

// New returns a mesh of size n (n must be a positive power of 4) with the
// given indexing scheme.
func New(n int, ix Indexing) (*Mesh, error) {
	if n <= 0 || !isPow4(n) {
		return nil, fmt.Errorf("mesh: size %d is not a positive power of 4", n)
	}
	side := int(math.Round(math.Sqrt(float64(n))))
	m := &Mesh{n: n, side: side, ix: ix,
		toGrid: make([][2]int, n), fromXY: make([]int, n)}
	for i := 0; i < n; i++ {
		var r, c int
		switch ix {
		case RowMajor:
			r, c = i/side, i%side
		case Snake:
			r = i / side
			c = i % side
			if r%2 == 1 {
				c = side - 1 - c
			}
		case ShuffledRowMajor:
			r, c = deinterleave(i)
		case Proximity:
			r, c = hilbertD2XY(side, i)
		}
		m.toGrid[i] = [2]int{r, c}
		m.fromXY[r*side+c] = i
	}
	m.costs = costmemo.New(m)
	return m, nil
}

// MustNew is New but panics on error (for tests and fixed-size callers).
func MustNew(n int, ix Indexing) *Mesh {
	m, err := New(n, ix)
	if err != nil {
		panic(err)
	}
	return m
}

func isPow4(n int) bool {
	for n > 1 {
		if n%4 != 0 {
			return false
		}
		n /= 4
	}
	return n == 1
}

// Size returns the number of PEs.
func (m *Mesh) Size() int { return m.n }

// Side returns √n.
func (m *Mesh) Side() int { return m.side }

// Scheme returns the indexing scheme.
func (m *Mesh) Scheme() Indexing { return m.ix }

// Name implements the topology interface of internal/machine.
func (m *Mesh) Name() string {
	return fmt.Sprintf("mesh[%dx%d,%s]", m.side, m.side, m.ix)
}

// Grid returns the (row, col) lattice position of PE i.
func (m *Mesh) Grid(i int) (row, col int) {
	g := m.toGrid[i]
	return g[0], g[1]
}

// IndexAt returns the PE index at lattice position (row, col).
func (m *Mesh) IndexAt(row, col int) int { return m.fromXY[row*m.side+col] }

// Distance returns the number of communication links on a shortest path
// between PEs i and j: the Manhattan distance of their lattice positions.
func (m *Mesh) Distance(i, j int) int {
	a, b := m.toGrid[i], m.toGrid[j]
	return abs(a[0]-b[0]) + abs(a[1]-b[1])
}

// Diameter returns the communication diameter 2(√n − 1) = Θ(√n) (§2.2).
func (m *Mesh) Diameter() int { return 2 * (m.side - 1) }

// MaxDistanceForXorBit returns max over i of Distance(i, i XOR 2^b) — the
// lock-step cost of a SIMD round in which every PE exchanges with its
// bit-b partner, the communication pattern of bitonic sort/merge and of
// hypercube-style prefix and broadcast. Under shuffled row-major and
// proximity indexing this is Θ(2^{b/2}), which is what makes bitonic sort
// cost Θ(√n) total on the mesh (§2.2 discussion; Table 1).
func (m *Mesh) MaxDistanceForXorBit(b int) int {
	off := 1 << b
	max := 0
	for i := 0; i < m.n; i++ {
		j := i ^ off
		if j < i || j >= m.n {
			continue
		}
		if d := m.Distance(i, j); d > max {
			max = d
		}
	}
	return max
}

// XorRoundCost returns the memoised worst partner distance of a bit-b
// XOR round — the Θ(2^{b/2}) Hilbert hop distances that give bitonic sort
// its Θ(√n) mesh total. Computed once per Mesh (sync.Once) and shared by
// every machine wrapping it, including one-M-per-goroutine concurrent
// simulations.
func (m *Mesh) XorRoundCost(b int) int { return m.costs.XorRoundCost(b) }

// ShiftRoundCost returns the memoised worst partner distance of a ±off
// shift round.
func (m *Mesh) ShiftRoundCost(off int) int { return m.costs.ShiftRoundCost(off) }

// Neighbors returns the lattice neighbours of PE i (2 to 4 PEs).
func (m *Mesh) Neighbors(i int) []int {
	r, c := m.Grid(i)
	var out []int
	if r > 0 {
		out = append(out, m.IndexAt(r-1, c))
	}
	if r < m.side-1 {
		out = append(out, m.IndexAt(r+1, c))
	}
	if c > 0 {
		out = append(out, m.IndexAt(r, c-1))
	}
	if c < m.side-1 {
		out = append(out, m.IndexAt(r, c+1))
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// deinterleave splits the bits of i into row (odd bit positions) and col
// (even bit positions): the shuffled row-major order of Figure 2b.
func deinterleave(i int) (row, col int) {
	for b := 0; i>>(2*b) != 0; b++ {
		col |= ((i >> (2 * b)) & 1) << b
		row |= ((i >> (2*b + 1)) & 1) << b
	}
	return
}

// hilbertD2XY converts a distance d along the Hilbert curve of a
// side×side grid (side a power of two) to grid coordinates. This realises
// the proximity order of Figure 2d.
func hilbertD2XY(side, d int) (row, col int) {
	rx, ry := 0, 0
	x, y := 0, 0
	t := d
	for s := 1; s < side; s *= 2 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return y, x
}

// Render returns an ASCII rendering of the index layout, reproducing the
// panels of Figure 2 for small meshes.
func (m *Mesh) Render() string {
	out := ""
	width := len(fmt.Sprint(m.n - 1))
	for r := 0; r < m.side; r++ {
		for c := 0; c < m.side; c++ {
			out += fmt.Sprintf("%*d ", width, m.IndexAt(r, c))
		}
		out += "\n"
	}
	return out
}
