package core

import (
	"fmt"
	"math"

	"dyncg/internal/motion"
	"dyncg/internal/pieces"
)

// Serial baselines for the §4 transient problems, in the style of
// [Atallah 1985]: the same window combiners and indicator constructions
// as the machine algorithms, run through the serial envelope machinery
// (pieces.Envelope / pieces.CombineWindows). These are the single-
// processor comparison points of the paper's §1 discussion, and the
// reference implementations the machine results are tested against.

// SerialHullVertexIntervals is the serial baseline for Theorem 4.5.
func SerialHullVertexIntervals(sys *motion.System, origin int) ([]Interval, error) {
	if sys.D != 2 {
		return nil, fmt.Errorf("core: hull membership requires planar motion, got d=%d: %w", sys.D, motion.ErrBadSystem)
	}
	if sys.N() <= 2 {
		return []Interval{{Lo: 0, Hi: math.Inf(1)}}, nil
	}
	var gs, bs []pieces.Piecewise
	for j, q := range sys.Points {
		if j == origin {
			continue
		}
		ang := sys.Points[origin].AngleTo(q)
		dy := q.Coord[1].Sub(sys.Points[origin].Coord[1])
		gDom, bDom := signDomains(dy)
		if g := pieces.OnIntervals(ang, j, gDom); len(g) > 0 {
			gs = append(gs, g)
		}
		if b := pieces.OnIntervals(ang, j, bDom); len(b) > 0 {
			bs = append(bs, b)
		}
	}
	a0 := pieces.Envelope(gs, pieces.Min)
	b0 := pieces.Envelope(gs, pieces.Max)
	c0 := pieces.Envelope(bs, pieces.Min)
	d0 := pieces.Envelope(bs, pieces.Max)

	var A0, B0 pieces.Piecewise
	if len(a0) > 0 && len(d0) > 0 {
		A0 = pieces.CombineWindows(a0, d0, angleWindow(true))
	}
	if len(b0) > 0 && len(c0) > 0 {
		B0 = pieces.CombineWindows(b0, c0, angleWindow(false))
	}
	C0 := serialGapIndicator(a0)
	D0 := serialGapIndicator(c0)

	h := A0
	for _, other := range []pieces.Piecewise{B0, C0, D0} {
		if len(other) == 0 {
			continue
		}
		if len(h) == 0 {
			h = other
			continue
		}
		h = pieces.Merge(h, other, pieces.Max)
	}
	return serialIndicatorIntervals(h), nil
}

// SerialContainmentIntervals is the serial baseline for Theorem 4.6.
func SerialContainmentIntervals(sys *motion.System, dims []float64) ([]Interval, error) {
	if len(dims) != sys.D {
		return nil, fmt.Errorf("core: %d dims for %d-dimensional system: %w", len(dims), sys.D, motion.ErrBadSystem)
	}
	spans := serialSpanFunctions(sys)
	var c pieces.Piecewise
	for i, di := range spans {
		var wi pieces.Piecewise
		for _, p := range di {
			wi = append(wi, thresholdIndicator(dims[i])(p)...)
		}
		wi = wi.Compact()
		if c == nil {
			c = wi
			continue
		}
		c = pieces.Merge(c, wi, pieces.Min)
	}
	return serialIndicatorIntervals(c), nil
}

// SerialSmallestHypercubeEdge is the serial baseline for Theorem 4.7.
func SerialSmallestHypercubeEdge(sys *motion.System) (pieces.Piecewise, error) {
	spans := serialSpanFunctions(sys)
	d := spans[0]
	for _, di := range spans[1:] {
		d = pieces.Merge(d, di, pieces.Max)
	}
	return d, nil
}

// serialSpanFunctions builds the D_i(t) = M_i(t) − m_i(t) span functions
// serially.
func serialSpanFunctions(sys *motion.System) []pieces.Piecewise {
	out := make([]pieces.Piecewise, sys.D)
	for i := 0; i < sys.D; i++ {
		cs := sys.CoordCurves(i)
		lo := pieces.EnvelopeOfCurves(cs, pieces.Min)
		hi := pieces.EnvelopeOfCurves(cs, pieces.Max)
		out[i] = pieces.CombineWindows(hi, lo, windowDiffFor(i))
	}
	return out
}

func serialGapIndicator(f pieces.Piecewise) pieces.Piecewise {
	return gapIndicatorPieces(f)
}

func serialIndicatorIntervals(w pieces.Piecewise) []Interval {
	var out []Interval
	for _, p := range w {
		if p.ID == 1 {
			out = append(out, Interval{Lo: p.Lo, Hi: p.Hi})
		}
	}
	return mergeAbutting(out)
}
