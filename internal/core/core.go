// Package core implements the paper's top-level algorithms for dynamic
// computational geometry: the transient-behaviour computations of §4
// (Table 2) and the steady-state computations of §5 (Table 3), on the
// simulated mesh and hypercube of internal/machine, plus serial reference
// baselines.
//
// Every function takes an explicit *machine.M whose accumulated Stats
// give the simulated parallel running time; the sizing helpers below
// build machines with the PE counts the theorems prescribe (λ_M/λ_H up to
// the constant documented in DESIGN.md).
package core

import (
	"fmt"

	"dyncg/internal/dsseq"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/penvelope"
)

// MeshFor returns a proximity-ordered mesh machine with Θ(λ(n, s)) PEs —
// the Theorem 3.2/4.x allocation. Options (e.g. machine.WithParallel)
// pass through to machine.New.
func MeshFor(n, s int, opts ...machine.Option) *machine.M {
	return machine.New(mesh.MustNew(penvelope.MeshPEs(n, s), mesh.Proximity), opts...)
}

// CubeFor is MeshFor for the hypercube.
func CubeFor(n, s int, opts ...machine.Option) *machine.M {
	return machine.New(hypercube.MustNew(penvelope.CubePEs(n, s)), opts...)
}

// MeshOf returns a mesh machine with at least n PEs (for the Θ(n)-PE
// algorithms: Theorem 4.2 and all of §5).
func MeshOf(n int, opts ...machine.Option) *machine.M {
	return machine.New(mesh.MustNew(dsseq.NextPow4(n), mesh.Proximity), opts...)
}

// CubeOf is MeshOf for the hypercube.
func CubeOf(n int, opts ...machine.Option) *machine.M {
	return machine.New(hypercube.MustNew(dsseq.NextPow2(n)), opts...)
}

// Interval is a time interval [Lo, Hi]; Hi may be +Inf.
type Interval struct {
	Lo, Hi float64
}

func (iv Interval) String() string { return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi) }

// mergeAbutting coalesces sorted intervals that share endpoints (the
// final parallel-prefix packing step used throughout §4; a Θ(1)-round
// operation charged by the callers).
func mergeAbutting(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	out := []Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
