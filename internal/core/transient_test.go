package core

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/geom"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/pieces"
)

// sampleTimes returns a time grid avoiding the exact breakpoints of the
// result under test (membership flips exactly at breakpoints).
func sampleTimes(n int, step float64) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)*step + 0.0137
	}
	return ts
}

func bruteClosest(sys *motion.System, origin int, t float64, farthest bool) float64 {
	best := math.Inf(1)
	if farthest {
		best = -1
	}
	p0 := sys.Points[origin].At(t)
	for j, q := range sys.Points {
		if j == origin {
			continue
		}
		pos := q.At(t)
		d := 0.0
		for c := range pos {
			d += (pos[c] - p0[c]) * (pos[c] - p0[c])
		}
		if (!farthest && d < best) || (farthest && d > best) {
			best = d
		}
	}
	return best
}

// TestTheorem41ClosestSequence: the machine sequence R reports, at every
// sampled time, a point achieving the true minimum distance; and it
// matches the serial baseline structurally.
func TestTheorem41ClosestSequence(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(10)
		k := 1 + r.Intn(2)
		d := 1 + r.Intn(3)
		sys := motion.Random(r, n, k, d, 5)
		origin := r.Intn(n)
		for _, m := range []*machine.M{MeshFor(n, 2*k), CubeFor(n, 2*k)} {
			seq, err := ClosestPointSequence(m, sys, origin)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if seq[0].Lo != 0 || !math.IsInf(seq[len(seq)-1].Hi, 1) {
				t.Fatalf("trial %d: sequence does not span [0,∞): %v", trial, seq)
			}
			for _, tm := range sampleTimes(40, 0.33) {
				var ev *NeighborEvent
				for i := range seq {
					if tm >= seq[i].Lo && tm <= seq[i].Hi {
						ev = &seq[i]
						break
					}
				}
				if ev == nil {
					t.Fatalf("trial %d: no event covers t=%v", trial, tm)
				}
				p0 := sys.Points[origin].At(tm)
				pj := sys.Points[ev.Point].At(tm)
				got := 0.0
				for c := range p0 {
					got += (pj[c] - p0[c]) * (pj[c] - p0[c])
				}
				want := bruteClosest(sys, origin, tm, false)
				if math.Abs(got-want) > 1e-5*(1+want) {
					t.Fatalf("trial %d t=%v: event point %d at d²=%v, true min %v",
						trial, tm, ev.Point, got, want)
				}
			}
			// Serial baseline agrees.
			ser := SerialClosestPointSequence(sys, origin, pieces.Min)
			if len(ser) != len(seq) {
				t.Fatalf("trial %d: parallel %d events, serial %d", trial, len(seq), len(ser))
			}
			for i := range ser {
				if ser[i].Point != seq[i].Point {
					t.Fatalf("trial %d: event %d: %d vs %d", trial, i, seq[i].Point, ser[i].Point)
				}
			}
		}
	}
}

func TestTheorem41FarthestSequence(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	sys := motion.Random(r, 8, 1, 2, 5)
	m := CubeFor(8, 2)
	seq, err := FarthestPointSequence(m, sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range sampleTimes(30, 0.4) {
		var ev *NeighborEvent
		for i := range seq {
			if tm >= seq[i].Lo && tm <= seq[i].Hi {
				ev = &seq[i]
			}
		}
		p0 := sys.Points[0].At(tm)
		pj := sys.Points[ev.Point].At(tm)
		got := (pj[0]-p0[0])*(pj[0]-p0[0]) + (pj[1]-p0[1])*(pj[1]-p0[1])
		want := bruteClosest(sys, 0, tm, true)
		if math.Abs(got-want) > 1e-5*(1+want) {
			t.Fatalf("t=%v: farthest %d at %v, true %v", tm, ev.Point, got, want)
		}
	}
}

// TestTheorem42Collisions: collision times are exactly the roots of the
// pairwise distance functions, chronologically sorted, and match the
// serial baseline.
func TestTheorem42Collisions(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(8)
		sys := motion.Converging(r, n)
		origin := r.Intn(n)
		want := SerialCollisionTimes(sys, origin)
		for _, m := range []*machine.M{MeshOf(8 * n), CubeOf(8 * n)} {
			got, err := CollisionTimes(m, sys, origin)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d collisions, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].B != want[i].B || math.Abs(got[i].T-want[i].T) > 1e-9 {
					t.Fatalf("trial %d: collision %d = %+v, want %+v", trial, i, got[i], want[i])
				}
				if i > 0 && got[i].T < got[i-1].T {
					t.Fatalf("trial %d: collisions unsorted", trial)
				}
			}
			// Each reported collision is genuine.
			for _, c := range got {
				a := sys.Points[c.A].At(c.T)
				b := sys.Points[c.B].At(c.T)
				if math.Hypot(a[0]-b[0], a[1]-b[1]) > 1e-5 {
					t.Fatalf("trial %d: phantom collision %+v", trial, c)
				}
			}
		}
	}
}

func TestCollisionsNoneForDiverging(t *testing.T) {
	// Points spreading out on distinct rays from distinct starts rarely
	// collide; verify agreement with the serial oracle rather than zero.
	r := rand.New(rand.NewSource(104))
	sys := motion.Diverging(r, 6)
	m := CubeOf(64)
	got, err := CollisionTimes(m, sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialCollisionTimes(sys, 0)
	if len(got) != len(want) {
		t.Fatalf("%d collisions, want %d", len(got), len(want))
	}
}

// TestTheorem46Containment: interval list matches brute-force sampling of
// "does the bounding box fit in dims".
func TestTheorem46Containment(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	for trial := 0; trial < 12; trial++ {
		n := 3 + r.Intn(8)
		k := 1 + r.Intn(2)
		d := 1 + r.Intn(3)
		sys := motion.Random(r, n, k, d, 4)
		dims := make([]float64, d)
		for i := range dims {
			dims[i] = 2 + r.Float64()*6
		}
		m := MeshFor(n, 2*k+2)
		ivs, err := ContainmentIntervals(m, sys, dims)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, tm := range sampleTimes(60, 0.23) {
			fits := true
			for c := 0; c < d && fits; c++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, p := range sys.Points {
					v := p.Coord[c].Eval(tm)
					lo = math.Min(lo, v)
					hi = math.Max(hi, v)
				}
				if hi-lo > dims[c]+1e-9 {
					fits = false
				}
			}
			inIv := false
			for _, iv := range ivs {
				if tm >= iv.Lo-1e-9 && tm <= iv.Hi+1e-9 {
					inIv = true
				}
			}
			if fits != inIv {
				t.Fatalf("trial %d t=%v: fits=%v but intervals say %v (ivs=%v)",
					trial, tm, fits, inIv, ivs)
			}
		}
	}
}

// TestTheorem47SmallestHypercubeEdge: D(t) equals the brute-force max
// coordinate span at sampled times.
func TestTheorem47SmallestHypercubeEdge(t *testing.T) {
	r := rand.New(rand.NewSource(106))
	for trial := 0; trial < 12; trial++ {
		n := 3 + r.Intn(8)
		k := 1 + r.Intn(2)
		d := 2 + r.Intn(2)
		sys := motion.Random(r, n, k, d, 4)
		m := CubeFor(n, 2*k+2)
		dfn, err := SmallestHypercubeEdge(m, sys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, tm := range sampleTimes(50, 0.29) {
			want := 0.0
			for c := 0; c < d; c++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, p := range sys.Points {
					v := p.Coord[c].Eval(tm)
					lo = math.Min(lo, v)
					hi = math.Max(hi, v)
				}
				want = math.Max(want, hi-lo)
			}
			got, ok := dfn.Eval(tm)
			if !ok {
				t.Fatalf("trial %d: D undefined at %v", trial, tm)
			}
			if math.Abs(got-want) > 1e-5*(1+want) {
				t.Fatalf("trial %d t=%v: D=%v, want %v", trial, tm, got, want)
			}
		}
	}
}

// TestCorollary48SmallestEver: D_min matches a dense brute-force sweep.
func TestCorollary48SmallestEver(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(6)
		sys := motion.Random(r, n, 1, 2, 4)
		m := MeshFor(n, 4)
		dmin, tmin, err := SmallestEverHypercube(m, sys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		span := func(tm float64) float64 {
			w := 0.0
			for c := 0; c < 2; c++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, p := range sys.Points {
					v := p.Coord[c].Eval(tm)
					lo = math.Min(lo, v)
					hi = math.Max(hi, v)
				}
				w = math.Max(w, hi-lo)
			}
			return w
		}
		if math.Abs(span(tmin)-dmin) > 1e-6*(1+dmin) {
			t.Fatalf("trial %d: D(tmin)=%v ≠ dmin=%v", trial, span(tmin), dmin)
		}
		for tm := 0.0; tm < 30; tm += 0.05 {
			if span(tm) < dmin-1e-6*(1+dmin) {
				t.Fatalf("trial %d: D(%v)=%v < reported min %v", trial, tm, span(tm), dmin)
			}
		}
	}
}

// TestTheorem45HullMembership: the membership intervals agree with
// hull membership computed by static geometry at sampled times.
func TestTheorem45HullMembership(t *testing.T) {
	r := rand.New(rand.NewSource(108))
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(7)
		k := 1 + r.Intn(2)
		sys := motion.Random(r, n, k, 2, 4)
		origin := r.Intn(n)
		for _, m := range []*machine.M{MeshFor(n, 4*k+2), CubeFor(n, 4*k+2)} {
			ivs, err := HullVertexIntervals(m, sys, origin)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for _, tm := range sampleTimes(45, 0.31) {
				pts := StaticPointsAt(sys, tm)
				hull := geom.Hull(pts)
				isExtreme := false
				for _, p := range hull {
					if p.ID == origin {
						isExtreme = true
					}
				}
				inIv := false
				for _, iv := range ivs {
					if tm >= iv.Lo-1e-7 && tm <= iv.Hi+1e-7 {
						inIv = true
					}
				}
				if isExtreme != inIv {
					t.Fatalf("trial %d (n=%d k=%d origin=%d) t=%v: extreme=%v intervals=%v\nivs=%v",
						trial, n, k, origin, tm, isExtreme, inIv, ivs)
				}
			}
		}
	}
}

// TestHullMembershipTinySystems: n ≤ 2 is always extreme.
func TestHullMembershipTinySystems(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	sys := motion.Random(r, 2, 1, 2, 3)
	m := CubeFor(2, 4)
	ivs, err := HullVertexIntervals(m, sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].Lo != 0 || !math.IsInf(ivs[0].Hi, 1) {
		t.Fatalf("intervals = %v, want [0,∞)", ivs)
	}
}
