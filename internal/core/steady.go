package core

import (
	"fmt"
	"strconv"

	"dyncg/internal/geom"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/pgeom"
	"dyncg/internal/poly"
	"dyncg/internal/ratfun"
)

// SteadyPoints lifts a planar system to points over the ordered field of
// rational functions at t → ∞ — the Lemma 5.1 representation every §5
// algorithm runs on.
func SteadyPoints(sys *motion.System) ([]geom.Point[ratfun.RatFun], error) {
	if sys.D != 2 {
		return nil, fmt.Errorf("core: steady-state algorithms are planar, got d=%d: %w", sys.D, motion.ErrBadSystem)
	}
	pts := make([]geom.Point[ratfun.RatFun], sys.N())
	for i, p := range sys.Points {
		pts[i] = geom.Point[ratfun.RatFun]{X: p.Steady(0), Y: p.Steady(1), ID: i}
	}
	return pts, nil
}

// SteadyNearestNeighbor implements Proposition 5.2: a steady-state
// nearest (or farthest) neighbour of sys.Points[origin], in Θ(√n) mesh /
// Θ(log n) hypercube time on Θ(n) PEs (MeshOf/CubeOf).
func SteadyNearestNeighbor(m *machine.M, sys *motion.System, origin int, farthest bool) (int, error) {
	if m.Observed() {
		m.SpanBegin("prop5.2-steady-nn",
			"n", strconv.Itoa(sys.N()), "origin", strconv.Itoa(origin))
		defer m.SpanEnd()
	}
	pts, err := SteadyPoints(sys)
	if err != nil {
		return -1, err
	}
	return pgeom.NearestNeighbor(m, pts, origin, farthest), nil
}

// SteadyNearestViaTransient is the naive alternative the §5 introduction
// warns about: build the full transient closest-point sequence of
// Theorem 4.1 (λ_M(n−1, 2k) PEs, Θ(λ^{1/2}) time) and take its last
// element. Kept as the ablation baseline for comparison C3 (DESIGN.md).
func SteadyNearestViaTransient(m *machine.M, sys *motion.System, origin int) (int, error) {
	seq, err := ClosestPointSequence(m, sys, origin)
	if err != nil {
		return -1, err
	}
	if len(seq) == 0 {
		return -1, fmt.Errorf("core: empty neighbour sequence")
	}
	return seq[len(seq)-1].Point, nil
}

// SteadyClosestPair implements Proposition 5.3 on Θ(n) PEs:
// Θ(√n) mesh, Θ(log² n) hypercube.
func SteadyClosestPair(m *machine.M, sys *motion.System) (int, int, error) {
	if m.Observed() {
		m.SpanBegin("prop5.3-steady-cp", "n", strconv.Itoa(sys.N()))
		defer m.SpanEnd()
	}
	pts, err := SteadyPoints(sys)
	if err != nil {
		return -1, -1, err
	}
	a, b, _ := pgeom.ClosestPair(m, pts)
	return a, b, nil
}

// SteadyHull implements Proposition 5.4: the steady-state hull(S), as
// point indices in CCW order. Θ(n) PEs; sort-bounded time.
func SteadyHull(m *machine.M, sys *motion.System) ([]int, error) {
	if m.Observed() {
		m.SpanBegin("prop5.4-steady-hull", "n", strconv.Itoa(sys.N()))
		defer m.SpanEnd()
	}
	pts, err := SteadyPoints(sys)
	if err != nil {
		return nil, err
	}
	return pgeom.HullSteady(m, pts)
}

// SteadyFarthestPair implements Corollary 5.7: steady-state hull, then
// the diameter via antipodal pairs (Lemma 5.5, Proposition 5.6).
// It returns the two point indices and the squared-distance polynomial of
// the pair — the "diameter function" of Proposition 5.6, valid for all
// sufficiently large t.
func SteadyFarthestPair(m *machine.M, sys *motion.System) (int, int, poly.Poly, error) {
	if m.Observed() {
		m.SpanBegin("cor5.7-steady-farthest", "n", strconv.Itoa(sys.N()))
		defer m.SpanEnd()
	}
	pts, err := SteadyPoints(sys)
	if err != nil {
		return -1, -1, nil, err
	}
	hullIdx, err := pgeom.HullSteady(m, pts)
	if err != nil {
		return -1, -1, nil, err
	}
	if len(hullIdx) < 2 {
		return -1, -1, nil, fmt.Errorf("core: degenerate steady hull")
	}
	if len(hullIdx) == 2 {
		d2 := sys.Points[hullIdx[0]].DistSq(sys.Points[hullIdx[1]])
		return hullIdx[0], hullIdx[1], d2, nil
	}
	a, b, _ := pgeom.FarthestPair(m, pts, hullIdx)
	return a, b, sys.Points[a].DistSq(sys.Points[b]), nil
}

// SteadyRect is a steady-state minimal-area enclosing rectangle: the
// corners are rational functions of time describing the rectangle for
// all sufficiently large t, with Area their (rational) area function.
type SteadyRect = geom.Rect[ratfun.RatFun]

// SteadyMinAreaRect implements Corollary 5.9: steady-state hull
// (Proposition 5.4) followed by Theorem 5.8's per-edge rectangle
// construction. Θ(n) PEs; Θ(√n) mesh / sort-bounded hypercube time.
func SteadyMinAreaRect(m *machine.M, sys *motion.System) (SteadyRect, error) {
	if m.Observed() {
		m.SpanBegin("cor5.9-steady-rect", "n", strconv.Itoa(sys.N()))
		defer m.SpanEnd()
	}
	pts, err := SteadyPoints(sys)
	if err != nil {
		return SteadyRect{}, err
	}
	hullIdx, err := pgeom.HullSteady(m, pts)
	if err != nil {
		return SteadyRect{}, err
	}
	if len(hullIdx) < 3 {
		return SteadyRect{}, fmt.Errorf("core: steady hull has %d vertices; rectangle undefined", len(hullIdx))
	}
	hull := make([]geom.Point[ratfun.RatFun], len(hullIdx))
	for i, j := range hullIdx {
		hull[i] = pts[j]
	}
	return pgeom.MinAreaRect(m, hull), nil
}

// SteadyDiameterSequenceCheck is a reference helper: the transient
// farthest-point-sequence's last element must agree with the steady
// farthest neighbour (used by tests to tie §4 and §5 together).
func SteadyDiameterSequenceCheck(m *machine.M, sys *motion.System, origin int) (transient, steady int, err error) {
	seq, err := FarthestPointSequence(m, sys, origin)
	if err != nil {
		return -1, -1, err
	}
	st, err := SteadyNearestNeighbor(m, sys, origin, true)
	if err != nil {
		return -1, -1, err
	}
	return seq[len(seq)-1].Point, st, nil
}

// StaticPointsAt evaluates the system at a fixed time as float points —
// used by tests to validate transient results against static geometry.
func StaticPointsAt(sys *motion.System, t float64) []geom.Point[ratfun.F64] {
	pts := make([]geom.Point[ratfun.F64], sys.N())
	for i, p := range sys.Points {
		pos := p.At(t)
		pts[i] = geom.Point[ratfun.F64]{X: ratfun.F64(pos[0]), Y: ratfun.F64(pos[1]), ID: i}
	}
	return pts
}
