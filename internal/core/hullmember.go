package core

import (
	"fmt"
	"math"
	"strconv"

	"dyncg/internal/curve"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
)

// HullVertexIntervals implements Theorem 4.5: the ordered intervals of
// time during which sys.Points[origin] is an extreme point of the convex
// hull of the planar system. Machine allocation λ(n, 4k)
// (MeshFor/CubeFor with s = 4k+2 is comfortable); time
// Θ(λ^{1/2}(n, 4k)) mesh, Θ(log² n) hypercube.
//
// The algorithm follows the paper's proof exactly:
//
//  1. Each PE j forms the angle function T_j(t) of the vector from P₀ to
//     P_j, represented by its polynomial direction vector (curve.Angle),
//     and splits it into G_j (where T_j ≥ 0, i.e. Δy ≥ 0) and B_j (where
//     T_j < 0) — partial functions with at most k jump
//     discontinuities/transitions each (Lemma 3.3, Figure 5).
//  2. Four envelope constructions (Theorem 3.4) give a₀ = min G,
//     b₀ = max G, c₀ = min B, d₀ = max B.
//  3. Lemma 3.1 passes build the indicators A₀ = [a₀ − d₀ ≥ π] and
//     B₀ = [b₀ − c₀ ≤ π], with the a−d = π events located by the
//     antiparallel-vector test (cross = 0, dot < 0) — Θ(1) polynomial
//     work per window.
//  4. C₀ and D₀ indicate where the G (resp. B) family is empty: the gaps
//     of a₀ (resp. c₀).
//  5. H₀ = max(A₀, B₀, C₀, D₀); P₀ is extreme exactly where H₀ = 1
//     (Lemma 4.4), and a parallel prefix packs those intervals.
func HullVertexIntervals(m *machine.M, sys *motion.System, origin int) ([]Interval, error) {
	if sys.D != 2 {
		return nil, fmt.Errorf("core: hull membership requires planar motion, got d=%d: %w", sys.D, motion.ErrBadSystem)
	}
	n := sys.N()
	if n <= 2 {
		// One or two points: every point is always extreme.
		return []Interval{{Lo: 0, Hi: math.Inf(1)}}, nil
	}
	if m.Observed() {
		m.SpanBegin("thm4.5-hull-membership",
			"n", strconv.Itoa(n), "origin", strconv.Itoa(origin))
		defer m.SpanEnd()
	}
	// Broadcast P₀'s trajectory (Θ(1) rounds).
	N := m.Size()
	fregs := make([]machine.Reg[motion.Point], N)
	fregs[origin%N] = machine.Some(sys.Points[origin])
	machine.Spread(m, fregs, machine.WholeMachine(N))
	m.ChargeLocal(1)

	// Step 1: G_j and B_j as partial angle curves.
	var gs, bs []pieces.Piecewise
	for j, q := range sys.Points {
		if j == origin {
			continue
		}
		ang := sys.Points[origin].AngleTo(q)
		dy := q.Coord[1].Sub(sys.Points[origin].Coord[1])
		gDom, bDom := signDomains(dy)
		if g := pieces.OnIntervals(ang, j, gDom); len(g) > 0 {
			gs = append(gs, g)
		}
		if b := pieces.OnIntervals(ang, j, bDom); len(b) > 0 {
			bs = append(bs, b)
		}
	}
	// Step 2: the four envelopes (any may be absent if its family is
	// empty, e.g. all points forever above P₀).
	env := func(fs []pieces.Piecewise, kind pieces.Kind) (pieces.Piecewise, error) {
		if len(fs) == 0 {
			return nil, nil
		}
		return penvelope.Envelope(m, fs, kind)
	}
	a0, err := env(gs, pieces.Min)
	if err != nil {
		return nil, fmt.Errorf("core: a₀: %w", err)
	}
	b0, err := env(gs, pieces.Max)
	if err != nil {
		return nil, fmt.Errorf("core: b₀: %w", err)
	}
	c0, err := env(bs, pieces.Min)
	if err != nil {
		return nil, fmt.Errorf("core: c₀: %w", err)
	}
	d0, err := env(bs, pieces.Max)
	if err != nil {
		return nil, fmt.Errorf("core: d₀: %w", err)
	}

	// Step 3: indicators A₀ and B₀.
	A0, err := angleGapIndicator(m, a0, d0, true)
	if err != nil {
		return nil, fmt.Errorf("core: A₀: %w", err)
	}
	B0, err := angleGapIndicator(m, b0, c0, false)
	if err != nil {
		return nil, fmt.Errorf("core: B₀: %w", err)
	}
	// Step 4: C₀ = 1 where the G family is empty, D₀ where B is empty.
	C0 := gapIndicator(m, a0)
	D0 := gapIndicator(m, c0)

	// Step 5: H₀ = max(A₀, B₀, C₀, D₀), then pack the 1-intervals.
	h := A0
	for _, other := range []pieces.Piecewise{B0, C0, D0} {
		if len(other) == 0 {
			continue
		}
		if len(h) == 0 {
			h = other
			continue
		}
		h, err = penvelope.MergeMinMax(m, h, other, pieces.Max)
		if err != nil {
			return nil, fmt.Errorf("core: H₀: %w", err)
		}
	}
	return indicatorIntervals(m, h), nil
}

// signDomains splits [0, ∞) at the roots of dy into the closed intervals
// where dy ≥ 0 (the domain of G) and where dy ≤ 0 with negative interior
// (the domain of B). A identically-zero dy puts the whole ray in G
// (T ∈ {0, π} there, never negative).
func signDomains(dy interface {
	Roots(lo, hi float64) []float64
	Eval(t float64) float64
	IsZero() bool
}) (gDom, bDom [][2]float64) {
	if dy.IsZero() {
		return [][2]float64{{0, math.Inf(1)}}, nil
	}
	cuts := append([]float64{0}, dy.Roots(0, math.Inf(1))...)
	cuts = append(cuts, math.Inf(1))
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if !(lo < hi) {
			continue
		}
		mid := lo + 1
		if !math.IsInf(hi, 1) {
			mid = (lo + hi) / 2
		}
		if dy.Eval(mid) >= 0 {
			gDom = append(gDom, [2]float64{lo, hi})
		} else {
			bDom = append(bDom, [2]float64{lo, hi})
		}
	}
	return gDom, bDom
}

// angleGapIndicator builds, via one Lemma 3.1 pass, the 0/1 indicator of
// the condition f(t) − g(t) ≥ π (ge = true; A₀ with f = a₀, g = d₀) or
// f(t) − g(t) ≤ π (ge = false; B₀ with f = b₀, g = c₀), where f takes
// values in [0, π] and g in [−π, 0), so the difference lies in (0, 2π)
// and the threshold crossings are exactly the antiparallel events of the
// two direction vectors (proof of Theorem 4.5, Step 3).
func angleGapIndicator(m *machine.M, f, g pieces.Piecewise, ge bool) (pieces.Piecewise, error) {
	if len(f) == 0 || len(g) == 0 {
		return nil, nil
	}
	return penvelope.Combine2(m, f, g, angleWindow(ge))
}

// angleWindow builds the Θ(1) window combiner shared by the machine pass
// (penvelope.Combine2) and the serial baseline (pieces.CombineWindows).
func angleWindow(ge bool) func(fw, gw pieces.Piecewise) pieces.Piecewise {
	return func(fw, gw pieces.Piecewise) pieces.Piecewise {
		if len(fw) == 0 || len(gw) == 0 {
			// Only one of the two functions is defined: the condition
			// involves an undefined value, so the indicator is 0 on the
			// defined extent (Lemma 4.4's cases 1–2 need both).
			src := fw
			if len(src) == 0 {
				src = gw
			}
			return pieces.Piecewise{{F: curve.Const(0), ID: 0, Lo: src[0].Lo, Hi: src[0].Hi}}
		}
		fp, gp := fw[0], gw[0]
		lo, hi := math.Max(fp.Lo, gp.Lo), math.Min(fp.Hi, gp.Hi)
		var out pieces.Piecewise
		emit0 := func(a, b float64) {
			if a < b {
				out = append(out, pieces.Piece{F: curve.Const(0), ID: 0, Lo: a, Hi: b})
			}
		}
		// Non-overlapping margins of the window are 0.
		emit0(fp.Lo, math.Min(fp.Hi, lo))
		emit0(gp.Lo, math.Min(gp.Hi, lo))
		if !(lo < hi) {
			return out
		}
		fa := fp.F.(curve.Angle)
		ga := gp.F.(curve.Angle)
		cuts := append([]float64{lo}, fa.AntiparallelTimes(ga, lo, hi)...)
		cuts = append(cuts, hi)
		for i := 0; i+1 < len(cuts); i++ {
			a, b := cuts[i], cuts[i+1]
			if !(a < b) {
				continue
			}
			mid := a + 1
			if !math.IsInf(b, 1) {
				mid = (a + b) / 2
			}
			diff := fa.Eval(mid) - ga.Eval(mid)
			hold := diff >= math.Pi
			if !ge {
				hold = diff <= math.Pi
			}
			v := 0
			if hold {
				v = 1
			}
			out = append(out, pieces.Piece{F: curve.Const(float64(v)), ID: v, Lo: a, Hi: b})
		}
		// Trailing margins after the overlap.
		emit0(math.Max(fp.Lo, hi), fp.Hi)
		emit0(math.Max(gp.Lo, hi), gp.Hi)
		return normalizeWindow(out)
	}
}

// normalizeWindow sorts/merges the ≤ Θ(1) pieces a window emitted (they
// are built in at most three ordered groups; overlapping margins can
// coincide, so duplicates are dropped).
func normalizeWindow(ps pieces.Piecewise) pieces.Piecewise {
	if len(ps) <= 1 {
		return ps
	}
	// Insertion sort by Lo (Θ(1) elements).
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Lo < ps[j-1].Lo; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	out := ps[:1]
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		if p.Lo < last.Hi {
			if p.Hi > last.Hi && p.ID == last.ID {
				last.Hi = p.Hi
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// gapIndicator returns the indicator that is 1 exactly where f is
// undefined (the paper's C₀/D₀: the corresponding angle family is
// empty). One shift round plus Θ(1) local work per PE.
func gapIndicator(m *machine.M, f pieces.Piecewise) pieces.Piecewise {
	m.ChargeLocal(1)
	return gapIndicatorPieces(f)
}

// gapIndicatorPieces is the pure construction shared with the serial
// baseline.
func gapIndicatorPieces(f pieces.Piecewise) pieces.Piecewise {
	if len(f) == 0 {
		return pieces.Piecewise{{F: curve.Const(1), ID: 1, Lo: 0, Hi: math.Inf(1)}}
	}
	var out pieces.Piecewise
	for _, g := range f.Gaps() {
		out = append(out, pieces.Piece{F: curve.Const(1), ID: 1, Lo: g[0], Hi: g[1]})
	}
	return out
}
