package core

import (
	"fmt"
	"sort"
	"strconv"

	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
)

// NeighborEvent is one element of the chronological sequence R of
// Theorem 4.1: Point is the closest (or farthest) point to the query
// point throughout [Lo, Hi].
type NeighborEvent struct {
	Point  int
	Lo, Hi float64
}

// ClosestPointSequence constructs the sequence R of closest points to
// sys.Points[origin] in chronological order (Theorem 4.1): broadcast the
// query trajectory, let each PE form the squared-distance polynomial
// d²_{0j}(t) of degree ≤ 2k, and build the minimum function with
// Theorem 3.2. Machine allocation: λ(n−1, 2k) PEs (use MeshFor/CubeFor
// with s = 2k); time Θ(λ^{1/2}(n−1, 2k)) mesh, Θ(log² n) hypercube.
func ClosestPointSequence(m *machine.M, sys *motion.System, origin int) ([]NeighborEvent, error) {
	return neighborSequence(m, sys, origin, pieces.Min)
}

// FarthestPointSequence constructs the sequence R′ of farthest points
// (Theorem 4.1, max function).
func FarthestPointSequence(m *machine.M, sys *motion.System, origin int) ([]NeighborEvent, error) {
	return neighborSequence(m, sys, origin, pieces.Max)
}

func neighborSequence(m *machine.M, sys *motion.System, origin int, kind pieces.Kind) ([]NeighborEvent, error) {
	if origin < 0 || origin >= sys.N() {
		return nil, fmt.Errorf("core: origin %d out of range: %w", origin, motion.ErrBadSystem)
	}
	if m.Observed() {
		name := "thm4.1-closest-seq"
		if kind == pieces.Max {
			name = "thm4.1-farthest-seq"
		}
		m.SpanBegin(name, "n", strconv.Itoa(sys.N()), "origin", strconv.Itoa(origin))
		defer m.SpanEnd()
	}
	// Broadcast the query point's trajectory (one broadcast, §4.1).
	n := m.Size()
	fregs := make([]machine.Reg[motion.Point], n)
	fregs[origin%n] = machine.Some(sys.Points[origin])
	machine.Spread(m, fregs, machine.WholeMachine(n))
	m.ChargeLocal(1) // each PE forms d²_{0j}(t), a Θ(1) polynomial op

	cs, ids := sys.DistSqCurves(origin)
	env, err := penvelope.EnvelopeOfCurves(m, cs, kind)
	if err != nil {
		return nil, err
	}
	out := make([]NeighborEvent, len(env))
	for i, p := range env {
		out[i] = NeighborEvent{Point: ids[p.ID], Lo: p.Lo, Hi: p.Hi}
	}
	return out, nil
}

// SerialClosestPointSequence is the serial baseline for Theorem 4.1
// (divide-and-conquer envelope in the style of [Atallah 1985]).
func SerialClosestPointSequence(sys *motion.System, origin int, kind pieces.Kind) []NeighborEvent {
	cs, ids := sys.DistSqCurves(origin)
	env := pieces.EnvelopeOfCurves(cs, kind)
	out := make([]NeighborEvent, len(env))
	for i, p := range env {
		out[i] = NeighborEvent{Point: ids[p.ID], Lo: p.Lo, Hi: p.Hi}
	}
	return out
}

// Collision records that points A and B coincide at time T.
type Collision struct {
	T    float64
	A, B int
}

// CollisionTimes returns the chronological list of times at which
// sys.Points[origin] collides with any other point (Theorem 4.2):
// broadcast the query trajectory, solve d²_{0j}(t) = 0 locally (≤ 2k
// positive roots per PE, Θ(1) serial time), then sort the union —
// Θ(n^{1/2}) on a mesh of 4^⌈log₄ n⌉ PEs, Θ(log² n) on a hypercube of
// 2^⌈log₂ n⌉ PEs (use MeshOf/CubeOf with n·(2k+1) capacity for the
// one-root-per-PE layout).
func CollisionTimes(m *machine.M, sys *motion.System, origin int) ([]Collision, error) {
	if m.Observed() {
		m.SpanBegin("thm4.2-collisions", "n", strconv.Itoa(sys.N()), "origin", strconv.Itoa(origin))
		defer m.SpanEnd()
	}
	n := m.Size()
	fregs := make([]machine.Reg[motion.Point], n)
	fregs[origin%n] = machine.Some(sys.Points[origin])
	machine.Spread(m, fregs, machine.WholeMachine(n))

	// Each PE j solves d²_{0j}(t) = 0 on [0, ∞): Θ(1) local work.
	m.ChargeLocal(1)
	emitted := make([][]Collision, n)
	total := 0
	for j, q := range sys.Points {
		if j == origin {
			continue
		}
		d2 := sys.Points[origin].DistSq(q)
		for _, r := range d2.RootsNonNeg() {
			emitted[j%n] = append(emitted[j%n], Collision{T: r, A: origin, B: j})
			total++
		}
	}
	if total > n {
		return nil, fmt.Errorf("core: %d collision events exceed %d PEs: %w", total, n, machine.ErrTooFewPEs)
	}
	// Pack (prefix + bounded routes) and sort chronologically.
	regs := packLists(m, emitted)
	machine.Sort(m, regs, func(a, b Collision) bool {
		if a.T != b.T {
			return a.T < b.T
		}
		return a.B < b.B
	})
	return machine.Gather(regs), nil
}

// SerialCollisionTimes is the serial baseline for Theorem 4.2.
func SerialCollisionTimes(sys *motion.System, origin int) []Collision {
	var out []Collision
	for j, q := range sys.Points {
		if j == origin {
			continue
		}
		for _, r := range sys.Points[origin].DistSq(q).RootsNonNeg() {
			out = append(out, Collision{T: r, A: origin, B: j})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].B < out[j].B
	})
	return out
}

// packLists packs per-PE bounded lists into one register per PE via a
// parallel prefix and a constant number of structured routes.
func packLists[T any](m *machine.M, lists [][]T) []machine.Reg[T] {
	if m.Observed() {
		m.SpanBegin("pack", "n", strconv.Itoa(len(lists)))
		defer m.SpanEnd()
	}
	n := len(lists)
	// counts is self-contained scratch: run the rank prefix natively on
	// the columnar layout.
	counts := machine.GetCols[int](m, n)
	defer machine.PutCols(m, counts)
	m.ChargeLocal(1)
	maxLen := 0
	for i := 0; i < n; i++ {
		counts.Set(i, len(lists[i]))
		if len(lists[i]) > maxLen {
			maxLen = len(lists[i])
		}
	}
	machine.ScanCols(m, counts, machine.WholeMachine(n), machine.Forward,
		func(a, b int) int { return a + b })
	regs := make([]machine.Reg[T], n)
	for i := range lists {
		base := counts.Val[i] - len(lists[i])
		for j, v := range lists[i] {
			regs[base+j] = machine.Some(v)
		}
	}
	for j := 0; j < maxLen; j++ {
		var src, dst []int
		for i := range lists {
			if j < len(lists[i]) {
				src = append(src, i)
				dst = append(dst, counts.Val[i]-len(lists[i])+j)
			}
		}
		m.ChargeRoute(src, dst)
	}
	return regs
}
