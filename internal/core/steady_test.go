package core

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/geom"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/ratfun"
)

// lateTime returns a time far beyond the dynamics' transients, for
// validating steady-state answers against static geometry.
const lateTime = 1e7

func TestProposition52SteadyNearest(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(12)
		sys := motion.Random(r, n, 1, 2, 5)
		origin := r.Intn(n)
		for _, m := range []*machine.M{MeshOf(4 * n), CubeOf(4 * n)} {
			got, err := SteadyNearestNeighbor(m, sys, origin, false)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			// Validate at a very late time.
			pts := StaticPointsAt(sys, lateTime)
			bestD := math.Inf(1)
			for j := range pts {
				if j == origin {
					continue
				}
				if d := float64(geom.DistSq(pts[j], pts[origin])); d < bestD {
					bestD = d
				}
			}
			gd := float64(geom.DistSq(pts[got], pts[origin]))
			if math.Abs(gd-bestD) > 1e-6*(1+bestD) {
				t.Fatalf("trial %d: steady nearest %d has d²=%v at late time, best %v",
					trial, got, gd, bestD)
			}
		}
	}
}

// TestC3SteadyShortcutAgreesWithTransient ties §4 and §5 together: the
// last element of the transient sequence equals the steady answer, and
// the direct steady algorithm is cheaper (comparison C3).
func TestC3SteadyShortcutAgreesWithTransient(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(8)
		sys := motion.Random(r, n, 1, 2, 4)
		origin := r.Intn(n)

		mDirect := MeshOf(4 * n)
		direct, err := SteadyNearestNeighbor(mDirect, sys, origin, false)
		if err != nil {
			t.Fatal(err)
		}
		mSeq := MeshFor(n, 2)
		viaSeq, err := SteadyNearestViaTransient(mSeq, sys, origin)
		if err != nil {
			t.Fatal(err)
		}
		// The two must agree up to exact distance ties at infinity.
		da := sys.Points[direct].DistSq(sys.Points[origin])
		db := sys.Points[viaSeq].DistSq(sys.Points[origin])
		if da.CompareAtInfinity(db) != 0 {
			t.Fatalf("trial %d: direct %d vs transient-tail %d disagree", trial, direct, viaSeq)
		}
		// And the direct route must be cheaper in simulated time.
		if trial == 0 && mDirect.Stats().Time() >= mSeq.Stats().Time() {
			t.Logf("note: direct=%v seq=%v (expected direct < seq at larger n)",
				mDirect.Stats().Time(), mSeq.Stats().Time())
		}
	}
}

func TestProposition53SteadyClosestPair(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(10)
		sys := motion.Random(r, n, 1, 2, 5)
		m := CubeOf(4 * n)
		a, b, err := SteadyClosestPair(m, sys)
		if err != nil {
			t.Fatal(err)
		}
		pts, _ := SteadyPoints(sys)
		_, _, want := geom.ClosestPair(pts)
		got := geom.DistSq(pts[a], pts[b])
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: steady closest pair (%d,%d) not minimal", trial, a, b)
		}
	}
}

func TestProposition54SteadyHull(t *testing.T) {
	r := rand.New(rand.NewSource(114))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(10)
		sys := motion.Diverging(r, n)
		m := CubeOf(4 * n)
		got, err := SteadyHull(m, sys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pts, _ := SteadyPoints(sys)
		want := geom.Hull(pts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: hull size %d, want %d", trial, len(got), len(want))
		}
		// Diverging systems: every point extreme in the steady state.
		if len(got) != n {
			t.Fatalf("trial %d: diverging system should have all %d points extreme, got %d",
				trial, n, len(got))
		}
	}
}

func TestCorollary57SteadyFarthestPair(t *testing.T) {
	r := rand.New(rand.NewSource(115))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(10)
		sys := motion.Random(r, n, 1, 2, 5)
		m := CubeOf(4 * n)
		a, b, d2, err := SteadyFarthestPair(m, sys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pts, _ := SteadyPoints(sys)
		_, _, want := geom.FarthestPair(pts)
		got := geom.DistSq(pts[a], pts[b])
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: farthest pair (%d,%d) not maximal", trial, a, b)
		}
		// The returned d² polynomial evaluates to the true distance late.
		late := StaticPointsAt(sys, lateTime)
		trueD := float64(geom.DistSq(late[a], late[b]))
		if math.Abs(d2.Eval(lateTime)-trueD) > 1e-6*(1+trueD) {
			t.Fatalf("trial %d: diameter function mismatch", trial)
		}
	}
}

func TestCorollary59SteadyMinAreaRect(t *testing.T) {
	r := rand.New(rand.NewSource(116))
	for trial := 0; trial < 8; trial++ {
		n := 5 + r.Intn(8)
		sys := motion.Diverging(r, n)
		m := CubeOf(4 * n)
		rect, err := SteadyMinAreaRect(m, sys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pts, _ := SteadyPoints(sys)
		hull := geom.Hull(pts)
		want := geom.MinAreaRect(hull)
		if rect.Area.Cmp(want.Area) != 0 {
			t.Fatalf("trial %d: steady rect area %v, want %v", trial, rect.Area, want.Area)
		}
		// The rectangle contains every point at a late time (numeric with
		// tolerance: hull vertices sit exactly on the boundary and the
		// rational-function corner coordinates carry float rounding).
		at := func(q geom.Point[ratfun.RatFun]) (float64, float64) {
			return q.X.Eval(lateTime), q.Y.Eval(lateTime)
		}
		for _, p := range pts {
			px, py := at(p)
			for e := 0; e < 4; e++ {
				ax, ay := at(rect.Corners[e])
				bx, by := at(rect.Corners[(e+1)%4])
				cr := (bx-ax)*(py-ay) - (by-ay)*(px-ax)
				scale := (bx-ax)*(bx-ax) + (by-ay)*(by-ay)
				if cr < -1e-6*scale {
					t.Fatalf("trial %d: point %d outside steady rectangle (cr=%v)",
						trial, p.ID, cr)
				}
			}
		}
	}
}

func TestSteadyRejectsNonPlanar(t *testing.T) {
	r := rand.New(rand.NewSource(117))
	sys := motion.Random(r, 4, 1, 3, 5)
	if _, err := SteadyHull(CubeOf(16), sys); err == nil {
		t.Fatal("3-D system accepted by planar steady-state algorithm")
	}
}

// TestTable3CostShape: steady-state nearest neighbour is Θ(√n)/Θ(log n),
// notably cheaper than the sort-bounded problems.
func TestTable3CostShape(t *testing.T) {
	r := rand.New(rand.NewSource(118))
	sizes := []int{64, 256, 1024}
	var nnMesh, cpMesh []float64
	for _, n := range sizes {
		sys := motion.Random(r, n, 1, 2, 10)
		m := MeshOf(n)
		if _, err := SteadyNearestNeighbor(m, sys, 0, false); err != nil {
			t.Fatal(err)
		}
		nnMesh = append(nnMesh, float64(m.Stats().Time()))
		m2 := MeshOf(4 * n)
		if _, _, err := SteadyClosestPair(m2, sys); err != nil {
			t.Fatal(err)
		}
		cpMesh = append(cpMesh, float64(m2.Stats().Time()))
	}
	for i := 1; i < len(sizes); i++ {
		if ratio := nnMesh[i] / nnMesh[i-1]; ratio > 3 {
			t.Errorf("mesh steady NN not Θ(√n): %v", nnMesh)
		}
		if ratio := cpMesh[i] / cpMesh[i-1]; ratio > 3.4 {
			t.Errorf("mesh steady closest pair not Θ(√n): %v", cpMesh)
		}
	}
}
