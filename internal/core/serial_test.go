package core

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/motion"
)

func sameIntervals(t *testing.T, got, want []Interval, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d intervals, want %d\n got %v\nwant %v",
			label, len(got), len(want), got, want)
	}
	for i := range got {
		if math.Abs(got[i].Lo-want[i].Lo) > 1e-7*(1+math.Abs(want[i].Lo)) {
			t.Fatalf("%s: interval %d Lo %v vs %v", label, i, got[i].Lo, want[i].Lo)
		}
		if math.IsInf(want[i].Hi, 1) != math.IsInf(got[i].Hi, 1) {
			t.Fatalf("%s: interval %d Hi %v vs %v", label, i, got[i].Hi, want[i].Hi)
		}
		if !math.IsInf(want[i].Hi, 1) &&
			math.Abs(got[i].Hi-want[i].Hi) > 1e-7*(1+math.Abs(want[i].Hi)) {
			t.Fatalf("%s: interval %d Hi %v vs %v", label, i, got[i].Hi, want[i].Hi)
		}
	}
}

// TestSerialBaselinesMatchMachine: the serial §4 baselines and the
// machine algorithms produce identical answers (they share the window
// combiners, so differences would indicate a bug in the machine pass).
func TestSerialBaselinesMatchMachine(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	for trial := 0; trial < 12; trial++ {
		n := 3 + r.Intn(8)
		k := 1 + r.Intn(2)
		sys := motion.Random(r, n, k, 2, 5)

		// Theorem 4.5.
		m := CubeFor(n, 4*k+2)
		gotHull, err := HullVertexIntervals(m, sys, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantHull, err := SerialHullVertexIntervals(sys, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameIntervals(t, gotHull, wantHull, "hull membership")

		// Theorem 4.6.
		dims := []float64{4 + r.Float64()*8, 4 + r.Float64()*8}
		m2 := CubeFor(n, k+2)
		gotC, err := ContainmentIntervals(m2, sys, dims)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantC, err := SerialContainmentIntervals(sys, dims)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameIntervals(t, gotC, wantC, "containment")

		// Theorem 4.7: compare the span functions pointwise.
		m3 := CubeFor(n, k+2)
		gotD, err := SmallestHypercubeEdge(m3, sys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantD, err := SerialSmallestHypercubeEdge(sys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for s := 0; s < 40; s++ {
			tm := float64(s)*0.27 + 0.009
			gv, gok := gotD.Eval(tm)
			wv, wok := wantD.Eval(tm)
			if gok != wok || math.Abs(gv-wv) > 1e-6*(1+math.Abs(wv)) {
				t.Fatalf("trial %d: D(%v) machine %v vs serial %v", trial, tm, gv, wv)
			}
		}
	}
}
