package core

import (
	"fmt"
	"math"
	"strconv"

	"dyncg/internal/curve"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

// pairID encodes the (coordinate, max-piece, min-piece) origin of a
// difference piece. IDs drive the run-compaction step of Lemma 3.1
// (equal ID ⇒ same function), so they must be unique across the
// coordinate span functions that later get merged together.
func pairID(coord, a, b int) int {
	return ((coord+1)*1_000_003+a)*1_000_003 + b
}

// spanFunctions builds the per-coordinate span functions
// D_i(t) = M_i(t) − m_i(t) of Theorem 4.6 Steps 1–2: two envelope
// constructions (Theorem 3.2) and one Lemma 3.1 pass computing the
// difference. Each D_i has at most 2λ(n, k) pieces (Lemma 2.5).
func spanFunctions(m *machine.M, sys *motion.System) ([]pieces.Piecewise, error) {
	out := make([]pieces.Piecewise, sys.D)
	for i := 0; i < sys.D; i++ {
		cs := sys.CoordCurves(i)
		lo, err := penvelope.EnvelopeOfCurves(m, cs, pieces.Min)
		if err != nil {
			return nil, fmt.Errorf("core: m_%d: %w", i, err)
		}
		hi, err := penvelope.EnvelopeOfCurves(m, cs, pieces.Max)
		if err != nil {
			return nil, fmt.Errorf("core: M_%d: %w", i, err)
		}
		out[i], err = SpanFromEnvelopes(m, hi, lo, i)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SpanFromEnvelopes derives one coordinate's span function
// D_i(t) = M_i(t) − m_i(t) from its already-built max and min coordinate
// envelopes — one Lemma 3.1 pass (Theorem 4.6 Step 2). It is the shared
// derivation layer between the one-shot algorithms here (which build hi
// and lo from scratch) and the batch-dynamic session engine of
// internal/session (which maintains them in retained merge trees).
func SpanFromEnvelopes(m *machine.M, hi, lo pieces.Piecewise, coord int) (pieces.Piecewise, error) {
	diff, err := penvelope.Combine2(m, hi, lo, windowDiffFor(coord))
	if err != nil {
		return nil, fmt.Errorf("core: D_%d: %w", coord, err)
	}
	return diff, nil
}

// windowDiffFor returns the window combiner emitting the difference
// f − g of the two active polynomial pieces on their overlap (Θ(1) local
// work per window), tagged with the coordinate for unique run IDs.
func windowDiffFor(coord int) func(fw, gw pieces.Piecewise) pieces.Piecewise {
	return func(fw, gw pieces.Piecewise) pieces.Piecewise {
		if len(fw) == 0 || len(gw) == 0 {
			return nil
		}
		f, g := fw[0], gw[0]
		lo, hi := math.Max(f.Lo, g.Lo), math.Min(f.Hi, g.Hi)
		if !(lo < hi) {
			return nil
		}
		fp := f.F.(curve.Poly).P
		gp := g.F.(curve.Poly).P
		return pieces.Piecewise{{
			F:  curve.NewPoly(fp.Sub(gp)),
			ID: pairID(coord, f.ID, g.ID),
			Lo: lo,
			Hi: hi,
		}}
	}
}

// thresholdIndicator returns the MapPieces transform for
// W(t) = [piece(t) ≤ x]: split the piece at the roots of p − x and emit
// 0/1 constant pieces (IDs equal the indicator value so runs compact).
func thresholdIndicator(x float64) func(pieces.Piece) []pieces.Piece {
	return func(p pieces.Piece) []pieces.Piece {
		pp := p.F.(curve.Poly).P.Sub(poly.Constant(x))
		cuts := append([]float64{p.Lo}, pp.Roots(p.Lo, p.Hi)...)
		cuts = append(cuts, p.Hi)
		var out []pieces.Piece
		for i := 0; i+1 < len(cuts); i++ {
			lo, hi := cuts[i], cuts[i+1]
			if !(lo < hi) {
				continue
			}
			mid := lo + 1
			if !math.IsInf(hi, 1) {
				mid = (lo + hi) / 2
			}
			v := 0
			if pp.Eval(mid) <= 0 {
				v = 1
			}
			out = append(out, pieces.Piece{F: curve.Const(float64(v)), ID: v, Lo: lo, Hi: hi})
		}
		return out
	}
}

// indicatorIntervals extracts the maximal intervals on which a 0/1
// indicator piecewise equals 1 (the paper's final parallel-prefix pack).
func indicatorIntervals(m *machine.M, w pieces.Piecewise) []Interval {
	m.ChargeLocal(1)
	var out []Interval
	for _, p := range w {
		if p.ID == 1 {
			out = append(out, Interval{Lo: p.Lo, Hi: p.Hi})
		}
	}
	return mergeAbutting(out)
}

// ContainmentIntervals implements Theorem 4.6: the ordered list J of time
// intervals during which the system fits inside an iso-oriented
// hyper-rectangle with side lengths dims. Machine allocation λ(n, k)
// (MeshFor/CubeFor with s = max(k, 1)); time Θ(λ^{1/2}(n,k)) mesh,
// Θ(log² n) hypercube.
func ContainmentIntervals(m *machine.M, sys *motion.System, dims []float64) ([]Interval, error) {
	if len(dims) != sys.D {
		return nil, fmt.Errorf("core: %d dims for %d-dimensional system: %w", len(dims), sys.D, motion.ErrBadSystem)
	}
	if m.Observed() {
		m.SpanBegin("thm4.6-containment",
			"n", strconv.Itoa(sys.N()), "d", strconv.Itoa(sys.D))
		defer m.SpanEnd()
	}
	spans, err := spanFunctions(m, sys)
	if err != nil {
		return nil, err
	}
	return ContainmentFromSpans(m, spans, dims)
}

// ContainmentFromSpans runs Theorem 4.6 Steps 3–5 on already-built span
// functions: threshold each D_i into the indicator W_i(t) = [D_i(t) ≤
// X_i], intersect via Θ(d) Lemma 3.1 passes, and pack the C(t) = 1
// intervals.
func ContainmentFromSpans(m *machine.M, spans []pieces.Piecewise, dims []float64) ([]Interval, error) {
	if len(dims) != len(spans) {
		return nil, fmt.Errorf("core: %d dims for %d span functions: %w", len(dims), len(spans), motion.ErrBadSystem)
	}
	// Step 3: per-coordinate indicators W_i(t) = [D_i(t) ≤ X_i].
	var c pieces.Piecewise
	for i, di := range spans {
		wi, err := penvelope.MapPieces(m, di, thresholdIndicator(dims[i]))
		if err != nil {
			return nil, fmt.Errorf("core: W_%d: %w", i, err)
		}
		if c == nil {
			c = wi
			continue
		}
		// Step 4: C = min(W_1, …, W_d) via Θ(d) = Θ(1) Lemma 3.1 passes.
		c, err = penvelope.MergeMinMax(m, c, wi, pieces.Min)
		if err != nil {
			return nil, fmt.Errorf("core: C after W_%d: %w", i, err)
		}
	}
	// Step 5: pack the intervals with C(t) = 1.
	return indicatorIntervals(m, c), nil
}

// SmallestHypercubeEdge implements Theorem 4.7: the function D(t) whose
// value is the edge length of the smallest iso-oriented hypercube
// containing the system — D(t) = max_i D_i(t), Θ(1) further Lemma 3.1
// passes after Theorem 4.6's Step 1–2.
func SmallestHypercubeEdge(m *machine.M, sys *motion.System) (pieces.Piecewise, error) {
	if m.Observed() {
		m.SpanBegin("thm4.7-cube-edge",
			"n", strconv.Itoa(sys.N()), "d", strconv.Itoa(sys.D))
		defer m.SpanEnd()
	}
	spans, err := spanFunctions(m, sys)
	if err != nil {
		return nil, err
	}
	return EdgeFromSpans(m, spans)
}

// EdgeFromSpans derives the cube-edge function D(t) = max_i D_i(t) from
// already-built span functions — Θ(d) Lemma 3.1 passes (Theorem 4.7's
// final step).
func EdgeFromSpans(m *machine.M, spans []pieces.Piecewise) (pieces.Piecewise, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("core: no span functions: %w", motion.ErrBadSystem)
	}
	d := spans[0]
	var err error
	for _, di := range spans[1:] {
		d, err = penvelope.MergeMinMax(m, d, di, pieces.Max)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// SmallestEverHypercube implements Corollary 4.8: D_min = min_{t≥0} D(t)
// and a time attaining it — each PE minimises its Θ(1) pieces locally
// (endpoint and critical-point evaluations of a bounded-degree
// polynomial), then one semigroup.
func SmallestEverHypercube(m *machine.M, sys *motion.System) (dmin, tmin float64, err error) {
	if m.Observed() {
		m.SpanBegin("cor4.8-smallest-cube", "n", strconv.Itoa(sys.N()))
		defer m.SpanEnd()
	}
	d, err := SmallestHypercubeEdge(m, sys)
	if err != nil {
		return 0, 0, err
	}
	return MinimizeEdge(m, d)
}

// MinimizeEdge minimises a cube-edge function over all t ≥ 0
// (Corollary 4.8's final step): each PE minimises its Θ(1) pieces
// locally, then one semigroup selects the global minimum and a time
// attaining it.
func MinimizeEdge(m *machine.M, d pieces.Piecewise) (dmin, tmin float64, err error) {
	type cand struct{ v, t float64 }
	n := m.Size()
	regs := make([]machine.Reg[cand], n)
	m.ChargeLocal(1)
	for i, p := range d {
		v, t := minimizePiece(p)
		regs[i%n] = machine.Some(cand{v: v, t: t})
	}
	machine.Semigroup(m, regs, machine.WholeMachine(n), func(a, b cand) cand {
		if a.v <= b.v {
			return a
		}
		return b
	})
	for i := range regs {
		if regs[i].Ok {
			return regs[i].V.v, regs[i].V.t, nil
		}
	}
	return 0, 0, fmt.Errorf("core: empty span function")
}

// minimizePiece minimises a polynomial piece over its interval: check the
// endpoints and interior critical points (Θ(1) for bounded degree).
func minimizePiece(p pieces.Piece) (v, t float64) {
	pp := p.F.(curve.Poly).P
	bestT := p.Lo
	bestV := pp.Eval(p.Lo)
	try := func(t float64) {
		if val := pp.Eval(t); val < bestV {
			bestV, bestT = val, t
		}
	}
	if math.IsInf(p.Hi, 1) {
		// Behaviour at infinity: if the polynomial decreases without
		// bound this would be −∞; spans are nonnegative so the limit is
		// finite or +∞ — probe a large representative time.
		try(p.Lo + 1e6)
	} else {
		try(p.Hi)
	}
	hi := p.Hi
	if math.IsInf(hi, 1) {
		hi = p.Lo + 1e6
	}
	for _, r := range pp.Derivative().Roots(p.Lo, hi) {
		try(r)
	}
	return bestV, bestT
}
